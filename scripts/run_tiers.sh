#!/usr/bin/env bash
# Build and run the Mercury test tiers.
#
#   scripts/run_tiers.sh [tier1|tier2|soak|profile|obsoff|asan|ubsan|tsan|all]
#
#   tier1  - the fast regression suite (default; every unit/integration test)
#   tier2  - the dependability sweeps: fault matrix + seeded switch fuzzer
#   soak   - the chaos soak: hundreds of supervised switch cycles under a
#            seeded fault storm (ctest -L soak), writing mercury.soak.v1
#            verdicts to build/soak-artifacts/ and gating them with
#            scripts/check_bench_json.py --schema soak
#   profile - bench_soak with the engine profiler and cluster time-series
#            enabled, writing mercury.timeseries.v1 / mercury.profile.v1 /
#            mercury.soak.v1 to build/profile-artifacts/ and schema-gating
#            all three with scripts/check_bench_json.py
#   obsoff - tier1 with -DMERCURY_OBS=OFF (build-obsoff/), then diff the
#            CYCLE_IDENTITY probe lines against the normal build: telemetry
#            must compile away without moving a single simulated cycle
#   asan   - full suite under AddressSanitizer  (build-asan/)
#   ubsan  - full suite under UBSanitizer       (build-ubsan/)
#   tsan   - the switch-path tests under ThreadSanitizer (build-tsan/):
#            rendezvous, crews, engine, supervisor, and the soak — the
#            code that would race first if a threaded driver ever lands
#   all    - tier1, tier2, obsoff, then all three sanitizer suites
#
# Seeded tests print MERCURY_TEST_SEED=<n> on start; export that variable to
# replay a failure exactly (see TESTING.md).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
CTEST_FLAGS=(--output-on-failure)

configure_and_build() {
  local dir="$1"; shift
  # Fail fast on configure errors: a failed configure leaves a stale (or
  # half-written) CMakeCache that a subsequent --build could silently reuse,
  # and the quiet stdout redirect would hide what went wrong.
  if ! cmake -S . -B "$dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@" >/dev/null; then
    echo "run_tiers: cmake configure failed for $dir/" >&2
    echo "run_tiers: rerun verbosely: cmake -S . -B $dir $*" >&2
    exit 1
  fi
  cmake --build "$dir" -j "$JOBS"
}

run_label() {
  local dir="$1" label="$2"
  ctest --test-dir "$dir" -L "$label" "${CTEST_FLAGS[@]}"
}

run_sanitizer() {
  local kind="$1"  # address | undefined | thread
  local dir="build-${kind}"
  [[ $kind == address ]] && dir=build-asan
  [[ $kind == undefined ]] && dir=build-ubsan
  [[ $kind == thread ]] && dir=build-tsan
  configure_and_build "$dir" -DMERCURY_SANITIZE="$kind"
  if [[ $kind == thread ]]; then
    # TSan covers the switch path: rendezvous/crew/engine (core_switch),
    # stress, supervisor, fuzz, and the chaos soak. The rest of the suite is
    # single-threaded by construction and just slows the job down.
    ctest --test-dir "$dir" -R 'switch|core_switch' "${CTEST_FLAGS[@]}"
  else
    ctest --test-dir "$dir" "${CTEST_FLAGS[@]}"
  fi
}

# The obs-off guard: MERC_SPAN/MERC_FLIGHT/metrics must be free when compiled
# out, and — because instrumentation never cpu.charge()s — the *simulated*
# switch cost must be identical with them compiled in. The CycleIdentityProbe
# test prints that cost; the same lines from both builds must match exactly.
cycle_identity_of() {
  local dir="$1"
  "$dir"/tests/core_switch_test --gtest_filter='*CycleIdentityProbe*' \
    --gtest_brief=1 | grep '^CYCLE_IDENTITY'
}

run_obsoff() {
  configure_and_build build
  configure_and_build build-obsoff -DMERCURY_OBS=OFF
  run_label build-obsoff tier1
  local on off
  on="$(cycle_identity_of build)"
  off="$(cycle_identity_of build-obsoff)"
  if [[ "$on" != "$off" ]]; then
    echo "run_tiers: FAIL: switch cycle counts differ between MERCURY_OBS=ON and OFF" >&2
    diff <(echo "$on") <(echo "$off") >&2 || true
    exit 1
  fi
  echo "run_tiers: obsoff OK — cycle identity holds:"
  echo "$on"
}

# The chaos soak: run the soak-labelled tests with MERCURY_SOAK_JSON pointed
# at an artifact directory, then schema-validate and gate every verdict the
# run emitted (unresolved requests, invariant violations, workload
# corruption, or non-convergence all fail the gate).
run_soak() {
  configure_and_build build
  local art="$PWD/build/soak-artifacts"
  mkdir -p "$art"
  rm -f "$art"/*.json
  MERCURY_SOAK_JSON="$art/" ctest --test-dir build -L soak "${CTEST_FLAGS[@]}"
  local found=0
  for verdict in "$art"/*.json; do
    [[ -e $verdict ]] || break
    python3 scripts/check_bench_json.py "$verdict" --schema soak \
      --require switch.supervisor.attempts
    found=1
  done
  if [[ $found -eq 0 ]]; then
    echo "run_tiers: FAIL: the soak run emitted no mercury.soak.v1 verdicts" >&2
    exit 1
  fi
}

# The observability plane end-to-end: run bench_soak with the cluster soak
# and engine profiler attached, then schema-validate the three artifacts it
# writes. Fails if the bench fails, an artifact is missing, or any document
# violates its schema (including the per-node sections and the soak gates).
run_profile() {
  configure_and_build build
  local art="$PWD/build/profile-artifacts"
  mkdir -p "$art"
  rm -f "$art"/*.json
  build/bench/bench_soak \
    --soak-json "$art/soak.json" \
    --timeseries-json "$art/timeseries.json" \
    --profile-json "$art/profile.json"
  python3 scripts/check_bench_json.py "$art/soak.json" --schema soak
  # The fleet verdict carries nodes[] with per-node pause rollups; the soak
  # schema gates zero unattributed intervals on every node.
  python3 scripts/check_bench_json.py "$art/soak.json.fleet.json" \
    --schema soak
  python3 scripts/check_bench_json.py "$art/timeseries.json" \
    --schema timeseries
  python3 scripts/check_bench_json.py "$art/profile.json" --schema profile
  echo "run_tiers: profile OK — artifacts in $art/"
}

mode="${1:-tier1}"
case "$mode" in
  tier1)
    configure_and_build build
    run_label build tier1
    ;;
  tier2)
    # -L is a regex: the chaos soak (label "soak") rides along with the
    # dependability sweeps.
    configure_and_build build
    run_label build "tier2|soak"
    ;;
  soak)
    run_soak
    ;;
  profile)
    run_profile
    ;;
  obsoff)
    run_obsoff
    ;;
  asan)
    run_sanitizer address
    ;;
  ubsan)
    run_sanitizer undefined
    ;;
  tsan)
    run_sanitizer thread
    ;;
  all)
    configure_and_build build
    run_label build tier1
    run_label build "tier2|soak"
    run_obsoff
    run_sanitizer address
    run_sanitizer undefined
    run_sanitizer thread
    ;;
  *)
    echo "usage: $0 [tier1|tier2|soak|profile|obsoff|asan|ubsan|tsan|all]" >&2
    exit 2
    ;;
esac
