#!/usr/bin/env bash
# Build and run the Mercury test tiers.
#
#   scripts/run_tiers.sh [tier1|tier2|asan|ubsan|all]
#
#   tier1  - the fast regression suite (default; every unit/integration test)
#   tier2  - the dependability sweeps: fault matrix + seeded switch fuzzer
#   asan   - full suite under AddressSanitizer  (build-asan/)
#   ubsan  - full suite under UBSanitizer       (build-ubsan/)
#   all    - tier1, tier2, then both sanitizer suites
#
# Seeded tests print MERCURY_TEST_SEED=<n> on start; export that variable to
# replay a failure exactly (see TESTING.md).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
CTEST_FLAGS=(--output-on-failure)

configure_and_build() {
  local dir="$1"; shift
  # Fail fast on configure errors: a failed configure leaves a stale (or
  # half-written) CMakeCache that a subsequent --build could silently reuse,
  # and the quiet stdout redirect would hide what went wrong.
  if ! cmake -S . -B "$dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@" >/dev/null; then
    echo "run_tiers: cmake configure failed for $dir/" >&2
    echo "run_tiers: rerun verbosely: cmake -S . -B $dir $*" >&2
    exit 1
  fi
  cmake --build "$dir" -j "$JOBS"
}

run_label() {
  local dir="$1" label="$2"
  ctest --test-dir "$dir" -L "$label" "${CTEST_FLAGS[@]}"
}

run_sanitizer() {
  local kind="$1"  # address | undefined
  local dir=build-ubsan
  [[ $kind == address ]] && dir=build-asan
  configure_and_build "$dir" -DMERCURY_SANITIZE="$kind"
  ctest --test-dir "$dir" "${CTEST_FLAGS[@]}"
}

mode="${1:-tier1}"
case "$mode" in
  tier1|tier2)
    configure_and_build build
    run_label build "$mode"
    ;;
  asan)
    run_sanitizer address
    ;;
  ubsan)
    run_sanitizer undefined
    ;;
  all)
    configure_and_build build
    run_label build tier1
    run_label build tier2
    run_sanitizer address
    run_sanitizer undefined
    ;;
  *)
    echo "usage: $0 [tier1|tier2|asan|ubsan|all]" >&2
    exit 2
    ;;
esac
