#!/usr/bin/env python3
"""Render Mercury observability artifacts as human-readable reports.

Usage:
    scripts/blackbox_report.py mercury-postmortem-0.json
    scripts/blackbox_report.py bundle.json --tail 80
    scripts/blackbox_report.py timeseries.json
    scripts/blackbox_report.py profile.json

Dispatches on the document's `schema` field. For a `mercury.postmortem.v1`
bundle (see obs/postmortem.hpp) it prints: the failure header, per-CPU
clocks, the phase timeline reconstructed from paired phase.begin/phase.end
flight events, the supervisor timeline (attempts, backoffs, resolutions,
health transitions), refcount-retry storms, crew shard utilization, SLO
breaches, and the raw tail of the flight ring. For `mercury.timeseries.v1`
it prints each series as a unicode sparkline with min/max/last stats; for
`mercury.profile.v1`, the engine-loop buckets ranked by wall time; for
`mercury.pause.v1`, the per-cause pause-attribution table, per-CPU
unavailability totals, and the flight tail surrounding the worst-case
interval. Stdlib-only, importable: render(doc) / render_timeseries(doc) /
render_profile(doc) / render_pause(doc) return the reports as strings.
Failures (unreadable, truncated, or malformed documents) are one-line
diagnostics, never tracebacks.
"""

import argparse
import json
import sys

CYCLES_PER_US = 3000.0  # the simulator's 3 GHz clock (hw/types.hpp)


def _us(cycles):
    return cycles / CYCLES_PER_US


def _fmt_event(ev):
    args = ev.get("args", [0, 0, 0])
    return (
        f"seq {ev['seq']:>8}  cpu {ev['cpu']:>2}  "
        f"{_us(ev['cycles']):>12.3f}us  {ev['type']:<17} {ev['name']}"
        f"  [{args[0]}, {args[1]}, {args[2]}]"
    )


def phase_timeline(events):
    """Pair phase.begin/phase.end by (cpu, name), innermost-first. Returns
    [(begin_cycles, cpu, name, duration_cycles_or_None)] — None marks a
    phase still open when the recording stopped (the likely crime scene)."""
    open_phases = {}  # (cpu, name) -> stack of begin events
    rows = []
    for ev in events:
        key = (ev["cpu"], ev["name"])
        if ev["type"] == "phase.begin":
            open_phases.setdefault(key, []).append(ev)
            rows.append([ev["cycles"], ev["cpu"], ev["name"], None])
        elif ev["type"] == "phase.end" and open_phases.get(key):
            begin = open_phases[key].pop()
            for row in reversed(rows):
                if row[1] == ev["cpu"] and row[2] == ev["name"] and (
                    row[3] is None
                ):
                    row[3] = ev["cycles"] - begin["cycles"]
                    break
    return [tuple(r) for r in rows]


def crew_utilization(events):
    """Per-phase crew summary from crew.publish/grab/join events. Returns
    [(phase_name, shards, busy_cycles, span_cycles, per_worker)] where
    per_worker maps cpu -> busy cycles from its grab events."""
    out = []
    per_worker = {}
    current = None
    for ev in events:
        if ev["type"] == "crew.publish":
            current = ev["name"]
            per_worker = {}
        elif ev["type"] == "crew.grab" and current == ev["name"]:
            per_worker[ev["cpu"]] = per_worker.get(ev["cpu"], 0) + (
                ev["args"][2]
            )
        elif ev["type"] == "crew.join" and current == ev["name"]:
            shards, busy, span = ev["args"]
            out.append((ev["name"], shards, busy, span, dict(per_worker)))
            current = None
    return out


# SupervisorHealth enum values (core/switch_supervisor.hpp).
HEALTH_NAMES = {0: "healthy", 1: "degraded", 2: "quarantined"}
# ExecMode enum values (core/mode.hpp), as supervisor.attempt's arg2.
MODE_NAMES = {0: "native", 1: "partial-virtual", 2: "full-virtual"}


def supervisor_timeline(events):
    """Supervised-request activity from supervisor.* flight events, in ring
    order. Returns [(cycles, description)] rows — the retry/backoff/health
    story the switch supervisor recorded before the bundle was dumped."""
    rows = []
    for ev in events:
        args = ev.get("args", [0, 0, 0])
        if ev["type"] == "supervisor.attempt":
            target = MODE_NAMES.get(args[2], f"mode#{args[2]}")
            rows.append(
                (ev["cycles"],
                 f"request {args[0]} attempt #{args[1]} -> {target}")
            )
        elif ev["type"] == "supervisor.backoff":
            rows.append(
                (ev["cycles"],
                 f"request {args[0]} backoff after attempt #{args[1]} "
                 f"({_us(args[2]):.3f} us)")
            )
        elif ev["type"] == "supervisor.resolve":
            rows.append(
                (ev["cycles"],
                 f"request {args[0]} resolved {ev['name']} "
                 f"after {args[2]} attempt(s)")
            )
        elif ev["type"] == "supervisor.health":
            frm = HEALTH_NAMES.get(args[0], f"health#{args[0]}")
            to = HEALTH_NAMES.get(args[1], f"health#{args[1]}")
            rows.append(
                (ev["cycles"],
                 f"health {frm} -> {to} (failure streak {args[2]})")
            )
    return rows


def render(doc, tail_n=40):
    """Render the bundle as a report string; raises KeyError/TypeError only
    on documents that check_bench_json.py --schema postmortem would reject."""
    lines = []
    add = lines.append

    add("=== Mercury black-box postmortem ===")
    add(f"reason : {doc['reason']}")
    if doc.get("detail"):
        add(f"detail : {doc['detail']}")
    sw = doc.get("switch", {})
    if sw.get("from") or sw.get("target"):
        add(f"switch : {sw.get('from') or '?'} -> {sw.get('target') or '?'}")
    fault = doc.get("fault")
    if fault:
        add(
            f"fault  : site={fault['site']} kind={fault['kind']} "
            f"cpu={fault['cpu']}"
        )
    add(f"active_refs: {doc.get('active_refs')}")

    clocks = doc.get("cpu_clocks", [])
    if clocks:
        add("")
        add("--- per-CPU simulated clocks ---")
        for c in clocks:
            add(f"  cpu {c['cpu']:>2}: {_us(c['cycles']):>14.3f} us")

    flight = doc.get("flight", {})
    events = flight.get("events", [])
    add("")
    add(
        f"--- flight ring: {flight.get('recorded', 0)} recorded, "
        f"{flight.get('dropped', 0)} dropped, {len(events)} in tail ---"
    )

    timeline = phase_timeline(events)
    if timeline:
        add("")
        add("--- phase timeline ---")
        for begin, cpu, name, dur in timeline:
            dur_txt = (
                f"{_us(dur):>12.3f} us" if dur is not None else "   (unfinished)"
            )
            add(f"  {_us(begin):>14.3f}us  cpu {cpu:>2}  {name:<32} {dur_txt}")

    supervisor = supervisor_timeline(events)
    if supervisor:
        add("")
        add("--- supervisor timeline ---")
        for cycles, desc in supervisor:
            add(f"  {_us(cycles):>14.3f}us  {desc}")

    retries = [e for e in events if e["type"] == "refcount.retry"]
    if retries:
        add("")
        max_refs = max(e["args"][0] for e in retries)
        add(
            f"--- refcount retry storm: {len(retries)} deferrals in tail, "
            f"max observed active_refs {max_refs} ---"
        )

    crews = crew_utilization(events)
    if crews:
        add("")
        add("--- crew utilization ---")
        for name, shards, busy, span, per_worker in crews:
            util = busy / span if span else 0.0
            add(
                f"  {name:<28} {shards:>4} shards  busy {_us(busy):>12.3f}us"
                f"  span {_us(span):>12.3f}us  busy/span {util:.2f}"
            )
            for cpu in sorted(per_worker):
                add(f"    cpu {cpu:>2}: {_us(per_worker[cpu]):>12.3f} us busy")

    breaches = [e for e in events if e["type"] == "slo.breach"]
    if breaches:
        add("")
        add("--- SLO breaches ---")
        for e in breaches:
            add(
                f"  {e['name']}: ran {_us(e['args'][0]):.3f} us against a "
                f"budget of {_us(e['args'][1]):.3f} us (cpu {e['cpu']})"
            )

    hits = [e for e in events if e["type"] == "fault.hit"]
    if hits:
        add("")
        add("--- fault hits ---")
        for e in hits:
            add(
                f"  {e['name']} on cpu {e['cpu']} "
                f"(visit #{e['args'][2]}, kind {e['args'][1]})"
            )

    rollback = [e for e in events if e["type"] == "rollback.step"]
    if rollback:
        add("")
        add("--- rollback steps ---")
        for e in rollback:
            add(f"  step {e['args'][0]}: {e['name']} (cpu {e['cpu']})")

    if events:
        add("")
        add(f"--- last {min(tail_n, len(events))} flight events ---")
        for ev in events[-tail_n:]:
            add("  " + _fmt_event(ev))

    extra = doc.get("extra", [])
    if extra:
        add("")
        add("--- extra ---")
        for e in extra:
            add(f"  {e['name']} = {e['value']}")
    return "\n".join(lines) + "\n"


SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values, width=48):
    """Downsample `values` to at most `width` buckets and render them as a
    unicode sparkline. Flat series render as a line of the lowest glyph."""
    if not values:
        return ""
    if len(values) > width:
        # Bucket means, so a spike inside a bucket still moves the glyph.
        step = len(values) / width
        values = [
            sum(vs) / len(vs)
            for vs in (
                values[int(i * step):max(int((i + 1) * step),
                                         int(i * step) + 1)]
                for i in range(width)
            )
        ]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span == 0:
        return SPARK_CHARS[0] * len(values)
    return "".join(
        SPARK_CHARS[min(int((v - lo) / span * len(SPARK_CHARS)),
                        len(SPARK_CHARS) - 1)]
        for v in values
    )


def render_timeseries(doc):
    """Render a mercury.timeseries.v1 document: one sparkline row per
    series, grouped by label (node), with min/max/last stats."""
    lines = []
    add = lines.append
    add("=== Mercury time series ===")
    add(
        f"interval: {_us(doc.get('interval_cycles', 0)):.3f} us, "
        f"{doc.get('samples', 0)} samples, "
        f"{doc.get('dropped', 0)} dropped, "
        f"{len(doc.get('series', []))} series"
    )
    by_label = {}
    for s in doc.get("series", []):
        by_label.setdefault(s.get("label", ""), []).append(s)
    for label in sorted(by_label):
        add("")
        add(f"--- {label or 'fleet'} ---")
        width = max((len(s['name']) for s in by_label[label]), default=0)
        for s in by_label[label]:
            values = [p[1] for p in s.get("points", [])]
            if not values:
                add(f"  {s['name']:<{width}}  (no samples)")
                continue
            add(
                f"  {s['name']:<{width}}  {sparkline(values)}  "
                f"min {min(values):g}  max {max(values):g}  "
                f"last {values[-1]:g}"
            )
    return "\n".join(lines) + "\n"


def render_profile(doc):
    """Render a mercury.profile.v1 document: buckets ranked by wall time
    with per-event costs and the wall/sim attribution."""
    lines = []
    add = lines.append
    add("=== Mercury engine profile ===")
    state = "enabled" if doc.get("enabled") else "disabled"
    wall_total = doc.get("wall_ns_total", 0)
    add(
        f"profiler {state}: {doc.get('events_total', 0)} events, "
        f"{wall_total / 1e6:.3f} ms wall total"
    )
    buckets = sorted(
        doc.get("buckets", []),
        key=lambda b: b.get("wall_ns", 0),
        reverse=True,
    )
    if not buckets:
        add("(no buckets recorded)")
        return "\n".join(lines) + "\n"
    width = max(len(b["name"]) for b in buckets)
    add("")
    add(
        f"  {'bucket':<{width}}  {'count':>8}  {'wall ms':>10}  "
        f"{'wall %':>7}  {'ns/event':>9}  {'sim us':>12}"
    )
    for b in buckets:
        count = b.get("count", 0)
        wall = b.get("wall_ns", 0)
        per_event = wall / count if count else 0.0
        add(
            f"  {b['name']:<{width}}  {count:>8}  {wall / 1e6:>10.3f}  "
            f"{b.get('wall_fraction', 0.0):>7.1%}  {per_event:>9.0f}  "
            f"{_us(b.get('sim_cycles', 0)):>12.3f}"
        )
    return "\n".join(lines) + "\n"


def render_pause(doc, tail_n=40):
    """Render a mercury.pause.v1 ledger: the per-cause attribution table,
    per-CPU unavailability totals, the worst-case interval, and the flight
    tail surrounding it (cut around worst.flight_seq when it is still in
    the ring)."""
    lines = []
    add = lines.append
    add("=== Mercury pause observatory ===")
    add(
        f"intervals: {doc['intervals']} recorded, "
        f"{doc['unattributed']} unattributed"
    )
    worst = doc["worst"]
    if worst["cause"] == "none":
        add("worst    : (no intervals recorded)")
    else:
        add(
            f"worst    : {_us(worst['span']):.3f} us on cpu {worst['cpu']} — "
            f"{worst['cause']}"
            + (f" ({worst['detail']})" if worst.get("detail") else "")
            + f", [{_us(worst['begin']):.3f} .. {_us(worst['end']):.3f}] us, "
            f"flight seq {worst['flight_seq']}"
        )

    causes = doc.get("causes", [])
    if causes:
        add("")
        add("--- attribution by cause (nested windows; not additive) ---")
        width = max(len(c["name"]) for c in causes)
        add(
            f"  {'cause':<{width}}  {'count':>8}  {'total us':>14}  "
            f"{'p50<= us':>12}  {'p99<= us':>12}  {'worst us':>12}"
        )
        for c in causes:
            add(
                f"  {c['name']:<{width}}  {c['count']:>8}  "
                f"{_us(c['total_cycles']):>14.3f}  {_us(c['p50']):>12.3f}  "
                f"{_us(c['p99']):>12.3f}  {_us(c['max']):>12.3f}"
            )

    cpus = doc.get("cpus", [])
    if cpus:
        add("")
        add("--- per-CPU unavailability ---")
        for c in cpus:
            add(f"  cpu {c['cpu']:>2}: {_us(c['total_cycles']):>14.3f} us")

    events = doc.get("flight", {}).get("events", [])
    if events:
        add("")
        # Cut the tail around the worst interval's flight event when the
        # ring still holds it; otherwise fall back to the newest events.
        seqs = [e["seq"] for e in events]
        target = worst.get("flight_seq")
        if worst["cause"] != "none" and target in seqs:
            at = seqs.index(target)
            lo = max(0, at - tail_n + 1)
            window = events[lo:at + 1]
            add(
                f"--- {len(window)} flight events up to the worst interval "
                f"(seq {target}) ---"
            )
        else:
            window = events[-tail_n:]
            add(f"--- last {len(window)} flight events ---")
        for ev in window:
            add("  " + _fmt_event(ev))
    return "\n".join(lines) + "\n"


RENDERERS = {
    "mercury.postmortem.v1": None,  # render(doc, tail_n) — takes --tail
    "mercury.timeseries.v1": render_timeseries,
    "mercury.profile.v1": render_profile,
    "mercury.pause.v1": None,  # render_pause(doc, tail_n) — takes --tail
}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "path",
        help="artifact to render (postmortem bundle, time series, or "
        "engine profile)",
    )
    ap.add_argument(
        "--tail",
        type=int,
        default=40,
        metavar="N",
        help="raw flight events to print at the end (default 40)",
    )
    args = ap.parse_args()

    # Every failure mode — unreadable file, truncated JSON, a non-object
    # document, or a renderer tripping over a malformed section — is a
    # one-line diagnostic carrying (file, schema, reason), never a
    # traceback.
    try:
        with open(args.path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"blackbox_report: FAIL: {args.path}: cannot parse: {e}",
              file=sys.stderr)
        sys.exit(2)
    schema = doc.get("schema") if isinstance(doc, dict) else None
    if schema not in RENDERERS:
        print(
            f"blackbox_report: FAIL: {args.path}: schema is {schema!r}, "
            f"expected one of {sorted(RENDERERS)}",
            file=sys.stderr,
        )
        sys.exit(2)
    try:
        if schema == "mercury.postmortem.v1":
            out = render(doc, args.tail)
        elif schema == "mercury.pause.v1":
            out = render_pause(doc, args.tail)
        else:
            out = RENDERERS[schema](doc)
    except (KeyError, TypeError, IndexError, ValueError) as e:
        print(
            f"blackbox_report: FAIL: {args.path}: schema {schema}: "
            f"malformed document ({type(e).__name__}: {e})",
            file=sys.stderr,
        )
        sys.exit(2)
    sys.stdout.write(out)


if __name__ == "__main__":
    main()
