#!/usr/bin/env python3
"""Validate Mercury JSON artifacts: bench metrics and postmortem bundles.

Usage:
    scripts/check_bench_json.py out.json
    scripts/check_bench_json.py out.json --require switch.attach.total_cycles \
        --require switch.detach.total_cycles
    scripts/check_bench_json.py mercury-postmortem-0.json --schema postmortem

Exits 0 when the document is well-formed against the selected schema
(mercury.metrics.v1 by default, mercury.postmortem.v1 with
--schema postmortem) and every --require name is present as an instrument;
nonzero otherwise. Stdlib-only on purpose: usable on any machine that can
run the benches. The validators are importable (see
scripts/test_check_bench_json.py).
"""

import argparse
import json
import sys

METRICS_SCHEMA = "mercury.metrics.v1"
POSTMORTEM_SCHEMA = "mercury.postmortem.v1"
HIST_FIELDS = ("count", "sum", "min", "mean", "max", "p50", "p90", "p99")


class SchemaError(Exception):
    """Raised by the validators on the first schema violation found."""


def _is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _check_entry(section, i, entry, extra_fields):
    where = f"{section}[{i}]"
    if not isinstance(entry, dict):
        raise SchemaError(f"{where} is not an object")
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        raise SchemaError(f"{where} lacks a non-empty string 'name'")
    if "label" in entry and not isinstance(entry["label"], str):
        raise SchemaError(f"{where} ('{name}') has a non-string 'label'")
    for field in extra_fields:
        if field not in entry:
            raise SchemaError(f"{where} ('{name}') lacks '{field}'")
        if not _is_number(entry[field]):
            raise SchemaError(
                f"{where} ('{name}') field '{field}' is not a number"
            )
    return name


def validate_metrics(doc):
    """Validate a mercury.metrics.v1 document; returns the set of
    instrument names. Raises SchemaError on the first violation."""
    if not isinstance(doc, dict):
        raise SchemaError("top-level value is not an object")
    if doc.get("schema") != METRICS_SCHEMA:
        raise SchemaError(
            f"schema is {doc.get('schema')!r}, expected {METRICS_SCHEMA!r}"
        )

    names = set()
    for section, extra in (
        ("counters", ("value",)),
        ("gauges", ("value",)),
        ("histograms", HIST_FIELDS),
    ):
        entries = doc.get(section)
        if not isinstance(entries, list):
            raise SchemaError(f"'{section}' is missing or not an array")
        for i, entry in enumerate(entries):
            names.add(_check_entry(section, i, entry, extra))

    for i, entry in enumerate(doc["histograms"]):
        name = entry["name"]
        if entry["count"] > 0:
            if not entry["min"] <= entry["mean"] <= entry["max"]:
                raise SchemaError(
                    f"histograms[{i}] ('{name}'): min <= mean <= max violated"
                )
            if not entry["p50"] <= entry["p90"] <= entry["p99"]:
                raise SchemaError(
                    f"histograms[{i}] ('{name}'): quantiles not monotonic"
                )
        if entry["count"] < 0:
            raise SchemaError(f"histograms[{i}] ('{name}'): negative count")
    return names


def validate_flight_event(i, ev):
    where = f"flight.events[{i}]"
    if not isinstance(ev, dict):
        raise SchemaError(f"{where} is not an object")
    for field in ("seq", "cpu", "cycles"):
        if not _is_number(ev.get(field)):
            raise SchemaError(f"{where} field '{field}' is not a number")
    for field in ("type", "name"):
        if not isinstance(ev.get(field), str) or not ev[field]:
            raise SchemaError(
                f"{where} lacks a non-empty string '{field}'"
            )
    args = ev.get("args")
    if not isinstance(args, list) or len(args) != 3 or not all(
        _is_number(a) for a in args
    ):
        raise SchemaError(f"{where} 'args' is not a list of 3 numbers")


def validate_postmortem(doc):
    """Validate a mercury.postmortem.v1 bundle (including its embedded
    metrics snapshot). Returns the set of embedded instrument names.
    Raises SchemaError on the first violation."""
    if not isinstance(doc, dict):
        raise SchemaError("top-level value is not an object")
    if doc.get("schema") != POSTMORTEM_SCHEMA:
        raise SchemaError(
            f"schema is {doc.get('schema')!r}, expected {POSTMORTEM_SCHEMA!r}"
        )
    if not isinstance(doc.get("reason"), str) or not doc["reason"]:
        raise SchemaError("'reason' is missing or not a non-empty string")
    if not isinstance(doc.get("detail"), str):
        raise SchemaError("'detail' is missing or not a string")

    sw = doc.get("switch")
    if not isinstance(sw, dict):
        raise SchemaError("'switch' is missing or not an object")
    for field in ("from", "target"):
        if not isinstance(sw.get(field), str):
            raise SchemaError(f"switch.{field} is not a string")

    if "fault" in doc:
        fault = doc["fault"]
        if not isinstance(fault, dict):
            raise SchemaError("'fault' is not an object")
        for field in ("site", "kind"):
            if not isinstance(fault.get(field), str) or not fault[field]:
                raise SchemaError(
                    f"fault.{field} is missing or not a non-empty string"
                )
        if not _is_number(fault.get("cpu")):
            raise SchemaError("fault.cpu is not a number")

    if not _is_number(doc.get("active_refs")):
        raise SchemaError("'active_refs' is missing or not a number")

    clocks = doc.get("cpu_clocks")
    if not isinstance(clocks, list):
        raise SchemaError("'cpu_clocks' is missing or not an array")
    for i, c in enumerate(clocks):
        if not isinstance(c, dict) or not _is_number(c.get("cpu")) or not (
            _is_number(c.get("cycles"))
        ):
            raise SchemaError(f"cpu_clocks[{i}] lacks numeric cpu/cycles")

    flight = doc.get("flight")
    if not isinstance(flight, dict):
        raise SchemaError("'flight' is missing or not an object")
    for field in ("recorded", "dropped"):
        if not _is_number(flight.get(field)):
            raise SchemaError(f"flight.{field} is not a number")
    events = flight.get("events")
    if not isinstance(events, list):
        raise SchemaError("flight.events is missing or not an array")
    prev_seq = None
    for i, ev in enumerate(events):
        validate_flight_event(i, ev)
        if prev_seq is not None and ev["seq"] <= prev_seq:
            raise SchemaError(
                f"flight.events[{i}]: seq {ev['seq']} not strictly increasing"
            )
        prev_seq = ev["seq"]

    extra = doc.get("extra")
    if not isinstance(extra, list):
        raise SchemaError("'extra' is missing or not an array")
    for i, e in enumerate(extra):
        if not isinstance(e, dict) or not isinstance(e.get("name"), str) or (
            not _is_number(e.get("value"))
        ):
            raise SchemaError(f"extra[{i}] lacks string name / numeric value")

    if "metrics" not in doc:
        raise SchemaError("'metrics' (embedded snapshot) is missing")
    return validate_metrics(doc["metrics"])


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("path", help="JSON artifact to validate")
    ap.add_argument(
        "--schema",
        choices=("metrics", "postmortem"),
        default="metrics",
        help="document schema to validate against (default: metrics)",
    )
    ap.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="instrument name that must be present (repeatable)",
    )
    args = ap.parse_args()

    try:
        with open(args.path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args.path}: {e}")

    try:
        if args.schema == "metrics":
            names = validate_metrics(doc)
        else:
            names = validate_postmortem(doc)
    except SchemaError as e:
        fail(str(e))

    missing = [n for n in args.require if n not in names]
    if missing:
        fail(f"required instruments absent: {', '.join(missing)}")

    if args.schema == "metrics":
        print(
            f"check_bench_json: OK: {args.path} — "
            f"{len(doc['counters'])} counters, {len(doc['gauges'])} gauges, "
            f"{len(doc['histograms'])} histograms"
        )
    else:
        print(
            f"check_bench_json: OK: {args.path} — postmortem "
            f"({doc['reason']}), {len(doc['flight']['events'])} flight events"
        )


if __name__ == "__main__":
    main()
