#!/usr/bin/env python3
"""Validate Mercury JSON artifacts: bench metrics, postmortem bundles,
chaos-soak verdicts, sampled time series, and engine profiles.

Usage:
    scripts/check_bench_json.py out.json
    scripts/check_bench_json.py out.json --require switch.attach.total_cycles \
        --require switch.detach.total_cycles
    scripts/check_bench_json.py mercury-postmortem-0.json --schema postmortem
    scripts/check_bench_json.py soak.json --schema soak
    scripts/check_bench_json.py ts.json --schema timeseries
    scripts/check_bench_json.py prof.json --schema profile
    scripts/check_bench_json.py pause.json --schema pause

Exits 0 when the document is well-formed against the selected schema
(mercury.metrics.v1 by default; mercury.postmortem.v1 with
--schema postmortem, mercury.soak.v1 with --schema soak,
mercury.timeseries.v1 with --schema timeseries, mercury.profile.v1 with
--schema profile, mercury.pause.v1 with --schema pause) and every
--require name is present as an instrument; nonzero otherwise. The soak
schema additionally *gates*: zero unresolved requests, zero invariant
violations, zero workload corruptions, zero unattributed pause intervals
(document-wide and per node), and converged == true — the CI soak job
fails on any of them. The pause schema gates zero unattributed intervals
the same way. Every failure is a single line carrying the file, the
schema, and the reason. Stdlib-only on purpose: usable on any machine
that can run the benches. The validators are importable (see
scripts/test_check_bench_json.py).
"""

import argparse
import json
import sys

METRICS_SCHEMA = "mercury.metrics.v1"
POSTMORTEM_SCHEMA = "mercury.postmortem.v1"
SOAK_SCHEMA = "mercury.soak.v1"
TIMESERIES_SCHEMA = "mercury.timeseries.v1"
PROFILE_SCHEMA = "mercury.profile.v1"
PAUSE_SCHEMA = "mercury.pause.v1"
HIST_FIELDS = ("count", "sum", "min", "mean", "max", "p50", "p90", "p99")

# The six attribution causes a mercury.pause.v1 ledger always reports
# (silent causes appear with zero counts).
PAUSE_CAUSES = (
    "rendezvous-parked",
    "crew-shard-work",
    "tlb-shootdown",
    "hypercall-emulation",
    "rollback-unwind",
    "supervisor-retry-backoff",
)

# Section -> numeric fields a mercury.soak.v1 document must carry.
SOAK_SECTIONS = {
    "storm": ("rate", "burst", "decay", "fires", "windows"),
    "requests": (
        "submitted",
        "committed",
        "failed_deadline",
        "failed_attempts",
        "failed_quarantined",
        "cancelled",
        "unresolved",
    ),
    "supervisor": (
        "attempts",
        "retries",
        "backoffs",
        "quarantines",
        "recoveries",
        "probes",
    ),
    "engine": ("rollbacks", "cancels"),
    "invariants": ("checks", "violations"),
    "availability": ("fraction", "interruptions", "downtime_cycles",
                     "span_cycles"),
    "workload": ("ops", "bytes", "corruptions"),
    "pause": ("intervals", "unattributed", "worst_cycles"),
}

# Numeric fields of a per-node rollup inside a fleet soak verdict.
SOAK_NODE_FIELDS = (
    "submitted",
    "committed",
    "failed",
    "retries",
    "quarantines",
    "availability",
    "interruptions",
    "downtime_cycles",
    "span_cycles",
    "pause_intervals",
    "pause_unattributed",
    "pause_worst_cycles",
)


class SchemaError(Exception):
    """Raised by the validators on the first schema violation found."""


def _is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _check_entry(section, i, entry, extra_fields):
    where = f"{section}[{i}]"
    if not isinstance(entry, dict):
        raise SchemaError(f"{where} is not an object")
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        raise SchemaError(f"{where} lacks a non-empty string 'name'")
    if "label" in entry and not isinstance(entry["label"], str):
        raise SchemaError(f"{where} ('{name}') has a non-string 'label'")
    for field in extra_fields:
        if field not in entry:
            raise SchemaError(f"{where} ('{name}') lacks '{field}'")
        if not _is_number(entry[field]):
            raise SchemaError(
                f"{where} ('{name}') field '{field}' is not a number"
            )
    return name


def validate_metrics(doc):
    """Validate a mercury.metrics.v1 document; returns the set of
    instrument names. Raises SchemaError on the first violation."""
    if not isinstance(doc, dict):
        raise SchemaError("top-level value is not an object")
    if doc.get("schema") != METRICS_SCHEMA:
        raise SchemaError(
            f"schema is {doc.get('schema')!r}, expected {METRICS_SCHEMA!r}"
        )

    names = set()
    for section, extra in (
        ("counters", ("value",)),
        ("gauges", ("value",)),
        ("histograms", HIST_FIELDS),
    ):
        entries = doc.get(section)
        if not isinstance(entries, list):
            raise SchemaError(f"'{section}' is missing or not an array")
        for i, entry in enumerate(entries):
            names.add(_check_entry(section, i, entry, extra))

    for i, entry in enumerate(doc["histograms"]):
        name = entry["name"]
        if entry["count"] > 0:
            if not entry["min"] <= entry["mean"] <= entry["max"]:
                raise SchemaError(
                    f"histograms[{i}] ('{name}'): min <= mean <= max violated"
                )
            if not entry["p50"] <= entry["p90"] <= entry["p99"]:
                raise SchemaError(
                    f"histograms[{i}] ('{name}'): quantiles not monotonic"
                )
        if entry["count"] < 0:
            raise SchemaError(f"histograms[{i}] ('{name}'): negative count")
    return names


def validate_flight_event(i, ev):
    where = f"flight.events[{i}]"
    if not isinstance(ev, dict):
        raise SchemaError(f"{where} is not an object")
    for field in ("seq", "cpu", "cycles"):
        if not _is_number(ev.get(field)):
            raise SchemaError(f"{where} field '{field}' is not a number")
    for field in ("type", "name"):
        if not isinstance(ev.get(field), str) or not ev[field]:
            raise SchemaError(
                f"{where} lacks a non-empty string '{field}'"
            )
    args = ev.get("args")
    if not isinstance(args, list) or len(args) != 3 or not all(
        _is_number(a) for a in args
    ):
        raise SchemaError(f"{where} 'args' is not a list of 3 numbers")


def validate_postmortem(doc):
    """Validate a mercury.postmortem.v1 bundle (including its embedded
    metrics snapshot). Returns the set of embedded instrument names.
    Raises SchemaError on the first violation."""
    if not isinstance(doc, dict):
        raise SchemaError("top-level value is not an object")
    if doc.get("schema") != POSTMORTEM_SCHEMA:
        raise SchemaError(
            f"schema is {doc.get('schema')!r}, expected {POSTMORTEM_SCHEMA!r}"
        )
    if not isinstance(doc.get("reason"), str) or not doc["reason"]:
        raise SchemaError("'reason' is missing or not a non-empty string")
    if not isinstance(doc.get("detail"), str):
        raise SchemaError("'detail' is missing or not a string")

    sw = doc.get("switch")
    if not isinstance(sw, dict):
        raise SchemaError("'switch' is missing or not an object")
    for field in ("from", "target"):
        if not isinstance(sw.get(field), str):
            raise SchemaError(f"switch.{field} is not a string")

    if "fault" in doc:
        fault = doc["fault"]
        if not isinstance(fault, dict):
            raise SchemaError("'fault' is not an object")
        for field in ("site", "kind"):
            if not isinstance(fault.get(field), str) or not fault[field]:
                raise SchemaError(
                    f"fault.{field} is missing or not a non-empty string"
                )
        if not _is_number(fault.get("cpu")):
            raise SchemaError("fault.cpu is not a number")

    if not _is_number(doc.get("active_refs")):
        raise SchemaError("'active_refs' is missing or not a number")

    clocks = doc.get("cpu_clocks")
    if not isinstance(clocks, list):
        raise SchemaError("'cpu_clocks' is missing or not an array")
    for i, c in enumerate(clocks):
        if not isinstance(c, dict) or not _is_number(c.get("cpu")) or not (
            _is_number(c.get("cycles"))
        ):
            raise SchemaError(f"cpu_clocks[{i}] lacks numeric cpu/cycles")

    flight = doc.get("flight")
    if not isinstance(flight, dict):
        raise SchemaError("'flight' is missing or not an object")
    for field in ("recorded", "dropped"):
        if not _is_number(flight.get(field)):
            raise SchemaError(f"flight.{field} is not a number")
    events = flight.get("events")
    if not isinstance(events, list):
        raise SchemaError("flight.events is missing or not an array")
    prev_seq = None
    for i, ev in enumerate(events):
        validate_flight_event(i, ev)
        if prev_seq is not None and ev["seq"] <= prev_seq:
            raise SchemaError(
                f"flight.events[{i}]: seq {ev['seq']} not strictly increasing"
            )
        prev_seq = ev["seq"]

    extra = doc.get("extra")
    if not isinstance(extra, list):
        raise SchemaError("'extra' is missing or not an array")
    for i, e in enumerate(extra):
        if not isinstance(e, dict) or not isinstance(e.get("name"), str) or (
            not _is_number(e.get("value"))
        ):
            raise SchemaError(f"extra[{i}] lacks string name / numeric value")

    if "metrics" not in doc:
        raise SchemaError("'metrics' (embedded snapshot) is missing")
    return validate_metrics(doc["metrics"])


def validate_soak(doc):
    """Validate a mercury.soak.v1 verdict (including its embedded metrics
    snapshot) and enforce the soak gates: no unresolved requests, no
    invariant violations, no workload corruption, converged == true.
    Returns the set of embedded instrument names. Raises SchemaError on the
    first violation."""
    if not isinstance(doc, dict):
        raise SchemaError("top-level value is not an object")
    if doc.get("schema") != SOAK_SCHEMA:
        raise SchemaError(
            f"schema is {doc.get('schema')!r}, expected {SOAK_SCHEMA!r}"
        )
    for field in ("seed", "cpus", "planned_cycles"):
        if not _is_number(doc.get(field)):
            raise SchemaError(f"'{field}' is missing or not a number")
    for section, fields in SOAK_SECTIONS.items():
        sec = doc.get(section)
        if not isinstance(sec, dict):
            raise SchemaError(f"'{section}' is missing or not an object")
        for field in fields:
            if not _is_number(sec.get(field)):
                raise SchemaError(
                    f"{section}.{field} is missing or not a number"
                )
    if not isinstance(doc["supervisor"].get("final_health"), str):
        raise SchemaError("supervisor.final_health is not a string")
    if not isinstance(doc["pause"].get("worst_cause"), str) or not (
        doc["pause"]["worst_cause"]
    ):
        raise SchemaError(
            "pause.worst_cause is missing or not a non-empty string"
        )
    if not isinstance(doc.get("final_mode"), str) or not doc["final_mode"]:
        raise SchemaError("'final_mode' is missing or not a non-empty string")
    if not isinstance(doc.get("converged"), bool):
        raise SchemaError("'converged' is missing or not a boolean")
    if "metrics" not in doc:
        raise SchemaError("'metrics' (embedded snapshot) is missing")
    names = validate_metrics(doc["metrics"])

    # The gates. A soak that strands a request, breaks an invariant, or
    # corrupts the workload is a failed soak regardless of how pretty the
    # rest of the document is.
    if doc["requests"]["unresolved"] != 0:
        raise SchemaError(
            f"soak gate: {doc['requests']['unresolved']} unresolved "
            "request(s) — a supervised request was stranded"
        )
    if doc["invariants"]["violations"] != 0:
        raise SchemaError(
            f"soak gate: {doc['invariants']['violations']} invariant "
            "violation(s)"
        )
    if doc["workload"]["corruptions"] != 0:
        raise SchemaError(
            f"soak gate: {doc['workload']['corruptions']} workload "
            "corruption(s)"
        )
    if doc["pause"]["unattributed"] != 0:
        raise SchemaError(
            f"soak gate: {doc['pause']['unattributed']} unattributed "
            "unavailability interval(s) — a pause begin/end pairing bug"
        )
    if not doc["converged"]:
        raise SchemaError("soak gate: run did not converge")
    if not 0.0 <= doc["availability"]["fraction"] <= 1.0:
        raise SchemaError("availability.fraction outside [0, 1]")

    # Optional per-node rollups (fleet soaks). Single-machine verdicts omit
    # the section entirely.
    if "nodes" in doc:
        nodes = doc["nodes"]
        if not isinstance(nodes, list) or not nodes:
            raise SchemaError("'nodes' is present but not a non-empty array")
        for i, node in enumerate(nodes):
            where = f"nodes[{i}]"
            if not isinstance(node, dict):
                raise SchemaError(f"{where} is not an object")
            for field in (
                "name",
                "final_health",
                "final_mode",
                "pause_worst_cause",
            ):
                if not isinstance(node.get(field), str) or not node[field]:
                    raise SchemaError(
                        f"{where} lacks a non-empty string '{field}'"
                    )
            for field in SOAK_NODE_FIELDS:
                if not _is_number(node.get(field)):
                    raise SchemaError(
                        f"{where} ('{node['name']}') field '{field}' is "
                        "missing or not a number"
                    )
            if not 0.0 <= node["availability"] <= 1.0:
                raise SchemaError(
                    f"{where} ('{node['name']}') availability outside [0, 1]"
                )
            if node["pause_unattributed"] != 0:
                raise SchemaError(
                    f"soak gate: {where} ('{node['name']}') has "
                    f"{node['pause_unattributed']} unattributed "
                    "unavailability interval(s)"
                )
    return names


def validate_pause(doc):
    """Validate a mercury.pause.v1 unavailability ledger and enforce its
    gate: zero unattributed intervals (an orphaned begin/end half is a
    pairing bug in an instrumentation site). Returns the set of cause
    names. Raises SchemaError on the first violation."""
    if not isinstance(doc, dict):
        raise SchemaError("top-level value is not an object")
    if doc.get("schema") != PAUSE_SCHEMA:
        raise SchemaError(
            f"schema is {doc.get('schema')!r}, expected {PAUSE_SCHEMA!r}"
        )
    for field in ("intervals", "unattributed"):
        if not _is_number(doc.get(field)):
            raise SchemaError(f"'{field}' is missing or not a number")

    worst = doc.get("worst")
    if not isinstance(worst, dict):
        raise SchemaError("'worst' is missing or not an object")
    for field in ("cause", "detail"):
        if not isinstance(worst.get(field), str):
            raise SchemaError(f"worst.{field} is missing or not a string")
    if not worst["cause"]:
        raise SchemaError("worst.cause is empty ('none' when no intervals)")
    for field in ("cpu", "begin", "end", "span", "flight_seq"):
        if not _is_number(worst.get(field)):
            raise SchemaError(f"worst.{field} is missing or not a number")
    if worst["end"] < worst["begin"]:
        raise SchemaError("worst interval ends before it begins")
    if worst["span"] != worst["end"] - worst["begin"]:
        raise SchemaError("worst.span does not equal end - begin")

    causes = doc.get("causes")
    if not isinstance(causes, list) or not causes:
        raise SchemaError("'causes' is missing or not a non-empty array")
    names = set()
    for i, c in enumerate(causes):
        where = f"causes[{i}]"
        if not isinstance(c, dict):
            raise SchemaError(f"{where} is not an object")
        name = c.get("name")
        if not isinstance(name, str) or not name:
            raise SchemaError(f"{where} lacks a non-empty string 'name'")
        for field in ("count", "total_cycles", "p50", "p99", "max"):
            if not _is_number(c.get(field)):
                raise SchemaError(
                    f"{where} ('{name}') field '{field}' is missing or not "
                    "a number"
                )
        # p50/p99 are log2-bucket upper bounds and the max is exact, so the
        # bounds are monotone against each other but may exceed the max.
        if c["p50"] > c["p99"]:
            raise SchemaError(f"{where} ('{name}'): p50 > p99")
        if c["count"] == 0 and c["total_cycles"] != 0:
            raise SchemaError(
                f"{where} ('{name}'): cycles recorded with zero intervals"
            )
        names.add(name)
    missing = [c for c in PAUSE_CAUSES if c not in names]
    if missing:
        raise SchemaError(f"causes absent from ledger: {', '.join(missing)}")

    cpus = doc.get("cpus")
    if not isinstance(cpus, list):
        raise SchemaError("'cpus' is missing or not an array")
    for i, c in enumerate(cpus):
        if not isinstance(c, dict) or not _is_number(c.get("cpu")) or not (
            _is_number(c.get("total_cycles"))
        ):
            raise SchemaError(f"cpus[{i}] lacks numeric cpu/total_cycles")

    flight = doc.get("flight")
    if not isinstance(flight, dict):
        raise SchemaError("'flight' is missing or not an object")
    events = flight.get("events")
    if not isinstance(events, list):
        raise SchemaError("flight.events is missing or not an array")
    prev_seq = None
    for i, ev in enumerate(events):
        validate_flight_event(i, ev)
        if prev_seq is not None and ev["seq"] <= prev_seq:
            raise SchemaError(
                f"flight.events[{i}]: seq {ev['seq']} not strictly increasing"
            )
        prev_seq = ev["seq"]

    # The gate: every recorded unavailability interval must carry a cause.
    if doc["unattributed"] != 0:
        raise SchemaError(
            f"pause gate: {doc['unattributed']} unattributed unavailability "
            "interval(s) — a pause begin/end pairing bug"
        )
    return names


def validate_timeseries(doc):
    """Validate a mercury.timeseries.v1 document. Returns the set of series
    names. Raises SchemaError on the first violation."""
    if not isinstance(doc, dict):
        raise SchemaError("top-level value is not an object")
    if doc.get("schema") != TIMESERIES_SCHEMA:
        raise SchemaError(
            f"schema is {doc.get('schema')!r}, expected {TIMESERIES_SCHEMA!r}"
        )
    for field in ("interval_cycles", "capacity", "samples", "dropped"):
        if not _is_number(doc.get(field)):
            raise SchemaError(f"'{field}' is missing or not a number")
    series = doc.get("series")
    if not isinstance(series, list) or not series:
        raise SchemaError("'series' is missing or not a non-empty array")
    names = set()
    for i, s in enumerate(series):
        where = f"series[{i}]"
        if not isinstance(s, dict):
            raise SchemaError(f"{where} is not an object")
        name = s.get("name")
        if not isinstance(name, str) or not name:
            raise SchemaError(f"{where} lacks a non-empty string 'name'")
        if not isinstance(s.get("label"), str):
            raise SchemaError(f"{where} ('{name}') has a non-string 'label'")
        points = s.get("points")
        if not isinstance(points, list):
            raise SchemaError(
                f"{where} ('{name}') 'points' is missing or not an array"
            )
        prev_t = None
        for j, p in enumerate(points):
            if (
                not isinstance(p, list)
                or len(p) != 2
                or not all(_is_number(v) for v in p)
            ):
                raise SchemaError(
                    f"{where} ('{name}') points[{j}] is not a [t, value] "
                    "pair of numbers"
                )
            if prev_t is not None and p[0] < prev_t:
                raise SchemaError(
                    f"{where} ('{name}') points[{j}]: timestamp {p[0]} "
                    "decreases"
                )
            prev_t = p[0]
        names.add(name)
    return names


def validate_profile(doc):
    """Validate a mercury.profile.v1 document. Returns the set of bucket
    names. Raises SchemaError on the first violation."""
    if not isinstance(doc, dict):
        raise SchemaError("top-level value is not an object")
    if doc.get("schema") != PROFILE_SCHEMA:
        raise SchemaError(
            f"schema is {doc.get('schema')!r}, expected {PROFILE_SCHEMA!r}"
        )
    if not isinstance(doc.get("enabled"), bool):
        raise SchemaError("'enabled' is missing or not a boolean")
    for field in ("wall_ns_total", "events_total"):
        if not _is_number(doc.get(field)):
            raise SchemaError(f"'{field}' is missing or not a number")
    buckets = doc.get("buckets")
    if not isinstance(buckets, list):
        raise SchemaError("'buckets' is missing or not an array")
    if doc["enabled"] and not buckets:
        raise SchemaError("profiler enabled but no buckets recorded")
    names = set()
    for i, b in enumerate(buckets):
        where = f"buckets[{i}]"
        if not isinstance(b, dict):
            raise SchemaError(f"{where} is not an object")
        name = b.get("name")
        if not isinstance(name, str) or not name:
            raise SchemaError(f"{where} lacks a non-empty string 'name'")
        for field in ("count", "wall_ns", "sim_cycles", "wall_fraction"):
            if not _is_number(b.get(field)):
                raise SchemaError(
                    f"{where} ('{name}') field '{field}' is missing or not "
                    "a number"
                )
        if not 0.0 <= b["wall_fraction"] <= 1.0:
            raise SchemaError(
                f"{where} ('{name}') wall_fraction outside [0, 1]"
            )
        names.add(name)
    return names


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("path", help="JSON artifact to validate")
    ap.add_argument(
        "--schema",
        choices=("metrics", "postmortem", "soak", "timeseries", "profile",
                 "pause"),
        default="metrics",
        help="document schema to validate against (default: metrics)",
    )
    ap.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="instrument name that must be present (repeatable)",
    )
    args = ap.parse_args()

    schema_names = {
        "metrics": METRICS_SCHEMA,
        "postmortem": POSTMORTEM_SCHEMA,
        "soak": SOAK_SCHEMA,
        "timeseries": TIMESERIES_SCHEMA,
        "profile": PROFILE_SCHEMA,
        "pause": PAUSE_SCHEMA,
    }
    # Every failure is one line carrying (file, schema, reason): a truncated
    # or non-object artifact must diagnose itself, not raise a traceback.
    try:
        with open(args.path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"{args.path}: schema {schema_names[args.schema]}: "
             f"cannot parse: {e}")

    validators = {
        "metrics": validate_metrics,
        "postmortem": validate_postmortem,
        "soak": validate_soak,
        "timeseries": validate_timeseries,
        "profile": validate_profile,
        "pause": validate_pause,
    }
    try:
        names = validators[args.schema](doc)
    except SchemaError as e:
        fail(f"{args.path}: schema {schema_names[args.schema]}: {e}")

    missing = [n for n in args.require if n not in names]
    if missing:
        fail(f"required instruments absent: {', '.join(missing)}")

    if args.schema == "metrics":
        print(
            f"check_bench_json: OK: {args.path} — "
            f"{len(doc['counters'])} counters, {len(doc['gauges'])} gauges, "
            f"{len(doc['histograms'])} histograms"
        )
    elif args.schema == "postmortem":
        print(
            f"check_bench_json: OK: {args.path} — postmortem "
            f"({doc['reason']}), {len(doc['flight']['events'])} flight events"
        )
    elif args.schema == "soak":
        req = doc["requests"]
        nodes = doc.get("nodes", [])
        node_txt = f", {len(nodes)} node(s)" if nodes else ""
        print(
            f"check_bench_json: OK: {args.path} — soak converged: "
            f"{req['submitted']} requests ({req['committed']} committed), "
            f"{doc['storm']['fires']} storm fires, "
            f"final health {doc['supervisor']['final_health']}{node_txt}"
        )
    elif args.schema == "timeseries":
        print(
            f"check_bench_json: OK: {args.path} — {len(doc['series'])} "
            f"series, {doc['samples']} samples, {doc['dropped']} dropped"
        )
    elif args.schema == "pause":
        worst = doc["worst"]
        print(
            f"check_bench_json: OK: {args.path} — pause ledger: "
            f"{doc['intervals']} intervals, 0 unattributed, worst "
            f"{worst['span']} cycles ({worst['cause']})"
        )
    else:
        print(
            f"check_bench_json: OK: {args.path} — profile "
            f"({'enabled' if doc['enabled'] else 'disabled'}), "
            f"{len(doc['buckets'])} buckets, "
            f"{doc['events_total']} events"
        )


if __name__ == "__main__":
    main()
