#!/usr/bin/env python3
"""Validate a bench --metrics-json artifact against the mercury.metrics.v1 schema.

Usage:
    scripts/check_bench_json.py out.json
    scripts/check_bench_json.py out.json --require switch.attach.total_cycles \
        --require switch.detach.total_cycles

Exits 0 when the document is a well-formed mercury.metrics.v1 snapshot (and
every --require name is present as an instrument); nonzero otherwise.
Stdlib-only on purpose: usable on any machine that can run the benches.
"""

import argparse
import json
import sys

SCHEMA = "mercury.metrics.v1"
HIST_FIELDS = ("count", "sum", "min", "mean", "max", "p50", "p90", "p99")


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_entry(section, i, entry, extra_fields):
    where = f"{section}[{i}]"
    if not isinstance(entry, dict):
        fail(f"{where} is not an object")
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        fail(f"{where} lacks a non-empty string 'name'")
    if "label" in entry and not isinstance(entry["label"], str):
        fail(f"{where} ('{name}') has a non-string 'label'")
    for field in extra_fields:
        if field not in entry:
            fail(f"{where} ('{name}') lacks '{field}'")
        if not isinstance(entry[field], (int, float)) or isinstance(
            entry[field], bool
        ):
            fail(f"{where} ('{name}') field '{field}' is not a number")
    return name


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("path", help="metrics JSON file written by a bench")
    ap.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="instrument name that must be present (repeatable)",
    )
    args = ap.parse_args()

    try:
        with open(args.path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args.path}: {e}")

    if not isinstance(doc, dict):
        fail("top-level value is not an object")
    if doc.get("schema") != SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")

    names = set()
    for section, extra in (
        ("counters", ("value",)),
        ("gauges", ("value",)),
        ("histograms", HIST_FIELDS),
    ):
        entries = doc.get(section)
        if not isinstance(entries, list):
            fail(f"'{section}' is missing or not an array")
        for i, entry in enumerate(entries):
            names.add(check_entry(section, i, entry, extra))

    for i, entry in enumerate(doc["histograms"]):
        name = entry["name"]
        if entry["count"] > 0:
            if not entry["min"] <= entry["mean"] <= entry["max"]:
                fail(f"histograms[{i}] ('{name}'): min <= mean <= max violated")
            if not entry["p50"] <= entry["p90"] <= entry["p99"]:
                fail(f"histograms[{i}] ('{name}'): quantiles not monotonic")
        if entry["count"] < 0:
            fail(f"histograms[{i}] ('{name}'): negative count")

    missing = [n for n in args.require if n not in names]
    if missing:
        fail(f"required instruments absent: {', '.join(missing)}")

    print(
        f"check_bench_json: OK: {args.path} — "
        f"{len(doc['counters'])} counters, {len(doc['gauges'])} gauges, "
        f"{len(doc['histograms'])} histograms"
    )


if __name__ == "__main__":
    main()
