#!/usr/bin/env python3
"""Gate bench_modeswitch against the committed baseline.

Usage:
    scripts/bench_compare.py BENCH_modeswitch.json bench-new.json
    scripts/bench_compare.py baseline.json current.json --tolerance 0.10

Compares the `bench.modeswitch.*` gauges of two mercury.metrics.v1
documents. Latency gauges (*.attach_ms, *.detach_ms, *.attach_transfer_ms,
*.detach_transfer_ms, the warm sweep's *.cold_attach_ms /
*.warm_attach_ms, and the per-cause pause tails *.pause_p50_us /
*.pause_p99_us / *.pause_worst_us) regress when the current value exceeds
baseline * (1 + tolerance); speedup gauges (crew_speedup_largest_mem,
warm_reattach_speedup) regress when the current value falls below
baseline * (1 - tolerance). A baseline gauge
missing from the current run is a failure (a silently dropped sweep cell is
a regression in coverage); new gauges in the current run are fine.

The simulator is deterministic, so identical code produces byte-identical
numbers — the tolerance only absorbs intentional cost-model adjustments.
Exits nonzero (and lists every offender) when anything regressed.
Stdlib-only, importable (see scripts/test_check_bench_json.py).
"""

import argparse
import json
import sys

PREFIX = "bench.modeswitch."
LATENCY_SUFFIXES = (
    ".attach_ms",
    ".detach_ms",
    ".attach_transfer_ms",
    ".detach_transfer_ms",
    ".cold_attach_ms",
    ".warm_attach_ms",
    # Pause-observatory tails: per-cell, per-cause unavailability in us.
    ".pause_p50_us",
    ".pause_p99_us",
    ".pause_worst_us",
)
SPEEDUP_KEYS = (
    "bench.modeswitch.crew_speedup_largest_mem",
    "bench.modeswitch.warm_reattach_speedup",
)
# Sub-millisecond jitter floor: values this small are dominated by rounding
# in the ms conversion, not by a real cost change.
ABS_FLOOR_MS = 1e-6


def gauges(doc):
    """name -> value for every numerically-valued gauge in a
    mercury.metrics.v1 document."""
    out = {}
    entries = doc.get("gauges", []) if isinstance(doc, dict) else []
    if not isinstance(entries, list):
        entries = []
    for entry in entries:
        if (
            isinstance(entry, dict)
            and isinstance(entry.get("name"), str)
            and isinstance(entry.get("value"), (int, float))
            and not isinstance(entry.get("value"), bool)
        ):
            out[entry["name"]] = entry["value"]
    return out


def compare(baseline_doc, current_doc, tolerance=0.10, prefix=PREFIX):
    """Returns (regressions, rows): regressions is a list of human-readable
    failure strings, rows is [(name, baseline, current, verdict)] for every
    compared gauge."""
    base = gauges(baseline_doc)
    cur = gauges(current_doc)
    regressions = []
    rows = []
    for name in sorted(base):
        if not name.startswith(prefix):
            continue
        is_latency = name.endswith(LATENCY_SUFFIXES)
        is_speedup = name in SPEEDUP_KEYS
        if not is_latency and not is_speedup:
            continue
        b = base[name]
        if name not in cur:
            regressions.append(f"{name}: present in baseline, missing now")
            rows.append((name, b, None, "MISSING"))
            continue
        c = cur[name]
        if is_latency:
            limit = b * (1.0 + tolerance) + ABS_FLOOR_MS
            ok = c <= limit
            kind = f"latency over baseline*{1.0 + tolerance:.2f}"
        else:
            limit = b * (1.0 - tolerance)
            ok = c >= limit
            kind = f"speedup under baseline*{1.0 - tolerance:.2f}"
        rows.append((name, b, c, "ok" if ok else "REGRESSED"))
        if not ok:
            regressions.append(
                f"{name}: {c:.6g} vs baseline {b:.6g} ({kind})"
            )
    return regressions, rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed baseline metrics JSON")
    ap.add_argument("current", help="freshly produced metrics JSON")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="fractional slack before a change counts as a regression "
        "(default 0.10)",
    )
    ap.add_argument(
        "--prefix",
        default=PREFIX,
        help=f"gauge-name prefix to compare (default {PREFIX})",
    )
    args = ap.parse_args()

    docs = []
    for path in (args.baseline, args.current):
        try:
            with open(path, encoding="utf-8") as f:
                docs.append(json.load(f))
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_compare: FAIL: cannot parse {path}: {e}",
                  file=sys.stderr)
            sys.exit(2)
        if not isinstance(docs[-1], dict):
            print(f"bench_compare: FAIL: {path}: top-level JSON value is "
                  f"{type(docs[-1]).__name__}, not an object",
                  file=sys.stderr)
            sys.exit(2)

    regressions, rows = compare(docs[0], docs[1], args.tolerance, args.prefix)
    if not rows:
        print("bench_compare: FAIL: baseline has no comparable gauges "
              f"(prefix {args.prefix!r})", file=sys.stderr)
        sys.exit(2)

    width = max(len(r[0]) for r in rows)
    for name, b, c, verdict in rows:
        cur_txt = "missing" if c is None else f"{c:12.6f}"
        print(f"  {name:<{width}}  base {b:12.6f}  now {cur_txt}  {verdict}")

    if regressions:
        print(f"bench_compare: FAIL: {len(regressions)} regression(s):",
              file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        sys.exit(1)
    print(f"bench_compare: OK: {len(rows)} gauges within "
          f"{args.tolerance:.0%} of baseline")


if __name__ == "__main__":
    main()
