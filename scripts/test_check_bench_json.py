#!/usr/bin/env python3
"""Unit tests for the stdlib JSON tooling: check_bench_json.py (both
schemas), bench_compare.py, and blackbox_report.py.

Run directly (`python3 scripts/test_check_bench_json.py`) or via ctest
(`ctest -L tier1 -R py_json_tools`). Stdlib-only: unittest + json.
"""

import copy
import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_compare  # noqa: E402
import blackbox_report  # noqa: E402
import check_bench_json as cbj  # noqa: E402


def metrics_doc():
    return {
        "schema": "mercury.metrics.v1",
        "counters": [
            {"name": "switch.attach.count", "value": 4},
            {"name": "switch.rollbacks", "label": "engine", "value": 1},
        ],
        "gauges": [
            {"name": "bench.modeswitch.up.mem_kb=1024.attach_ms",
             "value": 1.25},
            {"name": "bench.modeswitch.up.mem_kb=1024.detach_ms",
             "value": 0.75},
            {"name": "bench.modeswitch.crew_speedup_largest_mem",
             "value": 3.1},
            {"name": "obs.flight.recorded", "value": 512},
            {"name": "bench.modeswitch.warm.mem_kb=921600.cold_attach_ms",
             "value": 16.0},
            {"name": "bench.modeswitch.warm.mem_kb=921600.warm_attach_ms",
             "value": 0.8},
            {"name": "bench.modeswitch.warm.mem_kb=921600.dirty_frames",
             "value": 359},
            {"name": "bench.modeswitch.warm_reattach_speedup",
             "value": 19.9},
            {"name": "bench.modeswitch.up.mem_kb=1024."
                     "rendezvous-parked.pause_p50_us", "value": 1.5},
            {"name": "bench.modeswitch.up.mem_kb=1024."
                     "rendezvous-parked.pause_p99_us", "value": 3.2},
            {"name": "bench.modeswitch.up.mem_kb=1024."
                     "rendezvous-parked.pause_worst_us", "value": 4.0},
        ],
        "histograms": [
            {"name": "switch.attach.total_cycles", "count": 4, "sum": 400.0,
             "min": 50.0, "mean": 100.0, "max": 200.0,
             "p50": 90.0, "p90": 150.0, "p99": 200.0},
            {"name": "empty.hist", "count": 0, "sum": 0, "min": 0,
             "mean": 0, "max": 0, "p50": 0, "p90": 0, "p99": 0},
        ],
    }


def flight_event(seq, cpu=0, cycles=3000, type_="phase.begin",
                 name="switch.attach.total_cycles", args=(0, 0, 0)):
    return {"seq": seq, "cpu": cpu, "cycles": cycles, "type": type_,
            "name": name, "args": list(args)}


def postmortem_doc():
    return {
        "schema": "mercury.postmortem.v1",
        "reason": "fault-rollback",
        "detail": "fault at vmm.adopt_protect during attach",
        "switch": {"from": "native", "target": "full-virtual"},
        "fault": {"site": "vmm.adopt_protect", "kind": "fail", "cpu": 2},
        "active_refs": 0,
        "cpu_clocks": [
            {"cpu": 0, "cycles": 9000000},
            {"cpu": 1, "cycles": 9000000},
        ],
        "flight": {
            "recorded": 7,
            "dropped": 0,
            "events": [
                flight_event(1, 0, 3000, "switch.request", "attach"),
                flight_event(2, 0, 6000, "phase.begin",
                             "switch.attach.total_cycles"),
                flight_event(3, 0, 9000, "refcount.retry", "attach",
                             (2, 1, 0)),
                flight_event(4, 0, 12000, "crew.publish",
                             "vmm.adopt_rebuild", (64, 8, 4)),
                flight_event(5, 1, 15000, "crew.grab", "vmm.adopt_rebuild",
                             (0, 8, 4500)),
                flight_event(6, 0, 21000, "crew.join", "vmm.adopt_rebuild",
                             (8, 36000, 9000)),
                flight_event(7, 2, 24000, "fault.hit", "vmm.adopt_protect",
                             (4, 0, 1)),
            ],
        },
        "metrics": metrics_doc(),
        "extra": [{"name": "page_info.shard_count", "value": 8}],
    }


def soak_doc():
    return {
        "schema": "mercury.soak.v1",
        "seed": 1234,
        "cpus": 4,
        "planned_cycles": 200,
        "storm": {"rate": 0.05, "burst": 2, "decay": 0.97, "fires": 63,
                  "windows": 101},
        "requests": {"submitted": 250, "committed": 40, "failed_deadline": 0,
                     "failed_attempts": 46, "failed_quarantined": 164,
                     "cancelled": 0, "unresolved": 0},
        "supervisor": {"attempts": 103, "retries": 15, "backoffs": 15,
                       "quarantines": 2, "recoveries": 2, "probes": 48,
                       "final_health": "healthy"},
        "engine": {"rollbacks": 63, "cancels": 0},
        "invariants": {"checks": 200, "violations": 0},
        "availability": {"fraction": 0.958, "interruptions": 36,
                         "downtime_cycles": 271820325,
                         "span_cycles": 6444303519},
        "workload": {"ops": 52862, "bytes": 108261376, "corruptions": 0},
        "pause": {"intervals": 112, "unattributed": 0,
                  "worst_cycles": 41900, "worst_cause": "rendezvous-parked"},
        "converged": True,
        "final_mode": "native",
        "metrics": metrics_doc(),
    }


def soak_node():
    return {
        "name": "n0",
        "submitted": 8,
        "committed": 8,
        "failed": 0,
        "retries": 0,
        "quarantines": 0,
        "availability": 0.99,
        "interruptions": 8,
        "downtime_cycles": 1183727,
        "span_cycles": 121216327,
        "pause_intervals": 14,
        "pause_unattributed": 0,
        "pause_worst_cycles": 9000,
        "pause_worst_cause": "tlb-shootdown",
        "final_health": "healthy",
        "final_mode": "native",
    }


def pause_cause(name, count=0, total=0, p50=0, p99=0, mx=0):
    return {"name": name, "count": count, "total_cycles": total,
            "p50": p50, "p99": p99, "max": mx}


def pause_doc():
    return {
        "schema": "mercury.pause.v1",
        "intervals": 5,
        "unattributed": 0,
        "worst": {"cause": "rendezvous-parked", "cpu": 2, "begin": 3000,
                  "end": 11000, "span": 8000, "detail": "switch.attach",
                  "flight_seq": 17},
        "causes": [
            pause_cause("rendezvous-parked", 4, 20000, 4095, 8191, 8000),
            pause_cause("crew-shard-work", 1, 600, 1023, 1023, 600),
            pause_cause("tlb-shootdown"),
            pause_cause("hypercall-emulation"),
            pause_cause("rollback-unwind"),
            pause_cause("supervisor-retry-backoff"),
        ],
        "cpus": [{"cpu": 0, "total_cycles": 3000},
                 {"cpu": 2, "total_cycles": 17600}],
        "flight": {
            "events": [
                flight_event(16, 2, 3000, "pause.begin",
                             "rendezvous-parked"),
                flight_event(17, 2, 11000, "pause.worst",
                             "rendezvous-parked", (8000, 0, 0)),
                flight_event(18, 0, 12000, "pause.begin",
                             "crew-shard-work"),
            ],
        },
    }


def timeseries_doc():
    return {
        "schema": "mercury.timeseries.v1",
        "interval_cycles": 3000600,
        "capacity": 256,
        "samples": 42,
        "dropped": 0,
        "series": [
            {"name": "switch.committed", "label": "node=n0",
             "points": [[0, 0.0], [3000600, 1.0], [6001200, 1.0]]},
            {"name": "fleet.inflight", "label": "",
             "points": [[0, 0.0], [3000600, 4.0]]},
        ],
    }


def profile_doc():
    return {
        "schema": "mercury.profile.v1",
        "enabled": True,
        "wall_ns_total": 123456789,
        "events_total": 6530,
        "buckets": [
            {"name": "kernel.step.timer", "count": 2816,
             "wall_ns": 100000000, "sim_cycles": 4000000,
             "wall_fraction": 0.81},
            {"name": "switch.commit", "count": 196, "wall_ns": 23456789,
             "sim_cycles": 9000000, "wall_fraction": 0.19},
        ],
    }


class MetricsSchemaTest(unittest.TestCase):
    def test_valid_doc_returns_names(self):
        names = cbj.validate_metrics(metrics_doc())
        self.assertIn("switch.attach.count", names)
        self.assertIn("switch.attach.total_cycles", names)
        self.assertIn("obs.flight.recorded", names)

    def test_warm_reattach_gauges_are_requirable(self):
        # The CI bench gate passes these as --require flags; the names the
        # validator returns are what that presence check runs against.
        names = cbj.validate_metrics(metrics_doc())
        self.assertIn("bench.modeswitch.warm_reattach_speedup", names)
        self.assertIn("bench.modeswitch.warm.mem_kb=921600.warm_attach_ms",
                      names)
        self.assertIn("bench.modeswitch.warm.mem_kb=921600.cold_attach_ms",
                      names)

    def test_wrong_schema_string(self):
        doc = metrics_doc()
        doc["schema"] = "mercury.metrics.v2"
        with self.assertRaisesRegex(cbj.SchemaError, "schema"):
            cbj.validate_metrics(doc)

    def test_missing_section(self):
        doc = metrics_doc()
        del doc["gauges"]
        with self.assertRaisesRegex(cbj.SchemaError, "gauges"):
            cbj.validate_metrics(doc)

    def test_non_numeric_value(self):
        doc = metrics_doc()
        doc["counters"][0]["value"] = "4"
        with self.assertRaisesRegex(cbj.SchemaError, "not a number"):
            cbj.validate_metrics(doc)

    def test_bool_is_not_a_number(self):
        doc = metrics_doc()
        doc["gauges"][0]["value"] = True
        with self.assertRaises(cbj.SchemaError):
            cbj.validate_metrics(doc)

    def test_non_monotonic_quantiles(self):
        doc = metrics_doc()
        doc["histograms"][0]["p90"] = 500.0  # p90 > p99
        with self.assertRaisesRegex(cbj.SchemaError, "quantiles"):
            cbj.validate_metrics(doc)

    def test_mean_outside_min_max(self):
        doc = metrics_doc()
        doc["histograms"][0]["mean"] = 1000.0
        with self.assertRaisesRegex(cbj.SchemaError, "mean"):
            cbj.validate_metrics(doc)

    def test_empty_histogram_skips_ordering_checks(self):
        cbj.validate_metrics(metrics_doc())  # empty.hist has count == 0


class PostmortemSchemaTest(unittest.TestCase):
    def test_valid_bundle(self):
        names = cbj.validate_postmortem(postmortem_doc())
        self.assertIn("switch.rollbacks", names)  # embedded metrics names

    def test_fault_section_optional(self):
        doc = postmortem_doc()
        del doc["fault"]
        cbj.validate_postmortem(doc)

    def test_empty_flight_tail_is_valid(self):
        # Obs-off builds still dump bundles, with zero flight events.
        doc = postmortem_doc()
        doc["flight"] = {"recorded": 0, "dropped": 0, "events": []}
        cbj.validate_postmortem(doc)

    def test_missing_reason(self):
        doc = postmortem_doc()
        doc["reason"] = ""
        with self.assertRaisesRegex(cbj.SchemaError, "reason"):
            cbj.validate_postmortem(doc)

    def test_non_increasing_seq(self):
        doc = postmortem_doc()
        doc["flight"]["events"][3]["seq"] = 2  # duplicates event 2's seq
        with self.assertRaisesRegex(cbj.SchemaError, "strictly increasing"):
            cbj.validate_postmortem(doc)

    def test_bad_flight_args(self):
        doc = postmortem_doc()
        doc["flight"]["events"][0]["args"] = [1, 2]
        with self.assertRaisesRegex(cbj.SchemaError, "3 numbers"):
            cbj.validate_postmortem(doc)

    def test_fault_without_cpu(self):
        doc = postmortem_doc()
        del doc["fault"]["cpu"]
        with self.assertRaisesRegex(cbj.SchemaError, "fault.cpu"):
            cbj.validate_postmortem(doc)

    def test_embedded_metrics_validated(self):
        doc = postmortem_doc()
        doc["metrics"]["histograms"][0]["p90"] = 500.0
        with self.assertRaisesRegex(cbj.SchemaError, "quantiles"):
            cbj.validate_postmortem(doc)

    def test_missing_embedded_metrics(self):
        doc = postmortem_doc()
        del doc["metrics"]
        with self.assertRaisesRegex(cbj.SchemaError, "metrics"):
            cbj.validate_postmortem(doc)


class SoakSchemaTest(unittest.TestCase):
    def test_valid_verdict(self):
        names = cbj.validate_soak(soak_doc())
        self.assertIn("switch.rollbacks", names)  # embedded metrics names

    def test_wrong_schema_string(self):
        doc = soak_doc()
        doc["schema"] = "mercury.soak.v2"
        with self.assertRaisesRegex(cbj.SchemaError, "schema"):
            cbj.validate_soak(doc)

    def test_missing_section(self):
        doc = soak_doc()
        del doc["supervisor"]
        with self.assertRaisesRegex(cbj.SchemaError, "supervisor"):
            cbj.validate_soak(doc)

    def test_missing_section_field(self):
        doc = soak_doc()
        del doc["requests"]["unresolved"]
        with self.assertRaisesRegex(cbj.SchemaError, "unresolved"):
            cbj.validate_soak(doc)

    def test_non_numeric_field(self):
        doc = soak_doc()
        doc["storm"]["fires"] = "63"
        with self.assertRaisesRegex(cbj.SchemaError, "storm.fires"):
            cbj.validate_soak(doc)

    def test_gate_unresolved_requests(self):
        doc = soak_doc()
        doc["requests"]["unresolved"] = 3
        with self.assertRaisesRegex(cbj.SchemaError, "stranded"):
            cbj.validate_soak(doc)

    def test_gate_invariant_violations(self):
        doc = soak_doc()
        doc["invariants"]["violations"] = 1
        with self.assertRaisesRegex(cbj.SchemaError, "invariant"):
            cbj.validate_soak(doc)

    def test_gate_workload_corruption(self):
        doc = soak_doc()
        doc["workload"]["corruptions"] = 2
        with self.assertRaisesRegex(cbj.SchemaError, "corruption"):
            cbj.validate_soak(doc)

    def test_gate_not_converged(self):
        doc = soak_doc()
        doc["converged"] = False
        with self.assertRaisesRegex(cbj.SchemaError, "converge"):
            cbj.validate_soak(doc)

    def test_converged_must_be_boolean(self):
        doc = soak_doc()
        doc["converged"] = 1  # truthy is not good enough
        with self.assertRaisesRegex(cbj.SchemaError, "boolean"):
            cbj.validate_soak(doc)

    def test_availability_fraction_bounded(self):
        doc = soak_doc()
        doc["availability"]["fraction"] = 1.2
        with self.assertRaisesRegex(cbj.SchemaError, "fraction"):
            cbj.validate_soak(doc)

    def test_gate_unattributed_pause(self):
        doc = soak_doc()
        doc["pause"]["unattributed"] = 2
        with self.assertRaisesRegex(cbj.SchemaError, "unattributed"):
            cbj.validate_soak(doc)

    def test_missing_pause_section(self):
        doc = soak_doc()
        del doc["pause"]
        with self.assertRaisesRegex(cbj.SchemaError, "pause"):
            cbj.validate_soak(doc)

    def test_pause_worst_cause_must_be_named(self):
        # "none" is the no-intervals sentinel; empty is a serializer bug.
        doc = soak_doc()
        doc["pause"]["worst_cause"] = ""
        with self.assertRaisesRegex(cbj.SchemaError, "worst_cause"):
            cbj.validate_soak(doc)

    def test_quarantined_final_health_is_not_gated(self):
        # Clean quarantine converges: degraded-to-native is a pass.
        doc = soak_doc()
        doc["supervisor"]["final_health"] = "quarantined"
        cbj.validate_soak(doc)

    def test_embedded_metrics_validated(self):
        doc = soak_doc()
        doc["metrics"]["histograms"][0]["p90"] = 500.0
        with self.assertRaisesRegex(cbj.SchemaError, "quantiles"):
            cbj.validate_soak(doc)

    def test_missing_embedded_metrics(self):
        doc = soak_doc()
        del doc["metrics"]
        with self.assertRaisesRegex(cbj.SchemaError, "metrics"):
            cbj.validate_soak(doc)


class SoakNodesSectionTest(unittest.TestCase):
    def test_nodes_section_optional(self):
        cbj.validate_soak(soak_doc())  # no nodes at all

    def test_valid_nodes_section(self):
        doc = soak_doc()
        doc["nodes"] = [soak_node(), dict(soak_node(), name="n1")]
        cbj.validate_soak(doc)

    def test_empty_nodes_array_rejected(self):
        doc = soak_doc()
        doc["nodes"] = []
        with self.assertRaisesRegex(cbj.SchemaError, "nodes"):
            cbj.validate_soak(doc)

    def test_node_missing_numeric_field(self):
        doc = soak_doc()
        node = soak_node()
        del node["retries"]
        doc["nodes"] = [node]
        with self.assertRaisesRegex(cbj.SchemaError, "retries"):
            cbj.validate_soak(doc)

    def test_node_missing_name(self):
        doc = soak_doc()
        node = soak_node()
        node["name"] = ""
        doc["nodes"] = [node]
        with self.assertRaisesRegex(cbj.SchemaError, "name"):
            cbj.validate_soak(doc)

    def test_node_availability_bounded(self):
        doc = soak_doc()
        node = soak_node()
        node["availability"] = -0.8
        doc["nodes"] = [node]
        with self.assertRaisesRegex(cbj.SchemaError, "availability"):
            cbj.validate_soak(doc)

    def test_node_missing_pause_field(self):
        doc = soak_doc()
        node = soak_node()
        del node["pause_intervals"]
        doc["nodes"] = [node]
        with self.assertRaisesRegex(cbj.SchemaError, "pause_intervals"):
            cbj.validate_soak(doc)

    def test_node_gate_unattributed_pause(self):
        doc = soak_doc()
        node = soak_node()
        node["pause_unattributed"] = 1
        doc["nodes"] = [node]
        with self.assertRaisesRegex(cbj.SchemaError, "unattributed"):
            cbj.validate_soak(doc)

    def test_node_missing_pause_worst_cause(self):
        doc = soak_doc()
        node = soak_node()
        node["pause_worst_cause"] = ""
        doc["nodes"] = [node]
        with self.assertRaisesRegex(cbj.SchemaError, "pause_worst_cause"):
            cbj.validate_soak(doc)


class PauseSchemaTest(unittest.TestCase):
    def test_valid_doc_returns_cause_names(self):
        names = cbj.validate_pause(pause_doc())
        self.assertEqual(names, set(cbj.PAUSE_CAUSES))

    def test_wrong_schema_string(self):
        doc = pause_doc()
        doc["schema"] = "mercury.pause.v2"
        with self.assertRaisesRegex(cbj.SchemaError, "schema"):
            cbj.validate_pause(doc)

    def test_gate_unattributed_intervals(self):
        doc = pause_doc()
        doc["unattributed"] = 1
        with self.assertRaisesRegex(cbj.SchemaError, "pairing bug"):
            cbj.validate_pause(doc)

    def test_silent_cause_must_still_be_listed(self):
        # Every cause appears even at zero count; a missing row means the
        # emitter and the attribution table disagree about the cause set.
        doc = pause_doc()
        doc["causes"] = [c for c in doc["causes"]
                         if c["name"] != "rollback-unwind"]
        with self.assertRaisesRegex(cbj.SchemaError, "rollback-unwind"):
            cbj.validate_pause(doc)

    def test_empty_ledger_is_valid(self):
        # An obs-on run with no pauses: zero counts, worst cause "none".
        doc = pause_doc()
        doc["intervals"] = 0
        doc["worst"] = {"cause": "none", "cpu": 0, "begin": 0, "end": 0,
                        "span": 0, "detail": "", "flight_seq": 0}
        doc["causes"] = [pause_cause(n) for n in cbj.PAUSE_CAUSES]
        doc["cpus"] = []
        doc["flight"] = {"events": []}
        cbj.validate_pause(doc)

    def test_worst_span_must_match_bounds(self):
        doc = pause_doc()
        doc["worst"]["span"] = 7999
        with self.assertRaisesRegex(cbj.SchemaError, "span"):
            cbj.validate_pause(doc)

    def test_worst_inverted_interval_rejected(self):
        doc = pause_doc()
        doc["worst"]["end"] = doc["worst"]["begin"] - 1
        with self.assertRaisesRegex(cbj.SchemaError, "before it begins"):
            cbj.validate_pause(doc)

    def test_empty_worst_cause_rejected(self):
        doc = pause_doc()
        doc["worst"]["cause"] = ""
        with self.assertRaisesRegex(cbj.SchemaError, "worst.cause"):
            cbj.validate_pause(doc)

    def test_p50_above_p99_rejected(self):
        doc = pause_doc()
        doc["causes"][0]["p50"] = doc["causes"][0]["p99"] + 1
        with self.assertRaisesRegex(cbj.SchemaError, "p50 > p99"):
            cbj.validate_pause(doc)

    def test_p99_bucket_bound_may_exceed_exact_max(self):
        # p50/p99 are log2-bucket upper bounds while max is exact, so
        # p99 > max is legitimate (8191 > 8000 in the fixture already).
        doc = pause_doc()
        self.assertGreater(doc["causes"][0]["p99"], doc["causes"][0]["max"])
        cbj.validate_pause(doc)

    def test_cycles_without_intervals_rejected(self):
        doc = pause_doc()
        doc["causes"][2]["total_cycles"] = 500  # tlb-shootdown has count 0
        with self.assertRaisesRegex(cbj.SchemaError, "zero intervals"):
            cbj.validate_pause(doc)

    def test_non_increasing_flight_seq(self):
        doc = pause_doc()
        doc["flight"]["events"][2]["seq"] = 17
        with self.assertRaisesRegex(cbj.SchemaError, "strictly increasing"):
            cbj.validate_pause(doc)


class TimeseriesSchemaTest(unittest.TestCase):
    def test_valid_doc_returns_series_names(self):
        names = cbj.validate_timeseries(timeseries_doc())
        self.assertIn("switch.committed", names)
        self.assertIn("fleet.inflight", names)

    def test_wrong_schema_string(self):
        doc = timeseries_doc()
        doc["schema"] = "mercury.timeseries.v2"
        with self.assertRaisesRegex(cbj.SchemaError, "schema"):
            cbj.validate_timeseries(doc)

    def test_missing_interval(self):
        doc = timeseries_doc()
        del doc["interval_cycles"]
        with self.assertRaisesRegex(cbj.SchemaError, "interval_cycles"):
            cbj.validate_timeseries(doc)

    def test_empty_series_rejected(self):
        doc = timeseries_doc()
        doc["series"] = []
        with self.assertRaisesRegex(cbj.SchemaError, "series"):
            cbj.validate_timeseries(doc)

    def test_non_string_label_rejected(self):
        doc = timeseries_doc()
        doc["series"][0]["label"] = 7
        with self.assertRaisesRegex(cbj.SchemaError, "label"):
            cbj.validate_timeseries(doc)

    def test_empty_points_allowed(self):
        # A series that never got sampled still names itself.
        doc = timeseries_doc()
        doc["series"][0]["points"] = []
        cbj.validate_timeseries(doc)

    def test_malformed_point_rejected(self):
        doc = timeseries_doc()
        doc["series"][0]["points"][1] = [3000600]  # missing the value
        with self.assertRaisesRegex(cbj.SchemaError, r"\[t, value\]"):
            cbj.validate_timeseries(doc)

    def test_non_numeric_point_rejected(self):
        doc = timeseries_doc()
        doc["series"][0]["points"][1] = [3000600, "fast"]
        with self.assertRaisesRegex(cbj.SchemaError, r"\[t, value\]"):
            cbj.validate_timeseries(doc)

    def test_decreasing_timestamps_rejected(self):
        doc = timeseries_doc()
        doc["series"][0]["points"][2][0] = 1  # jumps backward
        with self.assertRaisesRegex(cbj.SchemaError, "decreases"):
            cbj.validate_timeseries(doc)

    def test_equal_timestamps_allowed(self):
        # Back-to-back samples at the same sim instant are legal (e.g. the
        # final settling sample).
        doc = timeseries_doc()
        doc["series"][0]["points"][2][0] = 3000600
        cbj.validate_timeseries(doc)


class ProfileSchemaTest(unittest.TestCase):
    def test_valid_doc_returns_bucket_names(self):
        names = cbj.validate_profile(profile_doc())
        self.assertIn("kernel.step.timer", names)
        self.assertIn("switch.commit", names)

    def test_wrong_schema_string(self):
        doc = profile_doc()
        doc["schema"] = "mercury.profile.v2"
        with self.assertRaisesRegex(cbj.SchemaError, "schema"):
            cbj.validate_profile(doc)

    def test_enabled_must_be_boolean(self):
        doc = profile_doc()
        doc["enabled"] = 1
        with self.assertRaisesRegex(cbj.SchemaError, "boolean"):
            cbj.validate_profile(doc)

    def test_enabled_with_no_buckets_rejected(self):
        doc = profile_doc()
        doc["buckets"] = []
        with self.assertRaisesRegex(cbj.SchemaError, "no buckets"):
            cbj.validate_profile(doc)

    def test_disabled_with_no_buckets_allowed(self):
        doc = profile_doc()
        doc["enabled"] = False
        doc["buckets"] = []
        cbj.validate_profile(doc)

    def test_bucket_missing_field(self):
        doc = profile_doc()
        del doc["buckets"][0]["wall_ns"]
        with self.assertRaisesRegex(cbj.SchemaError, "wall_ns"):
            cbj.validate_profile(doc)

    def test_wall_fraction_bounded(self):
        doc = profile_doc()
        doc["buckets"][0]["wall_fraction"] = 1.5
        with self.assertRaisesRegex(cbj.SchemaError, "wall_fraction"):
            cbj.validate_profile(doc)

    def test_non_numeric_total(self):
        doc = profile_doc()
        doc["wall_ns_total"] = "lots"
        with self.assertRaisesRegex(cbj.SchemaError, "wall_ns_total"):
            cbj.validate_profile(doc)


class BenchCompareTest(unittest.TestCase):
    def test_identical_docs_pass(self):
        doc = metrics_doc()
        regressions, rows = bench_compare.compare(doc, doc)
        self.assertEqual(regressions, [])
        # 4 latency gauges + 2 speedups + 3 pause tails
        self.assertEqual(len(rows), 9)

    def test_latency_regression_detected(self):
        base = metrics_doc()
        cur = copy.deepcopy(base)
        cur["gauges"][0]["value"] = 1.25 * 1.5  # 50% slower attach
        regressions, _ = bench_compare.compare(base, cur, tolerance=0.10)
        self.assertEqual(len(regressions), 1)
        self.assertIn("attach_ms", regressions[0])

    def test_latency_within_tolerance_passes(self):
        base = metrics_doc()
        cur = copy.deepcopy(base)
        cur["gauges"][0]["value"] = 1.25 * 1.05  # 5% slower, 10% allowed
        regressions, _ = bench_compare.compare(base, cur, tolerance=0.10)
        self.assertEqual(regressions, [])

    def test_latency_improvement_passes(self):
        base = metrics_doc()
        cur = copy.deepcopy(base)
        cur["gauges"][0]["value"] = 0.5
        regressions, _ = bench_compare.compare(base, cur)
        self.assertEqual(regressions, [])

    def test_speedup_regression_detected(self):
        base = metrics_doc()
        cur = copy.deepcopy(base)
        cur["gauges"][2]["value"] = 3.1 * 0.5  # crew speedup halved
        regressions, _ = bench_compare.compare(base, cur)
        self.assertEqual(len(regressions), 1)
        self.assertIn("crew_speedup", regressions[0])

    def test_speedup_improvement_passes(self):
        base = metrics_doc()
        cur = copy.deepcopy(base)
        cur["gauges"][2]["value"] = 10.0
        regressions, _ = bench_compare.compare(base, cur)
        self.assertEqual(regressions, [])

    def test_missing_gauge_is_a_regression(self):
        base = metrics_doc()
        cur = copy.deepcopy(base)
        del cur["gauges"][1]  # drop detach_ms from the current run
        regressions, rows = bench_compare.compare(base, cur)
        self.assertEqual(len(regressions), 1)
        self.assertIn("missing", regressions[0])
        self.assertIn(("bench.modeswitch.up.mem_kb=1024.detach_ms",
                       0.75, None, "MISSING"), rows)

    def test_new_gauge_in_current_is_fine(self):
        base = metrics_doc()
        cur = copy.deepcopy(base)
        cur["gauges"].append(
            {"name": "bench.modeswitch.up.mem_kb=4096.attach_ms",
             "value": 9.0})
        regressions, _ = bench_compare.compare(base, cur)
        self.assertEqual(regressions, [])

    def test_non_bench_gauges_ignored(self):
        base = metrics_doc()
        cur = copy.deepcopy(base)
        cur["gauges"][3]["value"] = 10**9  # obs.flight.recorded exploded
        regressions, _ = bench_compare.compare(base, cur)
        self.assertEqual(regressions, [])

    def test_warm_attach_latency_regression_detected(self):
        base = metrics_doc()
        cur = copy.deepcopy(base)
        cur["gauges"][5]["value"] = 0.8 * 2.0  # warm attach twice as slow
        regressions, _ = bench_compare.compare(base, cur, tolerance=0.10)
        self.assertEqual(len(regressions), 1)
        self.assertIn("warm_attach_ms", regressions[0])

    def test_warm_speedup_regression_detected(self):
        base = metrics_doc()
        cur = copy.deepcopy(base)
        cur["gauges"][7]["value"] = 19.9 * 0.5  # warm benefit halved
        regressions, _ = bench_compare.compare(base, cur)
        self.assertEqual(len(regressions), 1)
        self.assertIn("warm_reattach_speedup", regressions[0])

    def test_warm_speedup_improvement_passes(self):
        base = metrics_doc()
        cur = copy.deepcopy(base)
        cur["gauges"][7]["value"] = 40.0
        regressions, _ = bench_compare.compare(base, cur)
        self.assertEqual(regressions, [])

    def test_missing_warm_speedup_is_a_regression(self):
        base = metrics_doc()
        cur = copy.deepcopy(base)
        del cur["gauges"][7]  # drop warm_reattach_speedup
        regressions, rows = bench_compare.compare(base, cur)
        self.assertEqual(len(regressions), 1)
        self.assertIn("missing", regressions[0])
        self.assertIn(("bench.modeswitch.warm_reattach_speedup",
                       19.9, None, "MISSING"), rows)

    def test_warm_count_gauges_not_gated(self):
        # dirty_frames / frames_retained describe the workload, not the
        # cost model; a different dirty pattern must not fail the gate.
        base = metrics_doc()
        cur = copy.deepcopy(base)
        cur["gauges"][6]["value"] = 10**6  # dirty_frames exploded
        regressions, _ = bench_compare.compare(base, cur)
        self.assertEqual(regressions, [])

    def test_pause_tail_regression_detected(self):
        base = metrics_doc()
        cur = copy.deepcopy(base)
        cur["gauges"][9]["value"] = 3.2 * 2.0  # pause p99 doubled
        regressions, _ = bench_compare.compare(base, cur, tolerance=0.10)
        self.assertEqual(len(regressions), 1)
        self.assertIn("pause_p99_us", regressions[0])

    def test_missing_pause_gauge_is_a_regression(self):
        base = metrics_doc()
        cur = copy.deepcopy(base)
        del cur["gauges"][10]  # drop the pause_worst_us cell
        regressions, _ = bench_compare.compare(base, cur)
        self.assertEqual(len(regressions), 1)
        self.assertIn("missing", regressions[0])
        self.assertIn("pause_worst_us", regressions[0])

    def test_zero_pause_baseline_stays_ok(self):
        # Silent causes emit 0.0 in every cell; the absolute jitter floor
        # must keep 0-vs-0 from tripping the multiplicative gate.
        base = metrics_doc()
        base["gauges"][8]["value"] = 0.0
        cur = copy.deepcopy(base)
        regressions, _ = bench_compare.compare(base, cur)
        self.assertEqual(regressions, [])

    def test_non_dict_docs_have_no_gauges(self):
        # compare() must not blow up on malformed documents; the CLI exits
        # with a one-line diagnostic before getting here, but the importable
        # API stays total.
        regressions, rows = bench_compare.compare([1, 2], "nope")
        self.assertEqual(regressions, [])
        self.assertEqual(rows, [])

    def test_non_numeric_gauge_value_treated_as_missing(self):
        base = metrics_doc()
        cur = copy.deepcopy(base)
        cur["gauges"][0]["value"] = "not-a-number"
        regressions, rows = bench_compare.compare(base, cur)
        self.assertEqual(len(regressions), 1)
        self.assertIn("missing", regressions[0])
        self.assertIn(("bench.modeswitch.up.mem_kb=1024.attach_ms",
                       1.25, None, "MISSING"), rows)


class BlackboxReportTest(unittest.TestCase):
    def test_renders_full_bundle(self):
        text = blackbox_report.render(postmortem_doc())
        self.assertIn("fault-rollback", text)
        self.assertIn("vmm.adopt_protect", text)
        self.assertIn("crew utilization", text)
        self.assertIn("retry storm", text)
        self.assertIn("native -> full-virtual", text)

    def test_renders_empty_flight_bundle(self):
        # The obs-off shape: no flight events at all must still render.
        doc = postmortem_doc()
        doc["flight"] = {"recorded": 0, "dropped": 0, "events": []}
        text = blackbox_report.render(doc)
        self.assertIn("fault-rollback", text)
        self.assertIn("0 in tail", text)

    def test_unfinished_phase_marked(self):
        doc = postmortem_doc()
        text = blackbox_report.render(doc)
        self.assertIn("(unfinished)", text)  # attach never saw phase.end

    def test_phase_timeline_pairs_by_cpu_and_name(self):
        events = [
            flight_event(1, 0, 3000, "phase.begin", "p"),
            flight_event(2, 1, 3000, "phase.begin", "p"),
            flight_event(3, 1, 9000, "phase.end", "p"),
            flight_event(4, 0, 30000, "phase.end", "p"),
        ]
        rows = blackbox_report.phase_timeline(events)
        self.assertEqual(rows[0][3], 27000)  # cpu 0 pairs with its own end
        self.assertEqual(rows[1][3], 6000)

    def test_crew_utilization_sums_worker_busy(self):
        crews = blackbox_report.crew_utilization(
            postmortem_doc()["flight"]["events"])
        self.assertEqual(len(crews), 1)
        name, shards, busy, span, per_worker = crews[0]
        self.assertEqual(name, "vmm.adopt_rebuild")
        self.assertEqual(shards, 8)
        self.assertEqual(per_worker, {1: 4500})

    def test_render_tail_limit(self):
        text = blackbox_report.render(postmortem_doc(), tail_n=2)
        self.assertIn("last 2 flight events", text)

    def supervisor_events(self):
        return [
            flight_event(1, 0, 3000, "supervisor.attempt",
                         "supervisor.attempt", (7, 1, 1)),
            flight_event(2, 0, 6000, "supervisor.backoff",
                         "supervisor.backoff", (7, 1, 3000)),
            flight_event(3, 0, 9000, "supervisor.attempt",
                         "supervisor.attempt", (7, 2, 1)),
            flight_event(4, 0, 12000, "supervisor.health",
                         "supervisor.health", (0, 1, 2)),
            flight_event(5, 0, 15000, "supervisor.resolve", "committed",
                         (7, 3, 2)),
        ]

    def test_supervisor_timeline_rows(self):
        rows = blackbox_report.supervisor_timeline(self.supervisor_events())
        self.assertEqual(len(rows), 5)
        self.assertIn("request 7 attempt #1 -> partial-virtual", rows[0][1])
        self.assertIn("backoff after attempt #1", rows[1][1])
        self.assertIn("health healthy -> degraded", rows[3][1])
        self.assertIn("resolved committed after 2 attempt(s)", rows[4][1])

    def test_render_includes_supervisor_timeline(self):
        doc = postmortem_doc()
        events = self.supervisor_events()
        for i, ev in enumerate(events):
            ev["seq"] = 10 + i  # keep seq strictly increasing
            ev["cycles"] += 24000
        doc["flight"]["events"].extend(events)
        text = blackbox_report.render(doc)
        self.assertIn("supervisor timeline", text)
        self.assertIn("request 7 attempt #1 -> partial-virtual", text)
        self.assertIn("health healthy -> degraded (failure streak 2)", text)

    def test_no_supervisor_section_without_events(self):
        text = blackbox_report.render(postmortem_doc())
        self.assertNotIn("supervisor timeline", text)


class TimeseriesProfileRenderTest(unittest.TestCase):
    def test_sparkline_flat_series(self):
        self.assertEqual(blackbox_report.sparkline([3, 3, 3]), "▁▁▁")

    def test_sparkline_empty(self):
        self.assertEqual(blackbox_report.sparkline([]), "")

    def test_sparkline_rises(self):
        line = blackbox_report.sparkline([0, 1, 2, 3])
        self.assertEqual(line[0], "▁")
        self.assertEqual(line[-1], "█")

    def test_sparkline_downsamples_to_width(self):
        line = blackbox_report.sparkline(list(range(1000)), width=48)
        self.assertEqual(len(line), 48)

    def test_render_timeseries_groups_by_label(self):
        text = blackbox_report.render_timeseries(timeseries_doc())
        self.assertIn("Mercury time series", text)
        self.assertIn("--- node=n0 ---", text)
        self.assertIn("--- fleet ---", text)
        self.assertIn("switch.committed", text)
        self.assertIn("last 1", text)

    def test_render_timeseries_empty_points(self):
        doc = timeseries_doc()
        doc["series"][0]["points"] = []
        text = blackbox_report.render_timeseries(doc)
        self.assertIn("(no samples)", text)

    def test_render_profile_ranks_by_wall(self):
        text = blackbox_report.render_profile(profile_doc())
        self.assertIn("Mercury engine profile", text)
        # kernel.step.timer has the larger wall_ns: it must come first.
        self.assertLess(text.index("kernel.step.timer"),
                        text.index("switch.commit"))
        self.assertIn("81.0%", text)

    def test_render_profile_no_buckets(self):
        doc = profile_doc()
        doc["enabled"] = False
        doc["buckets"] = []
        text = blackbox_report.render_profile(doc)
        self.assertIn("(no buckets recorded)", text)
        self.assertIn("disabled", text)


class PauseRenderTest(unittest.TestCase):
    def test_renders_attribution_table(self):
        text = blackbox_report.render_pause(pause_doc())
        self.assertIn("Mercury pause observatory", text)
        self.assertIn("5 recorded, 0 unattributed", text)
        self.assertIn("attribution by cause", text)
        self.assertIn("rendezvous-parked", text)
        self.assertIn("supervisor-retry-backoff", text)  # silent cause too
        self.assertIn("per-CPU unavailability", text)

    def test_tail_cut_around_worst_interval(self):
        # worst.flight_seq 17 is in the ring: the tail must end there, not
        # at the newest event (seq 18).
        text = blackbox_report.render_pause(pause_doc())
        self.assertIn("up to the worst interval (seq 17)", text)
        # Seq 18 (the crew-shard-work begin) is newer than the worst
        # interval, so it must not be in the tail; the cause name then
        # appears exactly once — in the attribution table.
        self.assertEqual(text.count("crew-shard-work"), 1)

    def test_tail_falls_back_when_worst_rotated_out(self):
        doc = pause_doc()
        doc["worst"]["flight_seq"] = 3  # no longer in the ring
        text = blackbox_report.render_pause(doc)
        self.assertIn("last 3 flight events", text)

    def test_renders_empty_ledger(self):
        doc = pause_doc()
        doc["intervals"] = 0
        doc["worst"] = {"cause": "none", "cpu": 0, "begin": 0, "end": 0,
                        "span": 0, "detail": "", "flight_seq": 0}
        doc["causes"] = [pause_cause(n) for n in cbj.PAUSE_CAUSES]
        doc["cpus"] = []
        doc["flight"] = {"events": []}
        text = blackbox_report.render_pause(doc)
        self.assertIn("(no intervals recorded)", text)


if __name__ == "__main__":
    unittest.main()
