// Paper §6.2: self-healing. A fault corrupts kernel state (a page-table
// entry ends up pointing into hypervisor memory). A sensor notices the
// anomaly, the OS self-virtualizes, the attached VMM's validation pass
// repairs the tainted entries, and the VMM detaches again — no remote
// repair machine (the Backdoors approach) required.
#include <cstdio>

#include "cluster/scenarios.hpp"
#include "kernel/syscalls.hpp"

using namespace mercury;
using kernel::Sub;
using kernel::Sys;

int main() {
  hw::MachineConfig mc;
  mc.mem_kb = 256 * 1024;
  hw::Machine machine(mc);
  core::MercuryConfig cfg;
  cfg.kernel_frames = (128ull * 1024 * 1024) / hw::kPageSize;
  core::Mercury mercury(machine, cfg);

  bool touch_ok = false;
  hw::VirtAddr buf = 0;
  const kernel::Pid pid =
      mercury.kernel().spawn("victim", [&](Sys& s) -> Sub<void> {
        buf = s.mmap(16 * hw::kPageSize, true);
        s.touch_pages(buf, 16, true);
        for (;;) {
          co_await s.sleep_us(2000.0);
          s.touch_pages(buf, 16, true);
          touch_ok = true;
        }
      });
  mercury.kernel().run_for(5 * hw::kCyclesPerMillisecond);
  std::printf("victim process established its working set (pid %d)\n", pid);

  // Fault injection: scribble over one of its page-table entries.
  if (!cluster::inject_pte_corruption(mercury, pid)) {
    std::fprintf(stderr, "could not inject corruption\n");
    return 1;
  }
  std::printf("injected: a PTE now maps hypervisor-owned memory "
              "(tainted kernel state)\n");

  // The healing pass: attach in heal mode, validation repairs, detach.
  const auto report = cluster::self_heal(mercury);
  std::printf("self-heal: %llu tainted entr%s repaired in %.3f ms "
              "(VMM attached only for the repair)\n",
              static_cast<unsigned long long>(report.entries_healed),
              report.entries_healed == 1 ? "y" : "ies",
              hw::cycles_to_us(report.total_cycles) / 1000.0);

  // The victim keeps running: its next touch demand-faults a fresh page in.
  touch_ok = false;
  mercury.kernel().run_for(10 * hw::kCyclesPerMillisecond);
  std::printf("victim alive after repair: %s (mode=%s)\n",
              touch_ok ? "yes" : "no",
              core::exec_mode_name(mercury.mode()));
  return report.entries_healed >= 1 && touch_ok ? 0 : 1;
}
