// Paper §6.1: checkpointing and restarting of operating systems.
//
// The pre-cached VMM is attached periodically, snapshots the whole OS
// domain (memory image + vcpu state), and detaches. When a software failure
// corrupts the system, the snapshot is restored.
#include <cstdio>

#include "cluster/scenarios.hpp"
#include "kernel/syscalls.hpp"
#include "vmm/checkpoint.hpp"

using namespace mercury;
using kernel::Sub;
using kernel::Sys;

int main() {
  hw::MachineConfig mc;
  mc.mem_kb = 192 * 1024;
  hw::Machine machine(mc);
  core::MercuryConfig cfg;
  cfg.kernel_frames = (64ull * 1024 * 1024) / hw::kPageSize;
  core::Mercury mercury(machine, cfg);

  // A process with recognizable in-memory state.
  hw::VirtAddr state_page = 0;
  kernel::Pid pid = mercury.kernel().spawn("stateful", [&](Sys& s) -> Sub<void> {
    state_page = s.mmap(hw::kPageSize, true);
    s.touch_pages(state_page, 1, true);
    for (;;) co_await s.sleep_us(5000.0);
  });
  mercury.kernel().run_for(5 * hw::kCyclesPerMillisecond);

  // Write a magic value into the process's page (through its page tables).
  kernel::Task* task = mercury.kernel().find_task(pid);
  auto& mmu = machine.mmu();
  hw::Cpu& cpu = machine.cpu(0);
  const hw::Ring prev = cpu.cpl();
  cpu.set_cpl(hw::Ring::kRing0);
  cpu.write_cr3(task->aspace->page_directory());
  mmu.write_u32(cpu, state_page, 0xC0FFEE42);
  std::printf("application state written: 0x%08X\n", mmu.read_u32(cpu, state_page));

  // Periodic checkpoint (attach -> snapshot -> detach).
  auto ckpt = cluster::checkpoint_os(mercury);
  std::printf("checkpoint: %.1f MB in %.2f ms (VMM attached only for the "
              "snapshot)\n",
              static_cast<double>(ckpt.snapshot.bytes()) / (1024 * 1024),
              hw::cycles_to_us(ckpt.total_cycles) / 1000.0);

  // Disaster: the application state is scribbled over.
  mmu.write_u32(cpu, state_page, 0xDEADDEAD);
  std::printf("failure injected: state now 0x%08X\n",
              mmu.read_u32(cpu, state_page));

  // Restore from the last checkpoint.
  const hw::Cycles restore_cycles = cluster::restore_os(mercury, ckpt.snapshot);
  const std::uint32_t recovered = mmu.read_u32(cpu, state_page);
  cpu.set_cpl(prev);
  std::printf("restored in %.2f ms: state is 0x%08X again\n",
              hw::cycles_to_us(restore_cycles) / 1000.0, recovered);
  std::printf("memory image bit-exact vs snapshot: %s\n",
              vmm::Checkpointer::matches(mercury.hypervisor(), ckpt.snapshot)
                  ? "yes"
                  : "no");
  return recovered == 0xC0FFEE42 ? 0 : 1;
}
