// Paper §6.4: live kernel update (the LUCOS scenario without a permanent
// VMM). A buggy kernel policy is patched while applications keep running:
// the VMM is attached only for the update window, then detached.
#include <cstdio>

#include "cluster/scenarios.hpp"
#include "kernel/syscalls.hpp"

using namespace mercury;
using kernel::Sub;
using kernel::Sys;

int main() {
  hw::MachineConfig mc;
  mc.mem_kb = 256 * 1024;
  hw::Machine machine(mc);
  core::MercuryConfig cfg;
  cfg.kernel_frames = (128ull * 1024 * 1024) / hw::kPageSize;
  core::Mercury mercury(machine, cfg);

  // The "vulnerable" behaviour: the resume-time selector fixup is disabled
  // (a latent kernel bug the vendor shipped a patch for).
  mercury.kernel().set_selector_fixup_enabled(false);

  long progress = 0;
  mercury.kernel().spawn("service", [&](Sys& s) -> Sub<void> {
    for (;;) {
      co_await s.compute_us(300.0);
      ++progress;
    }
  });
  mercury.kernel().run_for(10 * hw::kCyclesPerMillisecond);
  std::printf("service running on kernel with the buggy code path "
              "(fixup=%d), progress=%ld\n",
              mercury.kernel().selector_fixup_enabled(), progress);

  cluster::KernelPatch patch;
  patch.description = "enable saved-selector fixup stub (CVE-mercury-0001)";
  patch.apply_fn = [](kernel::Kernel& k) { k.set_selector_fixup_enabled(true); };

  const auto report = cluster::live_update(mercury, patch);
  if (!report.success) {
    std::fprintf(stderr, "live update failed\n");
    return 1;
  }

  mercury.kernel().run_for(10 * hw::kCyclesPerMillisecond);
  std::printf("patched (fixup=%d), service progress=%ld, mode=%s\n",
              mercury.kernel().selector_fixup_enabled(), progress,
              core::exec_mode_name(mercury.mode()));
  std::printf("\nupdate window: attach %.3f ms + patch %.3f ms + detach "
              "%.3f ms = %.3f ms total, no restart, no resident VMM\n",
              hw::cycles_to_us(report.attach_cycles) / 1000.0,
              hw::cycles_to_us(report.patch_cycles) / 1000.0,
              hw::cycles_to_us(report.detach_cycles) / 1000.0,
              hw::cycles_to_us(report.total_cycles) / 1000.0);
  return mercury.kernel().selector_fixup_enabled() ? 0 : 1;
}
