// Paper §6.3: online hardware maintenance.
//
// Node alpha runs a production workload natively. To service its hardware,
// alpha self-virtualizes to full-virtual mode, live-migrates its entire OS
// to beta (which self-virtualized to partial-virtual to host it), the
// technician works on the empty machine, and the OS migrates home — the
// workload never stops.
#include <cstdio>

#include "cluster/scenarios.hpp"
#include "kernel/syscalls.hpp"

using namespace mercury;
using kernel::Sub;
using kernel::Sys;

int main() {
  cluster::Fabric fabric;
  auto& alpha = fabric.add_node("alpha");
  auto& beta = fabric.add_node("beta");
  fabric.connect(alpha, beta);

  long transactions = 0;
  alpha.mercury().kernel().spawn("oltp", [&](Sys& s) -> Sub<void> {
    const hw::VirtAddr working_set = s.mmap(48 * hw::kPageSize, true);
    const int log = s.open("/var/oltp.log", true);
    for (;;) {
      s.touch_pages(working_set, 48, true);
      co_await s.compute_us(250.0);
      co_await s.file_write(log, 4096);
      ++transactions;
    }
  });
  alpha.mercury().kernel().run_for(25 * hw::kCyclesPerMillisecond);
  const long before = transactions;
  std::printf("alpha serving (native): %ld transactions\n", before);

  cluster::AvailabilityTracker availability;
  const auto report = cluster::online_maintenance(
      alpha, beta, [&](hw::Machine& machine) {
        std::printf("alpha machine empty: swapping the failing fan...\n");
        machine.sensors().clear_anomalies();
      });

  if (!report.success) {
    std::fprintf(stderr, "maintenance failed\n");
    return 1;
  }
  availability.service_down(0, "stop-and-copy windows");
  availability.service_up(report.service_downtime());
  availability.finish(report.total_cycles);

  alpha.mercury().kernel().run_for(25 * hw::kCyclesPerMillisecond);
  std::printf("alpha serving again (native): %ld transactions (+%ld)\n",
              transactions, transactions - before);
  std::printf("\nmaintenance window: %.1f ms wall, %.3f ms service downtime "
              "(two stop-and-copy pauses)\n",
              hw::cycles_to_us(report.total_cycles) / 1000.0,
              hw::cycles_to_us(report.service_downtime()) / 1000.0);
  std::printf("migration out: %zu pages in %zu round(s); back: %zu pages\n",
              report.out.pages_sent, report.out.rounds, report.back.pages_sent);
  std::printf("availability over the window: %.5f\n",
              availability.availability());
  return transactions > before ? 0 : 1;
}
