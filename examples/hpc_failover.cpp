// Paper §6.5: improving the availability of HPC clusters.
//
// Hardware health monitors watch temperature/fan/voltage. When they predict
// a failure, the OS immediately self-virtualizes to full-virtual mode and
// migrates itself to a healthy node — the long-running computation is
// completely shielded from the failure.
#include <cstdio>

#include "cluster/failure.hpp"
#include "cluster/scenarios.hpp"
#include "kernel/syscalls.hpp"

using namespace mercury;
using kernel::Sub;
using kernel::Sys;

int main() {
  cluster::Fabric fabric;
  auto& n1 = fabric.add_node("hpc-node1");
  auto& n2 = fabric.add_node("hpc-node2");
  fabric.connect(n1, n2);

  // A long-running MPI-rank-like computation on node1.
  long steps = 0;
  n1.mercury().kernel().spawn("solver", [&](Sys& s) -> Sub<void> {
    const hw::VirtAddr grid = s.mmap(128 * hw::kPageSize, true);
    s.touch_pages(grid, 128, true);
    for (;;) {
      co_await s.compute_us(800.0);
      s.touch_pages(grid, 32, true);
      ++steps;
    }
  });

  // A health-monitor daemon polling the sensors (failure prediction).
  bool predicted = false;
  n1.mercury().kernel().spawn("healthd", [&](Sys& s) -> Sub<void> {
    for (;;) {
      co_await s.sleep_us(2000.0);
      const hw::SensorReadings r = s.read_sensors();
      if (hw::HealthSensors::predicts_failure(r)) {
        std::printf("healthd: ANOMALY temp=%.1fC fan=%.0frpm -> failure "
                    "predicted\n",
                    r.temperature_c, r.fan_rpm);
        predicted = true;
        co_return;
      }
    }
  });

  // The cooling fan will start dying 20 ms in.
  cluster::FailureInjector::schedule_overheat(
      n1, n1.machine().cpu(0).now() + 20 * hw::kCyclesPerMillisecond);

  MERC_CHECK(n1.mercury().kernel().run_until([&] { return predicted; },
                                             500 * hw::kCyclesPerMillisecond));
  const long steps_at_prediction = steps;
  std::printf("prediction at %ld solver steps; evacuating node1 -> node2\n",
              steps_at_prediction);

  const auto report = cluster::evacuate(n1, n2);
  if (!report.success) {
    std::fprintf(stderr, "evacuation failed\n");
    return 1;
  }
  n1.fail();  // the predicted failure arrives; node1 is already empty

  // The computation continues on node2 (same kernel object, new machine).
  n1.mercury().kernel().run_for(25 * hw::kCyclesPerMillisecond);
  std::printf("node1 is dead; solver continues on node2: %ld steps (+%ld)\n",
              steps, steps - steps_at_prediction);
  std::printf("prediction -> safety: %.1f ms; migration downtime %.3f ms "
              "(%zu pages, %zu rounds)\n",
              hw::cycles_to_us(report.prediction_to_safety()) / 1000.0,
              hw::cycles_to_us(report.migration.downtime_cycles) / 1000.0,
              report.migration.pages_sent, report.migration.rounds);
  return steps > steps_at_prediction ? 0 : 1;
}
