// Quickstart: boot a Mercury (self-virtualizing) OS, run work in native
// mode at full speed, attach the pre-cached VMM on demand, keep running in
// virtual mode, detach again — all without disturbing the application.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/mercury.hpp"
#include "kernel/syscalls.hpp"
#include "obs/obs.hpp"

using namespace mercury;
using kernel::Sub;
using kernel::Sys;

int main() {
  // The paper's testbed: 3 GHz CPU; a modest 256 MB here for a fast demo.
  hw::MachineConfig mc;
  mc.mem_kb = 256 * 1024;
  hw::Machine machine(mc);

  core::MercuryConfig cfg;
  cfg.kernel_frames = (128ull * 1024 * 1024) / hw::kPageSize;
  core::Mercury mercury(machine, cfg);
  std::printf("booted '%s' in %s mode; pre-cached VMM resident at pfn %u+\n",
              mercury.kernel().name().c_str(),
              core::exec_mode_name(mercury.mode()),
              mercury.hypervisor().reserved_first());

  // An application that must never notice the mode switches.
  long iterations = 0;
  mercury.kernel().spawn("app", [&](Sys& s) -> Sub<void> {
    const hw::VirtAddr buf = s.mmap(64 * hw::kPageSize, true);
    const int fd = s.open("/data/app.log", true);
    for (;;) {
      s.touch_pages(buf, 64, true);
      co_await s.file_write(fd, 8 * 1024);
      co_await s.compute_us(400.0);
      ++iterations;
    }
  });

  auto run_ms = [&](double ms) {
    mercury.kernel().run_for(hw::us_to_cycles(ms * 1000.0));
  };
  auto report = [&](const char* when) {
    std::printf("%-28s mode=%-16s app-iterations=%ld\n", when,
                core::exec_mode_name(mercury.mode()), iterations);
  };

  run_ms(30);
  report("native, full speed:");

  // Attach the full-fledged VMM underneath the running OS.
  if (!mercury.switch_to(core::ExecMode::kPartialVirtual)) {
    std::fprintf(stderr, "attach failed\n");
    return 1;
  }
  std::printf("attach took %.3f ms (page type/count rebuild dominates)\n",
              hw::cycles_to_us(mercury.engine().stats().last_attach_cycles) /
                  1000.0);
  run_ms(30);
  report("partial-virtual (dom0):");

  // Detach: back to bare hardware.
  if (!mercury.switch_to(core::ExecMode::kNative)) {
    std::fprintf(stderr, "detach failed\n");
    return 1;
  }
  std::printf("detach took %.3f ms (accounting drop is O(1))\n",
              hw::cycles_to_us(mercury.engine().stats().last_detach_cycles) /
                  1000.0);
  run_ms(30);
  report("native again:");

  const auto& st = mercury.engine().stats();
  std::printf("\nswitches: %llu attach, %llu detach, %llu deferred\n",
              static_cast<unsigned long long>(st.attaches),
              static_cast<unsigned long long>(st.detaches),
              static_cast<unsigned long long>(st.deferrals));
  std::printf("the application ran continuously through every switch.\n");

#if MERCURY_OBS_ENABLED
  // End-of-run telemetry: everything the registry collected along the way
  // (switch phases, hypercalls, kernel events, fs/net activity).
  std::printf("\n=== telemetry snapshot ===\n%s",
              obs::summary_table(obs::snapshot()).c_str());
#endif
  return 0;
}
