#include "obs/profiler.hpp"

#include <cstdio>

#include "obs/metrics.hpp"

namespace mercury::obs {

ProfBucket* EngineProfiler::bucket(std::string_view name) {
  for (auto& b : buckets_)
    if (b->name == name) return b.get();
  buckets_.push_back(std::make_unique<ProfBucket>());
  buckets_.back()->name = std::string(name);
  return buckets_.back().get();
}

std::vector<ProfBucket> EngineProfiler::snapshot() const {
  std::vector<ProfBucket> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(*b);
  return out;
}

void EngineProfiler::reset() {
  for (auto& b : buckets_) {
    b->count = 0;
    b->wall_ns = 0;
    b->sim_cycles = 0;
  }
}

EngineProfiler& profiler() {
  static EngineProfiler p;
  return p;
}

std::string profile_json(const EngineProfiler& prof) {
  const std::vector<ProfBucket> buckets = prof.snapshot();
  std::uint64_t wall_total = 0, events_total = 0;
  for (const ProfBucket& b : buckets) {
    wall_total += b.wall_ns;
    events_total += b.count;
  }
  std::string out = "{\"schema\":\"mercury.profile.v1\",\"enabled\":";
  out += prof.enabled() ? "true" : "false";
  out += ",\"wall_ns_total\":";
  append_json_number(out, static_cast<double>(wall_total));
  out += ",\"events_total\":";
  append_json_number(out, static_cast<double>(events_total));
  out += ",\"buckets\":[";
  bool first = true;
  for (const ProfBucket& b : buckets) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, b.name);
    out += ",\"count\":";
    append_json_number(out, static_cast<double>(b.count));
    out += ",\"wall_ns\":";
    append_json_number(out, static_cast<double>(b.wall_ns));
    out += ",\"sim_cycles\":";
    append_json_number(out, static_cast<double>(b.sim_cycles));
    out += ",\"wall_fraction\":";
    append_json_number(
        out, wall_total ? static_cast<double>(b.wall_ns) /
                              static_cast<double>(wall_total)
                        : 0.0);
    out += '}';
  }
  out += "]}";
  return out;
}

bool write_profile_json(const std::string& path, const EngineProfiler& prof) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = profile_json(prof);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace mercury::obs
