#include "obs/timeseries.hpp"

#include "obs/metrics.hpp"

namespace mercury::obs {

void TimeSeriesSampler::add_series(std::string name, std::string label,
                                   std::function<double()> read) {
  Series s;
  s.name = std::move(name);
  s.label = std::move(label);
  s.read = std::move(read);
  s.points.reserve(capacity_ < 64 ? capacity_ : 64);
  series_.push_back(std::move(s));
}

void TimeSeriesSampler::sample(hw::Cycles now) {
  for (Series& s : series_) {
    const double v = s.read ? s.read() : 0.0;
    if (s.points.size() < capacity_ && !s.wrapped) {
      s.points.push_back({now, v});
      continue;
    }
    // Ring is full: overwrite the oldest point.
    s.wrapped = true;
    s.points[s.head] = {now, v};
    s.head = (s.head + 1) % s.points.size();
    ++dropped_;
  }
  ++samples_taken_;
}

std::vector<TimeSeriesSampler::Point> TimeSeriesSampler::points(
    std::size_t i) const {
  const Series& s = series_[i];
  if (!s.wrapped) return s.points;
  std::vector<Point> out;
  out.reserve(s.points.size());
  for (std::size_t k = 0; k < s.points.size(); ++k)
    out.push_back(s.points[(s.head + k) % s.points.size()]);
  return out;
}

std::string TimeSeriesSampler::to_json(hw::Cycles interval_cycles) const {
  std::string out = "{\"schema\":\"mercury.timeseries.v1\",";
  out += "\"interval_cycles\":";
  append_json_number(out, static_cast<double>(interval_cycles));
  out += ",\"capacity\":";
  append_json_number(out, static_cast<double>(capacity_));
  out += ",\"samples\":";
  append_json_number(out, static_cast<double>(samples_taken_));
  out += ",\"dropped\":";
  append_json_number(out, static_cast<double>(dropped_));
  out += ",\"series\":[";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (i) out += ',';
    out += "{\"name\":";
    append_json_string(out, series_[i].name);
    out += ",\"label\":";
    append_json_string(out, series_[i].label);
    out += ",\"points\":[";
    const std::vector<Point> pts = points(i);
    for (std::size_t k = 0; k < pts.size(); ++k) {
      if (k) out += ',';
      out += '[';
      append_json_number(out, static_cast<double>(pts[k].t));
      out += ',';
      append_json_number(out, pts[k].v);
      out += ']';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace mercury::obs
