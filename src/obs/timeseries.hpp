// Time-series sampler (observability pillar 3).
//
// End-of-run aggregates hide dynamics: an availability dip during one
// fault storm and a steady 1% degradation sum to the same number. The
// sampler snapshots a chosen set of scalar readers ("series") on the
// *simulated* clock into bounded per-series rings and serializes them as
// `mercury.timeseries.v1` — availability, in-flight switches, quarantine
// count, fault fires *over time*, per node.
//
// Layering: obs cannot depend on the kernel, so the sampler only exposes
// sample(now) — whoever owns a kernel (SoakDriver, ClusterSoak, a bench)
// arms the periodic timer and calls it. Readers are std::function<double()>
// callbacks viewing externally owned state; with a deterministic scenario
// the sampled values are a pure function of the seed, so the emitted JSON
// is byte-identical across runs (tested).
//
// Rings are bounded: past capacity the oldest points drop (counted), so an
// over-long soak degrades to "most recent window" instead of unbounded
// growth — the same policy as the trace and flight rings.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hw/types.hpp"

namespace mercury::obs {

class TimeSeriesSampler {
 public:
  static constexpr std::size_t kDefaultCapacity = 512;

  struct Point {
    hw::Cycles t = 0;
    double v = 0.0;
  };

  struct Series {
    std::string name;
    std::string label;  // e.g. "node=alpha"; empty for fleet-level series
    std::function<double()> read;
    std::vector<Point> points;  // ring once full
    std::size_t head = 0;       // next write position when wrapped
    bool wrapped = false;
  };

  explicit TimeSeriesSampler(std::size_t capacity_per_series = kDefaultCapacity)
      : capacity_(capacity_per_series ? capacity_per_series : 1) {}

  /// Register a series; `read` is invoked at every sample(now) and must stay
  /// valid for the sampler's lifetime.
  void add_series(std::string name, std::string label,
                  std::function<double()> read);

  /// Take one sample of every series, stamped with simulated time `now`.
  void sample(hw::Cycles now);

  std::size_t series_count() const { return series_.size(); }
  std::uint64_t samples_taken() const { return samples_taken_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Points of series `i`, oldest first (unwraps the ring).
  std::vector<Point> points(std::size_t i) const;
  const std::string& series_name(std::size_t i) const {
    return series_[i].name;
  }
  const std::string& series_label(std::size_t i) const {
    return series_[i].label;
  }

  /// mercury.timeseries.v1 JSON. `interval_cycles` is metadata describing
  /// the nominal sampling period (0 = aperiodic/manual).
  std::string to_json(hw::Cycles interval_cycles = 0) const;

 private:
  std::size_t capacity_;
  std::vector<Series> series_;
  std::uint64_t samples_taken_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace mercury::obs
