// Switch-SLO watchdog: per-phase cycle budgets checked after every commit.
//
// Mercury's pitch is that a mode switch is cheap enough to trigger on a
// live machine; the watchdog turns that promise into an enforced service
// level. The engine declares budgets (from SwitchConfig), reports each
// phase's actual cycles after a commit, and every breach becomes a
// `switch.slo.breaches` counter bump, a kSloBreach flight-recorder event,
// and a warning log line — evidence in the black box, not a silent miss.
//
// The watchdog itself is pure host-side bookkeeping: it never charges
// simulated cycles, and its flight/metric emissions compile away under
// MERCURY_OBS=OFF (the breach *count* is still kept, so tests and callers
// can assert on it in either configuration).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/types.hpp"

namespace mercury::obs {

class SloWatchdog {
 public:
  /// Set the budget for `phase` (0 = unlimited). `phase` must be a string
  /// literal or otherwise outlive the watchdog: breaches record the pointer
  /// into the flight ring.
  void set_budget(const char* phase, hw::Cycles budget);
  hw::Cycles budget(const char* phase) const;

  /// Report `actual` cycles spent in `phase` on `cpu` at simulated time
  /// `at`. Returns true (and records the breach) when a nonzero budget was
  /// exceeded.
  bool observe(const char* phase, hw::Cycles actual, std::uint32_t cpu,
               hw::Cycles at);

  std::uint64_t breaches() const { return breaches_; }

 private:
  struct Entry {
    const char* phase;
    hw::Cycles budget;
  };
  std::vector<Entry> entries_;
  std::uint64_t breaches_ = 0;
};

}  // namespace mercury::obs
