#include "obs/postmortem.hpp"

#include <cstdio>
#include <cstdlib>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mercury::obs {

namespace {

// Rotating slot pool: the black box bounds its disk footprint the same way
// the flight ring bounds memory. 32 slots comfortably covers a fault-matrix
// sweep's "did THIS trial dump?" window while capping a fuzzer's output.
constexpr std::uint64_t kPostmortemSlots = 32;

std::string& dir_storage() {
  static std::string dir;
  return dir;
}

std::string& last_path_storage() {
  static std::string path;
  return path;
}

std::uint64_t& count_storage() {
  static std::uint64_t count = 0;
  return count;
}

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void set_postmortem_dir(const std::string& dir) { dir_storage() = dir; }

std::string postmortem_dir() {
  if (!dir_storage().empty()) return dir_storage();
  if (const char* env = std::getenv("MERCURY_POSTMORTEM_DIR");
      env != nullptr && env[0] != '\0')
    return env;
  return ".";
}

void default_postmortem_dir_beside_binary() {
  if (!dir_storage().empty()) return;
  if (const char* env = std::getenv("MERCURY_POSTMORTEM_DIR");
      env != nullptr && env[0] != '\0')
    return;
#if defined(__linux__)
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return;
  buf[n] = '\0';
  const std::string path(buf);
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos || slash == 0) return;
  dir_storage() = path.substr(0, slash);
#endif
}

std::string last_postmortem_path() { return last_path_storage(); }

std::uint64_t postmortem_count() { return count_storage(); }

std::string postmortem_json(const PostmortemContext& ctx,
                            std::size_t flight_tail) {
  const FlightRecorder& rec = flight_recorder();
  std::string out = "{\"schema\":\"mercury.postmortem.v1\",\"reason\":";
  append_escaped(out, ctx.reason);
  out += ",\"detail\":";
  append_escaped(out, ctx.detail);
  out += ",\"switch\":{\"from\":";
  append_escaped(out, ctx.switch_from ? ctx.switch_from : "");
  out += ",\"target\":";
  append_escaped(out, ctx.switch_target ? ctx.switch_target : "");
  out += '}';
  if (ctx.has_fault) {
    out += ",\"fault\":{\"site\":";
    append_escaped(out, ctx.fault_site ? ctx.fault_site : "");
    out += ",\"kind\":";
    append_escaped(out, ctx.fault_kind ? ctx.fault_kind : "");
    out += ",\"cpu\":";
    out += std::to_string(ctx.fault_cpu);
    out += '}';
  }
  out += ",\"active_refs\":";
  out += std::to_string(ctx.active_refs);
  out += ",\"cpu_clocks\":[";
  bool first = true;
  for (const auto& [cpu, cycles] : ctx.cpu_clocks) {
    if (!first) out += ',';
    first = false;
    out += "{\"cpu\":";
    out += std::to_string(cpu);
    out += ",\"cycles\":";
    out += std::to_string(cycles);
    out += '}';
  }
  out += "],\"flight\":{\"recorded\":";
  out += std::to_string(rec.recorded());
  out += ",\"dropped\":";
  out += std::to_string(rec.dropped());
  out += ",\"events\":";
  out += flight_events_json(rec.tail(flight_tail));
  out += "},\"metrics\":";
  out += to_json(snapshot());
  out += ",\"extra\":[";
  first = true;
  for (const auto& [name, value] : ctx.extra) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_escaped(out, name);
    out += ",\"value\":";
    out += std::to_string(value);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string write_postmortem(const PostmortemContext& ctx,
                             std::size_t flight_tail) {
  const std::string json = postmortem_json(ctx, flight_tail);
  const std::uint64_t slot = count_storage() % kPostmortemSlots;
  const std::string path = postmortem_dir() + "/mercury-postmortem-" +
                           std::to_string(slot) + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    util::log_warn("postmortem", "cannot open ", path, " for writing");
    return "";
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  if (std::fclose(f) != 0 || !ok) {
    util::log_warn("postmortem", "short write to ", path);
    return "";
  }
  ++count_storage();
  last_path_storage() = path;
  MERC_COUNT("postmortem.bundles");
  util::log_warn("postmortem", "wrote ", path, " (", ctx.reason, ")");
  return path;
}

namespace {

void assert_failure_hook(const char* expr, const char* file, int line,
                         const std::string& msg) {
  // A MERC_CHECK failing while we serialize the dump must not recurse into
  // a second dump of a dump.
  static thread_local bool in_hook = false;
  if (in_hook) return;
  in_hook = true;
#if MERCURY_OBS_ENABLED
  flight_recorder().record(0, FlightType::kAssertFail, expr, 0,
                           static_cast<std::uint64_t>(line));
#endif
  PostmortemContext ctx;
  ctx.reason = "assert";
  ctx.detail = std::string(expr) + " at " + file + ":" + std::to_string(line);
  if (!msg.empty()) ctx.detail += " — " + msg;
  write_postmortem(ctx);
  in_hook = false;
}

}  // namespace

void install_assert_postmortem_hook() {
  util::set_invariant_failure_hook(&assert_failure_hook);
}

}  // namespace mercury::obs
