// Black-box flight recorder (dependability pillar: make every rollback,
// crash, and invariant failure diagnosable after the fact).
//
// A fixed-capacity, per-CPU ring of *typed, argument-carrying* events: phase
// begin/end with item counts, refcount-retry with the observed count, crew
// shard publish/grab/join with shard bounds and worker id, fault-injection
// hits, rollback steps, invariant verdicts, SLO breaches. Unlike the Chrome
// trace ring (obs/trace.hpp), every event carries up to three integer
// arguments and a *global* sequence number, so cross-CPU causality survives
// export: merging the per-CPU rings by `seq` reconstructs exactly the order
// in which the single-threaded simulator emitted them.
//
// Recording is a ring-slot store plus a counter increment — no allocation
// after the first event on a CPU, no simulated cost (instrumentation never
// cpu.charge()s). The MERC_FLIGHT macro in obs/obs.hpp compiles away under
// MERCURY_OBS=OFF exactly like MERC_SPAN.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/types.hpp"

namespace mercury::obs {

enum class FlightType : std::uint8_t {
  kPhaseBegin,        // arg0 = item count (frames, tables, tasks)
  kPhaseEnd,          // arg0 = item count, arg1 = elapsed cycles
  kSwitchRequest,     // arg0 = from mode, arg1 = target mode
  kSwitchCommit,      // arg0 = from mode, arg1 = target mode, arg2 = cycles
  kSwitchRollback,    // arg0 = from mode, arg1 = target mode
  kRefcountRetry,     // arg0 = observed active_refs, arg1 = total deferrals
  kCrewPublish,       // arg0 = items, arg1 = shard count, arg2 = crew size
  kCrewGrab,          // arg0 = shard begin, arg1 = shard end, arg2 = cycles
  kCrewJoin,          // arg0 = shards run, arg1 = busy cycles, arg2 = span
  kShardRange,        // arg0 = count, arg1 = first pfn, arg2 = last pfn
  kFaultHit,          // arg0 = site, arg1 = kind, arg2 = visit count
  kRollbackStep,      // arg0 = step ordinal
  kInvariantVerdict,  // arg0 = violation count
  kSloBreach,         // arg0 = actual cycles, arg1 = budget cycles
  kAssertFail,        // arg0 = source line
  kSwitchCancel,      // arg0 = current mode, arg1 = abandoned target mode
  kSupervisorAttempt, // arg0 = request id, arg1 = attempt #, arg2 = target
  kSupervisorBackoff, // arg0 = request id, arg1 = attempt #, arg2 = delay cy
  kSupervisorResolve, // arg0 = request id, arg1 = terminal state, arg2 = attempts
  kHealthTransition,  // arg0 = from health, arg1 = to health, arg2 = fail streak
  kPauseWorst,        // arg0 = pause cause, arg1 = begin cycle, arg2 = span
};

const char* flight_type_name(FlightType t);

struct FlightEvent {
  std::uint64_t seq = 0;   // global emission order, across CPUs
  hw::Cycles at = 0;       // emitting CPU's simulated clock
  const char* name = "";   // static string (event names are literals)
  FlightType type = FlightType::kPhaseBegin;
  std::uint32_t cpu = 0;
  std::uint64_t arg0 = 0, arg1 = 0, arg2 = 0;
};

/// Per-CPU rings of FlightEvents with one global sequence counter. Rings
/// overwrite their oldest event when full (dropped count kept), mirroring
/// TraceBuffer: the black box never allocates unboundedly and never loses
/// the *newest* evidence.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacityPerCpu = 1024;

  explicit FlightRecorder(
      std::size_t capacity_per_cpu = kDefaultCapacityPerCpu);

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Change per-CPU ring capacity; drops everything recorded so far.
  void set_capacity(std::size_t per_cpu);
  std::size_t capacity() const { return capacity_; }

  void record(std::uint32_t cpu, FlightType type, const char* name,
              hw::Cycles at, std::uint64_t arg0 = 0, std::uint64_t arg1 = 0,
              std::uint64_t arg2 = 0);

  /// All retained events merged across CPUs, in emission (seq) order.
  std::vector<FlightEvent> events() const;
  /// The last `n` retained events in emission order — the black-box tail.
  std::vector<FlightEvent> tail(std::size_t n) const;

  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return dropped_; }
  /// The seq the *next* record() will stamp. Monotonic across clear(), so
  /// a caller can capture it just before emitting an event it wants to
  /// cross-reference (the pause ledger's worst-case tracker does).
  std::uint64_t next_seq() const { return next_seq_; }
  void clear();

 private:
  struct Ring {
    std::vector<FlightEvent> slots;
    std::size_t head = 0;  // next write position
    std::size_t size = 0;
  };

  bool enabled_ = true;
  std::size_t capacity_;
  std::vector<Ring> rings_;  // indexed by cpu id, grown on demand
  std::uint64_t next_seq_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

/// The process-global recorder the MERC_FLIGHT macro records into. First use
/// registers `obs.flight.recorded` / `obs.flight.dropped` callback gauges so
/// ring overflow shows up in every --metrics-json artifact.
FlightRecorder& flight_recorder();

/// JSON array of `events` (each `{"seq":..,"cpu":..,"cycles":..,"type":..,
/// "name":..,"args":[a0,a1,a2]}`), used by the postmortem bundle.
std::string flight_events_json(const std::vector<FlightEvent>& events);

}  // namespace mercury::obs
