// Span-based tracer (telemetry pillar 2).
//
// Fixed-capacity per-CPU ring buffers of trace events over simulated
// hw::Cycles, recorded by scoped RAII TraceSpans. The buffer exports Chrome
// `trace_event` JSON (chrome://tracing / Perfetto "Open trace file"): one
// process per cluster node, one track per simulated CPU, ts/dur in
// simulated microseconds.
//
// Rings overwrite their oldest event when full (the dropped count is kept),
// so tracing never allocates on the hot path after the first event on a CPU
// and a runaway workload cannot exhaust memory — Mercury's "pay only when
// attached" philosophy applied to telemetry.
//
// Causal tracing: every span carries a SpanContext (trace-id / span-id /
// parent-span-id). The simulator is a single-threaded discrete-event
// machine, so the *ambient* context is one global slot: a TraceSpan makes
// itself the ambient context for its scope, and anything recorded inside —
// nested spans, instants, a cross-node switch request — links to it. The
// cluster fabric installs a TraceNodeScope around each node's stepper so
// events are attributed to the node (the Chrome pid) they ran on, and the
// switch supervisor/engine carry a captured SpanContext across the
// asynchronous request -> interrupt -> commit hop, so one cluster-wide
// switch wave renders as a single causally-linked tree.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/types.hpp"

namespace mercury::hw {
class Cpu;
}

namespace mercury::obs {

enum class TraceCat : std::uint8_t {
  kSwitch,      // whole mode-switch commits
  kRendezvous,  // §5.4 SMP barrier
  kTransfer,    // §5.1.2 state-transfer phases
  kFixup,       // stack segment-selector rewriting
  kVmm,         // hypervisor: adopt/release, hypercall storms
  kNet,         // network stack
  kFs,          // filesystem / block cache
  kCluster,     // cross-node scenarios
  kFault,       // injected faults + mid-switch rollbacks
  kOther,
};

const char* trace_cat_name(TraceCat cat);

/// Causal identity of one span. Ids come from a process-global monotonic
/// counter (deterministic, never random): 0 means "none", so a
/// default-constructed context is the absence of a trace.
struct SpanContext {
  std::uint64_t trace_id = 0;   // the whole causal tree (e.g. one wave)
  std::uint64_t span_id = 0;    // this span
  std::uint64_t parent_id = 0;  // enclosing span (0 = root)
  bool valid() const { return trace_id != 0; }
};

/// The ambient span context (single global slot; see the header comment).
const SpanContext& current_span_context();
void set_span_context(const SpanContext& ctx);

/// Allocate the next span/trace id (monotonic, starts at 1).
std::uint64_t next_span_id();

/// RAII: install `ctx` as the ambient context, restore the prior one on
/// scope exit. Used to re-establish a captured context after an
/// asynchronous hop (supervisor retry timer, cross-node message).
class SpanContextScope {
 public:
  explicit SpanContextScope(const SpanContext& ctx)
      : prev_(current_span_context()) {
    set_span_context(ctx);
  }
  ~SpanContextScope() { set_span_context(prev_); }
  SpanContextScope(const SpanContextScope&) = delete;
  SpanContextScope& operator=(const SpanContextScope&) = delete;

 private:
  SpanContext prev_;
};

/// The ambient cluster-node id events are attributed to (the Chrome export
/// pid). 0 = unscoped single-machine runs; the fabric assigns index+1.
std::uint32_t current_trace_node();
void set_trace_node(std::uint32_t node);

/// RAII node attribution, installed by Fabric::co_step around each node's
/// kernel stepper.
class TraceNodeScope {
 public:
  explicit TraceNodeScope(std::uint32_t node) : prev_(current_trace_node()) {
    set_trace_node(node);
  }
  ~TraceNodeScope() { set_trace_node(prev_); }
  TraceNodeScope(const TraceNodeScope&) = delete;
  TraceNodeScope& operator=(const TraceNodeScope&) = delete;

 private:
  std::uint32_t prev_;
};

struct TraceEvent {
  const char* name = "";  // static string (event names are literals)
  TraceCat cat = TraceCat::kOther;
  std::uint32_t cpu = 0;
  hw::Cycles begin = 0;
  hw::Cycles end = 0;  // == begin for instant events
  std::uint32_t node = 0;      // cluster node (0 = unscoped); Chrome pid
  std::uint64_t seq = 0;       // global record order, assigned by the buffer
  std::uint64_t trace_id = 0;  // causal tree (0 = untraced event)
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  bool instant() const { return end == begin; }
};

class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacityPerCpu = 4096;

  explicit TraceBuffer(std::size_t capacity_per_cpu = kDefaultCapacityPerCpu);

  /// Tracing starts enabled; disable to make record() a cheap early-out.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Change per-CPU ring capacity; drops everything recorded so far.
  void set_capacity(std::size_t per_cpu);
  std::size_t capacity() const { return capacity_; }

  /// Record `ev`, stamping it with the next global sequence number and —
  /// when ev.node is 0 — the ambient trace node.
  void record(const TraceEvent& ev);
  void record_instant(std::uint32_t cpu, TraceCat cat, const char* name,
                      hw::Cycles at) {
    TraceEvent ev{name, cat, cpu, at, at};
    // Instants hang off whatever span is ambient at the marker site.
    const SpanContext& ctx = current_span_context();
    ev.trace_id = ctx.trace_id;
    ev.parent_id = ctx.span_id;
    record(ev);
  }

  /// All retained events, oldest first, across CPUs (ordered by begin time,
  /// ties broken by the global sequence number so exports are stable even
  /// when rings wrapped).
  std::vector<TraceEvent> events() const;
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return dropped_; }
  /// Drops retained events; the global sequence keeps counting, so events
  /// recorded before and after a clear still order correctly.
  void clear();

 private:
  struct Ring {
    std::vector<TraceEvent> slots;
    std::size_t head = 0;  // next write position
    std::size_t size = 0;
  };

  bool enabled_ = true;
  std::size_t capacity_;
  std::vector<Ring> rings_;  // indexed by cpu id, grown on demand
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t next_seq_ = 1;  // global across rings; survives clear()
};

/// The process-global buffer the instrumentation macros record into.
TraceBuffer& trace_buffer();

/// Chrome trace_event JSON for the buffer ("X" complete events, pid = the
/// cluster node, one tid per simulated CPU; span/trace/parent ids travel in
/// "args"). Loadable by chrome://tracing and ui.perfetto.dev.
std::string chrome_trace_json(const TraceBuffer& buf = trace_buffer());

/// Write chrome_trace_json() to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const TraceBuffer& buf = trace_buffer());

/// RAII span over simulated time: samples cpu.now() at construction and
/// destruction and records a complete event. Constructing spans inside
/// spans yields properly nested Chrome trace stacks, and each span installs
/// itself as the ambient SpanContext so the nesting is also causal.
/// Implemented inline in obs/obs.hpp (needs hw::Cpu); prefer the MERC_SPAN
/// macro, which compiles away when MERCURY_OBS_ENABLED=0.
class TraceSpan;

}  // namespace mercury::obs
