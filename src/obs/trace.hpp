// Span-based tracer (telemetry pillar 2).
//
// Fixed-capacity per-CPU ring buffers of trace events over simulated
// hw::Cycles, recorded by scoped RAII TraceSpans. The buffer exports Chrome
// `trace_event` JSON (chrome://tracing / Perfetto "Open trace file"): one
// track per simulated CPU, ts/dur in simulated microseconds.
//
// Rings overwrite their oldest event when full (the dropped count is kept),
// so tracing never allocates on the hot path after the first event on a CPU
// and a runaway workload cannot exhaust memory — Mercury's "pay only when
// attached" philosophy applied to telemetry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/types.hpp"

namespace mercury::hw {
class Cpu;
}

namespace mercury::obs {

enum class TraceCat : std::uint8_t {
  kSwitch,      // whole mode-switch commits
  kRendezvous,  // §5.4 SMP barrier
  kTransfer,    // §5.1.2 state-transfer phases
  kFixup,       // stack segment-selector rewriting
  kVmm,         // hypervisor: adopt/release, hypercall storms
  kNet,         // network stack
  kFs,          // filesystem / block cache
  kCluster,     // cross-node scenarios
  kFault,       // injected faults + mid-switch rollbacks
  kOther,
};

const char* trace_cat_name(TraceCat cat);

struct TraceEvent {
  const char* name = "";  // static string (event names are literals)
  TraceCat cat = TraceCat::kOther;
  std::uint32_t cpu = 0;
  hw::Cycles begin = 0;
  hw::Cycles end = 0;  // == begin for instant events
  bool instant() const { return end == begin; }
};

class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacityPerCpu = 4096;

  explicit TraceBuffer(std::size_t capacity_per_cpu = kDefaultCapacityPerCpu);

  /// Tracing starts enabled; disable to make record() a cheap early-out.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Change per-CPU ring capacity; drops everything recorded so far.
  void set_capacity(std::size_t per_cpu);
  std::size_t capacity() const { return capacity_; }

  void record(const TraceEvent& ev);
  void record_instant(std::uint32_t cpu, TraceCat cat, const char* name,
                      hw::Cycles at) {
    record(TraceEvent{name, cat, cpu, at, at});
  }

  /// All retained events, oldest first, across CPUs (stable by begin time).
  std::vector<TraceEvent> events() const;
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return dropped_; }
  void clear();

 private:
  struct Ring {
    std::vector<TraceEvent> slots;
    std::size_t head = 0;  // next write position
    std::size_t size = 0;
  };

  bool enabled_ = true;
  std::size_t capacity_;
  std::vector<Ring> rings_;  // indexed by cpu id, grown on demand
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

/// The process-global buffer the instrumentation macros record into.
TraceBuffer& trace_buffer();

/// Chrome trace_event JSON for the buffer ("X" complete events, one tid per
/// simulated CPU). Loadable by chrome://tracing and ui.perfetto.dev.
std::string chrome_trace_json(const TraceBuffer& buf = trace_buffer());

/// Write chrome_trace_json() to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const TraceBuffer& buf = trace_buffer());

/// RAII span over simulated time: samples cpu.now() at construction and
/// destruction and records a complete event. Constructing spans inside
/// spans yields properly nested Chrome trace stacks. Implemented inline in
/// obs/obs.hpp (needs hw::Cpu); prefer the MERC_SPAN macro, which compiles
/// away when MERCURY_OBS_ENABLED=0.
class TraceSpan;

}  // namespace mercury::obs
