#include "obs/slo.hpp"

#include <cstring>

#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "util/log.hpp"

namespace mercury::obs {

void SloWatchdog::set_budget(const char* phase, hw::Cycles budget) {
  for (Entry& e : entries_) {
    if (std::strcmp(e.phase, phase) == 0) {
      e.budget = budget;
      return;
    }
  }
  entries_.push_back(Entry{phase, budget});
}

hw::Cycles SloWatchdog::budget(const char* phase) const {
  for (const Entry& e : entries_)
    if (std::strcmp(e.phase, phase) == 0) return e.budget;
  return 0;
}

bool SloWatchdog::observe(const char* phase, hw::Cycles actual,
                          std::uint32_t cpu, hw::Cycles at) {
  const hw::Cycles b = budget(phase);
  if (b == 0 || actual <= b) return false;
  ++breaches_;
  MERC_COUNT("switch.slo.breaches");
#if MERCURY_OBS_ENABLED
  flight_recorder().record(cpu, FlightType::kSloBreach, phase, at, actual, b);
#else
  (void)cpu;
  (void)at;
#endif
  util::log_warn("slo", "budget breach: ", phase, " ran ", actual,
                 " cycles against a budget of ", b);
  return true;
}

}  // namespace mercury::obs
