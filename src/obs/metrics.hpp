// Central metrics registry (telemetry pillar 1).
//
// Named, optionally labeled instruments — counters, gauges, cycle
// histograms, and callback gauges that view externally owned state — with a
// process-global registry, snapshotting, and a JSON serializer so benches
// can emit machine-readable phase breakdowns (paper §6/§7 tables).
//
// Threading: the simulator is a single-threaded discrete-event machine, so
// instrument updates are plain stores ("lock-free-ish": single-writer by
// construction). Registration and snapshotting take a mutex so a harness
// thread can snapshot while instruments mutate.
//
// Cost model: updating an owned instrument through a cached reference is an
// inlined integer add. With MERCURY_OBS_ENABLED=0 the instrumentation
// macros in obs/obs.hpp compile away entirely; this header stays valid so
// non-macro users (tests, benches) still link.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.hpp"

namespace mercury::obs {

/// Monotonic event count. Single-writer; reads are exact between events.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_ += n; }
  std::uint64_t value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::uint64_t v_ = 0;
};

/// Last-value instrument (levels: downtime, queue depth, mode, ...).
class Gauge {
 public:
  void set(double v) { v_ = v; }
  void add(double d) { v_ += d; }
  double value() const { return v_; }
  void reset() { v_ = 0.0; }

 private:
  double v_ = 0.0;
};

/// Distribution instrument: log2-bucketed quantiles plus exact running
/// moments, built on util::Histogram / util::RunningStats.
class Hist {
 public:
  void record(std::uint64_t v) {
    h_.add(v);
    s_.add(static_cast<double>(v));
  }
  std::uint64_t count() const { return h_.count(); }
  std::uint64_t quantile(double q) const { return h_.quantile(q); }
  const util::Histogram& histogram() const { return h_; }
  const util::RunningStats& stats() const { return s_; }
  void reset() {
    h_ = util::Histogram{};
    s_.reset();
  }

 private:
  util::Histogram h_;
  util::RunningStats s_;
};

enum class InstrumentKind : std::uint8_t { kCounter, kGauge, kHist, kCallback };

const char* instrument_kind_name(InstrumentKind k);

/// Flattened point-in-time view of one instrument.
struct InstrumentSample {
  std::string name;
  std::string label;  // empty for global instruments
  InstrumentKind kind = InstrumentKind::kCounter;
  double value = 0.0;       // counters (exact), gauges, callbacks
  // Histogram fields (kind == kHist only):
  std::uint64_t count = 0;
  double sum = 0.0, min = 0.0, mean = 0.0, max = 0.0;
  std::uint64_t p50 = 0, p90 = 0, p99 = 0;
};

struct Snapshot {
  std::vector<InstrumentSample> samples;

  /// First sample matching name (+label if given); nullptr when absent.
  const InstrumentSample* find(std::string_view name,
                               std::string_view label = {}) const;
};

/// Get-or-create registry of named instruments. References returned stay
/// valid for the registry's lifetime (values may be reset, instruments are
/// never destroyed), so call sites may cache them in static locals.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name, std::string_view label = {});
  Gauge& gauge(std::string_view name, std::string_view label = {});
  Hist& histogram(std::string_view name, std::string_view label = {});

  /// Register a read-on-snapshot gauge viewing externally owned state
  /// (e.g. a SwitchStats field). Returns an id for unregister_callback;
  /// the callback must stay valid until then.
  std::uint64_t register_callback(std::string_view name, std::string_view label,
                                  std::function<double()> fn);
  void unregister_callback(std::uint64_t id);

  Snapshot snapshot() const;
  /// Zero every owned instrument (callbacks are untouched). Instruments are
  /// never removed, so cached references stay valid.
  void reset_values();
  std::size_t size() const;

 private:
  struct Owned {
    std::string name, label;
    InstrumentKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Hist> hist;
  };
  struct Callback {
    std::uint64_t id;
    std::string name, label;
    std::function<double()> fn;
  };

  Owned& get_or_create(std::string_view name, std::string_view label,
                       InstrumentKind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Owned>> owned_;  // stable addresses
  std::vector<Callback> callbacks_;
  std::uint64_t next_cb_id_ = 1;
};

/// The process-global registry every instrumentation macro records into.
MetricsRegistry& registry();

/// Snapshot of the global registry.
Snapshot snapshot();

/// A label-bound view of a registry: every instrument created through it
/// carries a fixed label (e.g. "node=alpha"), giving each cluster::Node its
/// own metric namespace inside the shared registry while fleet-level
/// aggregation just sums samples that share a name across labels.
class ScopedMetrics {
 public:
  ScopedMetrics() : reg_(&registry()) {}
  explicit ScopedMetrics(std::string label, MetricsRegistry* reg = nullptr)
      : reg_(reg ? reg : &registry()), label_(std::move(label)) {}

  Counter& counter(std::string_view name) { return reg_->counter(name, label_); }
  Gauge& gauge(std::string_view name) { return reg_->gauge(name, label_); }
  Hist& histogram(std::string_view name) { return reg_->histogram(name, label_); }
  std::uint64_t register_callback(std::string_view name,
                                  std::function<double()> fn) {
    return reg_->register_callback(name, label_, std::move(fn));
  }

  const std::string& label() const { return label_; }
  MetricsRegistry& registry_ref() { return *reg_; }

 private:
  MetricsRegistry* reg_;
  std::string label_;
};

/// JSON building blocks shared by the metrics / time-series / profile
/// serializers: escaped string, and a number that prints integral values
/// exactly (counters must round-trip).
void append_json_string(std::string& out, std::string_view s);
void append_json_number(std::string& out, double v);

/// Serialize a snapshot as the `mercury.metrics.v1` JSON document (see
/// scripts/check_bench_json.py for the schema).
std::string to_json(const Snapshot& snap);

/// Human-readable summary (counters/gauges, then histogram quantiles).
std::string summary_table(const Snapshot& snap);

/// RAII bundle of callback-gauge registrations: unregisters on destruction
/// (used by SwitchEngine to expose per-engine stats for its lifetime).
class CallbackGuard {
 public:
  CallbackGuard() = default;
  ~CallbackGuard() { release(); }
  CallbackGuard(const CallbackGuard&) = delete;
  CallbackGuard& operator=(const CallbackGuard&) = delete;

  void add(std::string_view name, std::string_view label,
           std::function<double()> fn) {
    ids_.push_back(registry().register_callback(name, label, std::move(fn)));
  }
  void release() {
    for (const std::uint64_t id : ids_) registry().unregister_callback(id);
    ids_.clear();
  }

 private:
  std::vector<std::uint64_t> ids_;
};

}  // namespace mercury::obs
