// Postmortem bundles: the black box's crash dump.
//
// When a switch rolls back on an injected fault, the invariant checker
// reports violations, or a MERC_CHECK fires, the process captures a
// `mercury.postmortem.v1` JSON bundle: the flight-recorder tail, a full
// metrics snapshot, per-CPU simulated clocks, the in-flight switch modes,
// the VO refcount, and caller-supplied extras (PageInfoTable shard
// counters, engine stats). The bundle is everything a human — or
// scripts/blackbox_report.py — needs to reconstruct what the engine was
// doing when it died, without a debugger attached to the original run.
//
// Bundles are written to a configurable directory (set_postmortem_dir, or
// the MERCURY_POSTMORTEM_DIR environment variable) into a fixed pool of
// rotating slot files (mercury-postmortem-<slot>.json): like the flight
// ring itself, the black box bounds its disk footprint and keeps the newest
// evidence. Writing is unconditional — a MERCURY_OBS=OFF build still dumps
// bundles (with an empty flight tail), because postmortem capture is a
// dependability feature, not telemetry.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "hw/types.hpp"

namespace mercury::obs {

/// Everything the dump site knows about the failure. String fields must be
/// static or outlive the write_postmortem call.
struct PostmortemContext {
  const char* reason = "unknown";  // "fault-rollback" | "invariant-failure" | "assert"
  std::string detail;              // free text: fault plan, violation list, message

  const char* switch_from = nullptr;    // exec mode names, when a switch was in flight
  const char* switch_target = nullptr;

  bool has_fault = false;          // FaultInjected details, when that was the trigger
  const char* fault_site = nullptr;
  const char* fault_kind = nullptr;
  std::uint32_t fault_cpu = 0;

  std::int64_t active_refs = -1;   // current VO refcount; -1 = unknown

  /// (cpu id, simulated clock) for every CPU.
  std::vector<std::pair<std::uint32_t, hw::Cycles>> cpu_clocks;
  /// Named scalars: PageInfoTable shard counters, engine stats, ...
  std::vector<std::pair<std::string, std::uint64_t>> extra;
};

/// Where bundles go. Default: $MERCURY_POSTMORTEM_DIR, else the working
/// directory. An empty string resets to that default.
void set_postmortem_dir(const std::string& dir);
std::string postmortem_dir();

/// If neither set_postmortem_dir nor $MERCURY_POSTMORTEM_DIR is in effect,
/// point bundles at the directory containing the running binary (the build
/// tree for tests/benches) instead of the working directory, so ad-hoc runs
/// from the repo root stop littering it with slot files. No-op off Linux.
void default_postmortem_dir_beside_binary();

/// Serialize `ctx` (+ flight tail, + metrics snapshot) and write it to the
/// next slot file. Returns the path written, or "" on I/O failure. At most
/// `flight_tail` events are embedded.
std::string write_postmortem(const PostmortemContext& ctx,
                             std::size_t flight_tail = 256);

/// The path the most recent write_postmortem produced ("" before the first).
std::string last_postmortem_path();
/// Bundles written since process start (monotonic; slots rotate, this does
/// not).
std::uint64_t postmortem_count();

/// Build the bundle JSON without writing it (the serializer behind
/// write_postmortem; exposed for tests).
std::string postmortem_json(const PostmortemContext& ctx,
                            std::size_t flight_tail = 256);

/// Install the util::assert failure hook that dumps an "assert" bundle
/// before InvariantError propagates. Idempotent; reentrancy-guarded so a
/// check failing *inside* the dump cannot recurse.
void install_assert_postmortem_hook();

}  // namespace mercury::obs
