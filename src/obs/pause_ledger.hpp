// Pause observatory (dependability pillar: measure worst-case, not mean).
//
// Mercury's rendezvous stops every CPU during a mode switch (paper §5.4);
// ROADMAP item 5 (latency-bounded switching) needs the *tail* of per-CPU
// unavailability, attributed to a cause. The ledger records every interval a
// vCPU is unavailable to guest work as a typed (cause, begin, end, detail)
// record: per-cause cycle histograms with exact running max, per-CPU cycle
// totals, and a running worst-case interval that carries a flight-recorder
// sequence number so the black box tail around the worst pause can be
// replayed from the same artifact.
//
// Attribution is per-cause, not additive: a crew shard runs *inside* the
// rendezvous parked window and a TLB shootdown *inside* a transfer phase, so
// summing causes double-counts by design. The worst-case tracker compares
// raw spans across causes, which is exactly what a deadline bound cares
// about.
//
// Recording is host-side arithmetic plus histogram bumps — it never
// cpu.charge()s, and the MERC_PAUSE* macros in obs/obs.hpp compile away
// entirely under MERCURY_OBS=OFF (the cycle-identity tier diffs a pause
// probe line across both builds to prove it).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/types.hpp"
#include "util/stats.hpp"

namespace mercury::obs {

enum class PauseCause : std::uint8_t {
  kRendezvousParked,        // held at the §5.4 barrier
  kCrewShardWork,           // running sharded switch work while parked
  kTlbShootdown,            // batched cross-CPU TLB flush boundary
  kHypercallEmulation,      // ring-0 entry/emulate/exit window
  kRollbackUnwind,          // undoing a half-applied switch
  kSupervisorRetryBackoff,  // supervisor holding a request in backoff
  kCauseCount,              // sentinel — keep last
};

constexpr std::size_t kPauseCauseCount =
    static_cast<std::size_t>(PauseCause::kCauseCount);

/// Stable artifact name ("rendezvous-parked", ...); "?" past the sentinel.
const char* pause_cause_name(PauseCause c);

/// The running worst-case unavailability interval across all causes.
struct PauseWorst {
  bool valid = false;
  PauseCause cause = PauseCause::kRendezvousParked;
  std::uint32_t cpu = 0;
  hw::Cycles begin = 0;
  hw::Cycles end = 0;
  const char* detail = "";     // static string (site literals)
  std::uint64_t flight_seq = 0;  // seq of the pause.worst flight event
  hw::Cycles span() const { return end - begin; }
};

/// Per-CPU unavailability ledger. One instance is the process-global
/// ambient default (pause_ledger()); soaks install per-node instances via
/// PauseLedgerScope so fleet rollups stay per-node.
class PauseLedger {
 public:
  PauseLedger();

  /// Record one closed interval [begin, end] on `cpu`. end < begin is
  /// clamped to a zero span (defensive; sites pass monotone clocks).
  void record(PauseCause cause, std::uint32_t cpu, hw::Cycles begin,
              hw::Cycles end, const char* detail = "");

  /// Open-interval pairing for enter/exit shaped sites (hypercalls). A
  /// begin over a still-open slot, or an end without a begin, counts the
  /// orphaned half as unattributed — the soak gate holds this at zero, so
  /// pairing bugs fail CI instead of silently losing intervals.
  void begin_interval(PauseCause cause, std::uint32_t cpu, hw::Cycles begin,
                      const char* detail = "");
  void end_interval(std::uint32_t cpu, hw::Cycles end);

  std::uint64_t intervals() const { return intervals_; }
  std::uint64_t unattributed() const { return unattributed_; }
  std::uint64_t count(PauseCause c) const { return per_cause(c).count; }
  hw::Cycles total(PauseCause c) const { return per_cause(c).total; }
  /// Log2-bucketed quantile, except q >= 1.0 returns the *exact* recorded
  /// max (RunningStats, not a bucket bound) — worst-case must not round.
  std::uint64_t quantile(PauseCause c, double q) const;
  const util::Histogram& histogram(PauseCause c) const {
    return per_cause(c).hist;
  }
  const util::RunningStats& stats(PauseCause c) const {
    return per_cause(c).moments;
  }
  /// Total recorded unavailability on `cpu` (0 for CPUs never paused).
  hw::Cycles cpu_total(std::uint32_t cpu) const;
  std::size_t cpus_seen() const { return cpu_totals_.size(); }
  const PauseWorst& worst() const { return worst_; }

  /// Fold another ledger's closed intervals in (histograms, moments, CPU
  /// totals, unattributed count, worst-case). Open begin_interval slots are
  /// the other ledger's business and are not transferred. Bench sweeps merge
  /// per-cell ledgers into a run ledger; soak merges per-node into fleet.
  void merge(const PauseLedger& other);

  /// Drop the distributions but keep the worst-case (a bench clearing
  /// between sweep cells must not lose the run's worst interval).
  void clear();
  /// Full reset, worst-case included.
  void reset();

  /// The mercury.pause.v1 document (see scripts/check_bench_json.py).
  std::string to_json() const;

 private:
  struct CauseSlot {
    util::Histogram hist;
    util::RunningStats moments;
    std::uint64_t count = 0;
    hw::Cycles total = 0;
  };
  struct OpenSlot {
    bool open = false;
    PauseCause cause = PauseCause::kRendezvousParked;
    hw::Cycles begin = 0;
    const char* detail = "";
  };

  const CauseSlot& per_cause(PauseCause c) const;
  void note_worst(PauseCause cause, std::uint32_t cpu, hw::Cycles begin,
                  hw::Cycles end, const char* detail);

  std::vector<CauseSlot> causes_;       // indexed by PauseCause
  std::vector<hw::Cycles> cpu_totals_;  // indexed by cpu id, grown on demand
  std::vector<OpenSlot> open_;          // indexed by cpu id, grown on demand
  std::uint64_t intervals_ = 0;
  std::uint64_t unattributed_ = 0;
  PauseWorst worst_;
};

/// The ambient ledger MERC_PAUSE* records into: the innermost active
/// PauseLedgerScope's ledger, or the process-global default. First use of
/// the global registers `obs.pause.intervals` / `obs.pause.unattributed` /
/// `obs.pause.worst_cycles` callback gauges so every --metrics-json
/// artifact carries the ledger's health.
PauseLedger& pause_ledger();

/// Install `ledger` as the ambient pause ledger for this scope (restores
/// the previous one on destruction). ClusterSoak gives each node its own.
class PauseLedgerScope {
 public:
  explicit PauseLedgerScope(PauseLedger& ledger);
  ~PauseLedgerScope();
  PauseLedgerScope(const PauseLedgerScope&) = delete;
  PauseLedgerScope& operator=(const PauseLedgerScope&) = delete;

 private:
  PauseLedger* prev_;
};

}  // namespace mercury::obs
