#include "obs/flight_recorder.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace mercury::obs {

const char* flight_type_name(FlightType t) {
  switch (t) {
    case FlightType::kPhaseBegin: return "phase.begin";
    case FlightType::kPhaseEnd: return "phase.end";
    case FlightType::kSwitchRequest: return "switch.request";
    case FlightType::kSwitchCommit: return "switch.commit";
    case FlightType::kSwitchRollback: return "switch.rollback";
    case FlightType::kRefcountRetry: return "refcount.retry";
    case FlightType::kCrewPublish: return "crew.publish";
    case FlightType::kCrewGrab: return "crew.grab";
    case FlightType::kCrewJoin: return "crew.join";
    case FlightType::kShardRange: return "shard.range";
    case FlightType::kFaultHit: return "fault.hit";
    case FlightType::kRollbackStep: return "rollback.step";
    case FlightType::kInvariantVerdict: return "invariant.verdict";
    case FlightType::kSloBreach: return "slo.breach";
    case FlightType::kAssertFail: return "assert.fail";
    case FlightType::kSwitchCancel: return "switch.cancel";
    case FlightType::kSupervisorAttempt: return "supervisor.attempt";
    case FlightType::kSupervisorBackoff: return "supervisor.backoff";
    case FlightType::kSupervisorResolve: return "supervisor.resolve";
    case FlightType::kHealthTransition: return "supervisor.health";
    case FlightType::kPauseWorst: return "pause.worst";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity_per_cpu)
    : capacity_(capacity_per_cpu ? capacity_per_cpu : 1) {}

void FlightRecorder::set_capacity(std::size_t per_cpu) {
  capacity_ = per_cpu ? per_cpu : 1;
  clear();
}

void FlightRecorder::clear() {
  rings_.clear();
  recorded_ = 0;
  dropped_ = 0;
  // next_seq_ keeps counting: seq is an emission order, not an index, and a
  // clear between switches must not make old exported events look newer
  // than post-clear ones.
}

void FlightRecorder::record(std::uint32_t cpu, FlightType type,
                            const char* name, hw::Cycles at,
                            std::uint64_t arg0, std::uint64_t arg1,
                            std::uint64_t arg2) {
  if (!enabled_) return;
  if (cpu >= rings_.size()) rings_.resize(cpu + 1);
  Ring& r = rings_[cpu];
  if (r.slots.empty()) r.slots.resize(capacity_);
  if (r.size == r.slots.size()) ++dropped_;  // overwriting the oldest
  else ++r.size;
  r.slots[r.head] =
      FlightEvent{next_seq_++, at, name, type, cpu, arg0, arg1, arg2};
  r.head = (r.head + 1) % r.slots.size();
  ++recorded_;
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::vector<FlightEvent> out;
  for (const Ring& r : rings_) {
    const std::size_t cap = r.slots.size();
    const std::size_t start = r.size == cap ? r.head : 0;
    for (std::size_t i = 0; i < r.size; ++i)
      out.push_back(r.slots[(start + i) % cap]);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::vector<FlightEvent> FlightRecorder::tail(std::size_t n) const {
  std::vector<FlightEvent> all = events();
  if (all.size() > n) all.erase(all.begin(), all.end() - static_cast<std::ptrdiff_t>(n));
  return all;
}

FlightRecorder& flight_recorder() {
  static FlightRecorder rec;
  // Ring overflow must be visible in every --metrics-json artifact, not
  // silently lost: expose the running totals as callback gauges the first
  // time anything touches the recorder.
  static const bool registered = [] {
    registry().register_callback("obs.flight.recorded", {}, [] {
      return static_cast<double>(flight_recorder().recorded());
    });
    registry().register_callback("obs.flight.dropped", {}, [] {
      return static_cast<double>(flight_recorder().dropped());
    });
    return true;
  }();
  (void)registered;
  return rec;
}

std::string flight_events_json(const std::vector<FlightEvent>& events) {
  std::string out = "[";
  bool first = true;
  for (const FlightEvent& ev : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"seq\":";
    out += std::to_string(ev.seq);
    out += ",\"cpu\":";
    out += std::to_string(ev.cpu);
    out += ",\"cycles\":";
    out += std::to_string(ev.at);
    out += ",\"type\":\"";
    out += flight_type_name(ev.type);
    out += "\",\"name\":\"";
    out += ev.name;  // names are C literals: no escaping needed
    out += "\",\"args\":[";
    out += std::to_string(ev.arg0);
    out += ',';
    out += std::to_string(ev.arg1);
    out += ',';
    out += std::to_string(ev.arg2);
    out += "]}";
  }
  out += ']';
  return out;
}

}  // namespace mercury::obs
