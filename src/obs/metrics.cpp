#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/assert.hpp"
#include "util/table.hpp"

namespace mercury::obs {

const char* instrument_kind_name(InstrumentKind k) {
  switch (k) {
    case InstrumentKind::kCounter: return "counter";
    case InstrumentKind::kGauge: return "gauge";
    case InstrumentKind::kHist: return "histogram";
    case InstrumentKind::kCallback: return "callback";
  }
  return "?";
}

const InstrumentSample* Snapshot::find(std::string_view name,
                                       std::string_view label) const {
  for (const auto& s : samples)
    if (s.name == name && (label.empty() || s.label == label)) return &s;
  return nullptr;
}

MetricsRegistry::Owned& MetricsRegistry::get_or_create(std::string_view name,
                                                       std::string_view label,
                                                       InstrumentKind kind) {
  for (auto& o : owned_)
    if (o->name == name && o->label == label) {
      MERC_CHECK_MSG(o->kind == kind, "instrument '" << o->name
                                                     << "' re-registered as "
                                                     << instrument_kind_name(kind));
      return *o;
    }
  auto o = std::make_unique<Owned>();
  o->name = std::string(name);
  o->label = std::string(label);
  o->kind = kind;
  switch (kind) {
    case InstrumentKind::kCounter: o->counter = std::make_unique<Counter>(); break;
    case InstrumentKind::kGauge: o->gauge = std::make_unique<Gauge>(); break;
    case InstrumentKind::kHist: o->hist = std::make_unique<Hist>(); break;
    case InstrumentKind::kCallback: MERC_CHECK(false); break;
  }
  owned_.push_back(std::move(o));
  return *owned_.back();
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  return *get_or_create(name, label, InstrumentKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  return *get_or_create(name, label, InstrumentKind::kGauge).gauge;
}

Hist& MetricsRegistry::histogram(std::string_view name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  return *get_or_create(name, label, InstrumentKind::kHist).hist;
}

std::uint64_t MetricsRegistry::register_callback(std::string_view name,
                                                 std::string_view label,
                                                 std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_cb_id_++;
  callbacks_.push_back(
      {id, std::string(name), std::string(label), std::move(fn)});
  return id;
}

void MetricsRegistry::unregister_callback(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_.erase(std::remove_if(callbacks_.begin(), callbacks_.end(),
                                  [&](const Callback& c) { return c.id == id; }),
                   callbacks_.end());
}

Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.samples.reserve(owned_.size() + callbacks_.size());
  for (const auto& o : owned_) {
    InstrumentSample s;
    s.name = o->name;
    s.label = o->label;
    s.kind = o->kind;
    switch (o->kind) {
      case InstrumentKind::kCounter:
        s.value = static_cast<double>(o->counter->value());
        break;
      case InstrumentKind::kGauge:
        s.value = o->gauge->value();
        break;
      case InstrumentKind::kHist: {
        const auto& rs = o->hist->stats();
        s.count = o->hist->count();
        s.sum = rs.sum();
        s.min = rs.min();
        s.mean = rs.mean();
        s.max = rs.max();
        s.p50 = o->hist->quantile(0.50);
        s.p90 = o->hist->quantile(0.90);
        s.p99 = o->hist->quantile(0.99);
        s.value = s.mean;
        break;
      }
      case InstrumentKind::kCallback: break;
    }
    snap.samples.push_back(std::move(s));
  }
  for (const auto& c : callbacks_) {
    InstrumentSample s;
    s.name = c.name;
    s.label = c.label;
    s.kind = InstrumentKind::kCallback;
    s.value = c.fn ? c.fn() : 0.0;
    snap.samples.push_back(std::move(s));
  }
  std::stable_sort(snap.samples.begin(), snap.samples.end(),
                   [](const InstrumentSample& a, const InstrumentSample& b) {
                     return a.name != b.name ? a.name < b.name
                                             : a.label < b.label;
                   });
  return snap;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& o : owned_) {
    switch (o->kind) {
      case InstrumentKind::kCounter: o->counter->reset(); break;
      case InstrumentKind::kGauge: o->gauge->reset(); break;
      case InstrumentKind::kHist: o->hist->reset(); break;
      case InstrumentKind::kCallback: break;
    }
  }
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return owned_.size() + callbacks_.size();
}

MetricsRegistry& registry() {
  static MetricsRegistry r;
  return r;
}

Snapshot snapshot() { return registry().snapshot(); }

// JSON string escaping (instrument names are plain identifiers, but labels
// may carry arbitrary text).
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double v) {
  // Integral values print without a fraction so counters stay exact.
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    out += std::to_string(static_cast<long long>(v));
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    out += buf;
  }
}

namespace {

void append_kv(std::string& out, const char* key, double v, bool comma = true) {
  append_json_string(out, key);
  out += ':';
  append_json_number(out, v);
  if (comma) out += ',';
}

}  // namespace

std::string to_json(const Snapshot& snap) {
  std::string out = "{\"schema\":\"mercury.metrics.v1\",";
  out += "\"counters\":[";
  bool first = true;
  auto emit_scalar = [&](const InstrumentSample& s) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, s.name);
    if (!s.label.empty()) {
      out += ",\"label\":";
      append_json_string(out, s.label);
    }
    out += ",\"value\":";
    append_json_number(out, s.value);
    out += '}';
  };
  for (const auto& s : snap.samples)
    if (s.kind == InstrumentKind::kCounter) emit_scalar(s);
  out += "],\"gauges\":[";
  first = true;
  for (const auto& s : snap.samples)
    if (s.kind == InstrumentKind::kGauge || s.kind == InstrumentKind::kCallback)
      emit_scalar(s);
  out += "],\"histograms\":[";
  first = true;
  for (const auto& s : snap.samples) {
    if (s.kind != InstrumentKind::kHist) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, s.name);
    if (!s.label.empty()) {
      out += ",\"label\":";
      append_json_string(out, s.label);
    }
    out += ',';
    append_kv(out, "count", static_cast<double>(s.count));
    append_kv(out, "sum", s.sum);
    append_kv(out, "min", s.count ? s.min : 0.0);
    append_kv(out, "mean", s.mean);
    append_kv(out, "max", s.count ? s.max : 0.0);
    append_kv(out, "p50", static_cast<double>(s.p50));
    append_kv(out, "p90", static_cast<double>(s.p90));
    append_kv(out, "p99", static_cast<double>(s.p99), /*comma=*/false);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string summary_table(const Snapshot& snap) {
  std::ostringstream os;
  util::Table scalars({"instrument", "kind", "value"});
  bool have_scalars = false;
  for (const auto& s : snap.samples) {
    if (s.kind == InstrumentKind::kHist) continue;
    std::ostringstream v;
    v << s.value;
    const std::string name =
        s.label.empty() ? s.name : s.name + "{" + s.label + "}";
    scalars.add_row({name, instrument_kind_name(s.kind), v.str()});
    have_scalars = true;
  }
  if (have_scalars) os << scalars.render();
  util::Table hists({"histogram", "count", "mean", "p50<=", "p90<=", "p99<=",
                     "max"});
  bool have_hists = false;
  for (const auto& s : snap.samples) {
    if (s.kind != InstrumentKind::kHist) continue;
    const std::string name =
        s.label.empty() ? s.name : s.name + "{" + s.label + "}";
    hists.add_numeric_row(name,
                          {static_cast<double>(s.count), s.mean,
                           static_cast<double>(s.p50), static_cast<double>(s.p90),
                           static_cast<double>(s.p99), s.count ? s.max : 0.0},
                          0);
    have_hists = true;
  }
  if (have_hists) os << hists.render();
  return os.str();
}

}  // namespace mercury::obs
