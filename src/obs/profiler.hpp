// Discrete-event engine profiler (observability pillar 4).
//
// ROADMAP item 1 wants to parallelize the single-threaded discrete-event
// engine; before touching it we need to know where *wall-clock* time goes
// when the simulator runs, attributed to engine work classes (kernel step
// branches, per-node fabric dispatch, switch-engine commits). Each
// MERC_PROF_SCOPE site charges a named bucket with:
//   - count:      how many times the scope ran,
//   - wall_ns:    host nanoseconds spent inside it (std::chrono::steady_clock),
//   - sim_cycles: simulated cycles that elapsed inside it (cpu.now() delta),
// so the report shows both "what the host CPU is busy doing" and "how much
// simulated progress that bought" — the ratio is the engine's efficiency per
// work class and the baseline any parallelization PR is judged against.
//
// The profiler is OFF by default: when disabled a ProfScope is a null-bucket
// early-out (no clock reads). Like all obs instrumentation it must never
// cpu.charge(), and the whole hook compiles away under MERCURY_OBS=OFF.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mercury::obs {

struct ProfBucket {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t sim_cycles = 0;
};

class EngineProfiler {
 public:
  /// Profiling starts disabled; MERC_PROF_SCOPE sites are cheap no-ops
  /// until something (bench_soak --profile-json, a test) turns it on.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Get-or-create the bucket named `name`. The returned pointer is stable
  /// for the profiler's lifetime, so call sites cache it in a function-local
  /// static and skip the string lookup on the steady-state path.
  ProfBucket* bucket(std::string_view name);

  void record(ProfBucket& b, std::uint64_t wall_ns, std::uint64_t sim_cycles) {
    ++b.count;
    b.wall_ns += wall_ns;
    b.sim_cycles += sim_cycles;
  }

  /// Copy of all buckets in creation order.
  std::vector<ProfBucket> snapshot() const;

  /// Zero every bucket's totals (bucket set and addresses are preserved —
  /// call sites hold cached pointers).
  void reset();

 private:
  bool enabled_ = false;
  std::vector<std::unique_ptr<ProfBucket>> buckets_;  // stable addresses
};

/// The process-global profiler MERC_PROF_SCOPE charges.
EngineProfiler& profiler();

/// mercury.profile.v1 JSON: enabled flag, totals, and per-bucket rows with
/// each bucket's share of total wall time (buckets in creation order).
std::string profile_json(const EngineProfiler& prof = profiler());

/// Write profile_json() to `path`; false on I/O failure.
bool write_profile_json(const std::string& path,
                        const EngineProfiler& prof = profiler());

}  // namespace mercury::obs
