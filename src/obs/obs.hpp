// Telemetry umbrella: instrumentation macros for the hot paths
// (telemetry pillar 3).
//
// Every hook compiles away completely when the MERCURY_OBS CMake option is
// OFF (MERCURY_OBS_ENABLED=0): no registry lookups, no ring writes, no
// cpu.now() samples — mirroring Mercury's "pay only when attached"
// philosophy. The obs library itself still builds in both configurations so
// benches and tests that *read* telemetry keep linking (they simply see
// empty registries).
//
// Macro cost when enabled: the registry lookup happens once per call site
// (function-local static reference); the steady-state update is an inlined
// integer add / ring-slot store. Instrumentation must never cpu.charge():
// telemetry observes simulated time, it does not create it.
#pragma once

#include <chrono>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/pause_ledger.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

#ifndef MERCURY_OBS_ENABLED
#define MERCURY_OBS_ENABLED 1
#endif

#include "hw/cpu.hpp"

namespace mercury::obs {

/// RAII span over simulated cycles on one CPU (see trace.hpp). Each span
/// allocates itself a SpanContext — joining the ambient trace when one is
/// active, rooting a fresh trace otherwise — and installs that context as
/// ambient for its scope, so nested spans and instants become its causal
/// children in the Chrome export.
class TraceSpan {
 public:
  TraceSpan(hw::Cpu& cpu, TraceCat cat, const char* name)
      : cpu_(&cpu), cat_(cat), name_(name), begin_(cpu.now()),
        parent_(current_span_context()) {
    ctx_.trace_id = parent_.valid() ? parent_.trace_id : next_span_id();
    ctx_.span_id = next_span_id();
    ctx_.parent_id = parent_.span_id;
    set_span_context(ctx_);
  }
  ~TraceSpan() {
    set_span_context(parent_);
    TraceEvent ev{name_, cat_, cpu_->id(), begin_, cpu_->now()};
    ev.trace_id = ctx_.trace_id;
    ev.span_id = ctx_.span_id;
    ev.parent_id = ctx_.parent_id;
    trace_buffer().record(ev);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Capture this span's identity to re-join its trace after an
  /// asynchronous hop (supervisor request, cross-node message).
  const SpanContext& context() const { return ctx_; }

 private:
  hw::Cpu* cpu_;
  TraceCat cat_;
  const char* name_;
  hw::Cycles begin_;
  SpanContext parent_;
  SpanContext ctx_;
};

/// RAII engine-profiler scope (see profiler.hpp): charges `bucket` with the
/// wall-clock nanoseconds and simulated cycles spent inside the scope.
/// Reads host *and* sim clocks only while the profiler is enabled; never
/// charges simulated time itself.
class ProfScope {
 public:
  ProfScope(ProfBucket* bucket, const hw::Cpu* cpu)
      : bucket_(profiler().enabled() ? bucket : nullptr), cpu_(cpu) {
    if (bucket_) {
      wall_begin_ = std::chrono::steady_clock::now();
      sim_begin_ = cpu_ ? cpu_->now() : 0;
    }
  }
  ~ProfScope() {
    if (!bucket_) return;
    const auto wall = std::chrono::steady_clock::now() - wall_begin_;
    const std::uint64_t wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(wall).count());
    const std::uint64_t sim =
        cpu_ ? static_cast<std::uint64_t>(cpu_->now() - sim_begin_) : 0;
    profiler().record(*bucket_, wall_ns, sim);
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ProfBucket* bucket_;
  const hw::Cpu* cpu_;
  std::chrono::steady_clock::time_point wall_begin_{};
  hw::Cycles sim_begin_ = 0;
};

}  // namespace mercury::obs

#if MERCURY_OBS_ENABLED

#define MERC_OBS_CONCAT_(a, b) a##b
#define MERC_OBS_CONCAT(a, b) MERC_OBS_CONCAT_(a, b)

/// Count an event on the global registry: MERC_COUNT("kernel.syscalls").
#define MERC_COUNT(name_) MERC_COUNT_N(name_, 1)
#define MERC_COUNT_N(name_, n_)                                         \
  do {                                                                  \
    static ::mercury::obs::Counter& MERC_OBS_CONCAT(merc_obs_c_, __LINE__) = \
        ::mercury::obs::registry().counter(name_);                      \
    MERC_OBS_CONCAT(merc_obs_c_, __LINE__).inc(n_);                     \
  } while (0)

/// Set a gauge: MERC_GAUGE_SET("availability.fraction", 0.99999).
#define MERC_GAUGE_SET(name_, v_)                                       \
  do {                                                                  \
    static ::mercury::obs::Gauge& MERC_OBS_CONCAT(merc_obs_g_, __LINE__) = \
        ::mercury::obs::registry().gauge(name_);                        \
    MERC_OBS_CONCAT(merc_obs_g_, __LINE__).set(static_cast<double>(v_)); \
  } while (0)

/// Record a value into a named histogram (cycles, bytes, counts).
#define MERC_HIST(name_, v_)                                            \
  do {                                                                  \
    static ::mercury::obs::Hist& MERC_OBS_CONCAT(merc_obs_h_, __LINE__) = \
        ::mercury::obs::registry().histogram(name_);                    \
    MERC_OBS_CONCAT(merc_obs_h_, __LINE__).record(                      \
        static_cast<std::uint64_t>(v_));                                \
  } while (0)

/// Scoped trace span over cpu_'s simulated clock for the rest of the block.
#define MERC_SPAN(cpu_, cat_, name_)                                    \
  ::mercury::obs::TraceSpan MERC_OBS_CONCAT(merc_obs_span_, __LINE__)(  \
      cpu_, ::mercury::obs::TraceCat::cat_, name_)

/// Zero-duration marker event at cpu_'s current simulated time.
#define MERC_INSTANT(cpu_, cat_, name_)                                  \
  ::mercury::obs::trace_buffer().record_instant(                         \
      (cpu_).id(), ::mercury::obs::TraceCat::cat_, name_, (cpu_).now())

/// Black-box flight event on cpu_'s ring, stamped with its id and clock:
/// MERC_FLIGHT(cpu, kFaultHit, "adopt.rebuild", site, kind, visits).
/// Up to three integer arguments; type_ is a bare FlightType enumerator.
#define MERC_FLIGHT(cpu_, type_, name_, ...)                             \
  ::mercury::obs::flight_recorder().record(                              \
      (cpu_).id(), ::mercury::obs::FlightType::type_, name_,             \
      (cpu_).now() __VA_OPT__(, ) __VA_ARGS__)

/// Record one closed per-CPU unavailability interval on the ambient pause
/// ledger: MERC_PAUSE(kRendezvousParked, cpu_id, begin, end, "site").
/// cause_ is a bare PauseCause enumerator; cycles are simulated clocks the
/// site already computed — the ledger never charges simulated time.
#define MERC_PAUSE(cause_, cpu_id_, begin_, end_, detail_)               \
  ::mercury::obs::pause_ledger().record(                                 \
      ::mercury::obs::PauseCause::cause_, (cpu_id_), (begin_), (end_),   \
      (detail_))

/// Open / close an unavailability interval across separated call sites
/// (hypercall enter/exit). Unpaired halves count as unattributed, which
/// the soak gate holds at zero.
#define MERC_PAUSE_BEGIN(cause_, cpu_id_, begin_, detail_)               \
  ::mercury::obs::pause_ledger().begin_interval(                         \
      ::mercury::obs::PauseCause::cause_, (cpu_id_), (begin_), (detail_))
#define MERC_PAUSE_END(cpu_id_, end_)                                    \
  ::mercury::obs::pause_ledger().end_interval((cpu_id_), (end_))

/// Engine-profiler scope: charge the named bucket with wall-clock ns and
/// simulated cycles spent in the rest of the block. cpu_ptr_ may be null
/// (wall-clock only). The bucket lookup runs once per call site.
#define MERC_PROF_SCOPE(name_, cpu_ptr_)                                  \
  static ::mercury::obs::ProfBucket* MERC_OBS_CONCAT(merc_obs_pb_,        \
                                                     __LINE__) =          \
      ::mercury::obs::profiler().bucket(name_);                           \
  ::mercury::obs::ProfScope MERC_OBS_CONCAT(merc_obs_ps_, __LINE__)(      \
      MERC_OBS_CONCAT(merc_obs_pb_, __LINE__), cpu_ptr_)

#else  // !MERCURY_OBS_ENABLED

#define MERC_COUNT(name_) ((void)0)
#define MERC_COUNT_N(name_, n_) ((void)0)
#define MERC_GAUGE_SET(name_, v_) ((void)0)
#define MERC_HIST(name_, v_) ((void)0)
#define MERC_SPAN(cpu_, cat_, name_) ((void)0)
#define MERC_INSTANT(cpu_, cat_, name_) ((void)0)
#define MERC_FLIGHT(...) ((void)0)
#define MERC_PAUSE(cause_, cpu_id_, begin_, end_, detail_) ((void)0)
#define MERC_PAUSE_BEGIN(cause_, cpu_id_, begin_, detail_) ((void)0)
#define MERC_PAUSE_END(cpu_id_, end_) ((void)0)
#define MERC_PROF_SCOPE(name_, cpu_ptr_) ((void)0)

#endif  // MERCURY_OBS_ENABLED
