// Telemetry umbrella: instrumentation macros for the hot paths
// (telemetry pillar 3).
//
// Every hook compiles away completely when the MERCURY_OBS CMake option is
// OFF (MERCURY_OBS_ENABLED=0): no registry lookups, no ring writes, no
// cpu.now() samples — mirroring Mercury's "pay only when attached"
// philosophy. The obs library itself still builds in both configurations so
// benches and tests that *read* telemetry keep linking (they simply see
// empty registries).
//
// Macro cost when enabled: the registry lookup happens once per call site
// (function-local static reference); the steady-state update is an inlined
// integer add / ring-slot store. Instrumentation must never cpu.charge():
// telemetry observes simulated time, it does not create it.
#pragma once

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#ifndef MERCURY_OBS_ENABLED
#define MERCURY_OBS_ENABLED 1
#endif

#include "hw/cpu.hpp"

namespace mercury::obs {

/// RAII span over simulated cycles on one CPU (see trace.hpp).
class TraceSpan {
 public:
  TraceSpan(hw::Cpu& cpu, TraceCat cat, const char* name)
      : cpu_(&cpu), cat_(cat), name_(name), begin_(cpu.now()) {}
  ~TraceSpan() {
    trace_buffer().record(
        TraceEvent{name_, cat_, cpu_->id(), begin_, cpu_->now()});
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  hw::Cpu* cpu_;
  TraceCat cat_;
  const char* name_;
  hw::Cycles begin_;
};

}  // namespace mercury::obs

#if MERCURY_OBS_ENABLED

#define MERC_OBS_CONCAT_(a, b) a##b
#define MERC_OBS_CONCAT(a, b) MERC_OBS_CONCAT_(a, b)

/// Count an event on the global registry: MERC_COUNT("kernel.syscalls").
#define MERC_COUNT(name_) MERC_COUNT_N(name_, 1)
#define MERC_COUNT_N(name_, n_)                                         \
  do {                                                                  \
    static ::mercury::obs::Counter& MERC_OBS_CONCAT(merc_obs_c_, __LINE__) = \
        ::mercury::obs::registry().counter(name_);                      \
    MERC_OBS_CONCAT(merc_obs_c_, __LINE__).inc(n_);                     \
  } while (0)

/// Set a gauge: MERC_GAUGE_SET("availability.fraction", 0.99999).
#define MERC_GAUGE_SET(name_, v_)                                       \
  do {                                                                  \
    static ::mercury::obs::Gauge& MERC_OBS_CONCAT(merc_obs_g_, __LINE__) = \
        ::mercury::obs::registry().gauge(name_);                        \
    MERC_OBS_CONCAT(merc_obs_g_, __LINE__).set(static_cast<double>(v_)); \
  } while (0)

/// Record a value into a named histogram (cycles, bytes, counts).
#define MERC_HIST(name_, v_)                                            \
  do {                                                                  \
    static ::mercury::obs::Hist& MERC_OBS_CONCAT(merc_obs_h_, __LINE__) = \
        ::mercury::obs::registry().histogram(name_);                    \
    MERC_OBS_CONCAT(merc_obs_h_, __LINE__).record(                      \
        static_cast<std::uint64_t>(v_));                                \
  } while (0)

/// Scoped trace span over cpu_'s simulated clock for the rest of the block.
#define MERC_SPAN(cpu_, cat_, name_)                                    \
  ::mercury::obs::TraceSpan MERC_OBS_CONCAT(merc_obs_span_, __LINE__)(  \
      cpu_, ::mercury::obs::TraceCat::cat_, name_)

/// Zero-duration marker event at cpu_'s current simulated time.
#define MERC_INSTANT(cpu_, cat_, name_)                                  \
  ::mercury::obs::trace_buffer().record_instant(                         \
      (cpu_).id(), ::mercury::obs::TraceCat::cat_, name_, (cpu_).now())

/// Black-box flight event on cpu_'s ring, stamped with its id and clock:
/// MERC_FLIGHT(cpu, kFaultHit, "adopt.rebuild", site, kind, visits).
/// Up to three integer arguments; type_ is a bare FlightType enumerator.
#define MERC_FLIGHT(cpu_, type_, name_, ...)                             \
  ::mercury::obs::flight_recorder().record(                              \
      (cpu_).id(), ::mercury::obs::FlightType::type_, name_,             \
      (cpu_).now() __VA_OPT__(, ) __VA_ARGS__)

#else  // !MERCURY_OBS_ENABLED

#define MERC_COUNT(name_) ((void)0)
#define MERC_COUNT_N(name_, n_) ((void)0)
#define MERC_GAUGE_SET(name_, v_) ((void)0)
#define MERC_HIST(name_, v_) ((void)0)
#define MERC_SPAN(cpu_, cat_, name_) ((void)0)
#define MERC_INSTANT(cpu_, cat_, name_) ((void)0)
#define MERC_FLIGHT(...) ((void)0)

#endif  // MERCURY_OBS_ENABLED
