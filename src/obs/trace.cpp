#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"

namespace mercury::obs {

namespace {
// The simulator is single-threaded, so the ambient causal context and node
// attribution are plain globals (see trace.hpp header comment).
SpanContext g_span_ctx;
std::uint32_t g_trace_node = 0;
std::uint64_t g_next_span_id = 0;
}  // namespace

const SpanContext& current_span_context() { return g_span_ctx; }
void set_span_context(const SpanContext& ctx) { g_span_ctx = ctx; }
std::uint64_t next_span_id() { return ++g_next_span_id; }
std::uint32_t current_trace_node() { return g_trace_node; }
void set_trace_node(std::uint32_t node) { g_trace_node = node; }

const char* trace_cat_name(TraceCat cat) {
  switch (cat) {
    case TraceCat::kSwitch: return "switch";
    case TraceCat::kRendezvous: return "rendezvous";
    case TraceCat::kTransfer: return "transfer";
    case TraceCat::kFixup: return "fixup";
    case TraceCat::kVmm: return "vmm";
    case TraceCat::kNet: return "net";
    case TraceCat::kFs: return "fs";
    case TraceCat::kCluster: return "cluster";
    case TraceCat::kFault: return "fault";
    case TraceCat::kOther: return "other";
  }
  return "?";
}

TraceBuffer::TraceBuffer(std::size_t capacity_per_cpu)
    : capacity_(capacity_per_cpu ? capacity_per_cpu : 1) {}

void TraceBuffer::set_capacity(std::size_t per_cpu) {
  capacity_ = per_cpu ? per_cpu : 1;
  clear();
}

void TraceBuffer::clear() {
  rings_.clear();
  recorded_ = 0;
  dropped_ = 0;
  // next_seq_ deliberately survives: the sequence is the global record
  // order across the buffer's whole lifetime (mirrors FlightRecorder).
}

void TraceBuffer::record(const TraceEvent& ev) {
  if (!enabled_) return;
  if (ev.cpu >= rings_.size()) rings_.resize(ev.cpu + 1);
  Ring& r = rings_[ev.cpu];
  if (r.slots.empty()) r.slots.resize(capacity_);
  if (r.size == r.slots.size()) ++dropped_;  // overwriting the oldest
  else ++r.size;
  TraceEvent& slot = r.slots[r.head];
  slot = ev;
  slot.seq = next_seq_++;
  if (slot.node == 0) slot.node = current_trace_node();
  r.head = (r.head + 1) % r.slots.size();
  ++recorded_;
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::vector<TraceEvent> out;
  for (const Ring& r : rings_) {
    // Oldest retained event sits at head when the ring has wrapped.
    const std::size_t cap = r.slots.size();
    const std::size_t start = r.size == cap ? r.head : 0;
    for (std::size_t i = 0; i < r.size; ++i)
      out.push_back(r.slots[(start + i) % cap]);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.begin != b.begin) return a.begin < b.begin;
                     return a.seq < b.seq;
                   });
  return out;
}

TraceBuffer& trace_buffer() {
  static TraceBuffer buf;
  // Ring overflow must be visible in every --metrics-json artifact, not
  // silently lost: expose the running totals as callback gauges the first
  // time anything touches the buffer.
  static const bool registered = [] {
    registry().register_callback("obs.trace.recorded", {}, [] {
      return static_cast<double>(trace_buffer().recorded());
    });
    registry().register_callback("obs.trace.dropped", {}, [] {
      return static_cast<double>(trace_buffer().dropped());
    });
    return true;
  }();
  (void)registered;
  return buf;
}

std::string chrome_trace_json(const TraceBuffer& buf) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char num[64];
  for (const TraceEvent& ev : buf.events()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += ev.name;  // names are C literals: no escaping needed
    out += "\",\"cat\":\"";
    out += trace_cat_name(ev.cat);
    if (ev.instant()) {
      out += "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
      std::snprintf(num, sizeof num, "%.3f", hw::cycles_to_us(ev.begin));
      out += num;
    } else {
      out += "\",\"ph\":\"X\",\"ts\":";
      std::snprintf(num, sizeof num, "%.3f", hw::cycles_to_us(ev.begin));
      out += num;
      out += ",\"dur\":";
      std::snprintf(num, sizeof num, "%.3f",
                    hw::cycles_to_us(ev.end - ev.begin));
      out += num;
    }
    // pid = cluster node: each node renders as its own process group in the
    // Chrome/Perfetto UI (node 0 = unscoped single-machine events).
    out += ",\"pid\":";
    out += std::to_string(ev.node);
    out += ",\"tid\":";
    out += std::to_string(ev.cpu);
    out += ",\"args\":{\"seq\":";
    out += std::to_string(ev.seq);
    if (ev.trace_id != 0) {
      out += ",\"trace\":";
      out += std::to_string(ev.trace_id);
      if (ev.span_id != 0) {
        out += ",\"span\":";
        out += std::to_string(ev.span_id);
      }
      out += ",\"parent\":";
      out += std::to_string(ev.parent_id);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

bool write_chrome_trace(const std::string& path, const TraceBuffer& buf) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = chrome_trace_json(buf);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace mercury::obs
