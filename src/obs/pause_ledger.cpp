#include "obs/pause_ledger.hpp"

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace mercury::obs {

namespace {

PauseLedger*& ambient_storage() {
  static PauseLedger* current = nullptr;
  return current;
}

}  // namespace

const char* pause_cause_name(PauseCause c) {
  switch (c) {
    case PauseCause::kRendezvousParked: return "rendezvous-parked";
    case PauseCause::kCrewShardWork: return "crew-shard-work";
    case PauseCause::kTlbShootdown: return "tlb-shootdown";
    case PauseCause::kHypercallEmulation: return "hypercall-emulation";
    case PauseCause::kRollbackUnwind: return "rollback-unwind";
    case PauseCause::kSupervisorRetryBackoff:
      return "supervisor-retry-backoff";
    case PauseCause::kCauseCount: break;
  }
  return "?";
}

PauseLedger::PauseLedger() : causes_(kPauseCauseCount) {}

const PauseLedger::CauseSlot& PauseLedger::per_cause(PauseCause c) const {
  return causes_[static_cast<std::size_t>(c)];
}

void PauseLedger::note_worst(PauseCause cause, std::uint32_t cpu,
                             hw::Cycles begin, hw::Cycles end,
                             const char* detail) {
  const hw::Cycles span = end - begin;
  if (worst_.valid && span <= worst_.span()) return;
  worst_.valid = true;
  worst_.cause = cause;
  worst_.cpu = cpu;
  worst_.begin = begin;
  worst_.end = end;
  worst_.detail = detail;
  // Capture the seq the pause.worst event will get, then emit it: the
  // artifact's worst.flight_seq points at a real ring entry, so a report
  // can cut the black-box tail around the worst interval.
  worst_.flight_seq = flight_recorder().next_seq();
  flight_recorder().record(cpu, FlightType::kPauseWorst,
                           pause_cause_name(cause), end,
                           static_cast<std::uint64_t>(cause), begin, span);
}

void PauseLedger::record(PauseCause cause, std::uint32_t cpu, hw::Cycles begin,
                         hw::Cycles end, const char* detail) {
  if (cause >= PauseCause::kCauseCount) {
    ++unattributed_;
    return;
  }
  if (end < begin) end = begin;
  const hw::Cycles span = end - begin;
  CauseSlot& slot = causes_[static_cast<std::size_t>(cause)];
  slot.hist.add(span);
  slot.moments.add(static_cast<double>(span));
  ++slot.count;
  slot.total += span;
  if (cpu >= cpu_totals_.size()) cpu_totals_.resize(cpu + 1, 0);
  cpu_totals_[cpu] += span;
  ++intervals_;
  note_worst(cause, cpu, begin, end, detail);
}

void PauseLedger::begin_interval(PauseCause cause, std::uint32_t cpu,
                                 hw::Cycles begin, const char* detail) {
  if (cpu >= open_.size()) open_.resize(cpu + 1);
  OpenSlot& slot = open_[cpu];
  if (slot.open) ++unattributed_;  // the earlier begin lost its end
  slot.open = true;
  slot.cause = cause;
  slot.begin = begin;
  slot.detail = detail;
}

void PauseLedger::end_interval(std::uint32_t cpu, hw::Cycles end) {
  if (cpu >= open_.size() || !open_[cpu].open) {
    ++unattributed_;  // end without a begin
    return;
  }
  OpenSlot& slot = open_[cpu];
  slot.open = false;
  record(slot.cause, cpu, slot.begin, end, slot.detail);
}

std::uint64_t PauseLedger::quantile(PauseCause c, double q) const {
  const CauseSlot& slot = per_cause(c);
  if (q >= 1.0)
    return static_cast<std::uint64_t>(slot.moments.max());
  return slot.hist.quantile(q);
}

hw::Cycles PauseLedger::cpu_total(std::uint32_t cpu) const {
  return cpu < cpu_totals_.size() ? cpu_totals_[cpu] : 0;
}

void PauseLedger::merge(const PauseLedger& other) {
  for (std::size_t i = 0; i < kPauseCauseCount; ++i) {
    CauseSlot& dst = causes_[i];
    const CauseSlot& src = other.causes_[i];
    dst.hist.merge(src.hist);
    dst.moments.merge(src.moments);
    dst.count += src.count;
    dst.total += src.total;
  }
  if (other.cpu_totals_.size() > cpu_totals_.size())
    cpu_totals_.resize(other.cpu_totals_.size(), 0);
  for (std::size_t i = 0; i < other.cpu_totals_.size(); ++i)
    cpu_totals_[i] += other.cpu_totals_[i];
  intervals_ += other.intervals_;
  unattributed_ += other.unattributed_;
  if (other.worst_.valid &&
      (!worst_.valid || other.worst_.span() > worst_.span()))
    worst_ = other.worst_;
}

void PauseLedger::clear() {
  for (CauseSlot& slot : causes_) slot = CauseSlot{};
  cpu_totals_.clear();
  open_.clear();
  intervals_ = 0;
  unattributed_ = 0;
  // worst_ survives: the run's worst interval outlives per-cell clears.
}

void PauseLedger::reset() {
  clear();
  worst_ = PauseWorst{};
}

std::string PauseLedger::to_json() const {
  std::string out = "{\"schema\":\"mercury.pause.v1\",\"intervals\":";
  out += std::to_string(intervals_);
  out += ",\"unattributed\":";
  out += std::to_string(unattributed_);
  out += ",\"worst\":{\"cause\":";
  append_json_string(out, worst_.valid ? pause_cause_name(worst_.cause)
                                       : "none");
  out += ",\"cpu\":";
  out += std::to_string(worst_.cpu);
  out += ",\"begin\":";
  out += std::to_string(worst_.begin);
  out += ",\"end\":";
  out += std::to_string(worst_.end);
  out += ",\"span\":";
  out += std::to_string(worst_.valid ? worst_.span() : 0);
  out += ",\"detail\":";
  append_json_string(out, worst_.detail ? worst_.detail : "");
  out += ",\"flight_seq\":";
  out += std::to_string(worst_.flight_seq);
  out += "},\"causes\":[";
  for (std::size_t i = 0; i < kPauseCauseCount; ++i) {
    const PauseCause c = static_cast<PauseCause>(i);
    const CauseSlot& slot = causes_[i];
    if (i) out += ',';
    out += "{\"name\":";
    append_json_string(out, pause_cause_name(c));
    out += ",\"count\":";
    out += std::to_string(slot.count);
    out += ",\"total_cycles\":";
    out += std::to_string(slot.total);
    out += ",\"p50\":";
    out += std::to_string(quantile(c, 0.5));
    out += ",\"p99\":";
    out += std::to_string(quantile(c, 0.99));
    out += ",\"max\":";
    out += std::to_string(quantile(c, 1.0));
    out += '}';
  }
  out += "],\"cpus\":[";
  for (std::size_t i = 0; i < cpu_totals_.size(); ++i) {
    if (i) out += ',';
    out += "{\"cpu\":";
    out += std::to_string(i);
    out += ",\"total_cycles\":";
    out += std::to_string(cpu_totals_[i]);
    out += '}';
  }
  // Black-box context for the worst interval: enough surrounding flight
  // events that blackbox_report.py can render the tail without a separate
  // postmortem bundle.
  out += "],\"flight\":{\"events\":";
  out += flight_events_json(flight_recorder().tail(64));
  out += "}}";
  return out;
}

PauseLedger& pause_ledger() {
  static PauseLedger global;
  // Ledger health must be visible in every --metrics-json artifact: a
  // nonzero unattributed count means a begin/end pairing bug somewhere.
  static const bool registered = [] {
    registry().register_callback("obs.pause.intervals", {}, [] {
      return static_cast<double>(pause_ledger().intervals());
    });
    registry().register_callback("obs.pause.unattributed", {}, [] {
      return static_cast<double>(pause_ledger().unattributed());
    });
    registry().register_callback("obs.pause.worst_cycles", {}, [] {
      const PauseWorst& w = pause_ledger().worst();
      return w.valid ? static_cast<double>(w.span()) : 0.0;
    });
    return true;
  }();
  (void)registered;
  PauseLedger* current = ambient_storage();
  return current ? *current : global;
}

PauseLedgerScope::PauseLedgerScope(PauseLedger& ledger)
    : prev_(ambient_storage()) {
  ambient_storage() = &ledger;
}

PauseLedgerScope::~PauseLedgerScope() { ambient_storage() = prev_; }

}  // namespace mercury::obs
