// Pre-copy live migration of a domain between two machines (Clark et al.
// style, as used by the paper's online-maintenance and HPC-availability
// scenarios §6.3/§6.5).
//
// Rounds of dirty-page transfer run while the guest keeps executing; the
// final stop-and-copy freezes the guest (the downtime the stats report),
// ships the residue and the vcpu state, and re-homes the kernel on the
// target via Kernel::migrate_to.
#pragma once

#include <cstdint>

#include "hw/devices/nic.hpp"
#include "vmm/hypervisor.hpp"

namespace mercury::vmm {

struct MigrationConfig {
  std::size_t max_rounds = 5;
  std::size_t stop_threshold_pages = 64;  // residue small enough to stop
  hw::Cycles guest_run_per_round = 20 * hw::kCyclesPerMillisecond;
  hw::Cycles wire_cycles_per_page = 4096 * 3 + 40 * hw::kCyclesPerMicrosecond / 10;
};

struct MigrationStats {
  bool success = false;
  DomainId new_domain = kDomInvalid;  // the domain id on the target
  std::size_t rounds = 0;
  std::size_t pages_sent = 0;
  std::size_t pages_total = 0;
  hw::Cycles total_cycles = 0;
  hw::Cycles downtime_cycles = 0;
};

class LiveMigration {
 public:
  /// Migrate `dom` (whose guest kernel keeps running between rounds via its
  /// own stepper) from `src` to `dst`. On success the guest kernel object is
  /// re-homed on dst's machine as a new (unprivileged) domain of `dst`, and
  /// the domain record is removed from `src`.
  static MigrationStats run(Hypervisor& src, DomainId dom, Hypervisor& dst,
                            const MigrationConfig& config = {});
};

}  // namespace mercury::vmm
