// Checkpoint/restore of a domain's memory image (paper §6.1).
//
// The VMM is attached (or already active), snapshots every frame the domain
// owns plus its vcpu state, and detaches again. Restore copies the image
// back. Divergence from the paper noted in DESIGN.md: host-side C++ kernel
// bookkeeping (task structs) is not rolled back — the verifiable contract is
// bit-exact restoration of the domain's *memory* (page tables included) and
// the timing of both operations.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "vmm/hypervisor.hpp"

namespace mercury::vmm {

struct Snapshot {
  DomainId dom = kDomInvalid;
  hw::Pfn first_frame = 0;
  std::size_t frame_count = 0;
  hw::Cycles taken_at = 0;
  std::vector<std::uint8_t> image;  // frame_count * 4K bytes
  std::vector<VcpuContext> vcpus;

  std::size_t bytes() const { return image.size(); }
};

class Checkpointer {
 public:
  /// Snapshot the domain's memory + vcpu state. Charges copy costs to `cpu`.
  static Snapshot take(hw::Cpu& cpu, Hypervisor& hv, DomainId dom);

  /// Restore a snapshot into the same domain (memory must still be at the
  /// same machine frames). Charges copy costs.
  static void restore(hw::Cpu& cpu, Hypervisor& hv, const Snapshot& snap);

  /// Bit-exact comparison of the current memory against a snapshot.
  static bool matches(Hypervisor& hv, const Snapshot& snap);
};

}  // namespace mercury::vmm
