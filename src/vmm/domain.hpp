// Domains: the unit of isolation a VMM multiplexes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/cpu.hpp"
#include "hw/types.hpp"
#include "vmm/page_info.hpp"

namespace mercury::kernel {
class Kernel;
}

namespace mercury::vmm {

struct VcpuContext {
  std::uint32_t vcpu_id = 0;
  hw::Pfn cr3 = 0;
  hw::TableToken guest_idt{};
  hw::TableToken guest_gdt{};
  bool online = true;
  // Virtual interrupt flag (shared-info event mask).
  bool virq_enabled = true;
};

class Domain {
 public:
  Domain(DomainId id, std::string name, kernel::Kernel* guest, hw::Pfn first_frame,
         std::size_t frame_count, bool privileged, std::size_t num_vcpus);

  DomainId id() const { return id_; }
  const std::string& name() const { return name_; }
  bool privileged() const { return privileged_; }
  kernel::Kernel* guest() const { return guest_; }

  hw::Pfn first_frame() const { return first_frame_; }
  std::size_t frame_count() const { return frame_count_; }
  bool owns_frame(hw::Pfn pfn) const {
    return pfn >= first_frame_ && pfn < first_frame_ + frame_count_;
  }

  VcpuContext& vcpu(std::size_t i) { return vcpus_.at(i); }
  std::size_t num_vcpus() const { return vcpus_.size(); }

  // --- log-dirty mode (live migration) ---
  bool log_dirty() const { return log_dirty_; }
  void set_log_dirty(bool on);
  void mark_dirty(hw::Pfn pfn);
  /// Dirty frame list since last harvest; clears the bitmap.
  std::vector<hw::Pfn> harvest_dirty();
  std::size_t dirty_count() const { return dirty_count_; }

  bool crashed = false;
  std::string crash_reason;

 private:
  DomainId id_;
  std::string name_;
  kernel::Kernel* guest_;
  hw::Pfn first_frame_;
  std::size_t frame_count_;
  bool privileged_;
  std::vector<VcpuContext> vcpus_;
  bool log_dirty_ = false;
  std::vector<bool> dirty_bitmap_;
  std::size_t dirty_count_ = 0;
};

}  // namespace mercury::vmm
