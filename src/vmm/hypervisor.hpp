// The Xen-like hypervisor.
//
// Owns the per-frame owner/type/count table, validates and pins page tables,
// serves hypercalls, routes hardware traps to the owning guest, and hosts
// the split-driver backends. Supports being *pre-cached*: warmed up at
// machine boot into a reserved top-of-memory region and left dormant until
// Mercury attaches it (paper §4.1), at which point `adopt_running_os`
// rebuilds the page accounting for the already-running kernel (§5.1.2).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "hw/machine.hpp"
#include "pv/sensitive_ops.hpp"
#include "vmm/blkif.hpp"
#include "vmm/domain.hpp"
#include "vmm/event_channel.hpp"
#include "vmm/grant_table.hpp"
#include "vmm/netif.hpp"
#include "vmm/page_info.hpp"

namespace mercury::kernel {
class Kernel;
}

namespace mercury::vmm {

struct HvStats {
  std::uint64_t hypercalls = 0;
  std::uint64_t traps_dispatched = 0;
  std::uint64_t pte_validations = 0;
  std::uint64_t emulated_pte_writes = 0;
  std::uint64_t pins = 0;
  std::uint64_t unpins = 0;
  std::uint64_t cr3_switches = 0;
  std::uint64_t domains_crashed = 0;
  std::uint64_t entries_healed = 0;
  std::uint64_t adopts = 0;
  std::uint64_t releases = 0;
  std::uint64_t adopt_rollbacks = 0;
  std::uint64_t reprotects = 0;
};

/// Probe points inside the adopt/release loops. The hypervisor sits below
/// core/ in the link graph, so it cannot name core's fault injector; the
/// switch engine installs a probe that maps these to its injection sites.
/// A probe may throw to abort the surrounding operation mid-flight — that
/// is the point: the engine's rollback must unwind the partial mutation.
enum class HvFaultPoint : std::uint8_t {
  kAdoptRebuild,      // once per frame during the page-info rebuild
  kAdoptProtect,      // once per page-table frame during type-and-protect
  kReleaseUnprotect,  // once per frame during the writability restore
  // Worker-side variants: the same loops, but executed as a shard of the
  // parallel switch pipeline on a rendezvous-parked crew CPU. Distinct
  // points so tests can target "a worker faulted mid-shard" specifically.
  kShardRebuild,      // crew shard of the page-info rebuild
  kShardProtect,      // crew shard of type-and-protect
  kShardUnprotect,    // crew shard of the writability restore
  kDirtyRebuild,      // once per frame during a warm (dirty-set) rebuild,
                      // serial and crew alike
};

class Hypervisor : public hw::TrapSink {
 public:
  enum class State : std::uint8_t { kCold, kDormant, kActive };

  explicit Hypervisor(hw::Machine& machine);
  ~Hypervisor() override;

  /// Reserve the top 64 MB, build internal structures and the reserved-VA
  /// mappings. Afterwards the VMM is memory-resident but dormant.
  void warm_up();

  State state() const { return state_; }
  bool active() const { return state_ == State::kActive; }
  hw::Machine& machine() { return machine_; }

  hw::Pfn reserved_first() const { return reserved_first_; }
  std::size_t reserved_frames() const { return reserved_count_; }
  /// PDEs every kernel must install to reserve the VMM's 64 MB (unified
  /// address-space layout, paper §3.2.2).
  const std::vector<std::pair<std::uint32_t, hw::Pte>>& vmm_pdes() const {
    return vmm_pdes_;
  }
  hw::TableToken idt_token() const { return idt_token_; }
  hw::TableToken gdt_token() const { return gdt_token_; }

  // --- domains ---
  DomainId create_domain(std::string name, kernel::Kernel* guest,
                         hw::Pfn first_frame, std::size_t frame_count,
                         bool privileged, std::size_t num_vcpus);
  void destroy_domain(DomainId id);
  Domain& domain(DomainId id);
  Domain* find_domain(DomainId id);
  std::size_t num_domains() const;
  void crash_domain(DomainId id, std::string reason);
  /// Which guest kernel executes on a physical CPU (trap routing).
  void set_guest_on_cpu(std::uint32_t cpu, kernel::Kernel* k, DomainId dom);

  // --- Mercury attach/detach support ---
  /// Build a (privileged, driver) domain around an already-running native
  /// kernel. When `trust_page_info` is false the full owner/type/count
  /// rebuild runs (the paper's dominant switch cost); true corresponds to
  /// the eager-tracking variant that kept the table fresh.
  DomainId adopt_running_os(hw::Cpu& cpu, kernel::Kernel& k, bool trust_page_info);
  /// Warm (incremental) adoption: the page-info table was retained across
  /// the last detach, so only the frames in `dirty` — recorded by the
  /// DirtyFrameTracker while native — are reconstructed; everything else is
  /// carried over. The caller (switch engine) is responsible for deciding
  /// eligibility (retention unpoisoned, tracker armed and not overflowed)
  /// and for filtering both spans to the kernel-owned frame range. The
  /// type-and-protect pass runs in full (enforcement must cover every
  /// current table), but PTE revalidation is limited to tables in
  /// `content_dirty` — frames whose bytes were written while detached. An
  /// untouched table still holds exactly the entries validated before the
  /// detach, so its scan is skipped; any tampering is a store, hence in the
  /// set.
  DomainId adopt_running_os_warm(hw::Cpu& cpu, kernel::Kernel& k,
                                 std::span<const hw::Pfn> dirty,
                                 std::span<const hw::Pfn> content_dirty);
  /// Undo adoption: page tables become writable again, accounting is
  /// dropped (O(1)), the hypervisor returns to dormancy. With
  /// `retain_page_info` the table keeps its (now stale) contents and is
  /// marked retained so a later warm adoption can rebuild incrementally.
  void release_os(hw::Cpu& cpu, DomainId id, bool retain_page_info = false);
  /// Unwind a *partially applied* adoption after a mid-switch fault: restore
  /// writability of every frame protected so far, drop (or, for eager
  /// tracking, keep) the page accounting, return to dormancy, and hand the
  /// traps back to the kernel. Safe to call however far the adopt got —
  /// including not at all.
  void rollback_adopt(hw::Cpu& cpu, kernel::Kernel& k, bool keep_page_info);
  /// Recover from a partially applied release while still active: re-protect
  /// and re-validate every page table and re-take the traps, restoring the
  /// fully attached state (detach rollback).
  void reprotect_os(hw::Cpu& cpu, DomainId id, kernel::Kernel& k);
  /// Install a fault probe called at the HvFaultPoint sites (tests; unset in
  /// production paths). The probe may throw. The second argument is the CPU
  /// executing the probed loop — the control processor on the serial path, a
  /// crew worker inside a shard — so injected latency charges the right clock.
  void set_fault_probe(std::function<void(HvFaultPoint, hw::Cpu*)> probe) {
    fault_probe_ = std::move(probe);
  }
  /// Make the hypervisor the machine's trap owner (or stop being it).
  void take_traps();

  /// Always-on configurations (classic Xen boot): activate straight out of
  /// warm-up so domains can be built and booted under the VMM from scratch.
  void bootstrap_activate();
  /// Initialize page accounting for a freshly built domain (boot path).
  void init_domain_memory(Domain& d);

  // --- parallel switch pipeline (sharded adopt/release) ---
  // The serial adopt/release entry points above are compositions of these
  // range-based pieces; the switch engine calls them directly when it farms
  // the bulk loops out to a SwitchCrew. Every shard charges the CPU actually
  // executing it and reports the worker-side fault points, so a mid-shard
  // fault surfaces on the worker and the engine's rollback must converge.
  /// State checks + stats + domain reuse/creation. No simulated cost.
  DomainId begin_adopt(kernel::Kernel& k);
  /// Reset the hypervisor's own reserved frames' accounting (CP-side, O(64MB
  /// of frames), uncharged as in the serial path) and zero shard counters.
  void init_reserved_page_info();
  /// Rebuild owner/type/count for `frames`, charging `cpu` per frame.
  void adopt_rebuild_shard(hw::Cpu& cpu, DomainId id,
                           std::span<const hw::Pfn> frames,
                           HvFaultPoint site = HvFaultPoint::kShardRebuild);
  /// Warm-path variant: reconstruct owner/type/count for exactly the dirty
  /// `frames` against the retained table, charging `cpu` per frame. Frames
  /// inside the hypervisor's reserved region are re-canonicalized as
  /// hypervisor-owned (defense in depth; the engine filters them out).
  void adopt_dirty_rebuild_shard(hw::Cpu& cpu, DomainId id,
                                 std::span<const hw::Pfn> frames,
                                 HvFaultPoint site = HvFaultPoint::kDirtyRebuild);
  /// Eager-tracking cross-check sweep over `frames` frames (1 cycle each).
  void adopt_trusted_sweep_shard(hw::Cpu& cpu, std::size_t frames);
  /// Discover every page-table frame of `k` (uncharged discovery walk).
  std::vector<std::pair<hw::Pfn, PageType>> collect_tables(kernel::Kernel& k);
  /// Type + pin + write-protect the given tables, charging `cpu`.
  void adopt_protect_shard(hw::Cpu& cpu, DomainId id, kernel::Kernel& k,
                           std::span<const std::pair<hw::Pfn, PageType>> tables,
                           HvFaultPoint site = HvFaultPoint::kShardProtect);
  /// Validate the tables of `level` in the span (L1s must all be typed —
  /// i.e. every protect shard done — before any L2 shard validates).
  void adopt_validate_shard(hw::Cpu& cpu, DomainId id,
                            std::span<const std::pair<hw::Pfn, PageType>> tables,
                            PageType level);
  /// Flip to kActive: table valid, guests bound, traps taken.
  void finish_adopt(DomainId id, kernel::Kernel& k);
  /// State checks + stats for a release episode.
  void begin_release(DomainId id);
  /// The currently protected frames, sorted (deterministic shard ranges).
  std::vector<hw::Pfn> protected_frames_snapshot() const;
  /// Restore writability of `frames`, charging `cpu` per frame.
  void release_unprotect_shard(hw::Cpu& cpu, kernel::Kernel& k,
                               std::span<const hw::Pfn> frames,
                               HvFaultPoint site = HvFaultPoint::kShardUnprotect);
  /// Flip to kDormant: accounting dropped O(1). With `retain_page_info`
  /// the entry contents survive and the table is marked retained.
  void finish_release(bool retain_page_info = false);

  // --- page-info machinery (exposed for the eager tracker and tests) ---
  PageInfoTable& page_info() { return page_info_; }
  void rebuild_page_info(hw::Cpu& cpu, Domain& d);
  void type_and_protect_tables(hw::Cpu& cpu, Domain& d, kernel::Kernel& k);
  /// Warm variant: full protect pass, but validation only of tables whose
  /// frame is in `content_dirty` (ascending).
  void type_and_protect_tables_warm(hw::Cpu& cpu, Domain& d, kernel::Kernel& k,
                                    std::span<const hw::Pfn> content_dirty);
  void unprotect_tables(hw::Cpu& cpu, kernel::Kernel& k);
  /// Drop protection bookkeeping for frames leaving this machine (domain
  /// migrated away / destroyed): no flips, just forget.
  void forget_frame_range(hw::Pfn first, std::size_t count);
  /// Flip the direct-map writability of a frame (page-table protection).
  /// The single-frame form pays a per-page cross-CPU shootdown; trap-time
  /// pin/unpin and rollback use it. Bulk shards use the batched form (PTE
  /// rewrite only) and close the batch with one tlb_shootdown_all.
  void set_frame_writable(hw::Cpu& cpu, kernel::Kernel& k, hw::Pfn pfn,
                          bool writable);
  void set_frame_writable_batched(hw::Cpu& cpu, kernel::Kernel& k, hw::Pfn pfn,
                                  bool writable);
  /// One IPI round + full TLB flush on every CPU, closing a batch of flips.
  void tlb_shootdown_all(hw::Cpu& cpu);
  bool validate_l1(hw::Cpu& cpu, Domain& d, hw::Pfn table, hw::Cycles per_pte,
                   std::size_t* present_out);
  /// Self-healing mode (§6.2): table validation repairs invalid entries
  /// (clearing them so demand paging re-establishes the mapping) instead of
  /// crashing the domain.
  void set_heal_mode(bool on) { heal_mode_ = on; }
  bool heal_mode() const { return heal_mode_; }
  bool validate_l2(hw::Cpu& cpu, Domain& d, hw::Pfn table, hw::Cycles per_pte,
                   std::size_t* present_out);

  // --- hypercalls ---
  void hc_mmu_update(hw::Cpu& cpu, DomainId dom,
                     std::span<const pv::PteUpdate> updates);
  /// The "writable page tables" trap-&-emulate path for a single PTE write.
  void hc_pte_write_emulate(hw::Cpu& cpu, DomainId dom, hw::PhysAddr pte_addr,
                            hw::Pte value);
  void hc_pin_table(hw::Cpu& cpu, DomainId dom, hw::Pfn table, pv::PtLevel level);
  void hc_unpin_table(hw::Cpu& cpu, DomainId dom, hw::Pfn table);
  void hc_write_cr3(hw::Cpu& cpu, DomainId dom, hw::Pfn root);
  void hc_set_trap_table(hw::Cpu& cpu, DomainId dom, hw::TableToken guest_idt);
  void hc_load_guest_gdt(hw::Cpu& cpu, DomainId dom, hw::TableToken guest_gdt);
  void hc_stack_switch(hw::Cpu& cpu, DomainId dom);
  void hc_flush_tlb(hw::Cpu& cpu, DomainId dom);
  void hc_flush_tlb_page(hw::Cpu& cpu, DomainId dom, hw::VirtAddr va);
  void hc_set_virq_mask(hw::Cpu& cpu, DomainId dom, bool enabled);
  void hc_send_ipi(hw::Cpu& cpu, DomainId dom, std::uint32_t dst,
                   std::uint8_t vector, std::uint32_t payload);

  // --- infrastructure ---
  EventChannels& event_channels() { return evtchn_; }
  GrantTable& grant_table() { return gnttab_; }
  BlockBackend& blk_backend() { return *blkback_; }
  NetBackend& net_backend() { return *netback_; }

  void on_trap(hw::Cpu& cpu, const hw::TrapInfo& info) override;

  HvStats& stats() { return stats_; }

 private:
  friend class LiveMigration;
  friend class Checkpointer;

  void hypercall_enter(hw::Cpu& cpu);
  void hypercall_exit(hw::Cpu& cpu);
  /// Run `fn` at ring 0 (the hypercall has trapped into the hypervisor).
  template <typename Fn>
  void at_ring0(hw::Cpu& cpu, Fn&& fn) {
    const hw::Ring prev = cpu.cpl();
    cpu.set_cpl(hw::Ring::kRing0);
    fn();
    cpu.set_cpl(prev);
  }
  /// Validate that `value` may be installed as an L1 PTE for `dom`.
  bool pte_value_ok(Domain& d, hw::Pte value, std::string* why);
  /// Level-aware validation of a single table update: the rules differ for
  /// entries inside an L1 (ownership, no writable PT mappings) and an L2
  /// (must reference validated L1s / the hypervisor's reserved template).
  bool validate_update(Domain& d, hw::PhysAddr pte_addr, hw::Pte value,
                       std::string* why);
  bool frame_is_pt(hw::Pfn pfn) const;

  hw::Machine& machine_;
  State state_ = State::kCold;
  hw::Pfn reserved_first_ = 0;
  std::size_t reserved_count_ = 0;
  std::vector<std::pair<std::uint32_t, hw::Pte>> vmm_pdes_;
  hw::TableToken idt_token_{0x100};
  hw::TableToken gdt_token_{0x101};

  PageInfoTable page_info_;
  std::vector<std::unique_ptr<Domain>> domains_;
  DomainId next_dom_ = 0;

  EventChannels evtchn_;
  GrantTable gnttab_;
  std::unique_ptr<BlockBackend> blkback_;
  std::unique_ptr<NetBackend> netback_;

  struct GuestBinding {
    kernel::Kernel* kernel = nullptr;
    DomainId dom = kDomInvalid;
  };
  std::vector<GuestBinding> guest_on_cpu_;

  std::unordered_set<hw::Pfn> protected_frames_;
  bool heal_mode_ = false;
  std::function<void(HvFaultPoint, hw::Cpu*)> fault_probe_;
  HvStats stats_;
};

}  // namespace mercury::vmm
