// Split block driver: frontend (in a domU's VirtualVo) <-> backend (in the
// driver domain), connected by a shared ring + grants + event channels.
//
// The backend keeps its own buffer cache with write-behind semantics: a domU
// write completes once the backend has buffered it. This reproduces the
// paper's observation that dbench in domainU can outrun domain0 and even
// native Linux "at the cost of possible inconsistency during crash" (§7.3).
#pragma once

#include <cstdint>
#include <span>

#include "hw/cpu.hpp"
#include "hw/machine.hpp"
#include "kernel/fs/block_cache.hpp"
#include "vmm/event_channel.hpp"
#include "vmm/grant_table.hpp"
#include "vmm/ring.hpp"

namespace mercury::vmm {

struct BlkRequest {
  std::uint64_t block = 0;
  bool write = false;
  int grant_ref = -1;
};

struct BlkResponse {
  bool ok = true;
};

class BlockBackend {
 public:
  BlockBackend(hw::Machine& machine, EventChannels& evtchn, GrantTable& gnttab,
               DomainId driver_domain, std::size_t cache_blocks = 8192);

  void connect_frontend(DomainId domU);
  bool connected() const { return frontend_ != kDomInvalid; }
  DomainId frontend() const { return frontend_; }
  /// Tear the connection down (migration: frontends reconnect on the target).
  void disconnect_frontend(hw::Cpu& cpu);

  /// Full frontend->backend->frontend round trips, charged on the calling
  /// CPU — faithful to a uniprocessor machine where the driver domain must
  /// be scheduled inline to service the request.
  void read(hw::Cpu& cpu, std::uint64_t block, std::span<std::uint8_t> out);
  void write(hw::Cpu& cpu, std::uint64_t block, std::span<const std::uint8_t> in);
  /// Barrier semantics (see .cpp): ordering acknowledged, cache retained.
  void flush(hw::Cpu& cpu);
  /// True durability: drain the write-behind cache to the device.
  void flush_hard(hw::Cpu& cpu);

  std::uint64_t requests_served() const { return served_; }
  const kernel::BlockCache& cache() const { return cache_; }

 private:
  void service(hw::Cpu& cpu);

  hw::Machine& machine_;
  EventChannels& evtchn_;
  GrantTable& gnttab_;
  DomainId driver_domain_;
  DomainId frontend_ = kDomInvalid;
  IoRing<BlkRequest, BlkResponse> ring_;
  kernel::BlockCache cache_;
  int req_port_ = -1;
  int resp_port_ = -1;
  std::uint64_t served_ = 0;
  std::uint64_t writes_buffered_ = 0;
};

}  // namespace mercury::vmm
