#include "vmm/blkif.hpp"

#include <array>

#include "pv/costs.hpp"
#include "util/assert.hpp"

namespace mercury::vmm {

namespace {
std::array<std::uint8_t, hw::Disk::kBlockSize>& scratch() {
  static std::array<std::uint8_t, hw::Disk::kBlockSize> buf{};
  return buf;
}
}  // namespace

BlockBackend::BlockBackend(hw::Machine& machine, EventChannels& evtchn,
                           GrantTable& gnttab, DomainId driver_domain,
                           std::size_t cache_blocks)
    : machine_(machine),
      evtchn_(evtchn),
      gnttab_(gnttab),
      driver_domain_(driver_domain),
      cache_(cache_blocks) {}

void BlockBackend::connect_frontend(DomainId domU) {
  frontend_ = domU;
  req_port_ = evtchn_.alloc(domU, driver_domain_,
                            [this](hw::Cpu& cpu) { service(cpu); });
  resp_port_ = evtchn_.alloc(driver_domain_, domU);  // latched doorbell
}

void BlockBackend::disconnect_frontend(hw::Cpu& cpu) {
  if (frontend_ == kDomInvalid) return;
  flush_hard(cpu);
  evtchn_.close(req_port_);
  evtchn_.close(resp_port_);
  req_port_ = resp_port_ = -1;
  frontend_ = kDomInvalid;
}

void BlockBackend::service(hw::Cpu& cpu) {
  while (auto req = ring_.pop_request(cpu)) {
    ++served_;
    // Map the guest's data page.
    const hw::Pfn frame = gnttab_.map(cpu, driver_domain_, req->grant_ref);
    (void)frame;
    cpu.charge(pv::costs::kBackendCopyPerPage);
    if (req->write) {
      // Write-behind: buffer in the backend cache; completion is immediate.
      cache_.mark_dirty(req->block);
      ++writes_buffered_;
      // Keep the backlog bounded like a real backend would.
      for (const std::uint64_t b : cache_.evict_to_capacity())
        cpu.charge(machine_.disk().write(b, scratch()));
    } else {
      cpu.charge(2 * hw::costs::kMemAccess);  // cache index probe
      if (!cache_.lookup(req->block)) {
        cpu.charge(machine_.disk().read(req->block, scratch()));
        cache_.insert(req->block, false);
      }
    }
    gnttab_.unmap(cpu, driver_domain_, req->grant_ref);
    ring_.push_response(cpu, BlkResponse{true});
    evtchn_.notify(cpu, resp_port_);
  }
}

void BlockBackend::read(hw::Cpu& cpu, std::uint64_t block,
                        std::span<std::uint8_t> out) {
  MERC_CHECK_MSG(connected(), "blkfront read with no backend connection");
  // Frontend side: grant the buffer, queue the request, ring the doorbell.
  const int ref = gnttab_.grant(frontend_, 0, driver_domain_, false);
  MERC_CHECK(ring_.push_request(cpu, BlkRequest{block, false, ref}));
  evtchn_.notify(cpu, req_port_);  // handler runs the backend inline
  auto resp = ring_.pop_response(cpu);
  MERC_CHECK(resp && resp->ok);
  (void)evtchn_.take_pending(resp_port_);
  gnttab_.end(frontend_, ref);
  machine_.disk();  // (device owned by the driver domain)
  (void)out;
}

void BlockBackend::write(hw::Cpu& cpu, std::uint64_t block,
                         std::span<const std::uint8_t> in) {
  MERC_CHECK_MSG(connected(), "blkfront write with no backend connection");
  const int ref = gnttab_.grant(frontend_, 0, driver_domain_, true);
  MERC_CHECK(ring_.push_request(cpu, BlkRequest{block, true, ref}));
  evtchn_.notify(cpu, req_port_);
  auto resp = ring_.pop_response(cpu);
  MERC_CHECK(resp && resp->ok);
  (void)evtchn_.take_pending(resp_port_);
  gnttab_.end(frontend_, ref);
  (void)in;
}

void BlockBackend::flush(hw::Cpu& cpu) {
  // Guest flush requests are acknowledged as *barriers*: ordering is
  // preserved but the write-behind cache is not drained. This is the
  // "caching at the cost of possible inconsistency during crash" the paper
  // observes making domU dbench outrun domain0 (§7.3). flush_hard() exists
  // for callers that need real durability.
  cpu.charge(pv::costs::kRingSlotWork + pv::costs::kEventChannelSend / 2);
}

void BlockBackend::flush_hard(hw::Cpu& cpu) {
  for (const std::uint64_t b : cache_.take_dirty(~std::size_t{0}))
    cpu.charge(machine_.disk().write(b, scratch()));
  cpu.charge(machine_.disk().flush());
}

}  // namespace mercury::vmm
