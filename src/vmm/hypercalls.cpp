// Hypercall implementations: the guest->VMM service interface.
#include <string>

#include "hw/costs.hpp"
#include "kernel/kernel.hpp"
#include "obs/obs.hpp"
#include "pv/costs.hpp"
#include "util/assert.hpp"
#include "vmm/hypervisor.hpp"

namespace mercury::vmm {

using kernel::Kernel;

void Hypervisor::hypercall_enter(hw::Cpu& cpu) {
  MERC_CHECK_MSG(state_ == State::kActive, "hypercall into inactive VMM");
  ++stats_.hypercalls;
  // The guest is unavailable from the ring crossing until hypercall_exit
  // returns it to ring 1; the open interval is closed there. The enter/exit
  // pairing is per-CPU, and an unpaired half counts as unattributed (gated
  // to zero in soak).
  MERC_PAUSE_BEGIN(kHypercallEmulation, static_cast<std::uint32_t>(cpu.id()),
                   cpu.now(), "vmm.hypercall");
  cpu.charge(pv::costs::kHypercallEntry);
  cpu.set_cpl(hw::Ring::kRing0);
}

void Hypervisor::hypercall_exit(hw::Cpu& cpu) {
  cpu.charge(pv::costs::kHypercallExit);
  // Return to the guest kernel's ring (hypercalls come from kernel mode).
  cpu.set_cpl(hw::Ring::kRing1);
  MERC_PAUSE_END(static_cast<std::uint32_t>(cpu.id()), cpu.now());
}

void Hypervisor::hc_mmu_update(hw::Cpu& cpu, DomainId dom,
                               std::span<const pv::PteUpdate> updates) {
  hypercall_enter(cpu);
  MERC_COUNT("vmm.hypercall.mmu_update");
  Domain& d = domain(dom);
  for (const auto& u : updates) {
    cpu.charge(pv::costs::kValidatePte);
    ++stats_.pte_validations;
    std::string why;
    if (!validate_update(d, u.pte_addr, u.value, &why)) {
      crash_domain(dom, "mmu_update: " + why);
      break;
    }
    machine_.memory().write_u32(u.pte_addr, u.value.raw);
    cpu.charge(hw::costs::kMemAccess);
    if (d.log_dirty() && u.value.present() && u.value.writable())
      d.mark_dirty(u.value.pfn());
  }
  hypercall_exit(cpu);
}

void Hypervisor::hc_pte_write_emulate(hw::Cpu& cpu, DomainId dom,
                                      hw::PhysAddr pte_addr, hw::Pte value) {
  // Writable-page-table path: the guest's mov to a (read-only) PT page traps
  // into the VMM, which decodes and emulates the write with validation. This
  // is dearer than a batched mmu_update — and it is the path a 2.6-era
  // XenoLinux kernel took for most PTE updates.
  MERC_CHECK_MSG(state_ == State::kActive, "pte emulation into inactive VMM");
  ++stats_.hypercalls;
  ++stats_.emulated_pte_writes;
  MERC_COUNT("vmm.hypercall.pte_write_emulate");
  // This path skips hypercall_enter/exit (it is a trap, not a call), so it
  // opens and closes its own unavailability interval.
  MERC_PAUSE_BEGIN(kHypercallEmulation, static_cast<std::uint32_t>(cpu.id()),
                   cpu.now(), "vmm.pte_write_emulate");
  cpu.charge(hw::costs::kTrapEntry + pv::costs::kVmmTrapDispatch +
             pv::costs::kPteEmulateDecode);
  cpu.set_cpl(hw::Ring::kRing0);
  Domain& d = domain(dom);
  cpu.charge(pv::costs::kValidatePte);
  ++stats_.pte_validations;
  std::string why;
  if (!validate_update(d, pte_addr, value, &why)) {
    crash_domain(dom, "emulated PTE write: " + why);
  } else {
    machine_.memory().write_u32(pte_addr, value.raw);
    cpu.charge(hw::costs::kMemAccess);
    if (d.log_dirty() && value.present() && value.writable())
      d.mark_dirty(value.pfn());
  }
  cpu.charge(hw::costs::kTrapReturn + pv::costs::kPteEmulateReturn);
  cpu.set_cpl(hw::Ring::kRing1);
  MERC_PAUSE_END(static_cast<std::uint32_t>(cpu.id()), cpu.now());
}

void Hypervisor::hc_pin_table(hw::Cpu& cpu, DomainId dom, hw::Pfn table,
                              pv::PtLevel level) {
  hypercall_enter(cpu);
  MERC_COUNT("vmm.hypercall.pin_table");
  Domain& d = domain(dom);
  PageInfo& pi = page_info_.at(table);
  if (pi.owner != dom) {
    crash_domain(dom, "pin of a foreign frame");
    hypercall_exit(cpu);
    return;
  }
  cpu.charge(pv::costs::kPinBase);
  ++stats_.pins;
  // Protect before validating so the no-writable-PT-mapping rule holds for
  // the frame's own direct-map entry.
  pi.type = level == pv::PtLevel::kL1 ? PageType::kL1 : PageType::kL2;
  pi.pinned = true;
  pi.type_count += 1;
  if (Kernel* k = d.guest()) set_frame_writable(cpu, *k, table, false);
  std::size_t present = 0;
  const bool ok = level == pv::PtLevel::kL1
                      ? validate_l1(cpu, d, table, 0, &present)
                      : validate_l2(cpu, d, table, 0, &present);
  if (!ok) {
    // Validation failure crashed the domain; roll the typing back.
    pi.type = PageType::kWritable;
    pi.pinned = false;
    pi.type_count -= 1;
    if (Kernel* k = d.guest()) set_frame_writable(cpu, *k, table, true);
    hypercall_exit(cpu);
    return;
  }
  cpu.charge(pv::costs::kPinPerPresentPte * present);
  hypercall_exit(cpu);
}

void Hypervisor::hc_unpin_table(hw::Cpu& cpu, DomainId dom, hw::Pfn table) {
  hypercall_enter(cpu);
  MERC_COUNT("vmm.hypercall.unpin_table");
  Domain& d = domain(dom);
  PageInfo& pi = page_info_.at(table);
  if (pi.owner != dom || !pi.pinned) {
    crash_domain(dom, "unpin of a frame that is not a pinned table");
    hypercall_exit(cpu);
    return;
  }
  cpu.charge(pv::costs::kUnpinBase);
  ++stats_.unpins;
  // Count the present entries being released (reference bookkeeping).
  std::size_t present = 0;
  for (std::uint32_t e = 0; e < hw::kPtEntries; ++e) {
    const hw::Pte pte{machine_.memory().read_u32(hw::addr_of(table) + e * 4)};
    if (pte.present()) ++present;
  }
  cpu.charge(pv::costs::kUnpinPerPresentPte * present);
  MERC_CHECK(pi.type_count > 0);
  pi.type_count -= 1;
  if (pi.type_count == 0) {
    pi.pinned = false;
    pi.type = PageType::kWritable;
    if (Kernel* k = d.guest()) set_frame_writable(cpu, *k, table, true);
  }
  hypercall_exit(cpu);
}

void Hypervisor::hc_write_cr3(hw::Cpu& cpu, DomainId dom, hw::Pfn root) {
  hypercall_enter(cpu);
  MERC_COUNT("vmm.hypercall.write_cr3");
  Domain& d = domain(dom);
  const PageInfo& pi = page_info_.at(root);
  if (pi.owner != dom || pi.type != PageType::kL2 || !pi.pinned) {
    crash_domain(dom, "cr3 load of an unpinned/non-L2 frame");
    hypercall_exit(cpu);
    return;
  }
  ++stats_.cr3_switches;
  // The VMM's full context-switch path: CR3 install, segment refresh, event
  // mask bookkeeping.
  cpu.charge(pv::costs::kVmmCtxSwitch);
  at_ring0(cpu, [&] { cpu.write_cr3(root); });
  VcpuContext& vc = d.vcpu(cpu.id() % d.num_vcpus());
  vc.cr3 = root;
  hypercall_exit(cpu);
}

void Hypervisor::hc_set_trap_table(hw::Cpu& cpu, DomainId dom,
                                   hw::TableToken guest_idt) {
  hypercall_enter(cpu);
  MERC_COUNT("vmm.hypercall.set_trap_table");
  Domain& d = domain(dom);
  for (std::size_t v = 0; v < d.num_vcpus(); ++v) d.vcpu(v).guest_idt = guest_idt;
  // The hardware IDT stays the hypervisor's own.
  at_ring0(cpu, [&] { cpu.load_idt(idt_token_); });
  hypercall_exit(cpu);
}

void Hypervisor::hc_load_guest_gdt(hw::Cpu& cpu, DomainId dom,
                                   hw::TableToken guest_gdt) {
  hypercall_enter(cpu);
  MERC_COUNT("vmm.hypercall.load_guest_gdt");
  Domain& d = domain(dom);
  for (std::size_t v = 0; v < d.num_vcpus(); ++v) d.vcpu(v).guest_gdt = guest_gdt;
  at_ring0(cpu, [&] { cpu.load_gdt(gdt_token_); });
  hypercall_exit(cpu);
}

void Hypervisor::hc_stack_switch(hw::Cpu& cpu, DomainId dom) {
  hypercall_enter(cpu);
  MERC_COUNT("vmm.hypercall.stack_switch");
  (void)domain(dom);
  cpu.charge(hw::costs::kPrivRegWrite * 2);  // TSS esp0/ss0 update
  hypercall_exit(cpu);
}

void Hypervisor::hc_flush_tlb(hw::Cpu& cpu, DomainId dom) {
  hypercall_enter(cpu);
  MERC_COUNT("vmm.hypercall.flush_tlb");
  (void)domain(dom);
  cpu.charge(hw::costs::kTlbFlushAll);
  cpu.tlb().flush_all();
  hypercall_exit(cpu);
}

void Hypervisor::hc_flush_tlb_page(hw::Cpu& cpu, DomainId dom, hw::VirtAddr va) {
  hypercall_enter(cpu);
  MERC_COUNT("vmm.hypercall.flush_tlb_page");
  (void)domain(dom);
  cpu.charge(hw::costs::kTlbFlushPage);
  cpu.tlb().flush_page(hw::vpn_of(va));
  hypercall_exit(cpu);
}

void Hypervisor::hc_set_virq_mask(hw::Cpu& cpu, DomainId dom, bool enabled) {
  // Not a trap: the guest toggles its virtual IF in writable shared info.
  MERC_COUNT("vmm.hypercall.set_virq_mask");
  Domain& d = domain(dom);
  cpu.charge(pv::costs::kVirtIrqToggle);
  d.vcpu(cpu.id() % d.num_vcpus()).virq_enabled = enabled;
  // Mirror into the simulated IF so interrupt delivery honours the mask.
  cpu.set_iflag_raw(enabled);
}

void Hypervisor::hc_send_ipi(hw::Cpu& cpu, DomainId dom, std::uint32_t dst,
                             std::uint8_t vector, std::uint32_t payload) {
  hypercall_enter(cpu);
  MERC_COUNT("vmm.hypercall.send_ipi");
  (void)domain(dom);
  machine_.interrupts().send_ipi(cpu, dst, vector, payload);
  hypercall_exit(cpu);
}

}  // namespace mercury::vmm
