#include "vmm/checkpoint.hpp"

#include <cstring>

#include "hw/costs.hpp"
#include "util/assert.hpp"

namespace mercury::vmm {

Snapshot Checkpointer::take(hw::Cpu& cpu, Hypervisor& hv, DomainId dom) {
  Domain& d = hv.domain(dom);
  Snapshot snap;
  snap.dom = dom;
  snap.first_frame = d.first_frame();
  snap.frame_count = d.frame_count();
  snap.taken_at = cpu.now();
  snap.image.resize(d.frame_count() * hw::kPageSize);
  for (std::size_t i = 0; i < d.frame_count(); ++i) {
    cpu.charge(hw::costs::kPageCopy);
    hv.machine().memory().read_bytes(
        hw::addr_of(d.first_frame() + static_cast<hw::Pfn>(i)),
        std::span<std::uint8_t>(snap.image.data() + i * hw::kPageSize,
                                hw::kPageSize));
  }
  for (std::size_t v = 0; v < d.num_vcpus(); ++v) snap.vcpus.push_back(d.vcpu(v));
  return snap;
}

void Checkpointer::restore(hw::Cpu& cpu, Hypervisor& hv, const Snapshot& snap) {
  Domain& d = hv.domain(snap.dom);
  MERC_CHECK_MSG(d.first_frame() == snap.first_frame &&
                     d.frame_count() == snap.frame_count,
                 "snapshot does not match the domain's memory layout");
  for (std::size_t i = 0; i < snap.frame_count; ++i) {
    cpu.charge(hw::costs::kPageCopy);
    hv.machine().memory().write_bytes(
        hw::addr_of(snap.first_frame + static_cast<hw::Pfn>(i)),
        std::span<const std::uint8_t>(snap.image.data() + i * hw::kPageSize,
                                      hw::kPageSize));
  }
  for (std::size_t v = 0; v < snap.vcpus.size() && v < d.num_vcpus(); ++v)
    d.vcpu(v) = snap.vcpus[v];
  // Every cached translation may now be stale.
  for (std::size_t c = 0; c < hv.machine().num_cpus(); ++c) {
    hv.machine().cpu(c).tlb().flush_global();
    cpu.charge(hw::costs::kTlbFlushAll);
  }
}

bool Checkpointer::matches(Hypervisor& hv, const Snapshot& snap) {
  std::vector<std::uint8_t> cur(hw::kPageSize);
  for (std::size_t i = 0; i < snap.frame_count; ++i) {
    hv.machine().memory().read_bytes(
        hw::addr_of(snap.first_frame + static_cast<hw::Pfn>(i)), cur);
    if (std::memcmp(cur.data(), snap.image.data() + i * hw::kPageSize,
                    hw::kPageSize) != 0)
      return false;
  }
  return true;
}

}  // namespace mercury::vmm
