#include "vmm/domain.hpp"

#include "util/assert.hpp"

namespace mercury::vmm {

Domain::Domain(DomainId id, std::string name, kernel::Kernel* guest,
               hw::Pfn first_frame, std::size_t frame_count, bool privileged,
               std::size_t num_vcpus)
    : id_(id),
      name_(std::move(name)),
      guest_(guest),
      first_frame_(first_frame),
      frame_count_(frame_count),
      privileged_(privileged) {
  MERC_CHECK(num_vcpus > 0);
  vcpus_.resize(num_vcpus);
  for (std::size_t i = 0; i < num_vcpus; ++i)
    vcpus_[i].vcpu_id = static_cast<std::uint32_t>(i);
}

void Domain::set_log_dirty(bool on) {
  log_dirty_ = on;
  dirty_bitmap_.assign(on ? frame_count_ : 0, false);
  dirty_count_ = 0;
}

void Domain::mark_dirty(hw::Pfn pfn) {
  if (!log_dirty_ || !owns_frame(pfn)) return;
  const std::size_t idx = pfn - first_frame_;
  if (!dirty_bitmap_[idx]) {
    dirty_bitmap_[idx] = true;
    ++dirty_count_;
  }
}

std::vector<hw::Pfn> Domain::harvest_dirty() {
  std::vector<hw::Pfn> out;
  out.reserve(dirty_count_);
  for (std::size_t i = 0; i < dirty_bitmap_.size(); ++i) {
    if (dirty_bitmap_[i]) {
      out.push_back(first_frame_ + static_cast<hw::Pfn>(i));
      dirty_bitmap_[i] = false;
    }
  }
  dirty_count_ = 0;
  return out;
}

}  // namespace mercury::vmm
