#include "vmm/hypervisor.hpp"

#include <algorithm>

#include "hw/costs.hpp"
#include "kernel/kernel.hpp"
#include "kernel/layout.hpp"
#include "obs/obs.hpp"
#include "pv/costs.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mercury::vmm {

using kernel::Kernel;

Hypervisor::Hypervisor(hw::Machine& machine)
    : machine_(machine),
      page_info_(machine.memory().total_frames()),
      guest_on_cpu_(machine.num_cpus()) {}

Hypervisor::~Hypervisor() = default;

void Hypervisor::warm_up() {
  MERC_CHECK_MSG(state_ == State::kCold, "warm_up called twice");
  const std::size_t total = machine_.memory().total_frames();
  reserved_count_ =
      std::min<std::size_t>(kernel::kVmmRegionBytes / hw::kPageSize, total / 8);
  reserved_first_ = static_cast<hw::Pfn>(total - reserved_count_);
  machine_.frames().reserve_range(reserved_first_, reserved_count_);

  // Build the reserved-region mappings: L1 tables (carved from the reserved
  // frames themselves) mapping the VMM's memory at kVmmBase, ring-0 only.
  auto& mem = machine_.memory();
  const std::size_t l1_needed =
      (reserved_count_ + hw::kPtEntries - 1) / hw::kPtEntries;
  std::size_t mapped = 0;
  for (std::size_t t = 0; t < l1_needed; ++t) {
    const hw::Pfn l1 = reserved_first_ + static_cast<hw::Pfn>(t);
    mem.zero_frame(l1);
    for (std::uint32_t e = 0; e < hw::kPtEntries && mapped < reserved_count_;
         ++e, ++mapped) {
      hw::Pte pte = hw::make_pte(reserved_first_ + static_cast<hw::Pfn>(mapped),
                                 /*writable=*/true, /*user=*/false,
                                 /*global=*/true);
      pte.set_flag(hw::Pte::kVmmOnly, true);
      mem.write_u32(hw::addr_of(l1) + e * 4, pte.raw);
    }
    hw::Pte pde = hw::make_pte(l1, /*writable=*/true, /*user=*/false,
                               /*global=*/true);
    pde.set_flag(hw::Pte::kVmmOnly, true);
    vmm_pdes_.emplace_back(hw::pde_index(kernel::kVmmBase) +
                               static_cast<std::uint32_t>(t),
                           pde);
  }

  blkback_ = std::make_unique<BlockBackend>(machine_, evtchn_, gnttab_, 0);
  netback_ = std::make_unique<NetBackend>(machine_, evtchn_, gnttab_, 0);
  state_ = State::kDormant;
  page_info_.set_valid(false);
}

// --- domains -----------------------------------------------------------------

DomainId Hypervisor::create_domain(std::string name, Kernel* guest,
                                   hw::Pfn first_frame, std::size_t frame_count,
                                   bool privileged, std::size_t num_vcpus) {
  MERC_CHECK(state_ != State::kCold);
  // Ownership layout is changing: a table retained across a detach no
  // longer describes the machine (no-op when nothing is retained).
  page_info_.poison_retention();
  const DomainId id = next_dom_++;
  domains_.push_back(std::make_unique<Domain>(id, std::move(name), guest,
                                              first_frame, frame_count,
                                              privileged, num_vcpus));
  return id;
}

void Hypervisor::destroy_domain(DomainId id) {
  auto it = std::find_if(domains_.begin(), domains_.end(),
                         [&](const auto& d) { return d->id() == id; });
  MERC_CHECK_MSG(it != domains_.end(), "destroy of unknown domain " << id);
  page_info_.poison_retention();
  domains_.erase(it);
  for (auto& gb : guest_on_cpu_)
    if (gb.dom == id) gb = GuestBinding{};
}

Domain* Hypervisor::find_domain(DomainId id) {
  for (auto& d : domains_)
    if (d->id() == id) return d.get();
  return nullptr;
}

Domain& Hypervisor::domain(DomainId id) {
  Domain* d = find_domain(id);
  MERC_CHECK_MSG(d != nullptr, "unknown domain " << id);
  return *d;
}

std::size_t Hypervisor::num_domains() const { return domains_.size(); }

void Hypervisor::crash_domain(DomainId id, std::string reason) {
  Domain& d = domain(id);
  if (d.crashed) return;
  d.crashed = true;
  d.crash_reason = std::move(reason);
  ++stats_.domains_crashed;
  util::log_warn("vmm", "domain ", d.name(), " crashed: ", d.crash_reason);
}

void Hypervisor::set_guest_on_cpu(std::uint32_t cpu, Kernel* k, DomainId dom) {
  MERC_CHECK(cpu < guest_on_cpu_.size());
  guest_on_cpu_[cpu] = GuestBinding{k, dom};
}

// --- validation ----------------------------------------------------------------

bool Hypervisor::frame_is_pt(hw::Pfn pfn) const {
  const PageInfo& pi = page_info_.at(pfn);
  return pi.type == PageType::kL1 || pi.type == PageType::kL2;
}

bool Hypervisor::pte_value_ok(Domain& d, hw::Pte value, std::string* why) {
  if (!value.present()) return true;
  const hw::Pfn target = value.pfn();
  if (target >= page_info_.size()) {
    if (why) *why = "PTE targets nonexistent frame";
    return false;
  }
  const PageInfo& pi = page_info_.at(target);
  if (pi.owner == kDomHypervisor) {
    if (why) *why = "PTE maps a hypervisor frame";
    return false;
  }
  if (pi.owner != d.id()) {
    if (why) *why = "PTE maps a frame owned by another domain";
    return false;
  }
  if (value.writable() && (pi.type == PageType::kL1 || pi.type == PageType::kL2)) {
    if (why) *why = "writable mapping of a page-table frame";
    return false;
  }
  return true;
}

bool Hypervisor::validate_l1(hw::Cpu& cpu, Domain& d, hw::Pfn table,
                             hw::Cycles per_pte, std::size_t* present_out) {
  std::size_t present = 0;
  for (std::uint32_t e = 0; e < hw::kPtEntries; ++e) {
    cpu.charge(per_pte);
    const hw::Pte pte{machine_.memory().read_u32(hw::addr_of(table) + e * 4)};
    if (!pte.present()) continue;
    ++present;
    ++stats_.pte_validations;
    std::string why;
    if (!pte_value_ok(d, pte, &why)) {
      if (heal_mode_) {
        // Repair: clear the tainted entry; a later fault re-establishes it.
        machine_.memory().write_u32(hw::addr_of(table) + e * 4, 0);
        cpu.charge(hw::costs::kMemAccess);
        ++stats_.entries_healed;
        --present;
        continue;
      }
      crash_domain(d.id(), "L1 validation: " + why);
      return false;
    }
  }
  if (present_out) *present_out = present;
  return true;
}

bool Hypervisor::validate_l2(hw::Cpu& cpu, Domain& d, hw::Pfn table,
                             hw::Cycles per_pte, std::size_t* present_out) {
  std::size_t present = 0;
  const std::uint32_t vmm_pde_start = hw::pde_index(kernel::kVmmBase);
  for (std::uint32_t e = 0; e < hw::kPtEntries; ++e) {
    cpu.charge(per_pte);
    const hw::Pte pde{machine_.memory().read_u32(hw::addr_of(table) + e * 4)};
    if (!pde.present()) continue;
    ++present;
    ++stats_.pte_validations;
    if (e >= vmm_pde_start) {
      // Reserved region: must match the hypervisor-published template.
      const auto it = std::find_if(
          vmm_pdes_.begin(), vmm_pdes_.end(),
          [&](const auto& p) { return p.first == e; });
      if (it == vmm_pdes_.end() || it->second.raw != pde.raw) {
        crash_domain(d.id(), "L2 validation: tampered VMM reserved PDE");
        return false;
      }
      continue;
    }
    const hw::Pfn l1 = pde.pfn();
    if (l1 >= page_info_.size() || page_info_.at(l1).type != PageType::kL1) {
      crash_domain(d.id(), "L2 validation: PDE references a non-L1 frame");
      return false;
    }
  }
  if (present_out) *present_out = present;
  return true;
}

// --- adopt / release (Mercury's heavy lifting) -----------------------------------
//
// The serial entry points (rebuild_page_info / type_and_protect_tables /
// unprotect_tables, and adopt_running_os / release_os around them) are
// compositions of the range-based shard functions below. The composition is
// cycle-identical to the historical single-loop code: the serial path runs
// one shard spanning the whole range on the control processor, with the
// legacy fault-point names.

DomainId Hypervisor::begin_adopt(Kernel& k) {
  MERC_CHECK_MSG(state_ == State::kDormant, "adopt while not dormant");
  ++stats_.adopts;
  MERC_COUNT("vmm.adopts");
  // Reuse an existing domain record for this kernel if one exists.
  DomainId id = kDomInvalid;
  for (auto& d : domains_)
    if (d->guest() == &k) id = d->id();
  if (id == kDomInvalid)
    id = create_domain(k.name(), &k, k.base_pfn(), k.pool().owned_count(),
                       /*privileged=*/true, machine_.num_cpus());
  return id;
}

void Hypervisor::init_reserved_page_info() {
  page_info_.begin_rebuild_epoch();
  for (std::size_t i = 0; i < reserved_count_; ++i) {
    PageInfo& pi = page_info_.at(reserved_first_ + static_cast<hw::Pfn>(i));
    pi = PageInfo{kDomHypervisor, PageType::kWritable, 0, 1, false};
  }
  page_info_.reset_shard_counters();
}

void Hypervisor::adopt_rebuild_shard(hw::Cpu& cpu, DomainId id,
                                     std::span<const hw::Pfn> frames,
                                     HvFaultPoint site) {
  if (!frames.empty())
    MERC_FLIGHT(cpu, kShardRange, "vmm.adopt_rebuild_shard", frames.size(),
                frames.front(), frames.back());
  for (const hw::Pfn pfn : frames) {
    if (fault_probe_) fault_probe_(site, &cpu);
    cpu.charge(pv::costs::kPerFrameInfoRebuild);
    page_info_.at(pfn) = PageInfo{id, PageType::kWritable, 0, 1, false};
    page_info_.note_rebuilt(pfn);
  }
}

void Hypervisor::adopt_dirty_rebuild_shard(hw::Cpu& cpu, DomainId id,
                                           std::span<const hw::Pfn> frames,
                                           HvFaultPoint site) {
  if (!frames.empty())
    MERC_FLIGHT(cpu, kShardRange, "vmm.adopt_dirty_rebuild_shard",
                frames.size(), frames.front(), frames.back());
  for (const hw::Pfn pfn : frames) {
    if (fault_probe_) fault_probe_(site, &cpu);
    cpu.charge(pv::costs::kPerFrameInfoRebuild);
    const bool reserved =
        pfn >= reserved_first_ &&
        pfn < reserved_first_ + static_cast<hw::Pfn>(reserved_count_);
    page_info_.at(pfn) =
        reserved ? PageInfo{kDomHypervisor, PageType::kWritable, 0, 1, false}
                 : PageInfo{id, PageType::kWritable, 0, 1, false};
    page_info_.note_dirty_rebuilt(pfn);
  }
}

void Hypervisor::adopt_trusted_sweep_shard(hw::Cpu& cpu, std::size_t frames) {
  // Eager tracking kept the table fresh, but the VMM still cross-checks
  // ownership with a light sweep before enforcing isolation on it.
  if (frames != 0)
    MERC_FLIGHT(cpu, kShardRange, "vmm.adopt_trusted_sweep_shard", frames);
  for (std::size_t i = 0; i < frames; ++i) cpu.charge(1);
}

std::vector<std::pair<hw::Pfn, PageType>> Hypervisor::collect_tables(Kernel& k) {
  // Discover every page-table frame (uncharged: pointer chasing over kernel
  // metadata, negligible against the per-frame protection flips).
  std::vector<std::pair<hw::Pfn, PageType>> tables;
  for (const hw::Pfn l1 : k.kernel_l1_frames())
    tables.emplace_back(l1, PageType::kL1);
  k.for_each_task([&](kernel::Task& t) {
    if (!t.aspace) return;
    for (const hw::Pfn pt : t.aspace->page_table_frames()) {
      if (pt == t.aspace->page_directory()) continue;
      tables.emplace_back(pt, PageType::kL1);
    }
  });
  tables.emplace_back(k.kernel_pd(), PageType::kL2);
  k.for_each_task([&](kernel::Task& t) {
    if (t.aspace) tables.emplace_back(t.aspace->page_directory(), PageType::kL2);
  });
  return tables;
}

void Hypervisor::adopt_protect_shard(
    hw::Cpu& cpu, DomainId id, Kernel& k,
    std::span<const std::pair<hw::Pfn, PageType>> tables, HvFaultPoint site) {
  (void)id;
  if (!tables.empty())
    MERC_FLIGHT(cpu, kShardRange, "vmm.adopt_protect_shard", tables.size(),
                tables.front().first, tables.back().first);
  for (const auto& [pfn, type] : tables) {
    if (fault_probe_) fault_probe_(site, &cpu);
    PageInfo& pi = page_info_.at(pfn);
    pi.type = type;
    pi.pinned = true;
    pi.type_count = 1;
    set_frame_writable_batched(cpu, k, pfn, false);
    page_info_.note_typed(pfn);
  }
}

void Hypervisor::adopt_validate_shard(
    hw::Cpu& cpu, DomainId id,
    std::span<const std::pair<hw::Pfn, PageType>> tables, PageType level) {
  Domain& d = domain(id);
  if (!tables.empty())
    MERC_FLIGHT(cpu, kShardRange, "vmm.adopt_validate_shard", tables.size(),
                tables.front().first, tables.back().first);
  for (const auto& [pfn, type] : tables) {
    if (type != level) continue;
    if (level == PageType::kL1)
      validate_l1(cpu, d, pfn, pv::costs::kPerPtePinScan, nullptr);
    else
      validate_l2(cpu, d, pfn, pv::costs::kPerPtePinScan, nullptr);
  }
}

void Hypervisor::finish_adopt(DomainId id, Kernel& k) {
  // The table is live again: whatever retention state the detach left
  // behind has been consumed (warm path) or superseded (cold path).
  page_info_.set_retained(false);
  page_info_.set_valid(true);
  state_ = State::kActive;
  for (std::size_t c = 0; c < machine_.num_cpus(); ++c)
    set_guest_on_cpu(static_cast<std::uint32_t>(c), &k, id);
  take_traps();
}

void Hypervisor::begin_release(DomainId id) {
  MERC_CHECK_MSG(state_ == State::kActive, "release while not active");
  MERC_CHECK(domain(id).guest() != nullptr);
  ++stats_.releases;
  MERC_COUNT("vmm.releases");
}

std::vector<hw::Pfn> Hypervisor::protected_frames_snapshot() const {
  std::vector<hw::Pfn> frames(protected_frames_.begin(),
                              protected_frames_.end());
  std::sort(frames.begin(), frames.end());
  return frames;
}

void Hypervisor::release_unprotect_shard(hw::Cpu& cpu, Kernel& k,
                                         std::span<const hw::Pfn> frames,
                                         HvFaultPoint site) {
  if (!frames.empty())
    MERC_FLIGHT(cpu, kShardRange, "vmm.release_unprotect_shard", frames.size(),
                frames.front(), frames.back());
  for (const hw::Pfn pfn : frames) {
    if (fault_probe_) fault_probe_(site, &cpu);
    set_frame_writable_batched(cpu, k, pfn, true);
  }
}

void Hypervisor::finish_release(bool retain_page_info) {
  MERC_CHECK(protected_frames_.empty());
  // Dropping the accounting is O(1): this is why detach is much cheaper
  // than attach (paper §7.4). Retention costs nothing extra — the entry
  // contents are left in place either way; the flag just promises they
  // still describe the machine as of this detach.
  page_info_.invalidate_all();
  page_info_.set_retained(retain_page_info);
  state_ = State::kDormant;
}

void Hypervisor::rebuild_page_info(hw::Cpu& cpu, Domain& d) {
  Kernel* k = d.guest();
  MERC_CHECK(k != nullptr);
  MERC_SPAN(cpu, kVmm, "vmm.rebuild_page_info");
  // Hypervisor's own frames, then every frame the kernel was ever granted:
  // reset to plain writable RAM. This linear pass over ~all of memory is the
  // paper's dominant attach cost.
  init_reserved_page_info();
  adopt_rebuild_shard(cpu, d.id(), k->pool().owned(),
                      HvFaultPoint::kAdoptRebuild);
  MERC_COUNT_N("vmm.page_info.frames_reconstructed", k->pool().owned().size());
}

void Hypervisor::type_and_protect_tables(hw::Cpu& cpu, Domain& d, Kernel& k) {
  MERC_SPAN(cpu, kVmm, "vmm.type_and_protect");
  // Pass 1: discover every page-table frame, set its type, and revoke its
  // writable direct-map mapping. Protection must precede validation so the
  // "no writable mapping of a PT frame" rule holds when pass 2 checks it.
  const auto tables = collect_tables(k);
  adopt_protect_shard(cpu, d.id(), k, tables, HvFaultPoint::kAdoptProtect);
  // One shootdown closes the batch of flips; protection must be globally
  // effective before validation checks it.
  if (!tables.empty()) tlb_shootdown_all(cpu);
  // Pass 2: validate (L1s first, then L2s whose entries require L1 typing).
  adopt_validate_shard(cpu, d.id(), tables, PageType::kL1);
  adopt_validate_shard(cpu, d.id(), tables, PageType::kL2);
}

void Hypervisor::type_and_protect_tables_warm(
    hw::Cpu& cpu, Domain& d, Kernel& k,
    std::span<const hw::Pfn> content_dirty) {
  MERC_SPAN(cpu, kVmm, "vmm.type_and_protect_warm");
  // Protection is enforcement: every current table is typed, pinned, and
  // write-revoked, exactly as cold. (The pass also re-canonicalizes the
  // type/pin fields the dirty rebuild reset, so the resulting table is
  // byte-identical to a cold one.)
  const auto tables = collect_tables(k);
  adopt_protect_shard(cpu, d.id(), k, tables, HvFaultPoint::kAdoptProtect);
  if (!tables.empty()) tlb_shootdown_all(cpu);
  // Revalidation is limited to tables whose contents were written while the
  // VMM was away: the others still hold exactly the PTEs verified before
  // the detach (PTE writes while attached are trapped and checked inline,
  // so every table was clean at release). Any write — kernel PTE update,
  // MMU A/D write-back, or tampering — lands a frame in `content_dirty`.
  std::vector<std::pair<hw::Pfn, PageType>> stale;
  stale.reserve(content_dirty.size());
  for (const auto& t : tables)
    if (std::binary_search(content_dirty.begin(), content_dirty.end(), t.first))
      stale.push_back(t);
  adopt_validate_shard(cpu, d.id(), stale, PageType::kL1);
  adopt_validate_shard(cpu, d.id(), stale, PageType::kL2);
  MERC_COUNT_N("vmm.page_info.tables_revalidated", stale.size());
  MERC_COUNT_N("vmm.page_info.table_validations_skipped",
               tables.size() - stale.size());
}

void Hypervisor::unprotect_tables(hw::Cpu& cpu, Kernel& k) {
  const std::vector<hw::Pfn> frames = protected_frames_snapshot();
  release_unprotect_shard(cpu, k, frames, HvFaultPoint::kReleaseUnprotect);
  if (!frames.empty()) tlb_shootdown_all(cpu);
  MERC_CHECK(protected_frames_.empty());
}

void Hypervisor::forget_frame_range(hw::Pfn first, std::size_t count) {
  // Frames are leaving this machine: retained accounting is stale.
  page_info_.poison_retention();
  for (auto it = protected_frames_.begin(); it != protected_frames_.end();) {
    if (*it >= first && *it < first + count)
      it = protected_frames_.erase(it);
    else
      ++it;
  }
}

void Hypervisor::set_frame_writable(hw::Cpu& cpu, Kernel& k, hw::Pfn pfn,
                                    bool writable) {
  // Total cost stays kPerPtWritabilityFlip: the batched rewrite plus the
  // per-page shootdown that batching elides.
  cpu.charge(pv::costs::kPerPtWritabilityFlip - pv::costs::kPerPtBatchFlip);
  set_frame_writable_batched(cpu, k, pfn, writable);
  // Direct-map entries are global: purge any cached translation, one
  // cross-CPU round for this page.
  for (std::size_t c = 0; c < machine_.num_cpus(); ++c)
    machine_.cpu(c).tlb().flush_page(hw::vpn_of(k.kva_of_frame(pfn)));
}

void Hypervisor::set_frame_writable_batched(hw::Cpu& cpu, Kernel& k,
                                            hw::Pfn pfn, bool writable) {
  cpu.charge(pv::costs::kPerPtBatchFlip);
  MERC_COUNT("vmm.pt_protection_flips");
  const std::size_t idx = pfn - k.base_pfn();
  const auto& l1s = k.kernel_l1_frames();
  const std::size_t table = idx / hw::kPtEntries;
  MERC_CHECK_MSG(table < l1s.size(), "frame outside kernel direct map");
  const hw::PhysAddr pte_addr =
      hw::addr_of(l1s[table]) + (idx % hw::kPtEntries) * 4;
  hw::Pte pte{machine_.memory().read_u32(pte_addr)};
  MERC_CHECK(pte.present());
  pte.set_flag(hw::Pte::kWritable, writable);
  machine_.memory().write_u32(pte_addr, pte.raw);
  if (writable)
    protected_frames_.erase(pfn);
  else
    protected_frames_.insert(pfn);
}

void Hypervisor::tlb_shootdown_all(hw::Cpu& cpu) {
  [[maybe_unused]] const hw::Cycles begin = cpu.now();
  cpu.charge(pv::costs::kTlbBatchShootdown);
  MERC_COUNT("vmm.tlb_batch_shootdowns");
  // The batch boundary stalls the issuing CPU for the whole shootdown
  // window (the remote flushes are free on this model — their cost is
  // folded into the batch charge), so the pause lands on the issuer.
  MERC_PAUSE(kTlbShootdown, static_cast<std::uint32_t>(cpu.id()), begin,
             cpu.now(), "vmm.tlb_shootdown_all");
  for (std::size_t c = 0; c < machine_.num_cpus(); ++c)
    machine_.cpu(c).tlb().flush_all();
}

DomainId Hypervisor::adopt_running_os(hw::Cpu& cpu, Kernel& k,
                                      bool trust_page_info) {
  const DomainId id = begin_adopt(k);
  MERC_SPAN(cpu, kVmm, "vmm.adopt_running_os");
  Domain& d = domain(id);
  if (!trust_page_info) {
    rebuild_page_info(cpu, d);
  } else {
    MERC_CHECK_MSG(page_info_.valid(),
                   "eager attach without a primed page-info table");
    adopt_trusted_sweep_shard(cpu, k.pool().owned_count());
  }
  type_and_protect_tables(cpu, d, k);
  finish_adopt(id, k);
  return id;
}

DomainId Hypervisor::adopt_running_os_warm(hw::Cpu& cpu, Kernel& k,
                                           std::span<const hw::Pfn> dirty,
                                           std::span<const hw::Pfn> content_dirty) {
  const DomainId id = begin_adopt(k);
  MERC_SPAN(cpu, kVmm, "vmm.adopt_running_os_warm");
  MERC_CHECK_MSG(page_info_.retained(),
                 "warm adopt without a retained page-info table");
  MERC_SPAN(cpu, kVmm, "vmm.rebuild_page_info_dirty");
  // The reserved region is re-canonicalized exactly as the cold path does
  // (CP-side, uncharged); the per-frame cost is paid only for the dirty set.
  init_reserved_page_info();
  adopt_dirty_rebuild_shard(cpu, id, dirty);
  MERC_COUNT_N("vmm.page_info.frames_reconstructed", dirty.size());
  // Typing and protection run in full (enforcement covers every table);
  // PTE revalidation is limited to content-dirty tables.
  type_and_protect_tables_warm(cpu, domain(id), k, content_dirty);
  finish_adopt(id, k);
  return id;
}

void Hypervisor::release_os(hw::Cpu& cpu, DomainId id, bool retain_page_info) {
  begin_release(id);
  MERC_SPAN(cpu, kVmm, "vmm.release_os");
  Kernel* k = domain(id).guest();
  unprotect_tables(cpu, *k);
  finish_release(retain_page_info);
}

void Hypervisor::rollback_adopt(hw::Cpu& cpu, Kernel& k, bool keep_page_info) {
  ++stats_.adopt_rollbacks;
  MERC_COUNT("vmm.adopt_rollbacks");
  MERC_SPAN(cpu, kFault, "vmm.rollback_adopt");
  // Restore writability of everything the aborted adopt protected. The
  // per-frame probe must not re-fire here (the injector is single-shot);
  // set_frame_writable re-derives the direct-map PTE, so a frame protected
  // before the fault and one never reached are both handled.
  for (const hw::Pfn pfn : std::vector<hw::Pfn>(protected_frames_.begin(),
                                                protected_frames_.end()))
    set_frame_writable(cpu, k, pfn, true);
  // Lazy tracking: the half-built table is garbage, exactly as before the
  // attach began. Eager tracking: the tracker's table was authoritative
  // going in and keeps being maintained from native mode, so it stays valid.
  page_info_.set_valid(keep_page_info);
  state_ = State::kDormant;
  for (auto& gb : guest_on_cpu_)
    if (gb.kernel == &k) gb = GuestBinding{};
  machine_.install_trap_sink(&k);
}

void Hypervisor::reprotect_os(hw::Cpu& cpu, DomainId id, Kernel& k) {
  MERC_CHECK_MSG(state_ == State::kActive, "reprotect while not active");
  ++stats_.reprotects;
  MERC_COUNT("vmm.reprotects");
  MERC_SPAN(cpu, kFault, "vmm.reprotect_os");
  // A detach fault left some page tables writable; re-running the protect
  // pass re-discovers every table, re-protects the unwound ones (already
  // protected frames are flipped to the same value), and re-validates.
  type_and_protect_tables(cpu, domain(id), k);
  for (std::size_t c = 0; c < machine_.num_cpus(); ++c)
    set_guest_on_cpu(static_cast<std::uint32_t>(c), &k, id);
  take_traps();
}

void Hypervisor::take_traps() { machine_.install_trap_sink(this); }

void Hypervisor::bootstrap_activate() {
  MERC_CHECK_MSG(state_ == State::kDormant, "bootstrap_activate needs warm_up");
  page_info_.poison_retention();
  state_ = State::kActive;
  for (std::size_t i = 0; i < reserved_count_; ++i) {
    PageInfo& pi = page_info_.at(reserved_first_ + static_cast<hw::Pfn>(i));
    pi = PageInfo{kDomHypervisor, PageType::kWritable, 0, 1, false};
  }
  page_info_.set_valid(true);
  take_traps();
}

void Hypervisor::init_domain_memory(Domain& d) {
  // Boot-time initialization of a freshly built domain's frames (no charge:
  // domain construction is off every measured path). Rewrites ownership, so
  // any retained table is stale from here on.
  page_info_.poison_retention();
  for (std::size_t i = 0; i < d.frame_count(); ++i) {
    PageInfo& pi = page_info_.at(d.first_frame() + static_cast<hw::Pfn>(i));
    pi = PageInfo{d.id(), PageType::kWritable, 0, 1, false};
  }
}

bool Hypervisor::validate_update(Domain& d, hw::PhysAddr pte_addr, hw::Pte value,
                                 std::string* why) {
  const hw::Pfn container = hw::pfn_of(pte_addr);
  if (container >= page_info_.size()) {
    if (why) *why = "table update outside physical memory";
    return false;
  }
  const PageInfo& ci = page_info_.at(container);
  if (ci.owner != d.id()) {
    if (why) *why = "table update in a frame not owned by the domain";
    return false;
  }
  if (ci.type == PageType::kL1) return pte_value_ok(d, value, why);
  if (ci.type == PageType::kL2) {
    if (!value.present()) return true;
    const std::uint32_t index =
        static_cast<std::uint32_t>((pte_addr % hw::kPageSize) / 4);
    if (index >= hw::pde_index(kernel::kVmmBase)) {
      if (why) *why = "guest rewrote a reserved VMM PDE";
      return false;
    }
    const hw::Pfn l1 = value.pfn();
    if (l1 >= page_info_.size() || page_info_.at(l1).type != PageType::kL1 ||
        page_info_.at(l1).owner != d.id()) {
      if (why) *why = "PDE references a frame not validated as L1";
      return false;
    }
    return true;
  }
  if (why) *why = "update of a frame that is not a page table";
  return false;
}

// --- trap routing -----------------------------------------------------------------

void Hypervisor::on_trap(hw::Cpu& cpu, const hw::TrapInfo& info) {
  ++stats_.traps_dispatched;
  cpu.charge(pv::costs::kVmmTrapDispatch);
  const GuestBinding& gb = guest_on_cpu_[cpu.id()];
  MERC_CHECK_MSG(gb.kernel != nullptr,
                 "trap with no guest bound on cpu " << cpu.id() << ": "
                                                    << info.detail);
  // Bounce into the guest kernel's handler at its (deprivileged) ring; the
  // return path costs an iret hypercall on x86-32.
  cpu.charge(pv::costs::kVmmBounceToGuest);
  gb.kernel->guest_trap(cpu, info);
  cpu.charge(pv::costs::kVmmGuestIret);
}

}  // namespace mercury::vmm
