// Shared-memory I/O rings: the request/response conveyor between split
// frontend and backend drivers (Xen's blkif/netif rings).
//
// Header-only template; produce/consume charge the slot-handling cost.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "hw/cpu.hpp"
#include "pv/costs.hpp"
#include "util/assert.hpp"

namespace mercury::vmm {

template <typename Req, typename Resp>
class IoRing {
 public:
  explicit IoRing(std::size_t slots = 32) : slots_(slots) {}

  bool full() const { return requests_.size() >= slots_; }
  bool has_request() const { return !requests_.empty(); }
  bool has_response() const { return !responses_.empty(); }
  std::size_t slots() const { return slots_; }

  /// Frontend: enqueue a request. Returns false when the ring is full (the
  /// frontend must wait for the backend to drain).
  bool push_request(hw::Cpu& cpu, Req r) {
    if (full()) return false;
    cpu.charge(pv::costs::kRingSlotWork);
    requests_.push_back(std::move(r));
    ++produced_;
    return true;
  }

  /// Backend: take the next request.
  std::optional<Req> pop_request(hw::Cpu& cpu) {
    if (requests_.empty()) return std::nullopt;
    cpu.charge(pv::costs::kRingSlotWork / 2);
    Req r = std::move(requests_.front());
    requests_.pop_front();
    return r;
  }

  /// Backend: publish a response.
  void push_response(hw::Cpu& cpu, Resp r) {
    cpu.charge(pv::costs::kRingSlotWork / 2);
    responses_.push_back(std::move(r));
  }

  /// Frontend: collect a response.
  std::optional<Resp> pop_response(hw::Cpu& cpu) {
    if (responses_.empty()) return std::nullopt;
    cpu.charge(pv::costs::kRingSlotWork / 2);
    Resp r = std::move(responses_.front());
    responses_.pop_front();
    return r;
  }

  std::uint64_t produced() const { return produced_; }

 private:
  std::size_t slots_;
  std::deque<Req> requests_;
  std::deque<Resp> responses_;
  std::uint64_t produced_ = 0;
};

}  // namespace mercury::vmm
