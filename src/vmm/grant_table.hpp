// Grant tables: controlled page sharing between domains (the mechanism under
// split-driver I/O buffers).
#pragma once

#include <cstdint>
#include <vector>

#include "hw/cpu.hpp"
#include "hw/types.hpp"
#include "vmm/page_info.hpp"

namespace mercury::vmm {

class GrantTable {
 public:
  struct Grant {
    DomainId owner = kDomInvalid;
    DomainId grantee = kDomInvalid;
    hw::Pfn frame = 0;
    bool readonly = false;
    bool active = false;  // created and not yet ended
    bool mapped = false;  // grantee currently has it mapped
  };

  /// Owner offers `frame` to `grantee`; returns a grant reference.
  int grant(DomainId owner, hw::Pfn frame, DomainId grantee, bool readonly);

  /// Grantee maps the granted frame (charges the map cost). Returns the
  /// frame, or fails the invariant if the reference is bogus/foreign.
  hw::Pfn map(hw::Cpu& cpu, DomainId grantee, int ref);
  void unmap(hw::Cpu& cpu, DomainId grantee, int ref);

  /// Owner revokes; must not be mapped.
  void end(DomainId owner, int ref);

  const Grant& entry(int ref) const;
  std::size_t active_grants() const;
  std::uint64_t maps_performed() const { return maps_; }

 private:
  std::vector<Grant> grants_;
  std::uint64_t maps_ = 0;
};

}  // namespace mercury::vmm
