// Split network driver: domU packets traverse frontend ring -> grant copy ->
// backend in the driver domain -> real NIC (and the reverse for receive).
// The per-packet copy + event cost is what makes domU networking CPU-bound
// (paper Fig.3/4: iperf -60..70% in domainU).
#pragma once

#include <cstdint>
#include <optional>

#include "hw/cpu.hpp"
#include "hw/machine.hpp"
#include "vmm/event_channel.hpp"
#include "vmm/grant_table.hpp"
#include "vmm/ring.hpp"

namespace mercury::vmm {

struct NetTxRequest {
  int grant_ref = -1;
  std::size_t bytes = 0;
};
struct NetTxResponse {
  bool ok = true;
};

class NetBackend {
 public:
  NetBackend(hw::Machine& machine, EventChannels& evtchn, GrantTable& gnttab,
             DomainId driver_domain);

  void connect_frontend(DomainId domU);
  bool connected() const { return frontend_ != kDomInvalid; }
  void disconnect_frontend();

  /// Frontend transmit: full split path, charged on the calling CPU.
  void tx(hw::Cpu& cpu, hw::Packet pkt);

  /// Frontend receive: backend pulls from the real NIC, copies into a
  /// granted guest buffer. Returns nullopt when nothing is pending.
  std::optional<hw::Packet> rx_poll(hw::Cpu& cpu);

  std::uint64_t packets_tx() const { return tx_count_; }
  std::uint64_t packets_rx() const { return rx_count_; }

 private:
  hw::Machine& machine_;
  EventChannels& evtchn_;
  GrantTable& gnttab_;
  DomainId driver_domain_;
  DomainId frontend_ = kDomInvalid;
  IoRing<NetTxRequest, NetTxResponse> tx_ring_;
  int tx_port_ = -1;
  int rx_port_ = -1;
  std::uint64_t tx_count_ = 0;
  std::uint64_t rx_count_ = 0;
};

}  // namespace mercury::vmm
