#include "vmm/grant_table.hpp"

#include "pv/costs.hpp"
#include "util/assert.hpp"

namespace mercury::vmm {

int GrantTable::grant(DomainId owner, hw::Pfn frame, DomainId grantee,
                      bool readonly) {
  for (std::size_t i = 0; i < grants_.size(); ++i) {
    if (!grants_[i].active) {
      grants_[i] = Grant{owner, grantee, frame, readonly, true, false};
      return static_cast<int>(i);
    }
  }
  grants_.push_back(Grant{owner, grantee, frame, readonly, true, false});
  return static_cast<int>(grants_.size() - 1);
}

hw::Pfn GrantTable::map(hw::Cpu& cpu, DomainId grantee, int ref) {
  MERC_CHECK(ref >= 0 && static_cast<std::size_t>(ref) < grants_.size());
  Grant& g = grants_[ref];
  MERC_CHECK_MSG(g.active, "map of inactive grant " << ref);
  MERC_CHECK_MSG(g.grantee == grantee,
                 "grant " << ref << " mapped by wrong domain " << grantee);
  cpu.charge(pv::costs::kGrantMapPerPage);
  g.mapped = true;
  ++maps_;
  return g.frame;
}

void GrantTable::unmap(hw::Cpu& cpu, DomainId grantee, int ref) {
  MERC_CHECK(ref >= 0 && static_cast<std::size_t>(ref) < grants_.size());
  Grant& g = grants_[ref];
  MERC_CHECK(g.active && g.grantee == grantee && g.mapped);
  cpu.charge(pv::costs::kGrantMapPerPage / 3);
  g.mapped = false;
}

void GrantTable::end(DomainId owner, int ref) {
  MERC_CHECK(ref >= 0 && static_cast<std::size_t>(ref) < grants_.size());
  Grant& g = grants_[ref];
  MERC_CHECK_MSG(g.active && g.owner == owner, "bad grant end");
  MERC_CHECK_MSG(!g.mapped, "ending a mapped grant");
  g.active = false;
}

const GrantTable::Grant& GrantTable::entry(int ref) const {
  MERC_CHECK(ref >= 0 && static_cast<std::size_t>(ref) < grants_.size());
  return grants_[ref];
}

std::size_t GrantTable::active_grants() const {
  std::size_t n = 0;
  for (const auto& g : grants_)
    if (g.active) ++n;
  return n;
}

}  // namespace mercury::vmm
