#include "vmm/migrate.hpp"

#include <vector>

#include "hw/costs.hpp"
#include "kernel/kernel.hpp"
#include "pv/costs.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mercury::vmm {

namespace {

/// Ship one frame's contents src->dst: map + copy on the source, wire time,
/// and the write on the destination image.
void send_frame(hw::Cpu& scpu, hw::Machine& src_m, hw::Machine& dst_m,
                hw::Pfn src_pfn, hw::Pfn dst_pfn, hw::Cycles wire_per_page) {
  scpu.charge(hw::costs::kPageCopy + pv::costs::kGrantMapPerPage / 2);
  scpu.charge(wire_per_page);
  std::vector<std::uint8_t> buf(hw::kPageSize);
  src_m.memory().read_bytes(hw::addr_of(src_pfn), buf);
  dst_m.memory().write_bytes(hw::addr_of(dst_pfn), buf);
}

}  // namespace

MigrationStats LiveMigration::run(Hypervisor& src, DomainId dom, Hypervisor& dst,
                                  const MigrationConfig& config) {
  MigrationStats stats;
  Domain& d = src.domain(dom);
  kernel::Kernel* guest = d.guest();
  MERC_CHECK_MSG(guest != nullptr, "migrating a domain with no guest kernel");
  hw::Machine& src_m = src.machine();
  hw::Machine& dst_m = dst.machine();
  hw::Cpu& scpu = src_m.cpu(0);
  const hw::Cycles t0 = scpu.now();

  // Reserve the target region.
  hw::Pfn new_base = 0;
  if (!dst_m.frames().alloc_contiguous(d.frame_count(), new_base)) {
    util::log_warn("migrate", "target cannot host domain: no contiguous region");
    return stats;
  }
  const hw::Pfn old_base = d.first_frame();
  stats.pages_total = d.frame_count();

  // Round 0: full copy with log-dirty armed.
  d.set_log_dirty(true);
  for (std::size_t i = 0; i < d.frame_count(); ++i) {
    send_frame(scpu, src_m, dst_m, old_base + static_cast<hw::Pfn>(i),
               new_base + static_cast<hw::Pfn>(i), config.wire_cycles_per_page);
    ++stats.pages_sent;
  }
  stats.rounds = 1;

  // Iterative pre-copy: let the guest run, harvest what it dirtied, resend.
  while (stats.rounds < config.max_rounds) {
    guest->run_for(config.guest_run_per_round);
    // Page-table-visible dirty bits (hardware-set) join the log-dirty set.
    guest->for_each_task([&](kernel::Task& t) {
      if (!t.aspace) return;
      std::vector<hw::Pfn> dirty_pfns;
      t.aspace->collect_and_clear_dirty(scpu, &dirty_pfns);
      for (const hw::Pfn pfn : dirty_pfns) d.mark_dirty(pfn);
    });
    const std::vector<hw::Pfn> dirty = d.harvest_dirty();
    if (dirty.size() <= config.stop_threshold_pages) break;
    for (const hw::Pfn pfn : dirty) {
      send_frame(scpu, src_m, dst_m, pfn, new_base + (pfn - old_base),
                 config.wire_cycles_per_page);
      ++stats.pages_sent;
    }
    ++stats.rounds;
  }

  // Stop-and-copy: the guest is frozen from here (downtime).
  const hw::Cycles down0 = scpu.now();
  const std::vector<hw::Pfn> residue = d.harvest_dirty();
  for (const hw::Pfn pfn : residue) {
    send_frame(scpu, src_m, dst_m, pfn, new_base + (pfn - old_base),
               config.wire_cycles_per_page);
    ++stats.pages_sent;
  }
  // Vcpu state + device model handover.
  scpu.charge(20 * hw::kCyclesPerMicrosecond);
  d.set_log_dirty(false);

  // Target side: admit the guest as a new unprivileged domain and rewire it.
  hw::Cpu& dcpu = dst_m.cpu(0);
  dcpu.advance_to(scpu.now());
  guest->migrate_to(dst_m, new_base, dst.vmm_pdes());
  const DomainId new_dom = dst.create_domain(
      guest->name() + "-migrated", guest, new_base, d.frame_count(),
      /*privileged=*/false, dst_m.num_cpus());
  Domain& nd = dst.domain(new_dom);
  dst.rebuild_page_info(dcpu, nd);
  dst.type_and_protect_tables(dcpu, nd, *guest);
  dst.page_info().set_valid(true);
  for (std::size_t c = 0; c < dst_m.num_cpus(); ++c)
    dst.set_guest_on_cpu(static_cast<std::uint32_t>(c), guest, new_dom);
  // Split drivers: the network frontend reconnects on the target *after*
  // migration (paper §5.2); disks ride on networked storage.
  dst.net_backend().disconnect_frontend();
  dst.net_backend().connect_frontend(new_dom);
  dst.blk_backend().disconnect_frontend(dcpu);
  dst.blk_backend().connect_frontend(new_dom);

  // The hypervisor owns the hardware descriptor tables on the target.
  for (std::size_t c = 0; c < dst_m.num_cpus(); ++c) {
    hw::Cpu& cpu = dst_m.cpu(c);
    const hw::Ring prev = cpu.cpl();
    cpu.set_cpl(hw::Ring::kRing0);
    cpu.load_idt(dst.idt_token());
    cpu.load_gdt(dst.gdt_token());
    cpu.set_cpl(prev);
  }

  stats.new_domain = new_dom;
  stats.downtime_cycles = scpu.now() - down0;
  stats.total_cycles = scpu.now() - t0;
  stats.success = true;

  // Source side: the frames are returned and the domain record removed.
  src.forget_frame_range(old_base, d.frame_count());
  for (std::size_t i = 0; i < d.frame_count(); ++i)
    src_m.frames().free(old_base + static_cast<hw::Pfn>(i));
  src.destroy_domain(dom);
  return stats;
}

}  // namespace mercury::vmm
