#include "vmm/event_channel.hpp"

#include "pv/costs.hpp"
#include "util/assert.hpp"

namespace mercury::vmm {

int EventChannels::alloc(DomainId from, DomainId to, Handler handler) {
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    if (!channels_[i].open) {
      channels_[i] = Channel{from, to, std::move(handler), false, true, 0};
      return static_cast<int>(i);
    }
  }
  channels_.push_back(Channel{from, to, std::move(handler), false, true, 0});
  return static_cast<int>(channels_.size() - 1);
}

void EventChannels::close(int port) {
  MERC_CHECK(port >= 0 && static_cast<std::size_t>(port) < channels_.size());
  channels_[port] = Channel{};
}

void EventChannels::notify(hw::Cpu& cpu, int port) {
  MERC_CHECK(port >= 0 && static_cast<std::size_t>(port) < channels_.size());
  Channel& ch = channels_[port];
  MERC_CHECK_MSG(ch.open, "notify on closed event channel " << port);
  cpu.charge(pv::costs::kEventChannelSend);
  ++ch.notifications;
  ++total_;
  if (ch.handler)
    ch.handler(cpu);
  else
    ch.pending = true;
}

bool EventChannels::pending(int port) const {
  MERC_CHECK(port >= 0 && static_cast<std::size_t>(port) < channels_.size());
  return channels_[port].pending;
}

bool EventChannels::take_pending(int port) {
  MERC_CHECK(port >= 0 && static_cast<std::size_t>(port) < channels_.size());
  const bool was = channels_[port].pending;
  channels_[port].pending = false;
  return was;
}

const EventChannels::Channel& EventChannels::channel(int port) const {
  MERC_CHECK(port >= 0 && static_cast<std::size_t>(port) < channels_.size());
  return channels_[port];
}

std::size_t EventChannels::open_channels() const {
  std::size_t n = 0;
  for (const auto& ch : channels_)
    if (ch.open) ++n;
  return n;
}

}  // namespace mercury::vmm
