// Per-frame owner/type/count accounting — the heart of Xen-style memory
// isolation, and the state Mercury must reconstruct when attaching the
// pre-cached VMM (paper §5.1.2: "recalculate the type and count information
// for all page frames ... accounts for the major time to commit a switch").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hw/types.hpp"

namespace mercury::vmm {

using DomainId = std::int16_t;
inline constexpr DomainId kDomInvalid = -1;
inline constexpr DomainId kDomHypervisor = -2;

enum class PageType : std::uint8_t {
  kNone,      // untracked / free
  kWritable,  // plain RAM, guest-writable
  kL1,        // validated level-1 page table
  kL2,        // validated level-2 page table (page directory)
};

const char* page_type_name(PageType t);

struct PageInfo {
  DomainId owner = kDomInvalid;
  PageType type = PageType::kNone;
  std::uint32_t type_count = 0;  // references under this type (pins, CR3 loads)
  std::uint32_t ref_count = 0;   // general references (mappings)
  bool pinned = false;
};

class PageInfoTable {
 public:
  explicit PageInfoTable(std::size_t total_frames);

  PageInfo& at(hw::Pfn pfn);
  const PageInfo& at(hw::Pfn pfn) const;
  std::size_t size() const { return info_.size(); }

  // --- sharded internals (parallel switch pipeline) ---
  //
  // The frame space is split into fixed-size shards, each with its own
  // cache-line-padded accounting block. Crew workers rebuilding disjoint
  // frame ranges during an attach therefore never write the same line: the
  // per-frame PageInfo entries they touch are range-disjoint by
  // construction (the crew hands out non-overlapping ranges), and the
  // counters they bump live in their own shard's padded block. The padding
  // is what makes the concurrent-rebuild story safe without a lock per
  // update; the host-side simulator executes shards one at a time, so the
  // shard blocks double as exact per-range telemetry.

  /// Frames per shard (16 MB of physical memory at 4 KB pages).
  static constexpr std::size_t kFramesPerShard = 4096;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_of(hw::Pfn pfn) const { return pfn / kFramesPerShard; }

  /// Per-shard accounting bumped by the adopt/release paths.
  struct ShardCounters {
    std::uint64_t rebuilt = 0;  // frames reset by the adopt-time rebuild
    std::uint64_t typed = 0;    // page-table frames typed + protected
  };
  const ShardCounters& shard_counters(std::size_t shard) const;
  void note_rebuilt(hw::Pfn pfn) { ++shards_[shard_of(pfn)].counters.rebuilt; }
  void note_typed(hw::Pfn pfn) { ++shards_[shard_of(pfn)].counters.typed; }
  std::uint64_t rebuilt_total() const;
  std::uint64_t typed_total() const;
  /// Zero every shard's counters (start of an adopt episode).
  void reset_shard_counters();

  /// Whether the table currently reflects reality. When the VMM is dormant
  /// (Mercury native mode, lazy tracking) the table is stale and must be
  /// rebuilt before enforcement resumes.
  bool valid() const { return valid_; }
  void set_valid(bool v) { valid_ = v; }

  /// Forget everything (cheap: used at VMM detach — the expensive direction
  /// is the rebuild, not the teardown).
  void invalidate_all();

  /// Structural self-check: every pinned table is typed as a table, counts
  /// are non-zero where pinned, owners set where typed. Returns an error
  /// description, or nullopt if consistent.
  std::optional<std::string> check_invariants() const;

  /// Snapshot for equivalence tests (eager tracking vs rebuild).
  std::vector<PageInfo> snapshot() const { return info_; }

 private:
  /// One cache line per shard: two workers bumping counters for different
  /// frame ranges never share a line (no false sharing on the hot rebuild).
  struct alignas(64) Shard {
    ShardCounters counters;
  };

  std::vector<PageInfo> info_;
  std::vector<Shard> shards_;
  bool valid_ = false;
};

}  // namespace mercury::vmm
