// Per-frame owner/type/count accounting — the heart of Xen-style memory
// isolation, and the state Mercury must reconstruct when attaching the
// pre-cached VMM (paper §5.1.2: "recalculate the type and count information
// for all page frames ... accounts for the major time to commit a switch").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hw/types.hpp"

namespace mercury::vmm {

using DomainId = std::int16_t;
inline constexpr DomainId kDomInvalid = -1;
inline constexpr DomainId kDomHypervisor = -2;

enum class PageType : std::uint8_t {
  kNone,      // untracked / free
  kWritable,  // plain RAM, guest-writable
  kL1,        // validated level-1 page table
  kL2,        // validated level-2 page table (page directory)
};

const char* page_type_name(PageType t);

struct PageInfo {
  DomainId owner = kDomInvalid;
  PageType type = PageType::kNone;
  std::uint32_t type_count = 0;  // references under this type (pins, CR3 loads)
  std::uint32_t ref_count = 0;   // general references (mappings)
  bool pinned = false;

  // Field-wise equality (not memcmp: the struct has padding) — the warm
  // re-attach differential harness compares tables entry by entry.
  friend constexpr bool operator==(const PageInfo&, const PageInfo&) = default;
};

class PageInfoTable {
 public:
  explicit PageInfoTable(std::size_t total_frames);

  PageInfo& at(hw::Pfn pfn);
  const PageInfo& at(hw::Pfn pfn) const;
  std::size_t size() const { return info_.size(); }

  // --- sharded internals (parallel switch pipeline) ---
  //
  // The frame space is split into fixed-size shards, each with its own
  // cache-line-padded accounting block. Crew workers rebuilding disjoint
  // frame ranges during an attach therefore never write the same line: the
  // per-frame PageInfo entries they touch are range-disjoint by
  // construction (the crew hands out non-overlapping ranges), and the
  // counters they bump live in their own shard's padded block. The padding
  // is what makes the concurrent-rebuild story safe without a lock per
  // update; the host-side simulator executes shards one at a time, so the
  // shard blocks double as exact per-range telemetry.

  /// Frames per shard (16 MB of physical memory at 4 KB pages).
  static constexpr std::size_t kFramesPerShard = 4096;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_of(hw::Pfn pfn) const { return pfn / kFramesPerShard; }

  /// Per-shard accounting bumped by the adopt/release paths.
  struct ShardCounters {
    std::uint64_t rebuilt = 0;  // frames reset by the adopt-time rebuild
    std::uint64_t typed = 0;    // page-table frames typed + protected
  };
  const ShardCounters& shard_counters(std::size_t shard) const;
  void note_rebuilt(hw::Pfn pfn) { ++shards_[shard_of(pfn)].counters.rebuilt; }
  /// A warm (dirty-set) reconstruction touched this frame: count it as
  /// rebuilt and stamp its shard with the current rebuild epoch, marking
  /// the shard as revalidated-this-attach. Shards whose stamp lags the
  /// epoch carried every entry over from the retained table untouched.
  void note_dirty_rebuilt(hw::Pfn pfn) {
    Shard& s = shards_[shard_of(pfn)];
    ++s.counters.rebuilt;
    s.dirty_epoch = epoch_;
  }
  void note_typed(hw::Pfn pfn) { ++shards_[shard_of(pfn)].counters.typed; }
  std::uint64_t rebuilt_total() const;
  std::uint64_t typed_total() const;
  /// Zero every shard's counters (start of an adopt episode).
  void reset_shard_counters();

  /// Whether the table currently reflects reality. When the VMM is dormant
  /// (Mercury native mode, lazy tracking) the table is stale and must be
  /// rebuilt before enforcement resumes.
  bool valid() const { return valid_; }
  void set_valid(bool v) { valid_ = v; }

  /// Forget everything (cheap: used at VMM detach — the expensive direction
  /// is the rebuild, not the teardown).
  void invalidate_all();

  // --- warm re-attach retention ---
  //
  // invalidate_all() is O(1) and never wipes entry contents, so a detach
  // can leave the table "stale but retained": invalid for enforcement, but
  // a usable base for an incremental rebuild that revalidates only the
  // frames dirtied while native. `retained` asserts that the entries still
  // describe the machine as of the last detach; any ownership-level
  // mutation while dormant (domain create/destroy, migration remaps)
  // poisons the retention and forces the next attach down the cold path.

  bool retained() const { return retained_; }
  void set_retained(bool r) { retained_ = r; }
  /// Retained entries no longer describe the machine: next attach goes cold.
  void poison_retention() { retained_ = false; }

  /// Monotonic rebuild-episode counter. Bumped at the start of every adopt
  /// rebuild (cold or warm); per-shard dirty stamps are compared against it
  /// to tell revalidated shards from carried-over ones.
  std::uint64_t epoch() const { return epoch_; }
  void begin_rebuild_epoch() { ++epoch_; }

  /// Shards the last warm rebuild carried over untouched (stamp < epoch).
  std::size_t shards_carried_over() const;

  /// Structural self-check: every pinned table is typed as a table, counts
  /// are non-zero where pinned, owners set where typed. Returns an error
  /// description, or nullopt if consistent.
  std::optional<std::string> check_invariants() const;

  /// Snapshot for equivalence tests (eager tracking vs rebuild).
  std::vector<PageInfo> snapshot() const { return info_; }

 private:
  /// One cache line per shard: two workers bumping counters for different
  /// frame ranges never share a line (no false sharing on the hot rebuild).
  struct alignas(64) Shard {
    ShardCounters counters;
    std::uint64_t dirty_epoch = 0;  // last rebuild epoch that touched this shard
  };

  std::vector<PageInfo> info_;
  std::vector<Shard> shards_;
  bool valid_ = false;
  bool retained_ = false;
  std::uint64_t epoch_ = 0;
};

}  // namespace mercury::vmm
