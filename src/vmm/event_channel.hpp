// Event channels: Xen's asynchronous notification primitive (virtual IRQs,
// inter-domain signals, split-driver doorbells).
//
// In the synchronous backend model the notify either invokes the bound
// handler immediately (inter-domain service call, charging the full
// notification price) or latches a pending bit the guest drains later.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hw/cpu.hpp"
#include "vmm/page_info.hpp"

namespace mercury::vmm {

class EventChannels {
 public:
  using Handler = std::function<void(hw::Cpu&)>;

  struct Channel {
    DomainId from = kDomInvalid;
    DomainId to = kDomInvalid;
    Handler handler;       // invoked on notify (may be empty)
    bool pending = false;  // latched when no handler
    bool open = false;
    std::uint64_t notifications = 0;
  };

  /// Allocate an inter-domain channel; returns the port number.
  int alloc(DomainId from, DomainId to, Handler handler = {});
  void close(int port);

  /// Notify: charges the event-channel cost and either dispatches the
  /// handler or latches the pending bit.
  void notify(hw::Cpu& cpu, int port);

  bool pending(int port) const;
  /// Consume a pending latch; returns whether it was set.
  bool take_pending(int port);

  const Channel& channel(int port) const;
  std::size_t open_channels() const;
  std::uint64_t total_notifications() const { return total_; }

 private:
  std::vector<Channel> channels_;
  std::uint64_t total_ = 0;
};

}  // namespace mercury::vmm
