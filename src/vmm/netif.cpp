#include "vmm/netif.hpp"

#include "pv/costs.hpp"
#include "util/assert.hpp"

namespace mercury::vmm {

NetBackend::NetBackend(hw::Machine& machine, EventChannels& evtchn,
                       GrantTable& gnttab, DomainId driver_domain)
    : machine_(machine),
      evtchn_(evtchn),
      gnttab_(gnttab),
      driver_domain_(driver_domain) {}

void NetBackend::connect_frontend(DomainId domU) {
  frontend_ = domU;
  tx_port_ = evtchn_.alloc(domU, driver_domain_);
  rx_port_ = evtchn_.alloc(driver_domain_, domU);
}

void NetBackend::disconnect_frontend() {
  if (frontend_ == kDomInvalid) return;
  evtchn_.close(tx_port_);
  evtchn_.close(rx_port_);
  tx_port_ = rx_port_ = -1;
  frontend_ = kDomInvalid;
}

void NetBackend::tx(hw::Cpu& cpu, hw::Packet pkt) {
  MERC_CHECK_MSG(connected(), "netfront tx with no backend connection");
  ++tx_count_;
  // Frontend: grant the packet pages and queue.
  const std::size_t pages = 1 + pkt.payload_bytes / hw::kPageSize;
  const int ref = gnttab_.grant(frontend_, 0, driver_domain_, true);
  MERC_CHECK(tx_ring_.push_request(cpu, NetTxRequest{ref, pkt.payload_bytes}));
  evtchn_.notify(cpu, tx_port_);
  // Backend (inline on this CPU): map, copy, hand to the real driver.
  auto req = tx_ring_.pop_request(cpu);
  MERC_CHECK(req.has_value());
  gnttab_.map(cpu, driver_domain_, req->grant_ref);
  cpu.charge(pv::costs::kBackendCopyPerPage * pages);
  cpu.charge(machine_.nic().send(std::move(pkt), cpu.now()));
  gnttab_.unmap(cpu, driver_domain_, req->grant_ref);
  tx_ring_.push_response(cpu, NetTxResponse{});
  (void)tx_ring_.pop_response(cpu);
  gnttab_.end(frontend_, ref);
}

std::optional<hw::Packet> NetBackend::rx_poll(hw::Cpu& cpu) {
  MERC_CHECK_MSG(connected(), "netfront rx with no backend connection");
  auto pkt = machine_.nic().poll(cpu.now());
  if (!pkt) return std::nullopt;
  ++rx_count_;
  // Backend: real driver rx + copy into a granted guest buffer + event.
  cpu.charge(machine_.nic().rx_overhead());
  const std::size_t pages = 1 + pkt->payload_bytes / hw::kPageSize;
  const int ref = gnttab_.grant(frontend_, 0, driver_domain_, false);
  gnttab_.map(cpu, driver_domain_, ref);
  cpu.charge(pv::costs::kBackendCopyPerPage * pages);
  gnttab_.unmap(cpu, driver_domain_, ref);
  gnttab_.end(frontend_, ref);
  evtchn_.notify(cpu, rx_port_);
  (void)evtchn_.take_pending(rx_port_);
  return pkt;
}

}  // namespace mercury::vmm
