#include "vmm/page_info.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace mercury::vmm {

const char* page_type_name(PageType t) {
  switch (t) {
    case PageType::kNone: return "none";
    case PageType::kWritable: return "writable";
    case PageType::kL1: return "L1";
    case PageType::kL2: return "L2";
  }
  return "?";
}

PageInfoTable::PageInfoTable(std::size_t total_frames)
    : info_(total_frames),
      shards_((total_frames + kFramesPerShard - 1) / kFramesPerShard) {}

const PageInfoTable::ShardCounters& PageInfoTable::shard_counters(
    std::size_t shard) const {
  MERC_CHECK_MSG(shard < shards_.size(), "shard out of range: " << shard);
  return shards_[shard].counters;
}

std::uint64_t PageInfoTable::rebuilt_total() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) n += s.counters.rebuilt;
  return n;
}

std::uint64_t PageInfoTable::typed_total() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) n += s.counters.typed;
  return n;
}

void PageInfoTable::reset_shard_counters() {
  for (Shard& s : shards_) s.counters = ShardCounters{};
}

PageInfo& PageInfoTable::at(hw::Pfn pfn) {
  MERC_CHECK_MSG(pfn < info_.size(), "page info out of range: pfn " << pfn);
  return info_[pfn];
}

const PageInfo& PageInfoTable::at(hw::Pfn pfn) const {
  MERC_CHECK_MSG(pfn < info_.size(), "page info out of range: pfn " << pfn);
  return info_[pfn];
}

void PageInfoTable::invalidate_all() {
  // Deliberately O(1): entries are considered garbage while invalid; the
  // rebuild pass re-initializes them. Contents are left in place on purpose
  // — a retaining detach (warm re-attach) reads them back as the base for
  // an incremental rebuild.
  valid_ = false;
}

std::size_t PageInfoTable::shards_carried_over() const {
  std::size_t n = 0;
  for (const Shard& s : shards_)
    if (s.dirty_epoch < epoch_) ++n;
  return n;
}

std::optional<std::string> PageInfoTable::check_invariants() const {
  if (valid_ && retained_)
    return "table claims to be both live (valid) and retained-stale";
  if (!valid_) return "table is invalid (VMM dormant)";
  for (std::size_t pfn = 0; pfn < info_.size(); ++pfn) {
    const PageInfo& pi = info_[pfn];
    std::ostringstream err;
    if (pi.pinned && pi.type != PageType::kL1 && pi.type != PageType::kL2) {
      err << "pfn " << pfn << " pinned but typed " << page_type_name(pi.type);
      return err.str();
    }
    if (pi.pinned && pi.type_count == 0) {
      err << "pfn " << pfn << " pinned with zero type_count";
      return err.str();
    }
    if (pi.type != PageType::kNone && pi.owner == kDomInvalid) {
      err << "pfn " << pfn << " typed " << page_type_name(pi.type)
          << " but unowned";
      return err.str();
    }
  }
  return std::nullopt;
}

}  // namespace mercury::vmm
