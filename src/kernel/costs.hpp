// Kernel-path cost model (cycles).
//
// Fixed-work constants stand in for kernel code we do not simulate
// instruction-by-instruction (credential copy, ELF parsing, ...). They are
// mode-independent: every evaluated system charges the same kernel work, so
// they cancel out of relative comparisons. The mode-dependent costs all flow
// through pv::SensitiveOps.
#pragma once

#include "hw/types.hpp"

namespace mercury::kernel::costs {

using hw::Cycles;

// --- scheduling ---
inline constexpr Cycles kCtxSwitchBase = 2500;   // save/restore + runqueue work
inline constexpr Cycles kSchedPick = 280;
inline constexpr Cycles kCacheRefillPerKb = 384; // 16 lines/KB x 24c line pull
inline constexpr Cycles kSyscallDispatch = 170;

// --- process lifecycle ---
inline constexpr Cycles kForkFixedWork = 70'000;   // task struct, creds, fds, pid
inline constexpr Cycles kExecFixedWork = 500'000;   // ELF parse, argv/env copy
inline constexpr Cycles kShellFixedWork = 1'550'000;  // /bin/sh startup + parse
inline constexpr Cycles kExitFixedWork = 30'000;
inline constexpr Cycles kWaitReap = 6'000;
inline constexpr Cycles kPteCopyWork = 150;         // per-PTE fork bookkeeping
inline constexpr Cycles kVmaOp = 420;               // vma create/split/merge

// --- faults ---
inline constexpr Cycles kFaultVmaLookup = 550;
inline constexpr Cycles kFilePageLookup = 550;      // page-cache radix walk
inline constexpr Cycles kFileMapCopy = 1400;        // map-time copy share
inline constexpr Cycles kAnonPagePrep = 500;
inline constexpr Cycles kSigsegvSetup = 350;

// Per-page unmap bookkeeping (rmap, LRU); file-backed pages additionally
// detach from the page cache.
inline constexpr Cycles kZapPerPage = 300;
inline constexpr Cycles kZapFileExtra = 1400;

// --- SMP cacheline/lock pressure (charged only on >1-CPU machines) ---
inline constexpr Cycles kSmpDispatchTax = 2000;  // runqueue/mm locks per switch
inline constexpr Cycles kSmpFaultTax = 1250;     // mmap_sem + LRU contention
inline constexpr Cycles kSmpZapTax = 600;        // per zapped page
inline constexpr Cycles kSmpCopyTax = 100;       // per copied PTE (fork)

// --- pipes / IPC ---
inline constexpr Cycles kPipeTransfer = 300;

// --- filesystem ---
inline constexpr Cycles kPathLookupPerComponent = 550;
inline constexpr Cycles kInodeOp = 900;             // create/unlink/stat update
inline constexpr Cycles kBufferCopyPerKb = 700;     // user<->page cache copy
inline constexpr Cycles kBlockCacheLookup = 260;

// --- network stack ---
inline constexpr Cycles kUdpTxStack = 2600;         // socket + IP + driver prep
inline constexpr Cycles kUdpRxStack = 2900;
inline constexpr Cycles kTcpTxStack = 3300;
inline constexpr Cycles kTcpRxStack = 3600;
inline constexpr Cycles kIcmpEcho = 1500;           // in-kernel echo turnaround

// --- SMP ---
inline constexpr Cycles kLockUncontended = 45;
inline constexpr Cycles kLockContended = 1400;
inline constexpr double kLockContentionProb = 0.12; // per acquisition, SMP only

// --- timer ---
inline constexpr Cycles kTimerTickWork = 2200;

}  // namespace mercury::kernel::costs
