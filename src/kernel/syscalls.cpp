#include "kernel/syscalls.hpp"

#include "obs/obs.hpp"

#include <algorithm>

#include "hw/costs.hpp"
#include "kernel/fs/minifs.hpp"
#include "kernel/layout.hpp"
#include "kernel/net/stack.hpp"
#include "util/assert.hpp"

namespace mercury::kernel {

ExecImage hello_image() {
  ExecImage img;
  img.name = "hello";
  img.text_pages = 48;
  img.data_pages = 8;
  img.bss_pages = 4;
  img.stack_pages = 4;
  img.startup_touch_pages = 60;
  img.fixed_work = costs::kExecFixedWork;
  return img;
}

ExecImage shell_image() {
  ExecImage img;
  img.name = "sh";
  img.text_pages = 160;
  img.data_pages = 20;
  img.bss_pages = 10;
  img.stack_pages = 8;
  img.startup_touch_pages = 90;
  img.fixed_work = costs::kShellFixedWork;
  return img;
}

ExecImage cc1_image() {
  ExecImage img;
  img.name = "cc1";
  img.text_pages = 900;
  img.data_pages = 120;
  img.bss_pages = 60;
  img.stack_pages = 16;
  img.startup_touch_pages = 500;
  img.fixed_work = costs::kExecFixedWork * 2;
  return img;
}

void Sys::syscall_prologue(hw::Cpu& cpu) {
  ++kernel_.stats().syscalls;
  MERC_COUNT("kernel.syscalls");
  kernel_.ops().syscall_entered(cpu);
  cpu.set_cpl(kernel_.ops().kernel_ring());
  cpu.charge(costs::kSyscallDispatch + kernel_.vo_path_tax());
  kernel_.lock_kernel(cpu);
}

void Sys::syscall_epilogue(hw::Cpu& cpu) {
  kernel_.unlock_kernel(cpu);
  kernel_.ops().syscall_exiting(cpu);
  cpu.set_cpl(hw::Ring::kRing3);
}

// --- processes ---------------------------------------------------------------

Pid Sys::fork(ProcMain child_body) {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  Task& child = kernel_.do_fork(c, task_, std::move(child_body));
  kernel_.enqueue(&child);
  syscall_epilogue(c);
  return child.pid;
}

void Sys::exec(const ExecImage& image) {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  c.charge(image.fixed_work);
  task_.name = image.name;
  AddressSpace& as = *task_.aspace;
  as.clear_user(c);

  const auto pages = [](std::size_t n) {
    return static_cast<hw::VirtAddr>(n * hw::kPageSize);
  };
  as.mmap(c, kUserText, pages(image.text_pages), false, VmaKind::kFile, 0, 0);
  as.mmap(c, kUserText + pages(image.text_pages), pages(image.data_pages), true,
          VmaKind::kFile, 0, 0);
  as.mmap(c, kUserHeap, pages(std::max<std::size_t>(image.bss_pages, 1) + 256),
          true, VmaKind::kAnon);
  as.mmap(c, kUserStackTop - pages(image.stack_pages + 60),
          pages(image.stack_pages + 60), true, VmaKind::kAnon);

  // Startup demand faults (loader, dynamic linker, first touches).
  std::size_t remaining = image.startup_touch_pages;
  const std::size_t text_touch = std::min(remaining, image.text_pages);
  touch_pages(kUserText, text_touch, false);
  remaining -= text_touch;
  if (remaining > 0) touch_pages(kUserHeap, remaining, true);

  syscall_epilogue(c);
}

Pid Sys::fork_exec(const ExecImage& image, ProcMain child_body) {
  ExecImage img = image;
  auto body = [img, inner = std::move(child_body)](Sys& s) -> Sub<void> {
    s.exec(img);
    co_await inner(s);
  };
  return fork(std::move(body));
}

Sub<int> Sys::wait_pid(Pid pid) {
  hw::Cpu* c = &cpu();
  syscall_prologue(*c);
  Task* child = kernel_.find_task(pid);
  if (child == nullptr) {
    syscall_epilogue(*c);
    co_return -1;
  }
  if (child->state != TaskState::kZombie) {
    co_await block_on(child->exit_waiters);
    c = &cpu();  // may have migrated
    child = kernel_.find_task(pid);
  }
  int status = -1;
  if (child != nullptr) {
    status = child->exit_status;
    c->charge(costs::kWaitReap);
    kernel_.reap(pid);
  }
  syscall_epilogue(*c);
  co_return status;
}

Sub<void> Sys::sleep_us(double us) {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  WaitQueue q;
  const Pid pid = task_.pid;
  Kernel& k = kernel_;
  k.add_timer(c.now() + hw::us_to_cycles(us),
              [&k, pid, &q] { k.wake_if_waiting(pid, q); });
  co_await block_on(q);
  syscall_epilogue(cpu());
}

Sub<void> Sys::yield() {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  syscall_epilogue(c);
  co_await YieldCpu{kernel_, task_};
}

// --- CPU work ------------------------------------------------------------------

Sub<void> Sys::compute_us(double us) {
  hw::Cycles remaining = hw::us_to_cycles(us);
  constexpr hw::Cycles kChunk = 50 * hw::kCyclesPerMicrosecond;
  while (remaining > 0) {
    hw::Cpu& c = cpu();
    const hw::Cycles step = std::min(remaining, kChunk);
    c.charge(step);
    remaining -= step;
    if (task_.need_resched || c.now() >= task_.slice_end) {
      co_await YieldCpu{kernel_, task_};
    }
  }
}

void Sys::touch_pages(hw::VirtAddr base, std::size_t count, bool write) {
  hw::Cpu& c = cpu();
  auto& mmu = kernel_.machine().mmu();
  for (std::size_t i = 0; i < count; ++i) {
    mmu.touch(c, base + static_cast<hw::VirtAddr>(i * hw::kPageSize),
              write ? hw::Access::kWrite : hw::Access::kRead);
  }
}

void Sys::prot_fault_once(hw::VirtAddr va) {
  hw::Cpu& c = cpu();
  auto& mmu = kernel_.machine().mmu();
  hw::PageFault pf;
  if (mmu.translate(c, va, hw::Access::kWrite, &pf)) return;  // no fault
  hw::TrapInfo info;
  info.kind = hw::TrapKind::kPageFault;
  info.fault_addr = va;
  info.write = true;
  info.user_mode = c.cpl() == hw::Ring::kRing3;
  c.raise_trap(info);  // delivered as SIGSEGV to the registered handler
}

void Sys::touch_working_set() {
  hw::Cpu& c = cpu();
  if (task_.cache_cold) {
    // Small working sets survive partially in L2 across a switch.
    const double warmth = task_.working_set_kb <= 32 ? 0.55 : 1.0;
    c.charge(static_cast<hw::Cycles>(costs::kCacheRefillPerKb *
                                     task_.working_set_kb * warmth));
    task_.cache_cold = false;
  } else {
    // Warm pass: one L1 hit per line.
    c.charge(task_.working_set_kb * 16 * hw::costs::kCacheHit);
  }
}

// --- memory ----------------------------------------------------------------------

hw::VirtAddr Sys::mmap(std::size_t len, bool writable, std::int32_t inode,
                       std::uint64_t off) {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  const VmaKind kind = inode >= 0 ? VmaKind::kFile : VmaKind::kAnon;
  const hw::VirtAddr va = task_.aspace->mmap(c, 0, len, writable, kind, inode, off);
  syscall_epilogue(c);
  return va;
}

hw::VirtAddr Sys::mmap_fixed(hw::VirtAddr addr, std::size_t len, bool writable,
                             std::int32_t inode, std::uint64_t off) {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  task_.aspace->munmap(c, addr, len);  // MAP_FIXED replaces
  const VmaKind kind = inode >= 0 ? VmaKind::kFile : VmaKind::kAnon;
  const hw::VirtAddr va =
      task_.aspace->mmap(c, addr, len, writable, kind, inode, off);
  syscall_epilogue(c);
  return va;
}

void Sys::munmap(hw::VirtAddr addr, std::size_t len) {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  task_.aspace->munmap(c, addr, len);
  syscall_epilogue(c);
}

void Sys::mprotect(hw::VirtAddr addr, std::size_t len, bool writable) {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  task_.aspace->mprotect(c, addr, len, writable);
  syscall_epilogue(c);
}

// --- pipes ------------------------------------------------------------------------

std::pair<int, int> Sys::pipe() {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  const int p = kernel_.pipe_create();
  const int rfd = task_.alloc_fd({OpenFile::Kind::kPipeRead, p, 0});
  const int wfd = task_.alloc_fd({OpenFile::Kind::kPipeWrite, p, 0});
  syscall_epilogue(c);
  return {rfd, wfd};
}

int Sys::adopt_pipe(int pipe_index, bool read_end) {
  Pipe& p = kernel_.pipe(pipe_index);
  if (read_end)
    ++p.readers_open;
  else
    ++p.writers_open;
  return task_.alloc_fd({read_end ? OpenFile::Kind::kPipeRead
                                  : OpenFile::Kind::kPipeWrite,
                         pipe_index, 0});
}

Sub<std::size_t> Sys::write_fd(int fd, std::size_t bytes) {
  OpenFile* f = task_.fd(fd);
  MERC_CHECK_MSG(f != nullptr, "write on bad fd");
  if (f->kind == OpenFile::Kind::kFile) co_return co_await file_write(fd, bytes);
  MERC_CHECK(f->kind == OpenFile::Kind::kPipeWrite);
  syscall_prologue(cpu());
  Pipe& p = kernel_.pipe(f->index);
  std::size_t written = 0;
  while (written < bytes) {
    while (p.buffered >= p.capacity) {
      if (p.readers_open == 0) {
        syscall_epilogue(cpu());
        co_return written;  // EPIPE-ish
      }
      co_await block_on(p.writers);
    }
    const std::size_t n = std::min(bytes - written, p.capacity - p.buffered);
    p.buffered += n;
    written += n;
    hw::Cpu& c = cpu();
    c.charge(costs::kPipeTransfer +
             std::max<hw::Cycles>(100, costs::kBufferCopyPerKb * n / 1024));
    kernel_.wake_all(p.readers);
  }
  syscall_epilogue(cpu());
  co_return written;
}

Sub<std::size_t> Sys::read_fd(int fd, std::size_t bytes) {
  OpenFile* f = task_.fd(fd);
  MERC_CHECK_MSG(f != nullptr, "read on bad fd");
  if (f->kind == OpenFile::Kind::kFile) co_return co_await file_read(fd, bytes);
  MERC_CHECK(f->kind == OpenFile::Kind::kPipeRead);
  syscall_prologue(cpu());
  Pipe& p = kernel_.pipe(f->index);
  while (p.buffered == 0) {
    if (p.writers_open == 0) {
      syscall_epilogue(cpu());
      co_return 0;  // EOF
    }
    co_await block_on(p.readers);
  }
  const std::size_t n = std::min(bytes, p.buffered);
  p.buffered -= n;
  hw::Cpu& c = cpu();
  c.charge(costs::kPipeTransfer +
           std::max<hw::Cycles>(100, costs::kBufferCopyPerKb * n / 1024));
  kernel_.wake_all(p.writers);
  syscall_epilogue(c);
  co_return n;
}

void Sys::close(int fd) {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  OpenFile* f = task_.fd(fd);
  if (f != nullptr) {
    if (f->kind == OpenFile::Kind::kPipeRead) {
      Pipe& p = kernel_.pipe(f->index);
      if (--p.readers_open == 0) kernel_.wake_all(p.writers);
    } else if (f->kind == OpenFile::Kind::kPipeWrite) {
      Pipe& p = kernel_.pipe(f->index);
      if (--p.writers_open == 0) kernel_.wake_all(p.readers);
    }
    task_.close_fd(fd);
  }
  syscall_epilogue(c);
}

// --- files ------------------------------------------------------------------------

int Sys::open(const std::string& path, bool create) {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  const std::int32_t ino = kernel_.fs().open(c, path, create);
  int fd = -1;
  if (ino >= 0) fd = task_.alloc_fd({OpenFile::Kind::kFile, ino, 0});
  syscall_epilogue(c);
  return fd;
}

std::int64_t Sys::file_size(const std::string& path) {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  const std::int64_t n = kernel_.fs().size_of(c, path);
  syscall_epilogue(c);
  return n;
}

Sub<std::size_t> Sys::file_write(int fd, std::size_t bytes) {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  OpenFile* f = task_.fd(fd);
  MERC_CHECK(f != nullptr && f->kind == OpenFile::Kind::kFile);
  Inode* ino = kernel_.fs().inode(f->index);
  MERC_CHECK(ino != nullptr);
  const std::size_t n = kernel_.fs().write(c, *ino, f->offset, bytes);
  f->offset += n;
  syscall_epilogue(c);
  // Large buffered writes can trigger write-back; allow preemption.
  if (task_.need_resched) co_await YieldCpu{kernel_, task_};
  co_return n;
}

Sub<std::size_t> Sys::file_read(int fd, std::size_t bytes) {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  OpenFile* f = task_.fd(fd);
  MERC_CHECK(f != nullptr && f->kind == OpenFile::Kind::kFile);
  Inode* ino = kernel_.fs().inode(f->index);
  MERC_CHECK(ino != nullptr);
  const std::size_t n = kernel_.fs().read(c, *ino, f->offset, bytes);
  f->offset += n;
  syscall_epilogue(c);
  if (task_.need_resched) co_await YieldCpu{kernel_, task_};
  co_return n;
}

void Sys::seek(int fd, std::uint64_t offset) {
  OpenFile* f = task_.fd(fd);
  MERC_CHECK(f != nullptr);
  f->offset = offset;
  cpu().charge(costs::kSyscallDispatch);
}

void Sys::fsync(int fd) {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  OpenFile* f = task_.fd(fd);
  MERC_CHECK(f != nullptr && f->kind == OpenFile::Kind::kFile);
  Inode* ino = kernel_.fs().inode(f->index);
  MERC_CHECK(ino != nullptr);
  kernel_.fs().fsync(c, *ino);
  syscall_epilogue(c);
}

bool Sys::unlink(const std::string& path) {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  const bool ok = kernel_.fs().unlink(c, path);
  syscall_epilogue(c);
  return ok;
}

bool Sys::mkdir(const std::string& path) {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  const bool ok = kernel_.fs().mkdir(c, path);
  syscall_epilogue(c);
  return ok;
}

bool Sys::stat(const std::string& path) {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  const bool ok = kernel_.fs().exists(c, path);
  syscall_epilogue(c);
  return ok;
}

// --- network ----------------------------------------------------------------------

int Sys::socket_udp(std::uint16_t local_port) {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  const std::int32_t s = kernel_.net().create_udp(local_port);
  const int fd = task_.alloc_fd({OpenFile::Kind::kSocket, s, 0});
  syscall_epilogue(c);
  return fd;
}

void Sys::sendto(int fd, std::uint32_t dst_addr, std::uint16_t dst_port,
                 std::size_t bytes) {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  OpenFile* f = task_.fd(fd);
  MERC_CHECK(f != nullptr && f->kind == OpenFile::Kind::kSocket);
  Socket* s = kernel_.net().sock(f->index);
  MERC_CHECK(s != nullptr);
  kernel_.net().udp_send(c, *s, dst_addr, dst_port, bytes);
  syscall_epilogue(c);
}

Sub<RecvResult> Sys::recvfrom(int fd, double timeout_us) {
  syscall_prologue(cpu());
  OpenFile* f = task_.fd(fd);
  MERC_CHECK(f != nullptr && f->kind == OpenFile::Kind::kSocket);
  Socket* s = kernel_.net().sock(f->index);
  MERC_CHECK(s != nullptr);
  if (s->rxq.empty()) {
    const Pid pid = task_.pid;
    Kernel& k = kernel_;
    WaitQueue& q = s->readers;
    if (timeout_us > 0)
      k.add_timer(cpu().now() + hw::us_to_cycles(timeout_us),
                  [&k, pid, &q] { k.wake_if_waiting(pid, q); });
    co_await block_on(q);
  }
  RecvResult r;
  if (!s->rxq.empty()) {
    const hw::Packet& pkt = s->rxq.front();
    r.ok = true;
    r.from_addr = pkt.src_addr;
    r.from_port = pkt.src_port;
    r.bytes = pkt.payload_bytes;
    r.sent_at = pkt.sent_at;
    s->rxq.pop_front();
    cpu().charge(costs::kBufferCopyPerKb * ((r.bytes + 1023) / 1024));
  }
  syscall_epilogue(cpu());
  co_return r;
}

Sub<double> Sys::ping(std::uint32_t dst_addr, std::size_t bytes,
                      double timeout_us) {
  hw::Cpu* c = &cpu();
  syscall_prologue(*c);
  const hw::Cycles t0 = c->now();
  const std::uint32_t seq = kernel_.net().ping_send(*c, dst_addr, bytes);
  auto& wait = kernel_.net().ping_state(seq);
  if (!wait.replied) {
    const Pid pid = task_.pid;
    Kernel& k = kernel_;
    WaitQueue& q = wait.waiter;
    k.add_timer(c->now() + hw::us_to_cycles(timeout_us),
                [&k, pid, &q] { k.wake_if_waiting(pid, q); });
    co_await block_on(q);
  }
  c = &cpu();
  double rtt = -1.0;
  if (kernel_.net().ping_state(seq).replied)
    rtt = hw::cycles_to_us(c->now() - t0);
  kernel_.net().ping_forget(seq);
  syscall_epilogue(*c);
  co_return rtt;
}

int Sys::tcp_connect(std::uint32_t dst_addr, std::uint16_t dst_port) {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  const std::int32_t s = kernel_.net().create_tcp_conn(c, dst_addr, dst_port);
  const int fd = task_.alloc_fd({OpenFile::Kind::kSocket, s, 0});
  syscall_epilogue(c);
  return fd;
}

int Sys::tcp_listen(std::uint16_t port) {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  const std::int32_t s = kernel_.net().create_tcp_listen(port);
  const int fd = task_.alloc_fd({OpenFile::Kind::kSocket, s, 0});
  syscall_epilogue(c);
  return fd;
}

Sub<int> Sys::tcp_accept(int listen_fd, double timeout_us) {
  syscall_prologue(cpu());
  OpenFile* f = task_.fd(listen_fd);
  MERC_CHECK(f != nullptr && f->kind == OpenFile::Kind::kSocket);
  Socket* ls = kernel_.net().sock(f->index);
  MERC_CHECK(ls != nullptr && ls->kind == Socket::Kind::kTcpListen);
  if (ls->accept_queue.empty()) {
    const Pid pid = task_.pid;
    Kernel& k = kernel_;
    WaitQueue& q = ls->acceptors;
    if (timeout_us > 0)
      k.add_timer(cpu().now() + hw::us_to_cycles(timeout_us),
                  [&k, pid, &q] { k.wake_if_waiting(pid, q); });
    co_await block_on(q);
  }
  int fd = -1;
  if (!ls->accept_queue.empty()) {
    const std::int32_t conn = ls->accept_queue.front();
    ls->accept_queue.pop_front();
    fd = task_.alloc_fd({OpenFile::Kind::kSocket, conn, 0});
  }
  syscall_epilogue(cpu());
  co_return fd;
}

Sub<std::size_t> Sys::tcp_send(int fd, std::size_t bytes) {
  syscall_prologue(cpu());
  OpenFile* f = task_.fd(fd);
  MERC_CHECK(f != nullptr && f->kind == OpenFile::Kind::kSocket);
  Socket* s = kernel_.net().sock(f->index);
  MERC_CHECK(s != nullptr && s->kind == Socket::Kind::kTcpConn);
  std::uint64_t remaining = bytes;
  while (remaining > 0) {
    const bool must_block = kernel_.net().tcp_pump(cpu(), *s, remaining);
    if (must_block) co_await block_on(s->tcp.senders);
    if (task_.killed) throw TaskKilled{9};
    if (!s->open) break;
  }
  syscall_epilogue(cpu());
  co_return bytes - remaining;
}

Sub<std::size_t> Sys::tcp_recv(int fd, std::size_t min_bytes, double timeout_us) {
  syscall_prologue(cpu());
  OpenFile* f = task_.fd(fd);
  MERC_CHECK(f != nullptr && f->kind == OpenFile::Kind::kSocket);
  Socket* s = kernel_.net().sock(f->index);
  MERC_CHECK(s != nullptr && s->kind == Socket::Kind::kTcpConn);
  const std::uint64_t target = s->tcp.rcv_consumed + min_bytes;
  const hw::Cycles deadline = cpu().now() + hw::us_to_cycles(timeout_us);
  while (s->tcp.rcv_bytes < target && s->open) {
    const Pid pid = task_.pid;
    Kernel& k = kernel_;
    WaitQueue& q = s->tcp.receivers;
    if (timeout_us > 0) {
      if (cpu().now() >= deadline) break;
      k.add_timer(deadline, [&k, pid, &q] { k.wake_if_waiting(pid, q); });
    }
    co_await block_on(q);
  }
  const std::uint64_t got =
      std::min<std::uint64_t>(s->tcp.rcv_bytes - s->tcp.rcv_consumed,
                              std::max<std::uint64_t>(min_bytes, s->tcp.rcv_bytes -
                                                                     s->tcp.rcv_consumed));
  s->tcp.rcv_consumed += got;
  syscall_epilogue(cpu());
  co_return static_cast<std::size_t>(got);
}

void Sys::close_socket(int fd) {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  OpenFile* f = task_.fd(fd);
  if (f != nullptr && f->kind == OpenFile::Kind::kSocket) {
    kernel_.net().close(c, f->index);
    task_.close_fd(fd);
  }
  syscall_epilogue(c);
}

hw::SensorReadings Sys::read_sensors() {
  hw::Cpu& c = cpu();
  syscall_prologue(c);
  hw::SensorReadings r;
  kernel_.ops().sensors_read(c, r);
  syscall_epilogue(c);
  return r;
}

}  // namespace mercury::kernel
