// Simulated kernel threads (tasks).
//
// A task's execution is a C++20 coroutine; its kernel-visible machine
// context (the "interrupt frame on the kernel stack") is snapshotted into
// SavedContext at every suspension. The cs/ss selectors in that snapshot
// carry the kernel's privilege level — exactly the state Mercury's stack
// fixup (paper §5.1.2) must patch when the kernel's ring changes while the
// task sleeps.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/types.hpp"
#include "kernel/coro.hpp"
#include "kernel/wait.hpp"

namespace mercury::kernel {

using Pid = std::int32_t;

class AddressSpace;
class Sys;

enum class TaskState : std::uint8_t {
  kRunnable,
  kRunning,
  kBlocked,
  kZombie,  // exited, waiting to be reaped
};

/// One pushed cs/ss pair of an interrupt frame nested above the base frame
/// (an interrupt that fired while the thread was already in the kernel).
struct NestedFrame {
  hw::SegmentSelector cs{};
  hw::SegmentSelector ss{};
};

/// The privilege-carrying part of a suspended thread's kernel-stack frame.
struct SavedContext {
  hw::SegmentSelector cs{};
  hw::SegmentSelector ss{};
  bool valid = false;
  /// Interrupt frames stacked above the base frame, outermost first. Every
  /// nested frame carries its own saved selectors and must be patched by
  /// the stack fixup exactly like the base frame (paper §5.1.2).
  std::vector<NestedFrame> nested;
  /// The base frame sits flush against the top of the kernel stack (zero
  /// headroom) — the boundary the fixup walk must handle without stepping
  /// past the stack end.
  bool at_stack_top = false;
};

struct OpenFile {
  enum class Kind : std::uint8_t {
    kNone,
    kPipeRead,
    kPipeWrite,
    kFile,
    kSocket,
  };
  Kind kind = Kind::kNone;
  std::int32_t index = -1;   // pipe/file/socket table slot
  std::uint64_t offset = 0;  // file position
};

class Task {
 public:
  Task(Pid pid, Pid ppid, std::string name);
  ~Task();

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  Pid pid;
  Pid ppid;
  std::string name;
  TaskState state = TaskState::kRunnable;

  std::unique_ptr<AddressSpace> aspace;
  std::unique_ptr<Sys> sys;  // stable address handed to the coroutine body
  /// The program closure. A lambda coroutine frame references its closure
  /// object rather than copying it, so the task must keep the closure alive
  /// for as long as the coroutine can run. Type-erased to avoid a kernel.hpp
  /// dependency; Kernel stores the ProcMain here.
  std::shared_ptr<void> body_keepalive;

  /// Root coroutine frame (owned) and the innermost resume point.
  std::coroutine_handle<Sub<void>::promise_type> root{};
  std::coroutine_handle<> resume_point{};

  SavedContext saved_ctx{};

  int exit_status = 0;
  bool killed = false;
  WaitQueue exit_waiters;
  WaitQueue* waiting_on = nullptr;  // queue this task is parked on, if blocked

  std::vector<OpenFile> fds;

  std::uint32_t last_cpu = 0;
  std::uint32_t affinity = kNoAffinity;  // kNoAffinity = any CPU
  hw::Cycles slice_end = 0;
  bool need_resched = false;

  /// Declared working set; refilled into cache after a context switch.
  std::size_t working_set_kb = 0;
  bool cache_cold = true;

  /// SIGSEGV is caught by a registered handler instead of killing the task
  /// (lmbench's protection-fault harness does this).
  bool catch_segv = false;
  std::uint64_t segv_caught = 0;

  hw::Cycles cpu_time = 0;

  static constexpr std::uint32_t kNoAffinity = 0xFFFFFFFF;

  int alloc_fd(OpenFile f);
  OpenFile* fd(int n);
  void close_fd(int n);
};

}  // namespace mercury::kernel
