// Virtual address space layout (paper §3.2.2).
//
// Mercury *unifies* the layout between modes by permanently reserving the
// top 64 MB for the VMM (Xen's home), so no address-space surgery is needed
// at switch time: user 0..3GB, kernel direct map at 3GB, VMM at 4GB-64MB.
#pragma once

#include "hw/types.hpp"

namespace mercury::kernel {

inline constexpr hw::VirtAddr kUserBase = 0x0040'0000;   // keep page 0 unmapped
inline constexpr hw::VirtAddr kUserTop = 0xC000'0000;
inline constexpr hw::VirtAddr kKernelBase = 0xC000'0000;  // direct map of phys
inline constexpr hw::VirtAddr kVmmBase = 0xFC00'0000;     // reserved 64 MB
inline constexpr std::size_t kVmmRegionBytes = 64ull << 20;

/// Direct-map translation for kernel-owned frames.
inline constexpr hw::VirtAddr kernel_va_of(hw::PhysAddr pa) {
  return kKernelBase + static_cast<hw::VirtAddr>(pa);
}
inline constexpr hw::PhysAddr kernel_pa_of(hw::VirtAddr va) {
  return va - kKernelBase;
}

inline constexpr bool is_user_va(hw::VirtAddr va) {
  return va >= kUserBase && va < kUserTop;
}
inline constexpr bool is_kernel_va(hw::VirtAddr va) {
  return va >= kKernelBase && va < kVmmBase;
}
inline constexpr bool is_vmm_va(hw::VirtAddr va) { return va >= kVmmBase; }

// User-space region conventions used by the workloads.
inline constexpr hw::VirtAddr kUserText = 0x0040'0000;
inline constexpr hw::VirtAddr kUserHeap = 0x1000'0000;
inline constexpr hw::VirtAddr kUserMmap = 0x4000'0000;
inline constexpr hw::VirtAddr kUserStackTop = 0xBFFF'F000;

}  // namespace mercury::kernel
