// The kernel's pool of physical frames.
//
// A native kernel is granted (almost) all of RAM at boot; a guest domain is
// granted the frame list its domain was built with. The pool remembers every
// frame it owns — this is the set the VMM walks when rebuilding its
// owner/type/count table during a Mercury attach.
#pragma once

#include <cstddef>
#include <vector>

#include "hw/pte.hpp"
#include "hw/types.hpp"
#include "util/assert.hpp"

namespace mercury::kernel {

class FramePool {
 public:
  FramePool() = default;

  /// Grant a frame range/list to this pool (boot-time).
  void grant(hw::Pfn first, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) grant_one(first + static_cast<hw::Pfn>(i));
  }
  void grant_one(hw::Pfn pfn) {
    owned_.push_back(pfn);
    free_.push_back(pfn);
    if (dirty_sink_) dirty_sink_->note_dirty(pfn);
  }

  bool alloc(hw::Pfn& out) {
    if (free_.empty()) return false;
    out = free_.back();
    free_.pop_back();
    return true;
  }

  void free(hw::Pfn pfn) {
    free_.push_back(pfn);
    // A freed frame may be reallocated with a different role (data page
    // becoming a page table, or vice versa): any metadata retained about it
    // across a detach is stale from this point on.
    if (dirty_sink_) dirty_sink_->note_dirty(pfn);
  }

  std::size_t owned_count() const { return owned_.size(); }
  std::size_t free_count() const { return free_.size(); }
  std::size_t used_count() const { return owned_.size() - free_.size(); }

  /// Every frame this kernel was ever granted (owner-table rebuild walks
  /// this; migration transfers it).
  const std::vector<hw::Pfn>& owned() const { return owned_; }

  /// Rewrite all pfns through a translation table (migration restore).
  template <typename Fn>
  void remap(Fn&& translate) {
    for (auto& p : owned_) p = translate(p);
    for (auto& p : free_) p = translate(p);
  }

  /// Dirty-frame observer for warm re-attach: allocation-state changes mark
  /// the frame dirty so a retained page-info table revalidates it.
  void set_dirty_sink(hw::DirtySink* sink) { dirty_sink_ = sink; }

 private:
  std::vector<hw::Pfn> owned_;
  std::vector<hw::Pfn> free_;
  hw::DirtySink* dirty_sink_ = nullptr;
};

}  // namespace mercury::kernel
