// C++20 coroutine plumbing for simulated kernel threads.
//
// A task's body is a coroutine returning Sub<void>. Blocking syscalls return
// awaitables that park the task on a wait queue and hand control back to the
// kernel stepper; nested helper coroutines (Sub<T>) chain via symmetric
// transfer so the stepper always resumes the innermost frame.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "util/assert.hpp"

namespace mercury::kernel {

/// Thrown inside a simulated thread to terminate it (fatal signal, fault
/// kill). Unwinds through the coroutine stack into the stepper.
struct TaskKilled {
  int signal = 9;
};

template <typename T>
class Sub;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

/// A (possibly nested) simulated-kernel coroutine. Move-only owner of the
/// frame; awaiting it runs it to completion (with arbitrary suspensions to
/// the stepper in between) and yields its value.
template <typename T = void>
class [[nodiscard]] Sub {
 public:
  struct promise_type : detail::PromiseBase {
    T value{};
    Sub get_return_object() {
      return Sub{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value = std::move(v); }
  };

  Sub() = default;
  explicit Sub(std::coroutine_handle<promise_type> h) : h_(h) {}
  Sub(Sub&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Sub& operator=(Sub&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Sub(const Sub&) = delete;
  Sub& operator=(const Sub&) = delete;
  ~Sub() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }
  bool done() const { return h_.done(); }
  std::coroutine_handle<promise_type> handle() const { return h_; }

  // Awaitable: start the child, remember who to resume when it finishes.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
    h_.promise().continuation = parent;
    return h_;  // symmetric transfer into the child
  }
  T await_resume() {
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
    return std::move(h_.promise().value);
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Sub<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Sub get_return_object() {
      return Sub{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };

  Sub() = default;
  explicit Sub(std::coroutine_handle<promise_type> h) : h_(h) {}
  Sub(Sub&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Sub& operator=(Sub&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Sub(const Sub&) = delete;
  Sub& operator=(const Sub&) = delete;
  ~Sub() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }
  bool done() const { return h_ && h_.done(); }
  std::coroutine_handle<promise_type> handle() const { return h_; }
  std::exception_ptr exception() const { return h_.promise().exception; }

  /// Detach ownership (the Task takes over the root frame's lifetime).
  std::coroutine_handle<promise_type> release() {
    return std::exchange(h_, nullptr);
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
    h_.promise().continuation = parent;
    return h_;
  }
  void await_resume() {
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_;
};

}  // namespace mercury::kernel
