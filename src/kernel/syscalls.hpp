// The system-call facade handed to every task body.
//
// Methods that can put the caller to sleep are coroutines (await them);
// everything else executes synchronously while charging simulated cycles.
// Each call pays the syscall entry/exit price through the sensitive-ops
// object, so the same workload code measures differently per execution mode.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "hw/types.hpp"
#include "kernel/coro.hpp"
#include "kernel/kernel.hpp"
#include "kernel/task.hpp"

namespace mercury::kernel {

/// Synthetic program images for exec(): page counts stand in for ELF
/// segments; fixed_work for loader effort not otherwise modelled.
struct ExecImage {
  std::string name;
  std::size_t text_pages = 24;
  std::size_t data_pages = 6;
  std::size_t bss_pages = 4;
  std::size_t stack_pages = 4;
  std::size_t startup_touch_pages = 28;  // demand faults during startup
  hw::Cycles fixed_work = costs::kExecFixedWork;
};

/// lmbench's hello-world exec target.
ExecImage hello_image();
/// /bin/sh.
ExecImage shell_image();
/// A compiler-sized image (kbuild workload).
ExecImage cc1_image();

struct RecvResult {
  bool ok = false;
  std::uint32_t from_addr = 0;
  std::uint16_t from_port = 0;
  std::size_t bytes = 0;
  hw::Cycles sent_at = 0;
};

class Sys {
 public:
  Sys(Kernel& kernel, Task& task) : kernel_(kernel), task_(task) {}

  Kernel& kernel() { return kernel_; }
  Task& task() { return task_; }
  hw::Cpu& cpu() { return kernel_.machine().cpu(task_.last_cpu); }
  Pid getpid() const { return task_.pid; }

  // --- processes ---
  /// fork(): performs the full kernel fork (task struct + COW address-space
  /// clone); the child executes `child_body`.
  Pid fork(ProcMain child_body);
  /// execve(): replaces the address space with `image` and runs its startup
  /// faults. The calling coroutine continues as "the new program".
  void exec(const ExecImage& image);
  /// fork + exec in the child (lmbench "exec process" measures this pair).
  Pid fork_exec(const ExecImage& image, ProcMain child_body);
  [[noreturn]] void exit(int status) { throw TaskExit{status}; }
  Sub<int> wait_pid(Pid pid);
  Sub<void> sleep_us(double us);
  Sub<void> yield();

  // --- CPU work ---
  /// Burn user-mode CPU time, honouring preemption.
  Sub<void> compute_us(double us);
  /// Touch `count` pages starting at `base` through the MMU (demand faults,
  /// TLB traffic — one simulated load/store per page).
  void touch_pages(hw::VirtAddr base, std::size_t count, bool write);
  /// Model re-reading the task's declared working set (cache refill if the
  /// task went cold since its last slice).
  void touch_working_set();
  /// Trigger exactly one protection fault at `va` (the task must have
  /// catch_segv set; the faulting store is not retried). lmbench's
  /// "Prot Fault" harness.
  void prot_fault_once(hw::VirtAddr va);

  // --- memory ---
  hw::VirtAddr mmap(std::size_t len, bool writable,
                    std::int32_t inode = -1, std::uint64_t off = 0);
  /// MAP_FIXED: map at exactly `addr` (replacing any prior mapping there).
  hw::VirtAddr mmap_fixed(hw::VirtAddr addr, std::size_t len, bool writable,
                          std::int32_t inode = -1, std::uint64_t off = 0);
  void munmap(hw::VirtAddr addr, std::size_t len);
  void mprotect(hw::VirtAddr addr, std::size_t len, bool writable);

  // --- pipes ---
  std::pair<int, int> pipe();
  /// Attach this task to an existing pipe end (models fd inheritance for
  /// tasks created via spawn rather than fork).
  int adopt_pipe(int pipe_index, bool read_end);
  Sub<std::size_t> write_fd(int fd, std::size_t bytes);
  Sub<std::size_t> read_fd(int fd, std::size_t bytes);
  void close(int fd);

  // --- files ---
  int open(const std::string& path, bool create);
  std::int64_t file_size(const std::string& path);
  Sub<std::size_t> file_write(int fd, std::size_t bytes);
  Sub<std::size_t> file_read(int fd, std::size_t bytes);
  void seek(int fd, std::uint64_t offset);
  void fsync(int fd);
  bool unlink(const std::string& path);
  bool mkdir(const std::string& path);
  bool stat(const std::string& path);

  // --- network ---
  int socket_udp(std::uint16_t local_port);
  void sendto(int fd, std::uint32_t dst_addr, std::uint16_t dst_port,
              std::size_t bytes);
  Sub<RecvResult> recvfrom(int fd, double timeout_us);
  /// ICMP-style echo round trip; returns RTT in microseconds (<0 on loss).
  Sub<double> ping(std::uint32_t dst_addr, std::size_t bytes, double timeout_us);
  int tcp_connect(std::uint32_t dst_addr, std::uint16_t dst_port);
  int tcp_listen(std::uint16_t port);
  Sub<int> tcp_accept(int listen_fd, double timeout_us);
  Sub<std::size_t> tcp_send(int fd, std::size_t bytes);
  Sub<std::size_t> tcp_recv(int fd, std::size_t min_bytes, double timeout_us);
  void close_socket(int fd);

  // --- misc ---
  hw::Cycles rdtsc() { return cpu().rdtsc(); }
  hw::SensorReadings read_sensors();

  /// Syscall entry/exit bookkeeping — public so kernel subsystems reuse it.
  void syscall_prologue(hw::Cpu& cpu);
  void syscall_epilogue(hw::Cpu& cpu);

 private:
  BlockOn block_on(WaitQueue& q) { return BlockOn{kernel_, task_, q}; }

  Kernel& kernel_;
  Task& task_;
};

}  // namespace mercury::kernel
