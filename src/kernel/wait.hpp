// Wait queues: where blocked tasks park until a wake-up.
#pragma once

#include <algorithm>
#include <deque>

namespace mercury::kernel {

class Task;

class WaitQueue {
 public:
  void add(Task* t) { waiters_.push_back(t); }

  Task* pop() {
    if (waiters_.empty()) return nullptr;
    Task* t = waiters_.front();
    waiters_.pop_front();
    return t;
  }

  void remove(Task* t) {
    waiters_.erase(std::remove(waiters_.begin(), waiters_.end(), t),
                   waiters_.end());
  }

  bool empty() const { return waiters_.empty(); }
  std::size_t size() const { return waiters_.size(); }

 private:
  std::deque<Task*> waiters_;
};

}  // namespace mercury::kernel
