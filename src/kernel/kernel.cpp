#include "kernel/kernel.hpp"

#include <algorithm>

#include "hw/costs.hpp"
#include "kernel/fs/minifs.hpp"
#include "kernel/layout.hpp"
#include "kernel/net/stack.hpp"
#include "kernel/syscalls.hpp"
#include "obs/obs.hpp"
#include "pv/costs.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mercury::kernel {

namespace {
// Distinct descriptor-table identities per kernel instance.
std::uint32_t g_next_table_id = 1;
}  // namespace

Kernel::Kernel(hw::Machine& machine, pv::SensitiveOps& initial_ops,
               std::string name)
    : machine_(&machine),
      ops_(&initial_ops),
      name_(std::move(name)),
      runqueues_(machine.num_cpus()),
      current_(machine.num_cpus(), nullptr),
      lock_rng_(0xC0FFEEull) {
  idt_token_ = hw::TableToken{g_next_table_id++};
  gdt_token_ = hw::TableToken{g_next_table_id++};
  fs_ = std::make_unique<MiniFs>(*this);
  net_ = std::make_unique<NetStack>(*this);
}

Kernel::~Kernel() = default;

hw::VirtAddr Kernel::kva_of_frame(hw::Pfn pfn) const {
  MERC_CHECK_MSG(pfn >= base_pfn_ && pfn < base_pfn_ + frame_count_,
                 "frame outside kernel direct map");
  return kKernelBase + static_cast<hw::VirtAddr>(pfn - base_pfn_) * hw::kPageSize;
}

hw::PhysAddr Kernel::pa_of_kva(hw::VirtAddr va) const {
  MERC_CHECK(is_kernel_va(va));
  return hw::addr_of(base_pfn_) + (va - kKernelBase);
}

void Kernel::build_kernel_mappings() {
  // Direct map: kernel VA 0xC0000000+i*4K -> frame base_pfn_+i, one L1 table
  // per 4 MB. Built at boot time with plain memory writes (pre-paravirt
  // bootstrap, not on any measured path).
  auto& mem = machine_->memory();
  const std::size_t l1_count = (frame_count_ + hw::kPtEntries - 1) / hw::kPtEntries;
  kernel_pdes_.assign(256, hw::Pte{});
  kernel_l1s_.clear();
  kernel_l1s_.reserve(l1_count);

  std::size_t mapped = 0;
  for (std::size_t t = 0; t < l1_count; ++t) {
    hw::Pfn l1 = 0;
    MERC_CHECK(pool_.alloc(l1));
    mem.zero_frame(l1);
    kernel_l1s_.push_back(l1);
    for (std::uint32_t e = 0; e < hw::kPtEntries && mapped < frame_count_;
         ++e, ++mapped) {
      const hw::Pfn target = base_pfn_ + static_cast<hw::Pfn>(mapped);
      hw::Pte pte = hw::make_pte(target, /*writable=*/true, /*user=*/false,
                                 /*global=*/true);
      mem.write_u32(hw::addr_of(l1) + e * 4, pte.raw);
    }
    const std::uint32_t pde_idx = 768 + static_cast<std::uint32_t>(t);
    MERC_CHECK_MSG(pde_idx < 1008, "kernel too large for direct-map window");
    kernel_pdes_[pde_idx - 768] =
        hw::make_pte(l1, /*writable=*/true, /*user=*/false, /*global=*/true);
  }

  // The boot page directory (used when no task address space is loaded).
  MERC_CHECK(pool_.alloc(kernel_pd_));
  mem.zero_frame(kernel_pd_);
  for (std::size_t i = 0; i < kernel_pdes_.size(); ++i) {
    if (!kernel_pdes_[i].present()) continue;
    mem.write_u32(hw::addr_of(kernel_pd_) + (768 + i) * 4, kernel_pdes_[i].raw);
  }
  for (const auto& [idx, pde] : extra_pdes_)
    mem.write_u32(hw::addr_of(kernel_pd_) + idx * 4, pde.raw);
}

void Kernel::boot(hw::Pfn first_frame, std::size_t frame_count,
                  std::vector<std::pair<std::uint32_t, hw::Pte>> extra_pdes) {
  MERC_CHECK_MSG(!booted_, "double boot");
  base_pfn_ = first_frame;
  frame_count_ = frame_count;
  extra_pdes_ = std::move(extra_pdes);
  pool_.grant(first_frame, frame_count);
  build_kernel_mappings();

  // Under a VMM the boot page tables must be validated/pinned before they
  // can be activated; on bare hardware these are no-ops.
  hw::Cpu& boot_cpu = machine_->cpu(0);
  for (const hw::Pfn l1 : kernel_l1s_)
    ops_->pin_page_table(boot_cpu, l1, pv::PtLevel::kL1);
  ops_->pin_page_table(boot_cpu, kernel_pd_, pv::PtLevel::kL2);

  for (std::size_t i = 0; i < machine_->num_cpus(); ++i) {
    hw::Cpu& cpu = machine_->cpu(i);
    ops_->load_gdt(cpu, gdt_token_);
    ops_->load_idt(cpu, idt_token_);
    ops_->write_cr3(cpu, kernel_pd_);
    ops_->irq_enable(cpu);
  }
  booted_ = true;
}

// --- tasks ---------------------------------------------------------------

Pid Kernel::spawn(std::string name, ProcMain body, std::size_t working_set_kb,
                  std::uint32_t affinity) {
  MERC_CHECK(booted_);
  const Pid pid = next_pid_++;
  auto task = std::make_unique<Task>(pid, 0, std::move(name));
  Task& t = *task;
  t.working_set_kb = working_set_kb;
  t.affinity = affinity;
  t.last_cpu = affinity != Task::kNoAffinity
                   ? affinity
                   : static_cast<std::uint32_t>(pid % machine_->num_cpus());
  t.aspace = std::make_unique<AddressSpace>(*this, machine_->cpu(t.last_cpu));
  // A minimal image: stack + heap regions.
  t.aspace->mmap(machine_->cpu(t.last_cpu), kUserStackTop - 64 * hw::kPageSize,
                 64 * hw::kPageSize, true, VmaKind::kAnon);
  t.aspace->mmap(machine_->cpu(t.last_cpu), kUserHeap, 256 * hw::kPageSize, true,
                 VmaKind::kAnon);
  t.sys = std::make_unique<Sys>(*this, t);
  auto owned_body = std::make_shared<ProcMain>(std::move(body));
  t.body_keepalive = owned_body;
  Sub<void> root = (*owned_body)(*t.sys);
  t.root = root.release();
  t.resume_point = t.root;
  ++stats_.tasks_spawned;
  tasks_[pid] = std::move(task);
  enqueue(&t);
  return pid;
}

Task* Kernel::find_task(Pid pid) {
  auto it = tasks_.find(pid);
  return it == tasks_.end() ? nullptr : it->second.get();
}

std::size_t Kernel::live_tasks() const {
  std::size_t n = 0;
  for (const auto& [pid, t] : tasks_)
    if (t->state != TaskState::kZombie) ++n;
  return n;
}

std::size_t Kernel::runnable_tasks() const {
  std::size_t n = 0;
  for (const auto& [pid, t] : tasks_)
    if (t->state == TaskState::kRunnable || t->state == TaskState::kRunning) ++n;
  return n;
}

void Kernel::enqueue(Task* t) {
  MERC_CHECK(t != nullptr);
  t->state = TaskState::kRunnable;
  std::uint32_t cpu = t->affinity != Task::kNoAffinity ? t->affinity : t->last_cpu;
  if (t->affinity == Task::kNoAffinity && machine_->num_cpus() > 1) {
    // Light load balancing: prefer the emptiest runqueue.
    std::uint32_t best = cpu;
    std::size_t best_len = runqueues_[cpu].size();
    for (std::uint32_t c = 0; c < runqueues_.size(); ++c) {
      if (runqueues_[c].size() + 1 < best_len) {
        best = c;
        best_len = runqueues_[c].size();
      }
    }
    cpu = best;
  }
  runqueues_[cpu].push_back(t);
}

void Kernel::wake_all(WaitQueue& q) {
  while (Task* t = q.pop()) {
    t->waiting_on = nullptr;
    enqueue(t);
  }
}

void Kernel::wake_one(WaitQueue& q) {
  if (Task* t = q.pop()) {
    t->waiting_on = nullptr;
    enqueue(t);
  }
}

bool Kernel::wake_if_waiting(Pid pid, WaitQueue& q) {
  Task* t = find_task(pid);
  if (!t || t->waiting_on != &q || t->state != TaskState::kBlocked) return false;
  q.remove(t);
  t->waiting_on = nullptr;
  enqueue(t);
  return true;
}

void Kernel::kill(Pid pid, int signal) {
  Task* t = find_task(pid);
  if (!t || t->state == TaskState::kZombie) return;
  t->killed = true;
  t->exit_status = -signal;
  if (t->state == TaskState::kBlocked) {
    if (t->waiting_on) {
      t->waiting_on->remove(t);
      t->waiting_on = nullptr;
    }
    enqueue(t);
  }
}

void Kernel::for_each_task(const std::function<void(Task&)>& fn) {
  for (auto& [pid, t] : tasks_) fn(*t);
}

Task& Kernel::do_fork(hw::Cpu& cpu, Task& parent, ProcMain body) {
  cpu.charge(costs::kForkFixedWork);
  const Pid pid = next_pid_++;
  auto task = std::make_unique<Task>(pid, parent.pid, parent.name + "+" );
  Task& child = *task;
  child.working_set_kb = parent.working_set_kb;
  child.affinity = parent.affinity;
  child.last_cpu = cpu.id();
  child.aspace = parent.aspace->fork_clone(cpu);
  child.fds = parent.fds;  // shared pipe ends: bump writer/reader counts
  for (const auto& f : child.fds) {
    if (f.kind == OpenFile::Kind::kPipeRead) ++pipe(f.index).readers_open;
    if (f.kind == OpenFile::Kind::kPipeWrite) ++pipe(f.index).writers_open;
  }
  child.sys = std::make_unique<Sys>(*this, child);
  auto owned_body = std::make_shared<ProcMain>(std::move(body));
  child.body_keepalive = owned_body;
  Sub<void> root = (*owned_body)(*child.sys);
  child.root = root.release();
  child.resume_point = child.root;
  ++stats_.tasks_spawned;
  tasks_[pid] = std::move(task);
  return child;
}

void Kernel::finalize_exit(hw::Cpu& cpu, Task& t, int status) {
  cpu.charge(costs::kExitFixedWork);
  // Close fds (pipe reference counting, EOF wakeups).
  for (std::size_t i = 0; i < t.fds.size(); ++i) {
    const OpenFile f = t.fds[i];
    if (f.kind == OpenFile::Kind::kPipeRead) {
      if (--pipe(f.index).readers_open == 0) wake_all(pipe(f.index).writers);
    } else if (f.kind == OpenFile::Kind::kPipeWrite) {
      if (--pipe(f.index).writers_open == 0) wake_all(pipe(f.index).readers);
    }
  }
  t.fds.clear();
  if (t.aspace) t.aspace->teardown(cpu);
  t.state = TaskState::kZombie;
  t.exit_status = status;
  wake_all(t.exit_waiters);
  if (current_[cpu.id()] == &t) current_[cpu.id()] = nullptr;
}

void Kernel::reap(Pid pid) {
  auto it = tasks_.find(pid);
  if (it == tasks_.end()) return;
  MERC_CHECK_MSG(it->second->state == TaskState::kZombie, "reaping a live task");
  tasks_.erase(it);
}

std::size_t Kernel::reap_zombies() {
  std::size_t n = 0;
  for (auto it = tasks_.begin(); it != tasks_.end();) {
    if (it->second->state == TaskState::kZombie) {
      it = tasks_.erase(it);
      ++n;
    } else {
      ++it;
    }
  }
  return n;
}

// --- stepper ---------------------------------------------------------------

hw::Cpu& Kernel::pick_earliest_cpu() {
  std::size_t best = 0;
  for (std::size_t i = 1; i < machine_->num_cpus(); ++i)
    if (machine_->cpu(i).now() < machine_->cpu(best).now()) best = i;
  return machine_->cpu(best);
}

hw::Cycles Kernel::earliest_cpu_time() const {
  return machine_->min_cpu_time();
}

Task* Kernel::pick_task(hw::Cpu& cpu) {
  auto& rq = runqueues_[cpu.id()];
  while (!rq.empty()) {
    Task* t = rq.front();
    rq.pop_front();
    if (t->state != TaskState::kRunnable) continue;  // stale entry
    return t;
  }
  // Work stealing (SMP): pull from the longest other queue.
  if (machine_->num_cpus() > 1) {
    for (std::size_t c = 0; c < runqueues_.size(); ++c) {
      if (c == cpu.id()) continue;
      auto& other = runqueues_[c];
      for (auto it = other.begin(); it != other.end(); ++it) {
        Task* t = *it;
        if (t->state == TaskState::kRunnable &&
            (t->affinity == Task::kNoAffinity || t->affinity == cpu.id())) {
          other.erase(it);
          return t;
        }
      }
    }
  }
  return nullptr;
}

bool Kernel::fixup_saved_selectors(Task& t, hw::Cpu& cpu) {
  if (!t.saved_ctx.valid) return true;
  const hw::Ring want = ops_->kernel_ring();
  // Only kernel-mode frames carry the kernel's ring; ring-3 frames are
  // privilege-invariant across mode switches. Nested interrupt frames above
  // the base frame are checked the same way: any stale one would #GP when
  // its iret pops it.
  const auto stale = [&](hw::SegmentSelector cs) {
    return cs.rpl() != hw::Ring::kRing3 && cs.rpl() != want;
  };
  bool any_stale = stale(t.saved_ctx.cs);
  for (const NestedFrame& f : t.saved_ctx.nested)
    any_stale = any_stale || stale(f.cs);
  if (!any_stale) return true;

  if (!selector_fixup_) {
    // The paper's failure mode: popping a stale selector raises #GP and the
    // resumed thread dies before executing a single instruction.
    ++stats_.gp_faults_on_resume;
    cpu.charge(hw::costs::kTrapEntry + costs::kSigsegvSetup +
               hw::costs::kTrapReturn);
    return false;
  }
  if (stale(t.saved_ctx.cs)) {
    cpu.charge(pv::costs::kPerTaskSelectorFixup);
    t.saved_ctx.cs.set_rpl(want);
    t.saved_ctx.ss.set_rpl(want);
    ++stats_.selector_fixups;
    MERC_COUNT("kernel.selector_fixups");
  }
  for (NestedFrame& f : t.saved_ctx.nested) {
    if (!stale(f.cs)) continue;
    cpu.charge(pv::costs::kPerTaskSelectorFixup);
    f.cs.set_rpl(want);
    f.ss.set_rpl(want);
    ++stats_.selector_fixups;
    MERC_COUNT("kernel.selector_fixups");
  }
  return true;
}

void Kernel::dispatch(hw::Cpu& cpu, Task& t) {
  cpu.charge(costs::kSchedPick);
  Task* prev = current_[cpu.id()];
  const bool switching = prev != &t;
  if (switching) {
    ++stats_.context_switches;
    MERC_COUNT("kernel.context_switches");
    cpu.charge(costs::kCtxSwitchBase + vo_path_tax_);
    smp_tax(cpu, costs::kSmpDispatchTax);
    lock_kernel(cpu);
    ops_->irq_disable(cpu);
    ops_->stack_switch(cpu);
    if (t.aspace) ops_->write_cr3(cpu, t.aspace->page_directory());
    ops_->irq_enable(cpu);
    unlock_kernel(cpu);
    t.cache_cold = true;
  }
  if (!fixup_saved_selectors(t, cpu)) {
    // Resume faulted: the task dies without running.
    finalize_exit(cpu, t, -11);
    return;
  }
  t.saved_ctx.valid = false;
  t.state = TaskState::kRunning;
  t.last_cpu = cpu.id();
  t.slice_end = cpu.now() + machine_->timers().period();
  t.need_resched = false;
  current_[cpu.id()] = &t;

  const hw::Cycles before = cpu.now();
  std::coroutine_handle<> rp = t.resume_point;
  MERC_CHECK_MSG(rp && !t.root.done(), "dispatching a finished task");

  // Return to user mode for the task body; syscalls re-enter the kernel's
  // ring via Sys::syscall_prologue.
  cpu.set_cpl(hw::Ring::kRing3);
  try {
    rp.resume();
    cpu.set_cpl(hw::Ring::kRing0);
  } catch (const TaskKilled& k) {
    cpu.set_cpl(hw::Ring::kRing0);
    // Fault path unwound through raise_trap while the coroutine ran on the
    // host stack (not stored in a promise because the resume originated
    // outside any coroutine): treat as kill.
    t.cpu_time += cpu.now() - before;
    finalize_exit(cpu, t, -k.signal);
    return;
  }

  t.cpu_time += cpu.now() - before;

  if (t.root.done()) {
    int status = 0;
    if (auto ex = t.root.promise().exception) {
      try {
        std::rethrow_exception(ex);
      } catch (const TaskExit& e) {
        status = e.status;
      } catch (const TaskKilled& k) {
        status = -k.signal;
      }
      // Any other exception type escapes to the caller of step() — it is a
      // simulator bug, not simulated behaviour.
    }
    finalize_exit(cpu, t, status);
    return;
  }

  if (t.killed && t.state == TaskState::kRunning) {
    finalize_exit(cpu, t, t.exit_status);
    return;
  }

  // The task suspended: its awaitable already set the new state.
  if (current_[cpu.id()] == &t && t.state == TaskState::kRunning) {
    // Suspended without transitioning (shouldn't happen).
    MERC_CHECK_MSG(false, "task suspended while still Running");
  }
  if (t.state != TaskState::kRunning) current_[cpu.id()] = nullptr;
}

bool Kernel::run_due_timer(hw::Cpu& cpu) {
  if (timers_.empty()) return false;
  auto it = timers_.begin();
  if (it->first > cpu.now()) return false;
  auto fn = std::move(it->second);
  timers_.erase(it);
  cpu.charge(600);  // timer softirq dispatch
  fn();
  return true;
}

void Kernel::deliver_timer_tick(hw::Cpu& cpu) {
  ++stats_.timer_ticks;
  cpu.charge(costs::kTimerTickWork);
  Task* cur = current_[cpu.id()];
  if (cur && !runqueues_[cpu.id()].empty()) cur->need_resched = true;
}

void Kernel::handle_interrupt(hw::Cpu& cpu, const hw::PendingInterrupt& irq) {
  ++stats_.interrupts;
  MERC_COUNT("kernel.interrupts");
  cpu.charge(hw::costs::kTrapEntry + vo_path_tax_);
  if (ops_->is_virtual()) {
    // Hardware interrupts land in the VMM first and are forwarded to the
    // guest as events.
    cpu.charge(pv::costs::kVmmTrapDispatch + pv::costs::kVmmBounceToGuest);
  }
  switch (irq.vector) {
    case hw::kVecTimer:
      deliver_timer_tick(cpu);
      break;
    case hw::kVecNic:
      net_->rx_drain(cpu);
      break;
    case hw::kVecDisk:
    case hw::kVecSensor:
      break;  // synchronous device model; nothing pending
    case hw::kVecIpiReschedule:
      cpu.charge(hw::costs::kIpiAck);
      break;
    case hw::kVecIpiTlbShootdown:
      cpu.charge(hw::costs::kIpiAck + hw::costs::kTlbFlushAll);
      cpu.tlb().flush_all();
      break;
    case hw::kVecIpiModeSwitch:
    case hw::kVecSelfVirtAttach:
    case hw::kVecSelfVirtDetach:
      if (selfvirt_handler_) selfvirt_handler_(cpu, irq.vector, irq.payload);
      break;
    default:
      util::log_warn("kernel", name_, ": spurious interrupt vector ",
                     static_cast<int>(irq.vector));
      break;
  }
  cpu.charge(hw::costs::kTrapReturn);
}

void Kernel::idle_advance(hw::Cpu& cpu) {
  hw::Cycles next = machine_->timers().next_deadline(cpu.id());
  if (auto irq = machine_->interrupts().earliest_arrival(cpu.id()))
    next = std::min(next, *irq);
  if (!timers_.empty()) next = std::min(next, timers_.begin()->first);
  if (auto pkt = machine_->nic().earliest_arrival())
    next = std::min(next, *pkt);
  if (idle_clamp_ != 0) next = std::min(next, idle_clamp_);
  cpu.advance_to(next);
}

bool Kernel::step() {
  MERC_CHECK(booted_);
  hw::Cpu& cpu = pick_earliest_cpu();

  if (machine_->timers().tick_due(cpu))
    machine_->interrupts().raise(cpu.id(), hw::kVecTimer, cpu.now());

  if (auto irq = machine_->interrupts().next_pending(cpu)) {
    MERC_PROF_SCOPE("kernel.step.interrupt", &cpu);
    handle_interrupt(cpu, *irq);
    return true;
  }

  // Any CPU may retire a due software timer. Pinning the timer wheel to
  // CPU 0 livelocks on SMP: once CPU 0's clock runs past a due deadline,
  // another CPU parks exactly at that deadline (idle_advance never moves a
  // clock beyond timers_.begin()), stays the earliest forever, and CPU 0 —
  // the only CPU allowed to run the timer — is never picked again.
  if (!timers_.empty()) {
    MERC_PROF_SCOPE("kernel.step.timer", &cpu);
    if (run_due_timer(cpu)) return true;
  }

  if (Task* t = pick_task(cpu)) {
    MERC_PROF_SCOPE("kernel.step.task", &cpu);
    dispatch(cpu, *t);
    return true;
  }

  // Idle. If any task is runnable on another CPU, or a wakeup source is
  // pending, just advance the clock; otherwise report full idleness.
  const bool any_runnable = runnable_tasks() > 0;
  const bool timers_pending = !timers_.empty();
  bool any_irq = false;
  for (std::size_t i = 0; i < machine_->num_cpus(); ++i)
    if (machine_->interrupts().earliest_arrival(static_cast<std::uint32_t>(i)))
      any_irq = true;
  if (!any_runnable && !timers_pending && !any_irq &&
      !machine_->nic().earliest_arrival()) {
    return false;
  }
  if (idle_clamp_ != 0 && cpu.now() >= idle_clamp_) return false;  // parked
  {
    MERC_PROF_SCOPE("kernel.step.idle", &cpu);
    idle_advance(cpu);
  }
  return true;
}

bool Kernel::run_until_idle(hw::Cycles budget) {
  const hw::Cycles start = earliest_cpu_time();
  while (step()) {
    if (budget != 0 && earliest_cpu_time() - start > budget) return false;
  }
  return true;
}

bool Kernel::run_until(const std::function<bool()>& pred, hw::Cycles budget) {
  const hw::Cycles start = earliest_cpu_time();
  while (!pred()) {
    if (!step()) {
      // Fully idle but predicate unmet: give timers/interrupts a chance by
      // advancing; if still nothing, fail.
      if (pred()) return true;
      return false;
    }
    if (budget != 0 && earliest_cpu_time() - start > budget) return false;
  }
  return true;
}

void Kernel::advance_all_cpus_to(hw::Cycles t) {
  for (std::size_t i = 0; i < machine_->num_cpus(); ++i)
    machine_->cpu(i).advance_to(t);
}

void Kernel::run_for(hw::Cycles span) {
  const hw::Cycles end = earliest_cpu_time() + span;
  while (earliest_cpu_time() < end) {
    if (!step()) {
      // Fully idle: jump the clocks forward.
      for (std::size_t i = 0; i < machine_->num_cpus(); ++i)
        machine_->cpu(i).advance_to(end);
      break;
    }
  }
}

// --- traps -------------------------------------------------------------------

void Kernel::on_trap(hw::Cpu& cpu, const hw::TrapInfo& info) {
  guest_trap(cpu, info);
}

void Kernel::guest_trap(hw::Cpu& cpu, const hw::TrapInfo& info) {
  cpu.charge(vo_path_tax_);
  Task* cur = current_[cpu.id()];
  switch (info.kind) {
    case hw::TrapKind::kPageFault: {
      ++stats_.page_faults;
      MERC_COUNT("kernel.page_faults");
      MERC_CHECK_MSG(cur != nullptr, "page fault with no current task at 0x"
                                         << std::hex << info.fault_addr);
      lock_kernel(cpu);
      const bool ok = cur->aspace->handle_fault(cpu, info.fault_addr, info.write);
      unlock_kernel(cpu);
      if (!ok) {
        // Signal delivery: frame setup, handler dispatch, sigreturn.
        cpu.charge(costs::kSigsegvSetup + hw::costs::kTrapReturn);
        if (cur->catch_segv) {
          ++cur->segv_caught;  // the faulting access is not retried
          return;
        }
        throw TaskKilled{11};  // SIGSEGV
      }
      return;
    }
    case hw::TrapKind::kGeneralProtection:
      if (cur != nullptr) throw TaskKilled{11};
      MERC_CHECK_MSG(false, "kernel-context #GP: " << info.detail);
      return;
    case hw::TrapKind::kInvalidOpcode:
      if (cur != nullptr) throw TaskKilled{4};
      MERC_CHECK_MSG(false, "kernel-context #UD: " << info.detail);
      return;
  }
}

// --- SMP lock model ---------------------------------------------------------

void Kernel::lock_kernel(hw::Cpu& cpu) {
  if (machine_->num_cpus() < 2) return;
  cpu.charge(costs::kLockUncontended);
  if (lock_rng_.chance(costs::kLockContentionProb))
    cpu.charge(costs::kLockContended);
}

void Kernel::unlock_kernel(hw::Cpu& cpu) {
  if (machine_->num_cpus() < 2) return;
  cpu.charge(costs::kLockUncontended / 2);
}

// --- pipes -------------------------------------------------------------------

int Kernel::pipe_create() {
  pipes_.push_back(std::make_unique<Pipe>());
  return static_cast<int>(pipes_.size() - 1);
}

Pipe& Kernel::pipe(int idx) {
  MERC_CHECK(idx >= 0 && static_cast<std::size_t>(idx) < pipes_.size());
  return *pipes_[idx];
}

// --- COW frame refs -----------------------------------------------------------

void Kernel::frame_ref(hw::Pfn pfn) { ++frame_refs_[pfn]; }

bool Kernel::frame_unref(hw::Pfn pfn) {
  auto it = frame_refs_.find(pfn);
  MERC_CHECK_MSG(it != frame_refs_.end() && it->second > 0,
                 "unref of untracked frame " << pfn);
  if (--it->second == 0) {
    frame_refs_.erase(it);
    return true;
  }
  return false;
}

std::uint32_t Kernel::frame_refcount(hw::Pfn pfn) const {
  auto it = frame_refs_.find(pfn);
  return it == frame_refs_.end() ? 0 : it->second;
}

// --- timers -------------------------------------------------------------------

void Kernel::add_timer(hw::Cycles at, std::function<void()> fn) {
  timers_.emplace(at, std::move(fn));
}

// --- mode switch support -------------------------------------------------------

SavedContext Kernel::kernel_context_snapshot() const {
  const hw::Ring ring = ops_->kernel_ring();
  SavedContext ctx;
  ctx.cs = hw::make_selector(hw::kGdtKernelCs, ring);
  ctx.ss = hw::make_selector(hw::kGdtKernelDs, ring);
  ctx.valid = true;
  return ctx;
}

// --- migration ------------------------------------------------------------------

void Kernel::migrate_to(hw::Machine& dst, hw::Pfn new_base,
                        std::vector<std::pair<std::uint32_t, hw::Pte>>
                            new_extra_pdes) {
  MERC_CHECK_MSG(&dst != machine_, "migrate_to the same machine");
  hw::Cpu& dcpu = dst.cpu(0);
  const hw::Pfn old_base = base_pfn_;
  const auto translate = [&](hw::Pfn pfn) -> hw::Pfn {
    MERC_CHECK_MSG(pfn >= old_base && pfn < old_base + frame_count_,
                   "migrating kernel references foreign frame " << pfn);
    return new_base + (pfn - old_base);
  };

  // Rewrite the frame pool and COW reference table.
  pool_.remap(translate);
  std::unordered_map<hw::Pfn, std::uint32_t> new_refs;
  for (const auto& [pfn, n] : frame_refs_) new_refs[translate(pfn)] = n;
  frame_refs_ = std::move(new_refs);

  // Rewrite page-table frame numbers and PTE contents (uncanonicalize).
  auto rewrite_table = [&](hw::Pfn new_table, bool is_l2) {
    for (std::uint32_t e = 0; e < hw::kPtEntries; ++e) {
      const hw::PhysAddr a = hw::addr_of(new_table) + e * 4;
      hw::Pte pte{dst.memory().read_u32(a)};
      if (!pte.present()) continue;
      dcpu.charge(120);  // restore-time PTE fixup
      if (is_l2 && e >= hw::pde_index(kVmmBase)) {
        // Reserved VMM PDEs are replaced with the target's own template.
        hw::Pte repl{};
        for (const auto& [idx, v] : new_extra_pdes)
          if (idx == e) repl = v;
        dst.memory().write_u32(a, repl.raw);
        continue;
      }
      pte.set_pfn(translate(pte.pfn()));
      dst.memory().write_u32(a, pte.raw);
    }
  };

  for (auto& l1 : kernel_l1s_) l1 = translate(l1);
  kernel_pd_ = translate(kernel_pd_);
  for (const hw::Pfn l1 : kernel_l1s_) rewrite_table(l1, false);
  rewrite_table(kernel_pd_, true);
  for (std::size_t i = 0; i < kernel_pdes_.size(); ++i) {
    if (kernel_pdes_[i].present())
      kernel_pdes_[i].set_pfn(translate(kernel_pdes_[i].pfn()));
  }
  for (auto& [pid, t] : tasks_) {
    if (!t->aspace) continue;
    AddressSpace& as = *t->aspace;
    as.pd_ = translate(as.pd_);
    for (auto& [pde, l1] : as.l1_frames_) l1 = translate(l1);
    for (const auto& [pde, l1] : as.l1_frames_) rewrite_table(l1, false);
    rewrite_table(as.pd_, true);
  }

  base_pfn_ = new_base;
  extra_pdes_ = std::move(new_extra_pdes);
  machine_ = &dst;
  MERC_CHECK(runqueues_.size() <= dst.num_cpus() || dst.num_cpus() >= 1);
  // Re-shape per-CPU structures if the target has a different CPU count.
  if (runqueues_.size() != dst.num_cpus()) {
    std::deque<Task*> all;
    for (auto& rq : runqueues_)
      for (Task* t : rq) all.push_back(t);
    runqueues_.assign(dst.num_cpus(), {});
    current_.assign(dst.num_cpus(), nullptr);
    for (Task* t : all) {
      t->last_cpu = 0;
      if (t->affinity != Task::kNoAffinity)
        t->affinity = t->affinity % dst.num_cpus();
      runqueues_[0].push_back(t);
    }
    for_each_task([&](Task& t) { t.last_cpu = t.last_cpu % dst.num_cpus(); });
  }

  // Reload the hardware control state on the target. The restore executes
  // in VMM/restore context at ring 0, so the registers are written directly;
  // whoever owns the target's hardware (its hypervisor) re-asserts its own
  // descriptor tables afterwards.
  for (std::size_t i = 0; i < dst.num_cpus(); ++i) {
    hw::Cpu& cpu = dst.cpu(i);
    const hw::Ring prev = cpu.cpl();
    cpu.set_cpl(hw::Ring::kRing0);
    cpu.load_gdt(gdt_token_);
    cpu.load_idt(idt_token_);
    cpu.write_cr3(kernel_pd_);
    cpu.set_iflag_raw(true);
    cpu.set_cpl(prev);
  }
}

// --- awaitables ----------------------------------------------------------------

void BlockOn::await_suspend(std::coroutine_handle<> h) {
  task.resume_point = h;
  task.state = TaskState::kBlocked;
  task.waiting_on = &queue;
  task.saved_ctx = kernel.kernel_context_snapshot();
  queue.add(&task);
  if (kernel.current(task.last_cpu) == &task) {
    // The stepper notices the state change after resume() returns.
  }
}

void BlockOn::await_resume() {
  if (task.killed) throw TaskKilled{-task.exit_status};
}

void YieldCpu::await_suspend(std::coroutine_handle<> h) {
  task.resume_point = h;
  task.state = TaskState::kRunnable;
  // Yield points are user-mode preemption: the saved frame carries ring-3
  // selectors, which never need fixup.
  task.saved_ctx.cs = hw::make_selector(hw::kGdtUserCs, hw::Ring::kRing3);
  task.saved_ctx.ss = hw::make_selector(hw::kGdtUserDs, hw::Ring::kRing3);
  task.saved_ctx.valid = true;
  kernel.enqueue(&task);
}

void YieldCpu::await_resume() {
  if (task.killed) throw TaskKilled{-task.exit_status};
}

}  // namespace mercury::kernel
