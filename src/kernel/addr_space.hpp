// Per-process virtual address space: VMAs + a real two-level page table in
// simulated physical memory.
//
// Every page-table mutation goes through the kernel's SensitiveOps object,
// so the same code path costs bare-hardware prices natively and
// trap-&-emulate / hypercall prices under a VMM. Fork clones with
// copy-on-write; demand paging services faults.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "hw/cpu.hpp"
#include "hw/pte.hpp"
#include "hw/types.hpp"

namespace mercury::kernel {

class Kernel;

enum class VmaKind : std::uint8_t { kAnon, kFile };

struct Vma {
  hw::VirtAddr start = 0;
  hw::VirtAddr end = 0;  // exclusive
  bool writable = false;
  VmaKind kind = VmaKind::kAnon;
  std::int32_t inode = -1;       // file-backed mappings
  std::uint64_t file_offset = 0;

  bool contains(hw::VirtAddr va) const { return va >= start && va < end; }
  std::size_t pages() const { return (end - start) / hw::kPageSize; }
};

class AddressSpace {
 public:
  /// Builds a fresh address space: allocates a page directory, installs the
  /// kernel and (if present) VMM mappings, and pins it under a VMM.
  AddressSpace(Kernel& kernel, hw::Cpu& cpu);
  ~AddressSpace();

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  hw::Pfn page_directory() const { return pd_; }

  /// Map a region; returns the chosen base address.
  hw::VirtAddr mmap(hw::Cpu& cpu, hw::VirtAddr hint, std::size_t len, bool writable,
                    VmaKind kind, std::int32_t inode = -1,
                    std::uint64_t file_offset = 0);
  void munmap(hw::Cpu& cpu, hw::VirtAddr start, std::size_t len);
  void mprotect(hw::Cpu& cpu, hw::VirtAddr start, std::size_t len, bool writable);

  /// Demand-paging fault service. Returns false if the access is invalid
  /// (no VMA / permission), in which case the caller delivers SIGSEGV.
  bool handle_fault(hw::Cpu& cpu, hw::VirtAddr va, bool write);

  /// Fork: clone VMAs and page tables, sharing anonymous pages COW.
  std::unique_ptr<AddressSpace> fork_clone(hw::Cpu& cpu);

  /// Exec: drop every user mapping (the caller then maps the new image).
  void clear_user(hw::Cpu& cpu);

  /// Full simulated teardown (process exit): clear_user + unpin and free the
  /// page directory, charging all costs. After this only host cleanup
  /// remains for the destructor.
  void teardown(hw::Cpu& cpu);

  const std::vector<Vma>& vmas() const { return vmas_; }
  std::size_t resident_pages() const { return resident_pages_; }

  /// Page-table frames (PD + L1s) — what a VMM pins/unpins and what the mode
  /// switch flips between writable and read-only.
  std::vector<hw::Pfn> page_table_frames() const;
  hw::Pfn l1_for_pde(std::uint32_t pde) const;

  /// Count of present PTEs with the dirty bit set in user mappings, clearing
  /// them (log-dirty scan for live migration rounds). Appends the dirtied
  /// *frames* to `out_pfns` when provided.
  std::size_t collect_and_clear_dirty(hw::Cpu& cpu, std::vector<hw::Pfn>* out_pfns);

 private:
  friend class Kernel;

  hw::Pte read_pte(hw::Cpu& cpu, hw::PhysAddr pte_addr) const;
  void write_pte(hw::Cpu& cpu, hw::PhysAddr pte_addr, hw::Pte value);
  /// Ensure an L1 table exists for the PDE covering `va`; returns its pfn.
  hw::Pfn ensure_l1(hw::Cpu& cpu, hw::VirtAddr va);
  hw::PhysAddr pte_addr_for(hw::Cpu& cpu, hw::VirtAddr va);
  void zap_range(hw::Cpu& cpu, hw::VirtAddr start, hw::VirtAddr end);
  Vma* find_vma(hw::VirtAddr va);
  void install_page(hw::Cpu& cpu, hw::VirtAddr va, hw::Pfn frame, bool writable);

  Kernel& kernel_;
  hw::Pfn pd_ = 0;
  std::map<std::uint32_t, hw::Pfn> l1_frames_;  // pde index -> L1 frame
  std::vector<Vma> vmas_;
  std::size_t resident_pages_ = 0;
  hw::VirtAddr mmap_cursor_;
};

}  // namespace mercury::kernel
