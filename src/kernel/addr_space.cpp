#include "kernel/addr_space.hpp"

#include <algorithm>

#include "hw/costs.hpp"
#include "kernel/kernel.hpp"
#include "kernel/layout.hpp"
#include "util/assert.hpp"

namespace mercury::kernel {

using hw::Pte;

namespace {
constexpr std::uint32_t kFirstUserPde = 0;
constexpr std::uint32_t kLastUserPde = hw::pde_index(kUserTop) - 1;
}  // namespace

AddressSpace::AddressSpace(Kernel& kernel, hw::Cpu& cpu)
    : kernel_(kernel), mmap_cursor_(kUserMmap) {
  auto& ops = kernel_.ops();
  MERC_CHECK_MSG(kernel_.pool().alloc(pd_), "out of kernel memory for PD");
  kernel_.machine().memory().zero_frame(pd_);
  cpu.charge(hw::costs::kPageZero);

  // Install the shared kernel mappings and any reserved (VMM) PDEs. These
  // writes happen before the directory is pinned as a page table, so they
  // are plain memory writes even under a VMM (Xen validates them at pin).
  const auto& kpdes = kernel_.kernel_pdes();
  const hw::PhysAddr pd_base = hw::addr_of(pd_);
  for (std::size_t i = 0; i < kpdes.size(); ++i) {
    if (!kpdes[i].present()) continue;
    cpu.charge(hw::costs::kMemAccess / 8);  // streamed copy
    kernel_.machine().memory().write_u32(pd_base + (768 + i) * 4, kpdes[i].raw);
  }
  for (const auto& [idx, pde] : kernel_.extra_pdes()) {
    cpu.charge(hw::costs::kMemAccess / 8);
    kernel_.machine().memory().write_u32(pd_base + idx * 4, pde.raw);
  }

  ops.pin_page_table(cpu, pd_, pv::PtLevel::kL2);
}

AddressSpace::~AddressSpace() {
  // Host-side cleanup only: simulated teardown (with costs and unpins)
  // happens in clear_user()/Kernel::finalize_exit before destruction. Any
  // frames still held here are returned without charging.
  for (auto& [pde, l1] : l1_frames_) kernel_.pool().free(l1);
  if (pd_ != 0) kernel_.pool().free(pd_);
}

Pte AddressSpace::read_pte(hw::Cpu& cpu, hw::PhysAddr pte_addr) const {
  cpu.charge(hw::costs::kMemAccess / 2);  // mostly cache-resident
  return Pte{kernel_.machine().memory().read_u32(pte_addr)};
}

void AddressSpace::write_pte(hw::Cpu& cpu, hw::PhysAddr pte_addr, Pte value) {
  kernel_.ops().pte_write(cpu, pte_addr, value);
}

hw::Pfn AddressSpace::ensure_l1(hw::Cpu& cpu, hw::VirtAddr va) {
  const std::uint32_t pde = hw::pde_index(va);
  MERC_CHECK_MSG(pde >= kFirstUserPde && pde <= kLastUserPde,
                 "ensure_l1 outside user range");
  auto it = l1_frames_.find(pde);
  if (it != l1_frames_.end()) return it->second;

  hw::Pfn l1 = 0;
  MERC_CHECK_MSG(kernel_.pool().alloc(l1), "out of kernel memory for L1");
  kernel_.machine().memory().zero_frame(l1);
  cpu.charge(hw::costs::kPageZero);
  l1_frames_[pde] = l1;

  // Under a VMM the new table must be validated/pinned before the directory
  // may reference it.
  kernel_.ops().pin_page_table(cpu, l1, pv::PtLevel::kL1);
  Pte pde_val = hw::make_pte(l1, /*writable=*/true, /*user=*/true);
  write_pte(cpu, hw::addr_of(pd_) + pde * 4, pde_val);
  return l1;
}

hw::PhysAddr AddressSpace::pte_addr_for(hw::Cpu& cpu, hw::VirtAddr va) {
  const hw::Pfn l1 = ensure_l1(cpu, va);
  return hw::addr_of(l1) + hw::pte_index(va) * 4;
}

Vma* AddressSpace::find_vma(hw::VirtAddr va) {
  for (auto& v : vmas_)
    if (v.contains(va)) return &v;
  return nullptr;
}

hw::VirtAddr AddressSpace::mmap(hw::Cpu& cpu, hw::VirtAddr hint, std::size_t len,
                                bool writable, VmaKind kind, std::int32_t inode,
                                std::uint64_t file_offset) {
  MERC_CHECK(len > 0 && len % hw::kPageSize == 0);
  hw::VirtAddr base = hint;
  if (base == 0) {
    base = mmap_cursor_;
    mmap_cursor_ += static_cast<hw::VirtAddr>(len) + hw::kPageSize;  // guard gap
  }
  MERC_CHECK_MSG(is_user_va(base) && is_user_va(base + len - 1),
                 "mmap outside user space");
  cpu.charge(costs::kVmaOp);
  vmas_.push_back(Vma{base, base + static_cast<hw::VirtAddr>(len), writable, kind,
                      inode, file_offset});
  return base;
}

void AddressSpace::zap_range(hw::Cpu& cpu, hw::VirtAddr start, hw::VirtAddr end) {
  for (hw::VirtAddr va = start; va < end; va += hw::kPageSize) {
    const std::uint32_t pde = hw::pde_index(va);
    auto it = l1_frames_.find(pde);
    if (it == l1_frames_.end()) {
      // Skip the whole missing table.
      va = ((va >> 22) + 1) << 22;
      va -= hw::kPageSize;
      continue;
    }
    const hw::PhysAddr pte_addr = hw::addr_of(it->second) + hw::pte_index(va) * 4;
    const Pte pte = read_pte(cpu, pte_addr);
    if (!pte.present()) continue;
    cpu.charge(costs::kZapPerPage);
    if (const Vma* v = find_vma(va); v != nullptr && v->kind == VmaKind::kFile)
      cpu.charge(costs::kZapFileExtra);
    kernel_.smp_tax(cpu, costs::kSmpZapTax);
    write_pte(cpu, pte_addr, Pte{});
    kernel_.ops().flush_tlb_page(cpu, va);
    if (kernel_.frame_unref(pte.pfn())) kernel_.pool().free(pte.pfn());
    --resident_pages_;
  }
}

void AddressSpace::munmap(hw::Cpu& cpu, hw::VirtAddr start, std::size_t len) {
  const hw::VirtAddr end = start + static_cast<hw::VirtAddr>(len);
  zap_range(cpu, start, end);
  cpu.charge(costs::kVmaOp);
  std::vector<Vma> kept;
  kept.reserve(vmas_.size());
  for (auto& v : vmas_) {
    if (v.end <= start || v.start >= end) {
      kept.push_back(v);
      continue;
    }
    if (v.start < start) {
      Vma head = v;
      head.end = start;
      kept.push_back(head);
    }
    if (v.end > end) {
      Vma tail = v;
      tail.start = end;
      tail.file_offset += end - v.start;
      kept.push_back(tail);
    }
  }
  vmas_ = std::move(kept);
}

void AddressSpace::mprotect(hw::Cpu& cpu, hw::VirtAddr start, std::size_t len,
                            bool writable) {
  const hw::VirtAddr end = start + static_cast<hw::VirtAddr>(len);
  cpu.charge(costs::kVmaOp);
  // Split VMAs so the protected range has exact boundaries.
  std::vector<Vma> next;
  next.reserve(vmas_.size() + 2);
  for (auto& v : vmas_) {
    if (v.end <= start || v.start >= end) {
      next.push_back(v);
      continue;
    }
    if (v.start < start) {
      Vma head = v;
      head.end = start;
      next.push_back(head);
    }
    Vma mid = v;
    mid.start = std::max(v.start, start);
    mid.end = std::min(v.end, end);
    mid.writable = writable;
    next.push_back(mid);
    if (v.end > end) {
      Vma tail = v;
      tail.start = end;
      next.push_back(tail);
    }
  }
  vmas_ = std::move(next);

  // Downgrade present PTEs when revoking write (hardware enforcement);
  // upgrades are realized lazily at fault time.
  if (!writable) {
    for (hw::VirtAddr va = start; va < end; va += hw::kPageSize) {
      auto it = l1_frames_.find(hw::pde_index(va));
      if (it == l1_frames_.end()) continue;
      const hw::PhysAddr pte_addr = hw::addr_of(it->second) + hw::pte_index(va) * 4;
      Pte pte = read_pte(cpu, pte_addr);
      if (!pte.present() || !pte.writable()) continue;
      pte.set_flag(Pte::kWritable, false);
      write_pte(cpu, pte_addr, pte);
      kernel_.ops().flush_tlb_page(cpu, va);
    }
  }
}

void AddressSpace::install_page(hw::Cpu& cpu, hw::VirtAddr va, hw::Pfn frame,
                                bool writable) {
  const hw::PhysAddr pte_addr = pte_addr_for(cpu, va);
  write_pte(cpu, pte_addr, hw::make_pte(frame, writable, /*user=*/true));
  ++resident_pages_;
}

bool AddressSpace::handle_fault(hw::Cpu& cpu, hw::VirtAddr va, bool write) {
  cpu.charge(costs::kFaultVmaLookup);
  Vma* vma = find_vma(va);
  if (vma == nullptr) return false;
  if (write && !vma->writable) return false;

  const hw::PhysAddr pte_addr = pte_addr_for(cpu, va);
  Pte pte = read_pte(cpu, pte_addr);

  if (pte.present()) {
    if (write && !pte.writable() && pte.cow()) {
      // Copy-on-write break.
      ++kernel_.stats().cow_breaks;
      const hw::Pfn old = pte.pfn();
      if (kernel_.frame_refcount(old) > 1) {
        hw::Pfn fresh = 0;
        MERC_CHECK_MSG(kernel_.pool().alloc(fresh), "OOM during COW");
        kernel_.machine().memory().copy_frame(fresh, old);
        cpu.charge(hw::costs::kPageCopy);
        kernel_.frame_unref(old);
        kernel_.frame_ref(fresh);
        Pte fresh_pte = hw::make_pte(fresh, /*writable=*/true, /*user=*/true);
        write_pte(cpu, pte_addr, fresh_pte);
      } else {
        pte.set_flag(Pte::kWritable, true);
        pte.set_flag(Pte::kCow, false);
        write_pte(cpu, pte_addr, pte);
      }
      kernel_.ops().flush_tlb_page(cpu, va);
      return true;
    }
    if (write && !pte.writable()) return false;  // genuine protection fault
    // Spurious fault (e.g. stale TLB after an upgrade elsewhere): remap.
    kernel_.ops().flush_tlb_page(cpu, va);
    return true;
  }

  // Demand paging.
  kernel_.smp_tax(cpu, costs::kSmpFaultTax);
  hw::Pfn frame = 0;
  MERC_CHECK_MSG(kernel_.pool().alloc(frame), "OOM during demand paging");
  kernel_.frame_ref(frame);
  if (vma->kind == VmaKind::kFile) {
    cpu.charge(costs::kFilePageLookup);  // page-cache radix walk (warm)
    cpu.charge(costs::kFileMapCopy);
  } else {
    cpu.charge(costs::kAnonPagePrep);
    kernel_.machine().memory().zero_frame(frame);
    cpu.charge(hw::costs::kPageZero);
  }
  install_page(cpu, va, frame, vma->writable);
  return true;
}

std::unique_ptr<AddressSpace> AddressSpace::fork_clone(hw::Cpu& cpu) {
  auto child = std::make_unique<AddressSpace>(kernel_, cpu);
  child->vmas_ = vmas_;
  child->mmap_cursor_ = mmap_cursor_;

  // copy_page_range: batched table updates (Linux-on-Xen multicalls the
  // copies; only fault-time installs and teardown use trap-&-emulate).
  std::vector<pv::PteUpdate> batch;
  batch.reserve(128);
  auto flush_batch = [&] {
    if (batch.empty()) return;
    kernel_.ops().pte_write_batch(cpu, batch);
    batch.clear();
  };
  for (const auto& vma : vmas_) {
    for (hw::VirtAddr va = vma.start; va < vma.end; va += hw::kPageSize) {
      auto it = l1_frames_.find(hw::pde_index(va));
      if (it == l1_frames_.end()) {
        va = (((va >> 22) + 1) << 22) - hw::kPageSize;
        continue;
      }
      const hw::PhysAddr ppte_addr = hw::addr_of(it->second) + hw::pte_index(va) * 4;
      Pte ppte = read_pte(cpu, ppte_addr);
      if (!ppte.present()) continue;
      cpu.charge(costs::kPteCopyWork);
      kernel_.smp_tax(cpu, costs::kSmpCopyTax);

      if (ppte.writable()) {
        // Share COW: downgrade the parent, too.
        ppte.set_flag(Pte::kWritable, false);
        ppte.set_flag(Pte::kCow, true);
        batch.push_back(pv::PteUpdate{ppte_addr, ppte});
      }
      const hw::PhysAddr cpte_addr = child->pte_addr_for(cpu, va);
      batch.push_back(pv::PteUpdate{cpte_addr, ppte});
      kernel_.frame_ref(ppte.pfn());
      ++child->resident_pages_;
      if (batch.size() >= 128) flush_batch();
    }
  }
  flush_batch();
  // Parent mappings were downgraded: flush.
  kernel_.ops().flush_tlb(cpu);
  return child;
}

void AddressSpace::clear_user(hw::Cpu& cpu) {
  for (const auto& vma : vmas_) zap_range(cpu, vma.start, vma.end);
  vmas_.clear();
  // Free the L1 tables (unpinning them under a VMM).
  for (auto& [pde, l1] : l1_frames_) {
    kernel_.ops().unpin_page_table(cpu, l1);
    write_pte(cpu, hw::addr_of(pd_) + pde * 4, Pte{});
    kernel_.pool().free(l1);
  }
  l1_frames_.clear();
  kernel_.ops().flush_tlb(cpu);
  mmap_cursor_ = kUserMmap;
}

void AddressSpace::teardown(hw::Cpu& cpu) {
  clear_user(cpu);
  kernel_.ops().unpin_page_table(cpu, pd_);
  kernel_.pool().free(pd_);
  pd_ = 0;
}

std::vector<hw::Pfn> AddressSpace::page_table_frames() const {
  std::vector<hw::Pfn> out;
  out.reserve(l1_frames_.size() + 1);
  out.push_back(pd_);
  for (const auto& [pde, l1] : l1_frames_) out.push_back(l1);
  return out;
}

hw::Pfn AddressSpace::l1_for_pde(std::uint32_t pde) const {
  auto it = l1_frames_.find(pde);
  return it == l1_frames_.end() ? 0 : it->second;
}

std::size_t AddressSpace::collect_and_clear_dirty(hw::Cpu& cpu,
                                                  std::vector<hw::Pfn>* out_pfns) {
  std::size_t count = 0;
  for (const auto& vma : vmas_) {
    for (hw::VirtAddr va = vma.start; va < vma.end; va += hw::kPageSize) {
      auto it = l1_frames_.find(hw::pde_index(va));
      if (it == l1_frames_.end()) {
        va = (((va >> 22) + 1) << 22) - hw::kPageSize;
        continue;
      }
      const hw::PhysAddr pte_addr = hw::addr_of(it->second) + hw::pte_index(va) * 4;
      cpu.charge(2);  // tight scan loop
      Pte pte{kernel_.machine().memory().read_u32(pte_addr)};
      if (!pte.present() || !pte.dirty()) continue;
      pte.set_flag(Pte::kDirty, false);
      // Dirty-bit clearing is a VMM-context scan (log-dirty); write directly.
      kernel_.machine().memory().write_u32(pte_addr, pte.raw);
      if (out_pfns) out_pfns->push_back(pte.pfn());
      ++count;
    }
  }
  return count;
}

}  // namespace mercury::kernel
