// The mini-kernel: processes, scheduling, virtual memory, traps, timers,
// filesystem and network stack — the "Linux" of the reproduction.
//
// Every virtualization-sensitive operation is routed through a swappable
// pv::SensitiveOps pointer; Mercury's switch engine relocates the kernel
// between execution modes by exchanging that object (paper §4.2) and
// migrating the hardware/kernel state (§5.1).
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hw/machine.hpp"
#include "kernel/addr_space.hpp"
#include "kernel/coro.hpp"
#include "kernel/costs.hpp"
#include "kernel/frame_pool.hpp"
#include "kernel/task.hpp"
#include "kernel/wait.hpp"
#include "pv/sensitive_ops.hpp"

namespace mercury::kernel {

class Sys;
class MiniFs;
class NetStack;

/// A process body: the "program" a task runs.
using ProcMain = std::function<Sub<void>(Sys&)>;

/// Thrown by Sys::exit to unwind the task coroutine with a status.
struct TaskExit {
  int status = 0;
};

struct Pipe {
  std::size_t buffered = 0;
  std::size_t capacity = 65536;
  int writers_open = 1;
  int readers_open = 1;
  WaitQueue readers;
  WaitQueue writers;
};

struct KernelStats {
  std::uint64_t context_switches = 0;
  std::uint64_t syscalls = 0;
  std::uint64_t page_faults = 0;
  std::uint64_t cow_breaks = 0;
  std::uint64_t timer_ticks = 0;
  std::uint64_t interrupts = 0;
  std::uint64_t selector_fixups = 0;
  std::uint64_t gp_faults_on_resume = 0;
  std::uint64_t tasks_spawned = 0;
};

class Kernel : public hw::TrapSink {
 public:
  Kernel(hw::Machine& machine, pv::SensitiveOps& initial_ops, std::string name);
  ~Kernel() override;

  /// Boot: take ownership of [first_frame, first_frame+frame_count), build
  /// the kernel page tables (direct map + reserved VMM PDEs), load CR3/IDT/
  /// GDT on every CPU through the sensitive-ops object, and start the idle
  /// bookkeeping. `extra_pdes` lets a VMM/Mercury inject its reserved
  /// mappings into every address space (unified layout, §3.2.2).
  void boot(hw::Pfn first_frame, std::size_t frame_count,
            std::vector<std::pair<std::uint32_t, hw::Pte>> extra_pdes = {});
  bool booted() const { return booted_; }

  // --- wiring ---
  hw::Machine& machine() { return *machine_; }
  pv::SensitiveOps& ops() { return *ops_; }
  void set_ops(pv::SensitiveOps& ops) { ops_ = &ops; }
  const std::string& name() const { return name_; }
  FramePool& pool() { return pool_; }
  hw::Pfn base_pfn() const { return base_pfn_; }
  hw::TableToken idt_token() const { return idt_token_; }
  hw::TableToken gdt_token() const { return gdt_token_; }
  hw::Pfn kernel_pd() const { return kernel_pd_; }
  const std::vector<hw::Pfn>& kernel_l1_frames() const { return kernel_l1s_; }
  const std::vector<hw::Pte>& kernel_pdes() const { return kernel_pdes_; }
  const std::vector<std::pair<std::uint32_t, hw::Pte>>& extra_pdes() const {
    return extra_pdes_;
  }
  MiniFs& fs() { return *fs_; }
  NetStack& net() { return *net_; }
  KernelStats& stats() { return stats_; }

  /// Direct-map address arithmetic (guest frames may not start at 0).
  hw::VirtAddr kva_of_frame(hw::Pfn pfn) const;
  hw::PhysAddr pa_of_kva(hw::VirtAddr va) const;

  // --- tasks ---
  Pid spawn(std::string name, ProcMain body, std::size_t working_set_kb = 64,
            std::uint32_t affinity = Task::kNoAffinity);
  Task* find_task(Pid pid);
  Task* current(std::uint32_t cpu) const { return current_[cpu]; }
  std::size_t live_tasks() const;
  std::size_t runnable_tasks() const;
  void enqueue(Task* t);
  void wake_all(WaitQueue& q);
  void wake_one(WaitQueue& q);
  void kill(Pid pid, int signal = 9);
  void for_each_task(const std::function<void(Task&)>& fn);
  /// Wake `pid` if it is currently parked on `q` (timeout timers use this);
  /// returns true if it was woken.
  bool wake_if_waiting(Pid pid, WaitQueue& q);

  /// Fork machinery shared by Sys::fork (does the expensive kernel work).
  Task& do_fork(hw::Cpu& cpu, Task& parent, ProcMain body);
  void finalize_exit(hw::Cpu& cpu, Task& t, int status);
  void reap(Pid pid);
  /// Reap every zombie (init's orphan collection); returns how many.
  std::size_t reap_zombies();

  // --- execution stepper ---
  /// One step on the earliest CPU: deliver an interrupt, run a timer
  /// callback, or run one task slice. Returns false when fully idle (no
  /// runnable task, no pending software timer).
  bool step();
  /// Run until fully idle or `budget` simulated cycles elapse on the
  /// earliest CPU. Returns true if it went idle.
  bool run_until_idle(hw::Cycles budget = 0);
  /// Run until pred() holds; returns false on budget exhaustion.
  bool run_until(const std::function<bool()>& pred, hw::Cycles budget);
  /// Run for a fixed span of simulated time.
  void run_for(hw::Cycles span);
  /// Never-backwards alignment of every CPU clock (cross-machine stepping).
  void advance_all_cpus_to(hw::Cycles t);
  /// Conservative co-simulation: bound how far an idle step may advance the
  /// clock (set to peer time + link lookahead; 0 = unbounded).
  void set_idle_clamp(hw::Cycles t) { idle_clamp_ = t; }

  // --- timers (software) ---
  void add_timer(hw::Cycles at, std::function<void()> fn);
  std::size_t pending_timers() const { return timers_.size(); }

  // --- interrupts & traps ---
  void handle_interrupt(hw::Cpu& cpu, const hw::PendingInterrupt& irq);
  void on_trap(hw::Cpu& cpu, const hw::TrapInfo& info) override;
  /// Entry point used by an active hypervisor to bounce a guest trap here.
  void guest_trap(hw::Cpu& cpu, const hw::TrapInfo& info);
  /// Mercury hooks its attach/detach handlers here (self-virtualization
  /// interrupt vectors + rendezvous IPIs).
  void set_selfvirt_handler(
      std::function<void(hw::Cpu&, std::uint8_t, std::uint32_t)> fn) {
    selfvirt_handler_ = std::move(fn);
  }

  // --- SMP big-kernel-lock model ---
  void lock_kernel(hw::Cpu& cpu);
  void unlock_kernel(hw::Cpu& cpu);
  bool smp() const { return machine_->num_cpus() > 1; }
  /// Charge SMP-only cacheline/lock pressure.
  void smp_tax(hw::Cpu& cpu, hw::Cycles c) {
    if (smp()) cpu.charge(c);
  }

  /// Mercury-built kernels charge the VO layer's path-entry cost on every
  /// trap / syscall / context-switch entry (paper §7.2's code/data layout
  /// displacement). Zero for N-L and unmodified Xen-Linux builds.
  void set_vo_path_tax(hw::Cycles c) { vo_path_tax_ = c; }
  hw::Cycles vo_path_tax() const { return vo_path_tax_; }

  // --- pipes ---
  int pipe_create();
  Pipe& pipe(int idx);

  // --- COW frame sharing ---
  void frame_ref(hw::Pfn pfn);
  /// Decrement; returns true when that was the last reference.
  bool frame_unref(hw::Pfn pfn);
  std::uint32_t frame_refcount(hw::Pfn pfn) const;

  // --- mode switch support (used by core/) ---
  /// Segment selectors a thread blocked in-kernel snapshots right now.
  SavedContext kernel_context_snapshot() const;
  /// Enable/disable the resume-time selector fixup stub (§5.1.2); disabling
  /// it demonstrates the #GP the paper describes.
  void set_selector_fixup_enabled(bool on) { selector_fixup_ = on; }
  bool selector_fixup_enabled() const { return selector_fixup_; }
  /// The per-CPU time of the CPU the stepper would run next.
  hw::Cycles earliest_cpu_time() const;

  /// Relocate this kernel onto another machine (live-migration restore).
  /// Frame contents must already be present at [new_base, new_base+count) on
  /// `dst`; this rewrites every machine-frame number embedded in kernel
  /// state and page tables (Xen's canonicalize/uncanonicalize pass) and
  /// rebinds the device/interrupt plumbing. Costs are charged to dst CPU 0.
  void migrate_to(hw::Machine& dst, hw::Pfn new_base,
                  std::vector<std::pair<std::uint32_t, hw::Pte>> new_extra_pdes);

 private:
  friend class AddressSpace;
  friend class Sys;

  hw::Cpu& pick_earliest_cpu();
  Task* pick_task(hw::Cpu& cpu);
  void dispatch(hw::Cpu& cpu, Task& t);
  bool run_due_timer(hw::Cpu& cpu);
  void idle_advance(hw::Cpu& cpu);
  void deliver_timer_tick(hw::Cpu& cpu);
  bool fixup_saved_selectors(Task& t, hw::Cpu& cpu);
  void build_kernel_mappings();

  hw::Machine* machine_;
  pv::SensitiveOps* ops_;
  std::string name_;
  bool booted_ = false;

  FramePool pool_;
  hw::Pfn base_pfn_ = 0;
  std::size_t frame_count_ = 0;
  hw::TableToken idt_token_{};
  hw::TableToken gdt_token_{};
  hw::Pfn kernel_pd_ = 0;
  std::vector<hw::Pfn> kernel_l1s_;
  std::vector<hw::Pte> kernel_pdes_;  // PDE template, indices 768..1023
  std::vector<std::pair<std::uint32_t, hw::Pte>> extra_pdes_;

  Pid next_pid_ = 1;
  std::map<Pid, std::unique_ptr<Task>> tasks_;
  std::vector<std::deque<Task*>> runqueues_;
  std::vector<Task*> current_;

  std::multimap<hw::Cycles, std::function<void()>> timers_;

  std::vector<std::unique_ptr<Pipe>> pipes_;
  std::unordered_map<hw::Pfn, std::uint32_t> frame_refs_;

  std::function<void(hw::Cpu&, std::uint8_t, std::uint32_t)> selfvirt_handler_;

  std::unique_ptr<MiniFs> fs_;
  std::unique_ptr<NetStack> net_;

  bool selector_fixup_ = true;
  hw::Cycles idle_clamp_ = 0;
  hw::Cycles vo_path_tax_ = 0;
  util::Rng lock_rng_;
  KernelStats stats_;
};

/// Awaitable: park the current task on a wait queue until woken.
struct BlockOn {
  Kernel& kernel;
  Task& task;
  WaitQueue& queue;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h);
  void await_resume();
};

/// Awaitable: voluntarily yield the CPU (stay runnable).
struct YieldCpu {
  Kernel& kernel;
  Task& task;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h);
  void await_resume();
};

}  // namespace mercury::kernel
