#include "kernel/task.hpp"

#include "kernel/addr_space.hpp"
#include "kernel/syscalls.hpp"

namespace mercury::kernel {

Task::Task(Pid pid_in, Pid ppid_in, std::string name_in)
    : pid(pid_in), ppid(ppid_in), name(std::move(name_in)) {}

Task::~Task() {
  if (root) {
    root.destroy();
    root = nullptr;
  }
}

int Task::alloc_fd(OpenFile f) {
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].kind == OpenFile::Kind::kNone) {
      fds[i] = f;
      return static_cast<int>(i);
    }
  }
  fds.push_back(f);
  return static_cast<int>(fds.size() - 1);
}

OpenFile* Task::fd(int n) {
  if (n < 0 || static_cast<std::size_t>(n) >= fds.size()) return nullptr;
  if (fds[n].kind == OpenFile::Kind::kNone) return nullptr;
  return &fds[n];
}

void Task::close_fd(int n) {
  if (auto* f = fd(n)) *f = OpenFile{};
}

}  // namespace mercury::kernel
