// Buffer/page cache over the block device: LRU with write-back.
//
// The cache tracks block identities and dirty state (file *content* is not
// semantically meaningful to any workload, so no bytes are stored); hits,
// misses and write-backs charge realistic costs through the caller.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace mercury::kernel {

class BlockCache {
 public:
  explicit BlockCache(std::size_t capacity_blocks);

  /// Touch a block; returns true on hit (LRU position refreshed).
  bool lookup(std::uint64_t block);
  /// Insert after a miss (caller performed the disk read).
  void insert(std::uint64_t block, bool dirty);
  void mark_dirty(std::uint64_t block);
  bool is_cached(std::uint64_t block) const;
  bool is_dirty(std::uint64_t block) const;
  void clear_dirty(std::uint64_t block);
  /// Drop a block entirely (file deletion).
  void invalidate(std::uint64_t block);

  /// Blocks that must be written back to get under capacity (caller issues
  /// the device writes, then the entries become clean evictions).
  std::vector<std::uint64_t> evict_to_capacity();

  /// Up to `max` dirty blocks (oldest first) for periodic write-back; their
  /// dirty bits are cleared (caller writes them to the device).
  std::vector<std::uint64_t> take_dirty(std::size_t max);

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t dirty_count() const { return dirty_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    std::list<std::uint64_t>::iterator lru_pos;
    bool dirty = false;
  };

  std::size_t capacity_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, Entry> map_;
  std::size_t dirty_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace mercury::kernel
