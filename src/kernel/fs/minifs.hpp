// A small ext3-flavoured filesystem: path table, inodes with block lists,
// write-back buffer cache, fsync barriers. All device traffic goes through
// the kernel's sensitive-ops object (native driver vs split frontend).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "hw/cpu.hpp"
#include "kernel/fs/block_cache.hpp"

namespace mercury::kernel {

class Kernel;

struct Inode {
  std::int32_t id = -1;
  std::uint64_t size = 0;
  std::vector<std::uint64_t> blocks;
};

struct FsStats {
  std::uint64_t opens = 0;
  std::uint64_t creates = 0;
  std::uint64_t unlinks = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t fsyncs = 0;
};

class MiniFs {
 public:
  MiniFs(Kernel& kernel, std::size_t cache_blocks = 16384);  // 64 MB cache

  /// Open or create; returns inode id, or -1 if absent and !create.
  std::int32_t open(hw::Cpu& cpu, const std::string& path, bool create);
  Inode* inode(std::int32_t id);

  std::size_t read(hw::Cpu& cpu, Inode& ino, std::uint64_t off, std::size_t bytes);
  std::size_t write(hw::Cpu& cpu, Inode& ino, std::uint64_t off, std::size_t bytes);
  void fsync(hw::Cpu& cpu, Inode& ino);
  bool unlink(hw::Cpu& cpu, const std::string& path);
  bool mkdir(hw::Cpu& cpu, const std::string& path);
  bool exists(hw::Cpu& cpu, const std::string& path);
  std::int64_t size_of(hw::Cpu& cpu, const std::string& path);

  /// Periodic flusher (pdflush): write back up to `max_blocks` dirty blocks.
  void writeback_some(hw::Cpu& cpu, std::size_t max_blocks);

  BlockCache& cache() { return cache_; }
  const FsStats& stats() const { return stats_; }
  std::size_t file_count() const { return paths_.size(); }

 private:
  void charge_path(hw::Cpu& cpu, const std::string& path);
  std::uint64_t alloc_block();
  void writeback_blocks(hw::Cpu& cpu, const std::vector<std::uint64_t>& blocks);

  Kernel& kernel_;
  BlockCache cache_;
  std::map<std::string, std::int32_t> paths_;
  std::vector<std::unique_ptr<Inode>> inodes_;
  std::set<std::string> dirs_;
  std::vector<std::uint64_t> free_blocks_;
  std::uint64_t next_block_ = 4096;  // blocks below this: superblock/inode area
  FsStats stats_;
};

}  // namespace mercury::kernel
