#include "kernel/fs/block_cache.hpp"

#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace mercury::kernel {

BlockCache::BlockCache(std::size_t capacity_blocks) : capacity_(capacity_blocks) {
  MERC_CHECK(capacity_blocks > 0);
}

bool BlockCache::lookup(std::uint64_t block) {
  auto it = map_.find(block);
  if (it == map_.end()) {
    ++misses_;
    MERC_COUNT("fs.block_cache.misses");
    return false;
  }
  ++hits_;
  MERC_COUNT("fs.block_cache.hits");
  lru_.erase(it->second.lru_pos);
  lru_.push_front(block);
  it->second.lru_pos = lru_.begin();
  return true;
}

void BlockCache::insert(std::uint64_t block, bool dirty) {
  auto it = map_.find(block);
  if (it != map_.end()) {
    if (dirty && !it->second.dirty) ++dirty_;
    it->second.dirty = it->second.dirty || dirty;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(block);
    it->second.lru_pos = lru_.begin();
    return;
  }
  lru_.push_front(block);
  map_[block] = Entry{lru_.begin(), dirty};
  if (dirty) ++dirty_;
}

void BlockCache::mark_dirty(std::uint64_t block) {
  auto it = map_.find(block);
  if (it == map_.end()) {
    insert(block, true);
    return;
  }
  if (!it->second.dirty) {
    it->second.dirty = true;
    ++dirty_;
  }
}

bool BlockCache::is_cached(std::uint64_t block) const {
  return map_.contains(block);
}

bool BlockCache::is_dirty(std::uint64_t block) const {
  auto it = map_.find(block);
  return it != map_.end() && it->second.dirty;
}

void BlockCache::clear_dirty(std::uint64_t block) {
  auto it = map_.find(block);
  if (it != map_.end() && it->second.dirty) {
    it->second.dirty = false;
    --dirty_;
  }
}

void BlockCache::invalidate(std::uint64_t block) {
  auto it = map_.find(block);
  if (it == map_.end()) return;
  if (it->second.dirty) --dirty_;
  lru_.erase(it->second.lru_pos);
  map_.erase(it);
}

std::vector<std::uint64_t> BlockCache::evict_to_capacity() {
  std::vector<std::uint64_t> writeback;
  while (map_.size() > capacity_) {
    const std::uint64_t victim = lru_.back();
    auto it = map_.find(victim);
    if (it->second.dirty) {
      writeback.push_back(victim);
      --dirty_;
    }
    lru_.pop_back();
    map_.erase(it);
  }
  return writeback;
}

std::vector<std::uint64_t> BlockCache::take_dirty(std::size_t max) {
  std::vector<std::uint64_t> out;
  // Oldest first: walk the LRU list from the back.
  for (auto it = lru_.rbegin(); it != lru_.rend() && out.size() < max; ++it) {
    auto e = map_.find(*it);
    if (e->second.dirty) {
      e->second.dirty = false;
      --dirty_;
      out.push_back(*it);
    }
  }
  return out;
}

}  // namespace mercury::kernel
