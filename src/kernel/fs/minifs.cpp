#include "kernel/fs/minifs.hpp"

#include <algorithm>
#include <array>

#include "hw/devices/disk.hpp"
#include "kernel/costs.hpp"
#include "kernel/kernel.hpp"
#include "util/assert.hpp"

namespace mercury::kernel {

namespace {
constexpr std::size_t kBlockSize = hw::Disk::kBlockSize;

// Scratch buffer for device transfers (content is not semantically used).
std::array<std::uint8_t, kBlockSize>& scratch() {
  static std::array<std::uint8_t, kBlockSize> buf{};
  return buf;
}
}  // namespace

MiniFs::MiniFs(Kernel& kernel, std::size_t cache_blocks)
    : kernel_(kernel), cache_(cache_blocks) {
  dirs_.insert("/");
}

void MiniFs::charge_path(hw::Cpu& cpu, const std::string& path) {
  std::size_t components = 1;
  for (char ch : path)
    if (ch == '/') ++components;
  cpu.charge(costs::kPathLookupPerComponent * components);
}

std::uint64_t MiniFs::alloc_block() {
  if (!free_blocks_.empty()) {
    const std::uint64_t b = free_blocks_.back();
    free_blocks_.pop_back();
    return b;
  }
  return next_block_++;
}

std::int32_t MiniFs::open(hw::Cpu& cpu, const std::string& path, bool create) {
  ++stats_.opens;
  charge_path(cpu, path);
  auto it = paths_.find(path);
  if (it != paths_.end()) return it->second;
  if (!create) return -1;

  ++stats_.creates;
  cpu.charge(costs::kInodeOp);
  auto ino = std::make_unique<Inode>();
  ino->id = static_cast<std::int32_t>(inodes_.size());
  const std::int32_t id = ino->id;
  inodes_.push_back(std::move(ino));
  paths_[path] = id;
  // Directory entry update dirties a metadata block.
  cache_.mark_dirty(static_cast<std::uint64_t>(id) % 4096);
  return id;
}

Inode* MiniFs::inode(std::int32_t id) {
  if (id < 0 || static_cast<std::size_t>(id) >= inodes_.size()) return nullptr;
  return inodes_[id].get();
}

std::size_t MiniFs::read(hw::Cpu& cpu, Inode& ino, std::uint64_t off,
                         std::size_t bytes) {
  if (off >= ino.size) return 0;
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(bytes, ino.size - off));
  const std::size_t first = static_cast<std::size_t>(off / kBlockSize);
  const std::size_t last = static_cast<std::size_t>((off + n - 1) / kBlockSize);
  for (std::size_t b = first; b <= last && b < ino.blocks.size(); ++b) {
    const std::uint64_t dev_block = ino.blocks[b];
    cpu.charge(costs::kBlockCacheLookup);
    if (!cache_.lookup(dev_block)) {
      kernel_.ops().disk_read(cpu, dev_block, scratch());
      cache_.insert(dev_block, false);
      writeback_blocks(cpu, cache_.evict_to_capacity());
    }
  }
  cpu.charge((costs::kBufferCopyPerKb + kernel_.ops().copy_tax_per_kb()) *
             ((n + 1023) / 1024));
  stats_.bytes_read += n;
  return n;
}

std::size_t MiniFs::write(hw::Cpu& cpu, Inode& ino, std::uint64_t off,
                          std::size_t bytes) {
  MERC_CHECK(bytes > 0);
  const std::uint64_t end = off + bytes;
  // Grow the block list as needed.
  const std::size_t need_blocks =
      static_cast<std::size_t>((end + kBlockSize - 1) / kBlockSize);
  while (ino.blocks.size() < need_blocks) {
    cpu.charge(costs::kInodeOp / 3);  // block allocation + bitmap update
    ino.blocks.push_back(alloc_block());
  }
  const std::size_t first = static_cast<std::size_t>(off / kBlockSize);
  const std::size_t last = static_cast<std::size_t>((end - 1) / kBlockSize);
  for (std::size_t b = first; b <= last; ++b) {
    const std::uint64_t dev_block = ino.blocks[b];
    cpu.charge(costs::kBlockCacheLookup);
    const bool partial_head =
        b == first && off % kBlockSize != 0 && off < ino.size;
    if (partial_head && !cache_.lookup(dev_block)) {
      // Read-modify-write of an existing partial block.
      kernel_.ops().disk_read(cpu, dev_block, scratch());
      cache_.insert(dev_block, false);
    }
    cache_.mark_dirty(dev_block);
    writeback_blocks(cpu, cache_.evict_to_capacity());
  }
  ino.size = std::max(ino.size, end);
  cpu.charge((costs::kBufferCopyPerKb + kernel_.ops().copy_tax_per_kb()) *
             ((bytes + 1023) / 1024));
  stats_.bytes_written += bytes;
  return bytes;
}

void MiniFs::writeback_blocks(hw::Cpu& cpu,
                              const std::vector<std::uint64_t>& blocks) {
  // Elevator: issue in ascending block order to minimize positioning.
  std::vector<std::uint64_t> sorted(blocks);
  std::sort(sorted.begin(), sorted.end());
  for (const std::uint64_t b : sorted)
    kernel_.ops().disk_write(cpu, b, scratch());
}

void MiniFs::fsync(hw::Cpu& cpu, Inode& ino) {
  ++stats_.fsyncs;
  std::vector<std::uint64_t> dirty;
  for (const std::uint64_t b : ino.blocks) {
    if (cache_.is_dirty(b)) {
      cache_.clear_dirty(b);
      dirty.push_back(b);
    }
  }
  writeback_blocks(cpu, dirty);
  kernel_.ops().disk_flush(cpu);
}

bool MiniFs::unlink(hw::Cpu& cpu, const std::string& path) {
  ++stats_.unlinks;
  charge_path(cpu, path);
  auto it = paths_.find(path);
  if (it == paths_.end()) return false;
  cpu.charge(costs::kInodeOp);
  Inode* ino = inode(it->second);
  for (const std::uint64_t b : ino->blocks) {
    cache_.invalidate(b);
    free_blocks_.push_back(b);
  }
  ino->blocks.clear();
  ino->size = 0;
  paths_.erase(it);
  return true;
}

bool MiniFs::mkdir(hw::Cpu& cpu, const std::string& path) {
  charge_path(cpu, path);
  cpu.charge(costs::kInodeOp);
  return dirs_.insert(path).second;
}

bool MiniFs::exists(hw::Cpu& cpu, const std::string& path) {
  charge_path(cpu, path);
  return paths_.contains(path) || dirs_.contains(path);
}

std::int64_t MiniFs::size_of(hw::Cpu& cpu, const std::string& path) {
  charge_path(cpu, path);
  auto it = paths_.find(path);
  if (it == paths_.end()) return -1;
  return static_cast<std::int64_t>(inode(it->second)->size);
}

void MiniFs::writeback_some(hw::Cpu& cpu, std::size_t max_blocks) {
  writeback_blocks(cpu, cache_.take_dirty(max_blocks));
}

}  // namespace mercury::kernel
