// UDP / TCP-lite / echo network stack over the simulated NIC.
//
// TCP is a byte-counting sliding-window model (64 KB window, 1448 B
// segments, delayed ACKs) — enough to reproduce the iperf bandwidth shape,
// where per-packet CPU cost decides whether a configuration is wire-limited
// or CPU-limited. Echo (ICMP-like) is answered in the kernel, as ping is.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "hw/cpu.hpp"
#include "hw/devices/nic.hpp"
#include "kernel/wait.hpp"

namespace mercury::kernel {

class Kernel;

inline constexpr std::uint8_t kProtoEcho = 1;
inline constexpr std::uint8_t kProtoEchoReply = 2;
inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;

inline constexpr std::uint32_t kTcpFlagSyn = 1u << 0;
inline constexpr std::uint32_t kTcpFlagSynAck = 1u << 1;
inline constexpr std::uint32_t kTcpFlagAck = 1u << 2;
inline constexpr std::uint32_t kTcpFlagFin = 1u << 3;

inline constexpr std::size_t kTcpSegmentBytes = 1448;
inline constexpr std::size_t kTcpWindowBytes = 64 * 1024;

struct TcpState {
  std::uint32_t peer_addr = 0;
  std::uint16_t peer_port = 0;
  bool established = false;
  // Sender side (byte counting).
  std::uint64_t snd_nxt = 0;  // next byte to send
  std::uint64_t snd_una = 0;  // oldest unacknowledged byte
  // Receiver side.
  std::uint64_t rcv_bytes = 0;      // cumulative bytes received in order
  std::uint64_t rcv_consumed = 0;   // bytes handed to the application
  std::uint32_t segs_since_ack = 0;
  WaitQueue senders;    // blocked on window space / establishment
  WaitQueue receivers;  // blocked on data
};

class Socket {
 public:
  enum class Kind : std::uint8_t { kUdp, kTcpListen, kTcpConn };

  Kind kind = Kind::kUdp;
  std::uint16_t local_port = 0;
  bool open = true;

  std::deque<hw::Packet> rxq;  // UDP datagrams
  WaitQueue readers;

  TcpState tcp;                   // kTcpConn
  std::deque<std::int32_t> accept_queue;  // kTcpListen: ready connections
  WaitQueue acceptors;
};

struct NetStats {
  std::uint64_t udp_tx = 0;
  std::uint64_t udp_rx = 0;
  std::uint64_t tcp_segments_tx = 0;
  std::uint64_t tcp_segments_rx = 0;
  std::uint64_t tcp_acks_tx = 0;
  std::uint64_t echoes_answered = 0;
  std::uint64_t dropped_no_socket = 0;
};

class NetStack {
 public:
  explicit NetStack(Kernel& kernel);

  std::uint32_t local_addr() const;

  std::int32_t create_udp(std::uint16_t port);  // 0 = auto-assign
  std::int32_t create_tcp_listen(std::uint16_t port);
  /// Send SYN; establishment completes asynchronously on SYNACK receipt.
  std::int32_t create_tcp_conn(hw::Cpu& cpu, std::uint32_t dst,
                               std::uint16_t dst_port);
  Socket* sock(std::int32_t idx);
  void close(hw::Cpu& cpu, std::int32_t idx);

  void udp_send(hw::Cpu& cpu, Socket& s, std::uint32_t dst,
                std::uint16_t dst_port, std::size_t bytes);

  /// Pump TCP segments while window space allows; updates `remaining`.
  /// Returns true if the sender must block (window full / not established).
  bool tcp_pump(hw::Cpu& cpu, Socket& s, std::uint64_t& remaining);

  // --- ping (ICMP echo) ---
  struct PingWait {
    bool replied = false;
    hw::Cycles reply_at = 0;
    WaitQueue waiter;
  };
  std::uint32_t ping_send(hw::Cpu& cpu, std::uint32_t dst, std::size_t bytes);
  PingWait& ping_state(std::uint32_t seq);
  void ping_forget(std::uint32_t seq);

  /// Drain the NIC receive queue, demultiplexing to sockets, answering
  /// echoes, processing TCP acks/data. Called from the NIC interrupt.
  void rx_drain(hw::Cpu& cpu);

  const NetStats& stats() const { return stats_; }

 private:
  void handle_tcp(hw::Cpu& cpu, const hw::Packet& pkt);
  void send_tcp_ctrl(hw::Cpu& cpu, std::uint32_t dst, std::uint16_t dst_port,
                     std::uint16_t src_port, std::uint32_t flags,
                     std::uint64_t ack);
  Socket* find_by_port(std::uint16_t port, Socket::Kind kind);
  Socket* find_tcp_conn(std::uint16_t local_port, std::uint32_t peer,
                        std::uint16_t peer_port);
  std::uint16_t auto_port() { return next_port_++; }

  Kernel& kernel_;
  std::vector<std::unique_ptr<Socket>> sockets_;
  std::map<std::uint32_t, PingWait> ping_waits_;
  std::uint32_t next_ping_seq_ = 1;
  std::uint16_t next_port_ = 30000;
  NetStats stats_;
};

}  // namespace mercury::kernel
