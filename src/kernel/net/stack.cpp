#include "kernel/net/stack.hpp"

#include <algorithm>

#include "kernel/costs.hpp"
#include "kernel/kernel.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mercury::kernel {

NetStack::NetStack(Kernel& kernel) : kernel_(kernel) {}

std::uint32_t NetStack::local_addr() const {
  return kernel_.machine().nic().address();
}

std::int32_t NetStack::create_udp(std::uint16_t port) {
  auto s = std::make_unique<Socket>();
  s->kind = Socket::Kind::kUdp;
  s->local_port = port != 0 ? port : auto_port();
  sockets_.push_back(std::move(s));
  return static_cast<std::int32_t>(sockets_.size() - 1);
}

std::int32_t NetStack::create_tcp_listen(std::uint16_t port) {
  auto s = std::make_unique<Socket>();
  s->kind = Socket::Kind::kTcpListen;
  s->local_port = port;
  sockets_.push_back(std::move(s));
  return static_cast<std::int32_t>(sockets_.size() - 1);
}

std::int32_t NetStack::create_tcp_conn(hw::Cpu& cpu, std::uint32_t dst,
                                       std::uint16_t dst_port) {
  auto s = std::make_unique<Socket>();
  s->kind = Socket::Kind::kTcpConn;
  s->local_port = auto_port();
  s->tcp.peer_addr = dst;
  s->tcp.peer_port = dst_port;
  const std::uint16_t sport = s->local_port;
  sockets_.push_back(std::move(s));
  send_tcp_ctrl(cpu, dst, dst_port, sport, kTcpFlagSyn, 0);
  return static_cast<std::int32_t>(sockets_.size() - 1);
}

Socket* NetStack::sock(std::int32_t idx) {
  if (idx < 0 || static_cast<std::size_t>(idx) >= sockets_.size()) return nullptr;
  return sockets_[idx].get();
}

void NetStack::close(hw::Cpu& cpu, std::int32_t idx) {
  Socket* s = sock(idx);
  if (s == nullptr || !s->open) return;
  s->open = false;
  if (s->kind == Socket::Kind::kTcpConn && s->tcp.established)
    send_tcp_ctrl(cpu, s->tcp.peer_addr, s->tcp.peer_port, s->local_port,
                  kTcpFlagFin, s->tcp.rcv_bytes);
  kernel_.wake_all(s->readers);
  kernel_.wake_all(s->tcp.senders);
  kernel_.wake_all(s->tcp.receivers);
  kernel_.wake_all(s->acceptors);
}

Socket* NetStack::find_by_port(std::uint16_t port, Socket::Kind kind) {
  for (auto& s : sockets_)
    if (s->open && s->kind == kind && s->local_port == port) return s.get();
  return nullptr;
}

Socket* NetStack::find_tcp_conn(std::uint16_t local_port, std::uint32_t peer,
                                std::uint16_t peer_port) {
  for (auto& s : sockets_) {
    if (s->open && s->kind == Socket::Kind::kTcpConn &&
        s->local_port == local_port && s->tcp.peer_addr == peer &&
        s->tcp.peer_port == peer_port)
      return s.get();
  }
  return nullptr;
}

void NetStack::udp_send(hw::Cpu& cpu, Socket& s, std::uint32_t dst,
                        std::uint16_t dst_port, std::size_t bytes) {
  ++stats_.udp_tx;
  MERC_COUNT("net.udp_tx");
  cpu.charge(costs::kUdpTxStack);
  hw::Packet pkt;
  pkt.src_addr = local_addr();
  pkt.dst_addr = dst;
  pkt.src_port = s.local_port;
  pkt.dst_port = dst_port;
  pkt.proto = kProtoUdp;
  pkt.payload_bytes = bytes;
  kernel_.ops().net_send(cpu, std::move(pkt));
}

std::uint32_t NetStack::ping_send(hw::Cpu& cpu, std::uint32_t dst,
                                  std::size_t bytes) {
  const std::uint32_t seq = next_ping_seq_++;
  ping_waits_[seq];  // create the slot first so a fast reply finds it
  cpu.charge(costs::kIcmpEcho);
  hw::Packet pkt;
  pkt.src_addr = local_addr();
  pkt.dst_addr = dst;
  pkt.proto = kProtoEcho;
  pkt.seq = seq;
  pkt.payload_bytes = bytes;
  kernel_.ops().net_send(cpu, std::move(pkt));
  return seq;
}

NetStack::PingWait& NetStack::ping_state(std::uint32_t seq) {
  return ping_waits_[seq];
}

void NetStack::ping_forget(std::uint32_t seq) { ping_waits_.erase(seq); }

bool NetStack::tcp_pump(hw::Cpu& cpu, Socket& s, std::uint64_t& remaining) {
  TcpState& t = s.tcp;
  if (!t.established) return true;
  bool sent_any = false;
  while (remaining > 0 && (t.snd_nxt - t.snd_una) < kTcpWindowBytes) {
    const std::size_t seg = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, kTcpSegmentBytes));
    ++stats_.tcp_segments_tx;
    MERC_COUNT("net.tcp_segments_tx");
    cpu.charge(costs::kTcpTxStack);
    hw::Packet pkt;
    pkt.src_addr = local_addr();
    pkt.dst_addr = t.peer_addr;
    pkt.src_port = s.local_port;
    pkt.dst_port = t.peer_port;
    pkt.proto = kProtoTcp;
    pkt.flags = 0;
    pkt.seq = static_cast<std::uint32_t>(t.snd_nxt);
    pkt.payload_bytes = seg;
    kernel_.ops().net_send(cpu, std::move(pkt));
    t.snd_nxt += seg;
    remaining -= seg;
    sent_any = true;
  }
  (void)sent_any;
  return remaining > 0;  // window full: caller blocks until acks arrive
}

void NetStack::send_tcp_ctrl(hw::Cpu& cpu, std::uint32_t dst,
                             std::uint16_t dst_port, std::uint16_t src_port,
                             std::uint32_t flags, std::uint64_t ack) {
  cpu.charge(costs::kTcpTxStack / 2);
  hw::Packet pkt;
  pkt.src_addr = local_addr();
  pkt.dst_addr = dst;
  pkt.src_port = src_port;
  pkt.dst_port = dst_port;
  pkt.proto = kProtoTcp;
  pkt.flags = flags;
  pkt.ack = static_cast<std::uint32_t>(ack);
  pkt.payload_bytes = 0;
  if (flags & kTcpFlagAck) ++stats_.tcp_acks_tx;
  kernel_.ops().net_send(cpu, std::move(pkt));
}

void NetStack::handle_tcp(hw::Cpu& cpu, const hw::Packet& pkt) {
  if (pkt.flags & kTcpFlagSyn) {
    // Passive open: create the server-side connection and answer SYNACK.
    Socket* listener = find_by_port(pkt.dst_port, Socket::Kind::kTcpListen);
    if (listener == nullptr) {
      ++stats_.dropped_no_socket;
      return;
    }
    auto conn = std::make_unique<Socket>();
    conn->kind = Socket::Kind::kTcpConn;
    conn->local_port = pkt.dst_port;
    conn->tcp.peer_addr = pkt.src_addr;
    conn->tcp.peer_port = pkt.src_port;
    conn->tcp.established = true;
    sockets_.push_back(std::move(conn));
    listener->accept_queue.push_back(
        static_cast<std::int32_t>(sockets_.size() - 1));
    kernel_.wake_all(listener->acceptors);
    send_tcp_ctrl(cpu, pkt.src_addr, pkt.src_port, pkt.dst_port, kTcpFlagSynAck,
                  0);
    return;
  }

  Socket* s = find_tcp_conn(pkt.dst_port, pkt.src_addr, pkt.src_port);
  if (s == nullptr) {
    ++stats_.dropped_no_socket;
    return;
  }
  TcpState& t = s->tcp;

  if (pkt.flags & kTcpFlagSynAck) {
    t.established = true;
    kernel_.wake_all(t.senders);
    return;
  }
  if (pkt.flags & kTcpFlagFin) {
    s->open = false;
    kernel_.wake_all(t.receivers);
    kernel_.wake_all(t.senders);
    return;
  }
  if (pkt.flags & kTcpFlagAck) {
    if (pkt.ack > t.snd_una) {
      t.snd_una = pkt.ack;
      kernel_.wake_all(t.senders);
    }
    return;
  }

  // Data segment.
  ++stats_.tcp_segments_rx;
  MERC_COUNT("net.tcp_segments_rx");
  cpu.charge(costs::kTcpRxStack);
  t.rcv_bytes += pkt.payload_bytes;
  if (++t.segs_since_ack >= 2) {
    t.segs_since_ack = 0;
    send_tcp_ctrl(cpu, t.peer_addr, t.peer_port, s->local_port, kTcpFlagAck,
                  t.rcv_bytes);
  }
  kernel_.wake_all(t.receivers);
}

void NetStack::rx_drain(hw::Cpu& cpu) {
  while (auto pkt = kernel_.ops().net_poll(cpu)) {
    switch (pkt->proto) {
      case kProtoEcho: {
        // In-kernel echo responder (ping target).
        ++stats_.echoes_answered;
        cpu.charge(costs::kIcmpEcho);
        hw::Packet reply;
        reply.src_addr = local_addr();
        reply.dst_addr = pkt->src_addr;
        reply.proto = kProtoEchoReply;
        reply.seq = pkt->seq;
        reply.payload_bytes = pkt->payload_bytes;
        kernel_.ops().net_send(cpu, std::move(reply));
        break;
      }
      case kProtoEchoReply: {
        auto it = ping_waits_.find(pkt->seq);
        if (it != ping_waits_.end()) {
          it->second.replied = true;
          it->second.reply_at = cpu.now();
          kernel_.wake_all(it->second.waiter);
        }
        break;
      }
      case kProtoUdp: {
        ++stats_.udp_rx;
        MERC_COUNT("net.udp_rx");
        cpu.charge(costs::kUdpRxStack);
        Socket* s = find_by_port(pkt->dst_port, Socket::Kind::kUdp);
        if (s == nullptr) {
          ++stats_.dropped_no_socket;
          break;
        }
        s->rxq.push_back(std::move(*pkt));
        kernel_.wake_all(s->readers);
        break;
      }
      case kProtoTcp:
        handle_tcp(cpu, *pkt);
        break;
      default:
        ++stats_.dropped_no_socket;
        break;
    }
  }
}

}  // namespace mercury::kernel
