// Hardware page-table walker.
//
// Translation consults the per-CPU TLB, then walks the two-level table
// rooted at CR3 in simulated physical memory. Failed translations raise a
// page fault through the CPU's trap sink; the `access_*` helpers then retry,
// which models fault-and-resume execution. Costs (TLB hit/miss, walk) are
// charged to the CPU clock.
#pragma once

#include <cstdint>
#include <optional>

#include "hw/cpu.hpp"
#include "hw/phys_mem.hpp"
#include "hw/pte.hpp"
#include "hw/types.hpp"

namespace mercury::hw {

enum class Access : std::uint8_t { kRead, kWrite };

struct PageFault {
  VirtAddr addr = 0;
  bool write = false;
  bool present = false;  // true: protection violation; false: not-present
  bool user_mode = false;
};

class Mmu {
 public:
  explicit Mmu(PhysicalMemory& mem) : mem_(mem) {}

  /// Translate without raising a fault (probe). Returns the physical address
  /// or nullopt; fills `fault` when provided. Charges walk costs.
  std::optional<PhysAddr> translate(Cpu& cpu, VirtAddr va, Access access,
                                    PageFault* fault = nullptr);

  /// Translate, raising #PF through the CPU trap sink and retrying until the
  /// sink resolves the fault. The sink must either establish a mapping or
  /// abort the simulated thread (via a kernel-level exception); a bounded
  /// retry count turns handler livelock into a simulator invariant failure.
  PhysAddr translate_or_fault(Cpu& cpu, VirtAddr va, Access access);

  // Memory accessors through translation (fault-and-retry semantics).
  std::uint32_t read_u32(Cpu& cpu, VirtAddr va);
  void write_u32(Cpu& cpu, VirtAddr va, std::uint32_t v);
  std::uint8_t read_u8(Cpu& cpu, VirtAddr va);
  void write_u8(Cpu& cpu, VirtAddr va, std::uint8_t v);

  /// Touch a page (load) — the unit of working-set charging in workloads.
  void touch(Cpu& cpu, VirtAddr va, Access access);

  /// Read a raw PTE by walking the current tree without TLB interaction
  /// (diagnostic / VMM validation use; charges memory access costs).
  std::optional<Pte> peek_pte(Cpu& cpu, VirtAddr va);

  PhysicalMemory& memory() { return mem_; }

 private:
  struct WalkResult {
    bool ok = false;
    Pte pte{};
    PhysAddr pte_addr = 0;
  };
  WalkResult walk(Cpu& cpu, VirtAddr va, bool charge);

  PhysicalMemory& mem_;
};

}  // namespace mercury::hw
