#include "hw/mmu.hpp"

#include "hw/costs.hpp"
#include "util/assert.hpp"

namespace mercury::hw {

Mmu::WalkResult Mmu::walk(Cpu& cpu, VirtAddr va, bool charge) {
  if (charge) cpu.charge(costs::kTlbMissWalk);
  const PhysAddr pde_addr =
      addr_of(cpu.read_cr3()) + static_cast<PhysAddr>(pde_index(va)) * 4;
  const Pte pde{mem_.read_u32(pde_addr)};
  if (!pde.present()) return {};
  const PhysAddr pte_addr =
      addr_of(pde.pfn()) + static_cast<PhysAddr>(pte_index(va)) * 4;
  Pte pte{mem_.read_u32(pte_addr)};
  if (!pte.present()) return {};
  // Combine permissions across levels: both must allow the access class;
  // vmm-only taint at either level protects the page.
  pte.set_flag(Pte::kWritable, pte.writable() && pde.writable());
  pte.set_flag(Pte::kUser, pte.user() && pde.user());
  pte.set_flag(Pte::kVmmOnly, pte.vmm_only() || pde.vmm_only());
  return {true, pte, pte_addr};
}

std::optional<PhysAddr> Mmu::translate(Cpu& cpu, VirtAddr va, Access access,
                                       PageFault* fault) {
  const bool user_mode = cpu.cpl() == Ring::kRing3;
  const std::uint32_t vpn = vpn_of(va);

  const bool ring0 = cpu.cpl() == Ring::kRing0;
  if (auto hit = cpu.tlb().lookup(vpn)) {
    cpu.charge(costs::kTlbHit);
    const bool perm_ok = (!user_mode || hit->user) &&
                         (access != Access::kWrite || hit->writable) &&
                         (ring0 || !hit->vmm_only);
    // A write hit on a non-dirty entry falls through to the walk so the
    // dirty bit is set in memory (x86 dirty-miss assist).
    if (perm_ok && (access != Access::kWrite || hit->dirty))
      return addr_of(hit->pfn) + page_offset(va);
    // Permission check fails in the TLB: fall through to a walk so the
    // fault reflects current page-table state (hardware re-walks on fault).
  }

  const WalkResult w = walk(cpu, va, /*charge=*/true);
  if (!w.ok) {
    if (fault) *fault = PageFault{va, access == Access::kWrite, false, user_mode};
    return std::nullopt;
  }
  const bool perm_ok = (!user_mode || w.pte.user()) &&
                       (access != Access::kWrite || w.pte.writable()) &&
                       (ring0 || !w.pte.vmm_only());
  if (!perm_ok) {
    if (fault) *fault = PageFault{va, access == Access::kWrite, true, user_mode};
    return std::nullopt;
  }

  // Set accessed/dirty bits as hardware does, in memory and in the cached
  // entry (so subsequent write hits need no dirty-miss assist). Skip the
  // write-back when nothing changed: hardware does not issue a store for an
  // already-set A/D bit, and it keeps steady-state walk traffic out of the
  // dirty-frame tracker while the simulated cycle cost stays identical
  // (PhysicalMemory stores are uncharged; the walk cost was charged above).
  const Pte original{mem_.read_u32(w.pte_addr)};
  Pte updated = original;
  updated.set_flag(Pte::kAccessed, true);
  if (access == Access::kWrite) updated.set_flag(Pte::kDirty, true);
  if (updated.raw != original.raw) mem_.write_u32(w.pte_addr, updated.raw);

  Pte cached = w.pte;
  cached.set_flag(Pte::kAccessed, true);
  if (access == Access::kWrite) cached.set_flag(Pte::kDirty, true);
  cpu.tlb().insert(vpn, cached);
  return addr_of(w.pte.pfn()) + page_offset(va);
}

PhysAddr Mmu::translate_or_fault(Cpu& cpu, VirtAddr va, Access access) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    PageFault pf;
    if (auto pa = translate(cpu, va, access, &pf)) return *pa;
    TrapInfo info;
    info.kind = TrapKind::kPageFault;
    info.fault_addr = va;
    info.write = pf.write;
    info.user_mode = pf.user_mode;
    cpu.raise_trap(info);
    // The handler either mapped the page (retry succeeds) or terminated the
    // simulated thread by unwinding through this call.
  }
  MERC_CHECK_MSG(false, "page fault handler livelock at va 0x" << std::hex << va);
  return 0;  // unreachable
}

std::uint32_t Mmu::read_u32(Cpu& cpu, VirtAddr va) {
  const PhysAddr pa = translate_or_fault(cpu, va, Access::kRead);
  cpu.charge(costs::kCacheHit);
  return mem_.read_u32(pa);
}

void Mmu::write_u32(Cpu& cpu, VirtAddr va, std::uint32_t v) {
  const PhysAddr pa = translate_or_fault(cpu, va, Access::kWrite);
  cpu.charge(costs::kCacheHit);
  mem_.write_u32(pa, v);
}

std::uint8_t Mmu::read_u8(Cpu& cpu, VirtAddr va) {
  const PhysAddr pa = translate_or_fault(cpu, va, Access::kRead);
  cpu.charge(costs::kCacheHit);
  return mem_.read_u8(pa);
}

void Mmu::write_u8(Cpu& cpu, VirtAddr va, std::uint8_t v) {
  const PhysAddr pa = translate_or_fault(cpu, va, Access::kWrite);
  cpu.charge(costs::kCacheHit);
  mem_.write_u8(pa, v);
}

void Mmu::touch(Cpu& cpu, VirtAddr va, Access access) {
  (void)translate_or_fault(cpu, va, access);
  cpu.charge(costs::kCacheHit);
}

std::optional<Pte> Mmu::peek_pte(Cpu& cpu, VirtAddr va) {
  const WalkResult w = walk(cpu, va, /*charge=*/false);
  if (!w.ok) return std::nullopt;
  return w.pte;
}

}  // namespace mercury::hw
