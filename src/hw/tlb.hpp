// Hardware-managed translation lookaside buffer.
//
// Fixed capacity, FIFO replacement (deterministic). On x86 the TLB is
// flushed on CR3 writes — which is exactly why Xen-style designs keep VMM,
// kernel and user in one address space; the model reproduces that cost.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hw/pte.hpp"
#include "hw/types.hpp"

namespace mercury::hw {

struct TlbEntry {
  std::uint32_t vpn = 0;
  Pfn pfn = 0;
  bool writable = false;
  bool user = false;
  bool global = false;
  bool vmm_only = false;
  bool dirty = false;  // write-hits on a non-dirty entry re-walk (x86 A/D)
  bool valid = false;
};

class Tlb {
 public:
  explicit Tlb(std::size_t capacity = 64);

  std::optional<TlbEntry> lookup(std::uint32_t vpn);
  void insert(std::uint32_t vpn, const Pte& pte);

  /// CR3 reload semantics: drop all non-global entries.
  void flush_all();
  /// Full flush including global entries (mode switches reload everything).
  void flush_global();
  void flush_page(std::uint32_t vpn);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t flushes() const { return flushes_; }
  std::size_t capacity() const { return entries_.size(); }
  std::size_t valid_entries() const;

 private:
  std::vector<TlbEntry> entries_;
  std::size_t next_victim_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t flushes_ = 0;
};

}  // namespace mercury::hw
