#include "hw/tlb.hpp"

#include "util/assert.hpp"

namespace mercury::hw {

Tlb::Tlb(std::size_t capacity) : entries_(capacity) { MERC_CHECK(capacity > 0); }

std::optional<TlbEntry> Tlb::lookup(std::uint32_t vpn) {
  for (const auto& e : entries_) {
    if (e.valid && e.vpn == vpn) {
      ++hits_;
      return e;
    }
  }
  ++misses_;
  return std::nullopt;
}

void Tlb::insert(std::uint32_t vpn, const Pte& pte) {
  // Replace an existing mapping for the same vpn in place if present.
  for (auto& e : entries_) {
    if (e.valid && e.vpn == vpn) {
      e = TlbEntry{vpn,          pte.pfn(),      pte.writable(), pte.user(),
                   pte.global(), pte.vmm_only(), pte.dirty(),    true};
      return;
    }
  }
  auto& victim = entries_[next_victim_];
  next_victim_ = (next_victim_ + 1) % entries_.size();
  victim = TlbEntry{vpn,          pte.pfn(),      pte.writable(), pte.user(),
                    pte.global(), pte.vmm_only(), pte.dirty(),    true};
}

void Tlb::flush_all() {
  ++flushes_;
  for (auto& e : entries_)
    if (!e.global) e.valid = false;
}

void Tlb::flush_global() {
  ++flushes_;
  for (auto& e : entries_) e.valid = false;
}

void Tlb::flush_page(std::uint32_t vpn) {
  for (auto& e : entries_)
    if (e.valid && e.vpn == vpn) e.valid = false;
}

std::size_t Tlb::valid_entries() const {
  std::size_t n = 0;
  for (const auto& e : entries_)
    if (e.valid) ++n;
  return n;
}

}  // namespace mercury::hw
