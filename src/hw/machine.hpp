// The Machine: CPUs + physical memory + interrupt controller + devices.
// Mirrors the paper's testbed (DELL SC1420: 2x 3 GHz Xeon, 900 000 KB RAM
// per Linux variant, SCSI disk, GbE NIC) by default.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/cpu.hpp"
#include "hw/devices/disk.hpp"
#include "hw/devices/nic.hpp"
#include "hw/devices/sensors.hpp"
#include "hw/frame_alloc.hpp"
#include "hw/interrupts.hpp"
#include "hw/mmu.hpp"
#include "hw/phys_mem.hpp"
#include "util/rng.hpp"

namespace mercury::hw {

struct MachineConfig {
  std::size_t num_cpus = 1;
  std::size_t mem_kb = 900'000;           // paper's per-variant reservation
  std::size_t tlb_entries = 64;
  std::uint32_t timer_hz = 100;           // paper: 100 Hz for all systems
  std::uint32_t nic_addr = 0x0A000001;    // 10.0.0.1
  Disk::Params disk{};
  Nic::Params nic{};
  std::uint64_t seed = 1;

  std::size_t mem_frames() const { return (mem_kb * 1024) / kPageSize; }
};

class Machine {
 public:
  explicit Machine(MachineConfig config);

  const MachineConfig& config() const { return config_; }

  std::size_t num_cpus() const { return cpus_.size(); }
  Cpu& cpu(std::size_t i) { return *cpus_.at(i); }
  const Cpu& cpu(std::size_t i) const { return *cpus_.at(i); }

  PhysicalMemory& memory() { return mem_; }
  FrameAllocator& frames() { return frames_; }
  Mmu& mmu() { return mmu_; }
  InterruptController& interrupts() { return ic_; }
  TimerBank& timers() { return timers_; }
  Disk& disk() { return disk_; }
  Nic& nic() { return nic_; }
  HealthSensors& sensors() { return sensors_; }
  util::Rng& rng() { return rng_; }

  /// Latest local clock across all CPUs (the machine's wall clock).
  Cycles max_cpu_time() const;
  /// Earliest local clock across all CPUs.
  Cycles min_cpu_time() const;

  /// Install a trap sink on every CPU (ring-0 handover during mode switch).
  void install_trap_sink(TrapSink* sink);

 private:
  MachineConfig config_;
  PhysicalMemory mem_;
  FrameAllocator frames_;
  Mmu mmu_;
  std::vector<std::unique_ptr<Cpu>> cpus_;
  InterruptController ic_;
  TimerBank timers_;
  Disk disk_;
  Nic nic_;
  HealthSensors sensors_;
  util::Rng rng_;
};

}  // namespace mercury::hw
