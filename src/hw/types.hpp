// Fundamental simulated-hardware types and constants.
//
// The machine models a 32-bit x86-like SMP box: 4 GB virtual address space,
// 4 KB pages, two-level hardware-walked page tables, hardware-managed TLBs,
// ring 0..3 privilege levels. Time is measured in simulated CPU cycles at a
// nominal 3 GHz (the paper's Xeon), so 1 us == 3000 cycles.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mercury::hw {

using Cycles = std::uint64_t;
using VirtAddr = std::uint32_t;   // 4 GB virtual address space
using PhysAddr = std::uint64_t;
using Pfn = std::uint32_t;        // page frame number

inline constexpr std::size_t kPageShift = 12;
inline constexpr std::size_t kPageSize = std::size_t{1} << kPageShift;  // 4 KB
inline constexpr std::uint32_t kPtEntries = 1024;  // entries per table level

inline constexpr Cycles kCyclesPerMicrosecond = 3000;  // 3 GHz clock
inline constexpr Cycles kCyclesPerMillisecond = kCyclesPerMicrosecond * 1000;

inline constexpr double cycles_to_us(Cycles c) {
  return static_cast<double>(c) / static_cast<double>(kCyclesPerMicrosecond);
}
inline constexpr Cycles us_to_cycles(double us) {
  return static_cast<Cycles>(us * static_cast<double>(kCyclesPerMicrosecond));
}

inline constexpr Pfn pfn_of(PhysAddr pa) { return static_cast<Pfn>(pa >> kPageShift); }
inline constexpr PhysAddr addr_of(Pfn pfn) {
  return static_cast<PhysAddr>(pfn) << kPageShift;
}
inline constexpr std::uint32_t page_offset(VirtAddr va) {
  return va & (kPageSize - 1);
}
inline constexpr std::uint32_t vpn_of(VirtAddr va) { return va >> kPageShift; }

/// Virtual address split for the two-level page table.
inline constexpr std::uint32_t pde_index(VirtAddr va) { return va >> 22; }
inline constexpr std::uint32_t pte_index(VirtAddr va) {
  return (va >> kPageShift) & (kPtEntries - 1);
}

/// x86-style privilege rings. The VMM and a native OS run at Ring0; a
/// de-privileged (virtualized) OS kernel runs at Ring1; user code at Ring3.
enum class Ring : std::uint8_t { kRing0 = 0, kRing1 = 1, kRing3 = 3 };

/// Segment selector as saved in interrupt frames: the low two bits are the
/// requested privilege level (RPL). Mercury's stack fixup rewrites exactly
/// these bits when the kernel's ring changes across a mode switch.
struct SegmentSelector {
  std::uint16_t raw = 0;

  constexpr Ring rpl() const { return static_cast<Ring>(raw & 0x3); }
  constexpr std::uint16_t index() const { return raw >> 3; }
  constexpr void set_rpl(Ring r) {
    raw = static_cast<std::uint16_t>((raw & ~0x3u) | static_cast<std::uint16_t>(r));
  }
  friend constexpr bool operator==(SegmentSelector, SegmentSelector) = default;
};

constexpr SegmentSelector make_selector(std::uint16_t index, Ring rpl) {
  return SegmentSelector{static_cast<std::uint16_t>(
      (index << 3) | static_cast<std::uint16_t>(rpl))};
}

/// Well-known GDT slots (mirrors the Linux/Xen layout closely enough for the
/// fixup logic: separate kernel descriptors exist per ring).
inline constexpr std::uint16_t kGdtKernelCs = 2;
inline constexpr std::uint16_t kGdtKernelDs = 3;
inline constexpr std::uint16_t kGdtUserCs = 4;
inline constexpr std::uint16_t kGdtUserDs = 5;

}  // namespace mercury::hw
