#include "hw/frame_alloc.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mercury::hw {

FrameAllocator::FrameAllocator(std::size_t total_frames)
    : allocated_(total_frames, false) {
  free_stack_.reserve(total_frames);
  // Push in reverse so low frames are handed out first (matches how firmware
  // typically lays out the boot image low in memory).
  for (std::size_t i = total_frames; i-- > 0;)
    free_stack_.push_back(static_cast<Pfn>(i));
}

bool FrameAllocator::alloc(Pfn& out) {
  while (!free_stack_.empty()) {
    const Pfn pfn = free_stack_.back();
    free_stack_.pop_back();
    if (allocated_[pfn]) continue;  // lazily skip frames reserved after push
    allocated_[pfn] = true;
    ++in_use_;
    out = pfn;
    return true;
  }
  return false;
}

bool FrameAllocator::alloc_contiguous(std::size_t count, Pfn& first_out) {
  MERC_CHECK(count > 0);
  std::size_t run = 0;
  for (std::size_t i = 0; i < allocated_.size(); ++i) {
    run = allocated_[i] ? 0 : run + 1;
    if (run == count) {
      const Pfn first = static_cast<Pfn>(i + 1 - count);
      for (std::size_t j = 0; j < count; ++j) allocated_[first + j] = true;
      in_use_ += count;
      first_out = first;
      return true;
    }
  }
  return false;
}

void FrameAllocator::free(Pfn pfn) {
  MERC_CHECK_MSG(pfn < allocated_.size(), "free of pfn out of range: " << pfn);
  MERC_CHECK_MSG(allocated_[pfn], "double free of pfn " << pfn);
  allocated_[pfn] = false;
  --in_use_;
  free_stack_.push_back(pfn);
}

void FrameAllocator::reserve_range(Pfn first, std::size_t count) {
  MERC_CHECK(first + count <= allocated_.size());
  for (std::size_t i = 0; i < count; ++i) {
    MERC_CHECK_MSG(!allocated_[first + i],
                   "reserve_range overlaps allocated frame " << first + i);
    allocated_[first + i] = true;
  }
  in_use_ += count;
  // Stale entries remaining in free_stack_ are skipped lazily by alloc().
}

bool FrameAllocator::is_allocated(Pfn pfn) const {
  MERC_CHECK(pfn < allocated_.size());
  return allocated_[pfn];
}

}  // namespace mercury::hw
