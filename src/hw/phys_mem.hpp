// Simulated physical memory.
//
// Backing storage is sparse (allocated in 64-page chunks on first write) so
// that a paper-scale 900 000 KB machine can be instantiated without claiming
// 900 MB of host RAM. Reads of never-written memory return zero bytes, which
// models cleared RAM.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "hw/pte.hpp"
#include "hw/types.hpp"

namespace mercury::hw {

class PhysicalMemory {
 public:
  explicit PhysicalMemory(std::size_t total_frames);

  std::size_t total_frames() const { return total_frames_; }
  PhysAddr size_bytes() const { return addr_of(static_cast<Pfn>(total_frames_)); }

  std::uint8_t read_u8(PhysAddr pa) const;
  std::uint32_t read_u32(PhysAddr pa) const;
  std::uint64_t read_u64(PhysAddr pa) const;
  void write_u8(PhysAddr pa, std::uint8_t v);
  void write_u32(PhysAddr pa, std::uint32_t v);
  void write_u64(PhysAddr pa, std::uint64_t v);

  void read_bytes(PhysAddr pa, std::span<std::uint8_t> out) const;
  void write_bytes(PhysAddr pa, std::span<const std::uint8_t> in);

  /// Zero an entire frame (models a streaming clear; cost is charged by the
  /// caller via the cost model).
  void zero_frame(Pfn pfn);

  /// Copy a whole frame.
  void copy_frame(Pfn dst, Pfn src);

  /// Number of backing chunks actually materialized (test/diagnostic hook).
  std::size_t resident_chunks() const;

  /// Install (or clear, with nullptr) a dirty-frame observer. Every store
  /// path notifies the sink with each frame it touches; the sink outlives
  /// the registration (callers must clear it before destroying the sink).
  void set_dirty_sink(DirtySink* sink) { dirty_sink_ = sink; }
  DirtySink* dirty_sink() const { return dirty_sink_; }

 private:
  void note_write(PhysAddr pa) {
    if (dirty_sink_) dirty_sink_->note_dirty(pfn_of(pa));
  }
  static constexpr std::size_t kChunkPages = 64;
  static constexpr std::size_t kChunkBytes = kChunkPages * kPageSize;

  std::span<std::uint8_t> chunk_for(PhysAddr pa, bool create);
  std::span<const std::uint8_t> chunk_for(PhysAddr pa) const;

  std::size_t total_frames_;
  mutable std::vector<std::unique_ptr<std::uint8_t[]>> chunks_;
  DirtySink* dirty_sink_ = nullptr;
};

}  // namespace mercury::hw
