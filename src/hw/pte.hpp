// Page table entry layout (both levels use the same 32-bit format, like
// x86-32 without PAE).
#pragma once

#include <cstdint>

#include "hw/types.hpp"

namespace mercury::hw {

/// Observer for frame modifications: hardware-level analogue of a dirty bit
/// shared between the MMU's PTE write-back path, PhysicalMemory's store
/// paths, and the kernel frame allocator. A sink is notified with the frame
/// number whose mapping or contents just changed; implementations must be
/// cheap (bitmap set) and must charge no simulated cycles — real hardware
/// sets dirty bits for free, and the obs-off cycle-identity gate holds the
/// simulator to the same rule.
class DirtySink {
 public:
  virtual ~DirtySink() = default;
  virtual void note_dirty(Pfn pfn) = 0;
};

struct Pte {
  std::uint32_t raw = 0;

  static constexpr std::uint32_t kPresent = 1u << 0;
  static constexpr std::uint32_t kWritable = 1u << 1;
  static constexpr std::uint32_t kUser = 1u << 2;
  static constexpr std::uint32_t kAccessed = 1u << 5;
  static constexpr std::uint32_t kDirty = 1u << 6;
  static constexpr std::uint32_t kGlobal = 1u << 8;
  // Software-defined bit (x86 "available"): page belongs to the VMM and is
  // inaccessible to the deprivileged kernel (ring 1) and to user mode. This
  // models Xen's ring-0-only mapping of its reserved 64 MB region.
  static constexpr std::uint32_t kVmmOnly = 1u << 9;
  // Software-defined bit: page is shared copy-on-write (fork).
  static constexpr std::uint32_t kCow = 1u << 10;

  constexpr bool present() const { return raw & kPresent; }
  constexpr bool writable() const { return raw & kWritable; }
  constexpr bool user() const { return raw & kUser; }
  constexpr bool accessed() const { return raw & kAccessed; }
  constexpr bool dirty() const { return raw & kDirty; }
  constexpr bool global() const { return raw & kGlobal; }
  constexpr bool vmm_only() const { return raw & kVmmOnly; }
  constexpr bool cow() const { return raw & kCow; }
  constexpr Pfn pfn() const { return raw >> kPageShift; }

  constexpr void set_pfn(Pfn pfn) {
    raw = (raw & (kPageSize - 1)) | (pfn << kPageShift);
  }
  constexpr void set_flag(std::uint32_t flag, bool on) {
    if (on)
      raw |= flag;
    else
      raw &= ~flag;
  }

  friend constexpr bool operator==(Pte, Pte) = default;
};

constexpr Pte make_pte(Pfn pfn, bool writable, bool user, bool global = false) {
  Pte pte;
  pte.raw = (pfn << kPageShift) | Pte::kPresent;
  pte.set_flag(Pte::kWritable, writable);
  pte.set_flag(Pte::kUser, user);
  pte.set_flag(Pte::kGlobal, global);
  return pte;
}

}  // namespace mercury::hw
