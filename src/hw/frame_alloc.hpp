// Physical frame allocator (firmware-level): hands out page frames to the
// software stack. Ownership/type tracking for isolation lives in the VMM's
// PageInfo table, not here.
#pragma once

#include <cstddef>
#include <vector>

#include "hw/types.hpp"

namespace mercury::hw {

class FrameAllocator {
 public:
  explicit FrameAllocator(std::size_t total_frames);

  /// Allocate one frame; returns true and sets `out` on success.
  bool alloc(Pfn& out);

  /// Allocate `count` physically contiguous frames (for reserved regions).
  bool alloc_contiguous(std::size_t count, Pfn& first_out);

  void free(Pfn pfn);

  /// Mark a fixed range as permanently reserved (e.g. the pre-cached VMM's
  /// home). Must not overlap previously allocated frames.
  void reserve_range(Pfn first, std::size_t count);

  bool is_allocated(Pfn pfn) const;
  std::size_t total_frames() const { return allocated_.size(); }
  std::size_t frames_in_use() const { return in_use_; }
  std::size_t frames_free() const { return allocated_.size() - in_use_; }

 private:
  std::vector<bool> allocated_;
  std::vector<Pfn> free_stack_;
  std::size_t in_use_ = 0;
};

}  // namespace mercury::hw
