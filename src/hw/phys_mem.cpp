#include "hw/phys_mem.hpp"

#include <cstring>

#include "util/assert.hpp"

namespace mercury::hw {

PhysicalMemory::PhysicalMemory(std::size_t total_frames)
    : total_frames_(total_frames),
      chunks_((total_frames + kChunkPages - 1) / kChunkPages) {
  MERC_CHECK(total_frames > 0);
}

std::span<std::uint8_t> PhysicalMemory::chunk_for(PhysAddr pa, bool create) {
  MERC_CHECK_MSG(pa < size_bytes(), "physical address 0x" << std::hex << pa
                                                          << " out of range");
  const std::size_t idx = static_cast<std::size_t>(pa / kChunkBytes);
  if (!chunks_[idx]) {
    if (!create) return {};
    chunks_[idx] = std::make_unique<std::uint8_t[]>(kChunkBytes);
    std::memset(chunks_[idx].get(), 0, kChunkBytes);
  }
  return {chunks_[idx].get(), kChunkBytes};
}

std::span<const std::uint8_t> PhysicalMemory::chunk_for(PhysAddr pa) const {
  MERC_CHECK_MSG(pa < size_bytes(), "physical address 0x" << std::hex << pa
                                                          << " out of range");
  const std::size_t idx = static_cast<std::size_t>(pa / kChunkBytes);
  if (!chunks_[idx]) return {};
  return {chunks_[idx].get(), kChunkBytes};
}

std::uint8_t PhysicalMemory::read_u8(PhysAddr pa) const {
  auto c = chunk_for(pa);
  return c.empty() ? 0 : c[pa % kChunkBytes];
}

std::uint32_t PhysicalMemory::read_u32(PhysAddr pa) const {
  auto c = chunk_for(pa);
  if (c.empty()) return 0;
  MERC_CHECK_MSG(pa % kChunkBytes + 4 <= kChunkBytes, "unaligned u32 across chunk");
  std::uint32_t v;
  std::memcpy(&v, c.data() + pa % kChunkBytes, sizeof(v));
  return v;
}

std::uint64_t PhysicalMemory::read_u64(PhysAddr pa) const {
  auto c = chunk_for(pa);
  if (c.empty()) return 0;
  MERC_CHECK_MSG(pa % kChunkBytes + 8 <= kChunkBytes, "unaligned u64 across chunk");
  std::uint64_t v;
  std::memcpy(&v, c.data() + pa % kChunkBytes, sizeof(v));
  return v;
}

void PhysicalMemory::write_u8(PhysAddr pa, std::uint8_t v) {
  chunk_for(pa, true)[pa % kChunkBytes] = v;
  note_write(pa);
}

void PhysicalMemory::write_u32(PhysAddr pa, std::uint32_t v) {
  auto c = chunk_for(pa, true);
  MERC_CHECK_MSG(pa % kChunkBytes + 4 <= kChunkBytes, "unaligned u32 across chunk");
  std::memcpy(c.data() + pa % kChunkBytes, &v, sizeof(v));
  note_write(pa);
}

void PhysicalMemory::write_u64(PhysAddr pa, std::uint64_t v) {
  auto c = chunk_for(pa, true);
  MERC_CHECK_MSG(pa % kChunkBytes + 8 <= kChunkBytes, "unaligned u64 across chunk");
  std::memcpy(c.data() + pa % kChunkBytes, &v, sizeof(v));
  note_write(pa);
}

void PhysicalMemory::read_bytes(PhysAddr pa, std::span<std::uint8_t> out) const {
  std::size_t done = 0;
  while (done < out.size()) {
    const PhysAddr at = pa + done;
    const std::size_t in_chunk = kChunkBytes - at % kChunkBytes;
    const std::size_t n = std::min(in_chunk, out.size() - done);
    auto c = chunk_for(at);
    if (c.empty())
      std::memset(out.data() + done, 0, n);
    else
      std::memcpy(out.data() + done, c.data() + at % kChunkBytes, n);
    done += n;
  }
}

void PhysicalMemory::write_bytes(PhysAddr pa, std::span<const std::uint8_t> in) {
  std::size_t done = 0;
  while (done < in.size()) {
    const PhysAddr at = pa + done;
    const std::size_t in_chunk = kChunkBytes - at % kChunkBytes;
    const std::size_t n = std::min(in_chunk, in.size() - done);
    auto c = chunk_for(at, true);
    std::memcpy(c.data() + at % kChunkBytes, in.data() + done, n);
    // A single chunk span may still straddle page frames: notify each one.
    if (dirty_sink_) {
      for (Pfn p = pfn_of(at); p <= pfn_of(at + n - 1); ++p)
        dirty_sink_->note_dirty(p);
    }
    done += n;
  }
}

void PhysicalMemory::zero_frame(Pfn pfn) {
  // Even when the chunk was never materialized (contents already zero) the
  // clear is a store as far as dirty tracking goes: the caller is recycling
  // the frame and any retained metadata about it is now stale.
  note_write(addr_of(pfn));
  auto c = chunk_for(addr_of(pfn));
  if (c.empty()) return;  // never materialized == already zero
  auto wc = chunk_for(addr_of(pfn), true);
  std::memset(wc.data() + addr_of(pfn) % kChunkBytes, 0, kPageSize);
}

void PhysicalMemory::copy_frame(Pfn dst, Pfn src) {
  note_write(addr_of(dst));
  auto sc = chunk_for(addr_of(src));
  if (sc.empty()) {
    zero_frame(dst);
    return;
  }
  auto dc = chunk_for(addr_of(dst), true);
  std::memcpy(dc.data() + addr_of(dst) % kChunkBytes,
              sc.data() + addr_of(src) % kChunkBytes, kPageSize);
}

std::size_t PhysicalMemory::resident_chunks() const {
  std::size_t n = 0;
  for (const auto& c : chunks_)
    if (c) ++n;
  return n;
}

}  // namespace mercury::hw
