#include "hw/cpu.hpp"

#include "util/assert.hpp"
#include "util/log.hpp"

namespace mercury::hw {

Cpu::Cpu(std::uint32_t id, std::size_t tlb_capacity) : id_(id), tlb_(tlb_capacity) {}

bool Cpu::require_ring0(const char* what) {
  if (cpl_ == Ring::kRing0) return true;
  TrapInfo info;
  info.kind = TrapKind::kGeneralProtection;
  info.user_mode = cpl_ == Ring::kRing3;
  info.detail = what;
  raise_trap(info);
  return false;
}

bool Cpu::write_cr3(Pfn root) {
  if (!require_ring0("mov cr3")) return false;
  charge(costs::kPrivRegWrite);
  cr3_ = root;
  tlb_.flush_all();
  charge(costs::kTlbFlushAll);
  return true;
}

bool Cpu::load_idt(TableToken t) {
  if (!require_ring0("lidt")) return false;
  charge(costs::kPrivRegWrite);
  idtr_ = t;
  return true;
}

bool Cpu::load_gdt(TableToken t) {
  if (!require_ring0("lgdt")) return false;
  charge(costs::kPrivRegWrite);
  gdtr_ = t;
  return true;
}

bool Cpu::set_interrupts_enabled(bool on) {
  // CLI/STI are privileged below IOPL; we model IOPL==0, so ring0 only.
  if (!require_ring0(on ? "sti" : "cli")) return false;
  charge(4);
  iflag_ = on;
  return true;
}

bool Cpu::invlpg(VirtAddr va) {
  if (!require_ring0("invlpg")) return false;
  charge(costs::kTlbFlushPage);
  tlb_.flush_page(vpn_of(va));
  return true;
}

bool Cpu::halt() {
  if (!require_ring0("hlt")) return false;
  halted_ = true;
  return true;
}

void Cpu::raise_trap(const TrapInfo& info) {
  ++traps_;
  charge(costs::kTrapEntry);
  MERC_CHECK_MSG(trap_sink_ != nullptr,
                 "trap with no sink installed on cpu " << id_ << ": " << info.detail);
  // Trap entry transfers control to ring 0. The return CPL defaults to the
  // interrupted privilege level, but the handler may patch it (mode switch).
  trap_return_cpl_ = cpl_;
  cpl_ = Ring::kRing0;
  trap_sink_->on_trap(*this, info);
  cpl_ = trap_return_cpl_;
  charge(costs::kTrapReturn);
}

}  // namespace mercury::hw
