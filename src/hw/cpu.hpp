// Simulated CPU: privilege level, control registers, local cycle clock,
// per-CPU TLB, and trap delivery.
//
// Privileged register accesses are enforced in hardware: executing them at
// CPL > 0 raises #GP to the installed trap sink (the entity that owns ring 0
// — the native kernel, or the VMM when one is attached). This is the
// de-privileging mechanism self-virtualization toggles.
#pragma once

#include <cstdint>
#include <string>

#include "hw/costs.hpp"
#include "hw/tlb.hpp"
#include "hw/types.hpp"

namespace mercury::hw {

class Cpu;

enum class TrapKind : std::uint8_t {
  kGeneralProtection,
  kPageFault,
  kInvalidOpcode,
};

struct TrapInfo {
  TrapKind kind = TrapKind::kGeneralProtection;
  VirtAddr fault_addr = 0;   // for #PF
  bool write = false;        // for #PF
  bool user_mode = false;    // CPL==3 at fault time
  std::string detail;
};

/// Receiver of hardware traps. Installed by whoever owns ring 0.
class TrapSink {
 public:
  virtual ~TrapSink() = default;
  virtual void on_trap(Cpu& cpu, const TrapInfo& info) = 0;
};

/// Opaque token naming a loaded descriptor-table image (IDT/GDT). The
/// simulator does not model descriptor bytes; it models *which* table is
/// loaded, which is what the mode-switch state reloading must get right.
struct TableToken {
  std::uint32_t id = 0;
  friend constexpr bool operator==(TableToken, TableToken) = default;
};

class Cpu {
 public:
  Cpu(std::uint32_t id, std::size_t tlb_capacity = 64);

  std::uint32_t id() const { return id_; }

  // --- simulated time ---
  Cycles now() const { return cycles_; }
  void charge(Cycles c) { cycles_ += c; }
  /// Clock alignment for rendezvous/idle (never moves time backwards).
  void advance_to(Cycles t) {
    if (t > cycles_) cycles_ = t;
  }
  /// RDTSC: readable at any privilege level; costs a few cycles.
  Cycles rdtsc() {
    charge(8);
    return cycles_;
  }

  // --- privilege ---
  Ring cpl() const { return cpl_; }
  /// CPL changes happen through controlled hardware paths (trap entry/exit,
  /// call gates); the simulator exposes it directly to those layers.
  void set_cpl(Ring r) { cpl_ = r; }

  // --- privileged registers (enforced) ---
  bool write_cr3(Pfn root);
  Pfn read_cr3() const { return cr3_; }
  bool load_idt(TableToken t);
  TableToken idt() const { return idtr_; }
  bool load_gdt(TableToken t);
  TableToken gdt() const { return gdtr_; }
  bool set_interrupts_enabled(bool on);
  bool interrupts_enabled() const { return iflag_; }
  /// Hardware-internal IF manipulation: used by the VMM to mirror a guest's
  /// *virtual* interrupt flag (shared-info event mask) without a privileged
  /// instruction. Not reachable from guest code paths.
  void set_iflag_raw(bool on) { iflag_ = on; }
  bool invlpg(VirtAddr va);
  bool halt();
  bool halted() const { return halted_; }
  void wake() { halted_ = false; }

  // --- traps ---
  void install_trap_sink(TrapSink* sink) { trap_sink_ = sink; }
  TrapSink* trap_sink() const { return trap_sink_; }
  /// Hardware-raised trap (privilege violation, page fault from the MMU).
  void raise_trap(const TrapInfo& info);
  std::uint64_t trap_count() const { return traps_; }

  /// A trap handler may patch the privilege level that the trap will return
  /// to (the paper's §5.1.3: a mode switch rewrites the privilege level in
  /// the interrupt return frame).
  void set_trap_return_cpl(Ring r) { trap_return_cpl_ = r; }
  Ring trap_return_cpl() const { return trap_return_cpl_; }

  Tlb& tlb() { return tlb_; }
  const Tlb& tlb() const { return tlb_; }

 private:
  bool require_ring0(const char* what);

  std::uint32_t id_;
  Cycles cycles_ = 0;
  Ring cpl_ = Ring::kRing0;
  Pfn cr3_ = 0;
  TableToken idtr_{};
  TableToken gdtr_{};
  bool iflag_ = false;
  bool halted_ = false;
  TrapSink* trap_sink_ = nullptr;
  Ring trap_return_cpl_ = Ring::kRing0;
  std::uint64_t traps_ = 0;
  Tlb tlb_;
};

}  // namespace mercury::hw
