#include "hw/machine.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mercury::hw {

Machine::Machine(MachineConfig config)
    : config_(config),
      mem_(config.mem_frames()),
      frames_(config.mem_frames()),
      mmu_(mem_),
      ic_(config.num_cpus),
      timers_(config.num_cpus,
              kCyclesPerMicrosecond * 1'000'000ull / config.timer_hz),
      disk_(config.disk),
      nic_(config.nic_addr, config.nic),
      sensors_(),
      rng_(config.seed) {
  MERC_CHECK(config.num_cpus > 0);
  MERC_CHECK_MSG(config.mem_frames() >= 1024, "machine needs at least 4 MB");
  cpus_.reserve(config.num_cpus);
  for (std::size_t i = 0; i < config.num_cpus; ++i)
    cpus_.push_back(std::make_unique<Cpu>(static_cast<std::uint32_t>(i),
                                          config.tlb_entries));
}

Cycles Machine::max_cpu_time() const {
  Cycles t = 0;
  for (const auto& c : cpus_) t = std::max(t, c->now());
  return t;
}

Cycles Machine::min_cpu_time() const {
  Cycles t = cpus_.front()->now();
  for (const auto& c : cpus_) t = std::min(t, c->now());
  return t;
}

void Machine::install_trap_sink(TrapSink* sink) {
  for (auto& c : cpus_) c->install_trap_sink(sink);
}

}  // namespace mercury::hw
