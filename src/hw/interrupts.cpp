#include "hw/interrupts.hpp"

#include <algorithm>

#include "hw/costs.hpp"
#include "util/assert.hpp"

namespace mercury::hw {

InterruptController::InterruptController(std::size_t num_cpus)
    : pending_(num_cpus) {
  MERC_CHECK(num_cpus > 0);
}

void InterruptController::raise(std::uint32_t cpu, std::uint8_t vector,
                                Cycles available_at, std::uint32_t payload) {
  MERC_CHECK(cpu < pending_.size());
  pending_[cpu].push_back(PendingInterrupt{vector, available_at, payload});
}

void InterruptController::send_ipi(Cpu& from, std::uint32_t to_cpu,
                                   std::uint8_t vector, std::uint32_t payload) {
  from.charge(costs::kIpiSendLatency / 3);  // ICR write occupies the sender briefly
  ++ipis_sent_;
  raise(to_cpu, vector, from.now() + costs::kIpiSendLatency, payload);
}

void InterruptController::broadcast_ipi(Cpu& from, std::uint8_t vector,
                                        std::uint32_t payload) {
  for (std::uint32_t c = 0; c < pending_.size(); ++c) {
    if (c == from.id()) continue;
    send_ipi(from, c, vector, payload);
  }
}

std::optional<PendingInterrupt> InterruptController::next_pending(const Cpu& cpu) {
  if (!cpu.interrupts_enabled()) return std::nullopt;
  auto& q = pending_[cpu.id()];
  // Deliver the lowest-vector (highest priority) interrupt among those whose
  // arrival time has passed; FIFO within a vector.
  auto best = q.end();
  for (auto it = q.begin(); it != q.end(); ++it) {
    if (it->available_at > cpu.now()) continue;
    if (best == q.end() || it->vector < best->vector) best = it;
  }
  if (best == q.end()) return std::nullopt;
  PendingInterrupt out = *best;
  q.erase(best);
  return out;
}

bool InterruptController::has_pending(const Cpu& cpu) const {
  const auto& q = pending_[cpu.id()];
  return std::any_of(q.begin(), q.end(), [&](const PendingInterrupt& p) {
    return p.available_at <= cpu.now();
  });
}

std::optional<Cycles> InterruptController::earliest_arrival(std::uint32_t cpu) const {
  MERC_CHECK(cpu < pending_.size());
  const auto& q = pending_[cpu];
  if (q.empty()) return std::nullopt;
  Cycles earliest = q.front().available_at;
  for (const auto& p : q) earliest = std::min(earliest, p.available_at);
  return earliest;
}

TimerBank::TimerBank(std::size_t num_cpus, Cycles period)
    : period_(period), next_(num_cpus, period) {
  MERC_CHECK(period > 0);
}

bool TimerBank::tick_due(const Cpu& cpu) {
  MERC_CHECK(cpu.id() < next_.size());
  if (cpu.now() < next_[cpu.id()]) return false;
  // Skip missed ticks rather than replaying a burst (lost-tick model).
  while (next_[cpu.id()] <= cpu.now()) next_[cpu.id()] += period_;
  return true;
}

}  // namespace mercury::hw
