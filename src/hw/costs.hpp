// Hardware-level cost model (cycles at 3 GHz).
//
// These are the *primitive* costs every layer above builds on. They are the
// only calibrated inputs of the reproduction: they were tuned once so that
// the native-Linux (N-L) column of the paper's Table 1 is approximated; all
// virtualized-mode numbers must then emerge from the mechanisms (hypercalls,
// validation, ring crossings, split I/O), not from further tuning.
#pragma once

#include "hw/types.hpp"

namespace mercury::hw::costs {

// --- memory hierarchy ---
inline constexpr Cycles kCacheHit = 2;           // L1 access
inline constexpr Cycles kMemAccess = 90;         // DRAM access (cache miss)
inline constexpr Cycles kCacheLinePull = 24;     // refill one 64 B line from L2/DRAM mix
inline constexpr Cycles kPageCopy = 3200;        // copy 4 KB (64 lines, streamed)
inline constexpr Cycles kPageZero = 1400;        // clear 4 KB

// --- address translation ---
inline constexpr Cycles kTlbHit = 1;
inline constexpr Cycles kTlbMissWalk = 2 * kMemAccess;  // 2-level walk
inline constexpr Cycles kTlbFlushAll = 95;       // CR3 reload pipeline cost
inline constexpr Cycles kTlbFlushPage = 40;      // INVLPG

// --- control transfers ---
inline constexpr Cycles kTrapEntry = 350;        // fault/interrupt into ring 0
inline constexpr Cycles kTrapReturn = 250;       // IRET
inline constexpr Cycles kSyscallEntry = 150;     // fast system call entry
inline constexpr Cycles kSyscallReturn = 120;
inline constexpr Cycles kRingCross = 200;        // extra ring 1 <-> 0 bounce
inline constexpr Cycles kPrivRegWrite = 30;      // MOV to CRx / LIDT / LGDT etc.
inline constexpr Cycles kPrivRegRead = 10;

// --- interrupts ---
inline constexpr Cycles kIpiSendLatency = 900;   // APIC ICR write -> remote pin
inline constexpr Cycles kIpiAck = 120;
inline constexpr Cycles kTimerTickWork = 2400;   // 100 Hz tick bookkeeping

// --- devices ---
inline constexpr Cycles kDiskOverhead = 5 * kCyclesPerMicrosecond;    // controller+DMA setup
inline constexpr Cycles kDiskSeek = 4500 * kCyclesPerMicrosecond;     // 10k RPM avg seek+rot
inline constexpr Cycles kDiskPerByte = 1;        // ~55 MB/s streaming at 3 GHz => ~0.05 c/B; keep 1 for FS pressure realism
inline constexpr Cycles kNicTxOverhead = Cycles(2.5 * kCyclesPerMicrosecond);  // driver + DMA per packet
inline constexpr Cycles kNicRxOverhead = 3 * kCyclesPerMicrosecond;
inline constexpr Cycles kSensorRead = 4 * kCyclesPerMicrosecond;      // SMBus poll

}  // namespace mercury::hw::costs
