// Simulated NIC + point-to-point link (the paper's r8169 GbE through a
// gigabit switch). Links serialize packets (bandwidth) and add propagation
// latency; arrival optionally raises an interrupt on a bound CPU.
//
// All cycle timestamps live on the one shared simulation timeline, so two
// Machines joined by a Link exchange packets coherently as long as their
// steppers are co-advanced (cluster::Fabric does this).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "hw/interrupts.hpp"
#include "hw/types.hpp"

namespace mercury::hw {

struct Packet {
  std::uint32_t src_addr = 0;
  std::uint32_t dst_addr = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;  // kernel::net defines the values
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint32_t flags = 0;
  std::size_t payload_bytes = 0;        // modelled payload size
  std::vector<std::uint8_t> inline_data;  // small control payloads only
  Cycles sent_at = 0;
};

class Nic;

class Link {
 public:
  struct Params {
    Cycles per_byte = 24;      // 1 Gb/s at 3 GHz (125 MB/s)
    Cycles latency = 30 * kCyclesPerMicrosecond;  // propagation + switch
    double drop_probability = 0.0;                // failure injection
  };

  Link();
  explicit Link(Params params);

  void attach(Nic* a, Nic* b);

  /// Called by a NIC: serialize + propagate, then enqueue at the peer.
  /// Returns the arrival timestamp (or nullopt if the packet was dropped).
  std::optional<Cycles> transmit(const Nic* from, Packet pkt, Cycles now);

  void set_drop_probability(double p) { params_.drop_probability = p; }
  /// Sever / restore the link (failure injection).
  void set_up(bool up) { up_ = up; }
  bool is_up() const { return up_; }

  std::uint64_t packets_carried() const { return carried_; }
  std::uint64_t packets_dropped() const { return dropped_; }

 private:
  Params params_;
  Nic* ends_[2] = {nullptr, nullptr};
  Cycles free_at_ = 0;  // serialization: when the wire next becomes free
  bool up_ = true;
  std::uint64_t carried_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t drop_seed_ = 0x243F6A8885A308D3ull;
};

class Nic {
 public:
  struct Params {
    Cycles tx_overhead;
    Cycles rx_overhead;
    Params();
  };

  explicit Nic(std::uint32_t addr, Params params = Params{});

  std::uint32_t address() const { return addr_; }

  void connect(Link* link) { link_ = link; }
  bool connected() const { return link_ != nullptr; }

  /// Bind RX interrupts: arrivals raise `vector` on `cpu` via `ic`.
  void bind_irq(InterruptController* ic, std::uint32_t cpu,
                std::uint8_t vector = kVecNic);

  /// Transmit; returns cycles consumed by the driver-visible part (DMA ring
  /// write + doorbell). Wire time happens asynchronously on the link.
  Cycles send(Packet pkt, Cycles now);

  /// Called by the link on delivery.
  void deliver(Packet pkt, Cycles arrival);

  /// Fetch the next packet whose arrival time has passed. Charges nothing;
  /// the driver charges rx_overhead itself.
  std::optional<Packet> poll(Cycles now);

  /// Earliest pending arrival (for idle advancement).
  std::optional<Cycles> earliest_arrival() const;

  Cycles rx_overhead() const { return params_.rx_overhead; }
  std::uint64_t tx_count() const { return tx_; }
  std::uint64_t rx_count() const { return rx_; }

 private:
  struct Queued {
    Packet pkt;
    Cycles arrival;
  };

  std::uint32_t addr_;
  Params params_;
  Link* link_ = nullptr;
  std::deque<Queued> rx_queue_;
  InterruptController* irq_ic_ = nullptr;
  std::uint32_t irq_cpu_ = 0;
  std::uint8_t irq_vector_ = kVecNic;
  std::uint64_t tx_ = 0;
  std::uint64_t rx_ = 0;
};

}  // namespace mercury::hw
