#include "hw/devices/nic.hpp"

#include <algorithm>

#include "hw/costs.hpp"
#include "util/assert.hpp"

namespace mercury::hw {

Link::Link() : Link(Params{}) {}
Link::Link(Params params) : params_(params) {}

void Link::attach(Nic* a, Nic* b) {
  ends_[0] = a;
  ends_[1] = b;
  if (a) a->connect(this);
  if (b) b->connect(this);
}

std::optional<Cycles> Link::transmit(const Nic* from, Packet pkt, Cycles now) {
  Nic* peer = (ends_[0] == from) ? ends_[1] : ends_[0];
  MERC_CHECK_MSG(peer != nullptr, "transmit on unattached link");
  if (!up_) {
    ++dropped_;
    return std::nullopt;
  }
  if (params_.drop_probability > 0.0) {
    // Deterministic xorshift stream local to the link.
    drop_seed_ ^= drop_seed_ << 13;
    drop_seed_ ^= drop_seed_ >> 7;
    drop_seed_ ^= drop_seed_ << 17;
    const double u = static_cast<double>(drop_seed_ >> 11) * 0x1.0p-53;
    if (u < params_.drop_probability) {
      ++dropped_;
      return std::nullopt;
    }
  }
  const std::size_t wire_bytes = pkt.payload_bytes + 64;  // headers + framing
  const Cycles start = std::max(now, free_at_);
  const Cycles serialized = start + params_.per_byte * wire_bytes;
  free_at_ = serialized;
  const Cycles arrival = serialized + params_.latency;
  ++carried_;
  peer->deliver(std::move(pkt), arrival);
  return arrival;
}

Nic::Params::Params()
    : tx_overhead(costs::kNicTxOverhead), rx_overhead(costs::kNicRxOverhead) {}

Nic::Nic(std::uint32_t addr, Params params) : addr_(addr), params_(params) {}

void Nic::bind_irq(InterruptController* ic, std::uint32_t cpu, std::uint8_t vector) {
  irq_ic_ = ic;
  irq_cpu_ = cpu;
  irq_vector_ = vector;
}

Cycles Nic::send(Packet pkt, Cycles now) {
  MERC_CHECK_MSG(link_ != nullptr, "send on disconnected NIC");
  ++tx_;
  pkt.sent_at = now;
  (void)link_->transmit(this, std::move(pkt), now + params_.tx_overhead);
  return params_.tx_overhead;
}

void Nic::deliver(Packet pkt, Cycles arrival) {
  rx_queue_.push_back(Queued{std::move(pkt), arrival});
  if (irq_ic_) irq_ic_->raise(irq_cpu_, irq_vector_, arrival);
}

std::optional<Packet> Nic::poll(Cycles now) {
  auto it = std::min_element(rx_queue_.begin(), rx_queue_.end(),
                             [](const Queued& a, const Queued& b) {
                               return a.arrival < b.arrival;
                             });
  if (it == rx_queue_.end() || it->arrival > now) return std::nullopt;
  Packet out = std::move(it->pkt);
  rx_queue_.erase(it);
  ++rx_;
  return out;
}

std::optional<Cycles> Nic::earliest_arrival() const {
  if (rx_queue_.empty()) return std::nullopt;
  Cycles e = rx_queue_.front().arrival;
  for (const auto& q : rx_queue_) e = std::min(e, q.arrival);
  return e;
}

}  // namespace mercury::hw
