// Simulated SCSI-like block device (the paper's 73 GB 10k RPM disk, "raw
// mode"). Synchronous cost-model interface: each operation returns the
// cycles it consumed, which the calling driver charges to its CPU; a seek
// penalty applies when the head moves off the sequential path.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

#include "hw/types.hpp"

namespace mercury::hw {

class Disk {
 public:
  struct Params {
    std::uint64_t block_count = 5'000'000;  // 4 KB blocks (~20 GB partition)
    Cycles per_op_overhead;                 // controller + DMA setup
    Cycles seek;                            // average seek + rotational delay
    Cycles per_byte;                        // media transfer
    Params();
  };

  static constexpr std::size_t kBlockSize = 4096;

  explicit Disk(Params params = Params{});

  Cycles read(std::uint64_t block, std::span<std::uint8_t> out);
  Cycles write(std::uint64_t block, std::span<const std::uint8_t> in);

  /// Flush barrier: models cache drain; proportional to dirty backlog.
  Cycles flush();

  std::uint64_t block_count() const { return params_.block_count; }
  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  std::uint64_t seeks() const { return seeks_; }

 private:
  Cycles op_cost(std::uint64_t block, std::size_t bytes);

  Params params_;
  std::unordered_map<std::uint64_t, std::unique_ptr<std::uint8_t[]>> blocks_;
  std::uint64_t next_sequential_ = 0;
  std::uint64_t pending_writeback_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t seeks_ = 0;
};

}  // namespace mercury::hw
