#include "hw/devices/disk.hpp"

#include <cstring>

#include "hw/costs.hpp"
#include "util/assert.hpp"

namespace mercury::hw {

Disk::Params::Params()
    : per_op_overhead(costs::kDiskOverhead),
      seek(costs::kDiskSeek),
      per_byte(costs::kDiskPerByte) {}

Disk::Disk(Params params) : params_(params) {}

Cycles Disk::op_cost(std::uint64_t block, std::size_t bytes) {
  Cycles c = params_.per_op_overhead + params_.per_byte * bytes;
  if (block != next_sequential_) {
    // Tiered positioning model (NCQ coalesces short hops): track-to-track
    // for nearby blocks, full seek + rotational delay for far ones.
    const std::uint64_t gap = block > next_sequential_
                                  ? block - next_sequential_
                                  : next_sequential_ - block;
    if (gap < 256)
      c += params_.seek / 75;        // ~60 us short hop
    else if (gap < 4096)
      c += params_.seek / 6;         // ~0.75 ms medium reposition
    else
      c += params_.seek;             // full seek + rotation
    ++seeks_;
  }
  next_sequential_ = block + (bytes + kBlockSize - 1) / kBlockSize;
  return c;
}

Cycles Disk::read(std::uint64_t block, std::span<std::uint8_t> out) {
  MERC_CHECK_MSG(block < params_.block_count, "disk read beyond device");
  MERC_CHECK(out.size() <= kBlockSize);
  ++reads_;
  auto it = blocks_.find(block);
  if (it == blocks_.end())
    std::memset(out.data(), 0, out.size());
  else
    std::memcpy(out.data(), it->second.get(), out.size());
  return op_cost(block, out.size());
}

Cycles Disk::write(std::uint64_t block, std::span<const std::uint8_t> in) {
  MERC_CHECK_MSG(block < params_.block_count, "disk write beyond device");
  MERC_CHECK(in.size() <= kBlockSize);
  ++writes_;
  auto& buf = blocks_[block];
  if (!buf) {
    buf = std::make_unique<std::uint8_t[]>(kBlockSize);
    std::memset(buf.get(), 0, kBlockSize);
  }
  std::memcpy(buf.get(), in.data(), in.size());
  ++pending_writeback_;
  return op_cost(block, in.size());
}

Cycles Disk::flush() {
  // Model: draining the on-disk cache costs a fraction of a rotational
  // delay plus a small per-pending-write charge (NCQ-ordered drain).
  const Cycles c = params_.seek / 16 + pending_writeback_ * (params_.per_op_overhead / 8);
  pending_writeback_ = 0;
  return c;
}

}  // namespace mercury::hw
