#include "hw/devices/sensors.hpp"

#include "hw/costs.hpp"

namespace mercury::hw {

Cycles HealthSensors::read(SensorReadings& out) const {
  out = readings_;
  return costs::kSensorRead;
}

}  // namespace mercury::hw
