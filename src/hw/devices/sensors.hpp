// Hardware health monitors (temperature, fan, voltage, power) as found on
// HPC nodes — the failure-prediction signal source for the paper's §6.5
// scenario. Values drift deterministically; anomalies are injected by the
// failure framework.
#pragma once

#include <cstdint>

#include "hw/types.hpp"

namespace mercury::hw {

struct SensorReadings {
  double temperature_c = 45.0;
  double fan_rpm = 8000.0;
  double voltage_v = 12.0;
  bool power_ok = true;
};

class HealthSensors {
 public:
  /// Sample the sensors; returns the cycles the SMBus poll consumed.
  Cycles read(SensorReadings& out) const;

  void inject_overheat(double temperature_c) { readings_.temperature_c = temperature_c; }
  void inject_fan_failure() { readings_.fan_rpm = 0.0; }
  void inject_power_glitch() { readings_.power_ok = false; }
  void clear_anomalies() { readings_ = SensorReadings{}; }

  /// Threshold predicate matching common failure-prediction policies.
  static bool predicts_failure(const SensorReadings& r) {
    return r.temperature_c > 85.0 || r.fan_rpm < 1000.0 || !r.power_ok ||
           r.voltage_v < 10.8;
  }

 private:
  SensorReadings readings_{};
};

}  // namespace mercury::hw
