// (IO)APIC-like interrupt controller: per-CPU pending queues with arrival
// timestamps, inter-processor interrupts, and a 100 Hz per-CPU timer.
//
// Interrupts become *visible* to a CPU once its local clock passes the
// arrival time and its IF flag is set; the execution stepper polls
// `next_pending` between task steps, which models interrupt delivery at
// instruction boundaries.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "hw/cpu.hpp"
#include "hw/types.hpp"

namespace mercury::hw {

// Well-known vectors.
inline constexpr std::uint8_t kVecTimer = 32;
inline constexpr std::uint8_t kVecDisk = 33;
inline constexpr std::uint8_t kVecNic = 34;
inline constexpr std::uint8_t kVecSensor = 35;
inline constexpr std::uint8_t kVecIpiReschedule = 48;
inline constexpr std::uint8_t kVecIpiTlbShootdown = 49;
inline constexpr std::uint8_t kVecIpiModeSwitch = 50;
inline constexpr std::uint8_t kVecSelfVirtAttach = 0xF0;
inline constexpr std::uint8_t kVecSelfVirtDetach = 0xF1;

struct PendingInterrupt {
  std::uint8_t vector = 0;
  Cycles available_at = 0;
  std::uint32_t payload = 0;  // vector-specific (e.g. rendezvous generation)
};

class InterruptController {
 public:
  explicit InterruptController(std::size_t num_cpus);

  /// Raise a device/software interrupt on a CPU, visible at `available_at`.
  void raise(std::uint32_t cpu, std::uint8_t vector, Cycles available_at,
             std::uint32_t payload = 0);

  /// Send an IPI; charges send cost to the source CPU and computes arrival.
  void send_ipi(Cpu& from, std::uint32_t to_cpu, std::uint8_t vector,
                std::uint32_t payload = 0);

  /// IPI to every other online CPU (mode-switch rendezvous, TLB shootdown).
  void broadcast_ipi(Cpu& from, std::uint8_t vector, std::uint32_t payload = 0);

  /// Pop the highest-priority interrupt visible to `cpu` at its local time.
  /// Returns nullopt when none is deliverable (masked ones stay queued).
  std::optional<PendingInterrupt> next_pending(const Cpu& cpu);

  bool has_pending(const Cpu& cpu) const;

  /// Earliest arrival time of any queued interrupt for the CPU (for idle
  /// clock advancement), or nullopt when the queue is empty.
  std::optional<Cycles> earliest_arrival(std::uint32_t cpu) const;

  std::uint64_t ipis_sent() const { return ipis_sent_; }

 private:
  std::vector<std::deque<PendingInterrupt>> pending_;
  std::uint64_t ipis_sent_ = 0;
};

/// Per-CPU periodic timer (100 Hz in all evaluated systems, as in the paper).
class TimerBank {
 public:
  TimerBank(std::size_t num_cpus, Cycles period);

  Cycles period() const { return period_; }

  /// If a tick is due on `cpu` (local clock passed the deadline), consume it
  /// and return true. The caller (stepper) then injects kVecTimer.
  bool tick_due(const Cpu& cpu);

  Cycles next_deadline(std::uint32_t cpu) const { return next_[cpu]; }

 private:
  Cycles period_;
  std::vector<Cycles> next_;
};

}  // namespace mercury::hw
