// Deterministic pseudo-random number generator (xoshiro256**).
//
// The simulator must be bit-for-bit reproducible across runs and platforms,
// so we avoid std::mt19937's distribution non-portability and implement the
// few distributions the workloads need ourselves.
#pragma once

#include <cstdint>
#include <vector>

namespace mercury::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial.
  bool chance(double p);

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// Zipf-like rank selection over n items, exponent s (hot-spot access
  /// patterns for cache studies).
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (for per-subsystem determinism).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace mercury::util
