// Plain-text table rendering used by the bench harness to print the paper's
// tables and figure series.
#pragma once

#include <string>
#include <vector>

namespace mercury::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: first cell is a label, the rest are numbers formatted with
  /// `decimals` digits after the point.
  void add_numeric_row(const std::string& label, const std::vector<double>& values,
                       int decimals = 2);

  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed decimals (locale-independent).
std::string format_fixed(double v, int decimals);

}  // namespace mercury::util
