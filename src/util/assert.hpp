// Invariant checking for the Mercury simulator.
//
// MERC_CHECK guards *simulator* invariants: a failure means the simulation
// itself is buggy (not that the simulated software faulted). Simulated
// faults (page faults, #GP, ...) are modelled as values/events, never as
// C++ exceptions from these macros.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mercury::util {

/// Thrown when a simulator invariant is violated.
class InvariantError final : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Failure observer, called just before invariant_failure throws. The obs
/// layer installs a postmortem dumper here (see obs/postmortem.hpp) so a
/// failed MERC_CHECK leaves a black-box bundle behind; util itself stays
/// dependency-free. The hook must not throw.
using InvariantFailureHook = void (*)(const char* expr, const char* file,
                                      int line, const std::string& msg);

/// Replace the hook (nullptr disables); returns the previous hook.
InvariantFailureHook set_invariant_failure_hook(InvariantFailureHook hook);
InvariantFailureHook invariant_failure_hook();

[[noreturn]] inline void invariant_failure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  if (InvariantFailureHook hook = invariant_failure_hook())
    hook(expr, file, line, msg);
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace mercury::util

#define MERC_CHECK(expr)                                                     \
  do {                                                                       \
    if (!(expr))                                                             \
      ::mercury::util::invariant_failure(#expr, __FILE__, __LINE__, "");     \
  } while (0)

#define MERC_CHECK_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream merc_os_;                                           \
      merc_os_ << msg;                                                       \
      ::mercury::util::invariant_failure(#expr, __FILE__, __LINE__,          \
                                         merc_os_.str());                    \
    }                                                                        \
  } while (0)
