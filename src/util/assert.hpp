// Invariant checking for the Mercury simulator.
//
// MERC_CHECK guards *simulator* invariants: a failure means the simulation
// itself is buggy (not that the simulated software faulted). Simulated
// faults (page faults, #GP, ...) are modelled as values/events, never as
// C++ exceptions from these macros.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mercury::util {

/// Thrown when a simulator invariant is violated.
class InvariantError final : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void invariant_failure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace mercury::util

#define MERC_CHECK(expr)                                                     \
  do {                                                                       \
    if (!(expr))                                                             \
      ::mercury::util::invariant_failure(#expr, __FILE__, __LINE__, "");     \
  } while (0)

#define MERC_CHECK_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream merc_os_;                                           \
      merc_os_ << msg;                                                       \
      ::mercury::util::invariant_failure(#expr, __FILE__, __LINE__,          \
                                         merc_os_.str());                    \
    }                                                                        \
  } while (0)
