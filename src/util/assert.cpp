#include "util/assert.hpp"

namespace mercury::util {

namespace {
InvariantFailureHook& hook_storage() {
  static InvariantFailureHook hook = nullptr;
  return hook;
}
}  // namespace

InvariantFailureHook set_invariant_failure_hook(InvariantFailureHook hook) {
  InvariantFailureHook previous = hook_storage();
  hook_storage() = hook;
  return previous;
}

InvariantFailureHook invariant_failure_hook() { return hook_storage(); }

}  // namespace mercury::util
