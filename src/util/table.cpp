#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/assert.hpp"

namespace mercury::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  MERC_CHECK_MSG(cells.size() == header_.size(),
                 "row width " << cells.size() << " != header width " << header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::string& label, const std::vector<double>& values,
                            int decimals) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_fixed(v, decimals));
  add_row(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace mercury::util
