// Minimal leveled logger. Quiet by default so benches stay clean; tests and
// examples can raise the level per-subsystem.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>

namespace mercury::util {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

void log_emit(LogLevel level, std::string_view subsystem, const std::string& msg);

namespace detail {
inline void append(std::ostringstream&) {}
template <typename T, typename... Rest>
void append(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  append(os, rest...);
}
}  // namespace detail

/// Lazy formatting: arguments are only stringified when the level is enabled.
template <typename... Args>
void log(LogLevel level, std::string_view subsystem, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::append(os, args...);
  log_emit(level, subsystem, os.str());
}

template <typename... Args>
void log_debug(std::string_view sub, const Args&... a) {
  log(LogLevel::kDebug, sub, a...);
}
template <typename... Args>
void log_info(std::string_view sub, const Args&... a) {
  log(LogLevel::kInfo, sub, a...);
}
template <typename... Args>
void log_warn(std::string_view sub, const Args&... a) {
  log(LogLevel::kWarn, sub, a...);
}
template <typename... Args>
void log_error(std::string_view sub, const Args&... a) {
  log(LogLevel::kError, sub, a...);
}

}  // namespace mercury::util
