// Minimal leveled logger. Quiet by default so benches stay clean; tests and
// examples can raise the level per-subsystem.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>

namespace mercury::util {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Per-subsystem override: a subsystem with an override ignores the global
/// threshold ("vmm" can trace while everything else stays at warn).
void set_log_level(std::string_view subsystem, LogLevel level);
void clear_log_level(std::string_view subsystem);
void clear_log_level_overrides();
/// Effective threshold for a subsystem (its override, else the global).
LogLevel log_level(std::string_view subsystem);
inline bool log_enabled(LogLevel level, std::string_view subsystem) {
  return level >= log_level(subsystem) && level != LogLevel::kOff;
}

/// Emission is interleave-safe: the line is formatted first and written
/// with a single fwrite, so concurrent emitters cannot shear each other's
/// lines.
void log_emit(LogLevel level, std::string_view subsystem, const std::string& msg);

/// Redirect emission (tests point this at a tmpfile); nullptr -> stderr.
void set_log_sink(std::FILE* sink);

/// The exact line log_emit writes, without emitting it (exposed for tests).
std::string format_log_line(LogLevel level, std::string_view subsystem,
                            const std::string& msg);

namespace detail {
inline void append(std::ostringstream&) {}
template <typename T, typename... Rest>
void append(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  append(os, rest...);
}
}  // namespace detail

/// Lazy formatting: arguments are only stringified when the level is enabled.
template <typename... Args>
void log(LogLevel level, std::string_view subsystem, const Args&... args) {
  if (!log_enabled(level, subsystem)) return;
  std::ostringstream os;
  detail::append(os, args...);
  log_emit(level, subsystem, os.str());
}

template <typename... Args>
void log_debug(std::string_view sub, const Args&... a) {
  log(LogLevel::kDebug, sub, a...);
}
template <typename... Args>
void log_info(std::string_view sub, const Args&... a) {
  log(LogLevel::kInfo, sub, a...);
}
template <typename... Args>
void log_warn(std::string_view sub, const Args&... a) {
  log(LogLevel::kWarn, sub, a...);
}
template <typename... Args>
void log_error(std::string_view sub, const Args&... a) {
  log(LogLevel::kError, sub, a...);
}

}  // namespace mercury::util
