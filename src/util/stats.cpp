#include "util/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace mercury::util {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. pairwise combine: exact for mean/M2 up to rounding.
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

void RunningStats::reset() { *this = RunningStats{}; }

namespace {
int bucket_of(std::uint64_t value) {
  return value == 0 ? 0 : std::bit_width(value);
}
}  // namespace

void Histogram::add(std::uint64_t value) {
  ++buckets_[bucket_of(value) % kBuckets];
  ++total_;
}

std::uint64_t Histogram::quantile(double q) const {
  // Contract: an empty histogram yields 0 for every q; q is clamped to
  // [0, 1] (NaN behaves like 0). q==0 gives the smallest recorded bucket's
  // upper bound, q==1 the largest — never a sentinel.
  if (total_ == 0) return 0;
  if (!(q > 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank in [1, total_]: the smallest cumulative count covering fraction q.
  auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  target = std::max<std::uint64_t>(1, std::min(target, total_));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= target) return b == 0 ? 0 : (1ull << b) - 1;
  }
  return (1ull << (kBuckets - 1)) - 1;  // unreachable: seen reaches total_
}

void Histogram::merge(const Histogram& other) {
  for (int b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  total_ += other.total_;
}

std::string Histogram::summary() const {
  std::ostringstream os;
  os << "n=" << total_ << " p50<=" << quantile(0.50) << " p90<=" << quantile(0.90)
     << " p99<=" << quantile(0.99);
  return os.str();
}

}  // namespace mercury::util
