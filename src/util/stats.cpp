#include "util/stats.hpp"

#include <bit>
#include <cmath>
#include <sstream>

namespace mercury::util {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::reset() { *this = RunningStats{}; }

namespace {
int bucket_of(std::uint64_t value) {
  return value == 0 ? 0 : std::bit_width(value);
}
}  // namespace

void Histogram::add(std::uint64_t value) {
  ++buckets_[bucket_of(value) % kBuckets];
  ++total_;
}

std::uint64_t Histogram::quantile(double q) const {
  if (total_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > target) return b == 0 ? 0 : (1ull << b) - 1;
  }
  return ~0ull;
}

std::string Histogram::summary() const {
  std::ostringstream os;
  os << "n=" << total_ << " p50<=" << quantile(0.50) << " p90<=" << quantile(0.90)
     << " p99<=" << quantile(0.99);
  return os.str();
}

}  // namespace mercury::util
