#include "util/log.hpp"

#include <atomic>
#include <mutex>
#include <utility>
#include <vector>

namespace mercury::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<std::FILE*> g_sink{nullptr};  // nullptr -> stderr

// Subsystem overrides: tiny vector, linearly scanned. The hot path (no
// overrides installed) skips the lock entirely via g_has_overrides.
std::mutex g_override_mu;
std::atomic<bool> g_has_overrides{false};
std::vector<std::pair<std::string, LogLevel>> g_overrides;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void set_log_level(std::string_view subsystem, LogLevel level) {
  std::lock_guard<std::mutex> lock(g_override_mu);
  for (auto& [name, lvl] : g_overrides)
    if (name == subsystem) {
      lvl = level;
      return;
    }
  g_overrides.emplace_back(std::string(subsystem), level);
  g_has_overrides.store(true, std::memory_order_relaxed);
}

void clear_log_level(std::string_view subsystem) {
  std::lock_guard<std::mutex> lock(g_override_mu);
  for (auto it = g_overrides.begin(); it != g_overrides.end(); ++it)
    if (it->first == subsystem) {
      g_overrides.erase(it);
      break;
    }
  g_has_overrides.store(!g_overrides.empty(), std::memory_order_relaxed);
}

void clear_log_level_overrides() {
  std::lock_guard<std::mutex> lock(g_override_mu);
  g_overrides.clear();
  g_has_overrides.store(false, std::memory_order_relaxed);
}

LogLevel log_level(std::string_view subsystem) {
  if (!g_has_overrides.load(std::memory_order_relaxed)) return log_level();
  std::lock_guard<std::mutex> lock(g_override_mu);
  for (const auto& [name, lvl] : g_overrides)
    if (name == subsystem) return lvl;
  return log_level();
}

void set_log_sink(std::FILE* sink) {
  g_sink.store(sink, std::memory_order_relaxed);
}

std::string format_log_line(LogLevel level, std::string_view subsystem,
                            const std::string& msg) {
  std::string line;
  line.reserve(subsystem.size() + msg.size() + 12);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += subsystem;
  line += ": ";
  line += msg;
  line += '\n';
  return line;
}

void log_emit(LogLevel level, std::string_view subsystem, const std::string& msg) {
  // One fwrite of the fully formatted line: interleaving emitters (or a
  // signal-interrupted process) can never shear a line in half.
  const std::string line = format_log_line(level, subsystem, msg);
  std::FILE* sink = g_sink.load(std::memory_order_relaxed);
  if (!sink) sink = stderr;
  std::fwrite(line.data(), 1, line.size(), sink);
}

}  // namespace mercury::util
