#include "util/rng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace mercury::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  MERC_CHECK(bound > 0);
  // Debiased modulo via rejection sampling.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) {
  MERC_CHECK(lo <= hi);
  return lo + below(hi - lo + 1);
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  MERC_CHECK(n > 0);
  // Rejection-inversion would be overkill for simulator workloads; use the
  // simple inverse-power transform, which preserves the hot/cold shape.
  const double u = uniform();
  const double x = std::pow(static_cast<double>(n), 1.0 - s * u);
  std::uint64_t rank = static_cast<std::uint64_t>(x);
  if (rank >= n) rank = n - 1;
  return rank;
}

Rng Rng::split() { return Rng(next() ^ 0xA5A5A5A55A5A5A5Aull); }

}  // namespace mercury::util
