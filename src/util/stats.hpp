// Running statistics and fixed-bucket histograms for measurement reporting.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mercury::util {

/// Welford running mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  /// Fold another accumulator in (parallel Welford combine); equivalent to
  /// having add()ed every sample of `other` here.
  void merge(const RunningStats& other);
  void reset();

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Log2-bucketed histogram for latency distributions.
class Histogram {
 public:
  void add(std::uint64_t value);
  std::uint64_t count() const { return total_; }
  /// Approximate quantile as a bucket upper bound. `q` is clamped to
  /// [0, 1]: q<=0 -> smallest recorded bucket, q>=1 -> largest recorded
  /// bucket. An empty histogram returns 0 for every q.
  std::uint64_t quantile(double q) const;
  /// Bucket-wise sum with `other`, as if its samples were add()ed here.
  void merge(const Histogram& other);
  std::string summary() const;

 private:
  static constexpr int kBuckets = 64;
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

}  // namespace mercury::util
