// The virtual-mode virtualization object: every sensitive operation becomes
// a hypercall / trap into the (pre-cached) hypervisor. Two roles exist:
//   kDriverDomain — the self-virtualized OS serving as Xen's dom0/driver
//                   domain (partial-virtual mode, M-V): direct device access.
//   kGuestDomain  — an unprivileged domain (full-virtual mode / domU):
//                   device access through the split frontend/backend path.
#pragma once

#include "core/virt_object.hpp"
#include "vmm/hypervisor.hpp"

namespace mercury::core {

class VirtualVo : public VirtObject {
 public:
  enum class Role : std::uint8_t { kDriverDomain, kGuestDomain };

  VirtualVo(vmm::Hypervisor& hv, Role role) : hv_(hv), role_(role) {}

  void bind(vmm::DomainId dom) { dom_ = dom; }
  vmm::DomainId dom() const { return dom_; }
  Role role() const { return role_; }

  const char* mode_name() const override {
    return role_ == Role::kDriverDomain ? "mercury-virtual-driver"
                                        : "mercury-virtual-guest";
  }
  bool is_virtual() const override { return true; }
  hw::Ring kernel_ring() const override { return hw::Ring::kRing1; }
  hw::Cycles copy_tax_per_kb() const override {
    return pv::costs::kVirtCopyTaxPerKb;
  }

  void write_cr3(hw::Cpu& cpu, hw::Pfn root) override;
  void load_idt(hw::Cpu& cpu, hw::TableToken t) override;
  void load_gdt(hw::Cpu& cpu, hw::TableToken t) override;
  void irq_disable(hw::Cpu& cpu) override;
  void irq_enable(hw::Cpu& cpu) override;
  void stack_switch(hw::Cpu& cpu) override;
  void syscall_entered(hw::Cpu& cpu) override;
  void syscall_exiting(hw::Cpu& cpu) override;

  void pte_write(hw::Cpu& cpu, hw::PhysAddr pte_addr, hw::Pte value) override;
  void pte_write_batch(hw::Cpu& cpu,
                       std::span<const pv::PteUpdate> updates) override;
  void pin_page_table(hw::Cpu& cpu, hw::Pfn pfn, pv::PtLevel level) override;
  void unpin_page_table(hw::Cpu& cpu, hw::Pfn pfn) override;
  void flush_tlb(hw::Cpu& cpu) override;
  void flush_tlb_page(hw::Cpu& cpu, hw::VirtAddr va) override;

  void send_ipi(hw::Cpu& cpu, std::uint32_t dst_cpu, std::uint8_t vector,
                std::uint32_t payload) override;

  void disk_read(hw::Cpu& cpu, std::uint64_t block,
                 std::span<std::uint8_t> out) override;
  void disk_write(hw::Cpu& cpu, std::uint64_t block,
                  std::span<const std::uint8_t> in) override;
  void disk_flush(hw::Cpu& cpu) override;
  void net_send(hw::Cpu& cpu, hw::Packet pkt) override;
  std::optional<hw::Packet> net_poll(hw::Cpu& cpu) override;
  void sensors_read(hw::Cpu& cpu, hw::SensorReadings& out) override;

  void state_transfer_in(hw::Cpu& cpu, kernel::Kernel& k) override;
  void reload_hw_state(hw::Cpu& cpu, kernel::Kernel& k) override;

  vmm::Hypervisor& hypervisor() { return hv_; }

 private:
  vmm::Hypervisor& hv_;
  Role role_;
  vmm::DomainId dom_ = vmm::kDomInvalid;
};

}  // namespace mercury::core
