// Deterministic fault injection for the mode-switch path (dependability
// tooling, paper §8's failure-resistant switch made testable).
//
// A FaultPlan names one injection site threaded through the switch engine,
// the rendezvous, the state-transfer functions, the stack fixup, and the
// VMM's adopt/release loops, plus a trigger count: the plan fires on the
// Nth visit to that site after arming, then disarms itself (single-shot, so
// recovery code that re-traverses the same sites cannot re-fault). Firing
// throws FaultInjected; SwitchEngine catches it at the commit level and
// rolls the machine back to its pre-switch mode.
//
// Everything is deterministic: the simulator is single-threaded, site
// visits are a pure function of the workload, and `random_fault_plan`
// derives plans from a caller-supplied seeded Rng — a failing fuzz seed
// replays exactly.
#pragma once

#include <cstdint>
#include <string>

#include "hw/cpu.hpp"
#include "util/rng.hpp"

namespace mercury::core {

/// Named injection sites, in the order a switch traverses them.
enum class FaultSite : std::uint8_t {
  kRendezvous,        // §5.4 barrier entry (both directions, reroles too)
  kAdoptRebuild,      // VMM page-info rebuild, per frame (attach)
  kAdoptProtect,      // PT typing + write-protection, per table (attach)
  kStackFixup,        // eager selector-fixup walk, per task (both)
  kTransferBindings,  // trap/descriptor-table rebinding (both)
  kReleaseUnprotect,  // PT writability restore, per frame (detach)
  kReloadHwState,     // per-CPU control-state reload (both)
  // Worker-side sites: the same bulk loops as above, but executed on a
  // rendezvous-parked crew CPU as a shard of the parallel switch pipeline.
  // A fire here aborts the shard mid-flight on the *worker*; the crew joins
  // and the control processor's rollback must still converge.
  kShardRebuild,      // crew shard of the page-info rebuild (attach)
  kShardProtect,      // crew shard of type-and-protect (attach)
  kShardUnprotect,    // crew shard of the writability restore (detach)
  kNumSites,
};

inline constexpr std::size_t kNumFaultSites =
    static_cast<std::size_t>(FaultSite::kNumSites);

const char* fault_site_name(FaultSite s);

enum class FaultKind : std::uint8_t {
  kFail,          // the step reports a clean failure
  kTimeout,       // the step hangs for `latency` cycles, then fails
  kCorruptFrame,  // stack fixup walked into a malformed saved frame
};

const char* fault_kind_name(FaultKind k);

/// One planned fault: fire `kind` on the `trigger_count`-th visit to `site`
/// (1-based, counted from arming).
struct FaultPlan {
  FaultSite site = FaultSite::kRendezvous;
  std::uint64_t trigger_count = 1;
  FaultKind kind = FaultKind::kFail;
  /// Simulated cycles the faulting step burns before failing (a rendezvous
  /// timeout, a wedged transfer). Charged to the CPU at the site, if known.
  hw::Cycles latency = 0;

  std::string describe() const;
};

/// Thrown at a site when the armed plan fires. Carries the id of the CPU
/// that was executing the faulted step (the control processor on the serial
/// path, a crew worker inside a shard) so rollback postmortems can name it.
struct FaultInjected {
  FaultSite site;
  FaultKind kind;
  std::uint32_t cpu = 0;
};

/// The process-global injector every site reports to. Disarmed it is a
/// handful of loads per visit; tests arm exactly one single-shot plan.
class FaultInjector {
 public:
  /// Arm `plan` (replacing any armed plan) and zero the per-arm counters.
  void arm(const FaultPlan& plan);
  void disarm() { armed_ = false; }
  bool armed() const { return armed_; }
  const FaultPlan& plan() const { return plan_; }

  /// Total faults fired since process start / since the last arm.
  std::uint64_t injected() const { return injected_; }
  /// Visits to `site` since the last arm.
  std::uint64_t visits(FaultSite s) const {
    return visits_[static_cast<std::size_t>(s)];
  }

  /// Report a visit to `site`. Throws FaultInjected (after charging
  /// `plan.latency` to `cpu`, when given) if the armed plan fires; the plan
  /// disarms first so unwind/rollback code revisiting sites is safe.
  void on_site(FaultSite site, hw::Cpu* cpu = nullptr);

 private:
  bool armed_ = false;
  FaultPlan plan_{};
  std::uint64_t visits_[kNumFaultSites] = {};
  std::uint64_t injected_ = 0;
};

FaultInjector& fault_injector();

/// Site marker used by the switch path. Cheap when disarmed.
inline void fault_point(FaultSite site, hw::Cpu* cpu = nullptr) {
  FaultInjector& fi = fault_injector();
  if (fi.armed()) fi.on_site(site, cpu);
}

/// Derive a plan from a seeded Rng (the fuzzer's source of variety): any
/// site, trigger counts spanning first-hit to deep-in-the-loop, all kinds.
FaultPlan random_fault_plan(util::Rng& rng);

}  // namespace mercury::core
