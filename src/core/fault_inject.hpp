// Deterministic fault injection for the mode-switch path (dependability
// tooling, paper §8's failure-resistant switch made testable).
//
// A FaultPlan names one injection site threaded through the switch engine,
// the rendezvous, the state-transfer functions, the stack fixup, and the
// VMM's adopt/release loops, plus a trigger count: the plan fires on the
// Nth visit to that site after arming, then disarms itself (single-shot, so
// recovery code that re-traverses the same sites cannot re-fault). Firing
// throws FaultInjected; SwitchEngine catches it at the commit level and
// rolls the machine back to its pre-switch mode.
//
// Beyond single-shot plans, a FaultStorm keeps faulting: every commit
// attempt opens a *window* (FaultInjector::begin_window), each window rolls
// one seeded Bernoulli trial per site, and a won trial fires at a random
// visit depth inside that window. Storms support burst lengths (a hit makes
// the next N windows fire too) and rate decay (each fire multiplies the
// site's rate), so a soak run can model both transient glitches and failure
// cascades that eventually die down — or never do.
//
// Everything is deterministic: the simulator is single-threaded, site
// visits are a pure function of the workload, and both `random_fault_plan`
// and storm scheduling derive from caller-supplied seeds — a failing soak
// seed replays exactly.
#pragma once

#include <cstdint>
#include <string>

#include "hw/cpu.hpp"
#include "util/rng.hpp"

namespace mercury::core {

/// Named injection sites, in the order a switch traverses them.
enum class FaultSite : std::uint8_t {
  kRendezvous,        // §5.4 barrier entry (both directions, reroles too)
  kAdoptRebuild,      // VMM page-info rebuild, per frame (attach)
  kAdoptProtect,      // PT typing + write-protection, per table (attach)
  kStackFixup,        // eager selector-fixup walk, per task (both)
  kTransferBindings,  // trap/descriptor-table rebinding (both)
  kReleaseUnprotect,  // PT writability restore, per frame (detach)
  kReloadHwState,     // per-CPU control-state reload (both)
  // Worker-side sites: the same bulk loops as above, but executed on a
  // rendezvous-parked crew CPU as a shard of the parallel switch pipeline.
  // A fire here aborts the shard mid-flight on the *worker*; the crew joins
  // and the control processor's rollback must still converge.
  kShardRebuild,      // crew shard of the page-info rebuild (attach)
  kShardProtect,      // crew shard of type-and-protect (attach)
  kShardUnprotect,    // crew shard of the writability restore (detach)
  kDirtyRebuild,      // warm re-attach dirty-set rebuild, per frame (attach;
                      // fires on the serial path and inside crew shards)
  kNumSites,
};

inline constexpr std::size_t kNumFaultSites =
    static_cast<std::size_t>(FaultSite::kNumSites);

const char* fault_site_name(FaultSite s);

enum class FaultKind : std::uint8_t {
  kFail,          // the step reports a clean failure
  kTimeout,       // the step hangs for `latency` cycles, then fails
  kCorruptFrame,  // stack fixup walked into a malformed saved frame
};

const char* fault_kind_name(FaultKind k);

/// One planned fault: fire `kind` on the `trigger_count`-th visit to `site`
/// (1-based, counted from arming).
struct FaultPlan {
  FaultSite site = FaultSite::kRendezvous;
  std::uint64_t trigger_count = 1;
  FaultKind kind = FaultKind::kFail;
  /// Simulated cycles the faulting step burns before failing (a rendezvous
  /// timeout, a wedged transfer). Charged to the CPU at the site, if known.
  hw::Cycles latency = 0;

  std::string describe() const;
};

/// Thrown at a site when the armed plan fires. Carries the id of the CPU
/// that was executing the faulted step (the control processor on the serial
/// path, a crew worker inside a shard) so rollback postmortems can name it.
struct FaultInjected {
  FaultSite site;
  FaultKind kind;
  std::uint32_t cpu = 0;
};

/// A seeded multi-shot fault regime for soak runs. One window = one commit
/// attempt (the switch engine calls begin_window); per window each site
/// with rate > 0 rolls an independent Bernoulli trial, and a won trial
/// fires on a uniformly chosen visit in [1, max_trigger_depth] to that
/// site within the window.
struct FaultStorm {
  /// Per-window fire probability, indexed by FaultSite.
  double rate[kNumFaultSites] = {};
  /// A won trial fires at visit 1..max_trigger_depth within the window
  /// (bulk sites see thousands of visits per switch; shallow depths keep
  /// the fire reachable at every site).
  std::uint64_t max_trigger_depth = 8;
  /// After a fire, the same site keeps firing for this many consecutive
  /// windows in total (1 = no burst).
  std::uint32_t burst_windows = 1;
  /// Each fire multiplies the firing site's rate by this factor: < 1.0
  /// models storms that blow over, 1.0 a stationary fault rate.
  double decay = 1.0;
  FaultKind kind = FaultKind::kFail;
  /// Cycles charged at the site before a kTimeout fire fails.
  hw::Cycles timeout_latency = 0;
  /// Stop the storm after this many fires (0 = unlimited).
  std::uint64_t max_fires = 0;
  std::uint64_t seed = 1;

  /// Every site at the same per-window rate.
  static FaultStorm uniform(double rate, std::uint64_t seed);

  std::string describe() const;
};

/// The process-global injector every site reports to. Disarmed it is a
/// handful of loads per visit; tests arm exactly one single-shot plan or
/// one storm (they compose: the plan is checked first).
class FaultInjector {
 public:
  /// Arm `plan` and zero the per-arm counters. Arming over a live plan is
  /// an invariant violation (MERC_CHECK): silent replacement made fault
  /// sweeps pass vacuously. disarm() first, or use replace().
  void arm(const FaultPlan& plan);
  /// Explicitly swap the armed plan (counts the old one as unfired).
  void replace(const FaultPlan& plan);
  void disarm() {
    if (armed_) ++unfired_disarms_;
    armed_ = false;
  }
  bool armed() const { return armed_; }
  const FaultPlan& plan() const { return plan_; }

  /// Arm a multi-shot storm. Runs until stop_storm(), or until `max_fires`
  /// is reached. Replacing a live storm is allowed (storms are regimes,
  /// not one-shot assertions).
  void arm_storm(const FaultStorm& storm);
  void stop_storm() { storm_active_ = false; }
  bool storm_active() const { return storm_active_; }
  /// The *live* storm state: fire_* mutates per-site rates by `decay`, so
  /// this drifts from the armed regime as fires land.
  const FaultStorm& storm() const { return storm_; }
  /// The storm exactly as armed (pre-decay) — reports quote this one.
  const FaultStorm& storm_config() const { return storm_config_; }
  /// Fires attributed to the storm since it was armed.
  std::uint64_t storm_fires() const { return storm_fires_; }
  /// Windows opened since the storm was armed.
  std::uint64_t storm_windows() const { return storm_windows_; }

  /// Open a scheduling window (the switch engine calls this at the start
  /// of every commit attempt). Rolls the storm's per-site trials; no-op
  /// without an active storm.
  void begin_window();

  /// Suppress firing (visits still counted). The switch engine pauses the
  /// injector across a rollback so a storm cannot fault the fault handler.
  void set_paused(bool p) { paused_ = p; }
  bool paused() const { return paused_; }
  class PauseGuard {
   public:
    PauseGuard();
    ~PauseGuard();
    PauseGuard(const PauseGuard&) = delete;
    PauseGuard& operator=(const PauseGuard&) = delete;

   private:
    bool was_paused_;
  };

  /// Total faults fired since process start (plans + storms).
  std::uint64_t injected() const { return injected_; }
  /// Visits to `site` since the last arm.
  std::uint64_t visits(FaultSite s) const {
    return visits_[static_cast<std::size_t>(s)];
  }
  /// Plans armed / disarmed without ever firing, since process start.
  /// Tests report a nonzero unfired delta at scope exit: a plan that never
  /// fired usually means the sweep asserted nothing.
  std::uint64_t arms() const { return arms_; }
  std::uint64_t unfired_disarms() const { return unfired_disarms_; }

  /// Report a visit to `site`. Throws FaultInjected (after charging the
  /// fault's latency to `cpu`, when given) if the armed plan or the storm
  /// fires; a firing plan disarms first so unwind/rollback code revisiting
  /// sites is safe, and storms are suppressed while paused.
  void on_site(FaultSite site, hw::Cpu* cpu = nullptr);

  /// True when any site visit could fire (keeps the fault_point fast path
  /// a couple of loads).
  bool live() const { return armed_ || storm_active_; }

 private:
  void fire_plan(FaultSite site, hw::Cpu* cpu, std::uint64_t visit);
  void fire_storm(FaultSite site, hw::Cpu* cpu, std::uint64_t visit);

  bool armed_ = false;
  bool paused_ = false;
  FaultPlan plan_{};
  std::uint64_t visits_[kNumFaultSites] = {};
  std::uint64_t injected_ = 0;
  std::uint64_t arms_ = 0;
  std::uint64_t unfired_disarms_ = 0;

  bool storm_active_ = false;
  FaultStorm storm_{};         // live state: rates decay as fires land
  FaultStorm storm_config_{};  // the regime as armed, never mutated
  util::Rng storm_rng_{1};
  std::uint64_t storm_fires_ = 0;
  std::uint64_t storm_windows_ = 0;
  std::uint32_t burst_left_ = 0;
  FaultSite burst_site_ = FaultSite::kRendezvous;
  /// Visit ordinal (within the current window) at which each site fires;
  /// 0 = quiet this window.
  std::uint64_t window_trigger_[kNumFaultSites] = {};
  std::uint64_t window_visits_[kNumFaultSites] = {};
};

FaultInjector& fault_injector();

/// Site marker used by the switch path. Cheap when disarmed.
inline void fault_point(FaultSite site, hw::Cpu* cpu = nullptr) {
  FaultInjector& fi = fault_injector();
  if (fi.live()) fi.on_site(site, cpu);
}

/// Derive a plan from a seeded Rng (the fuzzer's source of variety): any
/// site, trigger counts spanning first-hit to deep-in-the-loop, all kinds.
FaultPlan random_fault_plan(util::Rng& rng);

}  // namespace mercury::core
