// SMP mode-switch coordination (paper §5.4): the control processor IPIs all
// other cores; each signals readiness on a shared counter and spins on a
// shared flag; the CP releases them once everyone is parked. Also implements
// the loosely-coupled tree protocol the paper's future work suggests for
// large core counts (§8), for the scalability ablation.
#pragma once

#include <cstdint>

#include "hw/machine.hpp"

namespace mercury::core {

enum class RendezvousProtocol : std::uint8_t {
  kIpiSharedVar,  // the paper's protocol: broadcast IPI + shared count/flag
  kTree,          // hierarchical pairwise signalling (future-work variant)
};

const char* rendezvous_protocol_name(RendezvousProtocol p);

struct RendezvousStats {
  std::size_t cpus = 0;
  hw::Cycles entry_time = 0;       // CP clock when the rendezvous began
  hw::Cycles completion_time = 0;  // all CPUs parked & released
  hw::Cycles latency() const { return completion_time - entry_time; }
};

class Rendezvous {
 public:
  /// Park every CPU at a barrier, starting from control processor `cp`.
  /// On return all CPU clocks are aligned at the barrier exit time.
  static RendezvousStats run(hw::Machine& machine, hw::Cpu& cp,
                             RendezvousProtocol protocol);
};

}  // namespace mercury::core
