// SMP mode-switch coordination (paper §5.4): the control processor IPIs all
// other cores; each signals readiness on a shared counter and spins on a
// shared flag; the CP releases them once everyone is parked. Also implements
// the loosely-coupled tree protocol the paper's future work suggests for
// large core counts (§8), for the scalability ablation.
//
// The rendezvous is an instantiable coordinator with an explicit
// park()/release() lifetime: while the CPUs are held at the barrier the
// switch engine may dispatch sharded bulk work to them through a SwitchCrew
// (the parallel switch pipeline) before letting them go. The one-shot
// static run() shim (park immediately followed by release) is kept for
// callers that only need the classic barrier, and is cycle-identical to the
// pre-object protocol.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/machine.hpp"

namespace mercury::core {

enum class RendezvousProtocol : std::uint8_t {
  kIpiSharedVar,  // the paper's protocol: broadcast IPI + shared count/flag
  kTree,          // hierarchical pairwise signalling (future-work variant)
};

const char* rendezvous_protocol_name(RendezvousProtocol p);

struct RendezvousStats {
  std::size_t cpus = 0;
  hw::Cycles entry_time = 0;       // CP clock when the rendezvous began
  hw::Cycles completion_time = 0;  // all CPUs parked & released
  /// Longest per-CPU unavailability window in this episode: release time
  /// minus the earliest parked clock. Computed with plain arithmetic on
  /// both obs-on and obs-off builds (the cycle-identity probe prints it),
  /// so the pause ledger merely *observes* it.
  hw::Cycles max_pause_cycles = 0;
  hw::Cycles latency() const { return completion_time - entry_time; }
};

/// One barrier episode. Construct, park(), optionally run crew work on the
/// parked CPUs, then release(). Protocol state and stats live on the object
/// instead of being recomputed per call.
class Rendezvous {
 public:
  Rendezvous(hw::Machine& machine, hw::Cpu& cp, RendezvousProtocol protocol);

  /// Bring every CPU to the barrier: IPI broadcast, ready handshake. On
  /// return each CPU's clock sits at the moment it started spinning (the
  /// non-CP cores are conceptually idle-spinning from here until release).
  /// May throw FaultInjected at the kRendezvous site.
  void park();
  bool parked() const { return parked_; }

  /// Set the release flag; every CPU's clock is aligned at the barrier-exit
  /// time (max over the crew's clocks plus the release handshake).
  RendezvousStats release();

  /// Coordination cost excluding any work done while parked: the park
  /// handshake plus the release handshake. Equal to latency() when nothing
  /// ran between park() and release().
  hw::Cycles park_cycles() const { return park_cycles_; }
  hw::Cycles release_cycles() const { return release_cycles_; }
  hw::Cycles coordination_cycles() const {
    return park_cycles_ + release_cycles_;
  }

  /// One-shot shim: park + release back to back (the classic §5.4 barrier).
  static RendezvousStats run(hw::Machine& machine, hw::Cpu& cp,
                             RendezvousProtocol protocol);

 private:
  void park_ipi_shared_var();
  void park_tree();

  hw::Machine& machine_;
  hw::Cpu& cp_;
  RendezvousProtocol protocol_;
  RendezvousStats stats_;
  bool parked_ = false;
  bool released_ = false;
  hw::Cycles park_cycles_ = 0;
  hw::Cycles release_cycles_ = 0;
  /// Per-CPU clock at the moment it parked: the begin of each CPU's
  /// unavailability window (sized/filled by park()).
  std::vector<hw::Cycles> parked_at_;
};

}  // namespace mercury::core
