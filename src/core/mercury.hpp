// Mercury: the self-virtualization system facade.
//
// Owns the full stack for one machine: the pre-cached hypervisor (warmed at
// boot, dormant until needed), the kernel wired through a swappable VO, and
// the switch engine. This is the library's main entry point:
//
//   hw::Machine machine({.num_cpus = 2});
//   core::Mercury mercury(machine);
//   mercury.kernel().spawn("app", body);
//   mercury.switch_to(core::ExecMode::kPartialVirtual);   // attach VMM
//   ... live update / checkpoint / migrate ...
//   mercury.switch_to(core::ExecMode::kNative);           // full speed again
#pragma once

#include <memory>

#include "core/eager_tracker.hpp"
#include "core/native_vo.hpp"
#include "core/switch_engine.hpp"
#include "core/virtual_vo.hpp"
#include "kernel/kernel.hpp"
#include "kernel/syscalls.hpp"
#include "vmm/hypervisor.hpp"

namespace mercury::core {

struct MercuryConfig {
  SwitchConfig switch_config{};
  /// Frames withheld from the kernel (firmware/boot holdback).
  std::size_t holdback_frames = 256;
  /// Frames granted to the kernel; 0 = everything left after the holdback.
  std::size_t kernel_frames = 0;
  std::string kernel_name = "mercury-linux";
};

class Mercury {
 public:
  explicit Mercury(hw::Machine& machine, MercuryConfig config = {});

  hw::Machine& machine() { return machine_; }
  kernel::Kernel& kernel() { return *kernel_; }
  vmm::Hypervisor& hypervisor() { return *hv_; }
  SwitchEngine& engine() { return *engine_; }
  NativeVo& native_vo() { return *native_vo_; }
  VirtualVo& driver_vo() { return *driver_vo_; }
  VirtualVo& guest_vo() { return *guest_vo_; }
  EagerTrackingVo* eager_vo() { return eager_vo_.get(); }

  ExecMode mode() const { return engine_->mode(); }

  /// Request + drive the kernel until the switch commits.
  bool switch_to(ExecMode target,
                 hw::Cycles budget = 500 * hw::kCyclesPerMillisecond) {
    return engine_->switch_now(target, budget);
  }

 private:
  hw::Machine& machine_;
  MercuryConfig config_;
  std::unique_ptr<vmm::Hypervisor> hv_;
  std::unique_ptr<NativeVo> native_vo_;
  std::unique_ptr<VirtualVo> driver_vo_;
  std::unique_ptr<VirtualVo> guest_vo_;
  std::unique_ptr<EagerTrackingVo> eager_vo_;
  std::unique_ptr<kernel::Kernel> kernel_;
  std::unique_ptr<SwitchEngine> engine_;
};

}  // namespace mercury::core
