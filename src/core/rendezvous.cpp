#include "core/rendezvous.hpp"

#include <algorithm>
#include <vector>

#include "core/fault_inject.hpp"

#include "hw/costs.hpp"
#include "hw/interrupts.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace mercury::core {

namespace {

// Cost atoms for the shared-variable handshake.
constexpr hw::Cycles kAtomicInc = 60;            // uncontended lock xadd
constexpr hw::Cycles kCachelineBounce = 450;     // contended line transfer
constexpr hw::Cycles kFlagCheck = 40;
constexpr hw::Cycles kSpinVisibilityLag = 120;   // store-to-load latency

RendezvousStats run_ipi_shared_var(hw::Machine& m, hw::Cpu& cp) {
  RendezvousStats stats;
  stats.cpus = m.num_cpus();
  stats.entry_time = cp.now();

  // CP broadcasts the mode-switch IPI (one ICR write per target). Serial
  // ICR writes: the CP pays per target (no broadcast shorthand on this APIC
  // model) — the linear term the tree protocol removes. The IPIs really go
  // through the interrupt controller; their post-barrier delivery is a
  // no-op acknowledgement.
  std::vector<hw::Cycles> arrival(m.num_cpus(), 0);
  for (std::size_t i = 0; i < m.num_cpus(); ++i) {
    if (i == cp.id()) continue;
    cp.charge(hw::costs::kIpiSendLatency / 2 - hw::costs::kIpiSendLatency / 3);
    m.interrupts().send_ipi(cp, static_cast<std::uint32_t>(i),
                            hw::kVecIpiModeSwitch);
    arrival[i] = std::max(m.cpu(i).now(),
                          cp.now() + hw::costs::kIpiSendLatency);
  }
  arrival[cp.id()] = cp.now();

  // Each CPU takes the IPI, increments the shared ready count (the line
  // bounces between cores, so later arrivals pay more), then spins.
  hw::Cycles all_ready = 0;
  std::size_t inc_order = 0;
  for (std::size_t i = 0; i < m.num_cpus(); ++i) {
    hw::Cycles t = arrival[i];
    if (i != cp.id()) t += hw::costs::kIpiAck + hw::costs::kTrapEntry;
    t += kAtomicInc + kCachelineBounce * inc_order;
    ++inc_order;
    all_ready = std::max(all_ready, t);
  }

  // CP observes count == N, sets the release flag; everyone sees it after
  // the store propagates.
  const hw::Cycles flag_set = all_ready + kFlagCheck + kAtomicInc;
  const hw::Cycles release = flag_set + kSpinVisibilityLag;
  for (std::size_t i = 0; i < m.num_cpus(); ++i)
    m.cpu(i).advance_to(release);
  stats.completion_time = release;
  return stats;
}

RendezvousStats run_tree(hw::Machine& m, hw::Cpu& cp) {
  RendezvousStats stats;
  stats.cpus = m.num_cpus();
  stats.entry_time = cp.now();

  // Downward IPI wave along a binary tree rooted at the CP, then an upward
  // pairwise ready wave, then a downward release wave. Per-level latency is
  // one IPI hop + handshake on a *private* line (no global bouncing).
  std::size_t levels = 0;
  for (std::size_t span = 1; span < m.num_cpus(); span <<= 1) ++levels;
  for (std::size_t i = 0; i < m.num_cpus(); ++i) {
    if (i == cp.id()) continue;
    m.interrupts().send_ipi(cp, static_cast<std::uint32_t>(i),
                            hw::kVecIpiModeSwitch);
  }

  const hw::Cycles hop = hw::costs::kIpiSendLatency + hw::costs::kIpiAck +
                         hw::costs::kTrapEntry + kAtomicInc;
  hw::Cycles base = cp.now();
  for (std::size_t i = 0; i < m.num_cpus(); ++i)
    base = std::max(base, m.cpu(i).now());
  const hw::Cycles release =
      base + 2 * static_cast<hw::Cycles>(levels) * hop + kSpinVisibilityLag;
  for (std::size_t i = 0; i < m.num_cpus(); ++i)
    m.cpu(i).advance_to(release);
  stats.completion_time = release;
  return stats;
}

}  // namespace

const char* rendezvous_protocol_name(RendezvousProtocol p) {
  switch (p) {
    case RendezvousProtocol::kIpiSharedVar: return "ipi+shared-var";
    case RendezvousProtocol::kTree: return "tree";
  }
  return "?";
}

RendezvousStats Rendezvous::run(hw::Machine& machine, hw::Cpu& cp,
                                RendezvousProtocol protocol) {
  fault_point(FaultSite::kRendezvous, &cp);
  if (machine.num_cpus() == 1) {
    RendezvousStats stats;
    stats.cpus = 1;
    stats.entry_time = cp.now();
    stats.completion_time = cp.now();
    return stats;
  }
  const auto record = [&](const RendezvousStats& stats) {
    MERC_COUNT("rendezvous.runs");
    MERC_GAUGE_SET("rendezvous.cpus", stats.cpus);
    MERC_HIST("rendezvous.cycles", stats.latency());
    return stats;
  };
  switch (protocol) {
    case RendezvousProtocol::kIpiSharedVar: {
      MERC_SPAN(cp, kRendezvous, "rendezvous.ipi_shared_var");
      return record(run_ipi_shared_var(machine, cp));
    }
    case RendezvousProtocol::kTree: {
      MERC_SPAN(cp, kRendezvous, "rendezvous.tree");
      return record(run_tree(machine, cp));
    }
  }
  MERC_CHECK(false);
  return {};
}

}  // namespace mercury::core
