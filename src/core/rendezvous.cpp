#include "core/rendezvous.hpp"

#include <algorithm>
#include <vector>

#include "core/fault_inject.hpp"

#include "hw/costs.hpp"
#include "hw/interrupts.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace mercury::core {

namespace {

// Cost atoms for the shared-variable handshake.
constexpr hw::Cycles kAtomicInc = 60;            // uncontended lock xadd
constexpr hw::Cycles kCachelineBounce = 450;     // contended line transfer
constexpr hw::Cycles kFlagCheck = 40;
constexpr hw::Cycles kSpinVisibilityLag = 120;   // store-to-load latency

}  // namespace

const char* rendezvous_protocol_name(RendezvousProtocol p) {
  switch (p) {
    case RendezvousProtocol::kIpiSharedVar: return "ipi+shared-var";
    case RendezvousProtocol::kTree: return "tree";
  }
  return "?";
}

Rendezvous::Rendezvous(hw::Machine& machine, hw::Cpu& cp,
                       RendezvousProtocol protocol)
    : machine_(machine), cp_(cp), protocol_(protocol) {}

void Rendezvous::park_ipi_shared_var() {
  hw::Machine& m = machine_;
  hw::Cpu& cp = cp_;

  // CP broadcasts the mode-switch IPI (one ICR write per target). Serial
  // ICR writes: the CP pays per target (no broadcast shorthand on this APIC
  // model) — the linear term the tree protocol removes. The IPIs really go
  // through the interrupt controller; their post-barrier delivery is a
  // no-op acknowledgement.
  std::vector<hw::Cycles> arrival(m.num_cpus(), 0);
  for (std::size_t i = 0; i < m.num_cpus(); ++i) {
    if (i == cp.id()) continue;
    cp.charge(hw::costs::kIpiSendLatency / 2 - hw::costs::kIpiSendLatency / 3);
    m.interrupts().send_ipi(cp, static_cast<std::uint32_t>(i),
                            hw::kVecIpiModeSwitch);
    arrival[i] = std::max(m.cpu(i).now(),
                          cp.now() + hw::costs::kIpiSendLatency);
  }
  arrival[cp.id()] = cp.now();

  // Each CPU takes the IPI, increments the shared ready count (the line
  // bounces between cores, so later arrivals pay more), then spins. Each
  // clock is advanced to its owner's parked time: from here until release
  // (or until the crew hands it a shard) the core is idle-spinning.
  std::size_t inc_order = 0;
  for (std::size_t i = 0; i < m.num_cpus(); ++i) {
    hw::Cycles t = arrival[i];
    if (i != cp.id()) t += hw::costs::kIpiAck + hw::costs::kTrapEntry;
    t += kAtomicInc + kCachelineBounce * inc_order;
    ++inc_order;
    m.cpu(i).advance_to(t);
  }
}

void Rendezvous::park_tree() {
  hw::Machine& m = machine_;
  hw::Cpu& cp = cp_;

  // Downward IPI wave along a binary tree rooted at the CP, then an upward
  // pairwise ready wave. Per-level latency is one IPI hop + handshake on a
  // *private* line (no global bouncing). The release wave runs in
  // release().
  std::size_t levels = 0;
  for (std::size_t span = 1; span < m.num_cpus(); span <<= 1) ++levels;
  for (std::size_t i = 0; i < m.num_cpus(); ++i) {
    if (i == cp.id()) continue;
    m.interrupts().send_ipi(cp, static_cast<std::uint32_t>(i),
                            hw::kVecIpiModeSwitch);
  }

  const hw::Cycles hop = hw::costs::kIpiSendLatency + hw::costs::kIpiAck +
                         hw::costs::kTrapEntry + kAtomicInc;
  hw::Cycles base = cp.now();
  for (std::size_t i = 0; i < m.num_cpus(); ++i)
    base = std::max(base, m.cpu(i).now());
  const hw::Cycles parked =
      base + static_cast<hw::Cycles>(levels) * hop;
  for (std::size_t i = 0; i < m.num_cpus(); ++i)
    m.cpu(i).advance_to(parked);
}

void Rendezvous::park() {
  MERC_CHECK_MSG(!parked_, "rendezvous parked twice");
  MERC_FLIGHT(cp_, kPhaseBegin, "rendezvous.park", machine_.num_cpus());
  fault_point(FaultSite::kRendezvous, &cp_);
  stats_.cpus = machine_.num_cpus();
  stats_.entry_time = cp_.now();
  if (machine_.num_cpus() > 1) {
    switch (protocol_) {
      case RendezvousProtocol::kIpiSharedVar: park_ipi_shared_var(); break;
      case RendezvousProtocol::kTree: park_tree(); break;
    }
  }
  hw::Cycles all_parked = stats_.entry_time;
  for (std::size_t i = 0; i < machine_.num_cpus(); ++i)
    all_parked = std::max(all_parked, machine_.cpu(i).now());
  // The CP spins on the ready count until the last CPU checks in: anything
  // it does between park() and release() starts after that point. Without
  // this, a run-ahead idle CPU's clock skew would be charged to the first
  // crew phase instead of the barrier.
  cp_.advance_to(all_parked);
  park_cycles_ = all_parked - stats_.entry_time;
  // Each CPU's unavailability window opens at its own parked clock (the CP
  // included — while coordinating it is just as lost to guest work). Plain
  // stores, identical obs-on and obs-off.
  parked_at_.resize(machine_.num_cpus());
  for (std::size_t i = 0; i < machine_.num_cpus(); ++i)
    parked_at_[i] = machine_.cpu(i).now();
  parked_ = true;
  MERC_FLIGHT(cp_, kPhaseEnd, "rendezvous.park", machine_.num_cpus(),
              park_cycles_);
}

RendezvousStats Rendezvous::release() {
  MERC_CHECK_MSG(parked_ && !released_, "release without a parked rendezvous");
  released_ = true;
  hw::Machine& m = machine_;
  if (m.num_cpus() == 1) {
    stats_.completion_time = cp_.now();
    // The sole CPU's unavailability is the whole park-to-release window
    // (it is the CP and the worker at once). Plain arithmetic, both builds.
    stats_.max_pause_cycles = stats_.completion_time - parked_at_[cp_.id()];
    MERC_PAUSE(kRendezvousParked, static_cast<std::uint32_t>(cp_.id()),
               parked_at_[cp_.id()], stats_.completion_time,
               "rendezvous.release");
    return stats_;
  }

  // CP observes count == N (and any crew work drained), sets the release
  // flag; everyone sees it after the store propagates. The tree protocol
  // pays a downward release wave instead of a flag broadcast.
  hw::Cycles all_done = 0;
  for (std::size_t i = 0; i < m.num_cpus(); ++i)
    all_done = std::max(all_done, m.cpu(i).now());
  switch (protocol_) {
    case RendezvousProtocol::kIpiSharedVar:
      release_cycles_ = kFlagCheck + kAtomicInc + kSpinVisibilityLag;
      break;
    case RendezvousProtocol::kTree: {
      std::size_t levels = 0;
      for (std::size_t span = 1; span < m.num_cpus(); span <<= 1) ++levels;
      const hw::Cycles hop = hw::costs::kIpiSendLatency + hw::costs::kIpiAck +
                             hw::costs::kTrapEntry + kAtomicInc;
      release_cycles_ =
          static_cast<hw::Cycles>(levels) * hop + kSpinVisibilityLag;
      break;
    }
  }
  const hw::Cycles released_at = all_done + release_cycles_;
  for (std::size_t i = 0; i < m.num_cpus(); ++i)
    m.cpu(i).advance_to(released_at);
  stats_.completion_time = released_at;

  // Per-CPU unavailability: parked clock to barrier exit. The max is kept
  // unconditionally (plain arithmetic — the obs-off build computes the same
  // value, which the cycle-identity probe prints); the per-interval ledger
  // records are obs-gated. Crew shard windows nest inside these by design.
  stats_.max_pause_cycles = 0;
  for (std::size_t i = 0; i < m.num_cpus(); ++i) {
    const hw::Cycles paused = released_at - parked_at_[i];
    stats_.max_pause_cycles = std::max(stats_.max_pause_cycles, paused);
    MERC_PAUSE(kRendezvousParked, static_cast<std::uint32_t>(i),
               parked_at_[i], released_at, "rendezvous.release");
  }

  MERC_COUNT("rendezvous.runs");
  MERC_GAUGE_SET("rendezvous.cpus", stats_.cpus);
  MERC_HIST("rendezvous.cycles", coordination_cycles());
  MERC_FLIGHT(cp_, kPhaseEnd, "rendezvous.release", stats_.cpus,
              release_cycles_);
  return stats_;
}

RendezvousStats Rendezvous::run(hw::Machine& machine, hw::Cpu& cp,
                                RendezvousProtocol protocol) {
  Rendezvous rv(machine, cp, protocol);
  switch (protocol) {
    case RendezvousProtocol::kIpiSharedVar: {
      MERC_SPAN(cp, kRendezvous, "rendezvous.ipi_shared_var");
      rv.park();
      return rv.release();
    }
    case RendezvousProtocol::kTree: {
      MERC_SPAN(cp, kRendezvous, "rendezvous.tree");
      rv.park();
      return rv.release();
    }
  }
  MERC_CHECK(false);
  return {};
}

}  // namespace mercury::core
