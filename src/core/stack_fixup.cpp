#include "core/stack_fixup.hpp"

#include <vector>

#include "core/fault_inject.hpp"
#include "kernel/kernel.hpp"
#include "obs/obs.hpp"
#include "pv/costs.hpp"

namespace mercury::core {

void fix_saved_contexts_range(hw::Cpu& cpu,
                              std::span<kernel::Task* const> tasks,
                              hw::Ring target, FixupStats& stats) {
  for (kernel::Task* tp : tasks) {
    kernel::Task& t = *tp;
    ++stats.tasks_scanned;
    fault_point(FaultSite::kStackFixup, &cpu);
    cpu.charge(pv::costs::kPerTaskSelectorFixup / 4);  // locate the frame
    if (!t.saved_ctx.valid) continue;
    const auto patch = [&](hw::SegmentSelector& cs, hw::SegmentSelector& ss) {
      if (cs.rpl() == hw::Ring::kRing3) return;  // user frame
      if (cs.rpl() == target) return;
      cpu.charge(pv::costs::kPerTaskSelectorFixup);
      cs.set_rpl(target);
      ss.set_rpl(target);
      ++stats.selectors_fixed;
    };
    // Base frame first. A frame flush against the stack top has no headroom
    // above it — the walk stops at the boundary rather than probing past
    // the stack end; locating it costs the same.
    patch(t.saved_ctx.cs, t.saved_ctx.ss);
    // Then every nested interrupt frame stacked above it (outermost first;
    // each iret pops its own selectors, so each must be rewritten).
    for (kernel::NestedFrame& f : t.saved_ctx.nested) {
      ++stats.nested_frames_scanned;
      patch(f.cs, f.ss);
    }
  }
}

FixupStats fix_all_saved_contexts(hw::Cpu& cpu, kernel::Kernel& k,
                                  hw::Ring target) {
  FixupStats stats;
  MERC_SPAN(cpu, kFixup, "fixup.walk_tasks");
  std::vector<kernel::Task*> tasks;
  k.for_each_task([&](kernel::Task& t) { tasks.push_back(&t); });
  fix_saved_contexts_range(cpu, tasks, target, stats);
  MERC_COUNT_N("fixup.tasks_scanned", stats.tasks_scanned);
  MERC_COUNT_N("fixup.selectors_fixed", stats.selectors_fixed);
  return stats;
}

}  // namespace mercury::core
