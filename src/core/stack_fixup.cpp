#include "core/stack_fixup.hpp"

#include "kernel/kernel.hpp"
#include "obs/obs.hpp"
#include "pv/costs.hpp"

namespace mercury::core {

FixupStats fix_all_saved_contexts(hw::Cpu& cpu, kernel::Kernel& k,
                                  hw::Ring target) {
  FixupStats stats;
  MERC_SPAN(cpu, kFixup, "fixup.walk_tasks");
  k.for_each_task([&](kernel::Task& t) {
    ++stats.tasks_scanned;
    cpu.charge(pv::costs::kPerTaskSelectorFixup / 4);  // locate the frame
    if (!t.saved_ctx.valid) return;
    if (t.saved_ctx.cs.rpl() == hw::Ring::kRing3) return;  // user frame
    if (t.saved_ctx.cs.rpl() == target) return;
    cpu.charge(pv::costs::kPerTaskSelectorFixup);
    t.saved_ctx.cs.set_rpl(target);
    t.saved_ctx.ss.set_rpl(target);
    ++stats.selectors_fixed;
  });
  MERC_COUNT_N("fixup.tasks_scanned", stats.tasks_scanned);
  MERC_COUNT_N("fixup.selectors_fixed", stats.selectors_fixed);
  return stats;
}

}  // namespace mercury::core
