#include "core/switch_engine.hpp"

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "core/fault_inject.hpp"
#include "core/invariants.hpp"
#include "core/stack_fixup.hpp"
#include "core/switch_crew.hpp"
#include "hw/interrupts.hpp"
#include "obs/obs.hpp"
#include "obs/postmortem.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mercury::core {

const char* exec_mode_name(ExecMode m) {
  switch (m) {
    case ExecMode::kNative: return "native";
    case ExecMode::kPartialVirtual: return "partial-virtual";
    case ExecMode::kFullVirtual: return "full-virtual";
  }
  return "?";
}

const char* switch_outcome_name(SwitchOutcome o) {
  switch (o) {
    case SwitchOutcome::kNone: return "none";
    case SwitchOutcome::kCommitted: return "committed";
    case SwitchOutcome::kNoOp: return "no-op";
    case SwitchOutcome::kValidationAbort: return "validation-abort";
    case SwitchOutcome::kRolledBack: return "rolled-back";
    case SwitchOutcome::kCancelled: return "cancelled";
  }
  return "?";
}

SwitchEngine::SwitchEngine(kernel::Kernel& k, vmm::Hypervisor& hv,
                           VirtObject& native_vo, VirtualVo& driver_vo,
                           VirtualVo& guest_vo, SwitchConfig config)
    : kernel_(k),
      hv_(hv),
      native_vo_(native_vo),
      driver_vo_(driver_vo),
      guest_vo_(guest_vo),
      config_(config) {
  kernel_.set_selfvirt_handler(
      [this](hw::Cpu& cpu, std::uint8_t vector, std::uint32_t payload) {
        on_interrupt(cpu, vector, payload);
      });
  // The hypervisor links below core/ and cannot name the fault injector;
  // bridge its probe points to the engine's injection sites. The hypervisor
  // reports the CPU executing the probed loop — the control processor on the
  // serial path, a crew worker inside a shard — so injected latency charges
  // the clock that was actually running.
  hv_.set_fault_probe([this](vmm::HvFaultPoint p, hw::Cpu* cpu) {
    if (cpu == nullptr) cpu = &kernel_.machine().cpu(0);
    switch (p) {
      case vmm::HvFaultPoint::kAdoptRebuild:
        fault_point(FaultSite::kAdoptRebuild, cpu);
        break;
      case vmm::HvFaultPoint::kAdoptProtect:
        fault_point(FaultSite::kAdoptProtect, cpu);
        break;
      case vmm::HvFaultPoint::kReleaseUnprotect:
        fault_point(FaultSite::kReleaseUnprotect, cpu);
        break;
      case vmm::HvFaultPoint::kShardRebuild:
        fault_point(FaultSite::kShardRebuild, cpu);
        break;
      case vmm::HvFaultPoint::kShardProtect:
        fault_point(FaultSite::kShardProtect, cpu);
        break;
      case vmm::HvFaultPoint::kShardUnprotect:
        fault_point(FaultSite::kShardUnprotect, cpu);
        break;
      case vmm::HvFaultPoint::kDirtyRebuild:
        fault_point(FaultSite::kDirtyRebuild, cpu);
        break;
    }
  });
  // Black box: a failed MERC_CHECK anywhere in the simulator should leave a
  // postmortem bundle behind once a switch engine exists. Idempotent.
  obs::install_assert_postmortem_hook();
  slo_.set_budget("switch.attach.total_cycles", config_.slo.attach_total);
  slo_.set_budget("switch.detach.total_cycles", config_.slo.detach_total);
  slo_.set_budget("switch.rendezvous_cycles", config_.slo.rendezvous);
  slo_.set_budget("switch.transfer_cycles", config_.slo.transfer);
  slo_.set_budget("switch.fixup_cycles", config_.slo.fixup);
  slo_.set_budget("switch.max_pause_cycles", config_.slo.max_pause);
  register_obs_instruments();
}

SwitchEngine::~SwitchEngine() {
  if (dirty_tracker_) {
    // The machine and pool outlive this engine; the sink must not dangle.
    hw::PhysicalMemory& mem = kernel_.machine().memory();
    if (mem.dirty_sink() == dirty_tracker_.get()) mem.set_dirty_sink(nullptr);
    kernel_.pool().set_dirty_sink(nullptr);
  }
}

void SwitchEngine::register_obs_instruments() {
#if MERCURY_OBS_ENABLED
  // SwitchStats is the storage; the registry views it live through callback
  // gauges so per-engine numbers appear in obs::snapshot() without a second
  // set of counters to keep in sync.
  static std::uint64_t next_engine_id = 0;
  obs_label_ = "engine=" + std::to_string(next_engine_id++);
  const auto expose = [this](const char* name, auto getter) {
    obs_callbacks_.add(name, obs_label_, [this, getter] {
      return static_cast<double>(getter(stats_));
    });
  };
  expose("switch.attaches", [](const SwitchStats& s) { return s.attaches; });
  expose("switch.detaches", [](const SwitchStats& s) { return s.detaches; });
  expose("switch.reroles", [](const SwitchStats& s) { return s.reroles; });
  expose("switch.deferrals", [](const SwitchStats& s) { return s.deferrals; });
  expose("switch.validation_aborts",
         [](const SwitchStats& s) { return s.validation_aborts; });
  expose("switch.rollbacks", [](const SwitchStats& s) { return s.rollbacks; });
  expose("switch.cancels", [](const SwitchStats& s) { return s.cancels; });
  expose("switch.last_attach_cycles",
         [](const SwitchStats& s) { return s.last_attach_cycles; });
  expose("switch.last_detach_cycles",
         [](const SwitchStats& s) { return s.last_detach_cycles; });
  expose("switch.last_rendezvous_cycles",
         [](const SwitchStats& s) { return s.last_rendezvous_cycles; });
  expose("switch.last_max_pause_cycles",
         [](const SwitchStats& s) { return s.last_max_pause_cycles; });
  expose("switch.last_defer_wait_cycles",
         [](const SwitchStats& s) { return s.last_defer_wait_cycles; });
  expose("switch.attach.warm_attaches",
         [](const SwitchStats& s) { return s.warm_attaches; });
  expose("switch.attach.warm_fallbacks",
         [](const SwitchStats& s) { return s.warm_fallbacks; });
  expose("switch.attach.last_dirty_frames",
         [](const SwitchStats& s) { return s.last_dirty_frames; });
  expose("vmm.page_info.last_frames_retained",
         [](const SwitchStats& s) { return s.last_frames_retained; });
  obs_callbacks_.add("switch.slo.breach_count", obs_label_,
                     [this] { return static_cast<double>(slo_.breaches()); });
#endif
}

VirtObject& SwitchEngine::current_vo() {
  switch (mode_) {
    case ExecMode::kNative: return native_vo_;
    case ExecMode::kPartialVirtual: return driver_vo_;
    case ExecMode::kFullVirtual: return guest_vo_;
  }
  return native_vo_;
}

void SwitchEngine::request(ExecMode target) {
  if (target == mode_ && !pending_) return;
  pending_ = true;
  pending_target_ = target;
  request_time_ = kernel_.machine().cpu(0).now();
  MERC_FLIGHT(kernel_.machine().cpu(0), kSwitchRequest, "switch.request",
              static_cast<std::uint64_t>(mode_),
              static_cast<std::uint64_t>(target));
  const std::uint8_t vector = target == ExecMode::kNative
                                  ? hw::kVecSelfVirtDetach
                                  : hw::kVecSelfVirtAttach;
  hw::Machine& m = kernel_.machine();
  m.interrupts().raise(/*cpu=*/0, vector, m.cpu(0).now());
}

void SwitchEngine::on_interrupt(hw::Cpu& cpu, std::uint8_t vector,
                                std::uint32_t payload) {
  (void)vector;
  (void)payload;
  if (!pending_) return;  // stale deferral timer or duplicate interrupt
  cpu.charge(pv::costs::kSwitchInterruptOverhead);
  try_commit(cpu);
}

void SwitchEngine::try_commit(hw::Cpu& cpu) {
  // §5.1.1: never switch while sensitive code is in flight.
  if (current_vo().active_refs() != 0) {
    ++stats_.deferrals;
    MERC_COUNT("switch.deferrals");
    MERC_INSTANT(cpu, kSwitch, "switch.deferred");
    MERC_FLIGHT(cpu, kRefcountRetry, "switch.refcount_retry",
                current_vo().active_refs(), stats_.deferrals);
    kernel_.add_timer(
        cpu.now() + hw::us_to_cycles(config_.defer_retry_ms * 1000.0),
        [this] {
          if (!pending_) return;
          hw::Machine& m = kernel_.machine();
          if (current_vo().active_refs() == 0) {
            commit(m.cpu(0), pending_target_);
          } else {
            // Still busy: re-arm through the interrupt path.
            ++stats_.deferrals;
            MERC_COUNT("switch.deferrals");
            MERC_FLIGHT(m.cpu(0), kRefcountRetry, "switch.refcount_retry",
                        current_vo().active_refs(), stats_.deferrals);
            m.interrupts().raise(0,
                                 pending_target_ == ExecMode::kNative
                                     ? hw::kVecSelfVirtDetach
                                     : hw::kVecSelfVirtAttach,
                                 m.cpu(0).now() +
                                     hw::us_to_cycles(config_.defer_retry_ms *
                                                      1000.0));
          }
        });
    return;
  }
  commit(cpu, pending_target_);
}

bool SwitchEngine::validate_for_switch(hw::Cpu& cpu, ExecMode target) {
  // Failure-resistant switch (paper §8 future work): sanity-check that the
  // OS is in a state a switch can survive, abort (leaving the current mode
  // untouched) otherwise.
  cpu.charge(4000);  // validation scan
  if (target != ExecMode::kNative) {
    // The kernel's page-table forest must be self-consistent before the VMM
    // starts enforcing types: spot-check that every task's PD exists and is
    // inside the kernel's frame range.
    bool ok = true;
    kernel_.for_each_task([&](kernel::Task& t) {
      if (!t.aspace) return;
      const hw::Pfn pd = t.aspace->page_directory();
      if (pd < kernel_.base_pfn() ||
          pd >= kernel_.base_pfn() + kernel_.pool().owned_count())
        ok = false;
    });
    return ok;
  }
  return true;
}

void SwitchEngine::resolve(ExecMode target, SwitchOutcome outcome) {
  // The captured causal context covered exactly one request; drop it so an
  // unrelated later request (e.g. a direct switch_now) roots a fresh trace.
  pending_ctx_ = obs::SpanContext{};
  last_outcome_ = outcome;
  if (on_complete_) on_complete_(target, outcome);
}

void SwitchEngine::commit(hw::Cpu& cpu, ExecMode target) {
  MERC_CHECK(pending_);
  if (target == mode_) {
    pending_ = false;
    resolve(target, SwitchOutcome::kNoOp);
    return;
  }
  if (config_.validate_before_commit && !validate_for_switch(cpu, target)) {
    ++stats_.validation_aborts;
    MERC_COUNT("switch.validation_aborts");
    pending_ = false;
    util::log_warn("mercury", "mode switch aborted by pre-commit validation");
    resolve(target, SwitchOutcome::kValidationAbort);
    return;
  }
  // One commit attempt = one fault-storm scheduling window.
  fault_injector().begin_window();

  // Deferral wait (§5.1.1): simulated time between the switch request and
  // this commit attempt — dominated by the 10 ms retry timer when the VO
  // refcount gated the switch.
  stats_.last_defer_wait_cycles =
      cpu.now() >= request_time_ ? cpu.now() - request_time_ : 0;

#if MERCURY_OBS_ENABLED
  // Re-join the causal trace captured at submit time (a supervisor attempt,
  // a cluster fabric message): the commit span — and every crew-phase span
  // nested in it — becomes a child of that remote context instead of an
  // orphan root, so one switch wave reads as one tree in the Chrome export.
  obs::SpanContextScope request_scope(
      pending_ctx_.valid() ? pending_ctx_ : obs::current_span_context());
  const char* commit_name = mode_ == ExecMode::kNative ? "switch.attach"
                            : target == ExecMode::kNative ? "switch.detach"
                                                          : "switch.rerole";
  obs::TraceSpan commit_span(cpu, obs::TraceCat::kSwitch, commit_name);
  MERC_FLIGHT(cpu, kPhaseBegin, commit_name,
              static_cast<std::uint64_t>(mode_),
              static_cast<std::uint64_t>(target));
  MERC_PROF_SCOPE("switch.commit", &cpu);
#endif

  const ExecMode from = mode_;
  const hw::Cycles t0 = cpu.now();
  bool committed = true;
  hw::Cycles rendezvous_cycles = 0;
  try {
    if (config_.crew_workers == 0) {
      // Legacy serial pipeline: §5.4 barrier completes, then the CP does all
      // the state transfer alone while the other CPUs idle at the barrier
      // exit. Kept cycle-identical for the serial-vs-crew ablation.
      const RendezvousStats rv =
          Rendezvous::run(kernel_.machine(), cpu, config_.rendezvous);
      stats_.last_rendezvous_cycles = rv.latency();
      rendezvous_cycles = rv.latency();
      stats_.last_max_pause_cycles = rv.max_pause_cycles;

      // Transitions through intermediate modes: native <-> partial <-> full.
      if (mode_ == ExecMode::kNative) {
        attach(cpu, target);
      } else if (target == ExecMode::kNative) {
        detach(cpu);
      } else {
        rerole(cpu, target);
      }
    } else {
      // Parallel switch pipeline: park every CPU at the barrier, recruit the
      // parked cores as a shard work crew for the bulk phases, release only
      // when the transfer is done.
      Rendezvous rv(kernel_.machine(), cpu, config_.rendezvous);
      SwitchCrew crew(kernel_.machine(), cpu, config_.crew_workers);
      try {
        rv.park();
        // Shard dispatch must not begin before the §5.1.1 commit point: the
        // crew mutates state that a live VO reference could be touching.
        MERC_CHECK_MSG(current_vo().active_refs() == 0,
                       "crew dispatch before the VO refcount-zero commit "
                       "point");
        if (mode_ == ExecMode::kNative) {
          attach_with_crew(cpu, crew, target);
        } else if (target == ExecMode::kNative) {
          detach_with_crew(cpu, crew);
        } else {
          rerole(cpu, target);
        }
      } catch (...) {
        // The barrier must never stay held: release the parked CPUs before
        // the fault unwinds into the rollback (which runs serially on the
        // CP, exactly like a serial-path rollback).
        if (rv.parked()) rv.release();
        throw;
      }
      const RendezvousStats rvs = rv.release();
      stats_.last_rendezvous_cycles = rv.coordination_cycles();
      rendezvous_cycles = rv.coordination_cycles();
      stats_.last_max_pause_cycles = rvs.max_pause_cycles;
      MERC_GAUGE_SET("switch.crew.workers", crew.workers());
      MERC_GAUGE_SET("switch.crew.utilization", crew.utilization());
    }
  } catch (const FaultInjected& fault) {
    // A fault fired at one of the pre-commit injection sites: unwind the
    // partial transition instead of crashing mid-switch (paper §8), then
    // leave the black-box evidence behind. An active fault storm is paused
    // for the duration — a storm re-faulting the fault handler would turn
    // every rollback into a crash, which is not the failure model (§8
    // assumes the recovery path itself is sound).
    committed = false;
    FaultInjector::PauseGuard storm_pause;
    rollback(cpu, from, target, fault);
    dump_rollback_postmortem(from, target, fault);
  }
  const hw::Cycles elapsed = cpu.now() - t0;
#if MERCURY_OBS_ENABLED
  MERC_FLIGHT(cpu, kPhaseEnd, commit_name, static_cast<std::uint64_t>(target),
              elapsed);
  if (committed) {
    MERC_FLIGHT(cpu, kSwitchCommit, commit_name,
                static_cast<std::uint64_t>(from),
                static_cast<std::uint64_t>(target), elapsed);
  }
#endif
  if (!committed) {
    // Stay in `from`; the caller sees the request resolve without a mode
    // change and may re-request.
  } else if (from == ExecMode::kNative) {
    stats_.last_attach_cycles = elapsed;
    ++stats_.attaches;
    MERC_COUNT("switch.attaches");
    MERC_HIST("switch.attach.total_cycles", elapsed);
    MERC_HIST("switch.attach.defer_cycles", stats_.last_defer_wait_cycles);
    MERC_HIST("switch.attach.rendezvous_cycles", rendezvous_cycles);
    MERC_HIST("switch.attach.transfer_cycles",
              stats_.last_transfer.page_info_cycles +
                  stats_.last_transfer.protection_cycles +
                  stats_.last_transfer.binding_cycles);
    MERC_HIST("switch.attach.fixup_cycles", stats_.last_transfer.fixup_cycles);
    observe_slo(cpu, /*attach=*/true, elapsed, rendezvous_cycles);
  } else if (mode_ == ExecMode::kNative) {
    stats_.last_detach_cycles = elapsed;
    ++stats_.detaches;
    MERC_COUNT("switch.detaches");
    MERC_HIST("switch.detach.total_cycles", elapsed);
    MERC_HIST("switch.detach.defer_cycles", stats_.last_defer_wait_cycles);
    MERC_HIST("switch.detach.rendezvous_cycles", rendezvous_cycles);
    MERC_HIST("switch.detach.transfer_cycles",
              stats_.last_transfer.page_info_cycles +
                  stats_.last_transfer.protection_cycles +
                  stats_.last_transfer.binding_cycles);
    MERC_HIST("switch.detach.fixup_cycles", stats_.last_transfer.fixup_cycles);
    observe_slo(cpu, /*attach=*/false, elapsed, rendezvous_cycles);
  } else {
    // partial <-> full re-roles are neither attaches nor detaches.
    ++stats_.reroles;
    MERC_COUNT("switch.reroles");
    MERC_HIST("switch.rerole.total_cycles", elapsed);
  }
  pending_ = false;

  // §5.1.3: the handler returns to the *new* kernel privilege level — the
  // interrupt frame's saved CPL is patched before IRET. (The stepper's
  // between-tasks convention is ring 0; task dispatch re-derives the
  // correct ring from the active VO on every entry.)
  cpu.set_trap_return_cpl(mode_ == ExecMode::kNative ? hw::Ring::kRing0
                                                     : hw::Ring::kRing1);
  hw::Machine& m = kernel_.machine();
  for (std::size_t i = 0; i < m.num_cpus(); ++i)
    m.cpu(i).set_cpl(hw::Ring::kRing0);

  if (config_.paranoid_invariants) {
    // check_machine_invariants dumps an "invariant-failure" bundle itself
    // when it finds violations; the MERC_CHECK then aborts the simulation.
    const InvariantReport report = check_machine_invariants(*this);
    MERC_CHECK_MSG(report.ok(), report.to_string());
  }

  // Last: the hook observes the fully settled engine and may immediately
  // submit the next request (the supervisor's retry path).
  resolve(target,
          committed ? SwitchOutcome::kCommitted : SwitchOutcome::kRolledBack);
}

void SwitchEngine::cancel() {
  if (!pending_) return;
  pending_ = false;
  last_outcome_ = SwitchOutcome::kCancelled;
  ++stats_.cancels;
  MERC_COUNT("switch.cancels");
  MERC_FLIGHT(kernel_.machine().cpu(0), kSwitchCancel, "switch.cancel",
              static_cast<std::uint64_t>(mode_),
              static_cast<std::uint64_t>(pending_target_));
}

void SwitchEngine::observe_slo(hw::Cpu& cpu, bool attach, hw::Cycles total,
                               hw::Cycles rendezvous_cycles) {
  const TransferStats& tr = stats_.last_transfer;
  slo_.observe(attach ? "switch.attach.total_cycles"
                      : "switch.detach.total_cycles",
               total, cpu.id(), cpu.now());
  slo_.observe("switch.rendezvous_cycles", rendezvous_cycles, cpu.id(),
               cpu.now());
  slo_.observe("switch.transfer_cycles",
               tr.page_info_cycles + tr.protection_cycles + tr.binding_cycles,
               cpu.id(), cpu.now());
  slo_.observe("switch.fixup_cycles", tr.fixup_cycles, cpu.id(), cpu.now());
  // The per-CPU unavailability budget: the serial path measures the whole
  // park-to-release window, the crew path the same window including shard
  // work. Breach evidence lands in the flight ring like every other phase.
  slo_.observe("switch.max_pause_cycles", stats_.last_max_pause_cycles,
               cpu.id(), cpu.now());
}

void SwitchEngine::dump_rollback_postmortem(ExecMode from, ExecMode target,
                                            const FaultInjected& fault) {
  obs::PostmortemContext ctx;
  ctx.reason = "fault-rollback";
  ctx.detail = std::string("mode switch ") + exec_mode_name(from) + " -> " +
               exec_mode_name(target) + " faulted at " +
               fault_site_name(fault.site) + " (" +
               fault_kind_name(fault.kind) + ") on cpu " +
               std::to_string(fault.cpu) + ", rolled back";
  ctx.switch_from = exec_mode_name(from);
  ctx.switch_target = exec_mode_name(target);
  ctx.has_fault = true;
  ctx.fault_site = fault_site_name(fault.site);
  ctx.fault_kind = fault_kind_name(fault.kind);
  ctx.fault_cpu = fault.cpu;
  ctx.active_refs = static_cast<std::int64_t>(current_vo().active_refs());
  hw::Machine& m = kernel_.machine();
  for (std::size_t i = 0; i < m.num_cpus(); ++i)
    ctx.cpu_clocks.emplace_back(m.cpu(i).id(), m.cpu(i).now());
  const vmm::PageInfoTable& pit = hv_.page_info();
  ctx.extra.emplace_back("page_info.shard_count", pit.shard_count());
  ctx.extra.emplace_back("page_info.rebuilt_total", pit.rebuilt_total());
  ctx.extra.emplace_back("page_info.typed_total", pit.typed_total());
  ctx.extra.emplace_back("switch.rollbacks", stats_.rollbacks);
  ctx.extra.emplace_back("switch.deferrals", stats_.deferrals);
  ctx.extra.emplace_back("fault.injected_total", fault_injector().injected());
  ctx.extra.emplace_back("pause.last_max_cycles",
                         stats_.last_max_pause_cycles);
#if MERCURY_OBS_ENABLED
  {
    const obs::PauseLedger& pl = obs::pause_ledger();
    ctx.extra.emplace_back("pause.intervals", pl.intervals());
    ctx.extra.emplace_back("pause.unattributed", pl.unattributed());
    ctx.extra.emplace_back("pause.worst_cycles",
                           pl.worst().valid ? pl.worst().span() : 0);
  }
#endif
  obs::write_postmortem(ctx);
}

void SwitchEngine::rerole(hw::Cpu& cpu, ExecMode target) {
  // partial <-> full: re-role the virtual VO without detaching the VMM.
  const vmm::DomainId dom =
      (mode_ == ExecMode::kPartialVirtual ? driver_vo_ : guest_vo_).dom();
  VirtualVo& next = target == ExecMode::kPartialVirtual ? driver_vo_ : guest_vo_;
  next.bind(dom);
  if (target == ExecMode::kFullVirtual) {
    hv_.blk_backend().connect_frontend(dom);
    hv_.net_backend().connect_frontend(dom);
  } else {
    hv_.blk_backend().disconnect_frontend(cpu);
    hv_.net_backend().disconnect_frontend();
  }
  kernel_.set_ops(next);
  mode_ = target;
}

void SwitchEngine::reload_all_cpus(VirtObject& vo) {
  hw::Machine& m = kernel_.machine();
  for (std::size_t i = 0; i < m.num_cpus(); ++i) {
    fault_point(FaultSite::kReloadHwState, &m.cpu(i));
    vo.reload_hw_state(m.cpu(i), kernel_);
  }
}

bool SwitchEngine::warm_retention_enabled() const {
  // Eager tracking keeps the table *live* across detach; retention keeps it
  // *stale*. They are different contracts — eager wins when both are set.
  return config_.warm_reattach && !config_.eager_page_tracking;
}

void SwitchEngine::ensure_tracker() {
  if (dirty_tracker_) return;
  hw::PhysicalMemory& mem = kernel_.machine().memory();
  dirty_tracker_ = std::make_unique<DirtyFrameTracker>(
      mem.total_frames(), config_.warm_dirty_capacity);
  mem.set_dirty_sink(dirty_tracker_.get());
  kernel_.pool().set_dirty_sink(&dirty_tracker_->mapping_sink());
}

void SwitchEngine::begin_warm_retention() {
  ensure_tracker();
  dirty_tracker_->arm();
  // Frames still typed/protected at this detach (the page-table forest,
  // plus anything a guest left pinned) carry stale type/pin state in the
  // retained table. Fold them into the rebuild set up front so the next
  // warm rebuild re-canonicalizes them — O(#page tables), not O(memory).
  // The fold is accounting-only (note_mapping): the frames' bytes are
  // untouched, so a table that stays unwritten through the native window
  // keeps its pre-detach validation. The release's own unprotect flips are
  // real stores and land in the content set too (the tracker is armed
  // before the release runs), which is harmless: rebuilding or revalidating
  // a frame that ends up identical produces exactly the cold result.
  for (const hw::Pfn pfn : hv_.protected_frames_snapshot())
    dirty_tracker_->note_mapping(pfn);
}

std::optional<WarmSet> SwitchEngine::warm_dirty_set() {
  if (!warm_retention_enabled()) return std::nullopt;
  // First attach (or warm was toggled on while native): nothing recorded,
  // and that is not a fallback — there was never a window to track.
  if (!dirty_tracker_ || !dirty_tracker_->armed()) return std::nullopt;
  const char* fallback = nullptr;
  if (!hv_.page_info().retained())
    fallback = "retention-poisoned";
  else if (dirty_tracker_->overflowed())
    fallback = "tracker-overflow";
  if (fallback != nullptr) {
    ++stats_.warm_fallbacks;
    MERC_COUNT("switch.attach.warm_fallbacks");
    MERC_FLIGHT(kernel_.machine().cpu(0), kPhaseBegin,
                "switch.attach.warm_fallback", dirty_tracker_->dirty_count());
    util::log_info("mercury", "warm re-attach falling back to cold rebuild (",
                   fallback, ")");
    return std::nullopt;
  }
  WarmSet warm;
  warm.rebuild = dirty_tracker_->collect();
  warm.content = dirty_tracker_->collect_content();
  // Only kernel-owned frames are reconstructed: the reserved region is
  // re-canonicalized by init_reserved_page_info either way, and frames
  // outside both ranges are untouched garbage in cold and warm tables
  // alike (nothing ever initialized them). Same filter for the content set
  // — page tables are always kernel-owned frames.
  const hw::Pfn base = kernel_.base_pfn();
  const hw::Pfn end =
      base + static_cast<hw::Pfn>(kernel_.pool().owned_count());
  const auto outside = [&](const hw::Pfn p) { return p < base || p >= end; };
  std::erase_if(warm.rebuild, outside);
  std::erase_if(warm.content, outside);
  return warm;
}

void SwitchEngine::note_warm_attach(hw::Cpu& cpu, std::size_t dirty_frames) {
  ++stats_.warm_attaches;
  stats_.last_dirty_frames = dirty_frames;
  stats_.last_frames_retained = kernel_.pool().owned_count() - dirty_frames;
  MERC_COUNT("switch.attach.warm_attaches_total");
  MERC_GAUGE_SET("switch.attach.dirty_frames",
                 static_cast<double>(dirty_frames));
  MERC_GAUGE_SET("vmm.page_info.frames_retained",
                 static_cast<double>(stats_.last_frames_retained));
  MERC_FLIGHT(cpu, kPhaseBegin, "switch.attach.warm", dirty_frames,
              stats_.last_frames_retained);
}

void SwitchEngine::set_warm_reattach(bool on) {
  config_.warm_reattach = on;
  // Disabling mid-window disarms the tracker: a partially observed native
  // window must never feed a warm rebuild. Re-enabling does not re-arm —
  // the next attach goes cold, and the detach after it starts a fresh
  // (fully observed) window.
  if (!on && dirty_tracker_) dirty_tracker_->disarm();
}

void SwitchEngine::attach(hw::Cpu& cpu, ExecMode target) {
  VirtualVo& vo =
      target == ExecMode::kPartialVirtual ? driver_vo_ : guest_vo_;
  const std::optional<WarmSet> warm = warm_dirty_set();
  if (warm) note_warm_attach(cpu, warm->rebuild.size());
  stats_.last_transfer =
      transfer_to_virtual(cpu, kernel_, hv_, vo, config_.eager_page_tracking,
                          config_.eager_selector_fixup,
                          warm ? &*warm : nullptr);
  if (target == ExecMode::kFullVirtual) {
    hv_.blk_backend().connect_frontend(vo.dom());
    hv_.net_backend().connect_frontend(vo.dom());
  }
  MERC_SPAN(cpu, kSwitch, "switch.reload_hw_state");
  reload_all_cpus(vo);
  kernel_.set_ops(vo);
  mode_ = target;
  // The attach succeeded (warm or cold): the table is fresh, the tracked
  // window is consumed. A fault above unwinds past this point, leaving the
  // tracker armed so a supervised retry can still go warm.
  if (dirty_tracker_) dirty_tracker_->disarm();
}

void SwitchEngine::detach(hw::Cpu& cpu) {
  VirtualVo& vo =
      mode_ == ExecMode::kPartialVirtual ? driver_vo_ : guest_vo_;
  if (mode_ == ExecMode::kFullVirtual) {
    hv_.blk_backend().disconnect_frontend(cpu);
    hv_.net_backend().disconnect_frontend();
  }
  const bool retain = warm_retention_enabled();
  if (retain) begin_warm_retention();
  stats_.last_transfer = transfer_to_native(cpu, kernel_, hv_, vo,
                                            config_.eager_selector_fixup,
                                            retain);
  if (config_.eager_page_tracking) {
    // The eager tracker keeps maintaining the table through native mode, so
    // it stays authoritative across the detach (§5.1.2 alternative 1).
    hv_.page_info().set_valid(true);
  }
  MERC_SPAN(cpu, kSwitch, "switch.reload_hw_state");
  reload_all_cpus(native_vo_);
  kernel_.set_ops(native_vo_);
  mode_ = ExecMode::kNative;
}

void SwitchEngine::attach_with_crew(hw::Cpu& cpu, SwitchCrew& crew,
                                    ExecMode target) {
  VirtualVo& vo = target == ExecMode::kPartialVirtual ? driver_vo_ : guest_vo_;
  TransferStats transfer;
  const std::optional<WarmSet> warm = warm_dirty_set();
  if (warm) note_warm_attach(cpu, warm->rebuild.size());

  hw::Cycles t0 = cpu.now();
  {
    MERC_SPAN(cpu, kTransfer, "transfer.page_info_rebuild");
    const vmm::DomainId dom = hv_.begin_adopt(kernel_);
    if (warm) {
      // Warm re-attach, sharded: only the dirty set is reconstructed; the
      // rest of the retained table carries over untouched. Shards stamp the
      // rebuild epoch exactly like the serial warm path.
      MERC_CHECK_MSG(hv_.page_info().retained(),
                     "warm crew attach without a retained page-info table");
      hv_.init_reserved_page_info();
      const std::span<const hw::Pfn> dirty(warm->rebuild);
      crew.run_phase("switch.crew.dirty_rebuild", dirty.size(),
                     [&](hw::Cpu& w, std::size_t b, std::size_t e) {
                       hv_.adopt_dirty_rebuild_shard(w, dom,
                                                     dirty.subspan(b, e - b));
                     });
      MERC_COUNT_N("vmm.page_info.frames_reconstructed", dirty.size());
    } else if (!config_.eager_page_tracking) {
      // The paper's dominant attach cost, sharded across the parked CPUs:
      // each shard rebuilds owner/type/count for a disjoint frame range.
      hv_.init_reserved_page_info();
      const std::vector<hw::Pfn>& frames = kernel_.pool().owned();
      const std::span<const hw::Pfn> all(frames);
      crew.run_phase("switch.crew.rebuild", frames.size(),
                     [&](hw::Cpu& w, std::size_t b, std::size_t e) {
                       hv_.adopt_rebuild_shard(w, dom, all.subspan(b, e - b));
                     });
      MERC_COUNT_N("vmm.page_info.frames_reconstructed", frames.size());
    } else {
      MERC_CHECK_MSG(hv_.page_info().valid(),
                     "eager attach without a primed page-info table");
      crew.run_phase("switch.crew.sweep", kernel_.pool().owned_count(),
                     [&](hw::Cpu& w, std::size_t b, std::size_t e) {
                       hv_.adopt_trusted_sweep_shard(w, e - b);
                     });
    }

    // Type-and-protect, then validation. Protection of *every* table must
    // precede validation of *any* L1 ("no writable mapping of a PT frame"),
    // and all L1 typing must precede L2 validation — hence three phases
    // with crew joins between them, not one. On the warm path only
    // content-dirty tables are revalidated (same rule as the serial warm
    // adopt): an unwritten table still holds the entries verified before
    // the detach.
    const auto tables = hv_.collect_tables(kernel_);
    std::vector<std::pair<hw::Pfn, vmm::PageType>> l1s, l2s;
    for (const auto& t : tables) {
      if (warm && !std::binary_search(warm->content.begin(),
                                      warm->content.end(), t.first))
        continue;
      (t.second == vmm::PageType::kL1 ? l1s : l2s).push_back(t);
    }
    if (warm) {
      MERC_COUNT_N("vmm.page_info.tables_revalidated", l1s.size() + l2s.size());
      MERC_COUNT_N("vmm.page_info.table_validations_skipped",
                   tables.size() - l1s.size() - l2s.size());
    }
    const std::span<const std::pair<hw::Pfn, vmm::PageType>> all_tables(tables);
    const std::span<const std::pair<hw::Pfn, vmm::PageType>> l1_span(l1s);
    const std::span<const std::pair<hw::Pfn, vmm::PageType>> l2_span(l2s);
    crew.run_phase("switch.crew.protect", tables.size(),
                   [&](hw::Cpu& w, std::size_t b, std::size_t e) {
                     hv_.adopt_protect_shard(w, dom, kernel_,
                                             all_tables.subspan(b, e - b));
                   });
    // The phase join is the batch boundary: one shootdown makes every
    // shard's flips globally effective before validation checks them.
    if (!tables.empty()) hv_.tlb_shootdown_all(cpu);
    crew.run_phase("switch.crew.validate_l1", l1s.size(),
                   [&](hw::Cpu& w, std::size_t b, std::size_t e) {
                     hv_.adopt_validate_shard(w, dom, l1_span.subspan(b, e - b),
                                              vmm::PageType::kL1);
                   });
    crew.run_phase("switch.crew.validate_l2", l2s.size(),
                   [&](hw::Cpu& w, std::size_t b, std::size_t e) {
                     hv_.adopt_validate_shard(w, dom, l2_span.subspan(b, e - b),
                                              vmm::PageType::kL2);
                   });
    hv_.finish_adopt(dom, kernel_);
    vo.bind(dom);
  }
  transfer.page_info_cycles = cpu.now() - t0;

  if (config_.eager_selector_fixup) {
    t0 = cpu.now();
    MERC_SPAN(cpu, kFixup, "transfer.eager_fixup");
    std::vector<kernel::Task*> tasks;
    kernel_.for_each_task([&](kernel::Task& t) { tasks.push_back(&t); });
    const std::span<kernel::Task* const> all_tasks(tasks);
    FixupStats fs;
    crew.run_phase("switch.crew.fixup", tasks.size(),
                   [&](hw::Cpu& w, std::size_t b, std::size_t e) {
                     fix_saved_contexts_range(w, all_tasks.subspan(b, e - b),
                                              hw::Ring::kRing1, fs);
                   });
    MERC_COUNT_N("fixup.tasks_scanned", fs.tasks_scanned);
    MERC_COUNT_N("fixup.selectors_fixed", fs.selectors_fixed);
    transfer.fixup_cycles = cpu.now() - t0;
  }

  t0 = cpu.now();
  {
    fault_point(FaultSite::kTransferBindings, &cpu);
    MERC_SPAN(cpu, kTransfer, "transfer.rebind_traps");
    vo.state_transfer_in(cpu, kernel_);  // CP-only: one IDT/GDT rebind
  }
  transfer.binding_cycles = cpu.now() - t0;
  MERC_HIST("transfer.page_info_cycles", transfer.page_info_cycles);
  MERC_HIST("transfer.binding_cycles", transfer.binding_cycles);
  if (config_.eager_selector_fixup)
    MERC_HIST("transfer.fixup_cycles", transfer.fixup_cycles);
  stats_.last_transfer = transfer;

  if (target == ExecMode::kFullVirtual) {
    hv_.blk_backend().connect_frontend(vo.dom());
    hv_.net_backend().connect_frontend(vo.dom());
  }
  MERC_SPAN(cpu, kSwitch, "switch.reload_hw_state");
  reload_all_cpus(vo);
  kernel_.set_ops(vo);
  mode_ = target;
  // Success consumes the tracked window (see attach()).
  if (dirty_tracker_) dirty_tracker_->disarm();
}

void SwitchEngine::detach_with_crew(hw::Cpu& cpu, SwitchCrew& crew) {
  VirtualVo& vo = mode_ == ExecMode::kPartialVirtual ? driver_vo_ : guest_vo_;
  if (mode_ == ExecMode::kFullVirtual) {
    hv_.blk_backend().disconnect_frontend(cpu);
    hv_.net_backend().disconnect_frontend();
  }
  MERC_CHECK_MSG(vo.dom() != vmm::kDomInvalid,
                 "detach without an adopted domain");
  TransferStats transfer;
  // Arm before the unprotect shards run: the typed-at-detach fold must see
  // the protected set intact, and the unprotect PTE writes themselves must
  // land in the dirty window.
  const bool retain = warm_retention_enabled();
  if (retain) begin_warm_retention();

  hw::Cycles t0 = cpu.now();
  {
    MERC_SPAN(cpu, kTransfer, "transfer.unprotect_tables");
    hv_.begin_release(vo.dom());
    const std::vector<hw::Pfn> frames = hv_.protected_frames_snapshot();
    const std::span<const hw::Pfn> all(frames);
    crew.run_phase("switch.crew.unprotect", frames.size(),
                   [&](hw::Cpu& w, std::size_t b, std::size_t e) {
                     hv_.release_unprotect_shard(w, kernel_,
                                                 all.subspan(b, e - b));
                   });
    if (!frames.empty()) hv_.tlb_shootdown_all(cpu);
    hv_.finish_release(retain);
  }
  transfer.protection_cycles = cpu.now() - t0;

  if (config_.eager_selector_fixup) {
    t0 = cpu.now();
    MERC_SPAN(cpu, kFixup, "transfer.eager_fixup");
    std::vector<kernel::Task*> tasks;
    kernel_.for_each_task([&](kernel::Task& t) { tasks.push_back(&t); });
    const std::span<kernel::Task* const> all_tasks(tasks);
    FixupStats fs;
    crew.run_phase("switch.crew.fixup", tasks.size(),
                   [&](hw::Cpu& w, std::size_t b, std::size_t e) {
                     fix_saved_contexts_range(w, all_tasks.subspan(b, e - b),
                                              hw::Ring::kRing0, fs);
                   });
    MERC_COUNT_N("fixup.tasks_scanned", fs.tasks_scanned);
    MERC_COUNT_N("fixup.selectors_fixed", fs.selectors_fixed);
    transfer.fixup_cycles = cpu.now() - t0;
  }

  t0 = cpu.now();
  {
    fault_point(FaultSite::kTransferBindings, &cpu);
    MERC_SPAN(cpu, kTransfer, "transfer.rebind_traps");
    // Interrupt bindings return to the kernel: it becomes the trap owner.
    kernel_.machine().install_trap_sink(&kernel_);
  }
  transfer.binding_cycles = cpu.now() - t0;
  MERC_HIST("transfer.protection_cycles", transfer.protection_cycles);
  MERC_HIST("transfer.binding_cycles", transfer.binding_cycles);
  if (config_.eager_selector_fixup)
    MERC_HIST("transfer.fixup_cycles", transfer.fixup_cycles);
  stats_.last_transfer = transfer;

  if (config_.eager_page_tracking) {
    // The eager tracker keeps maintaining the table through native mode, so
    // it stays authoritative across the detach (§5.1.2 alternative 1).
    hv_.page_info().set_valid(true);
  }
  MERC_SPAN(cpu, kSwitch, "switch.reload_hw_state");
  reload_all_cpus(native_vo_);
  kernel_.set_ops(native_vo_);
  mode_ = ExecMode::kNative;
}

void SwitchEngine::rollback(hw::Cpu& cpu, ExecMode from, ExecMode target,
                            const FaultInjected& fault) {
  ++stats_.rollbacks;
  MERC_COUNT("switch.rollbacks");
  [[maybe_unused]] const hw::Cycles unwind_begin = cpu.now();
  MERC_SPAN(cpu, kFault, "switch.rollback");
  MERC_PROF_SCOPE("switch.rollback", &cpu);
  MERC_FLIGHT(cpu, kSwitchRollback, "switch.rollback",
              static_cast<std::uint64_t>(from),
              static_cast<std::uint64_t>(target),
              static_cast<std::uint64_t>(fault.site));
  // Each named unwind step lands in the flight ring with an ordinal, so the
  // postmortem tail shows how far the rollback got if *it* dies too.
  std::uint64_t step = 0;
  const auto flight_step = [&](const char* name) {
    ++step;
    MERC_FLIGHT(cpu, kRollbackStep, name, step);
#if !MERCURY_OBS_ENABLED
    (void)name;
#endif
  };
  util::log_warn("mercury",
                 std::string("mode switch ") + exec_mode_name(from) + " -> " +
                     exec_mode_name(target) + " faulted at " +
                     fault_site_name(fault.site) + " (" +
                     fault_kind_name(fault.kind) + "), rolling back");

  // The injector disarmed before throwing, so re-traversing fault sites
  // below cannot re-fire. Every site is pre-commit: mode_ still names the
  // state the machine must return to.
  if (from == ExecMode::kNative) {
    // Aborted attach. The full-virtual frontends connect before the hardware
    // reload, so a late fault may leave them attached.
    flight_step("rollback.disconnect_frontends");
    if (hv_.blk_backend().connected()) hv_.blk_backend().disconnect_frontend(cpu);
    if (hv_.net_backend().connected()) hv_.net_backend().disconnect_frontend();
    // Undo however much of the adoption applied: writability, accounting
    // (kept authoritative under eager tracking), trap ownership, dormancy.
    flight_step("rollback.adopt_unwind");
    hv_.rollback_adopt(cpu, kernel_, config_.eager_page_tracking);
    // The eager walk may already have moved saved selectors to ring 1.
    if (config_.eager_selector_fixup) {
      flight_step("rollback.selector_fixup");
      fix_all_saved_contexts(cpu, kernel_, hw::Ring::kRing0);
    }
    flight_step("rollback.reload_native");
    reload_all_cpus(native_vo_);
    kernel_.set_ops(native_vo_);
  } else if (target == ExecMode::kNative) {
    // Aborted detach: restore the fully attached state. The machine stays
    // virtual, so the retention window opened at the top of the detach is
    // void — the table will be live again (reprotect) or rebuilt from
    // scratch (re-adopt), never warm-reconstructed.
    if (dirty_tracker_) dirty_tracker_->disarm();
    VirtualVo& vo = from == ExecMode::kPartialVirtual ? driver_vo_ : guest_vo_;
    if (hv_.state() == vmm::Hypervisor::State::kActive) {
      // The release never completed — re-protect the unwound tables and
      // re-take the traps in place.
      flight_step("rollback.reprotect_os");
      hv_.reprotect_os(cpu, vo.dom(), kernel_);
    } else {
      // The release committed before the fault (it hit a later phase): the
      // accounting was dropped O(1), so restoring virtual mode pays a full
      // re-adoption — the price asymmetry of the cheap detach (§7.4).
      flight_step("rollback.readopt_os");
      if (config_.eager_page_tracking) hv_.page_info().set_valid(true);
      const vmm::DomainId dom =
          hv_.adopt_running_os(cpu, kernel_, config_.eager_page_tracking);
      vo.bind(dom);
    }
    if (config_.eager_selector_fixup) {
      flight_step("rollback.selector_fixup");
      fix_all_saved_contexts(cpu, kernel_, hw::Ring::kRing1);
    }
    flight_step("rollback.rebind_traps");
    vo.state_transfer_in(cpu, kernel_);  // re-publish guest trap/GDT tokens
    // A rendezvous fault aborts before detach() dropped the frontends, so
    // they may still be attached — reconnecting would leak event channels.
    if (from == ExecMode::kFullVirtual) {
      flight_step("rollback.reconnect_frontends");
      if (!hv_.blk_backend().connected())
        hv_.blk_backend().connect_frontend(vo.dom());
      if (!hv_.net_backend().connected())
        hv_.net_backend().connect_frontend(vo.dom());
    }
    flight_step("rollback.reload_virtual");
    reload_all_cpus(vo);
    kernel_.set_ops(vo);
  } else {
    // partial <-> full re-role: the only reachable site (the rendezvous)
    // precedes any mutation — nothing to unwind.
  }
  // The whole unwind runs serially on the CP with the machine unavailable
  // to guest work; ledger it under its own cause so rollback storms show up
  // in the tail, not just the mean.
  MERC_PAUSE(kRollbackUnwind, static_cast<std::uint32_t>(cpu.id()),
             unwind_begin, cpu.now(), fault_site_name(fault.site));
}

bool SwitchEngine::switch_now(ExecMode target, hw::Cycles budget) {
  request(target);
  const bool ok = kernel_.run_until(
      [&] { return mode_ == target && !pending_; }, budget);
  // Budget exhausted: revoke the request. Without this the deferral timer
  // stays armed and the "failed" switch could still commit later, behind
  // the back of a caller that was told it did not happen.
  if (!ok) cancel();
  return ok;
}

}  // namespace mercury::core
