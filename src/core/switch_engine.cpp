#include "core/switch_engine.hpp"

#include "core/fault_inject.hpp"
#include "core/invariants.hpp"
#include "core/stack_fixup.hpp"
#include "hw/interrupts.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mercury::core {

const char* exec_mode_name(ExecMode m) {
  switch (m) {
    case ExecMode::kNative: return "native";
    case ExecMode::kPartialVirtual: return "partial-virtual";
    case ExecMode::kFullVirtual: return "full-virtual";
  }
  return "?";
}

SwitchEngine::SwitchEngine(kernel::Kernel& k, vmm::Hypervisor& hv,
                           VirtObject& native_vo, VirtualVo& driver_vo,
                           VirtualVo& guest_vo, SwitchConfig config)
    : kernel_(k),
      hv_(hv),
      native_vo_(native_vo),
      driver_vo_(driver_vo),
      guest_vo_(guest_vo),
      config_(config) {
  kernel_.set_selfvirt_handler(
      [this](hw::Cpu& cpu, std::uint8_t vector, std::uint32_t payload) {
        on_interrupt(cpu, vector, payload);
      });
  // The hypervisor links below core/ and cannot name the fault injector;
  // bridge its probe points to the engine's injection sites. Adopt/release
  // run on the control processor, so faults charge their latency there.
  hv_.set_fault_probe([this](vmm::HvFaultPoint p) {
    hw::Cpu* cp = &kernel_.machine().cpu(0);
    switch (p) {
      case vmm::HvFaultPoint::kAdoptRebuild:
        fault_point(FaultSite::kAdoptRebuild, cp);
        break;
      case vmm::HvFaultPoint::kAdoptProtect:
        fault_point(FaultSite::kAdoptProtect, cp);
        break;
      case vmm::HvFaultPoint::kReleaseUnprotect:
        fault_point(FaultSite::kReleaseUnprotect, cp);
        break;
    }
  });
  register_obs_instruments();
}

void SwitchEngine::register_obs_instruments() {
#if MERCURY_OBS_ENABLED
  // SwitchStats is the storage; the registry views it live through callback
  // gauges so per-engine numbers appear in obs::snapshot() without a second
  // set of counters to keep in sync.
  static std::uint64_t next_engine_id = 0;
  obs_label_ = "engine=" + std::to_string(next_engine_id++);
  const auto expose = [this](const char* name, auto getter) {
    obs_callbacks_.add(name, obs_label_, [this, getter] {
      return static_cast<double>(getter(stats_));
    });
  };
  expose("switch.attaches", [](const SwitchStats& s) { return s.attaches; });
  expose("switch.detaches", [](const SwitchStats& s) { return s.detaches; });
  expose("switch.reroles", [](const SwitchStats& s) { return s.reroles; });
  expose("switch.deferrals", [](const SwitchStats& s) { return s.deferrals; });
  expose("switch.validation_aborts",
         [](const SwitchStats& s) { return s.validation_aborts; });
  expose("switch.rollbacks", [](const SwitchStats& s) { return s.rollbacks; });
  expose("switch.last_attach_cycles",
         [](const SwitchStats& s) { return s.last_attach_cycles; });
  expose("switch.last_detach_cycles",
         [](const SwitchStats& s) { return s.last_detach_cycles; });
  expose("switch.last_rendezvous_cycles",
         [](const SwitchStats& s) { return s.last_rendezvous_cycles; });
  expose("switch.last_defer_wait_cycles",
         [](const SwitchStats& s) { return s.last_defer_wait_cycles; });
#endif
}

VirtObject& SwitchEngine::current_vo() {
  switch (mode_) {
    case ExecMode::kNative: return native_vo_;
    case ExecMode::kPartialVirtual: return driver_vo_;
    case ExecMode::kFullVirtual: return guest_vo_;
  }
  return native_vo_;
}

void SwitchEngine::request(ExecMode target) {
  if (target == mode_ && !pending_) return;
  pending_ = true;
  pending_target_ = target;
  request_time_ = kernel_.machine().cpu(0).now();
  const std::uint8_t vector = target == ExecMode::kNative
                                  ? hw::kVecSelfVirtDetach
                                  : hw::kVecSelfVirtAttach;
  hw::Machine& m = kernel_.machine();
  m.interrupts().raise(/*cpu=*/0, vector, m.cpu(0).now());
}

void SwitchEngine::on_interrupt(hw::Cpu& cpu, std::uint8_t vector,
                                std::uint32_t payload) {
  (void)vector;
  (void)payload;
  if (!pending_) return;  // stale deferral timer or duplicate interrupt
  cpu.charge(pv::costs::kSwitchInterruptOverhead);
  try_commit(cpu);
}

void SwitchEngine::try_commit(hw::Cpu& cpu) {
  // §5.1.1: never switch while sensitive code is in flight.
  if (current_vo().active_refs() != 0) {
    ++stats_.deferrals;
    MERC_COUNT("switch.deferrals");
    MERC_INSTANT(cpu, kSwitch, "switch.deferred");
    kernel_.add_timer(
        cpu.now() + hw::us_to_cycles(config_.defer_retry_ms * 1000.0),
        [this] {
          if (!pending_) return;
          hw::Machine& m = kernel_.machine();
          if (current_vo().active_refs() == 0) {
            commit(m.cpu(0), pending_target_);
          } else {
            // Still busy: re-arm through the interrupt path.
            ++stats_.deferrals;
            MERC_COUNT("switch.deferrals");
            m.interrupts().raise(0,
                                 pending_target_ == ExecMode::kNative
                                     ? hw::kVecSelfVirtDetach
                                     : hw::kVecSelfVirtAttach,
                                 m.cpu(0).now() +
                                     hw::us_to_cycles(config_.defer_retry_ms *
                                                      1000.0));
          }
        });
    return;
  }
  commit(cpu, pending_target_);
}

bool SwitchEngine::validate_for_switch(hw::Cpu& cpu, ExecMode target) {
  // Failure-resistant switch (paper §8 future work): sanity-check that the
  // OS is in a state a switch can survive, abort (leaving the current mode
  // untouched) otherwise.
  cpu.charge(4000);  // validation scan
  if (target != ExecMode::kNative) {
    // The kernel's page-table forest must be self-consistent before the VMM
    // starts enforcing types: spot-check that every task's PD exists and is
    // inside the kernel's frame range.
    bool ok = true;
    kernel_.for_each_task([&](kernel::Task& t) {
      if (!t.aspace) return;
      const hw::Pfn pd = t.aspace->page_directory();
      if (pd < kernel_.base_pfn() ||
          pd >= kernel_.base_pfn() + kernel_.pool().owned_count())
        ok = false;
    });
    return ok;
  }
  return true;
}

void SwitchEngine::commit(hw::Cpu& cpu, ExecMode target) {
  MERC_CHECK(pending_);
  if (target == mode_) {
    pending_ = false;
    return;
  }
  if (config_.validate_before_commit && !validate_for_switch(cpu, target)) {
    ++stats_.validation_aborts;
    MERC_COUNT("switch.validation_aborts");
    pending_ = false;
    util::log_warn("mercury", "mode switch aborted by pre-commit validation");
    return;
  }

  // Deferral wait (§5.1.1): simulated time between the switch request and
  // this commit attempt — dominated by the 10 ms retry timer when the VO
  // refcount gated the switch.
  stats_.last_defer_wait_cycles =
      cpu.now() >= request_time_ ? cpu.now() - request_time_ : 0;

#if MERCURY_OBS_ENABLED
  const char* commit_name = mode_ == ExecMode::kNative ? "switch.attach"
                            : target == ExecMode::kNative ? "switch.detach"
                                                          : "switch.rerole";
  obs::TraceSpan commit_span(cpu, obs::TraceCat::kSwitch, commit_name);
#endif

  const ExecMode from = mode_;
  const hw::Cycles t0 = cpu.now();
  bool committed = true;
  hw::Cycles rendezvous_cycles = 0;
  try {
    // §5.4: bring every CPU to the barrier before touching global state.
    const RendezvousStats rv =
        Rendezvous::run(kernel_.machine(), cpu, config_.rendezvous);
    stats_.last_rendezvous_cycles = rv.latency();
    rendezvous_cycles = rv.latency();

    // Transitions through intermediate modes: native <-> partial <-> full.
    if (mode_ == ExecMode::kNative) {
      attach(cpu, target);
    } else if (target == ExecMode::kNative) {
      detach(cpu);
    } else {
      // partial <-> full: re-role the virtual VO without detaching the VMM.
      const vmm::DomainId dom =
          (mode_ == ExecMode::kPartialVirtual ? driver_vo_ : guest_vo_).dom();
      VirtualVo& next =
          target == ExecMode::kPartialVirtual ? driver_vo_ : guest_vo_;
      next.bind(dom);
      if (target == ExecMode::kFullVirtual) {
        hv_.blk_backend().connect_frontend(dom);
        hv_.net_backend().connect_frontend(dom);
      } else {
        hv_.blk_backend().disconnect_frontend(cpu);
        hv_.net_backend().disconnect_frontend();
      }
      kernel_.set_ops(next);
      mode_ = target;
    }
  } catch (const FaultInjected& fault) {
    // A fault fired at one of the pre-commit injection sites: unwind the
    // partial transition instead of crashing mid-switch (paper §8).
    committed = false;
    rollback(cpu, from, target, fault);
  }
  const hw::Cycles elapsed = cpu.now() - t0;
  if (!committed) {
    // Stay in `from`; the caller sees the request resolve without a mode
    // change and may re-request.
  } else if (from == ExecMode::kNative) {
    stats_.last_attach_cycles = elapsed;
    ++stats_.attaches;
    MERC_COUNT("switch.attaches");
    MERC_HIST("switch.attach.total_cycles", elapsed);
    MERC_HIST("switch.attach.defer_cycles", stats_.last_defer_wait_cycles);
    MERC_HIST("switch.attach.rendezvous_cycles", rendezvous_cycles);
    MERC_HIST("switch.attach.transfer_cycles",
              stats_.last_transfer.page_info_cycles +
                  stats_.last_transfer.protection_cycles +
                  stats_.last_transfer.binding_cycles);
    MERC_HIST("switch.attach.fixup_cycles", stats_.last_transfer.fixup_cycles);
  } else if (mode_ == ExecMode::kNative) {
    stats_.last_detach_cycles = elapsed;
    ++stats_.detaches;
    MERC_COUNT("switch.detaches");
    MERC_HIST("switch.detach.total_cycles", elapsed);
    MERC_HIST("switch.detach.defer_cycles", stats_.last_defer_wait_cycles);
    MERC_HIST("switch.detach.rendezvous_cycles", rendezvous_cycles);
    MERC_HIST("switch.detach.transfer_cycles",
              stats_.last_transfer.page_info_cycles +
                  stats_.last_transfer.protection_cycles +
                  stats_.last_transfer.binding_cycles);
    MERC_HIST("switch.detach.fixup_cycles", stats_.last_transfer.fixup_cycles);
  } else {
    // partial <-> full re-roles are neither attaches nor detaches.
    ++stats_.reroles;
    MERC_COUNT("switch.reroles");
    MERC_HIST("switch.rerole.total_cycles", elapsed);
  }
  pending_ = false;

  // §5.1.3: the handler returns to the *new* kernel privilege level — the
  // interrupt frame's saved CPL is patched before IRET. (The stepper's
  // between-tasks convention is ring 0; task dispatch re-derives the
  // correct ring from the active VO on every entry.)
  cpu.set_trap_return_cpl(mode_ == ExecMode::kNative ? hw::Ring::kRing0
                                                     : hw::Ring::kRing1);
  hw::Machine& m = kernel_.machine();
  for (std::size_t i = 0; i < m.num_cpus(); ++i)
    m.cpu(i).set_cpl(hw::Ring::kRing0);

  if (config_.paranoid_invariants) {
    const InvariantReport report = check_machine_invariants(*this);
    MERC_CHECK_MSG(report.ok(), report.to_string());
  }
}

void SwitchEngine::reload_all_cpus(VirtObject& vo) {
  hw::Machine& m = kernel_.machine();
  for (std::size_t i = 0; i < m.num_cpus(); ++i) {
    fault_point(FaultSite::kReloadHwState, &m.cpu(i));
    vo.reload_hw_state(m.cpu(i), kernel_);
  }
}

void SwitchEngine::attach(hw::Cpu& cpu, ExecMode target) {
  VirtualVo& vo =
      target == ExecMode::kPartialVirtual ? driver_vo_ : guest_vo_;
  stats_.last_transfer =
      transfer_to_virtual(cpu, kernel_, hv_, vo, config_.eager_page_tracking,
                          config_.eager_selector_fixup);
  if (target == ExecMode::kFullVirtual) {
    hv_.blk_backend().connect_frontend(vo.dom());
    hv_.net_backend().connect_frontend(vo.dom());
  }
  MERC_SPAN(cpu, kSwitch, "switch.reload_hw_state");
  reload_all_cpus(vo);
  kernel_.set_ops(vo);
  mode_ = target;
}

void SwitchEngine::detach(hw::Cpu& cpu) {
  VirtualVo& vo =
      mode_ == ExecMode::kPartialVirtual ? driver_vo_ : guest_vo_;
  if (mode_ == ExecMode::kFullVirtual) {
    hv_.blk_backend().disconnect_frontend(cpu);
    hv_.net_backend().disconnect_frontend();
  }
  stats_.last_transfer = transfer_to_native(cpu, kernel_, hv_, vo,
                                            config_.eager_selector_fixup);
  if (config_.eager_page_tracking) {
    // The eager tracker keeps maintaining the table through native mode, so
    // it stays authoritative across the detach (§5.1.2 alternative 1).
    hv_.page_info().set_valid(true);
  }
  MERC_SPAN(cpu, kSwitch, "switch.reload_hw_state");
  reload_all_cpus(native_vo_);
  kernel_.set_ops(native_vo_);
  mode_ = ExecMode::kNative;
}

void SwitchEngine::rollback(hw::Cpu& cpu, ExecMode from, ExecMode target,
                            const FaultInjected& fault) {
  ++stats_.rollbacks;
  MERC_COUNT("switch.rollbacks");
  MERC_SPAN(cpu, kFault, "switch.rollback");
  util::log_warn("mercury",
                 std::string("mode switch ") + exec_mode_name(from) + " -> " +
                     exec_mode_name(target) + " faulted at " +
                     fault_site_name(fault.site) + " (" +
                     fault_kind_name(fault.kind) + "), rolling back");

  // The injector disarmed before throwing, so re-traversing fault sites
  // below cannot re-fire. Every site is pre-commit: mode_ still names the
  // state the machine must return to.
  if (from == ExecMode::kNative) {
    // Aborted attach. The full-virtual frontends connect before the hardware
    // reload, so a late fault may leave them attached.
    if (hv_.blk_backend().connected()) hv_.blk_backend().disconnect_frontend(cpu);
    if (hv_.net_backend().connected()) hv_.net_backend().disconnect_frontend();
    // Undo however much of the adoption applied: writability, accounting
    // (kept authoritative under eager tracking), trap ownership, dormancy.
    hv_.rollback_adopt(cpu, kernel_, config_.eager_page_tracking);
    // The eager walk may already have moved saved selectors to ring 1.
    if (config_.eager_selector_fixup)
      fix_all_saved_contexts(cpu, kernel_, hw::Ring::kRing0);
    reload_all_cpus(native_vo_);
    kernel_.set_ops(native_vo_);
  } else if (target == ExecMode::kNative) {
    // Aborted detach: restore the fully attached state.
    VirtualVo& vo = from == ExecMode::kPartialVirtual ? driver_vo_ : guest_vo_;
    if (hv_.state() == vmm::Hypervisor::State::kActive) {
      // The release never completed — re-protect the unwound tables and
      // re-take the traps in place.
      hv_.reprotect_os(cpu, vo.dom(), kernel_);
    } else {
      // The release committed before the fault (it hit a later phase): the
      // accounting was dropped O(1), so restoring virtual mode pays a full
      // re-adoption — the price asymmetry of the cheap detach (§7.4).
      if (config_.eager_page_tracking) hv_.page_info().set_valid(true);
      const vmm::DomainId dom =
          hv_.adopt_running_os(cpu, kernel_, config_.eager_page_tracking);
      vo.bind(dom);
    }
    if (config_.eager_selector_fixup)
      fix_all_saved_contexts(cpu, kernel_, hw::Ring::kRing1);
    vo.state_transfer_in(cpu, kernel_);  // re-publish guest trap/GDT tokens
    // A rendezvous fault aborts before detach() dropped the frontends, so
    // they may still be attached — reconnecting would leak event channels.
    if (from == ExecMode::kFullVirtual) {
      if (!hv_.blk_backend().connected())
        hv_.blk_backend().connect_frontend(vo.dom());
      if (!hv_.net_backend().connected())
        hv_.net_backend().connect_frontend(vo.dom());
    }
    reload_all_cpus(vo);
    kernel_.set_ops(vo);
  } else {
    // partial <-> full re-role: the only reachable site (the rendezvous)
    // precedes any mutation — nothing to unwind.
  }
}

bool SwitchEngine::switch_now(ExecMode target, hw::Cycles budget) {
  request(target);
  return kernel_.run_until([&] { return mode_ == target && !pending_; },
                           budget);
}

}  // namespace mercury::core
