#include "core/virtual_vo.hpp"

#include "hw/costs.hpp"
#include "kernel/kernel.hpp"
#include "util/assert.hpp"

namespace mercury::core {

void VirtualVo::write_cr3(hw::Cpu& cpu, hw::Pfn root) {
  OpGuard g(*this, cpu);
  hv_.hc_write_cr3(cpu, dom_, root);
}

void VirtualVo::load_idt(hw::Cpu& cpu, hw::TableToken t) {
  OpGuard g(*this, cpu);
  hv_.hc_set_trap_table(cpu, dom_, t);
}

void VirtualVo::load_gdt(hw::Cpu& cpu, hw::TableToken t) {
  OpGuard g(*this, cpu);
  hv_.hc_load_guest_gdt(cpu, dom_, t);
}

void VirtualVo::irq_disable(hw::Cpu& cpu) {
  OpGuard g(*this, cpu);
  hv_.hc_set_virq_mask(cpu, dom_, false);
}

void VirtualVo::irq_enable(hw::Cpu& cpu) {
  OpGuard g(*this, cpu);
  hv_.hc_set_virq_mask(cpu, dom_, true);
}

void VirtualVo::stack_switch(hw::Cpu& cpu) {
  OpGuard g(*this, cpu);
  hv_.hc_stack_switch(cpu, dom_);
}

void VirtualVo::syscall_entered(hw::Cpu& cpu) {
  OpGuard g(*this, cpu);
  cpu.charge(hw::costs::kSyscallEntry + pv::costs::kVirtSyscallExtra);
}

void VirtualVo::syscall_exiting(hw::Cpu& cpu) {
  OpGuard g(*this, cpu);
  cpu.charge(hw::costs::kSyscallReturn + pv::costs::kVirtSyscallExtra / 2);
}

void VirtualVo::pte_write(hw::Cpu& cpu, hw::PhysAddr pte_addr, hw::Pte value) {
  OpGuard g(*this, cpu);
  // The 2.6-era writable-page-table path: the store traps and is emulated.
  hv_.hc_pte_write_emulate(cpu, dom_, pte_addr, value);
}

void VirtualVo::pte_write_batch(hw::Cpu& cpu,
                                std::span<const pv::PteUpdate> updates) {
  OpGuard g(*this, cpu);
  hv_.hc_mmu_update(cpu, dom_, updates);
}

void VirtualVo::pin_page_table(hw::Cpu& cpu, hw::Pfn pfn, pv::PtLevel level) {
  OpGuard g(*this, cpu);
  hv_.hc_pin_table(cpu, dom_, pfn, level);
}

void VirtualVo::unpin_page_table(hw::Cpu& cpu, hw::Pfn pfn) {
  OpGuard g(*this, cpu);
  hv_.hc_unpin_table(cpu, dom_, pfn);
}

void VirtualVo::flush_tlb(hw::Cpu& cpu) {
  OpGuard g(*this, cpu);
  hv_.hc_flush_tlb(cpu, dom_);
}

void VirtualVo::flush_tlb_page(hw::Cpu& cpu, hw::VirtAddr va) {
  OpGuard g(*this, cpu);
  hv_.hc_flush_tlb_page(cpu, dom_, va);
}

void VirtualVo::send_ipi(hw::Cpu& cpu, std::uint32_t dst_cpu, std::uint8_t vector,
                         std::uint32_t payload) {
  OpGuard g(*this, cpu);
  hv_.hc_send_ipi(cpu, dom_, dst_cpu, vector, payload);
}

void VirtualVo::disk_read(hw::Cpu& cpu, std::uint64_t block,
                          std::span<std::uint8_t> out) {
  OpGuard g(*this, cpu);
  if (role_ == Role::kDriverDomain) {
    cpu.charge(hv_.machine().disk().read(block, out));
  } else {
    hv_.blk_backend().read(cpu, block, out);
  }
}

void VirtualVo::disk_write(hw::Cpu& cpu, std::uint64_t block,
                           std::span<const std::uint8_t> in) {
  OpGuard g(*this, cpu);
  if (role_ == Role::kDriverDomain) {
    cpu.charge(hv_.machine().disk().write(block, in));
  } else {
    hv_.blk_backend().write(cpu, block, in);
  }
}

void VirtualVo::disk_flush(hw::Cpu& cpu) {
  OpGuard g(*this, cpu);
  if (role_ == Role::kDriverDomain) {
    cpu.charge(hv_.machine().disk().flush());
  } else {
    hv_.blk_backend().flush(cpu);
  }
}

void VirtualVo::net_send(hw::Cpu& cpu, hw::Packet pkt) {
  OpGuard g(*this, cpu);
  // Per-packet hypervisor processing (interrupt virtualization + the driver
  // domain's bridge/netloop path).
  cpu.charge(pv::costs::kVirtNetDriverTx);
  if (role_ == Role::kDriverDomain) {
    cpu.charge(hv_.machine().nic().send(std::move(pkt), cpu.now()));
  } else {
    cpu.charge(pv::costs::kVirtNetGuestTxExtra);
    hv_.net_backend().tx(cpu, std::move(pkt));
  }
}

std::optional<hw::Packet> VirtualVo::net_poll(hw::Cpu& cpu) {
  OpGuard g(*this, cpu);
  if (role_ == Role::kDriverDomain) {
    auto pkt = hv_.machine().nic().poll(cpu.now());
    if (pkt) {
      cpu.charge(hv_.machine().nic().rx_overhead());
      cpu.charge(pv::costs::kVirtNetDriverRx);
    }
    return pkt;
  }
  auto pkt = hv_.net_backend().rx_poll(cpu);
  if (pkt) cpu.charge(pv::costs::kVirtNetDriverRx + pv::costs::kVirtNetGuestRxExtra);
  return pkt;
}

void VirtualVo::sensors_read(hw::Cpu& cpu, hw::SensorReadings& out) {
  OpGuard g(*this, cpu);
  cpu.charge(hv_.machine().sensors().read(out));
  if (role_ == Role::kGuestDomain)
    cpu.charge(pv::costs::kEventChannelSend);  // virtualized sensor service
}

void VirtualVo::state_transfer_in(hw::Cpu& cpu, kernel::Kernel& k) {
  // Entering virtual mode. The hypervisor adoption (page-info rebuild, page
  // table write-protection) is performed by the switch engine through the
  // hypervisor; what remains VO-local is publishing the guest's trap/
  // descriptor tables to the VMM.
  MERC_CHECK_MSG(dom_ != vmm::kDomInvalid, "virtual VO not bound to a domain");
  hv_.hc_set_trap_table(cpu, dom_, k.idt_token());
  hv_.hc_load_guest_gdt(cpu, dom_, k.gdt_token());
}

void VirtualVo::reload_hw_state(hw::Cpu& cpu, kernel::Kernel& k) {
  cpu.charge(pv::costs::kReloadControlState);
  const hw::Ring prev = cpu.cpl();
  cpu.set_cpl(hw::Ring::kRing0);
  cpu.load_idt(hv_.idt_token());
  cpu.load_gdt(hv_.gdt_token());
  cpu.write_cr3(cpu.read_cr3());
  cpu.tlb().flush_global();
  cpu.set_cpl(prev);
  (void)k;
}

}  // namespace mercury::core
