#include "core/state_transfer.hpp"

#include "core/fault_inject.hpp"
#include "core/stack_fixup.hpp"
#include "kernel/kernel.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace mercury::core {

TransferStats transfer_to_virtual(hw::Cpu& cpu, kernel::Kernel& k,
                                  vmm::Hypervisor& hv, VirtualVo& vo,
                                  bool trust_page_info, bool eager_fixup,
                                  const WarmSet* warm) {
  TransferStats stats;

  hw::Cycles t0 = cpu.now();
  {
    MERC_SPAN(cpu, kTransfer, "transfer.page_info_rebuild");
    MERC_FLIGHT(cpu, kPhaseBegin, "transfer.page_info_rebuild",
                warm ? warm->rebuild.size() : k.pool().owned_count());
    const vmm::DomainId dom =
        warm ? hv.adopt_running_os_warm(cpu, k, warm->rebuild, warm->content)
             : hv.adopt_running_os(cpu, k, trust_page_info);
    vo.bind(dom);
  }
  stats.page_info_cycles = cpu.now() - t0;  // rebuild + typing + protection
  MERC_FLIGHT(cpu, kPhaseEnd, "transfer.page_info_rebuild",
              k.pool().owned_count(), stats.page_info_cycles);

  if (eager_fixup) {
    t0 = cpu.now();
    MERC_SPAN(cpu, kFixup, "transfer.eager_fixup");
    MERC_FLIGHT(cpu, kPhaseBegin, "transfer.eager_fixup");
    fix_all_saved_contexts(cpu, k, hw::Ring::kRing1);
    stats.fixup_cycles = cpu.now() - t0;
    MERC_FLIGHT(cpu, kPhaseEnd, "transfer.eager_fixup", 0, stats.fixup_cycles);
  }

  t0 = cpu.now();
  {
    fault_point(FaultSite::kTransferBindings, &cpu);
    MERC_SPAN(cpu, kTransfer, "transfer.rebind_traps");
    MERC_FLIGHT(cpu, kPhaseBegin, "transfer.rebind_traps");
    vo.state_transfer_in(cpu, k);  // register guest trap/descriptor tables
  }
  stats.binding_cycles = cpu.now() - t0;
  MERC_FLIGHT(cpu, kPhaseEnd, "transfer.rebind_traps", 0,
              stats.binding_cycles);
  MERC_HIST("transfer.page_info_cycles", stats.page_info_cycles);
  MERC_HIST("transfer.binding_cycles", stats.binding_cycles);
  if (eager_fixup) MERC_HIST("transfer.fixup_cycles", stats.fixup_cycles);
  return stats;
}

TransferStats transfer_to_native(hw::Cpu& cpu, kernel::Kernel& k,
                                 vmm::Hypervisor& hv, VirtualVo& vo,
                                 bool eager_fixup, bool retain_page_info) {
  TransferStats stats;
  MERC_CHECK_MSG(vo.dom() != vmm::kDomInvalid,
                 "detach without an adopted domain");

  hw::Cycles t0 = cpu.now();
  {
    MERC_SPAN(cpu, kTransfer, "transfer.unprotect_tables");
    MERC_FLIGHT(cpu, kPhaseBegin, "transfer.unprotect_tables");
    hv.release_os(cpu, vo.dom(), retain_page_info);
  }
  stats.protection_cycles = cpu.now() - t0;  // PT RW restore (O(#PTs))
  MERC_FLIGHT(cpu, kPhaseEnd, "transfer.unprotect_tables", 0,
              stats.protection_cycles);

  if (eager_fixup) {
    t0 = cpu.now();
    MERC_SPAN(cpu, kFixup, "transfer.eager_fixup");
    MERC_FLIGHT(cpu, kPhaseBegin, "transfer.eager_fixup");
    fix_all_saved_contexts(cpu, k, hw::Ring::kRing0);
    stats.fixup_cycles = cpu.now() - t0;
    MERC_FLIGHT(cpu, kPhaseEnd, "transfer.eager_fixup", 0, stats.fixup_cycles);
  }

  t0 = cpu.now();
  {
    fault_point(FaultSite::kTransferBindings, &cpu);
    MERC_SPAN(cpu, kTransfer, "transfer.rebind_traps");
    MERC_FLIGHT(cpu, kPhaseBegin, "transfer.rebind_traps");
    // Interrupt bindings return to the kernel: it becomes the trap owner.
    k.machine().install_trap_sink(&k);
  }
  stats.binding_cycles = cpu.now() - t0;
  MERC_FLIGHT(cpu, kPhaseEnd, "transfer.rebind_traps", 0,
              stats.binding_cycles);
  MERC_HIST("transfer.protection_cycles", stats.protection_cycles);
  MERC_HIST("transfer.binding_cycles", stats.binding_cycles);
  if (eager_fixup) MERC_HIST("transfer.fixup_cycles", stats.fixup_cycles);
  return stats;
}

}  // namespace mercury::core
