// Virtualization Objects (paper §4.2, §5.3).
//
// A VO bundles one execution mode's implementation of every virtualization-
// sensitive operation with the state-transfer and hardware-reload functions
// used while relocating the OS into (or out of) that mode. All operation
// entries/exits are reference counted: the switch engine commits a mode
// switch only at refcount zero (§5.1.1).
#pragma once

#include <cstdint>

#include "hw/cpu.hpp"
#include "pv/costs.hpp"
#include "pv/sensitive_ops.hpp"

namespace mercury::kernel {
class Kernel;
}

namespace mercury::core {

class VirtObject : public pv::SensitiveOps {
 public:
  /// Live entries into this object's sensitive code (paper: "reference
  /// counting the execution of a virtualization object on its entry and
  /// exit").
  int active_refs() const { return refs_; }
  std::uint64_t total_entries() const { return entries_; }

  /// Per-call dispatch charge. Mercury-built kernels (M-N, M-V) pay the
  /// indirection + refcount + layout cost on every sensitive op; the VOs of
  /// plain Xen-Linux configurations (X-0, X-U, and the unmodified guest in
  /// M-U) charge nothing here.
  void set_per_op_charge(hw::Cycles c) { per_op_charge_ = c; }
  hw::Cycles per_op_charge() const { return per_op_charge_; }

  /// Per-operation guard: counts the entry/exit and charges Mercury's VO
  /// dispatch overhead (pointer indirection + counting + layout effects).
  class OpGuard {
   public:
    OpGuard(VirtObject& vo, hw::Cpu& cpu) : vo_(vo) {
      ++vo_.refs_;
      ++vo_.entries_;
      cpu.charge(vo_.per_op_charge_);
    }
    ~OpGuard() { --vo_.refs_; }
    OpGuard(const OpGuard&) = delete;
    OpGuard& operator=(const OpGuard&) = delete;

   private:
    VirtObject& vo_;
  };

  /// Long-lived section guard: kernel paths that stay inside sensitive code
  /// across a blocking point hold one of these, which is what makes the
  /// deferred-switch timer path reachable.
  class Section {
   public:
    explicit Section(VirtObject& vo) : vo_(&vo) { ++vo_->refs_; }
    ~Section() { release(); }
    void release() {
      if (vo_ != nullptr) {
        --vo_->refs_;
        vo_ = nullptr;
      }
    }
    Section(const Section&) = delete;
    Section& operator=(const Section&) = delete;

   private:
    VirtObject* vo_;
  };

  // --- self-virtualization functions (§5.1.2 / §5.1.3) ---
  /// Transfer virtualization-sensitive data into this mode's representation.
  virtual void state_transfer_in(hw::Cpu& cpu, kernel::Kernel& k) = 0;
  /// Reload the per-CPU hardware control state for this mode.
  virtual void reload_hw_state(hw::Cpu& cpu, kernel::Kernel& k) = 0;

 private:
  int refs_ = 0;
  std::uint64_t entries_ = 0;
  hw::Cycles per_op_charge_ = 0;
};

}  // namespace mercury::core
