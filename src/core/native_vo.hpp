// The native-mode virtualization object: direct hardware manipulation behind
// Mercury's VO dispatch (this indirection is M-N's only overhead vs N-L).
#pragma once

#include "core/virt_object.hpp"
#include "pv/direct_ops.hpp"

namespace mercury::core {

class NativeVo : public VirtObject {
 public:
  explicit NativeVo(hw::Machine& machine) : direct_(machine) {}

  const char* mode_name() const override { return "mercury-native"; }
  bool is_virtual() const override { return false; }
  hw::Ring kernel_ring() const override { return hw::Ring::kRing0; }

  void write_cr3(hw::Cpu& cpu, hw::Pfn root) override;
  void load_idt(hw::Cpu& cpu, hw::TableToken t) override;
  void load_gdt(hw::Cpu& cpu, hw::TableToken t) override;
  void irq_disable(hw::Cpu& cpu) override;
  void irq_enable(hw::Cpu& cpu) override;
  void stack_switch(hw::Cpu& cpu) override;
  void syscall_entered(hw::Cpu& cpu) override;
  void syscall_exiting(hw::Cpu& cpu) override;

  void pte_write(hw::Cpu& cpu, hw::PhysAddr pte_addr, hw::Pte value) override;
  void pte_write_batch(hw::Cpu& cpu,
                       std::span<const pv::PteUpdate> updates) override;
  void pin_page_table(hw::Cpu& cpu, hw::Pfn pfn, pv::PtLevel level) override;
  void unpin_page_table(hw::Cpu& cpu, hw::Pfn pfn) override;
  void flush_tlb(hw::Cpu& cpu) override;
  void flush_tlb_page(hw::Cpu& cpu, hw::VirtAddr va) override;

  void send_ipi(hw::Cpu& cpu, std::uint32_t dst_cpu, std::uint8_t vector,
                std::uint32_t payload) override;

  void disk_read(hw::Cpu& cpu, std::uint64_t block,
                 std::span<std::uint8_t> out) override;
  void disk_write(hw::Cpu& cpu, std::uint64_t block,
                  std::span<const std::uint8_t> in) override;
  void disk_flush(hw::Cpu& cpu) override;
  void net_send(hw::Cpu& cpu, hw::Packet pkt) override;
  std::optional<hw::Packet> net_poll(hw::Cpu& cpu) override;
  void sensors_read(hw::Cpu& cpu, hw::SensorReadings& out) override;

  void state_transfer_in(hw::Cpu& cpu, kernel::Kernel& k) override;
  void reload_hw_state(hw::Cpu& cpu, kernel::Kernel& k) override;

 private:
  pv::DirectOps direct_;
};

}  // namespace mercury::core
