// Dirty-frame tracking for warm re-attach (sibling of eager_tracker).
//
// The eager tracker (paper §5.1.2, alternative 1) keeps the whole page-info
// table fresh from native mode and pays a per-operation tax for it. This
// tracker is the pre-copy alternative from live migration applied to
// self-virtualization: while the VMM is detached it only *records which
// frames changed* — a bitmap set per store, the software analogue of a
// hardware dirty bit — and the next attach reconstructs just that set
// against the retained table instead of all of RAM.
//
// Cost model: note_dirty() charges zero simulated cycles (hardware sets
// dirty bits for free), so enabling the tracker perturbs no baseline and the
// obs-off cycle-identity gate holds trivially. Host cost is one branch and a
// bit set per simulated store.
//
// Overflow: the tracker has a capacity (default: total_frames / 8). Once
// more distinct frames are dirtied than that, a warm rebuild would no longer
// beat the cold one, so the tracker latches `overflowed` and the engine
// falls back to a full rebuild. The bitmap keeps exact membership either
// way; overflow only signals "not worth it", never corrupts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hw/pte.hpp"
#include "hw/types.hpp"

namespace mercury::core {

/// The two dirty views a warm attach consumes. `rebuild` is every frame
/// whose page-info entry may be stale (content writes, alloc-state changes,
/// and the detach-time fold of protected frames): those entries are
/// reconstructed. `content` is the subset whose *frame contents* were
/// actually written while detached: only page tables in that subset need
/// revalidation — an untouched table still holds exactly the entries the
/// VMM verified before it let go, so re-scanning its PTEs buys nothing.
struct WarmSet {
  std::vector<hw::Pfn> rebuild;
  std::vector<hw::Pfn> content;
};

class DirtyFrameTracker final : public hw::DirtySink {
 public:
  /// `capacity` bounds the dirty set a warm rebuild will accept; 0 picks the
  /// default of total_frames / 8 (beyond ~12% dirty the warm path stops
  /// paying for itself and a cold rebuild is simpler to reason about).
  explicit DirtyFrameTracker(std::size_t total_frames, std::size_t capacity = 0);

  /// Start a tracking window (called at detach when the page-info table is
  /// retained). Clears all recorded state and begins recording.
  void arm();

  /// Stop recording and drop the recorded set (called once an attach —
  /// warm or cold — has produced a fresh table, or when a detach rolls
  /// back and the machine stays virtual).
  void disarm();

  bool armed() const { return armed_; }
  bool overflowed() const { return overflowed_; }
  std::size_t dirty_count() const { return dirty_count_; }
  std::size_t content_count() const { return content_count_; }
  std::size_t capacity() const { return capacity_; }

  /// hw::DirtySink — called from PhysicalMemory stores and MMU A/D
  /// write-back: the frame's *contents* changed, so both its page-info
  /// entry and (if it is a page table) its validation are stale. Never
  /// charges simulated cycles.
  void note_dirty(hw::Pfn pfn) override;

  /// Accounting-only dirt: FramePool alloc-state changes and the engine's
  /// detach-time fold of protected frames. The page-info entry must be
  /// reconstructed, but the frame's bytes were not touched, so a table here
  /// keeps its pre-detach validation.
  void note_mapping(hw::Pfn pfn);

  /// Sink to hang on sources that report mapping/accounting changes rather
  /// than stores (the frame pool).
  hw::DirtySink& mapping_sink() { return mapping_adapter_; }

  /// The recorded sets, ascending. Valid while armed (the engine reads them
  /// at the start of a warm attach).
  std::vector<hw::Pfn> collect() const;
  std::vector<hw::Pfn> collect_content() const;

 private:
  struct MappingAdapter final : hw::DirtySink {
    explicit MappingAdapter(DirtyFrameTracker* t) : tracker(t) {}
    void note_dirty(hw::Pfn pfn) override { tracker->note_mapping(pfn); }
    DirtyFrameTracker* tracker;
  };

  static std::vector<hw::Pfn> collect_bits(const std::vector<std::uint64_t>& bits,
                                           std::size_t count);
  void set_bit(std::vector<std::uint64_t>& bits, hw::Pfn pfn, bool& fresh);

  std::vector<std::uint64_t> bits_;          // rebuild set (superset)
  std::vector<std::uint64_t> content_bits_;  // frames with byte writes
  std::size_t total_frames_;
  std::size_t capacity_;
  std::size_t dirty_count_ = 0;
  std::size_t content_count_ = 0;
  bool armed_ = false;
  bool overflowed_ = false;
  MappingAdapter mapping_adapter_{this};
};

}  // namespace mercury::core
