// The switch supervisor: a policy layer above SwitchEngine that owns switch
// *requests* end-to-end (dependability pillar — the paper's §5.1/§8 framing
// says a mode switch is what you reach for exactly when the machine is in
// trouble, so the switch path itself must survive trouble).
//
// The engine resolves each commit attempt exactly once (commit, no-op,
// validation abort, or rollback) through its completion hook; the
// supervisor turns those single attempts into supervised requests:
//
//   - every request gets a SupervisedRequest record: target mode, absolute
//     cycle deadline, attempt budget, priority;
//   - a failed attempt (rollback, validation abort) re-arms with seeded-
//     jitter exponential backoff on a kernel timer — the same mechanism as
//     the §5.1.1 defer-retry, one level up;
//   - a per-request deadline fails the request (and revokes the in-flight
//     engine request, so it cannot commit behind the caller's back);
//   - N consecutive failed *attaches* drive a health state machine
//     Healthy -> Degraded -> Quarantined. Quarantined means the machine
//     stays native — the paper's core promise is that native speed is
//     always available — virtual-target requests fail fast via their
//     callbacks, a postmortem bundle records why, and a periodic
//     low-priority probe switch attempts recovery.
//
// With no faults and default options the supervised path is cycle-identical
// to the bare engine: the happy path arms zero timers and charges nothing —
// supervision is host-side bookkeeping until something goes wrong.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/switch_engine.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace mercury::core {

enum class SupervisorHealth : std::uint8_t {
  kHealthy,
  kDegraded,     // failed attaches piling up; still retrying
  kQuarantined,  // virtualization declared broken: stay native, probe later
};

const char* supervisor_health_name(SupervisorHealth h);

enum class RequestState : std::uint8_t {
  // Live states.
  kQueued,    // waiting for the engine (or for a higher-priority request)
  kInFlight,  // an engine request is pending for this record
  kBackoff,   // last attempt failed; retry timer armed
  // Terminal states.
  kCommitted,          // the machine reached the requested mode
  kFailedDeadline,     // the absolute cycle deadline passed first
  kFailedAttempts,     // the attempt budget ran out
  kFailedQuarantined,  // health quarantine failed the request fast
  kCancelled,          // the submitter revoked it
};

const char* request_state_name(RequestState s);

inline bool request_state_terminal(RequestState s) {
  return s >= RequestState::kCommitted;
}

struct SupervisorConfig {
  /// Default attempt budget per request (>= 1).
  std::uint32_t max_attempts = 8;
  /// Backoff schedule: delay(attempt) = min(cap, base * factor^(attempt-1))
  /// scaled by a jitter factor uniform in [1-jitter, 1+jitter).
  double backoff_base_ms = 1.0;
  double backoff_factor = 2.0;
  double backoff_cap_ms = 64.0;
  double backoff_jitter = 0.25;
  /// Seed for the jitter stream (tests derive it from MERCURY_TEST_SEED).
  std::uint64_t seed = 0x5EEDBACC0FFULL;
  /// Consecutive failed attaches before Healthy -> Degraded.
  std::uint32_t degraded_after = 2;
  /// Consecutive failed attaches before -> Quarantined.
  std::uint32_t quarantine_after = 5;
  /// Quarantine recovery probe cadence (0 disables probing).
  double probe_interval_ms = 200.0;
  bool probe_enabled = true;
  /// Default per-request deadline, relative to submission (0 = none).
  hw::Cycles default_deadline = 0;
};

struct RequestOptions {
  /// Deadline relative to submission time, in cycles (0 = config default).
  hw::Cycles deadline = 0;
  /// Attempt budget override (0 = config default).
  std::uint32_t max_attempts = 0;
  /// Dispatch priority: lower runs first among queued requests.
  std::uint8_t priority = 1;
};

struct SupervisedRequest {
  std::uint64_t id = 0;
  ExecMode target = ExecMode::kNative;
  RequestState state = RequestState::kQueued;
  std::uint8_t priority = 1;
  bool probe = false;     // internal quarantine-recovery probe
  bool internal = false;  // supervisor-originated (probe, quarantine detach)
  std::uint32_t attempts = 0;  // commit attempts consumed so far
  std::uint32_t max_attempts = 1;
  std::uint32_t backoffs = 0;
  hw::Cycles submitted_at = 0;
  hw::Cycles deadline_at = 0;  // absolute CP cycles; 0 = none
  hw::Cycles resolved_at = 0;
  hw::Cycles total_backoff_cycles = 0;
  /// Causal context ambient at submit() time (a fabric-message span in a
  /// cluster wave); re-installed into the engine on every attempt so the
  /// commit spans link back to the submitter across the async hops.
  obs::SpanContext ctx{};
};

struct SupervisorStats {
  std::uint64_t submitted = 0;
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;   // attempts beyond each request's first
  std::uint64_t backoffs = 0;
  std::uint64_t committed = 0;
  std::uint64_t failed_deadline = 0;
  std::uint64_t failed_attempts = 0;
  std::uint64_t failed_quarantined = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t recoveries = 0;  // quarantine probes that attached
  std::uint64_t probes = 0;
  hw::Cycles total_backoff_cycles = 0;

  std::uint64_t resolved() const {
    return committed + failed_deadline + failed_attempts +
           failed_quarantined + cancelled;
  }
};

/// One supervisor per engine: the constructor takes the engine's completion
/// hook. Do not call SwitchEngine::request / switch_now directly while a
/// supervisor owns the engine — submit through the supervisor instead.
class SwitchSupervisor {
 public:
  /// Invoked exactly once per request, on the terminal transition. The
  /// callback may submit follow-up requests.
  using RequestCallback = std::function<void(const SupervisedRequest&)>;

  explicit SwitchSupervisor(SwitchEngine& engine, SupervisorConfig config = {});
  ~SwitchSupervisor();
  SwitchSupervisor(const SwitchSupervisor&) = delete;
  SwitchSupervisor& operator=(const SwitchSupervisor&) = delete;

  /// Queue a supervised switch request. Returns its id. The callback fires
  /// on resolution (already-in-target resolves immediately as committed;
  /// virtual targets under quarantine fail fast as kFailedQuarantined).
  std::uint64_t submit(ExecMode target, RequestOptions opts = {},
                       RequestCallback cb = nullptr);

  /// Revoke a live request (also revokes its in-flight engine request).
  /// False if the id is unknown or already terminal.
  bool cancel(std::uint64_t id);

  /// Synchronous convenience mirroring SwitchEngine::switch_now: submit and
  /// drive the kernel until the request resolves or `budget` runs out (the
  /// request is cancelled on budget exhaustion). True iff committed.
  bool switch_now(ExecMode target,
                  hw::Cycles budget = 500 * hw::kCyclesPerMillisecond,
                  RequestOptions opts = {});

  /// No live requests (queued, in flight, or backing off).
  bool idle() const { return live_ == 0; }

  SupervisorHealth health() const { return health_; }
  std::uint32_t consecutive_failures() const { return consecutive_failures_; }
  const SupervisorStats& stats() const { return stats_; }
  const SupervisorConfig& config() const { return config_; }
  SwitchEngine& engine() { return engine_; }

  /// The record for `id`, or nullptr. Records persist for the supervisor's
  /// lifetime (soak tests audit every one).
  const SupervisedRequest* find(std::uint64_t id) const;
  /// All records, in submission order.
  const std::deque<SupervisedRequest>& requests() const { return requests_; }

  /// The registry label ("supervisor=<n>") this supervisor's stats use.
  const std::string& obs_label() const { return obs_label_; }

  /// The deterministic backoff schedule, exposed for unit tests: delay for
  /// the retry after `attempt` failed attempts (attempt >= 1), consuming
  /// exactly one draw from `rng`.
  static hw::Cycles backoff_delay(const SupervisorConfig& cfg,
                                  std::uint32_t attempt, util::Rng& rng);

 private:
  SupervisedRequest* find_mutable(std::uint64_t id);
  hw::Cycles now() const;
  void register_obs_instruments();
  std::uint64_t enqueue(ExecMode target, const RequestOptions& opts,
                        RequestCallback cb, bool probe, bool internal);
  /// Start the best queued request if the engine and supervisor are free.
  void pump();
  void start_attempt(SupervisedRequest& req);
  void on_engine_resolve(ExecMode target, SwitchOutcome outcome);
  void on_attempt_failed(SupervisedRequest& req);
  void arm_retry(SupervisedRequest& req);
  void arm_deadline(SupervisedRequest& req);
  void resolve(SupervisedRequest& req, RequestState terminal);
  /// Attach-health bookkeeping (only attach attempts move the machine).
  /// `target` is the virtual mode the attempt drove toward; failures
  /// remember it so a quarantine probe retests the mode that broke.
  void note_attach_result(bool success, ExecMode target);
  void transition_health(SupervisorHealth to);
  void enter_quarantine();
  void dump_quarantine_postmortem();
  void arm_probe_timer();
  void fire_probe();

  SwitchEngine& engine_;
  kernel::Kernel& kernel_;
  SupervisorConfig config_;
  util::Rng rng_;

  std::deque<SupervisedRequest> requests_;  // stable storage, id = index+1
  std::deque<RequestCallback> callbacks_;   // parallel to requests_; deque so
                                            // re-entrant submits from a
                                            // running callback never move it
  std::vector<std::uint64_t> queue_;        // queued request ids
  std::uint64_t active_ = 0;                // id driving the engine (0 = none)
  std::uint64_t live_ = 0;                  // non-terminal request count
  bool pumping_ = false;                    // pump() reentrancy guard

  SupervisorHealth health_ = SupervisorHealth::kHealthy;
  std::uint32_t consecutive_failures_ = 0;
  bool probe_timer_armed_ = false;
  /// The virtual mode whose failed attach most recently moved the health
  /// machine: recovery probes retest this mode, not a fixed one — a
  /// partial-virtual success must not declare a full-virtual quarantine
  /// healed.
  ExecMode probe_target_ = ExecMode::kPartialVirtual;

  SupervisorStats stats_;
  std::string obs_label_;
  obs::CallbackGuard obs_callbacks_;
  /// Kernel timers capture a weak reference to this: a timer surviving the
  /// supervisor must degrade to a no-op, not a use-after-free.
  std::shared_ptr<SwitchSupervisor*> self_;
};

}  // namespace mercury::core
