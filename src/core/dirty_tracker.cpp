#include "core/dirty_tracker.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"

namespace mercury::core {

DirtyFrameTracker::DirtyFrameTracker(std::size_t total_frames,
                                     std::size_t capacity)
    : bits_((total_frames + 63) / 64, 0),
      content_bits_((total_frames + 63) / 64, 0),
      total_frames_(total_frames),
      capacity_(capacity != 0 ? capacity : std::max<std::size_t>(1, total_frames / 8)) {
  MERC_CHECK(total_frames > 0);
}

void DirtyFrameTracker::arm() {
  std::fill(bits_.begin(), bits_.end(), 0);
  std::fill(content_bits_.begin(), content_bits_.end(), 0);
  dirty_count_ = 0;
  content_count_ = 0;
  overflowed_ = false;
  armed_ = true;
}

void DirtyFrameTracker::disarm() {
  armed_ = false;
  std::fill(bits_.begin(), bits_.end(), 0);
  std::fill(content_bits_.begin(), content_bits_.end(), 0);
  dirty_count_ = 0;
  content_count_ = 0;
  overflowed_ = false;
}

void DirtyFrameTracker::set_bit(std::vector<std::uint64_t>& bits, hw::Pfn pfn,
                                bool& fresh) {
  std::uint64_t& word = bits[pfn / 64];
  const std::uint64_t mask = std::uint64_t{1} << (pfn % 64);
  fresh = (word & mask) == 0;
  word |= mask;
}

void DirtyFrameTracker::note_dirty(hw::Pfn pfn) {
  if (!armed_) return;
  if (pfn >= total_frames_) return;  // device windows outside RAM: ignore
  bool fresh = false;
  set_bit(bits_, pfn, fresh);
  if (fresh && ++dirty_count_ > capacity_) overflowed_ = true;
  set_bit(content_bits_, pfn, fresh);
  if (fresh) ++content_count_;
}

void DirtyFrameTracker::note_mapping(hw::Pfn pfn) {
  if (!armed_) return;
  if (pfn >= total_frames_) return;
  bool fresh = false;
  set_bit(bits_, pfn, fresh);
  if (fresh && ++dirty_count_ > capacity_) overflowed_ = true;
}

std::vector<hw::Pfn> DirtyFrameTracker::collect_bits(
    const std::vector<std::uint64_t>& bits, std::size_t count) {
  std::vector<hw::Pfn> out;
  out.reserve(count);
  for (std::size_t w = 0; w < bits.size(); ++w) {
    std::uint64_t word = bits[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out.push_back(static_cast<hw::Pfn>(w * 64 + static_cast<std::size_t>(bit)));
      word &= word - 1;
    }
  }
  return out;
}

std::vector<hw::Pfn> DirtyFrameTracker::collect() const {
  return collect_bits(bits_, dirty_count_);
}

std::vector<hw::Pfn> DirtyFrameTracker::collect_content() const {
  return collect_bits(content_bits_, content_count_);
}

}  // namespace mercury::core
