// The mode-switch engine: interrupt-driven attach/detach of the pre-cached
// VMM beneath the running OS (paper §4, §5.1).
//
// A switch request raises the self-virtualization interrupt on the control
// processor. The handler refuses to commit while any VO reference is live
// (re-arming a 10 ms kernel timer, §5.1.1), rendezvouses all CPUs (§5.4),
// runs the state-transfer functions (§5.1.2), reloads hardware control
// state in interrupt context — including the patched return privilege level
// (§5.1.3) — and finally swaps the kernel's VO pointer.
#pragma once

#include <cstdint>

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/dirty_tracker.hpp"
#include "core/native_vo.hpp"
#include "core/rendezvous.hpp"
#include "core/state_transfer.hpp"
#include "core/virtual_vo.hpp"
#include "kernel/kernel.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "vmm/hypervisor.hpp"

namespace mercury::core {

struct FaultInjected;
class SwitchCrew;

enum class ExecMode : std::uint8_t {
  kNative,         // bare hardware, full speed
  kPartialVirtual, // VMM attached, OS is the driver domain (can host domUs)
  kFullVirtual,    // VMM attached, OS is an unprivileged guest (migratable)
};

const char* exec_mode_name(ExecMode m);

/// How the most recent commit attempt (or cancellation) resolved. A caller
/// that saw switch_now() return false can distinguish "never committed"
/// (kCancelled — the engine revoked the stale request) from a rollback or
/// validation abort that resolved before the budget ran out.
enum class SwitchOutcome : std::uint8_t {
  kNone,             // no request has resolved yet
  kCommitted,        // the mode changed
  kNoOp,             // target equalled the current mode at commit time
  kValidationAbort,  // §8 pre-commit validation refused the switch
  kRolledBack,       // a mid-switch fault unwound the transition
  kCancelled,        // the request was revoked before it could commit
};

const char* switch_outcome_name(SwitchOutcome o);

/// Per-phase cycle budgets for the switch-SLO watchdog (0 = unlimited).
/// After every committed switch the engine reports the phase actuals to an
/// obs::SloWatchdog; each breach bumps `switch.slo.breaches`, lands in the
/// flight recorder, and is logged — a live regression alarm for the paper's
/// "a switch is cheap" promise.
struct SwitchSloBudgets {
  hw::Cycles attach_total = 0;
  hw::Cycles detach_total = 0;
  hw::Cycles rendezvous = 0;  // §5.4 barrier, either direction
  hw::Cycles transfer = 0;    // bulk state-transfer phases, either direction
  hw::Cycles fixup = 0;       // eager selector fixup, either direction
  /// Worst per-CPU unavailability window of one commit (rendezvous park to
  /// release, the pause ledger's headline number). The budget ROADMAP
  /// item 5's deadline-aware switch mode will enforce.
  hw::Cycles max_pause = 0;
};

struct SwitchConfig {
  bool eager_page_tracking = false;  // §5.1.2 alternative 1
  bool eager_selector_fixup = false; // walk tasks at switch time vs resume stub
  RendezvousProtocol rendezvous = RendezvousProtocol::kIpiSharedVar;
  double defer_retry_ms = 10.0;      // §5.1.1 timer interval
  bool validate_before_commit = false;  // failure-resistant switch (§8)
  /// Parallel switch pipeline: number of rendezvous-parked CPUs recruited as
  /// shard workers for the bulk switch phases (page-info rebuild,
  /// type-and-protect, validation, eager fixup, release-time unprotect).
  /// 0 selects the legacy serial path — cycle-identical to the pre-crew
  /// engine, kept for the serial-vs-crew ablation. Clamped to the machine's
  /// other CPUs; the control processor always works too.
  std::size_t crew_workers = 0;
  /// Run the machine-state invariant checker after every commit attempt
  /// (committed or rolled back) and abort the simulation on a violation.
  /// Test-only: the checks are free of simulated cost but not of host cost.
  bool paranoid_invariants = false;
  /// Warm re-attach: retain the page-info table across detach and, on the
  /// next attach, reconstruct only the frames the DirtyFrameTracker saw
  /// change while native (pre-copy applied to self-virtualization). Falls
  /// back to the full rebuild on the first attach, on tracker overflow, and
  /// whenever retention was poisoned by an ownership change. Mutually
  /// exclusive with eager_page_tracking (which keeps the table live instead
  /// of stale); when both are set, eager wins and warm is ignored.
  bool warm_reattach = false;
  /// Dirty-set bound before the warm path falls back to a full rebuild
  /// (0 = total_frames / 8; see DirtyFrameTracker).
  std::size_t warm_dirty_capacity = 0;
  /// Switch-SLO cycle budgets; breaches are flagged, never enforced.
  SwitchSloBudgets slo{};
};

/// Per-engine switch telemetry. This struct is the single storage for these
/// values; when telemetry is compiled in, the engine exposes every field
/// through the central obs registry as callback gauges labeled
/// "engine=<id>" (obs::snapshot() reads them live — no parallel counting),
/// and additionally feeds the unlabeled per-phase cycle histograms
/// (`switch.attach.*_cycles` / `switch.detach.*_cycles`) that benches dump
/// with --metrics-json.
struct SwitchStats {
  std::uint64_t attaches = 0;
  std::uint64_t detaches = 0;
  std::uint64_t reroles = 0;         // partial <-> full transitions
  std::uint64_t deferrals = 0;       // refcount non-zero at request time
  std::uint64_t validation_aborts = 0;
  std::uint64_t rollbacks = 0;       // mid-switch faults unwound (§8)
  std::uint64_t cancels = 0;         // pending requests revoked via cancel()
  std::uint64_t warm_attaches = 0;   // attaches that took the dirty-set path
  std::uint64_t warm_fallbacks = 0;  // warm-eligible attaches forced cold
                                     // (overflow or poisoned retention)
  std::uint64_t last_dirty_frames = 0;     // dirty set of the last warm attach
  std::uint64_t last_frames_retained = 0;  // carried over, not reconstructed
  hw::Cycles last_attach_cycles = 0;
  hw::Cycles last_detach_cycles = 0;
  hw::Cycles last_rendezvous_cycles = 0;
  /// Longest per-CPU unavailability window of the last commit. Computed
  /// with plain arithmetic in Rendezvous::release() on obs-on and obs-off
  /// builds alike (the cycle-identity probe prints it).
  hw::Cycles last_max_pause_cycles = 0;
  hw::Cycles last_defer_wait_cycles = 0;  // request -> commit-start (§5.1.1)
  TransferStats last_transfer{};
};

class SwitchEngine {
 public:
  SwitchEngine(kernel::Kernel& k, vmm::Hypervisor& hv, VirtObject& native_vo,
               VirtualVo& driver_vo, VirtualVo& guest_vo,
               SwitchConfig config = {});
  ~SwitchEngine();

  ExecMode mode() const { return mode_; }
  const SwitchConfig& config() const { return config_; }
  SwitchStats& stats() { return stats_; }

  /// Toggle warm re-attach at runtime (chaos tiers randomize it per cycle).
  /// Disabling disarms the tracker, so a window that was only partially
  /// observed can never feed a warm rebuild; re-enabling takes effect at
  /// the next detach (the next attach stays cold).
  void set_warm_reattach(bool on);
  /// The dirty-frame tracker, if one has been created (tests).
  DirtyFrameTracker* dirty_tracker() { return dirty_tracker_.get(); }

  /// Asynchronous request: triggers the self-virtualization interrupt on
  /// the control processor; the switch commits from interrupt context.
  void request(ExecMode target);

  /// Causal context the *next* request's commit spans should link under
  /// (e.g. the fabric-message span of a cluster-wide switch wave). The
  /// request path is asynchronous — submit, interrupt, deferral timers —
  /// so the ambient obs::SpanContext at submit time is gone by commit
  /// time; the supervisor captures it and re-installs it through here.
  void set_request_context(const obs::SpanContext& ctx) { pending_ctx_ = ctx; }

  /// True once no request is in flight.
  bool idle() const { return !pending_; }

  /// Revoke the in-flight request, if any: the armed deferral timers and
  /// interrupts become no-ops and the switch can no longer commit behind
  /// the caller's back. No-op when idle. Does not fire the completion hook
  /// (the canceller already knows).
  void cancel();

  /// How the most recent request resolved (kCancelled after cancel()).
  SwitchOutcome last_outcome() const { return last_outcome_; }

  /// One observer (the switch supervisor) notified after every request
  /// resolution — commit, no-op, validation abort, or rollback — with the
  /// engine already in its settled state. The hook runs on the host only
  /// (it must never charge simulated cycles) and may submit a new request.
  using CompletionHook = std::function<void(ExecMode target, SwitchOutcome)>;
  void set_completion_hook(CompletionHook hook) { on_complete_ = std::move(hook); }

  /// Interrupt entry point (wired into the kernel's dispatch).
  void on_interrupt(hw::Cpu& cpu, std::uint8_t vector, std::uint32_t payload);

  /// Synchronous convenience: request + drive the kernel until committed.
  /// Returns false if the switch did not commit within `budget` cycles.
  bool switch_now(ExecMode target,
                  hw::Cycles budget = 500 * hw::kCyclesPerMillisecond);

  VirtObject& native_vo() { return native_vo_; }
  VirtualVo& driver_vo() { return driver_vo_; }
  VirtualVo& guest_vo() { return guest_vo_; }
  VirtObject& current_vo();
  kernel::Kernel& kernel() { return kernel_; }
  vmm::Hypervisor& hypervisor() { return hv_; }

  /// The registry label ("engine=<n>") this engine's stats appear under.
  const std::string& obs_label() const { return obs_label_; }

  /// The watchdog holding this engine's SLO budgets and breach count.
  const obs::SloWatchdog& slo() const { return slo_; }

 private:
  void try_commit(hw::Cpu& cpu);
  void commit(hw::Cpu& cpu, ExecMode target);
  /// Record the outcome and notify the completion hook (if installed).
  void resolve(ExecMode target, SwitchOutcome outcome);
  void register_obs_instruments();
  void attach(hw::Cpu& cpu, ExecMode target);
  void detach(hw::Cpu& cpu);
  /// partial <-> full transition: re-role the virtual VO in place.
  void rerole(hw::Cpu& cpu, ExecMode target);
  /// Crew variants of attach/detach: the bulk phases run as shards across
  /// the rendezvous-parked crew instead of serially on the CP.
  void attach_with_crew(hw::Cpu& cpu, SwitchCrew& crew, ExecMode target);
  void detach_with_crew(hw::Cpu& cpu, SwitchCrew& crew);
  bool validate_for_switch(hw::Cpu& cpu, ExecMode target);
  void reload_all_cpus(VirtObject& vo);
  /// Warm re-attach plumbing. `warm_retention_enabled` gates the detach
  /// side (retain the table + arm the tracker); `warm_dirty_set` decides
  /// the attach side — nullopt means cold (first attach, disabled, tracker
  /// overflow, or poisoned retention; the latter two count as fallbacks) —
  /// and returns the dirty set filtered to kernel-owned frames otherwise.
  bool warm_retention_enabled() const;
  void ensure_tracker();
  void begin_warm_retention();
  std::optional<WarmSet> warm_dirty_set();
  /// Record a warm attach's telemetry (stats, gauges, flight event).
  void note_warm_attach(hw::Cpu& cpu, std::size_t dirty_frames);
  /// Unwind a partially applied `from`→`target` transition after an injected
  /// fault, returning the machine to `from` (paper §8: dependable switch).
  void rollback(hw::Cpu& cpu, ExecMode from, ExecMode target,
                const FaultInjected& fault);
  /// Feed the phase actuals of a committed attach/detach to the watchdog.
  void observe_slo(hw::Cpu& cpu, bool attach, hw::Cycles total,
                   hw::Cycles rendezvous_cycles);
  /// Capture a mercury.postmortem.v1 bundle for a rolled-back switch.
  void dump_rollback_postmortem(ExecMode from, ExecMode target,
                                const FaultInjected& fault);

  kernel::Kernel& kernel_;
  vmm::Hypervisor& hv_;
  VirtObject& native_vo_;
  VirtualVo& driver_vo_;
  VirtualVo& guest_vo_;
  SwitchConfig config_;

  ExecMode mode_ = ExecMode::kNative;
  bool pending_ = false;
  SwitchOutcome last_outcome_ = SwitchOutcome::kNone;
  CompletionHook on_complete_;
  ExecMode pending_target_ = ExecMode::kNative;
  obs::SpanContext pending_ctx_{};  // causal parent of the next commit
  hw::Cycles request_time_ = 0;  // CP clock when the live request was made
  SwitchStats stats_;
  /// Created lazily on the first retaining detach; once installed it stays
  /// registered as the machine's and frame pool's dirty sink (the armed
  /// flag gates recording, so a disarmed tracker costs one predictable
  /// branch per store). The destructor deregisters it.
  std::unique_ptr<DirtyFrameTracker> dirty_tracker_;
  obs::SloWatchdog slo_;
  std::string obs_label_;
  obs::CallbackGuard obs_callbacks_;  // unregisters when the engine dies
};

}  // namespace mercury::core
