#include "core/eager_tracker.hpp"

#include "kernel/kernel.hpp"

namespace mercury::core {

using vmm::PageInfo;
using vmm::PageType;

void EagerTrackingVo::prime(hw::Cpu& cpu, kernel::Kernel& k) {
  vmm::Domain& d = hv_.domain(dom_);
  hv_.rebuild_page_info(cpu, d);
  // Type the page tables without write-protecting them (the VMM is dormant;
  // protection is applied only when it activates).
  auto type_as = [&](hw::Pfn pfn, PageType type) {
    PageInfo& pi = hv_.page_info().at(pfn);
    pi.type = type;
    pi.pinned = true;
    pi.type_count = 1;
  };
  for (const hw::Pfn l1 : k.kernel_l1_frames()) type_as(l1, PageType::kL1);
  type_as(k.kernel_pd(), PageType::kL2);
  k.for_each_task([&](kernel::Task& t) {
    if (!t.aspace) return;
    for (const hw::Pfn pt : t.aspace->page_table_frames())
      type_as(pt, pt == t.aspace->page_directory() ? PageType::kL2
                                                   : PageType::kL1);
  });
  hv_.page_info().set_valid(true);
}

void EagerTrackingVo::pte_write(hw::Cpu& cpu, hw::PhysAddr pte_addr,
                                hw::Pte value) {
  // The tracked bookkeeping: adjust the dormant VMM's view as we go.
  cpu.charge(pv::costs::kEagerTrackPerPte);
  ++tracked_;
  (void)pte_addr;
  (void)value;
  inner_.pte_write(cpu, pte_addr, value);
}

void EagerTrackingVo::pte_write_batch(hw::Cpu& cpu,
                                      std::span<const pv::PteUpdate> updates) {
  cpu.charge(pv::costs::kEagerTrackPerPte * updates.size());
  tracked_ += updates.size();
  inner_.pte_write_batch(cpu, updates);
}

void EagerTrackingVo::pin_page_table(hw::Cpu& cpu, hw::Pfn pfn,
                                     pv::PtLevel level) {
  cpu.charge(pv::costs::kEagerTrackPerPte * 4);
  PageInfo& pi = hv_.page_info().at(pfn);
  pi.owner = dom_;
  pi.type = level == pv::PtLevel::kL1 ? PageType::kL1 : PageType::kL2;
  pi.pinned = true;
  pi.type_count += 1;
  ++tracked_;
  inner_.pin_page_table(cpu, pfn, level);
}

void EagerTrackingVo::unpin_page_table(hw::Cpu& cpu, hw::Pfn pfn) {
  cpu.charge(pv::costs::kEagerTrackPerPte * 4);
  PageInfo& pi = hv_.page_info().at(pfn);
  if (pi.type_count > 0) pi.type_count -= 1;
  if (pi.type_count == 0) {
    pi.pinned = false;
    pi.type = PageType::kWritable;
  }
  ++tracked_;
  inner_.unpin_page_table(cpu, pfn);
}

// --- pure delegation -----------------------------------------------------------

void EagerTrackingVo::write_cr3(hw::Cpu& cpu, hw::Pfn root) {
  inner_.write_cr3(cpu, root);
}
void EagerTrackingVo::load_idt(hw::Cpu& cpu, hw::TableToken t) {
  inner_.load_idt(cpu, t);
}
void EagerTrackingVo::load_gdt(hw::Cpu& cpu, hw::TableToken t) {
  inner_.load_gdt(cpu, t);
}
void EagerTrackingVo::irq_disable(hw::Cpu& cpu) { inner_.irq_disable(cpu); }
void EagerTrackingVo::irq_enable(hw::Cpu& cpu) { inner_.irq_enable(cpu); }
void EagerTrackingVo::stack_switch(hw::Cpu& cpu) { inner_.stack_switch(cpu); }
void EagerTrackingVo::syscall_entered(hw::Cpu& cpu) {
  inner_.syscall_entered(cpu);
}
void EagerTrackingVo::syscall_exiting(hw::Cpu& cpu) {
  inner_.syscall_exiting(cpu);
}
void EagerTrackingVo::flush_tlb(hw::Cpu& cpu) { inner_.flush_tlb(cpu); }
void EagerTrackingVo::flush_tlb_page(hw::Cpu& cpu, hw::VirtAddr va) {
  inner_.flush_tlb_page(cpu, va);
}
void EagerTrackingVo::send_ipi(hw::Cpu& cpu, std::uint32_t dst_cpu,
                               std::uint8_t vector, std::uint32_t payload) {
  inner_.send_ipi(cpu, dst_cpu, vector, payload);
}
void EagerTrackingVo::disk_read(hw::Cpu& cpu, std::uint64_t block,
                                std::span<std::uint8_t> out) {
  inner_.disk_read(cpu, block, out);
}
void EagerTrackingVo::disk_write(hw::Cpu& cpu, std::uint64_t block,
                                 std::span<const std::uint8_t> in) {
  inner_.disk_write(cpu, block, in);
}
void EagerTrackingVo::disk_flush(hw::Cpu& cpu) { inner_.disk_flush(cpu); }
void EagerTrackingVo::net_send(hw::Cpu& cpu, hw::Packet pkt) {
  inner_.net_send(cpu, std::move(pkt));
}
std::optional<hw::Packet> EagerTrackingVo::net_poll(hw::Cpu& cpu) {
  return inner_.net_poll(cpu);
}
void EagerTrackingVo::sensors_read(hw::Cpu& cpu, hw::SensorReadings& out) {
  inner_.sensors_read(cpu, out);
}
void EagerTrackingVo::state_transfer_in(hw::Cpu& cpu, kernel::Kernel& k) {
  inner_.state_transfer_in(cpu, k);
}
void EagerTrackingVo::reload_hw_state(hw::Cpu& cpu, kernel::Kernel& k) {
  inner_.reload_hw_state(cpu, k);
}

}  // namespace mercury::core
