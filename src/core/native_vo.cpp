#include "core/native_vo.hpp"

#include "hw/costs.hpp"
#include "kernel/kernel.hpp"

namespace mercury::core {

void NativeVo::write_cr3(hw::Cpu& cpu, hw::Pfn root) {
  OpGuard g(*this, cpu);
  direct_.write_cr3(cpu, root);
}
void NativeVo::load_idt(hw::Cpu& cpu, hw::TableToken t) {
  OpGuard g(*this, cpu);
  direct_.load_idt(cpu, t);
}
void NativeVo::load_gdt(hw::Cpu& cpu, hw::TableToken t) {
  OpGuard g(*this, cpu);
  direct_.load_gdt(cpu, t);
}
void NativeVo::irq_disable(hw::Cpu& cpu) {
  OpGuard g(*this, cpu);
  direct_.irq_disable(cpu);
}
void NativeVo::irq_enable(hw::Cpu& cpu) {
  OpGuard g(*this, cpu);
  direct_.irq_enable(cpu);
}
void NativeVo::stack_switch(hw::Cpu& cpu) {
  OpGuard g(*this, cpu);
  direct_.stack_switch(cpu);
}
void NativeVo::syscall_entered(hw::Cpu& cpu) {
  OpGuard g(*this, cpu);
  direct_.syscall_entered(cpu);
}
void NativeVo::syscall_exiting(hw::Cpu& cpu) {
  OpGuard g(*this, cpu);
  direct_.syscall_exiting(cpu);
}
void NativeVo::pte_write(hw::Cpu& cpu, hw::PhysAddr pte_addr, hw::Pte value) {
  OpGuard g(*this, cpu);
  direct_.pte_write(cpu, pte_addr, value);
}
void NativeVo::pte_write_batch(hw::Cpu& cpu,
                               std::span<const pv::PteUpdate> updates) {
  OpGuard g(*this, cpu);
  direct_.pte_write_batch(cpu, updates);
}
void NativeVo::pin_page_table(hw::Cpu& cpu, hw::Pfn pfn, pv::PtLevel level) {
  OpGuard g(*this, cpu);
  direct_.pin_page_table(cpu, pfn, level);
}
void NativeVo::unpin_page_table(hw::Cpu& cpu, hw::Pfn pfn) {
  OpGuard g(*this, cpu);
  direct_.unpin_page_table(cpu, pfn);
}
void NativeVo::flush_tlb(hw::Cpu& cpu) {
  OpGuard g(*this, cpu);
  direct_.flush_tlb(cpu);
}
void NativeVo::flush_tlb_page(hw::Cpu& cpu, hw::VirtAddr va) {
  OpGuard g(*this, cpu);
  direct_.flush_tlb_page(cpu, va);
}
void NativeVo::send_ipi(hw::Cpu& cpu, std::uint32_t dst_cpu, std::uint8_t vector,
                        std::uint32_t payload) {
  OpGuard g(*this, cpu);
  direct_.send_ipi(cpu, dst_cpu, vector, payload);
}
void NativeVo::disk_read(hw::Cpu& cpu, std::uint64_t block,
                         std::span<std::uint8_t> out) {
  OpGuard g(*this, cpu);
  direct_.disk_read(cpu, block, out);
}
void NativeVo::disk_write(hw::Cpu& cpu, std::uint64_t block,
                          std::span<const std::uint8_t> in) {
  OpGuard g(*this, cpu);
  direct_.disk_write(cpu, block, in);
}
void NativeVo::disk_flush(hw::Cpu& cpu) {
  OpGuard g(*this, cpu);
  direct_.disk_flush(cpu);
}
void NativeVo::net_send(hw::Cpu& cpu, hw::Packet pkt) {
  OpGuard g(*this, cpu);
  direct_.net_send(cpu, std::move(pkt));
}
std::optional<hw::Packet> NativeVo::net_poll(hw::Cpu& cpu) {
  OpGuard g(*this, cpu);
  return direct_.net_poll(cpu);
}
void NativeVo::sensors_read(hw::Cpu& cpu, hw::SensorReadings& out) {
  OpGuard g(*this, cpu);
  direct_.sensors_read(cpu, out);
}

void NativeVo::state_transfer_in(hw::Cpu& cpu, kernel::Kernel& k) {
  // Entering native mode: the kernel segment privilege returns to ring 0.
  // Saved thread selectors are fixed by the resume stub (or the eager walk
  // the switch engine may run); page-table writability was restored by the
  // hypervisor's release path.
  (void)cpu;
  (void)k;
}

void NativeVo::reload_hw_state(hw::Cpu& cpu, kernel::Kernel& k) {
  cpu.charge(pv::costs::kReloadControlState);
  const hw::Ring prev = cpu.cpl();
  cpu.set_cpl(hw::Ring::kRing0);
  cpu.load_idt(k.idt_token());
  cpu.load_gdt(k.gdt_token());
  cpu.write_cr3(cpu.read_cr3());  // reload semantics: full TLB flush
  cpu.tlb().flush_global();
  cpu.set_cpl(prev);
}

}  // namespace mercury::core
