// Machine-state invariant checker for the mode-switch path.
//
// A mode switch — committed, or rolled back after an injected fault — must
// leave the machine in a state where every layer agrees on which mode the
// OS is in: the kernel's ops pointer, the per-CPU trap routing and IDT, the
// hypervisor's activity state, page-table writability, the frame accounting
// table, the split-driver backends, and the privilege levels saved in
// blocked threads' kernel stacks. This checker cross-examines all of them;
// the fault-matrix and fuzz tests call it between phases, and an engine can
// be configured to self-check after every commit/rollback.
#pragma once

#include <string>
#include <vector>

namespace mercury::core {

class SwitchEngine;

struct InvariantReport {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  /// One violation per line (empty string when consistent).
  std::string to_string() const;
};

/// Cross-check every mode-dependent piece of machine state against the
/// engine's current mode. Read-only (no simulated cost, no state change);
/// callable between any two switch phases and from tests.
InvariantReport check_machine_invariants(SwitchEngine& engine);

}  // namespace mercury::core
