// The parallel switch pipeline's work crew.
//
// During a mode switch every non-control CPU used to idle-spin at the
// rendezvous barrier (§5.4) while the control processor walked all of
// physical memory alone (§5.1.2 — the dominant attach cost). A SwitchCrew
// turns those parked cores into workers: the bulk phases (page-info
// rebuild, type-and-protect, validation, eager selector fixup, release-time
// unprotect) are decomposed into per-range shards pulled from a shared
// queue. Scheduling is dynamic — the next shard always goes to the
// earliest-finishing member — which is the deterministic simulation of a
// work-stealing deque: uneven shards (e.g. validation cost varies with
// present PTEs) rebalance automatically.
//
// The crew only ever runs between Rendezvous::park() and release(), and
// only after the VO reference count hit zero (§5.1.1): the parked CPUs are
// provably outside all sensitive code, so shards may mutate global switch
// state without further locking. A shard that throws FaultInjected aborts
// the phase: the remaining shards are cancelled, the crew joins (clock
// alignment — the workers observe the abort flag), and the fault is
// rethrown on the control processor for the engine's rollback.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hw/machine.hpp"

namespace mercury::core {

struct CrewPhaseStats {
  std::size_t shards = 0;
  hw::Cycles span = 0;  // phase wall-clock: dispatch start -> join complete
  hw::Cycles busy = 0;  // shard execution cycles summed over the crew
};

class SwitchCrew {
 public:
  /// The control processor plus up to `workers` rendezvous-parked helpers
  /// (clamped to the machine's other CPUs, in CPU-id order).
  SwitchCrew(hw::Machine& machine, hw::Cpu& cp, std::size_t workers);

  /// Crew size including the control processor.
  std::size_t size() const { return members_.size(); }
  /// Helper CPUs excluding the control processor.
  std::size_t workers() const { return members_.size() - 1; }

  /// Shard body: run items [begin, end) on `cpu`, charging its clock.
  using ShardFn = std::function<void(hw::Cpu&, std::size_t, std::size_t)>;

  /// Split [0, items) into shards and execute them across the crew with
  /// earliest-finisher (work-stealing) scheduling, then barrier-join so
  /// every member's clock sits at the phase end. `name` keys the per-shard
  /// and per-worker telemetry histograms ("<name>.shard_cycles",
  /// "<name>.worker_cycles", "<name>.phase_cycles"). Rethrows a worker's
  /// FaultInjected after the join.
  CrewPhaseStats run_phase(const char* name, std::size_t items,
                           const ShardFn& body);

  /// Busy fraction across all phases so far: shard cycles executed divided
  /// by crew-cycles available (phase spans × crew size). 1.0 = perfectly
  /// balanced shards, no dispatch overhead.
  double utilization() const;

 private:
  /// Align every member to the crew max plus the join handshake.
  void join();

  hw::Machine& machine_;
  std::vector<hw::Cpu*> members_;  // members_[0] is the control processor
  hw::Cycles busy_total_ = 0;
  hw::Cycles span_total_ = 0;
  std::size_t phases_ = 0;
};

}  // namespace mercury::core
