#include "core/virt_object.hpp"

// VirtObject is an interface plus inline guards; this TU anchors its vtable.

namespace mercury::core {}
