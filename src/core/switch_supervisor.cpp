#include "core/switch_supervisor.hpp"

#include <algorithm>
#include <utility>

#include "core/fault_inject.hpp"
#include "obs/obs.hpp"
#include "obs/postmortem.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mercury::core {

const char* supervisor_health_name(SupervisorHealth h) {
  switch (h) {
    case SupervisorHealth::kHealthy: return "healthy";
    case SupervisorHealth::kDegraded: return "degraded";
    case SupervisorHealth::kQuarantined: return "quarantined";
  }
  return "?";
}

const char* request_state_name(RequestState s) {
  switch (s) {
    case RequestState::kQueued: return "queued";
    case RequestState::kInFlight: return "in-flight";
    case RequestState::kBackoff: return "backoff";
    case RequestState::kCommitted: return "committed";
    case RequestState::kFailedDeadline: return "failed-deadline";
    case RequestState::kFailedAttempts: return "failed-attempts";
    case RequestState::kFailedQuarantined: return "failed-quarantined";
    case RequestState::kCancelled: return "cancelled";
  }
  return "?";
}

SwitchSupervisor::SwitchSupervisor(SwitchEngine& engine,
                                   SupervisorConfig config)
    : engine_(engine),
      kernel_(engine.kernel()),
      config_(config),
      rng_(config.seed),
      self_(std::make_shared<SwitchSupervisor*>(this)) {
  if (config_.max_attempts == 0) config_.max_attempts = 1;
  engine_.set_completion_hook(
      [this](ExecMode target, SwitchOutcome outcome) {
        on_engine_resolve(target, outcome);
      });
  register_obs_instruments();
}

SwitchSupervisor::~SwitchSupervisor() {
  engine_.set_completion_hook(nullptr);
  // self_ dies with us: any armed retry/deadline/probe timer still in the
  // kernel queue degrades to a no-op.
}

void SwitchSupervisor::register_obs_instruments() {
#if MERCURY_OBS_ENABLED
  static std::uint64_t next_supervisor_id = 0;
  obs_label_ = "supervisor=" + std::to_string(next_supervisor_id++);
  const auto expose = [this](const char* name, auto getter) {
    obs_callbacks_.add(name, obs_label_, [this, getter] {
      return static_cast<double>(getter(stats_));
    });
  };
  expose("supervisor.submitted",
         [](const SupervisorStats& s) { return s.submitted; });
  expose("supervisor.attempts",
         [](const SupervisorStats& s) { return s.attempts; });
  expose("supervisor.retries",
         [](const SupervisorStats& s) { return s.retries; });
  expose("supervisor.backoffs",
         [](const SupervisorStats& s) { return s.backoffs; });
  expose("supervisor.committed",
         [](const SupervisorStats& s) { return s.committed; });
  expose("supervisor.failed_deadline",
         [](const SupervisorStats& s) { return s.failed_deadline; });
  expose("supervisor.failed_attempts",
         [](const SupervisorStats& s) { return s.failed_attempts; });
  expose("supervisor.failed_quarantined",
         [](const SupervisorStats& s) { return s.failed_quarantined; });
  expose("supervisor.quarantines",
         [](const SupervisorStats& s) { return s.quarantines; });
  expose("supervisor.recoveries",
         [](const SupervisorStats& s) { return s.recoveries; });
  expose("supervisor.probes",
         [](const SupervisorStats& s) { return s.probes; });
  obs_callbacks_.add("supervisor.health", obs_label_, [this] {
    return static_cast<double>(health_);
  });
  obs_callbacks_.add("supervisor.consecutive_failures", obs_label_, [this] {
    return static_cast<double>(consecutive_failures_);
  });
#endif
}

hw::Cycles SwitchSupervisor::now() const {
  return engine_.kernel().machine().cpu(0).now();
}

SupervisedRequest* SwitchSupervisor::find_mutable(std::uint64_t id) {
  if (id == 0 || id > requests_.size()) return nullptr;
  return &requests_[id - 1];
}

const SupervisedRequest* SwitchSupervisor::find(std::uint64_t id) const {
  if (id == 0 || id > requests_.size()) return nullptr;
  return &requests_[id - 1];
}

hw::Cycles SwitchSupervisor::backoff_delay(const SupervisorConfig& cfg,
                                           std::uint32_t attempt,
                                           util::Rng& rng) {
  double ms = cfg.backoff_base_ms;
  for (std::uint32_t i = 1; i < attempt; ++i) {
    ms *= cfg.backoff_factor;
    if (ms >= cfg.backoff_cap_ms) break;
  }
  ms = std::min(ms, cfg.backoff_cap_ms);
  // Exactly one draw per delay: the schedule is a pure function of the
  // seed and the attempt sequence, so MERCURY_TEST_SEED replays it.
  const double jitter = 1.0 + cfg.backoff_jitter * (2.0 * rng.uniform() - 1.0);
  return hw::us_to_cycles(ms * 1000.0 * jitter);
}

std::uint64_t SwitchSupervisor::submit(ExecMode target, RequestOptions opts,
                                       RequestCallback cb) {
  const std::uint64_t id =
      enqueue(target, opts, std::move(cb), /*probe=*/false,
              /*internal=*/false);
  pump();
  return id;
}

std::uint64_t SwitchSupervisor::enqueue(ExecMode target,
                                        const RequestOptions& opts,
                                        RequestCallback cb, bool probe,
                                        bool internal) {
  SupervisedRequest req;
  req.id = requests_.size() + 1;
  req.target = target;
  req.priority = probe ? 255 : opts.priority;
  req.probe = probe;
  req.internal = internal;
  req.max_attempts =
      probe ? 1 : (opts.max_attempts ? opts.max_attempts : config_.max_attempts);
  req.submitted_at = now();
  req.ctx = obs::current_span_context();
  const hw::Cycles rel =
      opts.deadline != 0 ? opts.deadline : config_.default_deadline;
  req.deadline_at = rel != 0 ? req.submitted_at + rel : 0;
  requests_.push_back(req);
  callbacks_.push_back(std::move(cb));
  ++live_;
  ++stats_.submitted;
  MERC_COUNT("switch.supervisor.submitted");
  SupervisedRequest& stored = requests_.back();
  // Quarantine fast-fails virtual targets: the machine is staying native
  // (the paper's fast path is the one mode that always works) until a
  // probe recovers. Native-target requests pass.
  if (health_ == SupervisorHealth::kQuarantined &&
      target != ExecMode::kNative && !probe) {
    resolve(stored, RequestState::kFailedQuarantined);
    return stored.id;
  }
  queue_.push_back(stored.id);
  arm_deadline(stored);
  return stored.id;
}

void SwitchSupervisor::pump() {
  if (pumping_) return;
  pumping_ = true;
  while (active_ == 0 && engine_.idle() && !queue_.empty()) {
    // Lowest priority value wins; ties go to the oldest id (FIFO).
    auto best = queue_.begin();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      const SupervisedRequest* a = find(*it);
      const SupervisedRequest* b = find(*best);
      if (a->priority < b->priority ||
          (a->priority == b->priority && a->id < b->id))
        best = it;
    }
    const std::uint64_t id = *best;
    queue_.erase(best);
    start_attempt(*find_mutable(id));
  }
  pumping_ = false;
}

void SwitchSupervisor::start_attempt(SupervisedRequest& req) {
  if (req.deadline_at != 0 && now() >= req.deadline_at) {
    resolve(req, RequestState::kFailedDeadline);
    return;
  }
  if (engine_.mode() == req.target) {
    // Nothing to do: resolve without consuming an attempt or touching the
    // engine (keeps the no-op path free and cycle-exact).
    resolve(req, RequestState::kCommitted);
    return;
  }
  ++req.attempts;
  ++stats_.attempts;
  MERC_COUNT("switch.supervisor.attempts");
  if (req.attempts > 1) {
    ++stats_.retries;
    MERC_COUNT("switch.supervisor.retries");
  }
  req.state = RequestState::kInFlight;
  active_ = req.id;
  MERC_FLIGHT(kernel_.machine().cpu(0), kSupervisorAttempt,
              "supervisor.attempt", req.id, req.attempts,
              static_cast<std::uint64_t>(req.target));
  // Hand the submit-time causal context to the engine: the commit happens
  // later, from interrupt context, where the submitter's span is long gone.
  engine_.set_request_context(req.ctx);
  engine_.request(req.target);
}

void SwitchSupervisor::on_engine_resolve(ExecMode target,
                                         SwitchOutcome outcome) {
  (void)target;
  if (active_ == 0) {
    // A request the supervisor did not originate resolved; the engine is
    // free again — dispatch any queued work.
    pump();
    return;
  }
  SupervisedRequest* req = find_mutable(active_);
  MERC_CHECK_MSG(req != nullptr && req->state == RequestState::kInFlight,
                 "engine resolved with no in-flight supervised request");
  const bool success =
      (outcome == SwitchOutcome::kCommitted ||
       outcome == SwitchOutcome::kNoOp) &&
      engine_.mode() == req->target;
  active_ = 0;
  if (success) {
    if (req->target != ExecMode::kNative)
      note_attach_result(true, req->target);
    resolve(*req, RequestState::kCommitted);
    return;
  }
  on_attempt_failed(*req);
}

void SwitchSupervisor::on_attempt_failed(SupervisedRequest& req) {
  if (req.target != ExecMode::kNative) note_attach_result(false, req.target);
  // note_attach_result may have entered quarantine, which resolves every
  // live virtual-target request — this one included.
  if (request_state_terminal(req.state)) {
    pump();
    return;
  }
  if (req.deadline_at != 0 && now() >= req.deadline_at) {
    resolve(req, RequestState::kFailedDeadline);
    return;
  }
  if (req.attempts >= req.max_attempts) {
    resolve(req, RequestState::kFailedAttempts);
    return;
  }
  arm_retry(req);
  pump();  // the engine is free for other queued requests meanwhile
}

void SwitchSupervisor::arm_retry(SupervisedRequest& req) {
  const hw::Cycles delay = backoff_delay(config_, req.attempts, rng_);
  // A retry that could only begin past the deadline is a deadline failure
  // now — no point sleeping into certain failure.
  if (req.deadline_at != 0 && now() + delay >= req.deadline_at) {
    resolve(req, RequestState::kFailedDeadline);
    return;
  }
  req.state = RequestState::kBackoff;
  ++req.backoffs;
  ++stats_.backoffs;
  req.total_backoff_cycles += delay;
  stats_.total_backoff_cycles += delay;
  MERC_COUNT("switch.supervisor.backoffs");
  MERC_HIST("switch.supervisor.backoff_cycles", delay);
  MERC_FLIGHT(kernel_.machine().cpu(0), kSupervisorBackoff,
              "supervisor.backoff", req.id, req.attempts, delay);
  // The backoff window holds the requested transition (not the machine) on
  // CPU 0's clock: the guest keeps running, but the caller's switch is
  // unavailable for `delay` — the ledger's only non-stop-the-world cause.
  MERC_PAUSE(kSupervisorRetryBackoff, 0, now(), now() + delay,
             "supervisor.backoff");
  std::weak_ptr<SwitchSupervisor*> weak = self_;
  kernel_.add_timer(
      now() + delay, [weak, id = req.id, attempt = req.attempts] {
        const auto locked = weak.lock();
        if (!locked) return;
        SwitchSupervisor& sup = **locked;
        SupervisedRequest* r = sup.find_mutable(id);
        // Staleness guards: the request may have been cancelled, deadline-
        // failed, or quarantine-failed while we slept.
        if (r == nullptr || r->state != RequestState::kBackoff ||
            r->attempts != attempt)
          return;
        r->state = RequestState::kQueued;
        sup.queue_.push_back(id);
        sup.pump();
      });
}

void SwitchSupervisor::arm_deadline(SupervisedRequest& req) {
  if (req.deadline_at == 0) return;
  std::weak_ptr<SwitchSupervisor*> weak = self_;
  kernel_.add_timer(req.deadline_at, [weak, id = req.id] {
    const auto locked = weak.lock();
    if (!locked) return;
    SwitchSupervisor& sup = **locked;
    SupervisedRequest* r = sup.find_mutable(id);
    if (r == nullptr || request_state_terminal(r->state)) return;
    if (r->state == RequestState::kInFlight && sup.active_ == id) {
      // Revoke the engine request too: a switch the caller was told missed
      // its deadline must not commit later behind their back.
      sup.engine_.cancel();
      sup.active_ = 0;
    }
    sup.resolve(*r, RequestState::kFailedDeadline);
  });
}

void SwitchSupervisor::resolve(SupervisedRequest& req, RequestState terminal) {
  MERC_CHECK(!request_state_terminal(req.state));
  req.state = terminal;
  req.resolved_at = now();
  --live_;
  if (active_ == req.id) active_ = 0;
  queue_.erase(std::remove(queue_.begin(), queue_.end(), req.id),
               queue_.end());
  switch (terminal) {
    case RequestState::kCommitted:
      ++stats_.committed;
      MERC_COUNT("switch.supervisor.committed");
      break;
    case RequestState::kFailedDeadline:
      ++stats_.failed_deadline;
      MERC_COUNT("switch.supervisor.failed_deadline");
      break;
    case RequestState::kFailedAttempts:
      ++stats_.failed_attempts;
      MERC_COUNT("switch.supervisor.failed_attempts");
      break;
    case RequestState::kFailedQuarantined:
      ++stats_.failed_quarantined;
      MERC_COUNT("switch.supervisor.failed_quarantined");
      break;
    case RequestState::kCancelled:
      ++stats_.cancelled;
      MERC_COUNT("switch.supervisor.cancelled");
      break;
    default:
      break;
  }
  MERC_FLIGHT(kernel_.machine().cpu(0), kSupervisorResolve,
              request_state_name(terminal), req.id,
              static_cast<std::uint64_t>(terminal), req.attempts);
  if (req.probe) {
    if (terminal == RequestState::kCommitted) {
      // The probe attached: virtualization works again. Recover, then
      // return to the native resting state the quarantine promised.
      ++stats_.recoveries;
      MERC_COUNT("switch.supervisor.recoveries");
      consecutive_failures_ = 0;
      transition_health(SupervisorHealth::kHealthy);
      enqueue(ExecMode::kNative, RequestOptions{.priority = 0}, nullptr,
              /*probe=*/false, /*internal=*/true);
    } else if (health_ == SupervisorHealth::kQuarantined) {
      arm_probe_timer();
    }
  }
  // Each request resolves exactly once, so move its callback out before
  // invoking it: the callback may submit a follow-up request, and the
  // re-entrant enqueue() grows callbacks_ — invoking through a reference
  // into the container would be a use-after-free of the std::function's
  // captures if the container moved its elements.
  RequestCallback cb = std::move(callbacks_[req.id - 1]);
  if (cb) cb(req);
  pump();
}

void SwitchSupervisor::note_attach_result(bool success, ExecMode target) {
  if (success) {
    consecutive_failures_ = 0;
    if (health_ == SupervisorHealth::kDegraded)
      transition_health(SupervisorHealth::kHealthy);
    return;
  }
  probe_target_ = target;
  ++consecutive_failures_;
  if (health_ == SupervisorHealth::kQuarantined) return;
  if (consecutive_failures_ >= config_.quarantine_after) {
    enter_quarantine();
  } else if (consecutive_failures_ >= config_.degraded_after &&
             health_ == SupervisorHealth::kHealthy) {
    transition_health(SupervisorHealth::kDegraded);
  }
}

void SwitchSupervisor::transition_health(SupervisorHealth to) {
  if (to == health_) return;
  MERC_FLIGHT(kernel_.machine().cpu(0), kHealthTransition, "supervisor.health",
              static_cast<std::uint64_t>(health_),
              static_cast<std::uint64_t>(to), consecutive_failures_);
  MERC_COUNT("switch.supervisor.health_transitions");
  util::log_warn("supervisor", "health ", supervisor_health_name(health_),
                 " -> ", supervisor_health_name(to), " after ",
                 consecutive_failures_, " consecutive failed attaches");
  health_ = to;
}

void SwitchSupervisor::enter_quarantine() {
  ++stats_.quarantines;
  MERC_COUNT("switch.supervisor.quarantines");
  transition_health(SupervisorHealth::kQuarantined);
  dump_quarantine_postmortem();
  // Fail every live virtual-target request via its callback: the owner
  // learns virtualization is out, rather than waiting on retries that the
  // health machine has concluded cannot succeed. Index loop over a size
  // snapshot: a callback may submit a follow-up, and the re-entrant
  // push_back invalidates deque iterators (references stay stable).
  // Requests enqueued during the sweep are safe to skip — health_ is
  // already kQuarantined, so enqueue() fast-fails virtual targets itself.
  const std::size_t swept = requests_.size();
  for (std::size_t i = 0; i < swept; ++i) {
    SupervisedRequest& r = requests_[i];
    if (request_state_terminal(r.state)) continue;
    if (r.target == ExecMode::kNative) continue;
    if (r.id == active_) {
      engine_.cancel();
      active_ = 0;
    }
    resolve(r, RequestState::kFailedQuarantined);
  }
  // Quarantined means *native*: if a partial attach left the VMM attached,
  // drive it back out (supervised, highest priority).
  if (engine_.mode() != ExecMode::kNative && active_ == 0) {
    bool native_queued = false;
    for (const SupervisedRequest& r : requests_)
      if (!request_state_terminal(r.state) &&
          r.target == ExecMode::kNative)
        native_queued = true;
    if (!native_queued)
      enqueue(ExecMode::kNative, RequestOptions{.priority = 0}, nullptr,
              /*probe=*/false, /*internal=*/true);
  }
  arm_probe_timer();
}

void SwitchSupervisor::dump_quarantine_postmortem() {
  obs::PostmortemContext ctx;
  ctx.reason = "quarantine";
  ctx.detail = std::string("supervisor quarantined virtualization after ") +
               std::to_string(consecutive_failures_) +
               " consecutive failed attaches; staying native";
  ctx.switch_from = exec_mode_name(engine_.mode());
  ctx.switch_target = exec_mode_name(ExecMode::kNative);
  hw::Machine& m = kernel_.machine();
  for (std::size_t i = 0; i < m.num_cpus(); ++i)
    ctx.cpu_clocks.emplace_back(m.cpu(i).id(), m.cpu(i).now());
  ctx.extra.emplace_back("supervisor.submitted", stats_.submitted);
  ctx.extra.emplace_back("supervisor.attempts", stats_.attempts);
  ctx.extra.emplace_back("supervisor.retries", stats_.retries);
  ctx.extra.emplace_back("supervisor.backoffs", stats_.backoffs);
  ctx.extra.emplace_back("supervisor.quarantines", stats_.quarantines);
  ctx.extra.emplace_back("supervisor.consecutive_failures",
                         consecutive_failures_);
  ctx.extra.emplace_back("switch.rollbacks", engine_.stats().rollbacks);
  ctx.extra.emplace_back("switch.cancels", engine_.stats().cancels);
  ctx.extra.emplace_back("fault.injected_total", fault_injector().injected());
  obs::write_postmortem(ctx);
}

void SwitchSupervisor::arm_probe_timer() {
  if (!config_.probe_enabled || config_.probe_interval_ms <= 0.0) return;
  if (probe_timer_armed_) return;
  probe_timer_armed_ = true;
  std::weak_ptr<SwitchSupervisor*> weak = self_;
  kernel_.add_timer(
      now() + hw::us_to_cycles(config_.probe_interval_ms * 1000.0),
      [weak] {
        const auto locked = weak.lock();
        if (!locked) return;
        SwitchSupervisor& sup = **locked;
        sup.probe_timer_armed_ = false;
        sup.fire_probe();
      });
}

void SwitchSupervisor::fire_probe() {
  if (health_ != SupervisorHealth::kQuarantined) return;
  if (active_ != 0 || !engine_.idle() || !queue_.empty()) {
    // Lowest priority: never contend with real requests; try again later.
    arm_probe_timer();
    return;
  }
  ++stats_.probes;
  MERC_COUNT("switch.supervisor.probes");
  // Retest the mode whose failures drove the quarantine: a successful
  // partial-virtual attach says nothing about a broken full-virtual one.
  enqueue(probe_target_, RequestOptions{}, nullptr,
          /*probe=*/true, /*internal=*/true);
  pump();
}

bool SwitchSupervisor::cancel(std::uint64_t id) {
  SupervisedRequest* req = find_mutable(id);
  if (req == nullptr || request_state_terminal(req->state)) return false;
  if (req->state == RequestState::kInFlight && active_ == id) {
    engine_.cancel();
    active_ = 0;
  }
  resolve(*req, RequestState::kCancelled);
  return true;
}

bool SwitchSupervisor::switch_now(ExecMode target, hw::Cycles budget,
                                  RequestOptions opts) {
  bool done = false;
  RequestState terminal = RequestState::kCancelled;
  const std::uint64_t id =
      submit(target, opts, [&done, &terminal](const SupervisedRequest& r) {
        done = true;
        terminal = r.state;
      });
  if (!done && !kernel_.run_until([&done] { return done; }, budget)) {
    cancel(id);
    return false;
  }
  return terminal == RequestState::kCommitted;
}

}  // namespace mercury::core
