#include "core/invariants.hpp"

#include <algorithm>
#include <cstdio>

#include "core/switch_engine.hpp"
#include "hw/pte.hpp"
#include "obs/obs.hpp"
#include "obs/postmortem.hpp"

namespace mercury::core {

namespace {

/// Every page-table frame of `k` — the same forest type_and_protect_tables
/// walks: kernel L1s, kernel PD, and each task's PD + L1s.
std::vector<hw::Pfn> all_page_table_frames(kernel::Kernel& k) {
  std::vector<hw::Pfn> frames(k.kernel_l1_frames());
  frames.push_back(k.kernel_pd());
  k.for_each_task([&](kernel::Task& t) {
    if (!t.aspace) return;
    const auto pts = t.aspace->page_table_frames();
    frames.insert(frames.end(), pts.begin(), pts.end());
  });
  std::sort(frames.begin(), frames.end());
  frames.erase(std::unique(frames.begin(), frames.end()), frames.end());
  return frames;
}

}  // namespace

std::string InvariantReport::to_string() const {
  std::string out;
  for (const std::string& v : violations) {
    out += v;
    out += '\n';
  }
  return out;
}

InvariantReport check_machine_invariants(SwitchEngine& engine) {
  InvariantReport report;
  const auto fail = [&](std::string msg) {
    report.violations.push_back(std::move(msg));
  };

  kernel::Kernel& k = engine.kernel();
  vmm::Hypervisor& hv = engine.hypervisor();
  hw::Machine& m = k.machine();
  const ExecMode mode = engine.mode();
  const bool is_virtual = mode != ExecMode::kNative;

  // --- the kernel's VO pointer names the mode ---
  if (&k.ops() != &engine.current_vo())
    fail(std::string("ops pointer does not match mode ") +
         exec_mode_name(mode) + " (installed: " + k.ops().mode_name() + ")");
  const hw::Ring want_ring = is_virtual ? hw::Ring::kRing1 : hw::Ring::kRing0;
  if (engine.current_vo().kernel_ring() != want_ring)
    fail("current VO kernel_ring disagrees with mode");

  // --- per-CPU hardware control state ---
  const hw::TableToken want_idt = is_virtual ? hv.idt_token() : k.idt_token();
  hw::TrapSink* const want_sink =
      is_virtual ? static_cast<hw::TrapSink*>(&hv)
                 : static_cast<hw::TrapSink*>(&k);
  for (std::size_t c = 0; c < m.num_cpus(); ++c) {
    if (m.cpu(c).trap_sink() != want_sink)
      fail("cpu" + std::to_string(c) + ": trap sink is not the " +
           (is_virtual ? "hypervisor" : "kernel"));
    if (!(m.cpu(c).idt() == want_idt))
      fail("cpu" + std::to_string(c) + ": IDT token does not match mode");
  }
  // (The trap-return CPL is deliberately not checked: it is a per-trap
  // latch — hw::Cpu::raise_trap saves and restores it around every trap —
  // so outside a handler it holds whatever the last trap left behind.)
  const hw::Ring want_cpl = is_virtual ? hw::Ring::kRing1 : hw::Ring::kRing0;

  // --- hypervisor activity ---
  if (is_virtual && hv.state() != vmm::Hypervisor::State::kActive)
    fail("virtual mode but hypervisor is not active");
  if (!is_virtual && hv.state() == vmm::Hypervisor::State::kActive)
    fail("native mode but hypervisor is still active");

  // --- page-table writability (read the direct-map PTEs directly) ---
  const auto& l1s = k.kernel_l1_frames();
  for (const hw::Pfn pfn : all_page_table_frames(k)) {
    const std::size_t idx = pfn - k.base_pfn();
    const std::size_t table = idx / hw::kPtEntries;
    if (pfn < k.base_pfn() || table >= l1s.size()) {
      fail("PT frame " + std::to_string(pfn) + " outside the direct map");
      continue;
    }
    const hw::PhysAddr pte_addr =
        hw::addr_of(l1s[table]) + (idx % hw::kPtEntries) * 4;
    const hw::Pte pte{m.memory().read_u32(pte_addr)};
    if (!pte.present()) {
      fail("PT frame " + std::to_string(pfn) + " has no direct-map mapping");
      continue;
    }
    if (is_virtual && pte.writable())
      fail("virtual mode: PT frame " + std::to_string(pfn) +
           " is writable through the direct map");
    if (!is_virtual && !pte.writable())
      fail("native mode: PT frame " + std::to_string(pfn) +
           " is still write-protected");
    // Frame accounting must agree with the page-table forest while the VMM
    // enforces isolation on it.
    if (is_virtual) {
      const vmm::PageInfo& pi = hv.page_info().at(pfn);
      const bool is_pd =
          pfn == k.kernel_pd() ||
          [&] {
            bool pd = false;
            k.for_each_task([&](kernel::Task& t) {
              if (t.aspace && t.aspace->page_directory() == pfn) pd = true;
            });
            return pd;
          }();
      const vmm::PageType want_type =
          is_pd ? vmm::PageType::kL2 : vmm::PageType::kL1;
      if (pi.type != want_type)
        fail("frame " + std::to_string(pfn) + " typed " +
             vmm::page_type_name(pi.type) + ", page tables say " +
             vmm::page_type_name(want_type));
      if (!pi.pinned)
        fail("frame " + std::to_string(pfn) + " is a live PT but not pinned");
    }
  }

  // --- frame accounting table ---
  if (is_virtual && !hv.page_info().valid())
    fail("virtual mode with an invalid page-info table");
  if (!is_virtual &&
      hv.page_info().valid() != engine.config().eager_page_tracking)
    fail(engine.config().eager_page_tracking
             ? "eager tracking lost page-info validity in native mode"
             : "lazy tracking left the page-info table marked valid");
  if (hv.page_info().valid()) {
    if (const auto err = hv.page_info().check_invariants())
      fail("page-info self-check: " + *err);
  }

  // --- warm re-attach retention state ---
  // "Retained" means stale-but-kept across a detach; it is exclusive with
  // "valid" (live) and can only exist while the machine is native.
  if (hv.page_info().valid() && hv.page_info().retained())
    fail("page-info table is both live (valid) and retained-stale");
  if (is_virtual && hv.page_info().retained())
    fail("virtual mode with a retained-stale page-info table");
  if (!is_virtual && hv.page_info().retained() &&
      engine.config().eager_page_tracking)
    fail("eager tracking and warm retention are mutually exclusive");
  if (const DirtyFrameTracker* dt = engine.dirty_tracker();
      dt != nullptr && dt->armed() && is_virtual)
    fail("dirty tracker armed while the VMM is attached");

  // --- split-driver backends follow the full-virtual role ---
  const bool want_connected = mode == ExecMode::kFullVirtual;
  if (hv.blk_backend().connected() != want_connected)
    fail(want_connected ? "full-virtual mode without a connected blk backend"
                        : "blk backend still connected outside full mode");
  if (hv.net_backend().connected() != want_connected)
    fail(want_connected ? "full-virtual mode without a connected net backend"
                        : "net backend still connected outside full mode");

  // --- saved kernel-stack selectors (only decidable under eager fixup; the
  // lazy stub legitimately leaves stale RPLs until resume) ---
  if (engine.config().eager_selector_fixup) {
    k.for_each_task([&](kernel::Task& t) {
      if (!t.saved_ctx.valid) return;
      const auto check_sel = [&](hw::SegmentSelector cs, const char* which) {
        if (cs.rpl() == hw::Ring::kRing3) return;  // user frame
        if (cs.rpl() != want_cpl)
          fail("task " + t.name + ": " + which +
               " frame selector RPL does not match mode");
      };
      check_sel(t.saved_ctx.cs, "base");
      for (const kernel::NestedFrame& f : t.saved_ctx.nested)
        check_sel(f.cs, "nested");
    });
  }

  MERC_COUNT("invariants.checks");
  MERC_COUNT_N("invariants.violations", report.violations.size());
  MERC_FLIGHT(m.cpu(0), kInvariantVerdict, "invariants.check",
              report.violations.size());
  if (!report.ok()) {
    // A violated machine invariant is exactly what the black box exists
    // for: dump the bundle before the caller decides whether to abort.
    obs::PostmortemContext ctx;
    ctx.reason = "invariant-failure";
    ctx.detail = report.to_string();
    ctx.switch_from = exec_mode_name(mode);
    ctx.active_refs =
        static_cast<std::int64_t>(engine.current_vo().active_refs());
    for (std::size_t i = 0; i < m.num_cpus(); ++i)
      ctx.cpu_clocks.emplace_back(m.cpu(i).id(), m.cpu(i).now());
    const vmm::PageInfoTable& pit = hv.page_info();
    ctx.extra.emplace_back("page_info.shard_count", pit.shard_count());
    ctx.extra.emplace_back("page_info.rebuilt_total", pit.rebuilt_total());
    ctx.extra.emplace_back("page_info.typed_total", pit.typed_total());
    ctx.extra.emplace_back("invariants.violations", report.violations.size());
    obs::write_postmortem(ctx);
  }
  return report;
}

}  // namespace mercury::core
