#include "core/switch_crew.hpp"

#include <algorithm>
#include <string>

#include "core/fault_inject.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace mercury::core {

namespace {

// Cost atoms for the shared shard queue. Grabbing a shard is an atomic
// fetch-add on a contended line (the "steal"); publishing and joining are a
// flag store / arrival counter on the same line.
constexpr hw::Cycles kShardPublish = 180;   // CP posts the work descriptor
constexpr hw::Cycles kShardGrab = 350;      // lock xadd + line transfer
constexpr hw::Cycles kJoinHandshake = 250;  // arrival count + done flag

// Shards per crew member: enough slack for the earliest-finisher scheduling
// to absorb uneven shard costs, small enough that grab overhead stays in
// the noise against the per-frame work.
constexpr std::size_t kShardsPerMember = 4;

}  // namespace

SwitchCrew::SwitchCrew(hw::Machine& machine, hw::Cpu& cp, std::size_t workers)
    : machine_(machine) {
  members_.push_back(&cp);
  for (std::size_t i = 0; i < machine.num_cpus() && workers > 0; ++i) {
    if (i == cp.id()) continue;
    members_.push_back(&machine.cpu(i));
    --workers;
  }
}

void SwitchCrew::join() {
  hw::Cycles maxt = 0;
  for (hw::Cpu* m : members_) maxt = std::max(maxt, m->now());
  maxt += kJoinHandshake;
  for (hw::Cpu* m : members_) m->advance_to(maxt);
}

CrewPhaseStats SwitchCrew::run_phase(const char* name, std::size_t items,
                                     const ShardFn& body) {
  CrewPhaseStats stats;
  if (items == 0) return stats;

  hw::Cpu& cp = *members_[0];
  const hw::Cycles phase_start = cp.now();

  // CP publishes the work descriptor; parked members cannot start before
  // the publish store reaches them (they were spinning, so advancing their
  // clocks to the publish point costs nothing real).
  cp.charge(kShardPublish);
  for (hw::Cpu* m : members_) m->advance_to(cp.now());

  const std::size_t nshards =
      std::min(items, members_.size() * kShardsPerMember);
  MERC_FLIGHT(cp, kCrewPublish, name, items, nshards, members_.size());
  const std::size_t per = items / nshards;
  const std::size_t extra = items % nshards;

#if MERCURY_OBS_ENABLED
  obs::Hist& shard_hist =
      obs::registry().histogram(std::string(name) + ".shard_cycles");
  obs::Hist& worker_hist =
      obs::registry().histogram(std::string(name) + ".worker_cycles");
  obs::Hist& phase_hist =
      obs::registry().histogram(std::string(name) + ".phase_cycles");
#endif
  std::vector<hw::Cycles> member_busy(members_.size(), 0);

  // Earliest-finisher dispatch: each shard goes to the member whose clock
  // is lowest — the deterministic equivalent of an idle worker stealing the
  // next range off the shared queue.
  std::size_t begin = 0;
  const FaultInjected* faulted = nullptr;
  FaultInjected fault{};
  for (std::size_t s = 0; s < nshards && faulted == nullptr; ++s) {
    const std::size_t len = per + (s < extra ? 1 : 0);
    const std::size_t end = begin + len;
    std::size_t who = 0;
    for (std::size_t m = 1; m < members_.size(); ++m)
      if (members_[m]->now() < members_[who]->now()) who = m;
    hw::Cpu& worker = *members_[who];
    worker.charge(kShardGrab);
    const hw::Cycles t0 = worker.now();
    try {
      body(worker, begin, end);
    } catch (const FaultInjected& f) {
      // Abort flag: no further shards are handed out; completed shards
      // stay applied (the engine's rollback unwinds them).
      fault = f;
      faulted = &fault;
    }
    const hw::Cycles ran = worker.now() - t0;
    member_busy[who] += ran;
    stats.busy += ran;
    ++stats.shards;
#if MERCURY_OBS_ENABLED
    shard_hist.record(ran);
    // One grab event per shard on the *worker's* ring: the black box keeps
    // who ran which range and for how long.
    MERC_FLIGHT(worker, kCrewGrab, name, begin, end, ran);
    // The shard window is unavailability with a finer-grained cause than
    // the enclosing rendezvous-parked interval it nests inside.
    MERC_PAUSE(kCrewShardWork, static_cast<std::uint32_t>(worker.id()), t0,
               worker.now(), name);
#endif
    begin = end;
  }

  join();
  stats.span = cp.now() - phase_start;
  busy_total_ += stats.busy;
  span_total_ += stats.span;
  ++phases_;
#if MERCURY_OBS_ENABLED
  for (const hw::Cycles b : member_busy) worker_hist.record(b);
  phase_hist.record(stats.span);
  MERC_COUNT_N("switch.crew.shards", stats.shards);
  MERC_FLIGHT(cp, kCrewJoin, name, stats.shards, stats.busy, stats.span);
#endif
  if (faulted != nullptr) throw fault;
  return stats;
}

double SwitchCrew::utilization() const {
  if (span_total_ == 0 || members_.empty()) return 0.0;
  return static_cast<double>(busy_total_) /
         (static_cast<double>(span_total_) *
          static_cast<double>(members_.size()));
}

}  // namespace mercury::core
