// Eager stack segment-selector fixup (paper §5.1.2).
//
// Threads suspended inside the kernel hold saved cs/ss selectors whose RPL
// encodes the kernel's old ring. The paper's shipped design patches them
// lazily with a resume-time stub (implemented in Kernel::dispatch); this
// eager variant walks every task at switch time instead, trading switch
// latency for zero resume-time checking. Both are selectable via
// SwitchConfig for the ablation.
#pragma once

#include <cstddef>
#include <span>

#include "hw/cpu.hpp"
#include "hw/types.hpp"

namespace mercury::kernel {
class Kernel;
class Task;
}

namespace mercury::core {

struct FixupStats {
  std::size_t tasks_scanned = 0;
  std::size_t selectors_fixed = 0;         // frames rewritten (base + nested)
  std::size_t nested_frames_scanned = 0;   // nested interrupt frames visited
};

/// Rewrite the RPL of every valid saved kernel-mode selector to `target`,
/// including the selectors of interrupt frames nested above the base frame.
FixupStats fix_all_saved_contexts(hw::Cpu& cpu, kernel::Kernel& k,
                                  hw::Ring target);

/// Shard variant for the parallel switch pipeline: fix exactly the tasks in
/// `tasks`, charging `cpu` (a crew worker) and accumulating into `stats`.
/// Reports the kStackFixup fault site on the executing CPU per task.
void fix_saved_contexts_range(hw::Cpu& cpu,
                              std::span<kernel::Task* const> tasks,
                              hw::Ring target, FixupStats& stats);

}  // namespace mercury::core
