#include "core/fault_inject.hpp"

#include <sstream>

#include "obs/obs.hpp"
#include "util/log.hpp"

namespace mercury::core {

const char* fault_site_name(FaultSite s) {
  switch (s) {
    case FaultSite::kRendezvous: return "rendezvous";
    case FaultSite::kAdoptRebuild: return "adopt.rebuild";
    case FaultSite::kAdoptProtect: return "adopt.protect";
    case FaultSite::kStackFixup: return "stack.fixup";
    case FaultSite::kTransferBindings: return "transfer.bindings";
    case FaultSite::kReleaseUnprotect: return "release.unprotect";
    case FaultSite::kReloadHwState: return "reload.hw_state";
    case FaultSite::kShardRebuild: return "shard.rebuild";
    case FaultSite::kShardProtect: return "shard.protect";
    case FaultSite::kShardUnprotect: return "shard.unprotect";
    case FaultSite::kNumSites: break;
  }
  return "?";
}

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kFail: return "fail";
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kCorruptFrame: return "corrupt-frame";
  }
  return "?";
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << fault_kind_name(kind) << "@" << fault_site_name(site) << "#"
     << trigger_count;
  if (latency != 0) os << "+" << latency << "cy";
  return os.str();
}

void FaultInjector::arm(const FaultPlan& plan) {
  plan_ = plan;
  armed_ = true;
  for (std::uint64_t& v : visits_) v = 0;
}

void FaultInjector::on_site(FaultSite site, hw::Cpu* cpu) {
  const std::uint64_t n = ++visits_[static_cast<std::size_t>(site)];
  if (!armed_ || site != plan_.site || n != plan_.trigger_count) return;
  // Single-shot: disarm before throwing so the rollback path, which walks
  // the same sites in reverse, cannot re-fire.
  armed_ = false;
  ++injected_;
  if (cpu != nullptr && plan_.latency != 0) cpu->charge(plan_.latency);
  MERC_COUNT("fault.injected");
#if MERCURY_OBS_ENABLED
  obs::registry().counter("fault.injected_at", fault_site_name(site)).inc();
  // Black box: the fault hit is the last thing the flight tail must explain,
  // stamped with the site, kind, visit ordinal, and the executing CPU.
  if (cpu != nullptr) {
    MERC_FLIGHT(*cpu, kFaultHit, fault_site_name(site),
                static_cast<std::uint64_t>(site),
                static_cast<std::uint64_t>(plan_.kind), n);
  } else {
    obs::flight_recorder().record(0, obs::FlightType::kFaultHit,
                                  fault_site_name(site), 0,
                                  static_cast<std::uint64_t>(site),
                                  static_cast<std::uint64_t>(plan_.kind), n);
  }
#endif
  util::log_warn("fault", "injecting ", plan_.describe());
  throw FaultInjected{site, plan_.kind, cpu != nullptr ? cpu->id() : 0u};
}

FaultInjector& fault_injector() {
  static FaultInjector instance;
  return instance;
}

FaultPlan random_fault_plan(util::Rng& rng) {
  FaultPlan plan;
  plan.site = static_cast<FaultSite>(rng.below(kNumFaultSites));
  // Bias toward early hits (most sites see one visit per switch) but reach
  // deep into the per-frame loops now and then.
  plan.trigger_count = rng.chance(0.5) ? 1 + rng.below(4)
                                       : 1 + rng.below(4096);
  if (plan.site == FaultSite::kStackFixup && rng.chance(0.5)) {
    plan.kind = FaultKind::kCorruptFrame;
  } else if (rng.chance(0.25)) {
    plan.kind = FaultKind::kTimeout;
    plan.latency = hw::us_to_cycles(50.0 + rng.uniform() * 450.0);
  }
  return plan;
}

}  // namespace mercury::core
