#include "core/fault_inject.hpp"

#include <sstream>

#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mercury::core {

const char* fault_site_name(FaultSite s) {
  switch (s) {
    case FaultSite::kRendezvous: return "rendezvous";
    case FaultSite::kAdoptRebuild: return "adopt.rebuild";
    case FaultSite::kAdoptProtect: return "adopt.protect";
    case FaultSite::kStackFixup: return "stack.fixup";
    case FaultSite::kTransferBindings: return "transfer.bindings";
    case FaultSite::kReleaseUnprotect: return "release.unprotect";
    case FaultSite::kReloadHwState: return "reload.hw_state";
    case FaultSite::kShardRebuild: return "shard.rebuild";
    case FaultSite::kShardProtect: return "shard.protect";
    case FaultSite::kShardUnprotect: return "shard.unprotect";
    case FaultSite::kDirtyRebuild: return "dirty.rebuild";
    case FaultSite::kNumSites: break;
  }
  return "?";
}

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kFail: return "fail";
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kCorruptFrame: return "corrupt-frame";
  }
  return "?";
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << fault_kind_name(kind) << "@" << fault_site_name(site) << "#"
     << trigger_count;
  if (latency != 0) os << "+" << latency << "cy";
  return os.str();
}

FaultStorm FaultStorm::uniform(double r, std::uint64_t seed) {
  FaultStorm s;
  for (double& site_rate : s.rate) site_rate = r;
  s.seed = seed;
  return s;
}

std::string FaultStorm::describe() const {
  std::ostringstream os;
  os << "storm(" << fault_kind_name(kind) << " seed=" << seed
     << " burst=" << burst_windows << " decay=" << decay << " rates=[";
  for (std::size_t i = 0; i < kNumFaultSites; ++i)
    os << (i ? "," : "") << rate[i];
  os << "])";
  return os.str();
}

void FaultInjector::arm(const FaultPlan& plan) {
  MERC_CHECK_MSG(!armed_,
                 "arming a fault plan over a live one — silent replacement "
                 "makes fault sweeps vacuous; disarm() or replace() first");
  plan_ = plan;
  armed_ = true;
  ++arms_;
  for (std::uint64_t& v : visits_) v = 0;
}

void FaultInjector::replace(const FaultPlan& plan) {
  disarm();  // counts the superseded plan as unfired
  arm(plan);
}

void FaultInjector::arm_storm(const FaultStorm& storm) {
  storm_ = storm;
  storm_config_ = storm;
  storm_rng_ = util::Rng(storm.seed);
  storm_active_ = true;
  storm_fires_ = 0;
  storm_windows_ = 0;
  burst_left_ = 0;
  for (std::uint64_t& t : window_trigger_) t = 0;
  for (std::uint64_t& v : window_visits_) v = 0;
}

void FaultInjector::begin_window() {
  if (!storm_active_) return;
  ++storm_windows_;
  const std::uint64_t depth =
      storm_.max_trigger_depth ? storm_.max_trigger_depth : 1;
  for (std::size_t i = 0; i < kNumFaultSites; ++i) {
    window_visits_[i] = 0;
    window_trigger_[i] = 0;
    // One Bernoulli trial per site per window. The trial is rolled even for
    // zero-rate sites so the schedule of a multi-site storm is independent
    // of which other sites are enabled (reproducibility across variants).
    const bool won = storm_rng_.chance(storm_.rate[i]);
    const std::uint64_t at = 1 + storm_rng_.below(depth);
    if (won) window_trigger_[i] = at;
  }
  // A burst pins the last-fired site to keep firing for its remaining
  // windows regardless of the trials above.
  if (burst_left_ > 0) {
    --burst_left_;
    const std::size_t b = static_cast<std::size_t>(burst_site_);
    if (window_trigger_[b] == 0) window_trigger_[b] = 1 + storm_rng_.below(depth);
  }
}

void FaultInjector::fire_plan(FaultSite site, hw::Cpu* cpu,
                              std::uint64_t visit) {
  // Single-shot: disarm before throwing so the rollback path, which walks
  // the same sites in reverse, cannot re-fire.
  armed_ = false;
  ++injected_;
  if (cpu != nullptr && plan_.latency != 0) cpu->charge(plan_.latency);
  MERC_COUNT("fault.injected");
#if MERCURY_OBS_ENABLED
  obs::registry().counter("fault.injected_at", fault_site_name(site)).inc();
  // Black box: the fault hit is the last thing the flight tail must explain,
  // stamped with the site, kind, visit ordinal, and the executing CPU.
  if (cpu != nullptr) {
    MERC_FLIGHT(*cpu, kFaultHit, fault_site_name(site),
                static_cast<std::uint64_t>(site),
                static_cast<std::uint64_t>(plan_.kind), visit);
  } else {
    obs::flight_recorder().record(0, obs::FlightType::kFaultHit,
                                  fault_site_name(site), 0,
                                  static_cast<std::uint64_t>(site),
                                  static_cast<std::uint64_t>(plan_.kind),
                                  visit);
  }
#endif
  util::log_warn("fault", "injecting ", plan_.describe());
  throw FaultInjected{site, plan_.kind, cpu != nullptr ? cpu->id() : 0u};
}

void FaultInjector::fire_storm(FaultSite site, hw::Cpu* cpu,
                               std::uint64_t visit) {
  const std::size_t idx = static_cast<std::size_t>(site);
  window_trigger_[idx] = 0;  // one fire per site per window
  ++storm_fires_;
  ++injected_;
  if (storm_.burst_windows > 1) {
    burst_left_ = storm_.burst_windows - 1;
    burst_site_ = site;
  }
  storm_.rate[idx] *= storm_.decay;
  if (storm_.max_fires != 0 && storm_fires_ >= storm_.max_fires)
    storm_active_ = false;
  if (cpu != nullptr && storm_.kind == FaultKind::kTimeout &&
      storm_.timeout_latency != 0)
    cpu->charge(storm_.timeout_latency);
  MERC_COUNT("fault.injected");
  MERC_COUNT("fault.storm.fires");
#if MERCURY_OBS_ENABLED
  obs::registry().counter("fault.injected_at", fault_site_name(site)).inc();
  if (cpu != nullptr) {
    MERC_FLIGHT(*cpu, kFaultHit, fault_site_name(site),
                static_cast<std::uint64_t>(site),
                static_cast<std::uint64_t>(storm_.kind), visit);
  } else {
    obs::flight_recorder().record(0, obs::FlightType::kFaultHit,
                                  fault_site_name(site), 0,
                                  static_cast<std::uint64_t>(site),
                                  static_cast<std::uint64_t>(storm_.kind),
                                  visit);
  }
#endif
  util::log_warn("fault", "storm firing at ", fault_site_name(site),
                 " (fire #", storm_fires_, ")");
  throw FaultInjected{site, storm_.kind, cpu != nullptr ? cpu->id() : 0u};
}

void FaultInjector::on_site(FaultSite site, hw::Cpu* cpu) {
  const std::size_t idx = static_cast<std::size_t>(site);
  const std::uint64_t n = ++visits_[idx];
  if (paused_) {
    if (storm_active_) ++window_visits_[idx];
    return;
  }
  if (armed_ && site == plan_.site && n == plan_.trigger_count)
    fire_plan(site, cpu, n);
  if (storm_active_) {
    const std::uint64_t wn = ++window_visits_[idx];
    if (window_trigger_[idx] != 0 && wn == window_trigger_[idx])
      fire_storm(site, cpu, wn);
  }
}

FaultInjector::PauseGuard::PauseGuard()
    : was_paused_(fault_injector().paused()) {
  fault_injector().set_paused(true);
}

FaultInjector::PauseGuard::~PauseGuard() {
  fault_injector().set_paused(was_paused_);
}

FaultInjector& fault_injector() {
  static FaultInjector instance;
  return instance;
}

FaultPlan random_fault_plan(util::Rng& rng) {
  FaultPlan plan;
  plan.site = static_cast<FaultSite>(rng.below(kNumFaultSites));
  // Bias toward early hits (most sites see one visit per switch) but reach
  // deep into the per-frame loops now and then.
  plan.trigger_count = rng.chance(0.5) ? 1 + rng.below(4)
                                       : 1 + rng.below(4096);
  if (plan.site == FaultSite::kStackFixup && rng.chance(0.5)) {
    plan.kind = FaultKind::kCorruptFrame;
  } else if (rng.chance(0.25)) {
    plan.kind = FaultKind::kTimeout;
    plan.latency = hw::us_to_cycles(50.0 + rng.uniform() * 450.0);
  }
  return plan;
}

}  // namespace mercury::core
