#include "core/mercury.hpp"

#include "util/assert.hpp"

namespace mercury::core {

Mercury::Mercury(hw::Machine& machine, MercuryConfig config)
    : machine_(machine), config_(std::move(config)) {
  // Pre-cache the VMM: warmed into its reserved region at boot (§4.1), so a
  // later attach is sub-millisecond instead of a multi-second VMM boot.
  hv_ = std::make_unique<vmm::Hypervisor>(machine_);
  hv_->warm_up();

  native_vo_ = std::make_unique<NativeVo>(machine_);
  driver_vo_ = std::make_unique<VirtualVo>(*hv_, VirtualVo::Role::kDriverDomain);
  guest_vo_ = std::make_unique<VirtualVo>(*hv_, VirtualVo::Role::kGuestDomain);
  // A Mercury-built kernel pays the VO dispatch costs in every mode.
  native_vo_->set_per_op_charge(pv::costs::kVoPerOpOverhead);
  driver_vo_->set_per_op_charge(pv::costs::kVoPerOpOverhead);
  guest_vo_->set_per_op_charge(pv::costs::kVoPerOpOverhead);

  kernel_ = std::make_unique<kernel::Kernel>(machine_, *native_vo_,
                                             config_.kernel_name);
  kernel_->set_vo_path_tax(pv::costs::kVoPathTax);

  // Grant the kernel everything except the VMM's reservation and a small
  // holdback; the unified layout reserves the VMM's PDEs in every address
  // space from the start (§3.2.2).
  hw::Pfn first = 0;
  std::size_t grant = machine_.frames().frames_free() > config_.holdback_frames
                          ? machine_.frames().frames_free() -
                                config_.holdback_frames
                          : machine_.frames().frames_free();
  if (config_.kernel_frames != 0)
    grant = std::min(grant, config_.kernel_frames);
  MERC_CHECK(machine_.frames().alloc_contiguous(grant, first));
  kernel_->boot(first, grant, hv_->vmm_pdes());
  machine_.install_trap_sink(kernel_.get());

  if (config_.switch_config.eager_page_tracking) {
    // Eager tracking needs a dom0 record + primed table before first attach.
    const vmm::DomainId dom = hv_->create_domain(
        config_.kernel_name, kernel_.get(), kernel_->base_pfn(),
        kernel_->pool().owned_count(), /*privileged=*/true,
        machine_.num_cpus());
    eager_vo_ = std::make_unique<EagerTrackingVo>(*native_vo_, *hv_, dom);
    eager_vo_->prime(machine_.cpu(0), *kernel_);
    kernel_->set_ops(*eager_vo_);
  }

  VirtObject& native_face =
      eager_vo_ ? static_cast<VirtObject&>(*eager_vo_)
                : static_cast<VirtObject&>(*native_vo_);
  engine_ = std::make_unique<SwitchEngine>(*kernel_, *hv_, native_face,
                                           *driver_vo_, *guest_vo_,
                                           config_.switch_config);
}

}  // namespace mercury::core
