// State-transfer functions for mode switches (paper §5.1.2).
//
// Three classes of state move between representations:
//   1. page-table pages: writable (native) <-> read-only + typed (virtual);
//   2. kernel segment privilege in every suspended thread's saved frame;
//   3. interrupt bindings: kernel IDT on hardware (native) <-> hypervisor
//      IDT on hardware with the kernel's table registered as the guest
//      trap table (virtual).
#pragma once

#include <vector>

#include "core/dirty_tracker.hpp"
#include "core/virtual_vo.hpp"
#include "hw/cpu.hpp"
#include "vmm/hypervisor.hpp"

namespace mercury::kernel {
class Kernel;
}

namespace mercury::core {

struct TransferStats {
  hw::Cycles page_info_cycles = 0;   // owner/type/count rebuild
  hw::Cycles protection_cycles = 0;  // PT writability flips + typing
  hw::Cycles fixup_cycles = 0;       // eager selector fixups (if enabled)
  hw::Cycles binding_cycles = 0;     // trap/descriptor table rebinding
};

/// Native -> virtual: adopt the running OS into the pre-cached VMM. When
/// `trust_page_info` (eager tracking) the expensive rebuild is skipped.
/// When `warm` is non-null (warm re-attach), the retained table is
/// reconstructed incrementally from `warm->rebuild` instead of a full
/// rebuild, and PTE revalidation is limited to tables in `warm->content`;
/// the caller has already checked eligibility and filtered both sets to
/// kernel-owned frames. Binds `vo` to the resulting domain.
TransferStats transfer_to_virtual(hw::Cpu& cpu, kernel::Kernel& k,
                                  vmm::Hypervisor& hv, VirtualVo& vo,
                                  bool trust_page_info, bool eager_fixup,
                                  const WarmSet* warm = nullptr);

/// Virtual -> native: release the OS from the VMM. With `retain_page_info`
/// the hypervisor's page-info table survives in the stale-but-retained
/// state that makes the next attach eligible for the warm path.
TransferStats transfer_to_native(hw::Cpu& cpu, kernel::Kernel& k,
                                 vmm::Hypervisor& hv, VirtualVo& vo,
                                 bool eager_fixup, bool retain_page_info = false);

}  // namespace mercury::core
