// Chaos-soak harness: drive hundreds of *supervised* attach/detach cycles
// under a fault storm while a workload runs, account availability, and emit
// a machine-checkable `mercury.soak.v1` verdict (the robustness analogue of
// the bench JSON artifacts — CI gates on it).
//
// The driver is kernel-timer based: a periodic pump submits the next switch
// request (alternating toward and away from the virtual mode) through the
// SwitchSupervisor whenever the previous one has resolved, so it composes
// with any workload that is simultaneously driving the same kernel. Every
// resolution updates outcome counters, the AvailabilityTracker (a committed
// switch is a short, accounted service interruption), and optionally the
// machine-state invariant checker.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/availability.hpp"
#include "cluster/fabric.hpp"
#include "core/switch_supervisor.hpp"
#include "obs/timeseries.hpp"
#include "util/rng.hpp"

namespace mercury::cluster {

/// Per-node rollup inside a fleet soak verdict (the `nodes[]` section of
/// mercury.soak.v1). Empty for single-machine soaks.
struct NodeSoakStats {
  std::string name;
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t quarantines = 0;
  double availability = 1.0;
  std::uint64_t interruptions = 0;
  std::uint64_t downtime_cycles = 0;
  std::uint64_t span_cycles = 0;
  // Pause-observatory rollup (this node's ledger; see obs/pause_ledger.hpp).
  // `pause_unattributed` must be 0 — an orphaned begin/end half is a
  // pairing bug, and the soak gate fails on it.
  std::uint64_t pause_intervals = 0;
  std::uint64_t pause_unattributed = 0;
  std::uint64_t pause_worst_cycles = 0;
  std::string pause_worst_cause = "none";
  std::string final_health = "healthy";
  std::string final_mode = "native";
};

/// Everything a soak run measures, flattened for the mercury.soak.v1
/// serializer. SoakDriver::report() fills the switch/health/availability
/// sections and quotes the storm regime as armed (from
/// FaultInjector::storm_config); the harness fills seed and workload
/// fields itself.
struct SoakReport {
  std::uint64_t seed = 0;
  std::size_t cpus = 0;
  std::uint64_t planned_cycles = 0;

  double storm_rate = 0.0;
  std::uint32_t storm_burst = 0;
  double storm_decay = 1.0;
  std::uint64_t storm_fires = 0;
  std::uint64_t storm_windows = 0;

  // Request outcomes. The counters cover every supervised request,
  // internal ones included; `unresolved` gates caller-submitted requests
  // only, so a supervisor-internal probe in flight at snapshot time does
  // not read as stranded.
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t failed_deadline = 0;
  std::uint64_t failed_attempts = 0;
  std::uint64_t failed_quarantined = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t unresolved = 0;  // must be 0: no stranded caller requests

  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t backoffs = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t probes = 0;
  std::string final_health = "healthy";

  std::uint64_t rollbacks = 0;
  std::uint64_t engine_cancels = 0;

  std::uint64_t invariant_checks = 0;
  std::uint64_t invariant_violations = 0;  // must be 0

  double availability = 1.0;
  std::uint64_t interruptions = 0;
  std::uint64_t downtime_cycles = 0;
  std::uint64_t span_cycles = 0;

  std::uint64_t workload_ops = 0;
  std::uint64_t workload_bytes = 0;
  std::uint64_t workload_corruptions = 0;  // must be 0

  // Run-wide pause rollup: the ambient ledger for single-machine soaks, the
  // per-node ledgers merged for fleet soaks. `pause_unattributed` must be 0.
  std::uint64_t pause_intervals = 0;
  std::uint64_t pause_unattributed = 0;
  std::uint64_t pause_worst_cycles = 0;
  std::string pause_worst_cause = "none";

  bool converged = false;  // every request terminal, service back up
  std::string final_mode = "native";

  /// Per-node rollups (cluster soaks only; single-machine reports leave it
  /// empty and the serializer omits the section).
  std::vector<NodeSoakStats> nodes;
};

/// The mercury.soak.v1 document (embeds the live obs metrics snapshot).
std::string soak_report_json(const SoakReport& r);

/// Serialize and write to `path`. Returns false on I/O failure.
bool write_soak_report(const SoakReport& r, const std::string& path);

struct SoakParams {
  /// Supervised switch requests to drive end-to-end.
  std::uint64_t cycles = 200;
  /// Pump cadence; a tick with the previous request still live just
  /// re-arms.
  double request_interval_ms = 3.0;
  /// The virtual mode to alternate with native.
  core::ExecMode virt_mode = core::ExecMode::kPartialVirtual;
  /// Per-request options forwarded to the supervisor.
  hw::Cycles deadline = 0;
  std::uint32_t max_attempts = 0;
  /// Run the machine-state invariant checker after every resolution
  /// (host cost only).
  bool check_invariants = true;
  /// Probability that each driver cycle enables the engine's warm
  /// re-attach before submitting (0 = leave the engine's flag alone).
  /// The flip schedule is drawn from `warm_seed`, so a soak replays its
  /// exact warm/cold interleaving from the seed line.
  double warm_reattach_rate = 0.0;
  std::uint64_t warm_seed = 0;
};

class SoakDriver {
 public:
  explicit SoakDriver(core::SwitchSupervisor& supervisor, SoakParams p = {});

  /// Arm the request pump. Non-blocking: the caller drives the kernel
  /// (directly or through a workload's own run loop).
  void start();
  /// All `cycles` driver requests have resolved.
  bool done() const { return resolved_ >= params_.cycles; }
  /// Convenience: start() if needed, then drive the kernel until done()
  /// or the budget runs out.
  bool run_to_completion(hw::Cycles budget);

  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t resolved() const { return resolved_; }
  std::uint64_t committed() const { return committed_; }
  std::uint64_t failed() const { return resolved_ - committed_; }
  std::uint64_t invariant_checks() const { return invariant_checks_; }
  std::uint64_t invariant_violations() const { return invariant_violations_; }
  AvailabilityTracker& availability() { return tracker_; }
  core::SwitchSupervisor& supervisor() { return sup_; }

  /// Report workload progress for the final report.
  void note_workload(std::uint64_t ops, std::uint64_t bytes,
                     std::uint64_t corruptions) {
    workload_ops_ = ops;
    workload_bytes_ = bytes;
    workload_corruptions_ = corruptions;
  }

  /// Snapshot the soak verdict (drivable any time; meaningful once done).
  SoakReport report(std::uint64_t seed) const;

 private:
  void arm_tick();
  void tick();
  void on_resolved(const core::SupervisedRequest& r);
  hw::Cycles now() const;

  core::SwitchSupervisor& sup_;
  kernel::Kernel& kernel_;
  SoakParams params_;

  bool started_ = false;
  bool finished_ = false;
  bool outstanding_ = false;
  std::uint64_t submitted_ = 0;
  std::uint64_t resolved_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t invariant_checks_ = 0;
  std::uint64_t invariant_violations_ = 0;
  std::uint64_t workload_ops_ = 0;
  std::uint64_t workload_bytes_ = 0;
  std::uint64_t workload_corruptions_ = 0;
  AvailabilityTracker tracker_;
  util::Rng warm_rng_;
  /// Timers capture a weak reference: one may survive the driver.
  std::shared_ptr<SoakDriver*> self_;
};

struct ClusterSoakParams {
  std::size_t nodes = 4;
  std::size_t cpus_per_node = 2;
  /// Cluster-wide switch waves to drive: each wave submits one supervised
  /// request per node (all toward the mode opposite the fleet's current
  /// one) and runs until every node resolved.
  std::uint64_t waves = 8;
  core::ExecMode virt_mode = core::ExecMode::kPartialVirtual;
  core::SupervisorConfig supervisor;
  std::uint64_t seed = 0;
  /// Idle dwell between waves, on every node's own clock. This is the
  /// service-up time the availability accounting measures interruptions
  /// against — without it the span is nothing but switch windows and
  /// availability reads near zero by construction.
  double wave_interval_ms = 5.0;
  /// Time-series sampling cadence on node 0's sim clock, and per-series
  /// ring capacity.
  double sample_interval_ms = 1.0;
  std::size_t sample_capacity = 256;
  /// co_step budget per wave.
  hw::Cycles wave_budget = 400 * hw::kCyclesPerMillisecond;
};

/// Fleet-scale soak: its own Fabric of `nodes` Mercury nodes, one
/// SwitchSupervisor per node, cluster-wide switch waves driven through
/// Fabric::co_step, per-node availability accounting, and a
/// TimeSeriesSampler producing per-node series on the sim clock. Each wave
/// is one causal trace: a root wave span, per-node fabric.msg spans, and
/// the per-node commit/crew spans link beneath them in the Chrome export.
///
/// Deterministic by construction: no fault storms, per-node supervisor
/// seeds derived from params.seed, and all sampled series read state owned
/// by this run — so the emitted mercury.timeseries.v1 is byte-identical
/// for identical params (tested).
class ClusterSoak {
 public:
  explicit ClusterSoak(ClusterSoakParams p = {});
  ~ClusterSoak();

  /// Drive all waves to completion. False if any wave exhausted its budget
  /// or left a request unresolved.
  bool run();

  Fabric& fabric() { return fabric_; }
  const obs::TimeSeriesSampler& sampler() const { return sampler_; }
  hw::Cycles sample_interval() const { return sample_interval_; }
  std::uint64_t waves_run() const { return waves_run_; }

  /// Fleet verdict: summed rollups + per-node sections.
  SoakReport report() const;
  /// The mercury.timeseries.v1 document for this run.
  std::string timeseries_json() const {
    return sampler_.to_json(sample_interval_);
  }

 private:
  struct NodeRt {
    Node* node = nullptr;
    std::unique_ptr<core::SwitchSupervisor> supervisor;
    AvailabilityTracker tracker;
    std::uint64_t submitted = 0;
    std::uint64_t committed = 0;
    std::uint64_t failed = 0;
    bool outstanding = false;
  };

  void arm_sampler();
  void run_wave();
  void dwell();
  void on_resolved(NodeRt& rt, const core::SupervisedRequest& r);

  ClusterSoakParams params_;
  Fabric fabric_;
  std::vector<std::unique_ptr<NodeRt>> nodes_;
  obs::TimeSeriesSampler sampler_;
  hw::Cycles sample_interval_ = 0;
  std::uint64_t waves_run_ = 0;
  bool all_resolved_ok_ = true;
  bool finished_ = false;
  /// Sampler timers capture a weak reference (one may outlive the soak).
  std::shared_ptr<ClusterSoak*> self_;
};

}  // namespace mercury::cluster
