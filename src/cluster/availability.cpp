#include "cluster/availability.hpp"

#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace mercury::cluster {

void AvailabilityTracker::service_down(hw::Cycles at, std::string cause) {
  if (!began_) {
    begin_ = at;
    began_ = true;
  }
  MERC_CHECK_MSG(!down_, "service_down while already down");
  down_ = true;
  current_ = ServiceInterruption{at, at, std::move(cause)};
}

void AvailabilityTracker::service_up(hw::Cycles at) {
  MERC_CHECK_MSG(down_, "service_up while already up");
  down_ = false;
  current_.ended = at;
  interruptions_.push_back(current_);
  end_ = at;
  MERC_COUNT("availability.interruptions");
  MERC_HIST("availability.interruption_cycles", current_.duration());
  MERC_GAUGE_SET("availability.total_downtime_us",
                 hw::cycles_to_us(total_downtime()));
}

void AvailabilityTracker::finish(hw::Cycles at) {
  if (!began_) begin_ = 0;
  began_ = true;
  if (down_) service_up(at);
  end_ = at;
  MERC_GAUGE_SET("availability.fraction", availability());
}

hw::Cycles AvailabilityTracker::total_downtime() const {
  hw::Cycles d = 0;
  for (const auto& i : interruptions_) d += i.duration();
  return d;
}

double AvailabilityTracker::availability() const {
  if (observation_span() == 0) return 1.0;
  return 1.0 - static_cast<double>(total_downtime()) /
                   static_cast<double>(observation_span());
}

double AvailabilityTracker::mtti_seconds() const {
  if (interruptions_.empty()) return 0.0;
  const double span_s = static_cast<double>(observation_span()) /
                        (hw::kCyclesPerMicrosecond * 1e6);
  return span_s / static_cast<double>(interruptions_.size());
}

}  // namespace mercury::cluster
