// Failure injection for dependability scenarios: sensor anomalies (the
// §6.5 failure-prediction signal), link failures, and node crashes.
#pragma once

#include <cstdint>

#include "cluster/fabric.hpp"

namespace mercury::cluster {

class FailureInjector {
 public:
  /// Arrange for the node's temperature sensor to report an over-threshold
  /// value at simulated time `at` (kernel-timer driven).
  static void schedule_overheat(Node& node, hw::Cycles at,
                                double temperature_c = 96.0);
  static void schedule_fan_failure(Node& node, hw::Cycles at);

  /// Hard-kill a node at time `at` (unpredicted failure).
  static void schedule_crash(Node& node, hw::Cycles at);

  /// Degrade the link between two nodes.
  static void set_link_loss(Fabric& fabric, Node& a, Node& b,
                            double drop_probability);
};

}  // namespace mercury::cluster
