#include "cluster/node.hpp"

namespace mercury::cluster {

Node::Node(std::string name, NodeConfig config)
    : name_(std::move(name)), config_(config),
      metrics_("node=" + name_) {
  hw::MachineConfig mc;
  mc.num_cpus = config_.cpus;
  mc.mem_kb = config_.mem_kb;
  mc.nic_addr = config_.addr;
  machine_ = std::make_unique<hw::Machine>(mc);
  machine_->nic().bind_irq(&machine_->interrupts(), 0);

  core::MercuryConfig cfg;
  cfg.kernel_frames = (config_.kernel_mem_kb * 1024) / hw::kPageSize;
  cfg.kernel_name = name_ + "-os";
  mercury_ = std::make_unique<core::Mercury>(*machine_, cfg);
  active_ = &mercury_->kernel();
}

obs::ProfBucket* Node::prof_bucket() {
  if (prof_bucket_ == nullptr)
    prof_bucket_ = obs::profiler().bucket("fabric.step." + name_);
  return prof_bucket_;
}

}  // namespace mercury::cluster
