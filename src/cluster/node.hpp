// A cluster node: a Machine running a Mercury (self-virtualizing) OS.
#pragma once

#include <memory>
#include <string>

#include "core/mercury.hpp"
#include "hw/machine.hpp"

namespace mercury::cluster {

struct NodeConfig {
  std::size_t cpus = 1;
  std::size_t mem_kb = 512 * 1024;
  std::size_t kernel_mem_kb = 128 * 1024;
  std::uint32_t addr = 0;  // 0 = assigned by the fabric
};

class Node {
 public:
  Node(std::string name, NodeConfig config);

  const std::string& name() const { return name_; }
  hw::Machine& machine() { return *machine_; }
  core::Mercury& mercury() { return *mercury_; }

  /// The OS whose stepper drives this node. Initially the node's own
  /// Mercury kernel; after an inbound migration, the migrated guest.
  kernel::Kernel& active() { return *active_; }
  void set_active(kernel::Kernel* k) { active_ = k; }
  bool hosts_foreign_guest() const {
    return active_ != &mercury_->kernel();
  }

  // --- failure state ---
  bool failed() const { return failed_; }
  void fail() { failed_ = true; }
  void repair() { failed_ = false; }

 private:
  std::string name_;
  NodeConfig config_;
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<core::Mercury> mercury_;
  kernel::Kernel* active_ = nullptr;
  bool failed_ = false;
};

}  // namespace mercury::cluster
