// A cluster node: a Machine running a Mercury (self-virtualizing) OS.
#pragma once

#include <memory>
#include <string>

#include "core/mercury.hpp"
#include "hw/machine.hpp"
#include "obs/metrics.hpp"
#include "obs/pause_ledger.hpp"
#include "obs/profiler.hpp"

namespace mercury::cluster {

struct NodeConfig {
  std::size_t cpus = 1;
  std::size_t mem_kb = 512 * 1024;
  std::size_t kernel_mem_kb = 128 * 1024;
  std::uint32_t addr = 0;  // 0 = assigned by the fabric
};

class Node {
 public:
  Node(std::string name, NodeConfig config);

  const std::string& name() const { return name_; }
  hw::Machine& machine() { return *machine_; }
  core::Mercury& mercury() { return *mercury_; }

  /// The OS whose stepper drives this node. Initially the node's own
  /// Mercury kernel; after an inbound migration, the migrated guest.
  kernel::Kernel& active() { return *active_; }
  void set_active(kernel::Kernel* k) { active_ = k; }
  bool hosts_foreign_guest() const {
    return active_ != &mercury_->kernel();
  }

  // --- observability ---
  /// Trace attribution id (Chrome export pid). 0 until the fabric assigns
  /// index+1 in add_node; standalone Nodes stay unscoped.
  std::uint32_t trace_node() const { return trace_node_; }
  void set_trace_node(std::uint32_t id) { trace_node_ = id; }

  /// This node's label-bound view of the global metrics registry: every
  /// instrument created through it carries "node=<name>", so fleet soaks
  /// report per-node series instead of one blended namespace.
  obs::ScopedMetrics& metrics() { return metrics_; }
  const std::string& obs_label() const { return metrics_.label(); }

  /// Profiler bucket charged for this node's share of fabric dispatch
  /// (created lazily; stable for the node's lifetime).
  obs::ProfBucket* prof_bucket();

  /// This node's unavailability ledger. Fabric::step_node installs it as
  /// the ambient pause ledger while this node runs, so fleet soaks get
  /// per-node pause attribution instead of one blended ledger.
  obs::PauseLedger& pauses() { return pauses_; }
  const obs::PauseLedger& pauses() const { return pauses_; }

  // --- failure state ---
  bool failed() const { return failed_; }
  void fail() { failed_ = true; }
  void repair() { failed_ = false; }

 private:
  std::string name_;
  NodeConfig config_;
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<core::Mercury> mercury_;
  kernel::Kernel* active_ = nullptr;
  std::uint32_t trace_node_ = 0;
  obs::ScopedMetrics metrics_;
  obs::ProfBucket* prof_bucket_ = nullptr;
  obs::PauseLedger pauses_;
  bool failed_ = false;
};

}  // namespace mercury::cluster
