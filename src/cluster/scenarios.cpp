#include "cluster/scenarios.hpp"

#include "kernel/syscalls.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mercury::cluster {

using core::ExecMode;
using core::Mercury;

namespace {

/// Move a self-virtualized OS (full-virtual guest of src's hypervisor) to
/// dst's hypervisor and rebind its VO plumbing. dst must be partial-virtual.
vmm::MigrationStats migrate_guest(Mercury& src, Mercury& dst) {
  const vmm::DomainId dom = src.guest_vo().dom();
  vmm::MigrationStats stats =
      vmm::LiveMigration::run(src.hypervisor(), dom, dst.hypervisor());
  if (!stats.success) return stats;
  // The migrated kernel now runs against the destination's hypervisor.
  dst.guest_vo().bind(stats.new_domain);
  src.kernel().set_ops(dst.guest_vo());
  return stats;
}

}  // namespace

MaintenanceReport online_maintenance(
    Node& src, Node& dst,
    const std::function<void(hw::Machine&)>& maintenance) {
  MaintenanceReport report;
  const hw::Cycles t0 = src.machine().max_cpu_time();

  // Receiver first: partial-virtual so it can host a guest (paper §6.3).
  if (!dst.mercury().switch_to(ExecMode::kPartialVirtual)) return report;
  // The machine to maintain: full-virtual so its OS becomes migratable.
  if (!src.mercury().switch_to(ExecMode::kFullVirtual)) return report;

  report.out = migrate_guest(src.mercury(), dst.mercury());
  if (!report.out.success) return report;
  src.set_active(&dst.mercury().kernel());  // src machine is now OS-less
  dst.set_active(&src.mercury().kernel());  // dst hosts the workload OS

  // Hardware maintenance on the now-empty source machine.
  maintenance(src.machine());

  // Bring the OS home: src hypervisor is still active and can receive.
  vmm::MigrationStats back = vmm::LiveMigration::run(
      dst.mercury().hypervisor(), dst.mercury().guest_vo().dom(),
      src.mercury().hypervisor());
  if (!back.success) return report;
  report.back = back;
  src.mercury().guest_vo().bind(back.new_domain);
  src.mercury().kernel().set_ops(src.mercury().guest_vo());
  src.set_active(&src.mercury().kernel());
  dst.set_active(&dst.mercury().kernel());

  // Full speed again on both nodes.
  if (!src.mercury().switch_to(ExecMode::kNative)) return report;
  if (!dst.mercury().switch_to(ExecMode::kNative)) return report;

  report.total_cycles = src.machine().max_cpu_time() - t0;
  report.success = true;
  return report;
}

EvacuationReport evacuate(Node& src, Node& dst) {
  EvacuationReport report;
  report.predicted_at = src.machine().max_cpu_time();

  if (!dst.mercury().switch_to(ExecMode::kPartialVirtual)) return report;
  if (!src.mercury().switch_to(ExecMode::kFullVirtual)) return report;

  report.migration = migrate_guest(src.mercury(), dst.mercury());
  if (!report.migration.success) return report;
  src.set_active(&dst.mercury().kernel());
  dst.set_active(&src.mercury().kernel());

  report.safe_at = dst.machine().max_cpu_time();
  report.success = true;
  return report;
}

UpdateReport live_update(Mercury& mercury, const KernelPatch& patch) {
  UpdateReport report;
  hw::Cpu& cpu = mercury.machine().cpu(0);
  const hw::Cycles t0 = cpu.now();

  if (!mercury.switch_to(ExecMode::kPartialVirtual)) return report;
  report.attach_cycles = mercury.engine().stats().last_attach_cycles;

  // The attached VMM quiesces the kernel (the switch's rendezvous already
  // parked every CPU) and applies the update.
  const hw::Cycles p0 = cpu.now();
  cpu.charge(patch.patch_work);
  patch.apply_fn(mercury.kernel());
  report.patch_cycles = cpu.now() - p0;
  util::log_info("scenario", "live update applied: ", patch.description);

  if (!mercury.switch_to(ExecMode::kNative)) return report;
  report.detach_cycles = mercury.engine().stats().last_detach_cycles;
  report.total_cycles = cpu.now() - t0;
  report.success = true;
  return report;
}

HealReport self_heal(Mercury& mercury) {
  HealReport report;
  hw::Cpu& cpu = mercury.machine().cpu(0);
  const hw::Cycles t0 = cpu.now();
  vmm::Hypervisor& hv = mercury.hypervisor();

  const std::uint64_t healed_before = hv.stats().entries_healed;
  hv.set_heal_mode(true);
  // Adoption validates every page table; healing mode repairs instead of
  // crashing (paper §6.2: the VMM "repairs the tainted state").
  if (!mercury.switch_to(ExecMode::kPartialVirtual)) {
    hv.set_heal_mode(false);
    return report;
  }
  if (!mercury.switch_to(ExecMode::kNative)) {
    hv.set_heal_mode(false);
    return report;
  }
  hv.set_heal_mode(false);

  report.ran = true;
  report.entries_healed = hv.stats().entries_healed - healed_before;
  report.total_cycles = cpu.now() - t0;
  return report;
}

bool inject_pte_corruption(Mercury& mercury, kernel::Pid pid) {
  kernel::Kernel& k = mercury.kernel();
  kernel::Task* t = k.find_task(pid);
  if (t == nullptr || !t->aspace) return false;
  vmm::Hypervisor& hv = mercury.hypervisor();

  for (const auto& vma : t->aspace->vmas()) {
    for (hw::VirtAddr va = vma.start; va < vma.end; va += hw::kPageSize) {
      const hw::Pfn l1 = t->aspace->l1_for_pde(hw::pde_index(va));
      if (l1 == 0) continue;
      const hw::PhysAddr pte_addr = hw::addr_of(l1) + hw::pte_index(va) * 4;
      hw::Pte pte{k.machine().memory().read_u32(pte_addr)};
      if (!pte.present()) continue;
      // Taint: point the mapping at a hypervisor-owned frame (a fault/bug
      // scribbled over the page table).
      pte.set_pfn(hv.reserved_first());
      k.machine().memory().write_u32(pte_addr, pte.raw);
      for (std::size_t c = 0; c < k.machine().num_cpus(); ++c)
        k.machine().cpu(c).tlb().flush_global();
      return true;
    }
  }
  return false;
}

CheckpointReport checkpoint_os(Mercury& mercury) {
  CheckpointReport report;
  hw::Cpu& cpu = mercury.machine().cpu(0);
  const hw::Cycles t0 = cpu.now();
  MERC_CHECK(mercury.switch_to(ExecMode::kPartialVirtual));
  report.snapshot = vmm::Checkpointer::take(cpu, mercury.hypervisor(),
                                            mercury.driver_vo().dom());
  MERC_CHECK(mercury.switch_to(ExecMode::kNative));
  report.total_cycles = cpu.now() - t0;
  return report;
}

hw::Cycles restore_os(Mercury& mercury, const vmm::Snapshot& snapshot) {
  hw::Cpu& cpu = mercury.machine().cpu(0);
  const hw::Cycles t0 = cpu.now();
  MERC_CHECK(mercury.switch_to(ExecMode::kPartialVirtual));
  vmm::Checkpointer::restore(cpu, mercury.hypervisor(), snapshot);
  MERC_CHECK(mercury.switch_to(ExecMode::kNative));
  return cpu.now() - t0;
}

}  // namespace mercury::cluster
