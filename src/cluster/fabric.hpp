// The cluster fabric: nodes + links + a conservative multi-kernel stepper.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "cluster/node.hpp"
#include "hw/devices/nic.hpp"

namespace mercury::cluster {

class Fabric {
 public:
  /// Add a node; its NIC address defaults to 10.0.0.<index+1>.
  Node& add_node(const std::string& name, NodeConfig config = {});

  Node& node(std::size_t i) { return *nodes_.at(i); }
  std::size_t size() const { return nodes_.size(); }

  /// Wire two nodes point-to-point (our switch model: one link per pair).
  hw::Link& connect(Node& a, Node& b, hw::Link::Params params = {});
  hw::Link* link_between(Node& a, Node& b);

  /// Step every non-failed node's active kernel conservatively (earliest
  /// clock first, idle advancement clamped by the global horizon) until
  /// pred() holds or the budget is exhausted.
  bool co_step(const std::function<bool()>& pred, hw::Cycles budget);

  /// Latest clock across the cluster (the fabric's wall time).
  hw::Cycles now() const;

 private:
  /// Step one node's active kernel with observability attribution: a
  /// TraceNodeScope so everything it records lands under its Chrome pid,
  /// and a ProfScope charging its fabric-dispatch bucket.
  static bool step_node(Node& n);

  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<std::pair<Node*, Node*>, std::unique_ptr<hw::Link>> links_;
};

}  // namespace mercury::cluster
