#include "cluster/fabric.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace mercury::cluster {

Node& Fabric::add_node(const std::string& name, NodeConfig config) {
  if (config.addr == 0)
    config.addr = 0x0A000001 + static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(name, config));
  // Trace-node ids are 1-based: 0 stays "unscoped single-machine".
  nodes_.back()->set_trace_node(static_cast<std::uint32_t>(nodes_.size()));
  return *nodes_.back();
}

bool Fabric::step_node(Node& n) {
#if MERCURY_OBS_ENABLED
  obs::TraceNodeScope node_scope(n.trace_node());
  obs::ProfScope prof_scope(n.prof_bucket(), &n.machine().cpu(0));
  // Pause intervals recorded while this node runs land in its own ledger,
  // so nodes[] rollups attribute unavailability per node.
  obs::PauseLedgerScope pause_scope(n.pauses());
#endif
  return n.active().step();
}

hw::Link& Fabric::connect(Node& a, Node& b, hw::Link::Params params) {
  auto key = std::make_pair(std::min(&a, &b), std::max(&a, &b));
  auto link = std::make_unique<hw::Link>(params);
  link->attach(&a.machine().nic(), &b.machine().nic());
  auto& slot = links_[key];
  slot = std::move(link);
  return *slot;
}

hw::Link* Fabric::link_between(Node& a, Node& b) {
  auto key = std::make_pair(std::min(&a, &b), std::max(&a, &b));
  auto it = links_.find(key);
  return it == links_.end() ? nullptr : it->second.get();
}

hw::Cycles Fabric::now() const {
  hw::Cycles t = 0;
  for (const auto& n : nodes_)
    t = std::max(t, n->machine().max_cpu_time());
  return t;
}

bool Fabric::co_step(const std::function<bool()>& pred, hw::Cycles budget) {
  constexpr hw::Cycles kLookahead = 20 * hw::kCyclesPerMicrosecond;
  hw::Cycles start = ~hw::Cycles{0};
  for (auto& n : nodes_)
    if (!n->failed())
      start = std::min(start, n->active().earliest_cpu_time());

  while (!pred()) {
    // Earliest live kernel steps, clamped to the runner-up's horizon.
    Node* earliest = nullptr;
    Node* runner_up = nullptr;
    for (auto& n : nodes_) {
      if (n->failed()) continue;
      if (earliest == nullptr || n->active().earliest_cpu_time() <
                                     earliest->active().earliest_cpu_time()) {
        runner_up = earliest;
        earliest = n.get();
      } else if (runner_up == nullptr ||
                 n->active().earliest_cpu_time() <
                     runner_up->active().earliest_cpu_time()) {
        runner_up = n.get();
      }
    }
    MERC_CHECK_MSG(earliest != nullptr, "co_step with no live nodes");

    kernel::Kernel& k = earliest->active();
    if (runner_up != nullptr)
      k.set_idle_clamp(runner_up->active().earliest_cpu_time() + kLookahead);
    const bool progressed = step_node(*earliest);
    k.set_idle_clamp(0);
    if (!progressed) {
      bool any = false;
      for (auto& n : nodes_) {
        if (n->failed() || n.get() == earliest) continue;
        if (step_node(*n)) {
          any = true;
          break;
        }
      }
      if (!any) {
        if (pred()) return true;
        // Everyone parked: release the earliest past its clamp.
        k.advance_all_cpus_to(
            (runner_up ? runner_up->active().earliest_cpu_time() : k.earliest_cpu_time()) +
            kLookahead);
        if (!step_node(*earliest)) return pred();
      }
    }

    hw::Cycles now_max = 0;
    for (auto& n : nodes_)
      if (!n->failed())
        now_max = std::max(now_max, n->active().earliest_cpu_time());
    if (now_max - start > budget) return false;
  }
  return true;
}

}  // namespace mercury::cluster
