// The paper's §6 usage scenarios, as reusable orchestration functions:
//   §6.1 checkpoint/restart     §6.2 self-healing
//   §6.3 online hw maintenance  §6.4 live kernel update
//   §6.5 HPC failure-prediction evacuation
#pragma once

#include <functional>
#include <string>

#include "cluster/availability.hpp"
#include "cluster/fabric.hpp"
#include "vmm/checkpoint.hpp"
#include "vmm/migrate.hpp"

namespace mercury::cluster {

// --- §6.3 online hardware maintenance -----------------------------------------

struct MaintenanceReport {
  bool success = false;
  vmm::MigrationStats out;
  vmm::MigrationStats back;
  hw::Cycles total_cycles = 0;
  /// Application-visible downtime: the two stop-and-copy windows.
  hw::Cycles service_downtime() const {
    return out.downtime_cycles + back.downtime_cycles;
  }
};

/// Evacuate src's OS to dst, run `maintenance` against the (now idle) src
/// machine, bring the OS home, and drop back to native mode.
MaintenanceReport online_maintenance(
    Node& src, Node& dst,
    const std::function<void(hw::Machine&)>& maintenance);

// --- §6.5 failure-prediction evacuation -----------------------------------------

struct EvacuationReport {
  bool success = false;
  hw::Cycles predicted_at = 0;
  hw::Cycles safe_at = 0;  // guest fully running on the healthy node
  vmm::MigrationStats migration;
  hw::Cycles prediction_to_safety() const { return safe_at - predicted_at; }
};

/// React to a failure prediction on src: self-virtualize to full-virtual and
/// live-migrate the OS to dst (which self-virtualizes to partial-virtual to
/// receive it). Call once sensors predict failure.
EvacuationReport evacuate(Node& src, Node& dst);

// --- §6.4 live kernel update ------------------------------------------------------

struct KernelPatch {
  std::string description;
  std::function<void(kernel::Kernel&)> apply_fn;
  hw::Cycles patch_work = 150 * hw::kCyclesPerMicrosecond;  // redirection setup
};

struct UpdateReport {
  bool success = false;
  hw::Cycles attach_cycles = 0;
  hw::Cycles patch_cycles = 0;
  hw::Cycles detach_cycles = 0;
  hw::Cycles total_cycles = 0;
};

/// LUCOS-style live update, but with the VMM attached only for the patch
/// window: attach -> quiesce & apply -> detach.
UpdateReport live_update(core::Mercury& mercury, const KernelPatch& patch);

// --- §6.2 self-healing ---------------------------------------------------------------

struct HealReport {
  bool ran = false;
  std::uint64_t entries_healed = 0;
  hw::Cycles total_cycles = 0;
};

/// Attach the VMM in healing mode: table validation repairs tainted entries
/// instead of crashing; then detach.
HealReport self_heal(core::Mercury& mercury);

/// Test/demo hook: corrupt one present user PTE of `pid` so it points at a
/// hypervisor-owned frame (the kind of kernel-state taint §6.2 targets).
/// Returns true if an entry was corrupted.
bool inject_pte_corruption(core::Mercury& mercury, kernel::Pid pid);

// --- §6.1 checkpoint / restart --------------------------------------------------------

struct CheckpointReport {
  vmm::Snapshot snapshot;
  hw::Cycles total_cycles = 0;
};

/// Attach, snapshot the whole OS domain, detach.
CheckpointReport checkpoint_os(core::Mercury& mercury);

/// Attach, restore the snapshot into the OS domain, detach.
hw::Cycles restore_os(core::Mercury& mercury, const vmm::Snapshot& snapshot);

}  // namespace mercury::cluster
