#include "cluster/soak.hpp"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <sstream>

#include "core/fault_inject.hpp"
#include "core/invariants.hpp"
#include "obs/metrics.hpp"

namespace mercury::cluster {

std::string soak_report_json(const SoakReport& r) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"mercury.soak.v1\",\n";
  os << "  \"seed\": " << r.seed << ",\n";
  os << "  \"cpus\": " << r.cpus << ",\n";
  os << "  \"planned_cycles\": " << r.planned_cycles << ",\n";
  os << "  \"storm\": {\"rate\": " << r.storm_rate
     << ", \"burst\": " << r.storm_burst << ", \"decay\": " << r.storm_decay
     << ", \"fires\": " << r.storm_fires
     << ", \"windows\": " << r.storm_windows << "},\n";
  os << "  \"requests\": {\"submitted\": " << r.submitted
     << ", \"committed\": " << r.committed
     << ", \"failed_deadline\": " << r.failed_deadline
     << ", \"failed_attempts\": " << r.failed_attempts
     << ", \"failed_quarantined\": " << r.failed_quarantined
     << ", \"cancelled\": " << r.cancelled
     << ", \"unresolved\": " << r.unresolved << "},\n";
  os << "  \"supervisor\": {\"attempts\": " << r.attempts
     << ", \"retries\": " << r.retries << ", \"backoffs\": " << r.backoffs
     << ", \"quarantines\": " << r.quarantines
     << ", \"recoveries\": " << r.recoveries << ", \"probes\": " << r.probes
     << ", \"final_health\": \"" << r.final_health << "\"},\n";
  os << "  \"engine\": {\"rollbacks\": " << r.rollbacks
     << ", \"cancels\": " << r.engine_cancels << "},\n";
  os << "  \"invariants\": {\"checks\": " << r.invariant_checks
     << ", \"violations\": " << r.invariant_violations << "},\n";
  os << "  \"availability\": {\"fraction\": " << r.availability
     << ", \"interruptions\": " << r.interruptions
     << ", \"downtime_cycles\": " << r.downtime_cycles
     << ", \"span_cycles\": " << r.span_cycles << "},\n";
  os << "  \"workload\": {\"ops\": " << r.workload_ops
     << ", \"bytes\": " << r.workload_bytes
     << ", \"corruptions\": " << r.workload_corruptions << "},\n";
  os << "  \"converged\": " << (r.converged ? "true" : "false") << ",\n";
  os << "  \"final_mode\": \"" << r.final_mode << "\",\n";
  os << "  \"metrics\": " << obs::to_json(obs::snapshot()) << "\n";
  os << "}\n";
  return os.str();
}

bool write_soak_report(const SoakReport& r, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << soak_report_json(r);
  return static_cast<bool>(out);
}

SoakDriver::SoakDriver(core::SwitchSupervisor& supervisor, SoakParams p)
    : sup_(supervisor),
      kernel_(supervisor.engine().kernel()),
      params_(p),
      self_(std::make_shared<SoakDriver*>(this)) {
  if (params_.cycles == 0) params_.cycles = 1;
}

hw::Cycles SoakDriver::now() const {
  return kernel_.machine().cpu(0).now();
}

void SoakDriver::start() {
  if (started_) return;
  started_ = true;
  arm_tick();
}

void SoakDriver::arm_tick() {
  std::weak_ptr<SoakDriver*> weak = self_;
  kernel_.add_timer(
      now() + hw::us_to_cycles(params_.request_interval_ms * 1000.0),
      [weak] {
        const auto locked = weak.lock();
        if (locked) (**locked).tick();
      });
}

void SoakDriver::tick() {
  if (done()) return;  // on_resolved finished the accounting
  if (!outstanding_ && submitted_ < params_.cycles) {
    // Alternate: whatever mode the machine settled in, ask for the other
    // one — a soak cycle is one supervised attach or detach end-to-end.
    const core::ExecMode target =
        sup_.engine().mode() == core::ExecMode::kNative
            ? params_.virt_mode
            : core::ExecMode::kNative;
    core::RequestOptions opts;
    opts.deadline = params_.deadline;
    opts.max_attempts = params_.max_attempts;
    ++submitted_;
    outstanding_ = true;
    std::weak_ptr<SoakDriver*> weak = self_;
    sup_.submit(target, opts, [weak](const core::SupervisedRequest& r) {
      const auto locked = weak.lock();
      if (locked) (**locked).on_resolved(r);
    });
  }
  if (!done()) arm_tick();
}

void SoakDriver::on_resolved(const core::SupervisedRequest& r) {
  outstanding_ = false;
  ++resolved_;
  if (r.state == core::RequestState::kCommitted) {
    ++committed_;
    // A committed switch is a service interruption as long as the actual
    // transfer (the machine was rendezvoused and not running the workload).
    if (r.attempts > 0) {
      const core::SwitchStats& es = sup_.engine().stats();
      const hw::Cycles window = r.target == core::ExecMode::kNative
                                    ? es.last_detach_cycles
                                    : es.last_attach_cycles;
      if (window > 0 && r.resolved_at > window) {
        tracker_.service_down(r.resolved_at - window,
                              r.target == core::ExecMode::kNative
                                  ? "switch.detach"
                                  : "switch.attach");
        tracker_.service_up(r.resolved_at);
      }
    }
  }
  if (params_.check_invariants) {
    ++invariant_checks_;
    const core::InvariantReport rep =
        core::check_machine_invariants(sup_.engine());
    if (!rep.ok()) ++invariant_violations_;
  }
  if (done() && !finished_) {
    finished_ = true;
    tracker_.finish(now());
  }
}

bool SoakDriver::run_to_completion(hw::Cycles budget) {
  start();
  return kernel_.run_until([this] { return done(); }, budget);
}

SoakReport SoakDriver::report(std::uint64_t seed) const {
  SoakReport r;
  r.seed = seed;
  r.cpus = kernel_.machine().num_cpus();
  r.planned_cycles = params_.cycles;

  // Quote the storm as armed, not the live state: fire_storm() decays the
  // per-site rates, and the artifact must record the regime the run was
  // seeded with. The rate is the max across sites (uniform storms put the
  // same rate everywhere).
  const core::FaultInjector& fi = core::fault_injector();
  const core::FaultStorm& storm = fi.storm_config();
  r.storm_rate = *std::max_element(std::begin(storm.rate),
                                   std::end(storm.rate));
  r.storm_burst = storm.burst_windows;
  r.storm_decay = storm.decay;
  r.storm_fires = fi.storm_fires();
  r.storm_windows = fi.storm_windows();

  const core::SupervisorStats& ss = sup_.stats();
  r.submitted = ss.submitted;
  r.committed = ss.committed;
  r.failed_deadline = ss.failed_deadline;
  r.failed_attempts = ss.failed_attempts;
  r.failed_quarantined = ss.failed_quarantined;
  r.cancelled = ss.cancelled;
  // The stranded-request gate covers caller-submitted requests only: a
  // supervisor-internal probe or quarantine detach legitimately in flight
  // at snapshot time is scheduled work, not a stranded request.
  r.unresolved = 0;
  for (const core::SupervisedRequest& q : sup_.requests())
    if (!q.internal && !core::request_state_terminal(q.state)) ++r.unresolved;
  r.attempts = ss.attempts;
  r.retries = ss.retries;
  r.backoffs = ss.backoffs;
  r.quarantines = ss.quarantines;
  r.recoveries = ss.recoveries;
  r.probes = ss.probes;
  r.final_health = core::supervisor_health_name(sup_.health());

  r.rollbacks = sup_.engine().stats().rollbacks;
  r.engine_cancels = sup_.engine().stats().cancels;
  r.invariant_checks = invariant_checks_;
  r.invariant_violations = invariant_violations_;

  r.availability = tracker_.availability();
  r.interruptions = tracker_.interruptions().size();
  r.downtime_cycles = tracker_.total_downtime();
  r.span_cycles = tracker_.observation_span();

  r.workload_ops = workload_ops_;
  r.workload_bytes = workload_bytes_;
  r.workload_corruptions = workload_corruptions_;

  r.converged = done() && r.unresolved == 0 && !tracker_.is_down();
  r.final_mode = core::exec_mode_name(sup_.engine().mode());
  return r;
}

}  // namespace mercury::cluster
