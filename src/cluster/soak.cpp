#include "cluster/soak.hpp"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <sstream>

#include "core/fault_inject.hpp"
#include "core/invariants.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace mercury::cluster {

std::string soak_report_json(const SoakReport& r) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"mercury.soak.v1\",\n";
  os << "  \"seed\": " << r.seed << ",\n";
  os << "  \"cpus\": " << r.cpus << ",\n";
  os << "  \"planned_cycles\": " << r.planned_cycles << ",\n";
  os << "  \"storm\": {\"rate\": " << r.storm_rate
     << ", \"burst\": " << r.storm_burst << ", \"decay\": " << r.storm_decay
     << ", \"fires\": " << r.storm_fires
     << ", \"windows\": " << r.storm_windows << "},\n";
  os << "  \"requests\": {\"submitted\": " << r.submitted
     << ", \"committed\": " << r.committed
     << ", \"failed_deadline\": " << r.failed_deadline
     << ", \"failed_attempts\": " << r.failed_attempts
     << ", \"failed_quarantined\": " << r.failed_quarantined
     << ", \"cancelled\": " << r.cancelled
     << ", \"unresolved\": " << r.unresolved << "},\n";
  os << "  \"supervisor\": {\"attempts\": " << r.attempts
     << ", \"retries\": " << r.retries << ", \"backoffs\": " << r.backoffs
     << ", \"quarantines\": " << r.quarantines
     << ", \"recoveries\": " << r.recoveries << ", \"probes\": " << r.probes
     << ", \"final_health\": \"" << r.final_health << "\"},\n";
  os << "  \"engine\": {\"rollbacks\": " << r.rollbacks
     << ", \"cancels\": " << r.engine_cancels << "},\n";
  os << "  \"invariants\": {\"checks\": " << r.invariant_checks
     << ", \"violations\": " << r.invariant_violations << "},\n";
  os << "  \"availability\": {\"fraction\": " << r.availability
     << ", \"interruptions\": " << r.interruptions
     << ", \"downtime_cycles\": " << r.downtime_cycles
     << ", \"span_cycles\": " << r.span_cycles << "},\n";
  os << "  \"workload\": {\"ops\": " << r.workload_ops
     << ", \"bytes\": " << r.workload_bytes
     << ", \"corruptions\": " << r.workload_corruptions << "},\n";
  os << "  \"pause\": {\"intervals\": " << r.pause_intervals
     << ", \"unattributed\": " << r.pause_unattributed
     << ", \"worst_cycles\": " << r.pause_worst_cycles
     << ", \"worst_cause\": \"" << r.pause_worst_cause << "\"},\n";
  os << "  \"converged\": " << (r.converged ? "true" : "false") << ",\n";
  os << "  \"final_mode\": \"" << r.final_mode << "\",\n";
  if (!r.nodes.empty()) {
    os << "  \"nodes\": [";
    for (std::size_t i = 0; i < r.nodes.size(); ++i) {
      const NodeSoakStats& n = r.nodes[i];
      os << (i ? ",\n    {" : "\n    {") << "\"name\": \"" << n.name
         << "\", \"submitted\": " << n.submitted
         << ", \"committed\": " << n.committed << ", \"failed\": " << n.failed
         << ", \"retries\": " << n.retries
         << ", \"quarantines\": " << n.quarantines
         << ", \"availability\": " << n.availability
         << ", \"interruptions\": " << n.interruptions
         << ", \"downtime_cycles\": " << n.downtime_cycles
         << ", \"span_cycles\": " << n.span_cycles
         << ", \"pause_intervals\": " << n.pause_intervals
         << ", \"pause_unattributed\": " << n.pause_unattributed
         << ", \"pause_worst_cycles\": " << n.pause_worst_cycles
         << ", \"pause_worst_cause\": \"" << n.pause_worst_cause
         << "\", \"final_health\": \"" << n.final_health
         << "\", \"final_mode\": \"" << n.final_mode << "\"}";
    }
    os << "\n  ],\n";
  }
  os << "  \"metrics\": " << obs::to_json(obs::snapshot()) << "\n";
  os << "}\n";
  return os.str();
}

bool write_soak_report(const SoakReport& r, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << soak_report_json(r);
  return static_cast<bool>(out);
}

SoakDriver::SoakDriver(core::SwitchSupervisor& supervisor, SoakParams p)
    : sup_(supervisor),
      kernel_(supervisor.engine().kernel()),
      params_(p),
      warm_rng_(p.warm_seed),
      self_(std::make_shared<SoakDriver*>(this)) {
  if (params_.cycles == 0) params_.cycles = 1;
}

hw::Cycles SoakDriver::now() const {
  return kernel_.machine().cpu(0).now();
}

void SoakDriver::start() {
  if (started_) return;
  started_ = true;
  arm_tick();
}

void SoakDriver::arm_tick() {
  std::weak_ptr<SoakDriver*> weak = self_;
  kernel_.add_timer(
      now() + hw::us_to_cycles(params_.request_interval_ms * 1000.0),
      [weak] {
        const auto locked = weak.lock();
        if (locked) (**locked).tick();
      });
}

void SoakDriver::tick() {
  if (done()) return;  // on_resolved finished the accounting
  if (!outstanding_ && submitted_ < params_.cycles) {
    // Alternate: whatever mode the machine settled in, ask for the other
    // one — a soak cycle is one supervised attach or detach end-to-end.
    const core::ExecMode target =
        sup_.engine().mode() == core::ExecMode::kNative
            ? params_.virt_mode
            : core::ExecMode::kNative;
    core::RequestOptions opts;
    opts.deadline = params_.deadline;
    opts.max_attempts = params_.max_attempts;
    // Flip warm re-attach per cycle so a soak interleaves warm and cold
    // attaches (and retaining and plain detaches) under the same storm.
    if (params_.warm_reattach_rate > 0.0)
      sup_.engine().set_warm_reattach(
          warm_rng_.chance(params_.warm_reattach_rate));
    ++submitted_;
    outstanding_ = true;
    std::weak_ptr<SoakDriver*> weak = self_;
    sup_.submit(target, opts, [weak](const core::SupervisedRequest& r) {
      const auto locked = weak.lock();
      if (locked) (**locked).on_resolved(r);
    });
  }
  if (!done()) arm_tick();
}

void SoakDriver::on_resolved(const core::SupervisedRequest& r) {
  outstanding_ = false;
  ++resolved_;
  if (r.state == core::RequestState::kCommitted) {
    ++committed_;
    // A committed switch is a service interruption as long as the actual
    // transfer (the machine was rendezvoused and not running the workload).
    if (r.attempts > 0) {
      const core::SwitchStats& es = sup_.engine().stats();
      const hw::Cycles window = r.target == core::ExecMode::kNative
                                    ? es.last_detach_cycles
                                    : es.last_attach_cycles;
      if (window > 0 && r.resolved_at > window) {
        tracker_.service_down(r.resolved_at - window,
                              r.target == core::ExecMode::kNative
                                  ? "switch.detach"
                                  : "switch.attach");
        tracker_.service_up(r.resolved_at);
      }
    }
  }
  if (params_.check_invariants) {
    ++invariant_checks_;
    const core::InvariantReport rep =
        core::check_machine_invariants(sup_.engine());
    if (!rep.ok()) ++invariant_violations_;
  }
  if (done() && !finished_) {
    finished_ = true;
    tracker_.finish(now());
  }
}

bool SoakDriver::run_to_completion(hw::Cycles budget) {
  start();
  return kernel_.run_until([this] { return done(); }, budget);
}

SoakReport SoakDriver::report(std::uint64_t seed) const {
  SoakReport r;
  r.seed = seed;
  r.cpus = kernel_.machine().num_cpus();
  r.planned_cycles = params_.cycles;

  // Quote the storm as armed, not the live state: fire_storm() decays the
  // per-site rates, and the artifact must record the regime the run was
  // seeded with. The rate is the max across sites (uniform storms put the
  // same rate everywhere).
  const core::FaultInjector& fi = core::fault_injector();
  const core::FaultStorm& storm = fi.storm_config();
  r.storm_rate = *std::max_element(std::begin(storm.rate),
                                   std::end(storm.rate));
  r.storm_burst = storm.burst_windows;
  r.storm_decay = storm.decay;
  r.storm_fires = fi.storm_fires();
  r.storm_windows = fi.storm_windows();

  const core::SupervisorStats& ss = sup_.stats();
  r.submitted = ss.submitted;
  r.committed = ss.committed;
  r.failed_deadline = ss.failed_deadline;
  r.failed_attempts = ss.failed_attempts;
  r.failed_quarantined = ss.failed_quarantined;
  r.cancelled = ss.cancelled;
  // The stranded-request gate covers caller-submitted requests only: a
  // supervisor-internal probe or quarantine detach legitimately in flight
  // at snapshot time is scheduled work, not a stranded request.
  r.unresolved = 0;
  for (const core::SupervisedRequest& q : sup_.requests())
    if (!q.internal && !core::request_state_terminal(q.state)) ++r.unresolved;
  r.attempts = ss.attempts;
  r.retries = ss.retries;
  r.backoffs = ss.backoffs;
  r.quarantines = ss.quarantines;
  r.recoveries = ss.recoveries;
  r.probes = ss.probes;
  r.final_health = core::supervisor_health_name(sup_.health());

  r.rollbacks = sup_.engine().stats().rollbacks;
  r.engine_cancels = sup_.engine().stats().cancels;
  r.invariant_checks = invariant_checks_;
  r.invariant_violations = invariant_violations_;

  r.availability = tracker_.availability();
  r.interruptions = tracker_.interruptions().size();
  r.downtime_cycles = tracker_.total_downtime();
  r.span_cycles = tracker_.observation_span();

  r.workload_ops = workload_ops_;
  r.workload_bytes = workload_bytes_;
  r.workload_corruptions = workload_corruptions_;

  // Single-machine soaks record into the ambient (usually process-global)
  // ledger; obs-off builds report zeros, which the gate accepts.
  const obs::PauseLedger& pl = obs::pause_ledger();
  r.pause_intervals = pl.intervals();
  r.pause_unattributed = pl.unattributed();
  const obs::PauseWorst& pw = pl.worst();
  r.pause_worst_cycles = pw.valid ? pw.span() : 0;
  r.pause_worst_cause = pw.valid ? obs::pause_cause_name(pw.cause) : "none";

  r.converged = done() && r.unresolved == 0 && !tracker_.is_down();
  r.final_mode = core::exec_mode_name(sup_.engine().mode());
  return r;
}

// ---------------------------------------------------------------------------
// ClusterSoak
// ---------------------------------------------------------------------------

ClusterSoak::ClusterSoak(ClusterSoakParams p)
    : params_(p),
      sampler_(p.sample_capacity),
      self_(std::make_shared<ClusterSoak*>(this)) {
  if (params_.nodes == 0) params_.nodes = 1;
  if (params_.waves == 0) params_.waves = 1;
  sample_interval_ = hw::us_to_cycles(params_.sample_interval_ms * 1000.0);
  if (sample_interval_ == 0) sample_interval_ = hw::kCyclesPerMillisecond;

  for (std::size_t i = 0; i < params_.nodes; ++i) {
    NodeConfig nc;
    nc.cpus = params_.cpus_per_node;
    Node& n = fabric_.add_node("n" + std::to_string(i), nc);
    if (i > 0) fabric_.connect(fabric_.node(0), n);

    auto rt = std::make_unique<NodeRt>();
    rt->node = &n;
    // Per-node jitter stream, derived from the run seed so two runs with
    // identical params draw identical backoff schedules on every node.
    core::SupervisorConfig sc = params_.supervisor;
    sc.seed = params_.seed * 0x9E3779B97F4A7C15ull + 0x1000ull * (i + 1);
    rt->supervisor =
        std::make_unique<core::SwitchSupervisor>(n.mercury().engine(), sc);
    nodes_.push_back(std::move(rt));
  }

  // Per-node time series. The readers view state owned by this run (never
  // the process-global registry, whose instruments accumulate across runs
  // in one process), so the sampled values are a pure function of params.
  for (const auto& rtp : nodes_) {
    NodeRt* rt = rtp.get();
    const std::string label = rt->node->obs_label();
    sampler_.add_series("switch.committed", label, [rt] {
      return static_cast<double>(rt->supervisor->stats().committed);
    });
    sampler_.add_series("switch.attempts", label, [rt] {
      return static_cast<double>(rt->supervisor->stats().attempts);
    });
    sampler_.add_series("switch.inflight", label, [rt] {
      return rt->supervisor->idle() ? 0.0 : 1.0;
    });
    sampler_.add_series("supervisor.health", label, [rt] {
      return static_cast<double>(rt->supervisor->health());
    });
    sampler_.add_series("exec.mode", label, [rt] {
      return static_cast<double>(rt->supervisor->engine().mode());
    });
    sampler_.add_series("pause.intervals", label, [rt] {
      return static_cast<double>(rt->node->pauses().intervals());
    });
    sampler_.add_series("pause.worst_cycles", label, [rt] {
      const obs::PauseWorst& w = rt->node->pauses().worst();
      return w.valid ? static_cast<double>(w.span()) : 0.0;
    });
  }
  sampler_.add_series("fleet.committed", "", [this] {
    double sum = 0.0;
    for (const auto& rt : nodes_)
      sum += static_cast<double>(rt->supervisor->stats().committed);
    return sum;
  });
  sampler_.add_series("fleet.inflight", "", [this] {
    double sum = 0.0;
    for (const auto& rt : nodes_)
      if (!rt->supervisor->idle()) sum += 1.0;
    return sum;
  });
  sampler_.add_series("fleet.quarantines", "", [this] {
    double sum = 0.0;
    for (const auto& rt : nodes_)
      sum += static_cast<double>(rt->supervisor->stats().quarantines);
    return sum;
  });
  sampler_.add_series("fleet.pause_worst_cycles", "", [this] {
    double worst = 0.0;
    for (const auto& rt : nodes_) {
      const obs::PauseWorst& w = rt->node->pauses().worst();
      if (w.valid) worst = std::max(worst, static_cast<double>(w.span()));
    }
    return worst;
  });
}

ClusterSoak::~ClusterSoak() = default;

void ClusterSoak::arm_sampler() {
  kernel::Kernel& k = nodes_[0]->node->active();
  std::weak_ptr<ClusterSoak*> weak = self_;
  k.add_timer(k.machine().cpu(0).now() + sample_interval_, [weak] {
    const auto locked = weak.lock();
    if (!locked) return;
    ClusterSoak& cs = **locked;
    if (cs.finished_) return;
    cs.sampler_.sample(cs.nodes_[0]->node->machine().cpu(0).now());
    cs.arm_sampler();
  });
}

void ClusterSoak::on_resolved(NodeRt& rt, const core::SupervisedRequest& r) {
  rt.outstanding = false;
  if (r.state == core::RequestState::kCommitted) {
    ++rt.committed;
    rt.node->metrics().counter("node.switch.committed").inc();
    // Same accounting as SoakDriver: a committed switch is a short service
    // interruption covering the actual transfer window. The window is
    // measured on whichever CPU handled the commit, while resolved_at is
    // stamped on CPU 0 — per-CPU clocks skew between rendezvous points, so
    // back-projecting the raw window can reach behind the previous
    // interruption's end. Clamp: downtime intervals must not overlap or the
    // sum exceeds the observation span.
    const core::SwitchStats& es = rt.supervisor->engine().stats();
    const hw::Cycles window = r.target == core::ExecMode::kNative
                                  ? es.last_detach_cycles
                                  : es.last_attach_cycles;
    if (window > 0 && r.resolved_at > window) {
      hw::Cycles down_at = r.resolved_at - window;
      if (!rt.tracker.interruptions().empty())
        down_at = std::max(down_at, rt.tracker.interruptions().back().ended);
      if (down_at < r.resolved_at) {
        rt.tracker.service_down(down_at,
                                r.target == core::ExecMode::kNative
                                    ? "switch.detach"
                                    : "switch.attach");
        rt.tracker.service_up(r.resolved_at);
      }
    }
  } else {
    ++rt.failed;
    rt.node->metrics().counter("node.switch.failed").inc();
  }
}

void ClusterSoak::run_wave() {
#if MERCURY_OBS_ENABLED
  // The wave is the root of one causal tree: allocate its identity up
  // front so every per-node message span (and, transitively, every commit
  // and crew-phase span on every node) links beneath it.
  obs::SpanContext wave_ctx;
  wave_ctx.trace_id = obs::next_span_id();
  wave_ctx.span_id = obs::next_span_id();
  const hw::Cycles wave_begin = fabric_.now();
#endif
  // Fleet-wide alternation: whatever mode node 0 settled in, the wave
  // drives every node toward the other one.
  const core::ExecMode target =
      nodes_[0]->supervisor->engine().mode() == core::ExecMode::kNative
          ? params_.virt_mode
          : core::ExecMode::kNative;

  for (auto& rtp : nodes_) {
    NodeRt* rt = rtp.get();
    ++rt->submitted;
    rt->node->metrics().counter("node.switch.submitted").inc();
    // Set before submit: a quarantined supervisor fast-fails virtual
    // targets synchronously, resolving inside this call.
    rt->outstanding = true;
#if MERCURY_OBS_ENABLED
    obs::TraceNodeScope node_scope(rt->node->trace_node());
    obs::SpanContextScope wave_scope(wave_ctx);
    obs::TraceSpan msg(rt->node->machine().cpu(0), obs::TraceCat::kCluster,
                       "fabric.msg.switch");
#endif
    // submit can resolve synchronously (quarantine fast-fail) and a retry
    // can arm its backoff here — keep those pauses on this node's ledger.
    obs::PauseLedgerScope pause_scope(rt->node->pauses());
    rt->supervisor->submit(target, {},
                           [this, rt](const core::SupervisedRequest& r) {
                             on_resolved(*rt, r);
                           });
  }

  const bool ok = fabric_.co_step(
      [this] {
        for (const auto& rt : nodes_)
          if (rt->outstanding) return false;
        return true;
      },
      params_.wave_budget);
  if (!ok) all_resolved_ok_ = false;
  ++waves_run_;

#if MERCURY_OBS_ENABLED
  obs::TraceEvent wave_ev;
  wave_ev.name = "cluster.wave";
  wave_ev.cat = obs::TraceCat::kCluster;
  wave_ev.cpu = 0;
  wave_ev.begin = wave_begin;
  wave_ev.end = fabric_.now();
  wave_ev.trace_id = wave_ctx.trace_id;
  wave_ev.span_id = wave_ctx.span_id;
  obs::trace_buffer().record(wave_ev);
#endif
}

void ClusterSoak::dwell() {
  const hw::Cycles gap = hw::us_to_cycles(params_.wave_interval_ms * 1000.0);
  if (gap == 0) return;
  // No cross-node messages are in flight between waves, so the nodes are
  // causally independent here: step each kernel on its own (co_step's
  // conservative clamping is built for message waves, not long idle gaps).
  // A one-shot timer marks the target — an idle kernel with no timers
  // never advances its clock.
  for (auto& rt : nodes_) {
    if (rt->node->failed()) continue;
    kernel::Kernel& k = rt->node->active();
    // The dwell steps this kernel directly (not via step_node), so scope
    // the node's ledger here too: supervisor backoff timers fire mid-dwell.
    obs::PauseLedgerScope pause_scope(rt->node->pauses());
    // shared_ptr, not a stack flag: if the budget trips first, the queued
    // timer outlives this frame.
    auto fired = std::make_shared<bool>(false);
    k.add_timer(k.machine().cpu(0).now() + gap, [fired] { *fired = true; });
    if (!k.run_until([fired] { return *fired; }, gap * 2))
      all_resolved_ok_ = false;
  }
}

bool ClusterSoak::run() {
  arm_sampler();
  sampler_.sample(nodes_[0]->node->machine().cpu(0).now());
  for (std::uint64_t w = 0; w < params_.waves; ++w) {
    run_wave();
    dwell();
  }
  finished_ = true;
  // Close every node's availability window at its own clock.
  for (auto& rt : nodes_)
    rt->tracker.finish(rt->node->machine().cpu(0).now());
  // Final sample so the series end at the fleet's settled state.
  sampler_.sample(nodes_[0]->node->machine().cpu(0).now());
  bool unresolved = false;
  for (const auto& rt : nodes_)
    if (rt->outstanding) unresolved = true;
  return all_resolved_ok_ && !unresolved;
}

SoakReport ClusterSoak::report() const {
  SoakReport r;
  r.seed = params_.seed;
  r.cpus = params_.nodes * params_.cpus_per_node;
  r.planned_cycles = params_.waves;

  double avail_sum = 0.0;
  const char* worst_health = "healthy";
  for (const auto& rtp : nodes_) {
    const NodeRt& rt = *rtp;
    const core::SupervisorStats& ss = rt.supervisor->stats();
    NodeSoakStats ns;
    ns.name = rt.node->name();
    ns.submitted = rt.submitted;
    ns.committed = rt.committed;
    ns.failed = rt.failed;
    ns.retries = ss.retries;
    ns.quarantines = ss.quarantines;
    ns.availability = rt.tracker.availability();
    ns.interruptions = rt.tracker.interruptions().size();
    ns.downtime_cycles = rt.tracker.total_downtime();
    ns.span_cycles = rt.tracker.observation_span();
    const obs::PauseLedger& pl = rt.node->pauses();
    ns.pause_intervals = pl.intervals();
    ns.pause_unattributed = pl.unattributed();
    const obs::PauseWorst& pw = pl.worst();
    ns.pause_worst_cycles = pw.valid ? pw.span() : 0;
    ns.pause_worst_cause =
        pw.valid ? obs::pause_cause_name(pw.cause) : "none";
    ns.final_health = core::supervisor_health_name(rt.supervisor->health());
    ns.final_mode =
        core::exec_mode_name(rt.supervisor->engine().mode());
    avail_sum += ns.availability;

    r.submitted += ss.submitted;
    r.committed += ss.committed;
    r.failed_deadline += ss.failed_deadline;
    r.failed_attempts += ss.failed_attempts;
    r.failed_quarantined += ss.failed_quarantined;
    r.cancelled += ss.cancelled;
    r.attempts += ss.attempts;
    r.retries += ss.retries;
    r.backoffs += ss.backoffs;
    r.quarantines += ss.quarantines;
    r.recoveries += ss.recoveries;
    r.probes += ss.probes;
    r.rollbacks += rt.supervisor->engine().stats().rollbacks;
    r.engine_cancels += rt.supervisor->engine().stats().cancels;
    for (const core::SupervisedRequest& q : rt.supervisor->requests())
      if (!q.internal && !core::request_state_terminal(q.state))
        ++r.unresolved;
    r.interruptions += rt.tracker.interruptions().size();
    r.downtime_cycles += rt.tracker.total_downtime();
    r.span_cycles = std::max(r.span_cycles,
                             static_cast<std::uint64_t>(
                                 rt.tracker.observation_span()));
    if (rt.supervisor->health() != core::SupervisorHealth::kHealthy)
      worst_health = core::supervisor_health_name(rt.supervisor->health());
    r.pause_intervals += ns.pause_intervals;
    r.pause_unattributed += ns.pause_unattributed;
    if (ns.pause_worst_cycles > r.pause_worst_cycles) {
      r.pause_worst_cycles = ns.pause_worst_cycles;
      r.pause_worst_cause = ns.pause_worst_cause;
    }
    r.nodes.push_back(std::move(ns));
  }
  r.availability = nodes_.empty() ? 1.0 : avail_sum / nodes_.size();
  r.final_health = worst_health;
  r.final_mode =
      core::exec_mode_name(nodes_.front()->supervisor->engine().mode());
  r.converged = finished_ && all_resolved_ok_ && r.unresolved == 0;
  return r;
}

}  // namespace mercury::cluster
