// Availability accounting: uptime/downtime/MTTI bookkeeping for the paper's
// dependability scenarios (§6.3/§6.5 — the market "heading toward 99.999%").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/types.hpp"

namespace mercury::cluster {

struct ServiceInterruption {
  hw::Cycles began = 0;
  hw::Cycles ended = 0;
  std::string cause;
  hw::Cycles duration() const { return ended - began; }
};

class AvailabilityTracker {
 public:
  void service_down(hw::Cycles at, std::string cause);
  void service_up(hw::Cycles at);
  void finish(hw::Cycles at);

  bool is_down() const { return down_; }
  const std::vector<ServiceInterruption>& interruptions() const {
    return interruptions_;
  }
  hw::Cycles total_downtime() const;
  hw::Cycles observation_span() const { return end_ - begin_; }
  double availability() const;
  /// Mean time to interrupt over the observation span.
  double mtti_seconds() const;

 private:
  bool down_ = false;
  hw::Cycles begin_ = 0;
  hw::Cycles end_ = 0;
  bool began_ = false;
  ServiceInterruption current_;
  std::vector<ServiceInterruption> interruptions_;
};

}  // namespace mercury::cluster
