#include "cluster/failure.hpp"

#include "util/assert.hpp"

namespace mercury::cluster {

void FailureInjector::schedule_overheat(Node& node, hw::Cycles at,
                                        double temperature_c) {
  Node* n = &node;
  node.active().add_timer(
      at, [n, temperature_c] { n->machine().sensors().inject_overheat(temperature_c); });
}

void FailureInjector::schedule_fan_failure(Node& node, hw::Cycles at) {
  Node* n = &node;
  node.active().add_timer(at, [n] { n->machine().sensors().inject_fan_failure(); });
}

void FailureInjector::schedule_crash(Node& node, hw::Cycles at) {
  Node* n = &node;
  node.active().add_timer(at, [n] { n->fail(); });
}

void FailureInjector::set_link_loss(Fabric& fabric, Node& a, Node& b,
                                    double drop_probability) {
  hw::Link* link = fabric.link_between(a, b);
  MERC_CHECK_MSG(link != nullptr, "no link between nodes");
  link->set_drop_probability(drop_probability);
}

}  // namespace mercury::cluster
