#include "pv/direct_ops.hpp"

#include "hw/costs.hpp"

namespace mercury::pv {

using hw::costs::kPrivRegWrite;

void DirectOps::write_cr3(hw::Cpu& cpu, hw::Pfn root) { cpu.write_cr3(root); }

void DirectOps::load_idt(hw::Cpu& cpu, hw::TableToken t) { cpu.load_idt(t); }

void DirectOps::load_gdt(hw::Cpu& cpu, hw::TableToken t) { cpu.load_gdt(t); }

void DirectOps::irq_disable(hw::Cpu& cpu) { cpu.set_interrupts_enabled(false); }

void DirectOps::irq_enable(hw::Cpu& cpu) { cpu.set_interrupts_enabled(true); }

void DirectOps::stack_switch(hw::Cpu& cpu) {
  // TSS esp0 update: one privileged memory write.
  cpu.charge(kPrivRegWrite);
}

void DirectOps::syscall_entered(hw::Cpu& cpu) {
  cpu.charge(hw::costs::kSyscallEntry);
}

void DirectOps::syscall_exiting(hw::Cpu& cpu) {
  cpu.charge(hw::costs::kSyscallReturn);
}

void DirectOps::pte_write(hw::Cpu& cpu, hw::PhysAddr pte_addr, hw::Pte value) {
  cpu.charge(hw::costs::kMemAccess);
  machine_.memory().write_u32(pte_addr, value.raw);
}

void DirectOps::pte_write_batch(hw::Cpu& cpu, std::span<const PteUpdate> updates) {
  for (const auto& u : updates) pte_write(cpu, u.pte_addr, u.value);
}

void DirectOps::pin_page_table(hw::Cpu&, hw::Pfn, PtLevel) {
  // Bare hardware imposes no page-type discipline; nothing to do.
}

void DirectOps::unpin_page_table(hw::Cpu&, hw::Pfn) {}

void DirectOps::flush_tlb(hw::Cpu& cpu) {
  cpu.charge(hw::costs::kTlbFlushAll);
  cpu.tlb().flush_all();
}

void DirectOps::flush_tlb_page(hw::Cpu& cpu, hw::VirtAddr va) { cpu.invlpg(va); }

void DirectOps::send_ipi(hw::Cpu& cpu, std::uint32_t dst_cpu, std::uint8_t vector,
                         std::uint32_t payload) {
  machine_.interrupts().send_ipi(cpu, dst_cpu, vector, payload);
}

void DirectOps::disk_read(hw::Cpu& cpu, std::uint64_t block,
                          std::span<std::uint8_t> out) {
  cpu.charge(machine_.disk().read(block, out));
}

void DirectOps::disk_write(hw::Cpu& cpu, std::uint64_t block,
                           std::span<const std::uint8_t> in) {
  cpu.charge(machine_.disk().write(block, in));
}

void DirectOps::disk_flush(hw::Cpu& cpu) { cpu.charge(machine_.disk().flush()); }

void DirectOps::net_send(hw::Cpu& cpu, hw::Packet pkt) {
  cpu.charge(machine_.nic().send(std::move(pkt), cpu.now()));
}

std::optional<hw::Packet> DirectOps::net_poll(hw::Cpu& cpu) {
  auto pkt = machine_.nic().poll(cpu.now());
  if (pkt) cpu.charge(machine_.nic().rx_overhead());
  return pkt;
}

void DirectOps::sensors_read(hw::Cpu& cpu, hw::SensorReadings& out) {
  cpu.charge(machine_.sensors().read(out));
}

}  // namespace mercury::pv
