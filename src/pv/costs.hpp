// Paravirtualization-level cost model (cycles).
//
// Costs of crossing the OS<->VMM interface and of the VMM's validation
// work. Together with hw::costs these are the calibrated inputs; see
// EXPERIMENTS.md for how each paper cell emerges from them.
#pragma once

#include "hw/types.hpp"

namespace mercury::pv::costs {

using hw::Cycles;

// Mercury's VO dispatch overheads (§7.2: "pointer indirection ... changes
// to code and data layout and function calls to virtualization objects").
// Charged only by kernels built with Mercury's VO layer (M-N, M-V) — an
// unmodified Xen-Linux guest hosted by Mercury (M-U) does not pay them.
inline constexpr Cycles kVoPerOpOverhead = 75;   // per sensitive-op call
inline constexpr Cycles kVoPathTax = 350;        // per trap/syscall/dispatch entry

// Hypercall trap into the VMM and back (ring1 -> ring0 -> ring1).
inline constexpr Cycles kHypercallEntry = 600;
inline constexpr Cycles kHypercallExit = 350;

// VMM dispatch work when a hardware trap lands in ring 0 and must be
// bounced to the guest kernel at ring 1.
inline constexpr Cycles kVmmTrapDispatch = 450;
inline constexpr Cycles kVmmBounceToGuest = 400;

// Per-PTE validation inside mmu_update: ownership, type and count checks.
inline constexpr Cycles kValidatePte = 330;

// Pinning a page as a page table: base plus per-present-entry validation.
inline constexpr Cycles kPinBase = 2200;
inline constexpr Cycles kPinPerPresentPte = 150;
inline constexpr Cycles kUnpinBase = 900;
inline constexpr Cycles kUnpinPerPresentPte = 40;

// Full address-space switch inside the VMM (the __context_switch slow path:
// CR3 install, GDT/LDT refresh, event-channel mask bookkeeping).
inline constexpr Cycles kVmmCtxSwitch = 7200;

// Writable-page-table emulation: instruction decode + replay inside the
// VMM, plus the ring-1 return, on top of the trap/validate costs.
inline constexpr Cycles kPteEmulateDecode = 2000;
inline constexpr Cycles kPteEmulateReturn = 600;

// Returning from a VMM-bounced guest trap costs an iret hypercall (x86-32).
inline constexpr Cycles kVmmGuestIret = 500;

// Virtual CLI/STI: a write to the shared-info event mask, no trap.
inline constexpr Cycles kVirtIrqToggle = 18;

// Extra system-call path cost when an OS is deprivileged (trampoline pages,
// segment reloads; Xen's fast traps keep this small).
inline constexpr Cycles kVirtSyscallExtra = 260;

// Event channel notification (hypercall + remote pending bit + virq pin).
inline constexpr Cycles kEventChannelSend = 1100;

// Buffer-copy bandwidth degradation in a deprivileged kernel (segment
// reloads, TLB pressure from hypervisor entries), per KB copied.
inline constexpr Cycles kVirtCopyTaxPerKb = 160;

// Per-packet network-path virtualization: hypervisor interrupt handling,
// bridge/netloop processing in the driver domain; the guest path adds the
// split-driver hop on top. Calibrated to the paper's iperf/ping losses.
inline constexpr Cycles kVirtNetDriverTx = 42'000;   // ~14 us per packet
inline constexpr Cycles kVirtNetDriverRx = 26'000;
inline constexpr Cycles kVirtNetGuestTxExtra = 50'000;
inline constexpr Cycles kVirtNetGuestRxExtra = 90'000;

// Split-driver request/response: building a ring slot, grant handling, and
// the backend's copy in the driver domain.
inline constexpr Cycles kRingSlotWork = 700;
inline constexpr Cycles kGrantMapPerPage = 950;
inline constexpr Cycles kBackendCopyPerPage = 1600;

// Mode switch machinery (attach/detach handler fixed parts).
inline constexpr Cycles kSwitchInterruptOverhead = 2500;
inline constexpr Cycles kReloadControlState = 4200;    // CR3/IDT/GDT reload set
inline constexpr Cycles kPerFrameInfoRebuild = 2;      // owner/count reset per frame
inline constexpr Cycles kPerPtePinScan = 1;            // type re-derivation per PTE
inline constexpr Cycles kPerTaskSelectorFixup = 260;   // stack segment fixup per thread
inline constexpr Cycles kPerPtWritabilityFlip = 600;   // single RO<->RW flip + per-page shootdown
// Bulk protect/unprotect shards batch the PTE rewrites and close the batch
// with one cross-CPU shootdown + full flush (the multicall idea applied to
// protection flips), instead of a per-page IPI round for each table.
inline constexpr Cycles kPerPtBatchFlip = 90;          // PTE rewrite inside a batch
inline constexpr Cycles kTlbBatchShootdown = 5000;     // IPI round closing a batch

// Eager tracking variant (§5.1.2 alternative 1): per-PTE-write bookkeeping
// performed in native mode to keep the dormant VMM's counts fresh.
inline constexpr Cycles kEagerTrackPerPte = 18;

}  // namespace mercury::pv::costs
