// Bare-hardware implementation of the sensitive-operation interface: the
// unmodified native-Linux build (N-L). No VO dispatch charge, no reference
// counting — this is the baseline everything else is measured against.
#pragma once

#include "hw/machine.hpp"
#include "pv/sensitive_ops.hpp"

namespace mercury::pv {

class DirectOps : public SensitiveOps {
 public:
  explicit DirectOps(hw::Machine& machine) : machine_(machine) {}

  const char* mode_name() const override { return "native-direct"; }
  bool is_virtual() const override { return false; }
  hw::Ring kernel_ring() const override { return hw::Ring::kRing0; }

  void write_cr3(hw::Cpu& cpu, hw::Pfn root) override;
  void load_idt(hw::Cpu& cpu, hw::TableToken t) override;
  void load_gdt(hw::Cpu& cpu, hw::TableToken t) override;
  void irq_disable(hw::Cpu& cpu) override;
  void irq_enable(hw::Cpu& cpu) override;
  void stack_switch(hw::Cpu& cpu) override;
  void syscall_entered(hw::Cpu& cpu) override;
  void syscall_exiting(hw::Cpu& cpu) override;

  void pte_write(hw::Cpu& cpu, hw::PhysAddr pte_addr, hw::Pte value) override;
  void pte_write_batch(hw::Cpu& cpu, std::span<const PteUpdate> updates) override;
  void pin_page_table(hw::Cpu& cpu, hw::Pfn pfn, PtLevel level) override;
  void unpin_page_table(hw::Cpu& cpu, hw::Pfn pfn) override;
  void flush_tlb(hw::Cpu& cpu) override;
  void flush_tlb_page(hw::Cpu& cpu, hw::VirtAddr va) override;

  void send_ipi(hw::Cpu& cpu, std::uint32_t dst_cpu, std::uint8_t vector,
                std::uint32_t payload) override;

  void disk_read(hw::Cpu& cpu, std::uint64_t block,
                 std::span<std::uint8_t> out) override;
  void disk_write(hw::Cpu& cpu, std::uint64_t block,
                  std::span<const std::uint8_t> in) override;
  void disk_flush(hw::Cpu& cpu) override;
  void net_send(hw::Cpu& cpu, hw::Packet pkt) override;
  std::optional<hw::Packet> net_poll(hw::Cpu& cpu) override;
  void sensors_read(hw::Cpu& cpu, hw::SensorReadings& out) override;

 private:
  hw::Machine& machine_;
};

}  // namespace mercury::pv
