// The virtual machine interface: every virtualization-sensitive operation
// the kernel performs goes through this table (paravirt-ops/VMI style,
// paper §4.2/§5.3).
//
// Implementations:
//   pv::DirectOps       — inlined bare-hardware ops, no indirection charge
//                         (the unmodified "native Linux" build, N-L).
//   core::NativeVo      — direct ops behind Mercury's VO dispatch with
//                         entry/exit reference counting (M-N).
//   core::VirtualVo     — hypercalls into the (pre-cached) VMM (M-V, and the
//                         kernels of X-0/X-U/M-U).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "hw/cpu.hpp"
#include "hw/devices/nic.hpp"
#include "hw/devices/sensors.hpp"
#include "hw/pte.hpp"
#include "hw/types.hpp"

namespace mercury::pv {

enum class PtLevel : std::uint8_t { kL1 = 1, kL2 = 2 };

struct PteUpdate {
  hw::PhysAddr pte_addr = 0;
  hw::Pte value{};
};

class SensitiveOps {
 public:
  virtual ~SensitiveOps() = default;

  virtual const char* mode_name() const = 0;
  virtual bool is_virtual() const = 0;
  /// Privilege ring the kernel executes at under this object.
  virtual hw::Ring kernel_ring() const = 0;
  /// Extra cycles per KB of kernel<->user buffer copying in this mode.
  virtual hw::Cycles copy_tax_per_kb() const { return 0; }

  // --- sensitive CPU operations ---
  virtual void write_cr3(hw::Cpu& cpu, hw::Pfn root) = 0;
  virtual void load_idt(hw::Cpu& cpu, hw::TableToken t) = 0;
  virtual void load_gdt(hw::Cpu& cpu, hw::TableToken t) = 0;
  virtual void irq_disable(hw::Cpu& cpu) = 0;
  virtual void irq_enable(hw::Cpu& cpu) = 0;
  /// Kernel stack pointer announcement on context switch (TSS esp0 write
  /// natively; the stack_switch hypercall under a VMM).
  virtual void stack_switch(hw::Cpu& cpu) = 0;
  virtual void syscall_entered(hw::Cpu& cpu) = 0;
  virtual void syscall_exiting(hw::Cpu& cpu) = 0;

  // --- sensitive memory operations ---
  virtual void pte_write(hw::Cpu& cpu, hw::PhysAddr pte_addr, hw::Pte value) = 0;
  virtual void pte_write_batch(hw::Cpu& cpu, std::span<const PteUpdate> updates) = 0;
  virtual void pin_page_table(hw::Cpu& cpu, hw::Pfn pfn, PtLevel level) = 0;
  virtual void unpin_page_table(hw::Cpu& cpu, hw::Pfn pfn) = 0;
  virtual void flush_tlb(hw::Cpu& cpu) = 0;
  virtual void flush_tlb_page(hw::Cpu& cpu, hw::VirtAddr va) = 0;

  // --- interrupts ---
  virtual void send_ipi(hw::Cpu& cpu, std::uint32_t dst_cpu, std::uint8_t vector,
                        std::uint32_t payload) = 0;

  // --- sensitive I/O operations ---
  virtual void disk_read(hw::Cpu& cpu, std::uint64_t block,
                         std::span<std::uint8_t> out) = 0;
  virtual void disk_write(hw::Cpu& cpu, std::uint64_t block,
                          std::span<const std::uint8_t> in) = 0;
  virtual void disk_flush(hw::Cpu& cpu) = 0;
  virtual void net_send(hw::Cpu& cpu, hw::Packet pkt) = 0;
  virtual std::optional<hw::Packet> net_poll(hw::Cpu& cpu) = 0;
  virtual void sensors_read(hw::Cpu& cpu, hw::SensorReadings& out) = 0;
};

}  // namespace mercury::pv
