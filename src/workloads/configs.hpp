// Builders for the six systems the paper evaluates (§7):
//   N-L  native Linux                      (no VO indirection at all)
//   M-N  Mercury-Linux, native mode        (NativeVo active, VMM dormant)
//   X-0  Xen domain0                       (always-on VMM, driver domain)
//   M-V  Mercury-Linux, partial-virtual    (attached on demand, driver role)
//   X-U  Xen domainU                       (always-on VMM, split I/O guest)
//   M-U  domainU hosted by a self-virtualized Mercury OS
#pragma once

#include <memory>
#include <string>

#include "core/mercury.hpp"
#include "hw/machine.hpp"
#include "kernel/kernel.hpp"
#include "pv/direct_ops.hpp"
#include "vmm/hypervisor.hpp"

namespace mercury::workloads {

enum class SystemId : std::uint8_t { kNL, kMN, kX0, kMV, kXU, kMU };

inline constexpr SystemId kAllSystems[] = {SystemId::kNL, SystemId::kMN,
                                           SystemId::kX0, SystemId::kMV,
                                           SystemId::kXU, SystemId::kMU};

const char* system_label(SystemId id);  // "N-L", "M-N", ...

struct SutParams {
  std::size_t cpus = 1;
  std::size_t machine_mem_kb = 2'097'152;  // 2 GB box (paper's testbed)
  std::size_t kernel_mem_kb = 900'000;     // per-variant reservation
  std::size_t domu_mem_kb = 870'000;       // paper: domU gets less (no backends)
  std::uint64_t seed = 1;
  std::uint32_t nic_addr = 0x0A000001;
};

/// A fully booted system-under-test. `kernel()` is the measured kernel
/// (domU's for X-U/M-U, the primary OS otherwise).
class Sut {
 public:
  static std::unique_ptr<Sut> create(SystemId id, SutParams params = {});
  ~Sut();

  SystemId id() const { return id_; }
  const char* label() const { return system_label(id_); }
  hw::Machine& machine() { return *machine_; }
  kernel::Kernel& kernel() { return *measured_; }
  core::Mercury* mercury() { return mercury_.get(); }
  vmm::Hypervisor* hypervisor();

 private:
  explicit Sut(SystemId id) : id_(id) {}

  SystemId id_;
  std::unique_ptr<hw::Machine> machine_;
  // N-L / X-* plumbing:
  std::unique_ptr<pv::DirectOps> direct_;
  std::unique_ptr<vmm::Hypervisor> hv_;
  std::unique_ptr<core::VirtualVo> dom0_vo_;
  std::unique_ptr<core::VirtualVo> domu_vo_;
  std::unique_ptr<kernel::Kernel> primary_kernel_;
  std::unique_ptr<kernel::Kernel> domu_kernel_;
  // M-* plumbing:
  std::unique_ptr<core::Mercury> mercury_;

  kernel::Kernel* measured_ = nullptr;
};

}  // namespace mercury::workloads
