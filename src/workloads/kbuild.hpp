// Linux kernel build analogue (paper Fig.3/4): a make-driven farm of
// compiler processes — fork+exec per translation unit, source reads, heavy
// user CPU, object writes, and a final link. Process-creation overhead is
// the virtualization-sensitive share; SMP mode parallelizes across CPUs.
#pragma once

#include "kernel/kernel.hpp"

namespace mercury::workloads {

struct KbuildParams {
  int translation_units = 14;
  double compile_cpu_ms = 12.0;
  std::size_t source_kb = 160;
  std::size_t object_kb = 48;
  double link_cpu_ms = 60.0;
  int parallel_jobs = 0;  // 0 = one per CPU
};

struct KbuildResult {
  double build_seconds = 0;
  hw::Cycles elapsed = 0;
};

class Kbuild {
 public:
  static KbuildResult run(kernel::Kernel& k, const KbuildParams& p = {});
};

}  // namespace mercury::workloads
