#include "workloads/netperf.hpp"

#include "kernel/net/stack.hpp"
#include "kernel/syscalls.hpp"
#include "util/assert.hpp"

namespace mercury::workloads {

using kernel::Kernel;
using kernel::Sub;
using kernel::Sys;

PeerHost::PeerHost(std::uint32_t addr) {
  hw::MachineConfig mc;
  mc.num_cpus = 1;
  mc.mem_kb = 128 * 1024;
  mc.nic_addr = addr;
  machine_ = std::make_unique<hw::Machine>(mc);
  machine_->nic().bind_irq(&machine_->interrupts(), 0);
  direct_ = std::make_unique<pv::DirectOps>(*machine_);
  kernel_ = std::make_unique<Kernel>(*machine_, *direct_, "peer-host");
  hw::Pfn first = 0;
  MERC_CHECK(machine_->frames().alloc_contiguous(16384, first));
  kernel_->boot(first, 16384);
  machine_->install_trap_sink(kernel_.get());
}

void PeerHost::connect_to(hw::Machine& other, hw::Link::Params params) {
  link_ = std::make_unique<hw::Link>(params);
  link_->attach(&other.nic(), &machine_->nic());
}

bool Netperf::co_step(Kernel& a, Kernel& b, const std::function<bool()>& pred,
                      hw::Cycles budget) {
  // Conservative co-simulation: the lagging kernel steps first, and its
  // idle-clock advancement is clamped to the peer's time plus the link
  // lookahead, so no event from the peer can land in its past.
  constexpr hw::Cycles kLookahead = 20 * hw::kCyclesPerMicrosecond;
  const hw::Cycles start =
      std::min(a.earliest_cpu_time(), b.earliest_cpu_time());
  while (!pred()) {
    Kernel& next = a.earliest_cpu_time() <= b.earliest_cpu_time() ? a : b;
    Kernel& other = &next == &a ? b : a;
    next.set_idle_clamp(other.earliest_cpu_time() + kLookahead);
    const bool progressed = next.step();
    next.set_idle_clamp(0);
    if (!progressed) {
      // `next` is parked at the clamp (or fully idle): let the peer run.
      if (!other.step()) {
        if (pred()) return true;
        // Both sides stuck: jump the earlier one past the clamp.
        next.advance_all_cpus_to(other.earliest_cpu_time() + kLookahead);
        if (!next.step()) return pred();
      }
    }
    // Budget on the *furthest* clock: if one side is fully idle (frozen),
    // the other side's progress must still bound the loop.
    const hw::Cycles now =
        std::max(a.earliest_cpu_time(), b.earliest_cpu_time());
    if (now - start > budget) return false;
  }
  return true;
}

NetperfResult Netperf::run(Kernel& client, PeerHost& peer,
                           const NetperfParams& p) {
  NetperfResult result;
  const std::uint32_t peer_addr = peer.machine().nic().address();

  // --- ping ---
  {
    bool done = false;
    double rtt_sum = 0;
    int rtt_n = 0, lost = 0;
    client.spawn("ping", [&, p, peer_addr](Sys& s) -> Sub<void> {
      for (int i = 0; i < p.ping_count; ++i) {
        const double rtt = co_await s.ping(peer_addr, p.ping_bytes, p.timeout_us);
        if (rtt >= 0) {
          rtt_sum += rtt;
          ++rtt_n;
        } else {
          ++lost;
        }
      }
      done = true;
      co_return;
    });
    MERC_CHECK_MSG(co_step(client, peer.kernel(), [&] { return done; },
                           60ull * 1000 * hw::kCyclesPerMillisecond),
                   "ping did not finish");
    result.ping_rtt_us = rtt_n > 0 ? rtt_sum / rtt_n : -1.0;
    result.pings_lost = lost;
  }

  // --- iperf (TCP) ---
  {
    constexpr std::uint16_t kPort = 5001;
    bool server_ready = false, server_done = false, client_done = false;
    hw::Cycles t0 = 0, t1 = 0;

    peer.kernel().spawn("iperf-server", [&, p](Sys& s) -> Sub<void> {
      const int lfd = s.tcp_listen(kPort);
      server_ready = true;
      const int conn = co_await s.tcp_accept(lfd, p.timeout_us * 50);
      if (conn >= 0) {
        std::size_t got = 0;
        while (got < p.iperf_bytes) {
          const std::size_t n =
              co_await s.tcp_recv(conn, 256 * 1024, p.timeout_us * 50);
          if (n == 0) break;
          got += n;
        }
      }
      server_done = true;
      co_return;
    });

    client.spawn("iperf-client", [&, p, peer_addr](Sys& s) -> Sub<void> {
      while (!server_ready) co_await s.sleep_us(100.0);
      const int fd = s.tcp_connect(peer_addr, kPort);
      t0 = s.cpu().now();
      co_await s.tcp_send(fd, p.iperf_bytes);
      t1 = s.cpu().now();
      s.close_socket(fd);
      client_done = true;
      co_return;
    });

    MERC_CHECK_MSG(
        co_step(client, peer.kernel(),
                [&] { return client_done && server_done; },
                3000ull * 1000 * hw::kCyclesPerMillisecond),
        "iperf did not finish");
    const double seconds = hw::cycles_to_us(t1 - t0) / 1e6;
    result.tcp_mbit_s =
        static_cast<double>(p.iperf_bytes) * 8.0 / 1e6 / seconds;
  }

  client.reap_zombies();
  peer.kernel().reap_zombies();
  return result;
}

}  // namespace mercury::workloads
