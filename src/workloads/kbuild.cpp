#include "workloads/kbuild.hpp"

#include <memory>
#include <string>

#include "kernel/syscalls.hpp"
#include "util/assert.hpp"

namespace mercury::workloads {

using kernel::Kernel;
using kernel::Pid;
using kernel::Sub;
using kernel::Sys;

KbuildResult Kbuild::run(Kernel& k, const KbuildParams& p) {
  bool done = false;
  hw::Cycles elapsed = 0;
  const int jobs = p.parallel_jobs > 0
                       ? p.parallel_jobs
                       : static_cast<int>(k.machine().num_cpus());

  k.spawn("make", [&, p, jobs](Sys& s) -> Sub<void> {
    // Stage the source tree (not timed).
    for (int u = 0; u < p.translation_units; ++u) {
      const int fd = s.open("/src/unit" + std::to_string(u) + ".c", true);
      co_await s.file_write(fd, p.source_kb * 1024);
      s.close(fd);
    }

    const hw::Cycles t0 = s.cpu().now();
    auto next_unit = std::make_shared<int>(0);
    int in_flight = 0;
    std::vector<Pid> pending;

    auto spawn_compile = [&](int unit) -> Pid {
      return s.fork_exec(kernel::cc1_image(), [unit, p](Sys& cs) -> Sub<void> {
        const int src = cs.open("/src/unit" + std::to_string(unit) + ".c", false);
        MERC_CHECK(src >= 0);
        std::size_t left = p.source_kb * 1024;
        while (left > 0) {
          const std::size_t n = co_await cs.file_read(src, 64 * 1024);
          if (n == 0) break;
          left -= n;
        }
        cs.close(src);
        co_await cs.compute_us(p.compile_cpu_ms * 1000.0);
        const int obj =
            cs.open("/src/unit" + std::to_string(unit) + ".o", true);
        co_await cs.file_write(obj, p.object_kb * 1024);
        cs.close(obj);
        cs.exit(0);
      });
    };

    // make -jN: keep `jobs` compile processes in flight.
    while (*next_unit < p.translation_units || in_flight > 0) {
      while (in_flight < jobs && *next_unit < p.translation_units) {
        pending.push_back(spawn_compile((*next_unit)++));
        ++in_flight;
      }
      const Pid pid = pending.front();
      pending.erase(pending.begin());
      co_await s.wait_pid(pid);
      --in_flight;
    }

    // Link: read every object, burn CPU, emit vmlinux.
    for (int u = 0; u < p.translation_units; ++u) {
      const int obj = s.open("/src/unit" + std::to_string(u) + ".o", false);
      co_await s.file_read(obj, p.object_kb * 1024);
      s.close(obj);
    }
    co_await s.compute_us(p.link_cpu_ms * 1000.0);
    const int out = s.open("/src/vmlinux", true);
    co_await s.file_write(out, p.translation_units * p.object_kb * 1024);
    s.close(out);

    elapsed = s.cpu().now() - t0;
    done = true;
    co_return;
  });

  MERC_CHECK_MSG(k.run_until([&] { return done; },
                             3000ull * 1000 * hw::kCyclesPerMillisecond),
                 "kbuild did not finish");
  k.reap_zombies();

  KbuildResult r;
  r.elapsed = elapsed;
  r.build_seconds = hw::cycles_to_us(elapsed) / 1e6;
  return r;
}

}  // namespace mercury::workloads
