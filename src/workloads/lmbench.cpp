#include "workloads/lmbench.hpp"

#include "kernel/layout.hpp"
#include "kernel/syscalls.hpp"
#include "util/assert.hpp"

namespace mercury::workloads {

using kernel::Kernel;
using kernel::Pid;
using kernel::ProcMain;
using kernel::Sub;
using kernel::Sys;

namespace {

constexpr hw::Cycles kDriveBudget = 120ull * 1000 * hw::kCyclesPerMillisecond;

/// Run `body` as a task to completion; asserts the simulation finished.
/// lmbench is single-threaded: the driver is pinned to CPU 0 (children
/// inherit the affinity), so SMP runs measure lock/cacheline pressure, not
/// accidental fork-path overlap.
void drive(Kernel& k, const char* name, ProcMain body) {
  bool done = false;
  k.spawn(name, [&done, body = std::move(body)](Sys& s) -> Sub<void> {
    co_await body(s);
    done = true;
  }, /*working_set_kb=*/64, /*affinity=*/0);
  MERC_CHECK_MSG(k.run_until([&] { return done; }, kDriveBudget),
                 "lmbench driver '" << name << "' did not finish in budget");
}

/// Give the parent a realistic resident set so fork copies real PTEs.
hw::VirtAddr establish_resident_set(Sys& s, std::size_t pages) {
  const hw::VirtAddr va =
      s.mmap(pages * hw::kPageSize, /*writable=*/true);
  s.touch_pages(va, pages, /*write=*/true);
  return va;
}

}  // namespace

double Lmbench::fork_latency(Kernel& k, const LmbenchParams& p) {
  double out = 0;
  drive(k, "lat_proc-fork", [&out, p](Sys& s) -> Sub<void> {
    establish_resident_set(s, p.proc_resident_pages);
    const hw::Cycles t0 = s.cpu().now();
    for (int i = 0; i < p.fork_iters; ++i) {
      const Pid pid = s.fork([](Sys& cs) -> Sub<void> {
        cs.exit(0);
        co_return;
      });
      co_await s.wait_pid(pid);
    }
    out = hw::cycles_to_us(s.cpu().now() - t0) / p.fork_iters;
  });
  return out;
}

double Lmbench::exec_latency(Kernel& k, const LmbenchParams& p) {
  double out = 0;
  drive(k, "lat_proc-exec", [&out, p](Sys& s) -> Sub<void> {
    establish_resident_set(s, p.proc_resident_pages);
    const hw::Cycles t0 = s.cpu().now();
    for (int i = 0; i < p.exec_iters; ++i) {
      const Pid pid =
          s.fork_exec(kernel::hello_image(), [](Sys& cs) -> Sub<void> {
            cs.exit(0);
            co_return;
          });
      co_await s.wait_pid(pid);
    }
    out = hw::cycles_to_us(s.cpu().now() - t0) / p.exec_iters;
  });
  return out;
}

double Lmbench::sh_latency(Kernel& k, const LmbenchParams& p) {
  double out = 0;
  drive(k, "lat_proc-sh", [&out, p](Sys& s) -> Sub<void> {
    establish_resident_set(s, p.proc_resident_pages);
    const hw::Cycles t0 = s.cpu().now();
    for (int i = 0; i < p.sh_iters; ++i) {
      // /bin/sh -c 'hello': fork, exec the shell, which forks+execs hello.
      const Pid pid =
          s.fork_exec(kernel::shell_image(), [](Sys& cs) -> Sub<void> {
            const Pid inner =
                cs.fork_exec(kernel::hello_image(), [](Sys& ics) -> Sub<void> {
                  ics.exit(0);
                  co_return;
                });
            co_await cs.wait_pid(inner);
            cs.exit(0);
          });
      co_await s.wait_pid(pid);
    }
    out = hw::cycles_to_us(s.cpu().now() - t0) / p.sh_iters;
  });
  return out;
}

double Lmbench::ctx_latency(Kernel& k, int nprocs, std::size_t ws_kb,
                            const LmbenchParams& p) {
  // lat_ctx: a ring of processes passing a token through pipes; each hop
  // re-reads its working set after being switched in.
  std::vector<int> pipes(nprocs);
  for (int i = 0; i < nprocs; ++i) pipes[i] = k.pipe_create();

  const int rounds = p.ctx_rounds;
  int finished = 0;
  hw::Cycles start = 0, end = 0;

  for (int i = 0; i < nprocs; ++i) {
    const int in_pipe = pipes[i];
    const int out_pipe = pipes[(i + 1) % nprocs];
    const bool is_leader = i == 0;
    k.spawn("lat_ctx", [&, in_pipe, out_pipe, is_leader,
                        rounds](Sys& s) -> Sub<void> {
      const int rfd = s.adopt_pipe(in_pipe, true);
      const int wfd = s.adopt_pipe(out_pipe, false);
      if (is_leader) {
        start = s.cpu().now();
        co_await s.write_fd(wfd, 1);
      }
      for (int r = 0; r < rounds; ++r) {
        co_await s.read_fd(rfd, 1);
        s.touch_working_set();
        if (is_leader && r == rounds - 1) break;
        co_await s.write_fd(wfd, 1);
      }
      if (is_leader) end = s.cpu().now();
      ++finished;
      co_return;
    }, /*working_set_kb=*/ws_kb, /*affinity=*/0);
  }

  MERC_CHECK_MSG(
      k.run_until([&] { return finished == nprocs; }, kDriveBudget),
      "lat_ctx ring did not finish");
  const double total_switches = static_cast<double>(rounds) * nprocs;
  return hw::cycles_to_us(end - start) / total_switches;
}

double Lmbench::mmap_latency(Kernel& k, const LmbenchParams& p) {
  double out = 0;
  drive(k, "lat_mmap", [&out, p](Sys& s) -> Sub<void> {
    const std::size_t bytes = p.mmap_pages * hw::kPageSize;
    const hw::Cycles t0 = s.cpu().now();
    for (int i = 0; i < p.mmap_iters; ++i) {
      const hw::VirtAddr va =
          s.mmap(bytes, /*writable=*/false, /*inode=*/0, /*off=*/0);
      s.touch_pages(va, p.mmap_pages, /*write=*/false);
      s.munmap(va, bytes);
    }
    out = hw::cycles_to_us(s.cpu().now() - t0) / p.mmap_iters;
    co_return;
  });
  return out;
}

double Lmbench::prot_fault_latency(Kernel& k, const LmbenchParams& p) {
  double out = 0;
  drive(k, "lat_sig-prot", [&out, p](Sys& s) -> Sub<void> {
    s.task().catch_segv = true;
    const hw::VirtAddr va = s.mmap(hw::kPageSize, /*writable=*/true);
    s.touch_pages(va, 1, /*write=*/true);
    s.mprotect(va, hw::kPageSize, /*writable=*/false);
    const hw::Cycles t0 = s.cpu().now();
    for (int i = 0; i < p.fault_iters; ++i) s.prot_fault_once(va);
    out = hw::cycles_to_us(s.cpu().now() - t0) / p.fault_iters;
    MERC_CHECK(s.task().segv_caught >= static_cast<std::uint64_t>(p.fault_iters));
    co_return;
  });
  return out;
}

double Lmbench::page_fault_latency(Kernel& k, const LmbenchParams& p) {
  double out = 0;
  drive(k, "lat_pagefault", [&out, p](Sys& s) -> Sub<void> {
    const std::size_t bytes = p.pagefault_pages * hw::kPageSize;
    hw::Cycles fault_cycles = 0;
    std::uint64_t faults = 0;
    for (int i = 0; i < p.pagefault_iters; ++i) {
      const hw::VirtAddr va =
          s.mmap(bytes, /*writable=*/false, /*inode=*/0, /*off=*/0);
      // lmbench reports the pure fault service time: time the touch phase
      // only, not the map/unmap bookkeeping.
      const hw::Cycles t0 = s.cpu().now();
      s.touch_pages(va, p.pagefault_pages, /*write=*/false);
      fault_cycles += s.cpu().now() - t0;
      faults += p.pagefault_pages;
      s.munmap(va, bytes);
    }
    out = hw::cycles_to_us(fault_cycles) / static_cast<double>(faults);
    co_return;
  });
  return out;
}

LmbenchResults Lmbench::run(Kernel& k, const LmbenchParams& p) {
  LmbenchResults r;
  r.fork_us = fork_latency(k, p);
  r.exec_us = exec_latency(k, p);
  r.sh_us = sh_latency(k, p);
  r.ctx_2p0k_us = ctx_latency(k, 2, 0, p);
  r.ctx_16p16k_us = ctx_latency(k, 16, 16, p);
  r.ctx_16p64k_us = ctx_latency(k, 16, 64, p);
  r.mmap_us = mmap_latency(k, p);
  r.prot_fault_us = prot_fault_latency(k, p);
  r.page_fault_us = page_fault_latency(k, p);
  return r;
}

}  // namespace mercury::workloads
