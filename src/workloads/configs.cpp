#include "workloads/configs.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mercury::workloads {

const char* system_label(SystemId id) {
  switch (id) {
    case SystemId::kNL: return "N-L";
    case SystemId::kMN: return "M-N";
    case SystemId::kX0: return "X-0";
    case SystemId::kMV: return "M-V";
    case SystemId::kXU: return "X-U";
    case SystemId::kMU: return "M-U";
  }
  return "?";
}

Sut::~Sut() = default;

vmm::Hypervisor* Sut::hypervisor() {
  if (mercury_) return &mercury_->hypervisor();
  return hv_.get();
}

std::unique_ptr<Sut> Sut::create(SystemId id, SutParams params) {
  auto sut = std::unique_ptr<Sut>(new Sut(id));

  hw::MachineConfig mc;
  mc.num_cpus = params.cpus;
  mc.mem_kb = params.machine_mem_kb;
  mc.seed = params.seed;
  mc.nic_addr = params.nic_addr;
  sut->machine_ = std::make_unique<hw::Machine>(mc);
  hw::Machine& m = *sut->machine_;
  m.nic().bind_irq(&m.interrupts(), /*cpu=*/0);

  const std::size_t kernel_frames = (params.kernel_mem_kb * 1024) / hw::kPageSize;
  const std::size_t domu_frames = (params.domu_mem_kb * 1024) / hw::kPageSize;

  switch (id) {
    case SystemId::kNL: {
      // Unmodified native Linux: inlined sensitive ops, no reserved region.
      sut->direct_ = std::make_unique<pv::DirectOps>(m);
      sut->primary_kernel_ =
          std::make_unique<kernel::Kernel>(m, *sut->direct_, "native-linux");
      hw::Pfn first = 0;
      MERC_CHECK(m.frames().alloc_contiguous(kernel_frames, first));
      sut->primary_kernel_->boot(first, kernel_frames);
      m.install_trap_sink(sut->primary_kernel_.get());
      sut->measured_ = sut->primary_kernel_.get();
      break;
    }

    case SystemId::kMN:
    case SystemId::kMV: {
      core::MercuryConfig cfg;
      cfg.kernel_frames = kernel_frames;
      sut->mercury_ = std::make_unique<core::Mercury>(m, cfg);
      if (id == SystemId::kMV)
        MERC_CHECK(sut->mercury_->switch_to(core::ExecMode::kPartialVirtual));
      sut->measured_ = &sut->mercury_->kernel();
      break;
    }

    case SystemId::kX0: {
      sut->hv_ = std::make_unique<vmm::Hypervisor>(m);
      sut->hv_->warm_up();
      sut->hv_->bootstrap_activate();
      hw::Pfn first = 0;
      MERC_CHECK(m.frames().alloc_contiguous(kernel_frames, first));
      sut->dom0_vo_ = std::make_unique<core::VirtualVo>(
          *sut->hv_, core::VirtualVo::Role::kDriverDomain);
      sut->primary_kernel_ =
          std::make_unique<kernel::Kernel>(m, *sut->dom0_vo_, "xen-dom0");
      const vmm::DomainId dom = sut->hv_->create_domain(
          "dom0", sut->primary_kernel_.get(), first, kernel_frames,
          /*privileged=*/true, params.cpus);
      sut->dom0_vo_->bind(dom);
      sut->hv_->init_domain_memory(sut->hv_->domain(dom));
      for (std::size_t c = 0; c < params.cpus; ++c)
        sut->hv_->set_guest_on_cpu(static_cast<std::uint32_t>(c),
                                   sut->primary_kernel_.get(), dom);
      sut->primary_kernel_->boot(first, kernel_frames, sut->hv_->vmm_pdes());
      sut->measured_ = sut->primary_kernel_.get();
      break;
    }

    case SystemId::kXU: {
      sut->hv_ = std::make_unique<vmm::Hypervisor>(m);
      sut->hv_->warm_up();
      sut->hv_->bootstrap_activate();

      // dom0: the driver domain (not measured; its backend work is charged
      // inline on the CPU serving each split-I/O request).
      const std::size_t dom0_frames = (131'072ull * 1024) / hw::kPageSize;
      hw::Pfn dom0_first = 0;
      MERC_CHECK(m.frames().alloc_contiguous(dom0_frames, dom0_first));
      sut->dom0_vo_ = std::make_unique<core::VirtualVo>(
          *sut->hv_, core::VirtualVo::Role::kDriverDomain);
      sut->primary_kernel_ =
          std::make_unique<kernel::Kernel>(m, *sut->dom0_vo_, "xen-dom0");
      const vmm::DomainId dom0 = sut->hv_->create_domain(
          "dom0", sut->primary_kernel_.get(), dom0_first, dom0_frames,
          /*privileged=*/true, params.cpus);
      sut->dom0_vo_->bind(dom0);
      sut->hv_->init_domain_memory(sut->hv_->domain(dom0));
      for (std::size_t c = 0; c < params.cpus; ++c)
        sut->hv_->set_guest_on_cpu(static_cast<std::uint32_t>(c),
                                   sut->primary_kernel_.get(), dom0);
      sut->primary_kernel_->boot(dom0_first, dom0_frames, sut->hv_->vmm_pdes());

      // domU: the measured production guest with split I/O.
      hw::Pfn domu_first = 0;
      MERC_CHECK(m.frames().alloc_contiguous(domu_frames, domu_first));
      sut->domu_vo_ = std::make_unique<core::VirtualVo>(
          *sut->hv_, core::VirtualVo::Role::kGuestDomain);
      sut->domu_kernel_ =
          std::make_unique<kernel::Kernel>(m, *sut->domu_vo_, "xen-domU");
      const vmm::DomainId domu = sut->hv_->create_domain(
          "domU", sut->domu_kernel_.get(), domu_first, domu_frames,
          /*privileged=*/false, params.cpus);
      sut->domu_vo_->bind(domu);
      sut->hv_->init_domain_memory(sut->hv_->domain(domu));
      sut->hv_->blk_backend().connect_frontend(domu);
      sut->hv_->net_backend().connect_frontend(domu);
      for (std::size_t c = 0; c < params.cpus; ++c)
        sut->hv_->set_guest_on_cpu(static_cast<std::uint32_t>(c),
                                   sut->domu_kernel_.get(), domu);
      sut->domu_kernel_->boot(domu_first, domu_frames, sut->hv_->vmm_pdes());
      sut->measured_ = sut->domu_kernel_.get();
      break;
    }

    case SystemId::kMU: {
      // A self-virtualized Mercury OS attaches its VMM, becomes the driver
      // domain, and hosts an unmodified Xen-Linux guest.
      core::MercuryConfig cfg;
      cfg.kernel_frames = kernel_frames;
      sut->mercury_ = std::make_unique<core::Mercury>(m, cfg);
      MERC_CHECK(sut->mercury_->switch_to(core::ExecMode::kPartialVirtual));
      vmm::Hypervisor& hv = sut->mercury_->hypervisor();

      hw::Pfn domu_first = 0;
      MERC_CHECK(m.frames().alloc_contiguous(domu_frames, domu_first));
      sut->domu_vo_ = std::make_unique<core::VirtualVo>(
          hv, core::VirtualVo::Role::kGuestDomain);
      sut->domu_kernel_ =
          std::make_unique<kernel::Kernel>(m, *sut->domu_vo_, "mercury-domU");
      const vmm::DomainId domu = hv.create_domain(
          "domU", sut->domu_kernel_.get(), domu_first, domu_frames,
          /*privileged=*/false, params.cpus);
      sut->domu_vo_->bind(domu);
      hv.init_domain_memory(hv.domain(domu));
      hv.blk_backend().connect_frontend(domu);
      hv.net_backend().connect_frontend(domu);
      for (std::size_t c = 0; c < params.cpus; ++c)
        hv.set_guest_on_cpu(static_cast<std::uint32_t>(c),
                            sut->domu_kernel_.get(), domu);
      sut->domu_kernel_->boot(domu_first, domu_frames, hv.vmm_pdes());
      sut->measured_ = sut->domu_kernel_.get();
      break;
    }
  }

  MERC_CHECK(sut->measured_ != nullptr && sut->measured_->booted());
  return sut;
}

}  // namespace mercury::workloads
