// lmbench 3.0-a5 OS-latency microbenchmarks (paper Tables 1 & 2): process
// creation (fork/exec/sh), context switching at three process/working-set
// sizes, mmap, protection fault and page fault latency.
#pragma once

#include "kernel/kernel.hpp"

namespace mercury::workloads {

struct LmbenchParams {
  int fork_iters = 25;
  int exec_iters = 12;
  int sh_iters = 6;
  int ctx_rounds = 60;
  int mmap_iters = 3;
  std::size_t mmap_pages = 2048;  // 8 MB file
  int fault_iters = 400;
  int pagefault_iters = 3;
  std::size_t pagefault_pages = 1024;
  /// Resident pages a lat_proc parent carries into fork.
  std::size_t proc_resident_pages = 220;
};

struct LmbenchResults {
  double fork_us = 0;
  double exec_us = 0;
  double sh_us = 0;
  double ctx_2p0k_us = 0;
  double ctx_16p16k_us = 0;
  double ctx_16p64k_us = 0;
  double mmap_us = 0;       // per mmap+crawl+munmap of the whole file
  double prot_fault_us = 0;
  double page_fault_us = 0;
};

class Lmbench {
 public:
  static LmbenchResults run(kernel::Kernel& k, const LmbenchParams& p = {});

  static double fork_latency(kernel::Kernel& k, const LmbenchParams& p);
  static double exec_latency(kernel::Kernel& k, const LmbenchParams& p);
  static double sh_latency(kernel::Kernel& k, const LmbenchParams& p);
  static double ctx_latency(kernel::Kernel& k, int nprocs, std::size_t ws_kb,
                            const LmbenchParams& p);
  static double mmap_latency(kernel::Kernel& k, const LmbenchParams& p);
  static double prot_fault_latency(kernel::Kernel& k, const LmbenchParams& p);
  static double page_fault_latency(kernel::Kernel& k, const LmbenchParams& p);
};

}  // namespace mercury::workloads
