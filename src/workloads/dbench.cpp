#include "workloads/dbench.hpp"

#include <string>

#include "kernel/fs/minifs.hpp"
#include "kernel/syscalls.hpp"
#include "util/assert.hpp"

namespace mercury::workloads {

using kernel::Kernel;
using kernel::Sub;
using kernel::Sys;

DbenchResult Dbench::run(Kernel& k, const DbenchParams& p) {
  int finished = 0;
  std::uint64_t bytes_moved = 0;

  // pdflush: periodic write-back of aged dirty buffers. Self-rearming timer
  // with shared-ownership state (it may outlive this function's frame).
  const hw::Cycles interval = hw::us_to_cycles(p.flusher_interval_ms * 1000.0);
  auto flusher_on = std::make_shared<bool>(true);
  auto flush_tick = std::make_shared<std::function<void()>>();
  Kernel* kp = &k;
  // Capture the re-arm handle weakly: a shared self-capture would be a
  // refcount cycle (the function object owning itself) and never free.
  std::weak_ptr<std::function<void()>> weak_tick = flush_tick;
  *flush_tick = [kp, p, interval, flusher_on, weak_tick] {
    if (!*flusher_on) return;
    const auto tick = weak_tick.lock();
    if (!tick) return;
    hw::Cpu& cpu = kp->machine().cpu(0);
    kp->fs().writeback_some(cpu, p.flusher_blocks);
    kp->add_timer(cpu.now() + interval, *tick);
  };
  k.add_timer(k.machine().cpu(0).now() + interval, *flush_tick);

  const hw::Cycles t0 = k.earliest_cpu_time();
  for (int c = 0; c < p.clients; ++c) {
    k.spawn("dbench-client", [&, c, p](Sys& s) -> Sub<void> {
      const std::string dir = "/dbench/client" + std::to_string(c);
      s.mkdir(dir);
      for (int loop = 0; loop < p.loops_per_client; ++loop) {
        const std::string file = dir + "/f" + std::to_string(loop) + ".dat";
        // NetBench-ish metadata storm.
        for (int m = 0; m < p.metadata_ops_per_loop; ++m) {
          s.stat(dir + "/probe" + std::to_string(m % 5));
          if (m % 6 == 0) s.mkdir(dir + "/sub" + std::to_string(m));
        }
        // Write the file in chunks, re-read it, delete it.
        const int fd = s.open(file, /*create=*/true);
        MERC_CHECK(fd >= 0);
        const std::size_t chunks = p.file_kb / p.chunk_kb;
        for (std::size_t ch = 0; ch < chunks; ++ch) {
          const std::size_t n =
              co_await s.file_write(fd, p.chunk_kb * 1024);
          bytes_moved += n;
        }
        s.seek(fd, 0);
        for (std::size_t ch = 0; ch < chunks; ++ch) {
          const std::size_t n = co_await s.file_read(fd, p.chunk_kb * 1024);
          bytes_moved += n;
        }
        s.close(fd);
        s.unlink(file);
        if (p.fsync_every_loops > 0 && (loop + 1) % p.fsync_every_loops == 0) {
          // The mix's Flush op: a durability point on a fresh log segment.
          const std::string log = dir + "/log" + std::to_string(loop);
          const int lfd = s.open(log, true);
          bytes_moved += co_await s.file_write(lfd, 48 * 1024);
          s.fsync(lfd);
          s.close(lfd);
        }
      }
      ++finished;
      co_return;
    });
  }

  MERC_CHECK_MSG(
      k.run_until([&] { return finished == p.clients; },
                  600ull * 1000 * hw::kCyclesPerMillisecond),
      "dbench did not finish");
  *flusher_on = false;
  k.reap_zombies();

  DbenchResult r;
  r.elapsed = k.earliest_cpu_time() - t0;
  r.bytes_moved = bytes_moved;
  const double seconds =
      static_cast<double>(r.elapsed) /
      (static_cast<double>(hw::kCyclesPerMicrosecond) * 1e6);
  r.throughput_mb_s =
      static_cast<double>(bytes_moved) / (1024.0 * 1024.0) / seconds;
  return r;
}

}  // namespace mercury::workloads
