// dbench 3.03 analogue (paper Fig.3/4): a NetBench-style fileserver op mix —
// metadata-heavy (create/stat/unlink) with buffered writes and re-reads,
// plus a periodic write-back flusher. The flusher is what differentiates the
// configurations: native/dom0 pay real disk writes, a domU's flusher lands
// in the driver domain's write-behind cache (the paper's explanation for
// domainU beating domain0 on dbench).
#pragma once

#include "kernel/kernel.hpp"

namespace mercury::workloads {

struct DbenchParams {
  int clients = 4;
  int loops_per_client = 24;
  std::size_t file_kb = 256;
  std::size_t chunk_kb = 8;
  int metadata_ops_per_loop = 24;
  int fsync_every_loops = 12;  // the NetBench mix's Flush operations
  double flusher_interval_ms = 120.0;
  std::size_t flusher_blocks = 128;
};

struct DbenchResult {
  double throughput_mb_s = 0;
  std::uint64_t bytes_moved = 0;
  hw::Cycles elapsed = 0;
};

class Dbench {
 public:
  static DbenchResult run(kernel::Kernel& k, const DbenchParams& p = {});
};

}  // namespace mercury::workloads
