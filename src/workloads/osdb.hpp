// OSDB-IR analogue (paper Fig.3/4): PostgreSQL 7.3.6 running the Open Source
// Database Benchmark's information-retrieval mix — read-mostly index lookups
// and sequential scans over a buffer cache, with per-tuple CPU work and the
// shared-buffer page churn that makes faults and read() syscalls the
// virtualization-sensitive part of the profile.
#pragma once

#include "kernel/kernel.hpp"

namespace mercury::workloads {

struct OsdbParams {
  std::size_t table_mb = 24;        // database heap size
  int queries = 60;
  int index_probes_per_query = 10;  // B-tree descents (block reads)
  int scan_blocks_per_query = 24;   // sequential scan share
  double tuple_cpu_us = 90.0;       // executor work per query
  std::size_t buffer_pages_touched = 28;  // shared-buffer mmap churn
};

struct OsdbResult {
  double queries_per_sec = 0;
  double mean_query_us = 0;
  hw::Cycles elapsed = 0;
};

class Osdb {
 public:
  static OsdbResult run(kernel::Kernel& k, const OsdbParams& p = {});
};

}  // namespace mercury::workloads
