// Network benchmarks (paper Fig.3/4): ping RTT and Iperf TCP bandwidth
// between the system-under-test and a native peer across a gigabit link.
//
// Owns the peer machine (a plain native kernel: the in-kernel echo responder
// answers pings; an iperf server task sinks TCP) and co-steps both kernels
// on the shared simulated timeline.
#pragma once

#include <memory>

#include "kernel/kernel.hpp"
#include "pv/direct_ops.hpp"

namespace mercury::workloads {

struct NetperfParams {
  int ping_count = 20;
  std::size_t ping_bytes = 56;
  std::size_t iperf_bytes = 24 * 1024 * 1024;
  double timeout_us = 200'000.0;
};

struct NetperfResult {
  double ping_rtt_us = 0;
  double tcp_mbit_s = 0;
  int pings_lost = 0;
};

/// A second machine running a native kernel as the remote endpoint.
class PeerHost {
 public:
  explicit PeerHost(std::uint32_t addr = 0x0A000002);
  hw::Machine& machine() { return *machine_; }
  kernel::Kernel& kernel() { return *kernel_; }
  /// Wire this peer to the SUT's NIC.
  void connect_to(hw::Machine& other, hw::Link::Params params = {});
  hw::Link& link() { return *link_; }

 private:
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<pv::DirectOps> direct_;
  std::unique_ptr<kernel::Kernel> kernel_;
  std::unique_ptr<hw::Link> link_;
};

class Netperf {
 public:
  static NetperfResult run(kernel::Kernel& client, PeerHost& peer,
                           const NetperfParams& p = {});

  /// Step both kernels (earliest local clock first) until pred() or budget.
  static bool co_step(kernel::Kernel& a, kernel::Kernel& b,
                      const std::function<bool()>& pred, hw::Cycles budget);
};

}  // namespace mercury::workloads
