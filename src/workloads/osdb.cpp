#include "workloads/osdb.hpp"

#include <string>

#include "kernel/syscalls.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace mercury::workloads {

using kernel::Kernel;
using kernel::Sub;
using kernel::Sys;

OsdbResult Osdb::run(Kernel& k, const OsdbParams& p) {
  bool done = false;
  hw::Cycles elapsed = 0;

  // Single-stream DB client, pinned (also keeps t0/t1 on one CPU clock).
  k.spawn("postgres-ir", [&, p](Sys& s) -> Sub<void> {
    util::Rng rng(0x05DB);

    // Load phase: populate the heap and index files (not timed).
    const int heap_fd = s.open("/pgdata/base/heap.dat", true);
    const int idx_fd = s.open("/pgdata/base/idx.dat", true);
    MERC_CHECK(heap_fd >= 0 && idx_fd >= 0);
    const std::size_t heap_bytes = p.table_mb * 1024 * 1024;
    for (std::size_t off = 0; off < heap_bytes; off += 64 * 1024)
      co_await s.file_write(heap_fd, 64 * 1024);
    for (std::size_t off = 0; off < heap_bytes / 8; off += 64 * 1024)
      co_await s.file_write(idx_fd, 64 * 1024);
    s.fsync(heap_fd);
    s.fsync(idx_fd);

    // Shared buffers: an mmap'd arena the executor churns through.
    const std::size_t arena_pages = 2048;
    const hw::VirtAddr arena =
        s.mmap(arena_pages * hw::kPageSize, true, /*inode=*/0);

    const std::size_t heap_blocks = heap_bytes / 4096;
    const hw::Cycles t0 = s.cpu().now();
    for (int q = 0; q < p.queries; ++q) {
      // B-tree descents: random index block reads.
      for (int probe = 0; probe < p.index_probes_per_query; ++probe) {
        s.seek(idx_fd, (rng.below(heap_blocks / 8)) * 4096);
        co_await s.file_read(idx_fd, 4096);
      }
      // Sequential scan share: a run of heap blocks.
      const std::uint64_t start = rng.below(heap_blocks - p.scan_blocks_per_query);
      s.seek(heap_fd, start * 4096);
      for (int b = 0; b < p.scan_blocks_per_query; ++b)
        co_await s.file_read(heap_fd, 4096);
      // Executor: per-tuple CPU work plus shared-buffer churn (the buffer
      // replacement remaps pages, so this faults at a steady rate).
      co_await s.compute_us(p.tuple_cpu_us);
      const std::size_t base = rng.below(arena_pages - p.buffer_pages_touched);
      s.touch_pages(arena + base * hw::kPageSize, p.buffer_pages_touched, true);
      if (q % 7 == 0) {
        // Buffer replacement: drop and re-establish a slice of the arena in
        // place (MAP_FIXED), like shared-buffer recycling.
        const std::size_t slice = 64;
        const hw::VirtAddr va = arena + (q % 16) * slice * hw::kPageSize;
        s.munmap(va, slice * hw::kPageSize);
        s.mmap_fixed(va, slice * hw::kPageSize, true, 0, 0);
      }
    }
    elapsed = s.cpu().now() - t0;
    done = true;
    co_return;
  }, /*working_set_kb=*/64, /*affinity=*/0);

  MERC_CHECK_MSG(k.run_until([&] { return done; },
                             600ull * 1000 * hw::kCyclesPerMillisecond),
                 "osdb did not finish");
  k.reap_zombies();

  OsdbResult r;
  r.elapsed = elapsed;
  r.mean_query_us = hw::cycles_to_us(elapsed) / p.queries;
  r.queries_per_sec = 1e6 / r.mean_query_us;
  return r;
}

}  // namespace mercury::workloads
