// The coroutine runtime: nested awaits, exception propagation, kill paths,
// body-closure lifetime, and the wait-queue machinery.
#include "tests/kernel_fixture.hpp"

namespace mercury::testing {
namespace {

using kernel::Pid;
using kernel::Sub;
using kernel::Sys;
using kernel::TaskKilled;
using kernel::WaitQueue;

using CoroTest = KernelFixture;

Sub<int> add_later(Sys& s, int a, int b) {
  co_await s.sleep_us(100.0);
  co_return a + b;
}

Sub<int> twice_nested(Sys& s, int x) {
  const int once = co_await add_later(s, x, 1);
  const int twice = co_await add_later(s, once, 1);
  co_return twice;
}

TEST_F(CoroTest, NestedCoroutinesReturnValuesThroughSuspensions) {
  int result = 0;
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    result = co_await twice_nested(s, 40);
  }));
  EXPECT_EQ(result, 42);
}

TEST_F(CoroTest, ExceptionPropagatesAcrossNestingAndSuspension) {
  struct Boom {};
  auto thrower = [](Sys& s) -> Sub<int> {
    co_await s.sleep_us(50.0);
    throw Boom{};
    co_return 0;
  };
  bool caught = false;
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    try {
      (void)co_await thrower(s);
    } catch (const Boom&) {
      caught = true;
    }
    co_return;
  }));
  EXPECT_TRUE(caught);
}

TEST_F(CoroTest, ExitUnwindsNestedFrames) {
  // exit() thrown deep inside nested coroutines must terminate the task
  // with the right status (destructors of in-flight frames run).
  int destructions = 0;
  struct Probe {
    int* count;
    ~Probe() { ++*count; }
  };
  auto deep = [&](Sys& s) -> Sub<void> {
    Probe p{&destructions};
    co_await s.sleep_us(10.0);
    s.exit(33);
    co_return;
  };
  int status = 0;
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const Pid child = s.fork([&](Sys& cs) -> Sub<void> {
      Probe p{&destructions};
      co_await deep(cs);
      co_return;
    });
    status = co_await s.wait_pid(child);
  }));
  EXPECT_EQ(status, 33);
  EXPECT_EQ(destructions, 2) << "both frames' locals must be destroyed";
}

TEST_F(CoroTest, KillWhileBlockedRunsFrameDestructors) {
  int destructions = 0;
  struct Probe {
    int* count;
    ~Probe() { ++*count; }
  };
  const Pid pid = k->spawn("victim", [&](Sys& s) -> Sub<void> {
    Probe p{&destructions};
    for (;;) co_await s.sleep_us(1e6);
  });
  k->run_for(hw::kCyclesPerMillisecond);
  k->kill(pid);
  EXPECT_TRUE(k->run_until(
      [&] { return k->find_task(pid)->state == kernel::TaskState::kZombie; },
      50 * hw::kCyclesPerMillisecond));
  k->reap_zombies();  // destroys the suspended frame
  EXPECT_EQ(destructions, 1);
}

TEST_F(CoroTest, BodyClosureOutlivesSpawnScope) {
  // Regression: a lambda coroutine's frame references its closure, so the
  // task must keep the closure alive after spawn() returns.
  bool done = false;
  {
    std::vector<int> big(1000, 7);
    k->spawn("closure", [big, &done](Sys& s) -> Sub<void> {
      co_await s.sleep_us(2000.0);  // resumes long after spawn's scope died
      if (big[500] == 7) done = true;
      co_return;
    });
  }
  EXPECT_TRUE(
      k->run_until([&] { return done; }, 50 * hw::kCyclesPerMillisecond));
}

TEST_F(CoroTest, WaitQueueRemoveAndWakeSemantics) {
  WaitQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pop(), nullptr);
  kernel::Task a(1, 0, "a"), b(2, 0, "b");
  q.add(&a);
  q.add(&b);
  EXPECT_EQ(q.size(), 2u);
  q.remove(&a);
  EXPECT_EQ(q.pop(), &b);
  EXPECT_TRUE(q.empty());
}

TEST_F(CoroTest, BlockedTaskSnapshotsKernelSelectors) {
  const Pid pid = k->spawn("s", [](Sys& s) -> Sub<void> {
    for (;;) co_await s.sleep_us(1e5);
  });
  k->run_for(hw::kCyclesPerMillisecond);
  kernel::Task* t = k->find_task(pid);
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->saved_ctx.valid);
  EXPECT_EQ(t->saved_ctx.cs.index(), hw::kGdtKernelCs);
  EXPECT_EQ(t->saved_ctx.cs.rpl(), hw::Ring::kRing0) << "native kernel ring";
}

TEST_F(CoroTest, YieldedTaskSnapshotsUserSelectors) {
  const Pid pid = k->spawn("y", [](Sys& s) -> Sub<void> {
    for (int i = 0; i < 3; ++i) co_await s.yield();
    for (;;) co_await s.sleep_us(1e6);
  }, 64, 0);
  // Run a couple of steps so a yield snapshot happens.
  k->spawn("other", [](Sys& s) -> Sub<void> {
    co_await s.compute_us(100.0);
    co_return;
  }, 64, 0);
  k->run_for(hw::kCyclesPerMillisecond / 4);
  kernel::Task* t = k->find_task(pid);
  ASSERT_NE(t, nullptr);
  if (t->state == kernel::TaskState::kRunnable && t->saved_ctx.valid) {
    EXPECT_EQ(t->saved_ctx.cs.rpl(), hw::Ring::kRing3);
  }
}

TEST_F(CoroTest, TimedWaitWakesOnTimeout) {
  bool done = false;
  double rtt = 0;
  k->spawn("recv-timeout", [&](Sys& s) -> Sub<void> {
    const int fd = s.socket_udp(0);
    const hw::Cycles t0 = s.cpu().now();
    const auto r = co_await s.recvfrom(fd, 2000.0);  // nothing will arrive
    rtt = hw::cycles_to_us(s.cpu().now() - t0);
    done = !r.ok;
  });
  EXPECT_TRUE(
      k->run_until([&] { return done; }, 100 * hw::kCyclesPerMillisecond));
  EXPECT_GE(rtt, 2000.0);
  EXPECT_LT(rtt, 50'000.0);
}

}  // namespace
}  // namespace mercury::testing
