// PTE / TLB / MMU walker tests, including a randomized property check of the
// hardware walker against a straightforward reference translator.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "hw/cpu.hpp"
#include "hw/mmu.hpp"
#include "hw/phys_mem.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace mercury::hw {
namespace {

struct NullSink : TrapSink {
  int traps = 0;
  TrapInfo last{};
  void on_trap(Cpu&, const TrapInfo& info) override {
    ++traps;
    last = info;
  }
};

/// Test fixture with a tiny machine: PD at frame 1, one L1 at frame 2.
class MmuTest : public ::testing::Test {
 protected:
  MmuTest() : mem(4096), mmu(mem), cpu(0, 8) {
    cpu.install_trap_sink(&sink);
    cpu.set_cpl(Ring::kRing0);
    cpu.write_cr3(1);
    sink.traps = 0;  // ignore boot noise
  }

  void map_l1(std::uint32_t pde_idx, Pfn l1, bool user = true) {
    mem.write_u32(addr_of(1) + pde_idx * 4, make_pte(l1, true, user).raw);
  }
  void map_page(Pfn l1, std::uint32_t pte_idx, Pfn frame, bool writable,
                bool user, bool vmm_only = false) {
    Pte pte = make_pte(frame, writable, user);
    pte.set_flag(Pte::kVmmOnly, vmm_only);
    mem.write_u32(addr_of(l1) + pte_idx * 4, pte.raw);
  }

  PhysicalMemory mem;
  Mmu mmu;
  Cpu cpu;
  NullSink sink;
};

TEST(Pte, BitAccessors) {
  Pte p = make_pte(0x1234, true, false, true);
  EXPECT_TRUE(p.present());
  EXPECT_TRUE(p.writable());
  EXPECT_FALSE(p.user());
  EXPECT_TRUE(p.global());
  EXPECT_EQ(p.pfn(), 0x1234u);
  p.set_flag(Pte::kWritable, false);
  EXPECT_FALSE(p.writable());
  p.set_pfn(0x4321);
  EXPECT_EQ(p.pfn(), 0x4321u);
  EXPECT_FALSE(p.writable()) << "set_pfn must preserve flags";
}

TEST(SegmentSelectorTest, RplRoundTrip) {
  SegmentSelector s = make_selector(kGdtKernelCs, Ring::kRing1);
  EXPECT_EQ(s.rpl(), Ring::kRing1);
  EXPECT_EQ(s.index(), kGdtKernelCs);
  s.set_rpl(Ring::kRing0);
  EXPECT_EQ(s.rpl(), Ring::kRing0);
  EXPECT_EQ(s.index(), kGdtKernelCs);
}

TEST(TlbTest, InsertLookupFlush) {
  Tlb tlb(4);
  Pte pte = make_pte(77, true, true);
  tlb.insert(5, pte);
  auto hit = tlb.lookup(5);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->pfn, 77u);
  EXPECT_TRUE(hit->writable);
  tlb.flush_page(5);
  EXPECT_FALSE(tlb.lookup(5).has_value());
}

TEST(TlbTest, FifoEvictionAtCapacity) {
  Tlb tlb(2);
  tlb.insert(1, make_pte(1, true, true));
  tlb.insert(2, make_pte(2, true, true));
  tlb.insert(3, make_pte(3, true, true));  // evicts vpn 1
  EXPECT_FALSE(tlb.lookup(1).has_value());
  EXPECT_TRUE(tlb.lookup(2).has_value());
  EXPECT_TRUE(tlb.lookup(3).has_value());
}

TEST(TlbTest, GlobalEntriesSurviveFlushAll) {
  Tlb tlb(4);
  tlb.insert(1, make_pte(1, true, true, /*global=*/true));
  tlb.insert(2, make_pte(2, true, true, /*global=*/false));
  tlb.flush_all();
  EXPECT_TRUE(tlb.lookup(1).has_value());
  EXPECT_FALSE(tlb.lookup(2).has_value());
  tlb.flush_global();
  EXPECT_FALSE(tlb.lookup(1).has_value());
}

TEST(TlbTest, ReinsertSameVpnUpdatesInPlace) {
  Tlb tlb(4);
  tlb.insert(9, make_pte(1, false, true));
  tlb.insert(9, make_pte(2, true, true));
  auto hit = tlb.lookup(9);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->pfn, 2u);
  EXPECT_EQ(tlb.valid_entries(), 1u);
}

TEST_F(MmuTest, TranslateSimpleMapping) {
  map_l1(0, 2);
  map_page(2, 5, 100, true, true);
  const VirtAddr va = 5 * kPageSize + 123;
  auto pa = mmu.translate(cpu, va, Access::kRead);
  ASSERT_TRUE(pa.has_value());
  EXPECT_EQ(*pa, addr_of(100) + 123);
}

TEST_F(MmuTest, NotPresentFaults) {
  map_l1(0, 2);
  PageFault pf;
  EXPECT_FALSE(mmu.translate(cpu, 7 * kPageSize, Access::kRead, &pf).has_value());
  EXPECT_FALSE(pf.present);
}

TEST_F(MmuTest, MissingDirectoryFaults) {
  PageFault pf;
  EXPECT_FALSE(
      mmu.translate(cpu, 0x40000000, Access::kRead, &pf).has_value());
}

TEST_F(MmuTest, WriteToReadOnlyFaults) {
  map_l1(0, 2);
  map_page(2, 5, 100, /*writable=*/false, true);
  PageFault pf;
  EXPECT_TRUE(mmu.translate(cpu, 5 * kPageSize, Access::kRead, &pf).has_value());
  EXPECT_FALSE(mmu.translate(cpu, 5 * kPageSize, Access::kWrite, &pf).has_value());
  EXPECT_TRUE(pf.present);
  EXPECT_TRUE(pf.write);
}

TEST_F(MmuTest, UserBitEnforcedAtRing3) {
  map_l1(0, 2);
  map_page(2, 5, 100, true, /*user=*/false);
  cpu.set_cpl(Ring::kRing3);
  PageFault pf;
  EXPECT_FALSE(mmu.translate(cpu, 5 * kPageSize, Access::kRead, &pf).has_value());
  cpu.set_cpl(Ring::kRing0);
  EXPECT_TRUE(mmu.translate(cpu, 5 * kPageSize, Access::kRead).has_value());
}

TEST_F(MmuTest, VmmOnlyBlocksRing1ButNotRing0) {
  map_l1(0, 2, /*user=*/true);
  map_page(2, 5, 100, true, false, /*vmm_only=*/true);
  cpu.set_cpl(Ring::kRing1);
  EXPECT_FALSE(mmu.translate(cpu, 5 * kPageSize, Access::kRead).has_value());
  cpu.set_cpl(Ring::kRing0);
  EXPECT_TRUE(mmu.translate(cpu, 5 * kPageSize, Access::kRead).has_value());
}

TEST_F(MmuTest, PermissionsCombineAcrossLevels) {
  // PDE read-only gates the whole 4 MB region.
  mem.write_u32(addr_of(1) + 0, make_pte(2, /*writable=*/false, true).raw);
  map_page(2, 5, 100, /*writable=*/true, true);
  EXPECT_FALSE(mmu.translate(cpu, 5 * kPageSize, Access::kWrite).has_value());
  EXPECT_TRUE(mmu.translate(cpu, 5 * kPageSize, Access::kRead).has_value());
}

TEST_F(MmuTest, AccessedAndDirtyBitsSet) {
  map_l1(0, 2);
  map_page(2, 5, 100, true, true);
  (void)mmu.translate(cpu, 5 * kPageSize, Access::kRead);
  Pte pte{mem.read_u32(addr_of(2) + 5 * 4)};
  EXPECT_TRUE(pte.accessed());
  EXPECT_FALSE(pte.dirty());
  (void)mmu.translate(cpu, 5 * kPageSize, Access::kWrite);
  pte = Pte{mem.read_u32(addr_of(2) + 5 * 4)};
  EXPECT_TRUE(pte.dirty());
}

TEST_F(MmuTest, StaleTlbPermissionRecheckedViaWalk) {
  map_l1(0, 2);
  map_page(2, 5, 100, true, true);
  (void)mmu.translate(cpu, 5 * kPageSize, Access::kWrite);  // cached writable
  // Downgrade in memory without flushing.
  map_page(2, 5, 100, /*writable=*/false, true);
  // TLB still says writable; hardware must not allow a write based on a
  // stale *fail* — our model re-walks when the TLB says no.
  auto hit = mmu.translate(cpu, 5 * kPageSize, Access::kWrite);
  // With the stale TLB entry the write is (incorrectly from the OS's view)
  // still permitted — exactly why kernels must flush after downgrades.
  EXPECT_TRUE(hit.has_value());
  cpu.tlb().flush_page(5);
  EXPECT_FALSE(mmu.translate(cpu, 5 * kPageSize, Access::kWrite).has_value());
}

TEST_F(MmuTest, RaiseTrapDeliversToSink) {
  map_l1(0, 2);
  // translate_or_fault raises through the CPU; the sink here does not fix
  // the fault, so the retry loop trips the livelock invariant.
  EXPECT_THROW(mmu.translate_or_fault(cpu, 9 * kPageSize, Access::kRead),
               util::InvariantError);
  EXPECT_GT(sink.traps, 0);
  EXPECT_EQ(sink.last.kind, TrapKind::kPageFault);
  EXPECT_EQ(sink.last.fault_addr, 9 * kPageSize);
}

TEST_F(MmuTest, TranslationChargesCycles) {
  map_l1(0, 2);
  map_page(2, 5, 100, true, true);
  const Cycles before = cpu.now();
  (void)mmu.translate(cpu, 5 * kPageSize, Access::kRead);  // cold: walk
  const Cycles walk_cost = cpu.now() - before;
  const Cycles before2 = cpu.now();
  (void)mmu.translate(cpu, 5 * kPageSize, Access::kRead);  // warm: TLB hit
  const Cycles hit_cost = cpu.now() - before2;
  EXPECT_GT(walk_cost, hit_cost);
}

TEST_F(MmuTest, MemoryAccessorsReadWrite) {
  map_l1(0, 2);
  map_page(2, 5, 100, true, true);
  mmu.write_u32(cpu, 5 * kPageSize + 16, 0xFEEDFACE);
  EXPECT_EQ(mmu.read_u32(cpu, 5 * kPageSize + 16), 0xFEEDFACEu);
  mmu.write_u8(cpu, 5 * kPageSize + 100, 0x5A);
  EXPECT_EQ(mmu.read_u8(cpu, 5 * kPageSize + 100), 0x5Au);
}

TEST_F(MmuTest, PeekPteMatchesInstalled) {
  map_l1(0, 2);
  map_page(2, 7, 42, true, true);
  auto pte = mmu.peek_pte(cpu, 7 * kPageSize);
  ASSERT_TRUE(pte.has_value());
  EXPECT_EQ(pte->pfn(), 42u);
  EXPECT_FALSE(mmu.peek_pte(cpu, 8 * kPageSize).has_value());
}

// --- property test: hardware walker vs reference translator --------------------

struct RefModel {
  std::map<std::uint32_t, Pte> pages;  // vpn -> final pte

  std::optional<PhysAddr> translate(VirtAddr va, Access a, Ring cpl) const {
    auto it = pages.find(vpn_of(va));
    if (it == pages.end() || !it->second.present()) return std::nullopt;
    const Pte& p = it->second;
    if (cpl == Ring::kRing3 && !p.user()) return std::nullopt;
    if (cpl != Ring::kRing0 && p.vmm_only()) return std::nullopt;
    if (a == Access::kWrite && !p.writable()) return std::nullopt;
    return addr_of(p.pfn()) + page_offset(va);
  }
};

class MmuPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MmuPropertyTest, WalkerAgreesWithReferenceModel) {
  PhysicalMemory mem(8192);
  Mmu mmu(mem);
  Cpu cpu(0, 16);
  NullSink sink;
  cpu.install_trap_sink(&sink);
  cpu.write_cr3(1);

  util::Rng rng(GetParam());
  RefModel ref;

  // Random page tables: 4 L1s under PDEs 0..3, random mappings.
  const Pfn l1s[4] = {2, 3, 4, 5};
  for (int d = 0; d < 4; ++d)
    mem.write_u32(addr_of(1) + d * 4, make_pte(l1s[d], true, true).raw);
  for (int i = 0; i < 400; ++i) {
    const std::uint32_t pde = static_cast<std::uint32_t>(rng.below(4));
    const std::uint32_t idx = static_cast<std::uint32_t>(rng.below(kPtEntries));
    Pte pte;
    if (rng.chance(0.8)) {
      pte = make_pte(static_cast<Pfn>(rng.between(100, 4000)), rng.chance(0.6),
                     rng.chance(0.7));
      pte.set_flag(Pte::kVmmOnly, rng.chance(0.1));
    }
    mem.write_u32(addr_of(l1s[pde]) + idx * 4, pte.raw);
    ref.pages[pde * kPtEntries + idx] = pte;
  }

  for (int i = 0; i < 2000; ++i) {
    const VirtAddr va = static_cast<VirtAddr>(rng.below(4 * (1u << 22)));
    const Access a = rng.chance(0.5) ? Access::kRead : Access::kWrite;
    const Ring cpl = rng.chance(0.33)   ? Ring::kRing0
                     : rng.chance(0.5) ? Ring::kRing1
                                       : Ring::kRing3;
    cpu.set_cpl(cpl);
    // Note: the MMU sets A/D bits, which the reference ignores; and the TLB
    // may carry entries inserted under a different CPL, so flush per probe
    // for exact agreement.
    cpu.tlb().flush_global();
    const auto got = mmu.translate(cpu, va, a);
    const auto want = ref.translate(va, a, cpl);
    ASSERT_EQ(got.has_value(), want.has_value())
        << "va=0x" << std::hex << va << " write=" << (a == Access::kWrite)
        << " cpl=" << static_cast<int>(cpl);
    if (got) {
      EXPECT_EQ(*got, *want);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, MmuPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace mercury::hw
