// The sensitive-operation interface: DirectOps (bare hardware) semantics
// and the cost asymmetries the whole evaluation relies on.
#include <gtest/gtest.h>

#include <array>
#include <deque>

#include "hw/machine.hpp"
#include "pv/costs.hpp"
#include "pv/direct_ops.hpp"
#include "tests/kernel_fixture.hpp"
#include "workloads/configs.hpp"

namespace mercury::testing {
namespace {

using workloads::Sut;
using workloads::SutParams;
using workloads::SystemId;

struct DirectFixture : ::testing::Test {
  DirectFixture() : machine(cfg()), ops(machine) {
    machine.install_trap_sink(&sink);
  }
  static hw::MachineConfig cfg() {
    hw::MachineConfig mc;
    mc.mem_kb = 16 * 1024;
    return mc;
  }
  struct Sink : hw::TrapSink {
    void on_trap(hw::Cpu&, const hw::TrapInfo&) override {}
  } sink;
  hw::Machine machine;
  pv::DirectOps ops;
};

TEST_F(DirectFixture, IdentifiesAsNativeRing0) {
  EXPECT_FALSE(ops.is_virtual());
  EXPECT_EQ(ops.kernel_ring(), hw::Ring::kRing0);
  EXPECT_EQ(ops.copy_tax_per_kb(), 0u);
}

TEST_F(DirectFixture, PteWriteLandsInMemory) {
  hw::Cpu& cpu = machine.cpu(0);
  const hw::Pte pte = hw::make_pte(77, true, true);
  ops.pte_write(cpu, hw::addr_of(5) + 12, pte);
  EXPECT_EQ(machine.memory().read_u32(hw::addr_of(5) + 12), pte.raw);
}

TEST_F(DirectFixture, BatchWritesAllEntries) {
  hw::Cpu& cpu = machine.cpu(0);
  std::array<pv::PteUpdate, 3> updates{{
      {hw::addr_of(5) + 0, hw::make_pte(1, true, true)},
      {hw::addr_of(5) + 4, hw::make_pte(2, true, true)},
      {hw::addr_of(5) + 8, hw::make_pte(3, true, true)},
  }};
  ops.pte_write_batch(cpu, updates);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(hw::Pte{machine.memory().read_u32(hw::addr_of(5) + i * 4)}.pfn(),
              static_cast<hw::Pfn>(i + 1));
}

TEST_F(DirectFixture, PinIsFreeOnBareHardware) {
  hw::Cpu& cpu = machine.cpu(0);
  const hw::Cycles before = cpu.now();
  ops.pin_page_table(cpu, 9, pv::PtLevel::kL1);
  ops.unpin_page_table(cpu, 9);
  EXPECT_EQ(cpu.now(), before) << "no page-type discipline natively";
}

TEST_F(DirectFixture, FlushTlbDropsEntries) {
  hw::Cpu& cpu = machine.cpu(0);
  cpu.tlb().insert(3, hw::make_pte(3, true, true));
  ops.flush_tlb(cpu);
  EXPECT_FALSE(cpu.tlb().lookup(3).has_value());
}

TEST_F(DirectFixture, DiskOpsChargeDeviceCosts) {
  hw::Cpu& cpu = machine.cpu(0);
  std::array<std::uint8_t, 4096> buf{};
  const hw::Cycles before = cpu.now();
  ops.disk_write(cpu, 100, buf);
  EXPECT_GE(cpu.now() - before, hw::costs::kDiskOverhead);
}

// --- cost asymmetries across the six systems ------------------------------------

SutParams tiny() {
  SutParams p;
  p.machine_mem_kb = 256 * 1024;
  p.kernel_mem_kb = 96 * 1024;
  p.domu_mem_kb = 64 * 1024;
  return p;
}

hw::Cycles cost_of_pte_write(Sut& sut) {
  kernel::Kernel& k = sut.kernel();
  hw::Cpu& cpu = sut.machine().cpu(0);
  // Use a real page-table slot so VMM validation passes.
  const hw::Pfn l1 = k.kernel_l1_frames().back();
  const hw::PhysAddr addr = hw::addr_of(l1) + 4000;  // high, unused entry
  const hw::Cycles before = cpu.now();
  k.ops().pte_write(cpu, addr, hw::Pte{});
  return cpu.now() - before;
}

TEST(PvCosts, VirtualPteWriteIsTrapAndEmulatePriced) {
  auto nl = Sut::create(SystemId::kNL, tiny());
  auto x0 = Sut::create(SystemId::kX0, tiny());
  const hw::Cycles native = cost_of_pte_write(*nl);
  const hw::Cycles virt = cost_of_pte_write(*x0);
  EXPECT_GT(virt, 10 * native)
      << "writable-page-table emulation dominates Xen's PTE path";
  EXPECT_GT(virt, pv::costs::kPteEmulateDecode);
}

TEST(PvCosts, BatchedUpdatesAmortizeTheHypercall) {
  auto x0 = Sut::create(SystemId::kX0, tiny());
  kernel::Kernel& k = x0->kernel();
  hw::Cpu& cpu = x0->machine().cpu(0);
  const hw::Pfn l1 = k.kernel_l1_frames().back();
  std::vector<pv::PteUpdate> batch;
  for (int i = 0; i < 64; ++i)
    batch.push_back({hw::addr_of(l1) + 3700 + i * 4, hw::Pte{}});

  const hw::Cycles t0 = cpu.now();
  k.ops().pte_write_batch(cpu, batch);
  const hw::Cycles batched = cpu.now() - t0;

  const hw::Cycles t1 = cpu.now();
  for (const auto& u : batch) k.ops().pte_write(cpu, u.pte_addr, u.value);
  const hw::Cycles singles = cpu.now() - t1;

  EXPECT_LT(batched, singles / 2)
      << "multicall batching must amortize the per-trap cost";
}

TEST(PvCosts, SyscallPathDearerWhenDeprivileged) {
  auto nl = Sut::create(SystemId::kNL, tiny());
  auto x0 = Sut::create(SystemId::kX0, tiny());
  auto cost = [](Sut& s) {
    hw::Cpu& cpu = s.machine().cpu(0);
    const hw::Cycles before = cpu.now();
    s.kernel().ops().syscall_entered(cpu);
    s.kernel().ops().syscall_exiting(cpu);
    return cpu.now() - before;
  };
  EXPECT_GT(cost(*x0), cost(*nl));
}

TEST(PvCosts, VirtualIrqToggleIsCheapSharedInfoWrite) {
  auto x0 = Sut::create(SystemId::kX0, tiny());
  hw::Cpu& cpu = x0->machine().cpu(0);
  const hw::Cycles before = cpu.now();
  x0->kernel().ops().irq_disable(cpu);
  x0->kernel().ops().irq_enable(cpu);
  // No trap: far below a hypercall round trip.
  EXPECT_LT(cpu.now() - before, pv::costs::kHypercallEntry);
  EXPECT_TRUE(cpu.interrupts_enabled());
}

TEST(PvCosts, Cr3SwitchIncludesVmmContextSwitchWork) {
  auto nl = Sut::create(SystemId::kNL, tiny());
  auto x0 = Sut::create(SystemId::kX0, tiny());
  auto cost = [](Sut& s) {
    hw::Cpu& cpu = s.machine().cpu(0);
    const hw::Cycles before = cpu.now();
    s.kernel().ops().write_cr3(cpu, s.kernel().kernel_pd());
    return cpu.now() - before;
  };
  EXPECT_GT(cost(*x0), cost(*nl) + pv::costs::kVmmCtxSwitch / 2);
}

TEST(PvCosts, GuestNetworkPathFarDearerThanDriverDomain) {
  // Declared before the systems so the wires outlive the attached NICs.
  std::deque<hw::Link> links;
  auto x0 = Sut::create(SystemId::kX0, tiny());
  auto xu = Sut::create(SystemId::kXU, tiny());
  auto cost = [&links](Sut& s) {
    static hw::Nic dummy_peer(0xFE);  // wire sink
    hw::Link& link = links.emplace_back();
    link.attach(&s.machine().nic(), &dummy_peer);
    hw::Cpu& cpu = s.machine().cpu(0);
    hw::Packet pkt;
    pkt.payload_bytes = 1448;
    const hw::Cycles before = cpu.now();
    s.kernel().ops().net_send(cpu, pkt);
    return cpu.now() - before;
  };
  EXPECT_GT(cost(*xu), cost(*x0) + pv::costs::kVirtNetGuestTxExtra / 2)
      << "domU pays the split-driver hop on top of the dom0 path";
}

}  // namespace
}  // namespace mercury::testing
