// Stress/endurance: many switch round trips under load must neither leak
// frames nor corrupt state nor drift in cost.
#include <gtest/gtest.h>

#include <memory>

#include "core/mercury.hpp"
#include "kernel/syscalls.hpp"
#include "tests/test_seed.hpp"
#include "util/rng.hpp"

namespace mercury::testing {
namespace {

using core::ExecMode;
using core::Mercury;
using kernel::Sub;
using kernel::Sys;

TEST(SwitchStress, FiftyRoundTripsUnderLoadAreStable) {
  // Dwell times between switches are randomized so round trips land at
  // varying phases of the workload. The seed is logged (and overridable via
  // MERCURY_TEST_SEED) so any failure replays exactly.
  util::Rng rng(test_seed(0x57E55ull));
  hw::MachineConfig mc;
  mc.mem_kb = 192 * 1024;
  hw::Machine machine(mc);
  core::MercuryConfig cfg;
  cfg.kernel_frames = (64ull * 1024 * 1024) / hw::kPageSize;
  Mercury m(machine, cfg);

  long progress = 0;
  m.kernel().spawn("load", [&](Sys& s) -> Sub<void> {
    const auto va = s.mmap(24 * hw::kPageSize, true);
    const int fd = s.open("/load", true);
    for (;;) {
      s.touch_pages(va, 24, true);
      co_await s.file_write(fd, 4096);
      co_await s.compute_us(150.0);
      ++progress;
    }
  });

  const std::size_t frames_used_initial = m.kernel().pool().used_count();
  hw::Cycles first_attach = 0, last_attach = 0;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual)) << "round " << i;
    if (i == 0) first_attach = m.engine().stats().last_attach_cycles;
    last_attach = m.engine().stats().last_attach_cycles;
    m.kernel().run_for(hw::us_to_cycles(static_cast<double>(rng.between(500, 1500))));
    ASSERT_TRUE(m.switch_to(ExecMode::kNative)) << "round " << i;
    m.kernel().run_for(hw::us_to_cycles(static_cast<double>(rng.between(500, 1500))));
  }

  EXPECT_EQ(m.engine().stats().attaches, 50u);
  EXPECT_EQ(m.engine().stats().detaches, 50u);
  EXPECT_EQ(m.hypervisor().stats().domains_crashed, 0u);
  EXPECT_GT(progress, 0);
  // No monotonic frame leak from the switch machinery itself (the workload
  // holds a steady set).
  EXPECT_LT(m.kernel().pool().used_count(),
            frames_used_initial + 64);
  // Attach cost must not drift (e.g. from protected-frame set leakage).
  EXPECT_LT(last_attach, first_attach + first_attach / 2);
  // The page tables are writable again and the kernel is the trap owner.
  EXPECT_EQ(machine.cpu(0).trap_sink(),
            static_cast<hw::TrapSink*>(&m.kernel()));
}

TEST(SwitchStress, AlternatingPartialAndFullModes) {
  hw::MachineConfig mc;
  mc.mem_kb = 192 * 1024;
  hw::Machine machine(mc);
  core::MercuryConfig cfg;
  cfg.kernel_frames = (64ull * 1024 * 1024) / hw::kPageSize;
  Mercury m(machine, cfg);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
    ASSERT_TRUE(m.switch_to(ExecMode::kFullVirtual));
    ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
    ASSERT_TRUE(m.switch_to(ExecMode::kNative));
  }
  EXPECT_FALSE(m.hypervisor().blk_backend().connected());
  EXPECT_FALSE(m.hypervisor().active());
}

TEST(SwitchStress, BackToBackRequestsCoalesce) {
  hw::MachineConfig mc;
  mc.mem_kb = 160 * 1024;
  hw::Machine machine(mc);
  core::MercuryConfig cfg;
  cfg.kernel_frames = (48ull * 1024 * 1024) / hw::kPageSize;
  Mercury m(machine, cfg);

  // Fire several requests before stepping: the last target wins, and the
  // engine must settle without double-attaching.
  m.engine().request(ExecMode::kPartialVirtual);
  m.engine().request(ExecMode::kFullVirtual);
  EXPECT_TRUE(m.kernel().run_until(
      [&] { return m.engine().idle(); }, 200 * hw::kCyclesPerMillisecond));
  EXPECT_EQ(m.mode(), ExecMode::kFullVirtual);
  EXPECT_TRUE(m.switch_to(ExecMode::kNative));
}

}  // namespace
}  // namespace mercury::testing
