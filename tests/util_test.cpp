#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace mercury::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversRange) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenInclusive) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = r.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, ChanceProbability) {
  Rng r(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i)
    if (r.chance(0.25)) ++hits;
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng r(17);
  double sum = 0;
  for (int i = 0; i < 50000; ++i) sum += r.exponential(10.0);
  EXPECT_NEAR(sum / 50000, 10.0, 0.5);
}

TEST(Rng, ZipfInRangeAndSkewed) {
  Rng r(19);
  std::uint64_t low = 0, total = 20000;
  for (std::uint64_t i = 0; i < total; ++i) {
    const auto v = r.zipf(100, 1.0);
    EXPECT_LT(v, 100u);
    if (v < 10) ++low;
  }
  // Hot items dominate.
  EXPECT_GT(low, total / 4);
}

TEST(Rng, SplitYieldsIndependentStream) {
  Rng a(23);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(5);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, QuantilesBracketValues) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.add(100);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_GE(h.quantile(0.5), 100u);
  EXPECT_LE(h.quantile(0.5), 127u);  // bucket upper bound
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram h;
  h.add(1);
  h.add(1000000);
  EXPECT_NE(h.summary().find("n=2"), std::string::npos);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"a", "bb"});
  t.add_row({"x", "y"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| a"), std::string::npos);
  EXPECT_NE(out.find("| x"), std::string::npos);
}

TEST(Table, NumericRowFormatting) {
  Table t({"k", "v"});
  t.add_numeric_row("pi", {3.14159}, 2);
  EXPECT_NE(t.render().find("3.14"), std::string::npos);
}

TEST(Table, RowWidthMismatchIsInvariantError) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvariantError);
}

TEST(Assert, CheckThrowsWithMessage) {
  try {
    MERC_CHECK_MSG(false, "ctx " << 42);
    FAIL() << "should have thrown";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace mercury::util
