#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace mercury::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversRange) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenInclusive) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = r.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, ChanceProbability) {
  Rng r(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i)
    if (r.chance(0.25)) ++hits;
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng r(17);
  double sum = 0;
  for (int i = 0; i < 50000; ++i) sum += r.exponential(10.0);
  EXPECT_NEAR(sum / 50000, 10.0, 0.5);
}

TEST(Rng, ZipfInRangeAndSkewed) {
  Rng r(19);
  std::uint64_t low = 0, total = 20000;
  for (std::uint64_t i = 0; i < total; ++i) {
    const auto v = r.zipf(100, 1.0);
    EXPECT_LT(v, 100u);
    if (v < 10) ++low;
  }
  // Hot items dominate.
  EXPECT_GT(low, total / 4);
}

TEST(Rng, SplitYieldsIndependentStream) {
  Rng a(23);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(5);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, QuantilesBracketValues) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.add(100);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_GE(h.quantile(0.5), 100u);
  EXPECT_LE(h.quantile(0.5), 127u);  // bucket upper bound
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram h;
  h.add(1);
  h.add(1000000);
  EXPECT_NE(h.summary().find("n=2"), std::string::npos);
}

TEST(Histogram, QuantileOfEmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(Histogram, QuantileClampsOutOfRangeArguments) {
  Histogram h;
  h.add(100);
  h.add(100000);
  // Below 0 behaves like the smallest recorded bucket, above 1 like the
  // largest; neither may fall back to a sentinel or read out of bounds.
  EXPECT_EQ(h.quantile(-3.0), h.quantile(0.0));
  EXPECT_EQ(h.quantile(7.5), h.quantile(1.0));
  EXPECT_LE(h.quantile(0.0), 127u);       // bucket containing 100
  EXPECT_GE(h.quantile(1.0), 100000u);    // bucket containing 100000
  EXPECT_EQ(h.quantile(std::nan("")), h.quantile(0.0));
}

TEST(Histogram, QuantileBoundsSingleValue) {
  Histogram h;
  h.add(1000);
  // Every quantile of a single-sample distribution is that sample's bucket.
  const std::uint64_t b = h.quantile(0.5);
  EXPECT_EQ(h.quantile(0.0), b);
  EXPECT_EQ(h.quantile(0.01), b);
  EXPECT_EQ(h.quantile(0.99), b);
  EXPECT_EQ(h.quantile(1.0), b);
  EXPECT_GE(b, 1000u);
  EXPECT_LE(b, 1023u);
}

TEST(Histogram, QuantilesAreMonotonic) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 4096; v *= 2) h.add(v);
  std::uint64_t prev = 0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const std::uint64_t cur = h.quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

TEST(Table, RendersAlignedColumns) {
  Table t({"a", "bb"});
  t.add_row({"x", "y"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| a"), std::string::npos);
  EXPECT_NE(out.find("| x"), std::string::npos);
}

TEST(Table, NumericRowFormatting) {
  Table t({"k", "v"});
  t.add_numeric_row("pi", {3.14159}, 2);
  EXPECT_NE(t.render().find("3.14"), std::string::npos);
}

TEST(Table, RowWidthMismatchIsInvariantError) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvariantError);
}

TEST(Assert, CheckThrowsWithMessage) {
  try {
    MERC_CHECK_MSG(false, "ctx " << 42);
    FAIL() << "should have thrown";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

// Restores global logger state around each log test (the logger is
// process-global; leaking an override would poison unrelated tests).
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = log_level(); }
  void TearDown() override {
    set_log_level(saved_level_);
    clear_log_level_overrides();
    set_log_sink(nullptr);
  }
  LogLevel saved_level_ = LogLevel::kWarn;
};

TEST_F(LogTest, FormatIsOneTerminatedLine) {
  const std::string line =
      format_log_line(LogLevel::kError, "vmm", "domain 3 crashed");
  EXPECT_EQ(line, "[ERROR] vmm: domain 3 crashed\n");
  // Exactly one newline, at the end: a single fwrite of this string can
  // never interleave partial lines from concurrent emitters.
  EXPECT_EQ(line.find('\n'), line.size() - 1);
}

TEST_F(LogTest, EmitWritesExactlyTheFormattedLine) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  set_log_sink(tmp);
  log_emit(LogLevel::kInfo, "kernel", "boot complete");
  std::fflush(tmp);
  std::rewind(tmp);
  char buf[128] = {};
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, tmp);
  EXPECT_EQ(std::string(buf, n), "[INFO ] kernel: boot complete\n");
  set_log_sink(nullptr);
  std::fclose(tmp);
}

TEST_F(LogTest, SubsystemOverrideBeatsGlobalLevel) {
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug, "vmm"));
  set_log_level("vmm", LogLevel::kDebug);
  EXPECT_TRUE(log_enabled(LogLevel::kDebug, "vmm"));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug, "kernel")) << "override is scoped";
  EXPECT_EQ(log_level("vmm"), LogLevel::kDebug);
  EXPECT_EQ(log_level("kernel"), LogLevel::kWarn);
  // An override can also *silence* a subsystem below the global threshold.
  set_log_level("net", LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError, "net"));
  clear_log_level("vmm");
  EXPECT_FALSE(log_enabled(LogLevel::kDebug, "vmm"));
  EXPECT_FALSE(log_enabled(LogLevel::kError, "net")) << "net override remains";
  clear_log_level_overrides();
  EXPECT_TRUE(log_enabled(LogLevel::kError, "net"));
}

TEST_F(LogTest, OffLevelNeverLogs) {
  set_log_level(LogLevel::kTrace);
  EXPECT_FALSE(log_enabled(LogLevel::kOff, "any"));
}

TEST_F(LogTest, LogRespectsSubsystemOverride) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  set_log_sink(tmp);
  set_log_level(LogLevel::kError);
  set_log_level("sched", LogLevel::kTrace);
  log_debug("sched", "pick task ", 7);
  log_debug("kernel", "suppressed");
  std::fflush(tmp);
  std::rewind(tmp);
  char buf[256] = {};
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, tmp);
  const std::string out(buf, n);
  EXPECT_NE(out.find("[DEBUG] sched: pick task 7\n"), std::string::npos);
  EXPECT_EQ(out.find("suppressed"), std::string::npos);
  set_log_sink(nullptr);
  std::fclose(tmp);
}

}  // namespace
}  // namespace mercury::util
