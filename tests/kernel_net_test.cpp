// Network stack: UDP, echo, TCP-lite handshake/flow control, timeouts,
// two-kernel co-stepping.
#include "tests/kernel_fixture.hpp"
#include "workloads/netperf.hpp"

namespace mercury::testing {
namespace {

using kernel::Sub;
using kernel::Sys;
using workloads::Netperf;
using workloads::PeerHost;

class NetTest : public KernelFixture {
 protected:
  NetTest() : peer(0x0A0000FE) { peer.connect_to(*machine); }
  PeerHost peer;
};

TEST_F(NetTest, PingGetsEchoReply) {
  double rtt = -1;
  bool done = false;
  k->spawn("ping", [&](Sys& s) -> Sub<void> {
    rtt = co_await s.ping(0x0A0000FE, 56, 50'000.0);
    done = true;
  });
  EXPECT_TRUE(Netperf::co_step(*k, peer.kernel(), [&] { return done; },
                               200 * hw::kCyclesPerMillisecond));
  EXPECT_GT(rtt, 0.0);
  EXPECT_LT(rtt, 500.0) << "RTT should be ~100us, not timer-quantized";
  EXPECT_GE(peer.kernel().net().stats().echoes_answered, 1u);
}

TEST_F(NetTest, PingTimesOutWhenLinkDown) {
  peer.link().set_up(false);
  double rtt = 0;
  bool done = false;
  k->spawn("ping", [&](Sys& s) -> Sub<void> {
    rtt = co_await s.ping(0x0A0000FE, 56, 3000.0);
    done = true;
  });
  EXPECT_TRUE(Netperf::co_step(*k, peer.kernel(), [&] { return done; },
                               200 * hw::kCyclesPerMillisecond));
  EXPECT_LT(rtt, 0.0) << "loss must be reported";
}

TEST_F(NetTest, UdpRoundTrip) {
  bool got = false;
  std::size_t got_bytes = 0;
  peer.kernel().spawn("udp-server", [&](Sys& s) -> Sub<void> {
    const int fd = s.socket_udp(7777);
    const auto r = co_await s.recvfrom(fd, 100'000.0);
    if (r.ok) {
      got_bytes = r.bytes;
      s.sendto(fd, r.from_addr, r.from_port, 64);
    }
    co_return;
  });
  k->spawn("udp-client", [&](Sys& s) -> Sub<void> {
    const int fd = s.socket_udp(0);
    s.sendto(fd, 0x0A0000FE, 7777, 1200);
    const auto r = co_await s.recvfrom(fd, 100'000.0);
    got = r.ok;
    co_return;
  });
  EXPECT_TRUE(Netperf::co_step(*k, peer.kernel(), [&] { return got; },
                               400 * hw::kCyclesPerMillisecond));
  EXPECT_EQ(got_bytes, 1200u);
}

TEST_F(NetTest, UdpToClosedPortIsDropped) {
  bool done = false;
  k->spawn("udp", [&](Sys& s) -> Sub<void> {
    const int fd = s.socket_udp(0);
    s.sendto(fd, 0x0A0000FE, 9, 100);
    co_await s.sleep_us(2000.0);
    done = true;
  });
  EXPECT_TRUE(Netperf::co_step(*k, peer.kernel(), [&] { return done; },
                               100 * hw::kCyclesPerMillisecond));
  EXPECT_GE(peer.kernel().net().stats().dropped_no_socket, 1u);
}

TEST_F(NetTest, TcpTransfersAllBytes) {
  constexpr std::size_t kBytes = 512 * 1024;
  bool server_done = false, client_done = false;
  std::size_t received = 0;
  peer.kernel().spawn("srv", [&](Sys& s) -> Sub<void> {
    const int lfd = s.tcp_listen(5001);
    const int conn = co_await s.tcp_accept(lfd, 1e6);
    while (received < kBytes) {
      const std::size_t n = co_await s.tcp_recv(conn, 64 * 1024, 1e6);
      if (n == 0) break;
      received += n;
    }
    server_done = true;
    co_return;
  });
  k->spawn("cli", [&](Sys& s) -> Sub<void> {
    co_await s.sleep_us(1000.0);
    const int fd = s.tcp_connect(0x0A0000FE, 5001);
    const std::size_t sent = co_await s.tcp_send(fd, kBytes);
    EXPECT_EQ(sent, kBytes);
    client_done = true;
    co_return;
  });
  EXPECT_TRUE(Netperf::co_step(*k, peer.kernel(),
                               [&] { return server_done && client_done; },
                               5000ull * hw::kCyclesPerMillisecond));
  EXPECT_EQ(received, kBytes);
  EXPECT_GT(k->net().stats().tcp_segments_tx, kBytes / 1448);
  EXPECT_GT(peer.kernel().net().stats().tcp_acks_tx, 0u);
}

TEST_F(NetTest, TcpWindowBoundsUnackedBytes) {
  // Once ACKs stop flowing (link cut after establishment), the sender can
  // never have more than the 64 KB window outstanding.
  bool established = false;
  peer.kernel().spawn("srv", [&](Sys& s) -> Sub<void> {
    const int lfd = s.tcp_listen(5002);
    (void)co_await s.tcp_accept(lfd, 1e6);
    for (int i = 0; i < 100; ++i) co_await s.sleep_us(10'000.0);
    co_return;
  });
  k->spawn("cli", [&](Sys& s) -> Sub<void> {
    co_await s.sleep_us(1000.0);
    const int fd = s.tcp_connect(0x0A0000FE, 5002);
    co_await s.sleep_us(1000.0);  // let the SYNACK land
    established = true;
    co_await s.tcp_send(fd, 4 * 1024 * 1024);
    co_return;
  });
  Netperf::co_step(*k, peer.kernel(), [&] { return established; },
                   100 * hw::kCyclesPerMillisecond);
  peer.link().set_up(false);  // no more ACKs
  Netperf::co_step(*k, peer.kernel(), [] { return false; },
                   50 * hw::kCyclesPerMillisecond);
  // Unacked in-flight bounded by window/segment (+slack for ACKs already
  // in flight when the link died).
  EXPECT_LE(k->net().stats().tcp_segments_tx, 2 * (64 * 1024 / 1448) + 8);
}

TEST_F(NetTest, IperfHarnessProducesWireLimitedNative) {
  workloads::NetperfParams p;
  p.iperf_bytes = 4 * 1024 * 1024;
  const auto r = Netperf::run(*k, peer, p);
  EXPECT_GT(r.tcp_mbit_s, 400.0);
  EXPECT_LT(r.tcp_mbit_s, 1000.0);
  EXPECT_GT(r.ping_rtt_us, 10.0);
  EXPECT_EQ(r.pings_lost, 0);
}

}  // namespace
}  // namespace mercury::testing
