// The cluster observability plane end-to-end, through the public
// ClusterSoak surface: a switch wave renders as one causally-linked trace
// across nodes, the time-series document is byte-identical for identical
// params, the engine profiler attributes wall time to engine work classes,
// and the fleet verdict carries per-node sections.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

#include "cluster/soak.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "tests/json_checker.hpp"

namespace mercury::testing {
namespace {

// Small fleet, two waves: enough for one attach wave and one detach wave
// while keeping the sim short.
cluster::ClusterSoakParams small_params() {
  cluster::ClusterSoakParams p;
  p.nodes = 3;
  p.cpus_per_node = 2;
  p.waves = 2;
  p.seed = 42;
  p.wave_interval_ms = 2.0;
  p.sample_interval_ms = 0.5;
  p.sample_capacity = 64;
  return p;
}

#if MERCURY_OBS_ENABLED

TEST(ClusterObs, SwitchWaveFormsOneCausalTraceAcrossNodes) {
  obs::TraceBuffer& buf = obs::trace_buffer();
  buf.set_enabled(true);
  buf.clear();

  cluster::ClusterSoak soak(small_params());
  ASSERT_TRUE(soak.run());

  const auto evs = buf.events();
  // Each wave records a root "cluster.wave" event carrying the wave's
  // trace id. Use the newest wave: it is the least likely to have lost
  // children to ring wrap.
  const obs::TraceEvent* wave = nullptr;
  for (const auto& e : evs)
    if (std::strcmp(e.name, "cluster.wave") == 0) wave = &e;
  ASSERT_NE(wave, nullptr);
  const std::uint64_t trace = wave->trace_id;
  ASSERT_NE(trace, 0u);

  // The per-node fabric message spans must share that trace id and be
  // attributed to distinct cluster nodes (Chrome pids).
  std::set<std::uint32_t> msg_nodes;
  std::set<std::uint64_t> msg_spans;
  for (const auto& e : evs)
    if (std::strcmp(e.name, "fabric.msg.switch") == 0 && e.trace_id == trace) {
      msg_nodes.insert(e.node);
      msg_spans.insert(e.span_id);
    }
  EXPECT_GE(msg_nodes.size(), 2u)
      << "one wave should span >= 2 distinct nodes";

  // The engine's commit span resolves asynchronously (submit -> interrupt
  // -> commit), yet must still link beneath the wave's message span via
  // the captured SpanContext.
  bool commit_linked = false;
  for (const auto& e : evs) {
    const bool is_commit = std::strcmp(e.name, "switch.attach") == 0 ||
                           std::strcmp(e.name, "switch.detach") == 0;
    if (is_commit && e.trace_id == trace && msg_spans.count(e.parent_id) > 0)
      commit_linked = true;
  }
  EXPECT_TRUE(commit_linked)
      << "no commit span chained to a fabric.msg.switch span of trace "
      << trace;

  const std::string json = obs::chrome_trace_json(buf);
  EXPECT_TRUE(JsonChecker(json).ok()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  buf.clear();
}

TEST(ClusterObs, ProfilerAttributesEngineWorkDuringSoak) {
  obs::EngineProfiler& prof = obs::profiler();
  prof.reset();
  prof.set_enabled(true);

  cluster::ClusterSoak soak(small_params());
  ASSERT_TRUE(soak.run());
  prof.set_enabled(false);

  const auto snap = prof.snapshot();
  std::uint64_t commit_count = 0;
  std::uint64_t kernel_step_count = 0;
  for (const auto& b : snap) {
    if (b.name == "switch.commit") commit_count = b.count;
    if (b.name.rfind("kernel.step.", 0) == 0) kernel_step_count += b.count;
  }
  // Every committed switch runs under the switch.commit bucket; the kernel
  // step branches dominate event counts.
  EXPECT_GT(commit_count, 0u);
  EXPECT_GT(kernel_step_count, commit_count);

  const std::string json = obs::profile_json();
  EXPECT_TRUE(JsonChecker(json).ok()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"schema\":\"mercury.profile.v1\""), std::string::npos);
  EXPECT_NE(json.find("switch.commit"), std::string::npos);
  prof.reset();
}

#endif  // MERCURY_OBS_ENABLED

// Determinism holds in both obs configurations: the sampled series read
// run-owned state only, so two fresh runs with identical params emit a
// byte-identical mercury.timeseries.v1 document.
TEST(ClusterObs, TimeseriesIsByteIdenticalAcrossRuns) {
  std::string first, second;
  {
    cluster::ClusterSoak soak(small_params());
    ASSERT_TRUE(soak.run());
    first = soak.timeseries_json();
  }
  {
    cluster::ClusterSoak soak(small_params());
    ASSERT_TRUE(soak.run());
    second = soak.timeseries_json();
  }
  EXPECT_EQ(first, second);
  EXPECT_TRUE(JsonChecker(first).ok()) << first.substr(0, 400);
  EXPECT_NE(first.find("\"schema\":\"mercury.timeseries.v1\""),
            std::string::npos);
  // Per-node series carry the node label; fleet series an empty one.
  EXPECT_NE(first.find("node=n0"), std::string::npos);
  EXPECT_NE(first.find("fleet.inflight"), std::string::npos);
}

TEST(ClusterObs, FleetReportCarriesPerNodeSections) {
  const cluster::ClusterSoakParams p = small_params();
  cluster::ClusterSoak soak(p);
  ASSERT_TRUE(soak.run());

  const cluster::SoakReport r = soak.report();
  ASSERT_EQ(r.nodes.size(), p.nodes);
  std::uint64_t committed = 0;
  std::set<std::string> names;
  for (const auto& n : r.nodes) {
    EXPECT_FALSE(n.name.empty());
    names.insert(n.name);
    EXPECT_EQ(n.submitted, p.waves);
    EXPECT_GE(n.availability, 0.0);
    EXPECT_LE(n.availability, 1.0);
    EXPECT_GT(n.span_cycles, 0u);
    committed += n.committed;
    // Per-node pause rollups: every interval attributed, and a node that
    // recorded intervals names its worst cause.
    EXPECT_EQ(n.pause_unattributed, 0u) << n.name;
    EXPECT_FALSE(n.pause_worst_cause.empty()) << n.name;
#if MERCURY_OBS_ENABLED
    EXPECT_GT(n.pause_intervals, 0u) << n.name;
    EXPECT_NE(n.pause_worst_cause, "none") << n.name;
#endif
  }
  EXPECT_EQ(names.size(), p.nodes);  // distinct node names
  EXPECT_EQ(committed, r.committed);
  EXPECT_EQ(r.pause_unattributed, 0u);  // fleet rollup of the node gates

  const std::string json = cluster::soak_report_json(r);
  EXPECT_TRUE(JsonChecker(json).ok()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"nodes\""), std::string::npos);
  EXPECT_NE(json.find("\"pause_worst_cause\""), std::string::npos);
}

}  // namespace
}  // namespace mercury::testing
