// Chaos soak (tier-2 / soak): hundreds of supervised attach/detach cycles
// on a 4-CPU machine under a seeded fault storm, with a file-writing
// workload running throughout. Every request must terminate (committed
// after retries, or cleanly failed), the machine-state invariants must stay
// green, the workload must see zero corruption, and the run must emit a
// schema-valid mercury.soak.v1 verdict — the artifact the soak CI job gates
// on (set MERCURY_SOAK_JSON to keep it).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "cluster/soak.hpp"
#include "core/fault_inject.hpp"
#include "core/mercury.hpp"
#include "core/switch_supervisor.hpp"
#include "kernel/syscalls.hpp"
#include "obs/obs.hpp"
#include "obs/postmortem.hpp"
#include "tests/json_checker.hpp"
#include "tests/test_seed.hpp"

namespace mercury::testing {
namespace {

using cluster::SoakDriver;
using cluster::SoakParams;
using cluster::SoakReport;
using core::ExecMode;
using core::FaultStorm;
using core::Mercury;
using core::MercuryConfig;
using core::RequestState;
using core::SupervisedRequest;
using core::SupervisorConfig;
using core::SupervisorHealth;
using core::SwitchSupervisor;
using kernel::Sub;
using kernel::Sys;

struct InjectorGuard {
  InjectorGuard() {
    // The CI soak job sets MERCURY_POSTMORTEM_DIR to collect the storm's
    // bundles as build artifacts; keep them in the test temp dir otherwise.
    if (std::getenv("MERCURY_POSTMORTEM_DIR") == nullptr)
      obs::set_postmortem_dir(::testing::TempDir());
  }
  ~InjectorGuard() {
    core::fault_injector().disarm();
    core::fault_injector().stop_storm();
    obs::set_postmortem_dir("");
  }
};

constexpr int kWriters = 3;

/// A 4-CPU machine with the parallel switch pipeline, a supervisor, and a
/// file-writing workload whose integrity the soak audits afterwards.
struct SoakBox {
  hw::Machine machine;
  Mercury m;
  SwitchSupervisor sup;

  bool stop_writers = false;
  int writers_done = 0;
  std::uint64_t expected_bytes[kWriters] = {};
  std::uint64_t ops = 0;

  explicit SoakBox(SupervisorConfig scfg)
      : machine([] {
          hw::MachineConfig mc;
          mc.num_cpus = 4;
          mc.mem_kb = 96 * 1024;
          return mc;
        }()),
        m(machine,
          [] {
            core::MercuryConfig cfg;
            cfg.kernel_frames = (32ull * 1024 * 1024) / hw::kPageSize;
            cfg.switch_config.crew_workers = 3;
            return cfg;
          }()),
        sup(m.engine(), scfg) {
    for (int i = 0; i < kWriters; ++i) {
      m.kernel().spawn("writer" + std::to_string(i),
                       [this, i](Sys& s) -> Sub<void> {
                         const int fd =
                             s.open("/soak" + std::to_string(i), true);
                         while (!stop_writers) {
                           const std::size_t n =
                               co_await s.file_write(fd, 2048);
                           expected_bytes[i] += n;
                           ++ops;
                           co_await s.compute_us(120.0);
                         }
                         s.fsync(fd);
                         ++writers_done;
                         for (;;) co_await s.sleep_us(50'000.0);
                       });
    }
    // A memory-toucher so every switch has address spaces to protect and
    // saved contexts to fix up (the rollback-sensitive paths).
    m.kernel().spawn("toucher", [](Sys& s) -> Sub<void> {
      const auto va = s.mmap(16 * hw::kPageSize, true);
      for (;;) {
        s.touch_pages(va, 16, true);
        co_await s.compute_us(60.0);
      }
    });
    m.kernel().run_for(2 * hw::kCyclesPerMillisecond);
  }

  /// Stop the writers, let them drain, and count files whose final size
  /// disagrees with the bytes their writer recorded as committed.
  std::uint64_t audit_corruptions() {
    stop_writers = true;
    EXPECT_TRUE(m.kernel().run_until([&] { return writers_done == kWriters; },
                                     500 * hw::kCyclesPerMillisecond));
    std::uint64_t corruptions = 0;
    bool checked = false;
    m.kernel().spawn("checker", [&, this](Sys& s) -> Sub<void> {
      for (int i = 0; i < kWriters; ++i) {
        const std::int64_t size = s.file_size("/soak" + std::to_string(i));
        if (size < 0 ||
            static_cast<std::uint64_t>(size) != expected_bytes[i]) {
          ++corruptions;
          std::printf("CORRUPTION /soak%d size=%lld expected=%llu\n", i,
                      static_cast<long long>(size),
                      static_cast<unsigned long long>(expected_bytes[i]));
        }
      }
      checked = true;
      for (;;) co_await s.sleep_us(50'000.0);
    });
    EXPECT_TRUE(m.kernel().run_until([&] { return checked; },
                                     100 * hw::kCyclesPerMillisecond));
    return corruptions;
  }

  std::uint64_t total_bytes() const {
    std::uint64_t total = 0;
    for (int i = 0; i < kWriters; ++i) total += expected_bytes[i];
    return total;
  }
};

/// Where to put the soak verdict: $MERCURY_SOAK_JSON if set (the CI job
/// points it at an artifact path; a trailing '/' means "directory — keep
/// each test's verdict under its own name"), the test temp dir otherwise.
std::string soak_json_path(const char* fallback_name) {
  if (const char* env = std::getenv("MERCURY_SOAK_JSON")) {
    const std::string path = env;
    if (!path.empty() && path.back() == '/') return path + fallback_name;
    if (!path.empty()) return path;
  }
  return ::testing::TempDir() + fallback_name;
}

void expect_valid_soak_json(const SoakReport& report, const char* name) {
  const std::string path = soak_json_path(name);
  ASSERT_TRUE(cluster::write_soak_report(report, path)) << path;
  const std::string json = [&] {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    std::string content;
    char buf[4096];
    std::size_t n;
    while (f && (n = std::fread(buf, 1, sizeof buf, f)) > 0)
      content.append(buf, n);
    if (f) std::fclose(f);
    return content;
  }();
  ASSERT_FALSE(json.empty()) << path;
  EXPECT_TRUE(JsonChecker(json).ok()) << "soak verdict is not valid JSON";
  EXPECT_NE(json.find("\"schema\": \"mercury.soak.v1\""), std::string::npos);
  std::printf("SOAK_JSON %s\n", path.c_str());
}

TEST(SwitchSoak, SeededStormSoakConvergesWithoutCorruption) {
  InjectorGuard guard;
  const std::uint64_t seed = test_seed(0x50AC5EEDull);

  SupervisorConfig scfg;
  scfg.backoff_base_ms = 0.5;
  scfg.backoff_cap_ms = 8.0;
  scfg.max_attempts = 8;
  scfg.degraded_after = 3;
  scfg.quarantine_after = 8;
  scfg.probe_interval_ms = 30.0;
  scfg.seed = seed;
  SoakBox box(scfg);

  // The acceptance storm: every site at a 5% per-window rate, short bursts,
  // mild decay — transient glitches that keep coming but blow over.
  FaultStorm storm = FaultStorm::uniform(0.05, seed);
  storm.burst_windows = 2;
  storm.decay = 0.97;
  storm.max_trigger_depth = 8;
  core::fault_injector().arm_storm(storm);

  SoakParams params;
  params.cycles = 200;
  params.request_interval_ms = 2.0;
  // Interleave warm and cold attaches under the same storm: half the
  // cycles run with warm re-attach enabled (seeded flip schedule).
  params.warm_reattach_rate = 0.5;
  params.warm_seed = seed;
  SoakDriver driver(box.sup, params);
  ASSERT_TRUE(driver.run_to_completion(30'000 * hw::kCyclesPerMillisecond))
      << "soak did not drive all " << params.cycles
      << " supervised cycles to resolution";
  core::fault_injector().stop_storm();

  // Never a stranded request: every record the supervisor ever made —
  // driver cycles, internal quarantine detaches, probes — is terminal.
  for (const SupervisedRequest& r : box.sup.requests())
    EXPECT_TRUE(core::request_state_terminal(r.state))
        << "request " << r.id << " stranded in state "
        << core::request_state_name(r.state);
  EXPECT_EQ(box.sup.stats().submitted, box.sup.stats().resolved());

  // The storm actually bit, and the supervisor retried through it.
  EXPECT_GT(core::fault_injector().storm_fires(), 0u);
  EXPECT_GT(box.sup.stats().retries, 0u);
  EXPECT_EQ(driver.invariant_violations(), 0u);
  // The warm/cold interleave actually exercised the warm path: with half
  // of 200 cycles warm-enabled, some attaches must have gone warm.
  EXPECT_GT(box.m.engine().stats().warm_attaches, 0u)
      << "warm_reattach_rate=0.5 soak never took a warm attach";

  const std::uint64_t corruptions = box.audit_corruptions();
  EXPECT_EQ(corruptions, 0u);
  EXPECT_GT(box.ops, 0u) << "the workload made no progress under the soak";

  driver.note_workload(box.ops, box.total_bytes(), corruptions);
  const SoakReport report = driver.report(seed);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.unresolved, 0u);
  EXPECT_DOUBLE_EQ(report.storm_rate, 0.05)
      << "the verdict must quote the armed storm rate, not the decayed one";
  EXPECT_EQ(report.submitted, box.sup.stats().submitted)
      << "report must count every supervised request, internals included";
  EXPECT_GE(report.submitted, driver.submitted());
  EXPECT_GT(report.availability, 0.5);
  EXPECT_LE(report.availability, 1.0);
  expect_valid_soak_json(report, "soak_storm.json");
}

TEST(SwitchSoak, PersistentStormQuarantinesCleanly) {
  InjectorGuard guard;
  const std::uint64_t seed = test_seed(0xDEADC10Dull);

  SupervisorConfig scfg;
  scfg.backoff_base_ms = 0.5;
  scfg.max_attempts = 4;
  scfg.degraded_after = 2;
  scfg.quarantine_after = 4;
  scfg.probe_enabled = false;  // the storm never ends; stay quarantined
  scfg.seed = seed;
  SoakBox box(scfg);

  core::fault_injector().arm_storm(FaultStorm::uniform(1.0, seed));

  SoakParams params;
  params.cycles = 20;
  params.request_interval_ms = 2.0;
  // Warm flips ride along (no warm attach can commit under a rate-1.0
  // storm, but the retention/disarm paths must survive the chaos).
  params.warm_reattach_rate = 0.5;
  params.warm_seed = seed;
  SoakDriver driver(box.sup, params);
  ASSERT_TRUE(driver.run_to_completion(10'000 * hw::kCyclesPerMillisecond));
  core::fault_injector().stop_storm();

  // Degradation, not deadlock: quarantine fails the virtual-target cycles
  // fast, the machine rests native, and nothing is stranded.
  EXPECT_EQ(box.sup.health(), SupervisorHealth::kQuarantined);
  EXPECT_GE(box.sup.stats().quarantines, 1u);
  EXPECT_GT(box.sup.stats().failed_quarantined, 0u);
  EXPECT_EQ(box.m.mode(), ExecMode::kNative);
  for (const SupervisedRequest& r : box.sup.requests())
    EXPECT_TRUE(core::request_state_terminal(r.state))
        << "request " << r.id << " stranded in state "
        << core::request_state_name(r.state);
  EXPECT_EQ(driver.invariant_violations(), 0u);

  const std::uint64_t corruptions = box.audit_corruptions();
  EXPECT_EQ(corruptions, 0u);

  driver.note_workload(box.ops, box.total_bytes(), corruptions);
  const SoakReport report = driver.report(seed);
  EXPECT_TRUE(report.converged) << "clean quarantine still converges";
  EXPECT_EQ(report.unresolved, 0u);
  EXPECT_EQ(report.final_health, "quarantined");
  EXPECT_EQ(report.final_mode, "native");
  expect_valid_soak_json(report, "soak_quarantine.json");
}

TEST(SwitchSoak, InternalProbeInFlightDoesNotReadAsStranded) {
  InjectorGuard guard;
  const std::uint64_t seed = test_seed(0xBAD9205Eull);

  SupervisorConfig scfg;
  scfg.backoff_base_ms = 0.5;
  scfg.max_attempts = 2;
  scfg.degraded_after = 1;
  scfg.quarantine_after = 2;
  scfg.probe_interval_ms = 5.0;  // probes keep firing under the storm
  scfg.seed = seed;
  SoakBox box(scfg);

  core::fault_injector().arm_storm(FaultStorm::uniform(1.0, seed));

  SoakParams params;
  params.cycles = 4;
  params.request_interval_ms = 2.0;
  SoakDriver driver(box.sup, params);
  ASSERT_TRUE(driver.run_to_completion(10'000 * hw::kCyclesPerMillisecond));
  ASSERT_EQ(box.sup.health(), SupervisorHealth::kQuarantined);

  // The storm never ends, so recovery probes fire and fail forever. Catch
  // one mid-flight and snapshot the verdict at that instant: scheduled
  // supervisor-internal work must not read as a stranded request
  // (regression: `unresolved` counted internal probes and failed the gate).
  ASSERT_TRUE(box.m.kernel().run_until(
      [&] {
        for (const SupervisedRequest& r : box.sup.requests())
          if (r.internal && !core::request_state_terminal(r.state))
            return true;
        return false;
      },
      10'000 * hw::kCyclesPerMillisecond))
      << "no supervisor-internal request ever went live";
  const SoakReport report = driver.report(seed);
  EXPECT_EQ(report.unresolved, 0u);
  EXPECT_TRUE(report.converged);
  core::fault_injector().stop_storm();
}

}  // namespace
}  // namespace mercury::testing
