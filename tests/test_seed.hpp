// Reproducible randomness for seeded tests.
//
// Every randomized test derives its Rng from test_seed(): the seed is
// printed on stdout and recorded as a gtest property, and the MERCURY_TEST_SEED
// environment variable overrides it — so a failure log always contains the
// exact command to replay it:
//
//   MERCURY_TEST_SEED=<seed> ./switch_fuzz_test --gtest_filter=<test>
#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

namespace mercury::testing {

/// The seed for this test: `fallback` unless MERCURY_TEST_SEED is set
/// (decimal, or hex with a 0x prefix). Logged either way.
inline std::uint64_t test_seed(std::uint64_t fallback) {
  std::uint64_t seed = fallback;
  if (const char* env = std::getenv("MERCURY_TEST_SEED"))
    seed = std::strtoull(env, nullptr, 0);
  std::printf("MERCURY_TEST_SEED=%llu\n",
              static_cast<unsigned long long>(seed));
  std::fflush(stdout);
  ::testing::Test::RecordProperty("mercury_test_seed",
                                  std::to_string(seed));
  return seed;
}

}  // namespace mercury::testing
