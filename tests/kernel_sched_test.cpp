// Scheduling, pipes, sleeping, preemption, SMP behaviour.
#include "tests/kernel_fixture.hpp"

namespace mercury::testing {
namespace {

using kernel::Pid;
using kernel::Sub;
using kernel::Sys;

using SchedTest = KernelFixture;

TEST_F(SchedTest, SleepAdvancesAtLeastRequestedTime) {
  hw::Cycles t0 = 0, t1 = 0;
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    t0 = s.cpu().now();
    co_await s.sleep_us(5000.0);
    t1 = s.cpu().now();
  }));
  EXPECT_GE(t1 - t0, hw::us_to_cycles(5000.0));
}

TEST_F(SchedTest, PipeTransfersAndBlocks) {
  std::string order;
  const int p = k->pipe_create();
  k->spawn("reader", [&, p](Sys& s) -> Sub<void> {
    const int rfd = s.adopt_pipe(p, true);
    const std::size_t n = co_await s.read_fd(rfd, 10);
    order += "R" + std::to_string(n);
    co_return;
  });
  k->spawn("writer", [&, p](Sys& s) -> Sub<void> {
    const int wfd = s.adopt_pipe(p, false);
    co_await s.sleep_us(500.0);  // ensure the reader blocks first
    order += "W";
    co_await s.write_fd(wfd, 10);
    co_return;
  });
  EXPECT_TRUE(k->run_until([&] { return order.size() >= 3; },
                           100 * hw::kCyclesPerMillisecond));
  EXPECT_EQ(order, "WR10");
}

TEST_F(SchedTest, PipeEofOnWriterClose) {
  std::size_t got = 99;
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const auto [r, w] = s.pipe();
    s.close(w);  // no writer left
    got = co_await s.read_fd(r, 10);
  }));
  EXPECT_EQ(got, 0u) << "read on a widowed pipe must return EOF";
}

TEST_F(SchedTest, PipeCapacityBlocksWriter) {
  bool writer_done = false;
  const int p = k->pipe_create();
  k->spawn("big-writer", [&, p](Sys& s) -> Sub<void> {
    const int wfd = s.adopt_pipe(p, false);
    co_await s.write_fd(wfd, 200 * 1024);  // 3x capacity
    writer_done = true;
    co_return;
  });
  k->run_for(5 * hw::kCyclesPerMillisecond);
  EXPECT_FALSE(writer_done) << "writer must stall on a full pipe";
  k->spawn("drainer", [&, p](Sys& s) -> Sub<void> {
    const int rfd = s.adopt_pipe(p, true);
    std::size_t total = 0;
    while (total < 200 * 1024) {
      const std::size_t n = co_await s.read_fd(rfd, 64 * 1024);
      if (n == 0) break;
      total += n;
    }
    co_return;
  });
  EXPECT_TRUE(k->run_until([&] { return writer_done; },
                           200 * hw::kCyclesPerMillisecond));
}

TEST_F(SchedTest, TimesliceSharingBetweenComputeTasks) {
  hw::Cycles done_a = 0, done_b = 0;
  k->spawn("a", [&](Sys& s) -> Sub<void> {
    co_await s.compute_us(40'000.0);
    done_a = s.cpu().now();
  }, 64, /*affinity=*/0);
  k->spawn("b", [&](Sys& s) -> Sub<void> {
    co_await s.compute_us(40'000.0);
    done_b = s.cpu().now();
  }, 64, /*affinity=*/0);
  EXPECT_TRUE(k->run_until([&] { return done_a && done_b; },
                           1000 * hw::kCyclesPerMillisecond));
  // With preemptive sharing both finish around 80 ms, not 40 and 80.
  const double ms_a = hw::cycles_to_us(done_a) / 1000.0;
  const double ms_b = hw::cycles_to_us(done_b) / 1000.0;
  EXPECT_GT(ms_a, 50.0);
  EXPECT_GT(ms_b, 50.0);
}

TEST_F(SchedTest, ContextSwitchesCounted) {
  const auto before = k->stats().context_switches;
  const int p = k->pipe_create();
  int rounds_done = 0;
  k->spawn("ping", [&, p](Sys& s) -> Sub<void> {
    const int rfd = s.adopt_pipe(p, true);
    for (int i = 0; i < 5; ++i) {
      co_await s.read_fd(rfd, 1);
      ++rounds_done;
    }
    co_return;
  });
  k->spawn("pong", [&, p](Sys& s) -> Sub<void> {
    const int wfd = s.adopt_pipe(p, false);
    for (int i = 0; i < 5; ++i) {
      co_await s.write_fd(wfd, 1);
      co_await s.yield();
    }
    co_return;
  });
  EXPECT_TRUE(k->run_until([&] { return rounds_done == 5; },
                           100 * hw::kCyclesPerMillisecond));
  EXPECT_GT(k->stats().context_switches, before + 5);
}

TEST_F(SchedTest, TimerTicksAccumulate) {
  run_task([](Sys& s) -> Sub<void> { co_await s.compute_us(50'000.0); });
  // 50 ms at 100 Hz = ~5 ticks.
  EXPECT_GE(k->stats().timer_ticks, 4u);
}

TEST_F(SchedTest, RunForAdvancesIdleClock) {
  const hw::Cycles before = k->earliest_cpu_time();
  k->run_for(30 * hw::kCyclesPerMillisecond);
  EXPECT_GE(k->earliest_cpu_time() - before, 30 * hw::kCyclesPerMillisecond);
}

TEST_F(SchedTest, SoftwareTimersFireInOrder) {
  std::string order;
  const hw::Cycles now = k->machine().cpu(0).now();
  k->add_timer(now + 2 * hw::kCyclesPerMillisecond, [&] { order += "b"; });
  k->add_timer(now + 1 * hw::kCyclesPerMillisecond, [&] { order += "a"; });
  k->add_timer(now + 3 * hw::kCyclesPerMillisecond, [&] { order += "c"; });
  k->run_for(10 * hw::kCyclesPerMillisecond);
  EXPECT_EQ(order, "abc");
}

class SmpSchedTest : public SmpKernelFixture {};

TEST_F(SmpSchedTest, TasksSpreadAcrossCpus) {
  bool a_done = false, b_done = false;
  std::uint32_t cpu_a = 99, cpu_b = 99;
  k->spawn("a", [&](Sys& s) -> Sub<void> {
    co_await s.compute_us(20'000.0);
    cpu_a = s.task().last_cpu;
    a_done = true;
  });
  k->spawn("b", [&](Sys& s) -> Sub<void> {
    co_await s.compute_us(20'000.0);
    cpu_b = s.task().last_cpu;
    b_done = true;
  });
  EXPECT_TRUE(k->run_until([&] { return a_done && b_done; },
                           500 * hw::kCyclesPerMillisecond));
  EXPECT_NE(cpu_a, cpu_b) << "two compute tasks should run in parallel";
  // Parallel execution: both finish in ~20 ms of simulated time, not 40.
  EXPECT_LT(hw::cycles_to_us(k->earliest_cpu_time()) / 1000.0, 35.0);
}

TEST_F(SmpSchedTest, SmpOpsCostMoreThanUp) {
  // The same fork is dearer on the SMP build (lock/cacheline taxes).
  MiniKernel up(1);
  auto fork_cost = [](MiniKernel& f) {
    hw::Cycles cost = 0;
    f.run_task([&](Sys& s) -> Sub<void> {
      const auto va = s.mmap(64 * hw::kPageSize, true);
      s.touch_pages(va, 64, true);
      const hw::Cycles t0 = s.cpu().now();
      const Pid c = s.fork([](Sys& cs) -> Sub<void> {
        cs.exit(0);
        co_return;
      });
      co_await s.wait_pid(c);
      cost = s.cpu().now() - t0;
    });
    return cost;
  };
  const hw::Cycles up_cost = fork_cost(up);
  const hw::Cycles smp_cost = fork_cost(env_);
  EXPECT_GT(smp_cost, up_cost);
}

}  // namespace
}  // namespace mercury::testing
