// The paper's central behavioural claim (§4.3): applications are completely
// shielded from mode transitions. Property test: run a deterministic
// workload while injecting mode switches at pseudo-random points; the
// application-visible results must be identical to a run with no switches.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/mercury.hpp"
#include "kernel/syscalls.hpp"
#include "util/rng.hpp"

namespace mercury::testing {
namespace {

using core::ExecMode;
using core::Mercury;
using kernel::Sub;
using kernel::Sys;

struct WorkloadResult {
  std::vector<std::uint32_t> values;
  long file_bytes = 0;
  int children_ok = 0;

  bool operator==(const WorkloadResult& o) const {
    return values == o.values && file_bytes == o.file_bytes &&
           children_ok == o.children_ok;
  }
};

/// A deterministic mixed workload: memory arithmetic, fork/wait, file I/O.
/// Returns every application-visible value it computes.
WorkloadResult run_workload(Mercury& m, const std::function<void(int)>& step_hook) {
  WorkloadResult result;
  bool done = false;
  m.kernel().spawn("app", [&](Sys& s) -> Sub<void> {
    auto& mmu = s.kernel().machine().mmu();
    const hw::VirtAddr buf = s.mmap(16 * hw::kPageSize, true);
    const int fd = s.open("/app/data", true);
    std::uint32_t acc = 0x1234;
    for (int i = 0; i < 40; ++i) {
      step_hook(i);
      mmu.write_u32(s.cpu(), buf + (i % 16) * hw::kPageSize, acc);
      acc = acc * 1664525u + 1013904223u;
      acc ^= mmu.read_u32(s.cpu(), buf + (i % 16) * hw::kPageSize);
      result.values.push_back(acc);
      result.file_bytes +=
          static_cast<long>(co_await s.file_write(fd, 512 + (i % 7) * 128));
      if (i % 13 == 5) {
        const auto child = s.fork([](Sys& cs) -> Sub<void> {
          cs.exit(11);
          co_return;
        });
        if (co_await s.wait_pid(child) == 11) ++result.children_ok;
      }
      co_await s.compute_us(120.0);
    }
    done = true;
  });
  EXPECT_TRUE(m.kernel().run_until([&] { return done; },
                                   3000ull * hw::kCyclesPerMillisecond));
  m.kernel().reap_zombies();
  return result;
}

std::unique_ptr<hw::Machine> make_machine() {
  hw::MachineConfig mc;
  mc.mem_kb = 192 * 1024;
  return std::make_unique<hw::Machine>(mc);
}

core::MercuryConfig small_cfg() {
  core::MercuryConfig cfg;
  cfg.kernel_frames = (64ull * 1024 * 1024) / hw::kPageSize;
  return cfg;
}

class TransparencyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransparencyTest, RandomSwitchInjectionIsInvisibleToTheApp) {
  // Baseline: no switches.
  auto m1 = make_machine();
  Mercury base(*m1, small_cfg());
  const WorkloadResult expected = run_workload(base, [](int) {});

  // Same workload with switches requested at pseudo-random steps.
  auto m2 = make_machine();
  Mercury subject(*m2, small_cfg());
  util::Rng rng(GetParam());
  std::vector<bool> switch_here(40);
  for (int i = 0; i < 40; ++i) switch_here[i] = rng.chance(0.25);

  int switches = 0;
  const WorkloadResult got = run_workload(subject, [&](int step) {
    if (!switch_here[step]) return;
    const ExecMode target = subject.mode() == ExecMode::kNative
                                ? ExecMode::kPartialVirtual
                                : ExecMode::kNative;
    subject.engine().request(target);  // lands asynchronously, mid-workload
    ++switches;
  });

  EXPECT_GT(switches, 0);
  EXPECT_EQ(got, expected)
      << "application-visible state diverged across mode switches";
  EXPECT_GT(subject.engine().stats().attaches, 0u);
  EXPECT_EQ(subject.hypervisor().stats().domains_crashed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransparencyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

TEST(TransparencyTiming, NativePhaseRunsAtNativeSpeedAfterDetach) {
  // Mercury's whole point: after detach the same work costs native cycles.
  auto measure = [](Mercury& m) {
    hw::Cycles cost = 0;
    bool done = false;
    m.kernel().spawn("probe", [&](Sys& s) -> Sub<void> {
      const auto va = s.mmap(64 * hw::kPageSize, true);
      const hw::Cycles t0 = s.cpu().now();
      s.touch_pages(va, 64, true);
      const auto child = s.fork([](Sys& cs) -> Sub<void> {
        cs.exit(0);
        co_return;
      });
      co_await s.wait_pid(child);
      cost = s.cpu().now() - t0;
      done = true;
    });
    EXPECT_TRUE(m.kernel().run_until([&] { return done; },
                                     1000 * hw::kCyclesPerMillisecond));
    m.kernel().reap_zombies();
    return cost;
  };

  auto mach = make_machine();
  Mercury m(*mach, small_cfg());
  const hw::Cycles native_before = measure(m);
  ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
  const hw::Cycles virtualized = measure(m);
  ASSERT_TRUE(m.switch_to(ExecMode::kNative));
  const hw::Cycles native_after = measure(m);

  EXPECT_GT(virtualized, 2 * native_before)
      << "virtual mode must cost visibly more (fork path)";
  EXPECT_LT(native_after, native_before + native_before / 5)
      << "after detach the overhead must be gone (within 20%)";
}

}  // namespace
}  // namespace mercury::testing
