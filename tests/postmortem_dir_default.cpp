// Linked into every test binary (see CMakeLists.txt): before main runs,
// point postmortem bundles at the build tree unless the user chose a
// directory, so running a test binary from the repo root no longer litters
// it with mercury-postmortem-<slot>.json files.
#include "obs/postmortem.hpp"

namespace {
const bool kPostmortemDirDefaulted = [] {
  mercury::obs::default_postmortem_dir_beside_binary();
  return true;
}();
}  // namespace
