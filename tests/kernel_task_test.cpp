// Process lifecycle: spawn/exit/wait, fork semantics (COW), exec, kill.
#include "tests/kernel_fixture.hpp"

namespace mercury::testing {
namespace {

using kernel::Pid;
using kernel::Sub;
using kernel::Sys;
using kernel::Task;
using kernel::TaskState;

using TaskTest = KernelFixture;

TEST_F(TaskTest, SpawnRunsToCompletion) {
  bool ran = false;
  EXPECT_TRUE(run_task([&](Sys&) -> Sub<void> {
    ran = true;
    co_return;
  }));
  EXPECT_TRUE(ran);
}

TEST_F(TaskTest, ExitStatusPropagatesToWaiter) {
  int status = -99;
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const Pid child = s.fork([](Sys& cs) -> Sub<void> {
      cs.exit(42);
      co_return;
    });
    status = co_await s.wait_pid(child);
  }));
  EXPECT_EQ(status, 42);
}

TEST_F(TaskTest, WaitReapsZombie) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const Pid child = s.fork([](Sys& cs) -> Sub<void> {
      cs.exit(0);
      co_return;
    });
    co_await s.wait_pid(child);
    EXPECT_EQ(s.kernel().find_task(child), nullptr);
    co_return;
  }));
}

TEST_F(TaskTest, ForkChildSeesCopyOnWriteMemory) {
  // Parent writes A to a page; child writes B; parent must still read A's
  // frame (logically: the pages are separated on write).
  std::uint32_t parent_after_child = 0;
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const hw::VirtAddr va = s.mmap(hw::kPageSize, true);
    auto& mmu = s.kernel().machine().mmu();
    mmu.write_u32(s.cpu(), va, 0xAAAA5555);

    const Pid child = s.fork([va](Sys& cs) -> Sub<void> {
      auto& cmmu = cs.kernel().machine().mmu();
      // The child observes the parent's value, then COW-breaks it.
      if (cmmu.read_u32(cs.cpu(), va) != 0xAAAA5555) cs.exit(1);
      cmmu.write_u32(cs.cpu(), va, 0xBBBB0000);
      if (cmmu.read_u32(cs.cpu(), va) != 0xBBBB0000) cs.exit(2);
      cs.exit(0);
      co_return;  // makes this body a coroutine (exit unwinds the frame)
    });
    const int rc = co_await s.wait_pid(child);
    EXPECT_EQ(rc, 0);
    parent_after_child = mmu.read_u32(s.cpu(), va);
  }));
  EXPECT_EQ(parent_after_child, 0xAAAA5555u);
}

TEST_F(TaskTest, ForkIncrementsCowBreakStats) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const hw::VirtAddr va = s.mmap(4 * hw::kPageSize, true);
    s.touch_pages(va, 4, true);
    const Pid child = s.fork([va](Sys& cs) -> Sub<void> {
      cs.touch_pages(va, 4, true);  // 4 COW breaks
      cs.exit(0);
      co_return;
    });
    co_await s.wait_pid(child);
  }));
  EXPECT_GE(k->stats().cow_breaks, 4u);
}

TEST_F(TaskTest, ForkChildInheritsAndChildExitFreesFrames) {
  const std::size_t used_before = k->pool().used_count();
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const hw::VirtAddr va = s.mmap(16 * hw::kPageSize, true);
    s.touch_pages(va, 16, true);
    const Pid child = s.fork([](Sys& cs) -> Sub<void> {
      cs.exit(0);
      co_return;
    });
    co_await s.wait_pid(child);
    s.munmap(va, 16 * hw::kPageSize);
    co_return;
  }));
  k->reap_zombies();
  // No frame leak: the only diff should be transient/none.
  EXPECT_LE(k->pool().used_count(), used_before + 2);
}

TEST_F(TaskTest, ExecReplacesAddressSpace) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const hw::VirtAddr va = s.mmap(8 * hw::kPageSize, true);
    s.touch_pages(va, 8, true);
    const std::size_t before = s.task().aspace->resident_pages();
    EXPECT_GE(before, 8u);
    s.exec(kernel::hello_image());
    // Old mappings are gone; the new image's startup pages are resident.
    bool old_mapped = true;
    auto pte = s.kernel().machine().mmu().peek_pte(s.cpu(), va);
    old_mapped = pte.has_value();
    EXPECT_FALSE(old_mapped);
    EXPECT_EQ(s.task().name, "hello");
    co_return;
  }));
}

TEST_F(TaskTest, KillTerminatesBlockedTask) {
  const Pid pid = k->spawn("sleeper", [](Sys& s) -> Sub<void> {
    for (;;) co_await s.sleep_us(1e6);
  });
  k->run_for(hw::kCyclesPerMillisecond);
  Task* t = k->find_task(pid);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->state, TaskState::kBlocked);
  k->kill(pid, 9);
  EXPECT_TRUE(
      k->run_until([&] { return k->find_task(pid)->state == TaskState::kZombie; },
                   100 * hw::kCyclesPerMillisecond));
  EXPECT_EQ(k->find_task(pid)->exit_status, -9);
}

TEST_F(TaskTest, SegfaultKillsTask) {
  const Pid pid = k->spawn("crasher", [](Sys& s) -> Sub<void> {
    s.touch_pages(0x70000000, 1, true);  // no VMA there
    co_return;
  });
  EXPECT_TRUE(k->run_until(
      [&] {
        Task* t = k->find_task(pid);
        return t != nullptr && t->state == TaskState::kZombie;
      },
      100 * hw::kCyclesPerMillisecond));
  EXPECT_EQ(k->find_task(pid)->exit_status, -11);
}

TEST_F(TaskTest, CatchSegvSurvivesProtFault) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    s.task().catch_segv = true;
    const hw::VirtAddr va = s.mmap(hw::kPageSize, true);
    s.touch_pages(va, 1, true);
    s.mprotect(va, hw::kPageSize, false);
    s.prot_fault_once(va);
    s.prot_fault_once(va);
    EXPECT_EQ(s.task().segv_caught, 2u);
    co_return;
  }));
}

TEST_F(TaskTest, ForkExecRunsChildBodyAfterExec) {
  std::string child_name;
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const Pid child =
        s.fork_exec(kernel::hello_image(), [&](Sys& cs) -> Sub<void> {
          child_name = cs.task().name;
          cs.exit(7);
          co_return;
        });
    const int rc = co_await s.wait_pid(child);
    EXPECT_EQ(rc, 7);
  }));
  EXPECT_EQ(child_name, "hello");
}

TEST_F(TaskTest, FdTableAllocatesLowestFree) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const auto [r, w] = s.pipe();
    EXPECT_EQ(r, 0);
    EXPECT_EQ(w, 1);
    s.close(r);
    const int f = s.open("/x", true);
    EXPECT_EQ(f, 0) << "freed slot must be reused";
    co_return;
  }));
}

TEST_F(TaskTest, ReapZombiesCollectsOrphans) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    s.fork([](Sys& cs) -> Sub<void> {
      cs.exit(0);
      co_return;
    });
    co_await s.sleep_us(1000.0);  // let the orphan exit; nobody waits
    co_return;
  }));
  EXPECT_GE(k->reap_zombies(), 1u);
  EXPECT_EQ(k->live_tasks(), 0u);
}

TEST_F(TaskTest, SpawnStatsCount) {
  run_task([](Sys&) -> Sub<void> { co_return; });
  EXPECT_GE(k->stats().tasks_spawned, 1u);
}

TEST_F(TaskTest, ComputeAdvancesSimulatedTime) {
  hw::Cycles before = 0, after = 0;
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    before = s.cpu().now();
    co_await s.compute_us(1000.0);
    after = s.cpu().now();
  }));
  EXPECT_GE(after - before, hw::us_to_cycles(1000.0));
}

}  // namespace
}  // namespace mercury::testing
