#include <gtest/gtest.h>

#include <array>

#include "hw/costs.hpp"
#include "hw/devices/disk.hpp"
#include "hw/devices/nic.hpp"
#include "hw/devices/sensors.hpp"
#include "hw/interrupts.hpp"
#include "hw/machine.hpp"
#include "util/assert.hpp"

namespace mercury::hw {
namespace {

std::array<std::uint8_t, Disk::kBlockSize> buf{};

TEST(DiskTest, SequentialCheaperThanRandom) {
  Disk disk;
  (void)disk.write(100, buf);
  const Cycles seq = disk.write(101, buf);
  const Cycles random = disk.write(4'000'000, buf);
  EXPECT_LT(seq, random);
  EXPECT_GE(random, costs::kDiskSeek);
}

TEST(DiskTest, ShortHopCheaperThanFullSeek) {
  Disk disk;
  (void)disk.write(1000, buf);
  const Cycles hop = disk.write(1010, buf);  // gap < 256
  (void)disk.write(2000, buf);
  const Cycles medium = disk.write(2000 + 3000, buf);  // gap < 4096
  (void)disk.write(3000, buf);
  const Cycles full = disk.write(3000 + 100000, buf);
  EXPECT_LT(hop, medium);
  EXPECT_LT(medium, full);
}

TEST(DiskTest, DataPersists) {
  Disk disk;
  std::array<std::uint8_t, Disk::kBlockSize> in{};
  in[17] = 0xAA;
  (void)disk.write(55, in);
  std::array<std::uint8_t, Disk::kBlockSize> out{};
  (void)disk.read(55, out);
  EXPECT_EQ(out[17], 0xAA);
}

TEST(DiskTest, UnwrittenBlocksReadZero) {
  Disk disk;
  std::array<std::uint8_t, Disk::kBlockSize> out{};
  out[3] = 9;
  (void)disk.read(7777, out);
  EXPECT_EQ(out[3], 0);
}

TEST(DiskTest, FlushCostGrowsWithPendingWrites) {
  Disk d1, d2;
  (void)d1.write(1, buf);
  const Cycles small = d1.flush();
  for (int i = 0; i < 200; ++i) (void)d2.write(i * 10, buf);
  const Cycles big = d2.flush();
  EXPECT_LT(small, big);
}

TEST(DiskTest, BeyondDeviceIsInvariantError) {
  Disk::Params p;
  p.block_count = 10;
  Disk disk(p);
  EXPECT_THROW((void)disk.read(10, buf), util::InvariantError);
}

TEST(LinkTest, DeliversWithLatencyAndSerialization) {
  Nic a(1), b(2);
  Link::Params lp;
  lp.per_byte = 24;
  lp.latency = 1000;
  Link link(lp);
  link.attach(&a, &b);

  Packet pkt;
  pkt.payload_bytes = 1000;
  (void)a.send(pkt, /*now=*/0);
  // Not yet arrived right after send.
  EXPECT_FALSE(b.poll(100).has_value());
  auto arrival = b.earliest_arrival();
  ASSERT_TRUE(arrival.has_value());
  EXPECT_GE(*arrival, 1000u + 24u * 1064);
  EXPECT_TRUE(b.poll(*arrival).has_value());
}

TEST(LinkTest, BandwidthSerializesBackToBack) {
  Nic a(1), b(2);
  Link link;
  link.attach(&a, &b);
  Packet pkt;
  pkt.payload_bytes = 1500;
  (void)a.send(pkt, 0);
  (void)a.send(pkt, 0);
  // The second packet must arrive one serialization time after the first.
  (void)b.poll(~Cycles{0} / 2);
  auto second = b.earliest_arrival();
  ASSERT_TRUE(second.has_value());
  const Cycles wire = 24 * (1500 + 64);
  EXPECT_GE(*second, 2 * wire);
}

TEST(LinkTest, DownLinkDropsEverything) {
  Nic a(1), b(2);
  Link link;
  link.attach(&a, &b);
  link.set_up(false);
  Packet pkt;
  (void)a.send(pkt, 0);
  EXPECT_EQ(link.packets_dropped(), 1u);
  EXPECT_FALSE(b.earliest_arrival().has_value());
  link.set_up(true);
  (void)a.send(pkt, 0);
  EXPECT_EQ(link.packets_carried(), 1u);
}

TEST(LinkTest, LossProbabilityDropsSome) {
  Nic a(1), b(2);
  Link link;
  link.attach(&a, &b);
  link.set_drop_probability(0.5);
  Packet pkt;
  for (int i = 0; i < 200; ++i) (void)a.send(pkt, i * 100000);
  EXPECT_GT(link.packets_dropped(), 50u);
  EXPECT_GT(link.packets_carried(), 50u);
}

TEST(NicTest, RxInterruptRaisedOnDelivery) {
  MachineConfig mc;
  mc.mem_kb = 8 * 1024;
  Machine m(mc);
  m.nic().bind_irq(&m.interrupts(), 0);
  Nic peer(99);
  Link link;
  link.attach(&peer, &m.nic());
  Packet pkt;
  pkt.payload_bytes = 64;
  (void)peer.send(pkt, 0);
  auto arrival = m.nic().earliest_arrival();
  ASSERT_TRUE(arrival.has_value());
  m.cpu(0).advance_to(*arrival);
  m.cpu(0).set_iflag_raw(true);
  auto irq = m.interrupts().next_pending(m.cpu(0));
  ASSERT_TRUE(irq.has_value());
  EXPECT_EQ(irq->vector, kVecNic);
}

TEST(SensorsTest, DefaultsHealthyAndInjectable) {
  HealthSensors s;
  SensorReadings r;
  (void)s.read(r);
  EXPECT_FALSE(HealthSensors::predicts_failure(r));
  s.inject_overheat(97.0);
  (void)s.read(r);
  EXPECT_TRUE(HealthSensors::predicts_failure(r));
  s.clear_anomalies();
  (void)s.read(r);
  EXPECT_FALSE(HealthSensors::predicts_failure(r));
  s.inject_fan_failure();
  (void)s.read(r);
  EXPECT_TRUE(HealthSensors::predicts_failure(r));
}

TEST(InterruptControllerTest, PriorityAndFifoOrdering) {
  InterruptController ic(1);
  Cpu cpu(0);
  cpu.set_iflag_raw(true);
  ic.raise(0, kVecNic, 0, 1);
  ic.raise(0, kVecTimer, 0, 2);  // lower vector = higher priority
  ic.raise(0, kVecNic, 0, 3);
  auto a = ic.next_pending(cpu);
  auto b = ic.next_pending(cpu);
  auto c = ic.next_pending(cpu);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->vector, kVecTimer);
  EXPECT_EQ(b->payload, 1u);  // FIFO within a vector
  EXPECT_EQ(c->payload, 3u);
}

TEST(InterruptControllerTest, MaskedWhenIfClear) {
  InterruptController ic(1);
  Cpu cpu(0);
  cpu.set_iflag_raw(false);
  ic.raise(0, kVecTimer, 0);
  EXPECT_FALSE(ic.next_pending(cpu).has_value());
  cpu.set_iflag_raw(true);
  EXPECT_TRUE(ic.next_pending(cpu).has_value());
}

TEST(InterruptControllerTest, FutureArrivalNotVisible) {
  InterruptController ic(1);
  Cpu cpu(0);
  cpu.set_iflag_raw(true);
  ic.raise(0, kVecTimer, 5000);
  EXPECT_FALSE(ic.next_pending(cpu).has_value());
  cpu.advance_to(5000);
  EXPECT_TRUE(ic.next_pending(cpu).has_value());
}

TEST(InterruptControllerTest, IpiChargesSenderAndArrivesLater) {
  InterruptController ic(2);
  Cpu cpu0(0), cpu1(1);
  cpu1.set_iflag_raw(true);
  const Cycles before = cpu0.now();
  ic.send_ipi(cpu0, 1, kVecIpiReschedule, 7);
  EXPECT_GT(cpu0.now(), before);
  EXPECT_FALSE(ic.next_pending(cpu1).has_value());
  cpu1.advance_to(cpu0.now() + costs::kIpiSendLatency);
  auto irq = ic.next_pending(cpu1);
  ASSERT_TRUE(irq.has_value());
  EXPECT_EQ(irq->payload, 7u);
}

TEST(InterruptControllerTest, BroadcastSkipsSelf) {
  InterruptController ic(3);
  Cpu cpu0(0), cpu1(1), cpu2(2);
  ic.broadcast_ipi(cpu0, kVecIpiModeSwitch);
  EXPECT_EQ(ic.ipis_sent(), 2u);
  EXPECT_FALSE(ic.earliest_arrival(0).has_value());
  EXPECT_TRUE(ic.earliest_arrival(1).has_value());
  EXPECT_TRUE(ic.earliest_arrival(2).has_value());
}

TEST(TimerBankTest, PeriodicDeadlines) {
  TimerBank timers(1, 1000);
  Cpu cpu(0);
  EXPECT_FALSE(timers.tick_due(cpu));
  cpu.advance_to(1000);
  EXPECT_TRUE(timers.tick_due(cpu));
  EXPECT_FALSE(timers.tick_due(cpu)) << "tick must be consumed";
  EXPECT_EQ(timers.next_deadline(0), 2000u);
}

TEST(TimerBankTest, MissedTicksCoalesce) {
  TimerBank timers(1, 1000);
  Cpu cpu(0);
  cpu.advance_to(5500);
  EXPECT_TRUE(timers.tick_due(cpu));
  EXPECT_FALSE(timers.tick_due(cpu)) << "burst replay would be wrong";
  EXPECT_EQ(timers.next_deadline(0), 6000u);
}

TEST(CpuTest, PrivilegedOpsFaultAtRing1) {
  Cpu cpu(0);
  struct CountSink : TrapSink {
    int gp = 0;
    void on_trap(Cpu&, const TrapInfo& info) override {
      if (info.kind == TrapKind::kGeneralProtection) ++gp;
    }
  } sink;
  cpu.install_trap_sink(&sink);
  cpu.set_cpl(Ring::kRing1);
  EXPECT_FALSE(cpu.write_cr3(5));
  EXPECT_FALSE(cpu.set_interrupts_enabled(true));
  EXPECT_FALSE(cpu.load_idt(TableToken{3}));
  EXPECT_FALSE(cpu.halt());
  EXPECT_EQ(sink.gp, 4);
  cpu.set_cpl(Ring::kRing0);
  EXPECT_TRUE(cpu.write_cr3(5));
  EXPECT_EQ(cpu.read_cr3(), 5u);
}

TEST(CpuTest, Cr3WriteFlushesNonGlobalTlb) {
  Cpu cpu(0);
  cpu.tlb().insert(1, make_pte(1, true, true, /*global=*/false));
  cpu.tlb().insert(2, make_pte(2, true, true, /*global=*/true));
  struct S : TrapSink {
    void on_trap(Cpu&, const TrapInfo&) override {}
  } sink;
  cpu.install_trap_sink(&sink);
  cpu.write_cr3(9);
  EXPECT_FALSE(cpu.tlb().lookup(1).has_value());
  EXPECT_TRUE(cpu.tlb().lookup(2).has_value());
}

TEST(CpuTest, RdtscMonotonicAndCharges) {
  Cpu cpu(0);
  const Cycles a = cpu.rdtsc();
  const Cycles b = cpu.rdtsc();
  EXPECT_GT(b, a);
}

TEST(MachineTest, ConfigShapesTheBox) {
  MachineConfig mc;
  mc.num_cpus = 2;
  mc.mem_kb = 900'000;
  Machine m(mc);
  EXPECT_EQ(m.num_cpus(), 2u);
  EXPECT_EQ(m.memory().total_frames(), 225'000u);
  EXPECT_EQ(m.frames().total_frames(), 225'000u);
}

}  // namespace
}  // namespace mercury::hw
