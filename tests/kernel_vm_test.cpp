// Virtual memory: mmap/munmap/mprotect, demand paging, VMA splitting.
#include "tests/kernel_fixture.hpp"

namespace mercury::testing {
namespace {

using kernel::Sub;
using kernel::Sys;

using VmTest = KernelFixture;

TEST_F(VmTest, DemandPagingMapsOnTouch) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const hw::VirtAddr va = s.mmap(8 * hw::kPageSize, true);
    EXPECT_FALSE(s.kernel().machine().mmu().peek_pte(s.cpu(), va).has_value());
    const auto faults_before = s.kernel().stats().page_faults;
    s.touch_pages(va, 8, true);
    EXPECT_EQ(s.kernel().stats().page_faults - faults_before, 8u);
    EXPECT_TRUE(s.kernel().machine().mmu().peek_pte(s.cpu(), va).has_value());
    // Second touch: no more faults.
    const auto faults_mid = s.kernel().stats().page_faults;
    s.touch_pages(va, 8, true);
    EXPECT_EQ(s.kernel().stats().page_faults, faults_mid);
    co_return;
  }));
}

TEST_F(VmTest, AnonymousPagesAreZeroed) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const hw::VirtAddr va = s.mmap(hw::kPageSize, true);
    EXPECT_EQ(s.kernel().machine().mmu().read_u32(s.cpu(), va + 64), 0u);
    co_return;
  }));
}

TEST_F(VmTest, MunmapUnmapsAndFreesFrames) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const std::size_t free_before = s.kernel().pool().free_count();
    const hw::VirtAddr va = s.mmap(16 * hw::kPageSize, true);
    s.touch_pages(va, 16, true);
    EXPECT_LT(s.kernel().pool().free_count(), free_before);
    s.munmap(va, 16 * hw::kPageSize);
    EXPECT_FALSE(s.kernel().machine().mmu().peek_pte(s.cpu(), va).has_value());
    // Frames returned (modulo the L1 table that stays).
    EXPECT_GE(s.kernel().pool().free_count() + 2, free_before);
    co_return;
  }));
}

TEST_F(VmTest, PartialMunmapSplitsVma) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const hw::VirtAddr va = s.mmap(8 * hw::kPageSize, true);
    s.touch_pages(va, 8, true);
    // Punch out pages 2..3.
    s.munmap(va + 2 * hw::kPageSize, 2 * hw::kPageSize);
    auto& mmu = s.kernel().machine().mmu();
    EXPECT_TRUE(mmu.peek_pte(s.cpu(), va).has_value());
    EXPECT_FALSE(mmu.peek_pte(s.cpu(), va + 2 * hw::kPageSize).has_value());
    EXPECT_TRUE(mmu.peek_pte(s.cpu(), va + 4 * hw::kPageSize).has_value());
    // Touching the hole kills; touching the tail works.
    s.touch_pages(va + 4 * hw::kPageSize, 4, true);
    co_return;
  }));
}

TEST_F(VmTest, MprotectRevokesWrite) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    s.task().catch_segv = true;
    const hw::VirtAddr va = s.mmap(2 * hw::kPageSize, true);
    s.touch_pages(va, 2, true);
    s.mprotect(va, hw::kPageSize, false);
    s.prot_fault_once(va);  // first page: fault
    EXPECT_EQ(s.task().segv_caught, 1u);
    s.touch_pages(va + hw::kPageSize, 1, true);  // second page untouched
    // Reads on the protected page still work.
    s.touch_pages(va, 1, false);
    co_return;
  }));
}

TEST_F(VmTest, MmapFixedReplacesInPlace) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const hw::VirtAddr va = s.mmap(4 * hw::kPageSize, true);
    auto& mmu = s.kernel().machine().mmu();
    mmu.write_u32(s.cpu(), va, 77);
    const hw::VirtAddr again = s.mmap_fixed(va, 4 * hw::kPageSize, true);
    EXPECT_EQ(again, va);
    // Fresh anonymous memory: the old content is gone.
    EXPECT_EQ(mmu.read_u32(s.cpu(), va), 0u);
    co_return;
  }));
}

TEST_F(VmTest, FileBackedFaultsChargeMoreThanWarmTouch) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const hw::VirtAddr va = s.mmap(64 * hw::kPageSize, false, /*inode=*/0);
    const hw::Cycles t0 = s.cpu().now();
    s.touch_pages(va, 64, false);
    const hw::Cycles cold = s.cpu().now() - t0;
    const hw::Cycles t1 = s.cpu().now();
    s.touch_pages(va, 64, false);
    const hw::Cycles warm = s.cpu().now() - t1;
    EXPECT_GT(cold, 5 * warm);
    co_return;
  }));
}

TEST_F(VmTest, ResidentPageAccounting) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const std::size_t base = s.task().aspace->resident_pages();
    const hw::VirtAddr va = s.mmap(10 * hw::kPageSize, true);
    s.touch_pages(va, 10, true);
    EXPECT_EQ(s.task().aspace->resident_pages(), base + 10);
    s.munmap(va, 10 * hw::kPageSize);
    EXPECT_EQ(s.task().aspace->resident_pages(), base);
    co_return;
  }));
}

TEST_F(VmTest, PageTableFramesEnumerated) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const auto before = s.task().aspace->page_table_frames().size();
    // Map far enough away to require a new L1.
    const hw::VirtAddr va = s.mmap(hw::kPageSize, true);
    s.touch_pages(va, 1, true);
    EXPECT_GE(s.task().aspace->page_table_frames().size(), before);
    EXPECT_EQ(s.task().aspace->page_table_frames().front(),
              s.task().aspace->page_directory());
    co_return;
  }));
}

TEST_F(VmTest, DirtyHarvestFindsWrittenPages) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const hw::VirtAddr va = s.mmap(6 * hw::kPageSize, true);
    s.touch_pages(va, 6, true);
    std::vector<hw::Pfn> dirty;
    // Demand-install writes set the dirty bit via the MMU.
    const std::size_t n = s.task().aspace->collect_and_clear_dirty(s.cpu(), &dirty);
    EXPECT_GE(n, 6u);
    // After clearing, nothing is dirty until the next write.
    const std::size_t n2 = s.task().aspace->collect_and_clear_dirty(s.cpu(), nullptr);
    EXPECT_EQ(n2, 0u);
    s.kernel().machine().cpu(0).tlb().flush_global();
    s.touch_pages(va, 2, true);
    const std::size_t n3 = s.task().aspace->collect_and_clear_dirty(s.cpu(), nullptr);
    EXPECT_EQ(n3, 2u);
    co_return;
  }));
}

TEST_F(VmTest, GuardGapBetweenMmaps) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const hw::VirtAddr a = s.mmap(hw::kPageSize, true);
    const hw::VirtAddr b = s.mmap(hw::kPageSize, true);
    EXPECT_GE(b, a + 2 * hw::kPageSize) << "no guard gap between mappings";
    co_return;
  }));
}

TEST_F(VmTest, WriteToReadOnlyVmaKills) {
  const kernel::Pid pid = k->spawn("wr-ro", [](Sys& s) -> Sub<void> {
    const hw::VirtAddr va = s.mmap(hw::kPageSize, /*writable=*/false);
    s.touch_pages(va, 1, /*write=*/true);
    co_return;
  });
  EXPECT_TRUE(k->run_until(
      [&] {
        auto* t = k->find_task(pid);
        return t && t->state == kernel::TaskState::kZombie;
      },
      50 * hw::kCyclesPerMillisecond));
  EXPECT_EQ(k->find_task(pid)->exit_status, -11);
}

}  // namespace
}  // namespace mercury::testing
