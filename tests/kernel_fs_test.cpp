// Filesystem: block cache behaviour, file ops, write-back, fsync.
#include "tests/kernel_fixture.hpp"

namespace mercury::testing {
namespace {

using kernel::BlockCache;
using kernel::Sub;
using kernel::Sys;

TEST(BlockCacheTest, HitAfterInsert) {
  BlockCache c(8);
  EXPECT_FALSE(c.lookup(5));
  c.insert(5, false);
  EXPECT_TRUE(c.lookup(5));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(BlockCacheTest, LruEvictionOrder) {
  BlockCache c(2);
  c.insert(1, false);
  c.insert(2, false);
  (void)c.lookup(1);  // 2 is now LRU
  c.insert(3, false);
  (void)c.evict_to_capacity();
  EXPECT_TRUE(c.is_cached(1));
  EXPECT_FALSE(c.is_cached(2));
  EXPECT_TRUE(c.is_cached(3));
}

TEST(BlockCacheTest, DirtyEvictionReturnsWritebackList) {
  BlockCache c(2);
  c.insert(1, true);
  c.insert(2, false);
  c.insert(3, false);
  const auto wb = c.evict_to_capacity();
  ASSERT_EQ(wb.size(), 1u);
  EXPECT_EQ(wb[0], 1u);
  EXPECT_EQ(c.dirty_count(), 0u);
}

TEST(BlockCacheTest, TakeDirtyOldestFirstAndClears) {
  BlockCache c(8);
  c.insert(1, true);
  c.insert(2, true);
  c.insert(3, false);
  const auto d = c.take_dirty(10);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0], 1u) << "oldest dirty first";
  EXPECT_EQ(c.dirty_count(), 0u);
}

TEST(BlockCacheTest, InvalidateDropsDirty) {
  BlockCache c(8);
  c.insert(4, true);
  c.invalidate(4);
  EXPECT_FALSE(c.is_cached(4));
  EXPECT_EQ(c.dirty_count(), 0u);
  EXPECT_TRUE(c.take_dirty(10).empty());
}

using FsTest = KernelFixture;

TEST_F(FsTest, CreateWriteReadBack) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const int fd = s.open("/dir/file.dat", true);
    EXPECT_GE(fd, 0);
    const std::size_t w = co_await s.file_write(fd, 10000);
    EXPECT_EQ(w, 10000u);
    EXPECT_EQ(s.file_size("/dir/file.dat"), 10000);
    s.seek(fd, 0);
    const std::size_t r = co_await s.file_read(fd, 20000);
    EXPECT_EQ(r, 10000u) << "read clamps at EOF";
  }));
}

TEST_F(FsTest, OpenWithoutCreateFails) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    EXPECT_EQ(s.open("/missing", false), -1);
    co_return;
  }));
}

TEST_F(FsTest, UnlinkRemovesAndFreesBlocks) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const int fd = s.open("/victim", true);
    co_await s.file_write(fd, 64 * 1024);
    s.close(fd);
    EXPECT_TRUE(s.stat("/victim"));
    EXPECT_TRUE(s.unlink("/victim"));
    EXPECT_FALSE(s.stat("/victim"));
    EXPECT_FALSE(s.unlink("/victim")) << "double unlink";
    EXPECT_EQ(s.file_size("/victim"), -1);
  }));
}

TEST_F(FsTest, MkdirAndStat) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    EXPECT_TRUE(s.mkdir("/a/b"));
    EXPECT_FALSE(s.mkdir("/a/b")) << "mkdir of existing dir";
    EXPECT_TRUE(s.stat("/a/b"));
    co_return;
  }));
}

TEST_F(FsTest, SparseWriteExtendsFile) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const int fd = s.open("/sparse", true);
    s.seek(fd, 1'000'000);
    co_await s.file_write(fd, 100);
    EXPECT_EQ(s.file_size("/sparse"), 1'000'100);
  }));
}

TEST_F(FsTest, FsyncWritesDirtyBlocksToDisk) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const auto writes_before = s.kernel().machine().disk().writes();
    const int fd = s.open("/durable", true);
    co_await s.file_write(fd, 128 * 1024);
    // Buffered: nothing on disk yet (cache is large).
    EXPECT_EQ(s.kernel().machine().disk().writes(), writes_before);
    s.fsync(fd);
    EXPECT_GE(s.kernel().machine().disk().writes(), writes_before + 32);
    // Second fsync with nothing dirty is cheap.
    const auto w2 = s.kernel().machine().disk().writes();
    s.fsync(fd);
    EXPECT_EQ(s.kernel().machine().disk().writes(), w2);
  }));
}

TEST_F(FsTest, ColdReadHitsDiskWarmReadDoesNot) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const int fd = s.open("/cold", true);
    co_await s.file_write(fd, 32 * 1024);
    s.fsync(fd);
    // Evict by invalidating the cache through unlink+recreate? Simpler:
    // read a fresh kernel... here we at least verify warm reads are free.
    const auto reads_before = s.kernel().machine().disk().reads();
    s.seek(fd, 0);
    co_await s.file_read(fd, 32 * 1024);
    EXPECT_EQ(s.kernel().machine().disk().reads(), reads_before)
        << "warm read must be served from the cache";
  }));
}

TEST_F(FsTest, WritebackSomeDrainsDirty) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const int fd = s.open("/wb", true);
    co_await s.file_write(fd, 64 * 1024);
    auto& fs = s.kernel().fs();
    EXPECT_GT(fs.cache().dirty_count(), 0u);
    const auto disk_before = s.kernel().machine().disk().writes();
    fs.writeback_some(s.cpu(), 1000);
    EXPECT_EQ(fs.cache().dirty_count(), 0u);
    EXPECT_GT(s.kernel().machine().disk().writes(), disk_before);
  }));
}

TEST_F(FsTest, StatsTrackTraffic) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const int fd = s.open("/stats", true);
    co_await s.file_write(fd, 5000);
    s.seek(fd, 0);
    co_await s.file_read(fd, 5000);
    const auto& st = s.kernel().fs().stats();
    EXPECT_GE(st.bytes_written, 5000u);
    EXPECT_GE(st.bytes_read, 5000u);
    EXPECT_GE(st.creates, 1u);
  }));
}

TEST_F(FsTest, DeepPathsCostMoreThanShallow) {
  EXPECT_TRUE(run_task([&](Sys& s) -> Sub<void> {
    const hw::Cycles t0 = s.cpu().now();
    s.stat("/a");
    const hw::Cycles shallow = s.cpu().now() - t0;
    const hw::Cycles t1 = s.cpu().now();
    s.stat("/a/b/c/d/e/f/g/h");
    const hw::Cycles deep = s.cpu().now() - t1;
    EXPECT_GT(deep, shallow);
    co_return;
  }));
}

}  // namespace
}  // namespace mercury::testing
