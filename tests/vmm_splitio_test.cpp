// Split-driver backends and domain lifecycle details.
#include <gtest/gtest.h>

#include <array>

#include "hw/machine.hpp"
#include "vmm/blkif.hpp"
#include "vmm/domain.hpp"
#include "vmm/netif.hpp"

namespace mercury::vmm {
namespace {

struct SplitIoFixture : ::testing::Test {
  SplitIoFixture()
      : machine(cfg()),
        blk(machine, evtchn, gnttab, /*driver=*/0),
        net(machine, evtchn, gnttab, /*driver=*/0) {
    blk.connect_frontend(1);
    net.connect_frontend(1);
    peer_link.attach(&machine.nic(), &peer);
  }
  static hw::MachineConfig cfg() {
    hw::MachineConfig mc;
    mc.mem_kb = 16 * 1024;
    return mc;
  }
  hw::Machine machine;
  EventChannels evtchn;
  GrantTable gnttab;
  BlockBackend blk;
  NetBackend net;
  hw::Nic peer{0xFF};
  hw::Link peer_link;
  std::array<std::uint8_t, 4096> buf{};
};

TEST_F(SplitIoFixture, ReadGoesToDiskOnceThenBackendCache) {
  const auto reads0 = machine.disk().reads();
  blk.read(machine.cpu(0), 123, buf);
  EXPECT_EQ(machine.disk().reads(), reads0 + 1);
  blk.read(machine.cpu(0), 123, buf);
  EXPECT_EQ(machine.disk().reads(), reads0 + 1) << "backend cache hit";
  EXPECT_EQ(blk.requests_served(), 2u);
}

TEST_F(SplitIoFixture, WriteIsAbsorbedUntilHardFlush) {
  const auto writes0 = machine.disk().writes();
  blk.write(machine.cpu(0), 55, buf);
  blk.flush(machine.cpu(0));  // barrier only
  EXPECT_EQ(machine.disk().writes(), writes0);
  blk.flush_hard(machine.cpu(0));
  EXPECT_GT(machine.disk().writes(), writes0);
}

TEST_F(SplitIoFixture, EveryRequestUsesGrantAndEvent) {
  const auto maps0 = gnttab.maps_performed();
  const auto events0 = evtchn.total_notifications();
  blk.write(machine.cpu(0), 9, buf);
  EXPECT_EQ(gnttab.maps_performed(), maps0 + 1);
  EXPECT_GE(evtchn.total_notifications(), events0 + 2)  // doorbell + completion
      << "split I/O rides on event channels";
  EXPECT_EQ(gnttab.active_grants(), 0u) << "grants are ended after use";
}

TEST_F(SplitIoFixture, DisconnectDrainsWriteBehind) {
  blk.write(machine.cpu(0), 77, buf);
  const auto writes0 = machine.disk().writes();
  blk.disconnect_frontend(machine.cpu(0));
  EXPECT_GT(machine.disk().writes(), writes0)
      << "handover must be durable (migration path)";
  EXPECT_FALSE(blk.connected());
}

TEST_F(SplitIoFixture, NetTxReachesTheWireWithGuestCopies) {
  hw::Packet pkt;
  pkt.payload_bytes = 1000;
  const auto tx0 = machine.nic().tx_count();
  const auto maps0 = gnttab.maps_performed();
  net.tx(machine.cpu(0), pkt);
  EXPECT_EQ(machine.nic().tx_count(), tx0 + 1);
  EXPECT_EQ(gnttab.maps_performed(), maps0 + 1);
  EXPECT_TRUE(peer.earliest_arrival().has_value());
}

TEST_F(SplitIoFixture, NetRxPollPullsFromRealNic) {
  hw::Packet pkt;
  pkt.payload_bytes = 200;
  (void)peer.send(pkt, 0);
  machine.cpu(0).advance_to(*machine.nic().earliest_arrival());
  auto got = net.rx_poll(machine.cpu(0));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload_bytes, 200u);
  EXPECT_EQ(net.packets_rx(), 1u);
  EXPECT_FALSE(net.rx_poll(machine.cpu(0)).has_value());
}

TEST(DomainTest, FrameOwnershipBounds) {
  Domain d(3, "dom", nullptr, 1000, 50, false, 2);
  EXPECT_TRUE(d.owns_frame(1000));
  EXPECT_TRUE(d.owns_frame(1049));
  EXPECT_FALSE(d.owns_frame(999));
  EXPECT_FALSE(d.owns_frame(1050));
  EXPECT_EQ(d.num_vcpus(), 2u);
  EXPECT_EQ(d.vcpu(1).vcpu_id, 1u);
}

TEST(DomainTest, LogDirtyTracksAndHarvests) {
  Domain d(0, "dom", nullptr, 100, 20, true, 1);
  d.mark_dirty(105);
  EXPECT_EQ(d.dirty_count(), 0u) << "log-dirty off: no tracking";
  d.set_log_dirty(true);
  d.mark_dirty(105);
  d.mark_dirty(105);  // idempotent
  d.mark_dirty(110);
  d.mark_dirty(999);  // foreign frame ignored
  EXPECT_EQ(d.dirty_count(), 2u);
  const auto dirty = d.harvest_dirty();
  EXPECT_EQ(dirty.size(), 2u);
  EXPECT_EQ(d.dirty_count(), 0u);
  EXPECT_TRUE(d.harvest_dirty().empty());
}

}  // namespace
}  // namespace mercury::vmm
