// Page-info table, event channels, grant tables, rings.
#include <gtest/gtest.h>

#include "hw/machine.hpp"
#include "util/assert.hpp"
#include "vmm/event_channel.hpp"
#include "vmm/grant_table.hpp"
#include "vmm/page_info.hpp"
#include "vmm/ring.hpp"

namespace mercury::vmm {
namespace {

TEST(PageInfoTableTest, StartsInvalid) {
  PageInfoTable t(100);
  EXPECT_FALSE(t.valid());
  EXPECT_EQ(t.size(), 100u);
}

TEST(PageInfoTableTest, InvariantsAcceptConsistentState) {
  PageInfoTable t(10);
  t.at(3) = PageInfo{0, PageType::kL1, 1, 1, true};
  t.at(4) = PageInfo{0, PageType::kWritable, 0, 1, false};
  t.set_valid(true);
  EXPECT_FALSE(t.check_invariants().has_value());
}

TEST(PageInfoTableTest, PinnedNonTableIsInconsistent) {
  PageInfoTable t(10);
  t.at(3) = PageInfo{0, PageType::kWritable, 1, 1, true};
  t.set_valid(true);
  auto err = t.check_invariants();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("pinned"), std::string::npos);
}

TEST(PageInfoTableTest, PinnedZeroCountIsInconsistent) {
  PageInfoTable t(10);
  t.at(3) = PageInfo{0, PageType::kL2, 0, 1, true};
  t.set_valid(true);
  EXPECT_TRUE(t.check_invariants().has_value());
}

TEST(PageInfoTableTest, TypedUnownedIsInconsistent) {
  PageInfoTable t(10);
  t.at(5) = PageInfo{kDomInvalid, PageType::kWritable, 0, 1, false};
  t.set_valid(true);
  EXPECT_TRUE(t.check_invariants().has_value());
}

TEST(PageInfoTableTest, InvalidateIsCheapAndMarksStale) {
  PageInfoTable t(1 << 20);  // a million frames
  t.set_valid(true);
  t.invalidate_all();  // must be O(1), not a million writes
  EXPECT_FALSE(t.valid());
  EXPECT_TRUE(t.check_invariants().has_value());
}

TEST(PageInfoTableTest, OutOfRangeIsInvariantError) {
  PageInfoTable t(10);
  EXPECT_THROW(t.at(10), util::InvariantError);
}

TEST(EventChannelsTest, HandlerInvokedOnNotify) {
  EventChannels ec;
  hw::Cpu cpu(0);
  int fired = 0;
  const int port = ec.alloc(0, 1, [&](hw::Cpu&) { ++fired; });
  ec.notify(cpu, port);
  ec.notify(cpu, port);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(ec.channel(port).notifications, 2u);
}

TEST(EventChannelsTest, HandlerlessChannelLatchesPending) {
  EventChannels ec;
  hw::Cpu cpu(0);
  const int port = ec.alloc(0, 1);
  EXPECT_FALSE(ec.pending(port));
  ec.notify(cpu, port);
  EXPECT_TRUE(ec.pending(port));
  EXPECT_TRUE(ec.take_pending(port));
  EXPECT_FALSE(ec.take_pending(port)) << "pending is edge, not level";
}

TEST(EventChannelsTest, NotifyChargesCycles) {
  EventChannels ec;
  hw::Cpu cpu(0);
  const int port = ec.alloc(0, 1);
  const hw::Cycles before = cpu.now();
  ec.notify(cpu, port);
  EXPECT_GT(cpu.now(), before);
}

TEST(EventChannelsTest, ClosedChannelRejectsNotify) {
  EventChannels ec;
  hw::Cpu cpu(0);
  const int port = ec.alloc(0, 1);
  ec.close(port);
  EXPECT_THROW(ec.notify(cpu, port), util::InvariantError);
}

TEST(EventChannelsTest, PortsAreReusedAfterClose) {
  EventChannels ec;
  const int a = ec.alloc(0, 1);
  ec.close(a);
  const int b = ec.alloc(2, 3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ec.open_channels(), 1u);
}

TEST(GrantTableTest, GrantMapUnmapEndLifecycle) {
  GrantTable gt;
  hw::Cpu cpu(0);
  const int ref = gt.grant(/*owner=*/1, /*frame=*/500, /*grantee=*/0, false);
  EXPECT_EQ(gt.map(cpu, 0, ref), 500u);
  gt.unmap(cpu, 0, ref);
  gt.end(1, ref);
  EXPECT_EQ(gt.active_grants(), 0u);
  EXPECT_EQ(gt.maps_performed(), 1u);
}

TEST(GrantTableTest, WrongGranteeRejected) {
  GrantTable gt;
  hw::Cpu cpu(0);
  const int ref = gt.grant(1, 500, 0, false);
  EXPECT_THROW(gt.map(cpu, /*grantee=*/2, ref), util::InvariantError);
}

TEST(GrantTableTest, EndWhileMappedRejected) {
  GrantTable gt;
  hw::Cpu cpu(0);
  const int ref = gt.grant(1, 500, 0, false);
  (void)gt.map(cpu, 0, ref);
  EXPECT_THROW(gt.end(1, ref), util::InvariantError);
}

TEST(GrantTableTest, WrongOwnerCannotEnd) {
  GrantTable gt;
  const int ref = gt.grant(1, 500, 0, false);
  EXPECT_THROW(gt.end(2, ref), util::InvariantError);
}

TEST(IoRingTest, RequestResponseFlow) {
  IoRing<int, int> ring(4);
  hw::Cpu cpu(0);
  EXPECT_TRUE(ring.push_request(cpu, 10));
  EXPECT_TRUE(ring.has_request());
  auto req = ring.pop_request(cpu);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(*req, 10);
  ring.push_response(cpu, 20);
  auto resp = ring.pop_response(cpu);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(*resp, 20);
}

TEST(IoRingTest, FullRingRejectsProduce) {
  IoRing<int, int> ring(2);
  hw::Cpu cpu(0);
  EXPECT_TRUE(ring.push_request(cpu, 1));
  EXPECT_TRUE(ring.push_request(cpu, 2));
  EXPECT_FALSE(ring.push_request(cpu, 3)) << "ring full";
  (void)ring.pop_request(cpu);
  EXPECT_TRUE(ring.push_request(cpu, 3));
}

}  // namespace
}  // namespace mercury::vmm
