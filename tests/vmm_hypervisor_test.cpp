// Hypervisor: hypercall validation, isolation enforcement, adopt/release,
// split-driver backends.
#include <gtest/gtest.h>

#include "tests/kernel_fixture.hpp"
#include "kernel/layout.hpp"
#include "vmm/hypervisor.hpp"
#include "workloads/configs.hpp"

namespace mercury::testing {
namespace {

using kernel::Sub;
using kernel::Sys;
using vmm::DomainId;
using vmm::PageType;
using workloads::Sut;
using workloads::SutParams;
using workloads::SystemId;

SutParams small() {
  SutParams p;
  p.machine_mem_kb = 256 * 1024;
  p.kernel_mem_kb = 96 * 1024;
  p.domu_mem_kb = 64 * 1024;
  return p;
}

class HvTest : public ::testing::Test {
 protected:
  // An X-0-style always-on stack gives us a live hypervisor + dom0.
  HvTest() : sut(Sut::create(SystemId::kX0, small())) {}

  vmm::Hypervisor& hv() { return *sut->hypervisor(); }
  kernel::Kernel& k() { return sut->kernel(); }
  hw::Cpu& cpu() { return sut->machine().cpu(0); }

  std::unique_ptr<Sut> sut;
};

TEST_F(HvTest, BootLeavesConsistentPageInfo) {
  EXPECT_TRUE(hv().active());
  const auto err = hv().page_info().check_invariants();
  EXPECT_FALSE(err.has_value()) << *err;
  // Kernel page tables are typed and pinned.
  for (const hw::Pfn l1 : k().kernel_l1_frames()) {
    EXPECT_EQ(hv().page_info().at(l1).type, PageType::kL1);
    EXPECT_TRUE(hv().page_info().at(l1).pinned);
  }
  EXPECT_EQ(hv().page_info().at(k().kernel_pd()).type, PageType::kL2);
}

TEST_F(HvTest, GuestWorkloadsKeepDomainAlive) {
  bool done = false;
  k().spawn("guest-work", [&](Sys& s) -> Sub<void> {
    const auto va = s.mmap(32 * hw::kPageSize, true);
    s.touch_pages(va, 32, true);
    const auto child = s.fork([](Sys& cs) -> Sub<void> {
      cs.exit(0);
      co_return;
    });
    co_await s.wait_pid(child);
    s.munmap(va, 32 * hw::kPageSize);
    done = true;
  });
  EXPECT_TRUE(k().run_until([&] { return done; },
                            200 * hw::kCyclesPerMillisecond));
  EXPECT_EQ(hv().stats().domains_crashed, 0u);
  EXPECT_GT(hv().stats().hypercalls, 0u);
  EXPECT_GT(hv().stats().emulated_pte_writes, 0u);
  EXPECT_GT(hv().stats().pins, 0u);
}

TEST_F(HvTest, MappingHypervisorFrameCrashesDomain) {
  // A rogue PTE pointing into the VMM's reserved region must be rejected.
  const DomainId dom = 0;
  kernel::Task* t = nullptr;
  k().spawn("rogue", [](Sys& s) -> Sub<void> {
    const auto va = s.mmap(hw::kPageSize, true);
    s.touch_pages(va, 1, true);
    for (;;) co_await s.sleep_us(10'000.0);
  });
  k().run_for(5 * hw::kCyclesPerMillisecond);
  k().for_each_task([&](kernel::Task& task) { t = &task; });
  ASSERT_NE(t, nullptr);
  const hw::Pfn l1 = t->aspace->page_table_frames().back();
  hw::Pte evil = hw::make_pte(hv().reserved_first(), true, true);
  hv().hc_pte_write_emulate(cpu(), dom, hw::addr_of(l1) + 8, evil);
  EXPECT_TRUE(hv().domain(dom).crashed);
  EXPECT_NE(hv().domain(dom).crash_reason.find("hypervisor"),
            std::string::npos);
}

TEST_F(HvTest, WritableMappingOfPageTableRejected) {
  const DomainId dom = 0;
  const hw::Pfn some_l1 = k().kernel_l1_frames().front();
  const hw::Pfn victim_pt = k().kernel_l1_frames().back();
  // Try to install a *writable* user mapping of a page-table frame.
  hw::Pte evil = hw::make_pte(victim_pt, /*writable=*/true, true);
  hv().hc_pte_write_emulate(cpu(), dom, hw::addr_of(some_l1) + 16, evil);
  EXPECT_TRUE(hv().domain(dom).crashed);
  // Read-only mappings of page tables are fine (direct paging!).
  auto sut2 = Sut::create(SystemId::kX0, small());
  vmm::Hypervisor& hv2 = *sut2->hypervisor();
  hw::Pte ok = hw::make_pte(sut2->kernel().kernel_l1_frames().back(),
                            /*writable=*/false, true);
  hv2.hc_pte_write_emulate(sut2->machine().cpu(0), 0,
                           hw::addr_of(sut2->kernel().kernel_l1_frames().front()) + 16,
                           ok);
  EXPECT_FALSE(hv2.domain(0).crashed);
}

TEST_F(HvTest, UpdateOutsidePageTableRejected) {
  // Writing a "PTE" into a plain RAM frame is not a legal mmu_update.
  hw::Pfn plain = 0;
  ASSERT_TRUE(k().pool().alloc(plain));
  pv::PteUpdate u{hw::addr_of(plain), hw::make_pte(plain, false, true)};
  hv().hc_mmu_update(cpu(), 0, std::span<const pv::PteUpdate>(&u, 1));
  EXPECT_TRUE(hv().domain(0).crashed);
}

TEST_F(HvTest, Cr3OfUnpinnedFrameRejected) {
  hw::Pfn plain = 0;
  ASSERT_TRUE(k().pool().alloc(plain));
  hv().hc_write_cr3(cpu(), 0, plain);
  EXPECT_TRUE(hv().domain(0).crashed);
}

TEST_F(HvTest, PinOfForeignFrameRejected) {
  // The hypervisor's own frames are not pinnable by a guest.
  hv().hc_pin_table(cpu(), 0, hv().reserved_first(), pv::PtLevel::kL1);
  EXPECT_TRUE(hv().domain(0).crashed);
}

TEST_F(HvTest, TamperedVmmPdeDetectedAtValidation) {
  // Rewrite a reserved PDE in the kernel PD, then revalidate.
  const hw::PhysAddr pde_addr =
      hw::addr_of(k().kernel_pd()) + hw::pde_index(kernel::kVmmBase) * 4;
  sut->machine().memory().write_u32(pde_addr,
                                    hw::make_pte(1234, true, true).raw);
  std::size_t present = 0;
  EXPECT_FALSE(
      hv().validate_l2(cpu(), hv().domain(0), k().kernel_pd(), 0, &present));
  EXPECT_TRUE(hv().domain(0).crashed);
}

TEST_F(HvTest, PageTablesAreHardwareProtectedUnderVmm) {
  // Direct writes to a pinned page table must fault (RO in the direct map):
  // this is what forces the trap-&-emulate path.
  const hw::Pfn l1 = k().kernel_l1_frames().front();
  const hw::VirtAddr kva = k().kva_of_frame(l1);
  auto& mmu = sut->machine().mmu();
  hw::Cpu& c = cpu();
  c.set_cpl(hw::Ring::kRing1);  // deprivileged guest kernel
  hw::PageFault pf;
  c.tlb().flush_global();
  EXPECT_FALSE(mmu.translate(c, kva, hw::Access::kWrite, &pf).has_value())
      << "pinned page table must be read-only for the guest";
  EXPECT_TRUE(mmu.translate(c, kva, hw::Access::kRead, &pf).has_value())
      << "direct paging grants read access";
  c.set_cpl(hw::Ring::kRing0);
}

TEST_F(HvTest, DomUSplitIoGoesThroughBackend) {
  auto xu = Sut::create(SystemId::kXU, small());
  bool done = false;
  xu->kernel().spawn("io", [&](Sys& s) -> Sub<void> {
    const int fd = s.open("/f", true);
    co_await s.file_write(fd, 256 * 1024);
    s.fsync(fd);
    done = true;
  });
  EXPECT_TRUE(xu->kernel().run_until([&] { return done; },
                                     500 * hw::kCyclesPerMillisecond));
  vmm::Hypervisor& hvx = *xu->hypervisor();
  EXPECT_GT(hvx.blk_backend().requests_served(), 0u);
  EXPECT_GT(hvx.grant_table().maps_performed(), 0u);
  EXPECT_GT(hvx.event_channels().total_notifications(), 0u);
}

TEST_F(HvTest, DomUFlushIsBarrierNotDurability) {
  auto xu = Sut::create(SystemId::kXU, small());
  bool done = false;
  const auto disk_writes_before = xu->machine().disk().writes();
  xu->kernel().spawn("io", [&](Sys& s) -> Sub<void> {
    const int fd = s.open("/f", true);
    co_await s.file_write(fd, 64 * 1024);
    s.fsync(fd);  // absorbed by the backend's write-behind cache
    done = true;
  });
  EXPECT_TRUE(xu->kernel().run_until([&] { return done; },
                                     500 * hw::kCyclesPerMillisecond));
  EXPECT_EQ(xu->machine().disk().writes(), disk_writes_before)
      << "paper §7.3: domU caching avoids the disk at crash-consistency risk";
}

TEST_F(HvTest, HealModeRepairsInsteadOfCrashing) {
  const hw::Pfn some_l1 = k().kernel_l1_frames().front();
  const hw::PhysAddr pte_addr = hw::addr_of(some_l1) + 24;
  const std::uint32_t good = sut->machine().memory().read_u32(pte_addr);
  // Taint directly (bypassing hypercalls, like a wild write).
  hw::Pte evil = hw::make_pte(hv().reserved_first(), true, true);
  sut->machine().memory().write_u32(pte_addr, evil.raw);
  hv().set_heal_mode(true);
  std::size_t present = 0;
  EXPECT_TRUE(hv().validate_l1(cpu(), hv().domain(0), some_l1, 0, &present));
  hv().set_heal_mode(false);
  EXPECT_FALSE(hv().domain(0).crashed);
  EXPECT_GE(hv().stats().entries_healed, 1u);
  EXPECT_EQ(sut->machine().memory().read_u32(pte_addr), 0u);
  (void)good;
}

}  // namespace
}  // namespace mercury::testing
