// Differential harness for warm re-attach (the retained page-info table +
// dirty-frame tracker fast path). The oracle is the cold rebuild itself:
// after every warm attach the harness forces a from-scratch rebuild of the
// *same* machine state (cold detach + cold attach with a quiesced workload)
// and compares the two tables shard by shard, entry by entry. Any divergence
// — a frame the tracker missed, a stale type carried over, a pin that did
// not fold into the dirty set — fails with the exact PFN and both entries.
//
// The seeded sweep (MERCURY_TEST_SEED replays any failure) runs randomized
// detach -> dirty-native-window -> warm-attach rounds across UP and SMP
// crew shapes, with workload writes, PT growth/shrink (mmap/munmap), frame
// frees/reallocs (task spawn/kill), and file traffic dirtying frames while
// the VMM is away.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/dirty_tracker.hpp"
#include "core/invariants.hpp"
#include "core/mercury.hpp"
#include "kernel/syscalls.hpp"
#include "tests/test_seed.hpp"
#include "util/rng.hpp"
#include "vmm/page_info.hpp"

namespace mercury::testing {
namespace {

using core::ExecMode;
using core::Mercury;
using kernel::Sub;
using kernel::Sys;

constexpr hw::Cycles kBudget = 500 * hw::kCyclesPerMillisecond;

/// A machine with warm re-attach enabled and a mutator workload that
/// dirties frames only while `mutate` is set — so the harness can quiesce
/// the OS and snapshot two rebuilds of the *identical* machine state.
struct WarmRig {
  hw::Machine machine;
  Mercury m;
  util::Rng rng;
  bool mutate = false;
  std::uint64_t mutations = 0;

  WarmRig(std::uint64_t seed, std::size_t cpus, std::size_t crew,
          std::size_t dirty_capacity = 1 << 20)
      : machine([&] {
          hw::MachineConfig mc;
          mc.num_cpus = cpus;
          mc.mem_kb = 96 * 1024;
          return mc;
        }()),
        m(machine,
          [&] {
            core::MercuryConfig cfg;
            cfg.kernel_frames = (32ull * 1024 * 1024) / hw::kPageSize;
            cfg.switch_config.warm_reattach = true;
            cfg.switch_config.warm_dirty_capacity = dirty_capacity;
            cfg.switch_config.crew_workers = crew;
            return cfg;
          }()),
        rng(seed) {
    for (int i = 0; i < 3; ++i) spawn_mutator("mut" + std::to_string(i));
    m.kernel().run_for(2 * hw::kCyclesPerMillisecond);
  }

  void spawn_mutator(const std::string& name) {
    m.kernel().spawn(name, [this, name](Sys& s) -> Sub<void> {
      std::vector<std::pair<hw::VirtAddr, std::size_t>> regions;
      const int fd = s.open("/" + name, true);
      for (;;) {
        if (!mutate) {
          co_await s.sleep_us(200.0);
          continue;
        }
        const double pick = rng.uniform();
        if (pick < 0.40 && !regions.empty()) {
          // Plain workload writes: dirty mapped data frames.
          const auto& [va, pages] = regions[rng.below(regions.size())];
          s.touch_pages(va, pages, true);
        } else if (pick < 0.65 && regions.size() < 12) {
          // PT growth: a fresh mapping faulted in (new L1s may appear).
          const std::size_t pages = 1 + rng.below(8);
          const auto va = s.mmap(pages * hw::kPageSize, true);
          s.touch_pages(va, pages, true);
          regions.emplace_back(va, pages);
        } else if (!regions.empty() && (pick < 0.80 || regions.size() >= 12)) {
          // PT shrink + frame frees back to the pool.
          const std::size_t idx = rng.below(regions.size());
          s.munmap(regions[idx].first, regions[idx].second * hw::kPageSize);
          regions.erase(regions.begin() + idx);
        } else {
          // File traffic: FS frame grants + content writes. Rewind once the
          // file has a working set so FS allocation stays bounded.
          if (s.file_size("/" + name) > 128 * 1024) s.seek(fd, 0);
          co_await s.file_write(fd, 1024 + rng.below(4096));
        }
        ++mutations;
        co_await s.compute_us(20.0 + 60.0 * rng.uniform());
      }
    });
  }

  /// Let the mutators dirty state for a random slice of simulated time,
  /// then park them so machine state is frozen for the differential pair.
  void dirty_window() {
    mutate = true;
    m.kernel().run_for(hw::us_to_cycles(150.0 + 850.0 * rng.uniform()));
    // Frame free/realloc churn at task granularity: a short-lived task's
    // whole address space (PTs included) returns to the pool and may be
    // handed right back out.
    if (rng.chance(0.3)) {
      const kernel::Pid pid =
          m.kernel().spawn("churn", [](Sys& s) -> Sub<void> {
            const auto va = s.mmap(6 * hw::kPageSize, true);
            s.touch_pages(va, 6, true);
            for (;;) co_await s.compute_us(40.0);
          });
      m.kernel().run_for(hw::us_to_cycles(150.0));
      m.kernel().kill(pid);
      m.kernel().run_for(hw::us_to_cycles(150.0));
    }
    mutate = false;
    m.kernel().run_for(1 * hw::kCyclesPerMillisecond);  // quiesce
  }

  bool settle(ExecMode target) { return m.engine().switch_now(target, kBudget); }

  void expect_consistent(const std::string& ctx) {
    const core::InvariantReport report =
        core::check_machine_invariants(m.engine());
    ASSERT_TRUE(report.ok()) << ctx << "\n" << report.to_string();
    if (m.hypervisor().page_info().valid()) {
      const auto err = m.hypervisor().page_info().check_invariants();
      ASSERT_FALSE(err.has_value()) << ctx << ": " << *err;
    }
  }
};

std::string describe_entry(const vmm::PageInfo& pi) {
  return std::string("{owner=") + std::to_string(pi.owner) +
         " type=" + vmm::page_type_name(pi.type) +
         " type_count=" + std::to_string(pi.type_count) +
         " ref_count=" + std::to_string(pi.ref_count) +
         " pinned=" + (pi.pinned ? "1" : "0") + "}";
}

/// Shard-by-shard equality of a warm-rebuilt table against the cold oracle.
void expect_tables_equal(const std::vector<vmm::PageInfo>& warm,
                         const std::vector<vmm::PageInfo>& cold,
                         const std::string& ctx) {
  ASSERT_EQ(warm.size(), cold.size()) << ctx;
  constexpr std::size_t kPer = vmm::PageInfoTable::kFramesPerShard;
  const std::size_t shards = (warm.size() + kPer - 1) / kPer;
  for (std::size_t s = 0; s < shards; ++s) {
    std::size_t diffs = 0;
    std::string detail;
    const std::size_t end = std::min(warm.size(), (s + 1) * kPer);
    for (std::size_t pfn = s * kPer; pfn < end; ++pfn) {
      if (warm[pfn] == cold[pfn]) continue;
      if (++diffs <= 4)
        detail += "  pfn " + std::to_string(pfn) +
                  ": warm=" + describe_entry(warm[pfn]) +
                  " cold=" + describe_entry(cold[pfn]) + "\n";
    }
    EXPECT_EQ(diffs, 0u) << ctx << ": shard " << s << " diverges ("
                         << diffs << " frames):\n"
                         << detail;
  }
}

/// One differential round. Entered attached (virtual); leaves attached.
///
///   virtual dwell (pins/types churn) -> retaining detach -> dirty native
///   window -> WARM attach -> snapshot W -> cold detach+attach of the same
///   frozen state -> snapshot C -> assert W == C shard by shard.
void differential_round(WarmRig& rig, ExecMode virt_mode, int round,
                        bool expect_warm, std::uint64_t seed) {
  const std::string ctx =
      "seed=" + std::to_string(seed) + " round=" + std::to_string(round);
  SCOPED_TRACE(ctx);
  core::SwitchEngine& eng = rig.m.engine();
  vmm::Hypervisor& hv = rig.m.hypervisor();

  // Pin/type churn while the VMM enforces the table (hypercall path).
  rig.mutate = true;
  rig.m.kernel().run_for(hw::us_to_cycles(100.0 + 400.0 * rig.rng.uniform()));
  rig.mutate = false;
  rig.m.kernel().run_for(1 * hw::kCyclesPerMillisecond);

  // Retaining detach: opens the tracked window.
  eng.set_warm_reattach(true);
  ASSERT_TRUE(rig.settle(ExecMode::kNative)) << ctx;
  EXPECT_TRUE(hv.page_info().retained()) << ctx << ": detach did not retain";
  ASSERT_NE(eng.dirty_tracker(), nullptr) << ctx;
  EXPECT_TRUE(eng.dirty_tracker()->armed()) << ctx;

  rig.dirty_window();

  // Warm attach of the frozen state.
  const std::uint64_t warm_before = eng.stats().warm_attaches;
  const std::uint64_t epoch_before = hv.page_info().epoch();
  ASSERT_TRUE(rig.settle(virt_mode)) << ctx;
  rig.expect_consistent(ctx + " post-warm-attach");
  if (expect_warm) {
    EXPECT_EQ(eng.stats().warm_attaches, warm_before + 1)
        << ctx << ": eligible attach did not take the warm path";
    EXPECT_GT(hv.page_info().epoch(), epoch_before) << ctx;
  }
  const bool went_warm = eng.stats().warm_attaches > warm_before;
  EXPECT_FALSE(eng.dirty_tracker()->armed())
      << ctx << ": attach left the tracker armed";
  EXPECT_FALSE(hv.page_info().retained())
      << ctx << ": live table still claims retention";
  const std::vector<vmm::PageInfo> warm_table = hv.page_info().snapshot();
  const std::size_t carried = hv.page_info().shards_carried_over();

  // Cold oracle: rebuild the identical (still quiesced) state from scratch.
  eng.set_warm_reattach(false);
  ASSERT_TRUE(rig.settle(ExecMode::kNative)) << ctx;
  EXPECT_FALSE(hv.page_info().retained())
      << ctx << ": warm-off detach still retained the table";
  ASSERT_TRUE(rig.settle(virt_mode)) << ctx;
  rig.expect_consistent(ctx + " post-cold-attach");
  const std::vector<vmm::PageInfo> cold_table = hv.page_info().snapshot();

  expect_tables_equal(warm_table, cold_table, ctx);
  if (went_warm && eng.stats().last_dirty_frames <
                       rig.m.kernel().pool().owned_count()) {
    // A genuinely partial rebuild must have carried shards over.
    EXPECT_GT(carried, 0u) << ctx;
  }
  eng.set_warm_reattach(true);
}

void sweep(std::uint64_t seed, std::size_t cpus, std::size_t crew,
           int rounds, ExecMode virt_mode) {
  WarmRig rig(seed, cpus, crew);
  // First attach has no tracked window: must go cold, uncounted as fallback.
  ASSERT_TRUE(rig.settle(virt_mode));
  EXPECT_EQ(rig.m.engine().stats().warm_attaches, 0u);
  EXPECT_EQ(rig.m.engine().stats().warm_fallbacks, 0u);
  for (int round = 0; round < rounds; ++round) {
    differential_round(rig, virt_mode, round, /*expect_warm=*/true, seed);
    if (::testing::Test::HasFatalFailure() ||
        ::testing::Test::HasNonfatalFailure())
      return;
  }
  EXPECT_GT(rig.mutations, 0u) << "the mutator workload never ran";
  std::printf("warm sweep cpus=%zu crew=%zu: %d rounds, %llu mutations, "
              "%llu warm attaches\n",
              cpus, crew, rounds,
              static_cast<unsigned long long>(rig.mutations),
              static_cast<unsigned long long>(
                  rig.m.engine().stats().warm_attaches));
}

// --- the seeded differential sweep: >= 50 rounds across UP + SMP crews ---

TEST(WarmReattachDifferential, UpSerial) {
  sweep(test_seed(0x3A9E0001ull), /*cpus=*/1, /*crew=*/0, /*rounds=*/14,
        ExecMode::kPartialVirtual);
}

TEST(WarmReattachDifferential, SmpSerialPath) {
  sweep(test_seed(0x3A9E0002ull), /*cpus=*/2, /*crew=*/0, /*rounds=*/13,
        ExecMode::kPartialVirtual);
}

TEST(WarmReattachDifferential, SmpCrew1) {
  sweep(test_seed(0x3A9E0003ull), /*cpus=*/2, /*crew=*/1, /*rounds=*/13,
        ExecMode::kPartialVirtual);
}

TEST(WarmReattachDifferential, SmpCrew3FullVirtual) {
  sweep(test_seed(0x3A9E0004ull), /*cpus=*/4, /*crew=*/3, /*rounds=*/13,
        ExecMode::kFullVirtual);
}

// --- targeted edge cases ---

TEST(WarmReattach, TrackerOverflowFallsBackToColdAndStaysCorrect) {
  const std::uint64_t seed = test_seed(0x3A9E0005ull);
  // A tiny capacity: the first real dirty window must overflow.
  WarmRig rig(seed, /*cpus=*/1, /*crew=*/0, /*dirty_capacity=*/8);
  ASSERT_TRUE(rig.settle(ExecMode::kPartialVirtual));
  ASSERT_TRUE(rig.settle(ExecMode::kNative));
  rig.dirty_window();
  ASSERT_NE(rig.m.engine().dirty_tracker(), nullptr);
  ASSERT_TRUE(rig.m.engine().dirty_tracker()->overflowed())
      << "dirty window stayed under 8 frames — widen the mutation window";

  const std::uint64_t fallbacks_before = rig.m.engine().stats().warm_fallbacks;
  ASSERT_TRUE(rig.settle(ExecMode::kPartialVirtual));
  EXPECT_EQ(rig.m.engine().stats().warm_attaches, 0u);
  EXPECT_EQ(rig.m.engine().stats().warm_fallbacks, fallbacks_before + 1)
      << "overflowed window must be a counted fallback";
  rig.expect_consistent("post-overflow-fallback");

  // The fallback IS the cold path; its table must equal a second cold pass.
  const std::vector<vmm::PageInfo> fallback_table =
      rig.m.hypervisor().page_info().snapshot();
  rig.m.engine().set_warm_reattach(false);
  ASSERT_TRUE(rig.settle(ExecMode::kNative));
  ASSERT_TRUE(rig.settle(ExecMode::kPartialVirtual));
  expect_tables_equal(fallback_table,
                      rig.m.hypervisor().page_info().snapshot(),
                      "overflow fallback");
}

TEST(WarmReattach, MidWindowDisableVoidsTheTrackedWindow) {
  const std::uint64_t seed = test_seed(0x3A9E0006ull);
  WarmRig rig(seed, /*cpus=*/1, /*crew=*/0);
  ASSERT_TRUE(rig.settle(ExecMode::kPartialVirtual));
  ASSERT_TRUE(rig.settle(ExecMode::kNative));  // retaining detach
  ASSERT_TRUE(rig.m.engine().dirty_tracker()->armed());

  // Disable mid-window: writes after this are unobserved, so the window
  // must never feed a warm rebuild — even after re-enabling.
  rig.m.engine().set_warm_reattach(false);
  EXPECT_FALSE(rig.m.engine().dirty_tracker()->armed());
  rig.dirty_window();
  rig.m.engine().set_warm_reattach(true);

  ASSERT_TRUE(rig.settle(ExecMode::kPartialVirtual));
  EXPECT_EQ(rig.m.engine().stats().warm_attaches, 0u)
      << "a partially observed window fed a warm rebuild";
  rig.expect_consistent("post-disable-reattach");
}

TEST(WarmReattach, UnwrittenTablesSkipRevalidation) {
  // The warm attach revalidates only content-dirty tables: with a quiesced
  // native window, the per-PTE validation work must collapse to a small
  // fraction of the cold attach's full sweep.
  const std::uint64_t seed = test_seed(0x3A9E0007ull);
  WarmRig rig(seed, /*cpus=*/1, /*crew=*/0);
  vmm::Hypervisor& hv = rig.m.hypervisor();
  std::uint64_t v0 = hv.stats().pte_validations;
  ASSERT_TRUE(rig.settle(ExecMode::kPartialVirtual));  // cold: full sweep
  const std::uint64_t cold_validations = hv.stats().pte_validations - v0;
  ASSERT_GT(cold_validations, 0u);

  ASSERT_TRUE(rig.settle(ExecMode::kNative));  // retaining detach
  v0 = hv.stats().pte_validations;
  ASSERT_TRUE(rig.settle(ExecMode::kPartialVirtual));  // warm, quiet window
  EXPECT_EQ(rig.m.engine().stats().warm_attaches, 1u);
  const std::uint64_t warm_validations = hv.stats().pte_validations - v0;
  EXPECT_LT(warm_validations, cold_validations / 4)
      << "warm attach revalidated (almost) everything — the content filter "
         "is not being applied";
  rig.expect_consistent("post-skip-attach");
}

TEST(WarmReattach, TamperedTableWhileDetachedIsStillRevalidated) {
  // The flip side of the skip: a write into a page-table frame while the
  // VMM is away lands that frame in the content-dirty set, so the warm
  // attach must revalidate it and catch the bad entry. Heal mode turns the
  // catch into an observable repair instead of a domain crash.
  const std::uint64_t seed = test_seed(0x3A9E0008ull);
  WarmRig rig(seed, /*cpus=*/1, /*crew=*/0);
  // Give the mutators a moment to fault in mappings so task L1s exist.
  rig.mutate = true;
  rig.m.kernel().run_for(hw::us_to_cycles(500.0));
  rig.mutate = false;
  rig.m.kernel().run_for(1 * hw::kCyclesPerMillisecond);

  ASSERT_TRUE(rig.settle(ExecMode::kPartialVirtual));
  ASSERT_TRUE(rig.settle(ExecMode::kNative));  // retaining detach, armed

  // Pick a task L1 (not a kernel direct-map L1 — healing one of those would
  // punch a hole in the direct map) with an empty slot.
  vmm::Hypervisor& hv = rig.m.hypervisor();
  const auto& kernel_l1s = rig.m.kernel().kernel_l1_frames();
  hw::Pfn victim = 0;
  std::uint32_t slot = 0;
  bool found = false;
  for (const auto& [pfn, type] : hv.collect_tables(rig.m.kernel())) {
    if (type != vmm::PageType::kL1) continue;
    if (std::find(kernel_l1s.begin(), kernel_l1s.end(), pfn) !=
        kernel_l1s.end())
      continue;
    for (std::uint32_t e = 0; e < hw::kPtEntries && !found; ++e) {
      const hw::Pte pte{
          rig.machine.memory().read_u32(hw::addr_of(pfn) + e * 4)};
      if (!pte.present()) {
        victim = pfn;
        slot = e;
        found = true;
      }
    }
    if (found) break;
  }
  ASSERT_TRUE(found) << "no task L1 with a free slot to tamper with";

  // Tamper: a writable mapping of a hypervisor-reserved frame — exactly
  // the class of entry validation exists to reject.
  const hw::Pte bad = hw::make_pte(hv.reserved_first(), /*writable=*/true,
                                   /*user=*/false);
  rig.machine.memory().write_u32(hw::addr_of(victim) + slot * 4, bad.raw);

  hv.set_heal_mode(true);
  const std::uint64_t healed_before = hv.stats().entries_healed;
  ASSERT_TRUE(rig.settle(ExecMode::kPartialVirtual));
  hv.set_heal_mode(false);
  EXPECT_EQ(rig.m.engine().stats().warm_attaches, 1u);
  EXPECT_GE(hv.stats().entries_healed, healed_before + 1)
      << "tampered table escaped warm revalidation";
  // The heal cleared the entry: frame contents match the pre-tamper state.
  EXPECT_EQ(rig.machine.memory().read_u32(hw::addr_of(victim) + slot * 4),
            0u);
  EXPECT_EQ(hv.stats().domains_crashed, 0u);
  rig.expect_consistent("post-tamper-heal");
}

TEST(WarmReattach, EagerTrackingSuppressesRetention) {
  hw::MachineConfig mc;
  mc.num_cpus = 1;
  mc.mem_kb = 96 * 1024;
  hw::Machine machine(mc);
  core::MercuryConfig cfg;
  cfg.kernel_frames = (32ull * 1024 * 1024) / hw::kPageSize;
  cfg.switch_config.warm_reattach = true;
  cfg.switch_config.eager_page_tracking = true;
  Mercury m(machine, cfg);
  m.kernel().run_for(2 * hw::kCyclesPerMillisecond);

  ASSERT_TRUE(m.engine().switch_now(ExecMode::kPartialVirtual, kBudget));
  ASSERT_TRUE(m.engine().switch_now(ExecMode::kNative, kBudget));
  // Eager keeps the table *live*; warm retention must stay out of the way.
  EXPECT_TRUE(m.hypervisor().page_info().valid());
  EXPECT_FALSE(m.hypervisor().page_info().retained());
  ASSERT_TRUE(m.engine().switch_now(ExecMode::kPartialVirtual, kBudget));
  EXPECT_EQ(m.engine().stats().warm_attaches, 0u);
  EXPECT_EQ(m.engine().stats().warm_fallbacks, 0u);
}

}  // namespace
}  // namespace mercury::testing
